// Inlining: the Figure 1 / Figure 7 scenario. A virtual accessor whose body
// dereferences the receiver on only one path is devirtualized and inlined;
// the inliner must materialize an explicit null check (the dispatch load
// that would have trapped is gone). Phase 2 then pushes that check forward:
// the dereferencing path pays nothing (hardware trap), the other path keeps
// one explicit check at its latest point.
//
//	go run ./examples/inlining
package main

import (
	"fmt"
	"log"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/machine"
	"trapnull/internal/nullcheck"
	"trapnull/internal/opt"
)

func main() {
	prog := ir.NewProgram("inlining")
	cls := prog.NewClass("Box", &ir.Field{Name: "value", Kind: ir.KindInt})

	// int clampedGet(this, i) { if i < 0 { return i } return this.value }
	// — the exact callee of the paper's Figure 1.
	cb := ir.NewFunc("clampedGet", true)
	this := cb.Param("this", ir.KindRef)
	iArg := cb.Param("i", ir.KindInt)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	neg := cb.DeclareBlock("neg")
	pos := cb.DeclareBlock("pos")
	cb.If(ir.CondLT, ir.Var(iArg), ir.ConstInt(0), neg, pos)
	cb.SetBlock(neg)
	cb.Return(ir.Var(iArg))
	cb.SetBlock(pos)
	v := cb.Temp(ir.KindInt)
	cb.GetField(v, this, cls.FieldByName("value"))
	cb.Return(ir.Var(v))
	method := prog.AddMethod(cls, "clampedGet", cb.Finish(), true)

	// int caller(box, i) { return box.clampedGet(i) }
	b := ir.NewFunc("caller", false)
	box := b.Param("box", ir.KindRef)
	i := b.Param("i", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	r := b.Temp(ir.KindInt)
	b.CallVirtual(r, method, box, ir.Var(i))
	b.Return(ir.Var(r))
	fn := b.Finish()
	prog.AddMethod(nil, "caller", fn, false)

	model := arch.IA32Win()

	fmt.Println("=== original call site ===")
	fmt.Print(fn.String())

	st := opt.Inline(fn, model)
	fmt.Printf("\n=== after devirtualization + inlining (%d site) ===\n", st.Devirtualized)
	fmt.Print(fn.String())
	fmt.Println("note the explicit ReasonInlined null check: the dispatch load that")
	fmt.Println("would have trapped is gone, so the check must exist (Figure 1)")

	nullcheck.Phase1(fn)
	p2 := nullcheck.Phase2(fn, model)
	opt.CopyProp(fn)
	opt.DCE(fn)
	opt.SimplifyCFG(fn)
	fmt.Printf("\n=== after Phase1 + Phase2 (%d implicit, %d explicit left) ===\n",
		p2.Implicit, fn.CountOp(ir.OpNullCheck))
	fmt.Print(fn.String())
	fmt.Println("the dereferencing path carries an implicit check (excsite); the")
	fmt.Println("early-return path keeps one explicit check at its latest point (Figure 7)")

	if err := nullcheck.CheckGuards(fn, model); err != nil {
		log.Fatalf("guard check failed: %v", err)
	}

	// Run both paths, plus the null case.
	m := machine.New(model, prog)
	obj := m.Heap.AllocObject(cls)
	m.Heap.Store(obj+int64(cls.FieldByName("value").Offset), 42)
	for _, tc := range []struct {
		box, i int64
	}{{obj, 5}, {obj, -3}, {0, 5}, {0, -3}} {
		out, err := m.Call(fn, tc.box, tc.i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("caller(box=%#x, i=%d) -> value=%d exc=%v\n", tc.box, tc.i, out.Value, out.Exc)
	}
}
