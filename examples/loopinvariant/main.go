// Loop invariance: the Figure 4 interplay. A field load inside a loop cannot
// be hoisted while its null check sits in the loop — the check is a barrier
// to memory motion. Phase 1 moves the check out; only then can scalar
// replacement pull the load into the preheader. The example shows the loop
// body shrinking step by step.
//
//	go run ./examples/loopinvariant
package main

import (
	"fmt"
	"log"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/machine"
	"trapnull/internal/nullcheck"
	"trapnull/internal/opt"
)

// build constructs: int sum(a, n) { s=0; do { s += a.f } while (++i<n) }.
func build(cls *ir.Class) *ir.Func {
	b := ir.NewFunc("sum", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	x := b.Temp(ir.KindInt)
	b.GetField(x, a, cls.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(x))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return b.Finish()
}

func bodyInstrs(f *ir.Func) int {
	for _, blk := range f.Blocks {
		if blk.Name == "body" {
			return len(blk.Instrs)
		}
	}
	return -1
}

func main() {
	prog := ir.NewProgram("loopinvariant")
	cls := prog.NewClass("Holder", &ir.Field{Name: "f", Kind: ir.KindInt})
	model := arch.IA32Win()

	// Without phase 1: scalar replacement alone cannot move the load (its
	// null check is in the way).
	f1 := build(cls)
	prog.AddMethod(nil, "sum_noopt", f1, false)
	opt.ScalarReplace(f1, model)
	fmt.Printf("scalar replacement alone:  loop body has %d instructions\n", bodyInstrs(f1))

	// With phase 1 first: the check leaves the loop, then the load follows.
	f2 := build(cls)
	prog.AddMethod(nil, "sum_opt", f2, false)
	nullcheck.Phase1(f2)
	st := opt.ScalarReplace(f2, model)
	opt.CopyProp(f2)
	opt.DCE(f2)
	opt.SimplifyCFG(f2)
	fmt.Printf("phase1 + scalar repl:      loop body has %d instructions (%d hoisted)\n",
		bodyInstrs(f2), st.Hoisted)
	fmt.Println()
	fmt.Print(f2.String())

	if err := nullcheck.CheckGuards(f2, model); err != nil {
		log.Fatalf("guard check failed: %v", err)
	}

	// Measure the difference.
	run := func(f *ir.Func) int64 {
		m := machine.New(model, prog)
		obj := m.Heap.AllocObject(cls)
		m.Heap.Store(obj+int64(cls.FieldByName("f").Offset), 3)
		out, err := m.Call(f, obj, 100000)
		if err != nil {
			log.Fatal(err)
		}
		if out.Value != 300000 {
			log.Fatalf("wrong sum %d", out.Value)
		}
		return m.Cycles
	}
	c1, c2 := run(f1), run(f2)
	fmt.Printf("\ncycles without phase1: %d\ncycles with phase1:    %d  (%.1f%% faster)\n",
		c1, c2, (float64(c1)/float64(c2)-1)*100)
}
