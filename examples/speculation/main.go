// Speculation: the Figure 6 / §3.3.1 scenario on the AIX model. The loop
// writes a field first and reads an invariant array afterwards, so the read
// checks cannot move backward past the store. On a machine where reads
// through null cannot trap (AIX), the reads themselves may be hoisted
// *above* their null checks — speculatively — and out of the loop.
//
//	go run ./examples/speculation
package main

import (
	"fmt"
	"log"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/machine"
	"trapnull/internal/nullcheck"
	"trapnull/internal/opt"
)

// build constructs the Figure 6 shape:
//
//	do { acc.f = v; v += k[0]; } while (++i < n)
//
// with k fetched from a holder so nothing proves it non-null.
func build(cls *ir.Class) (*ir.Program, *ir.Func) {
	prog := ir.NewProgram("speculation")
	b := ir.NewFunc("kernel", false)
	acc := b.Param("acc", ir.KindRef)
	k := b.Param("k", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	v := b.Local("v", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(v, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	// Store first: the barrier of Figure 6 ("a.I = T2").
	b.PutField(acc, cls.FieldByName("f"), ir.Var(v))
	// Read after: "arraylength b" / "b[T1]" — checks stuck below the store.
	kv := b.Temp(ir.KindInt)
	b.ArrayLoad(kv, k, ir.ConstInt(0))
	b.Binop(ir.OpAdd, v, ir.Var(v), ir.Var(kv))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(v))
	fn := b.Finish()
	prog.AddMethod(nil, "kernel", fn, false)
	return prog, fn
}

func main() {
	aix := arch.PPCAIX()

	countSpeculated := func(f *ir.Func) int {
		n := 0
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Speculated {
					n++
				}
			}
		}
		return n
	}

	run := func(name string, speculate bool) int64 {
		cls := ir.NewProgram("x").NewClass("Acc", &ir.Field{Name: "f", Kind: ir.KindInt})
		prog, fn := build(cls)
		nullcheck.Phase1(fn)
		model := *aix
		model.SpeculativeReads = speculate
		st := opt.ScalarReplace(fn, &model)
		opt.CopyProp(fn)
		opt.DCE(fn)
		opt.SimplifyCFG(fn)
		if err := nullcheck.CheckGuards(fn, aix); err != nil {
			log.Fatalf("%s: guard check failed: %v", name, err)
		}

		m := machine.New(aix, prog)
		obj := m.Heap.AllocObject(cls)
		arr := m.Heap.AllocArray(1)
		m.Heap.Store(arr+ir.ArrayHeaderBytes, 5)
		out, err := m.Call(fn, obj, arr, 50000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s hoisted=%d speculated-loads=%d result=%d cycles=%d\n",
			name, st.Hoisted, countSpeculated(fn), out.Value, m.Cycles)
		return m.Cycles
	}

	fmt.Println("AIX model: writes trap, reads do not (Figure 5(2)); explicit")
	fmt.Println("checks are 1-cycle conditional traps; the store blocks check motion.")
	fmt.Println()
	noSpec := run("no speculation", false)
	spec := run("speculation", true)
	fmt.Printf("\nspeculation is %.1f%% faster: the array reads moved above their\n",
		(float64(noSpec)/float64(spec)-1)*100)
	fmt.Println("null checks and out of the loop — legal only because a null read")
	fmt.Println("cannot trap on this platform (§3.3.1)")
}
