// Quickstart: build a tiny function with the IR builder, run the two-phase
// null check optimization, and execute it on the simulated machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/machine"
	"trapnull/internal/nullcheck"
)

func main() {
	// A class with one int field.
	prog := ir.NewProgram("quickstart")
	point := prog.NewClass("Point", &ir.Field{Name: "x", Kind: ir.KindInt})

	// int sumX(p, n) { s = 0; do { s += p.x } while (++i < n); return s }
	// The builder emits the paper's split form: every dereference is
	// preceded by an explicit `nullcheck`.
	b := ir.NewFunc("sumX", false)
	p := b.Param("p", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	x := b.Temp(ir.KindInt)
	b.GetField(x, p, point.FieldByName("x"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(x))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	fn := b.Finish()
	prog.AddMethod(nil, "sumX", fn, false)

	fmt.Println("=== before optimization ===")
	fmt.Print(fn.String())

	// Phase 1 (architecture independent): the loop-invariant check moves
	// out of the loop. Phase 2 (architecture dependent, here IA32/Windows):
	// remaining checks convert to hardware traps.
	model := arch.IA32Win()
	st1 := nullcheck.Phase1(fn)
	st2 := nullcheck.Phase2(fn, model)
	fmt.Println("=== after Phase1 + Phase2 ===")
	fmt.Print(fn.String())
	fmt.Printf("phase1: eliminated %d, inserted %d; phase2: implicit %d, explicit left %d\n\n",
		st1.Eliminated, st1.Inserted, st2.Implicit, fn.CountOp(ir.OpNullCheck))

	// The guard checker proves every dereference is still protected.
	if err := nullcheck.CheckGuards(fn, model); err != nil {
		log.Fatalf("guard check failed: %v", err)
	}

	// Run it: allocate a Point, set x = 7, sum it 10 times.
	m := machine.New(model, prog)
	obj := m.Heap.AllocObject(point)
	m.Heap.Store(obj+int64(point.FieldByName("x").Offset), 7)
	out, err := m.Call(fn, obj, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sumX(p, 10) = %d in %d simulated cycles (%d explicit checks executed)\n",
		out.Value, m.Cycles, m.Stats.ExplicitChecks)

	// And the null case still throws a precise NullPointerException — via
	// the hardware trap, since the explicit check is gone.
	out, err = m.Call(fn, 0, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sumX(null, 10) -> %v (hardware traps taken: %d)\n", out.Exc, m.Stats.TrapsTaken)
}
