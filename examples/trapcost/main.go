// Trap cost: the design assumption under the whole paper, made visible.
// Implicit null checks are free until they fire — then the hardware trap
// takes thousands of cycles through the OS, where a failed software check
// throws in a few hundred. This example sweeps the fraction of null
// dereferences in a try/catch loop and prints the crossover.
//
//	go run ./examples/trapcost
package main

import (
	"fmt"
	"log"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/workloads"
)

func main() {
	model := arch.IA32Win()
	w := workloads.NullStorm()

	run := func(cfg jit.Config, rate int64) (int64, int64, int64) {
		prog, entryM := w.Build()
		if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
			log.Fatal(err)
		}
		m := machine.New(model, prog)
		out, err := m.Call(entryM.Fn, rate)
		if err != nil {
			log.Fatal(err)
		}
		if want := w.Ref(rate); out.Value != want {
			log.Fatalf("checksum mismatch at rate %d", rate)
		}
		return m.Cycles, m.Stats.TrapsTaken, m.Stats.ThrownSoftware
	}

	fmt.Println("NullStorm: 2000 dereferences in a try/catch loop; the parameter is")
	fmt.Printf("how many per 1000 are null. Explicit check: %d cycles; a check that\n",
		model.ExplicitNullCheckCycles)
	fmt.Printf("fails throws in ~%d cycles; a hardware trap costs ~%d cycles.\n\n",
		model.TrapDispatchCycles/5, model.TrapDispatchCycles)
	fmt.Printf("%-16s %18s %18s %10s\n", "nulls per 1000", "explicit (cycles)", "trap-based (cycles)", "winner")
	for _, rate := range []int64{0, 1, 2, 5, 20, 100, 500} {
		exp, _, _ := run(jit.ConfigNoNullOptNoTrap(), rate)
		trap, traps, _ := run(jit.ConfigPhase1Phase2(), rate)
		winner := "trap"
		if exp < trap {
			winner = "explicit"
		}
		fmt.Printf("%-16d %18d %18d %10s   (%d traps fired)\n", rate, exp, trap, winner, traps)
	}
	fmt.Println()
	fmt.Println("the crossover sits at roughly one null per thousand dereferences:")
	fmt.Println("the optimization assumes exceptions are exceptional — which is why")
	fmt.Println("the VMs that adopted it recompile methods that keep trapping")
}
