// Package trapnull is a from-scratch reproduction of "Effective Null
// Pointer Check Elimination Utilizing Hardware Trap" (Kawahito, Komatsu,
// Nakatani — ASPLOS 2000) as a Go library.
//
// The paper's two-phase null check optimization lives in
// internal/nullcheck; the JIT pipeline configurations of the evaluation in
// internal/jit; the simulated machines (IA32/Windows, PowerPC/AIX trap
// models) in internal/arch, internal/rt and internal/machine; the
// benchmark kernels mirroring jBYTEmark and SPECjvm98 in
// internal/workloads; and the table/figure regeneration harness in
// internal/bench.
//
// Start with README.md, DESIGN.md (system inventory and experiment index),
// and EXPERIMENTS.md (paper-vs-measured for every table and figure). The
// runnable entry points are cmd/benchtab, cmd/nulljit and the programs
// under examples/.
package trapnull
