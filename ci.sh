#!/bin/sh
# Repository gate: vet, build everything, and run the full test suite —
# including the randprog differential fuzz loops — under the race detector.
# The parallel bench harness and the per-Machine prepared-instruction cache
# are only trustworthy if this stays clean.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
