#!/bin/sh
# Repository gate: vet, build everything, and run the full test suite —
# including the randprog differential fuzz loops — under the race detector.
# The parallel bench harness and the per-Machine prepared-instruction cache
# are only trustworthy if this stays clean.
set -eux

cd "$(dirname "$0")"

go vet ./...
# The robustness layer gates every other package's failures, so it may not
# even carry a warning: vet it explicitly (and fail loudly if it vanishes).
go vet ./internal/irverify ./internal/triage
go build ./...
go test -race ./...
# Same suite with the structural IR verifier enabled after every pass —
# catches pass-boundary corruption the differential tests would only see as
# a downstream mystery.
TRAPNULL_VERIFY=1 go test ./...
# Pin the -short deep-fuzz path (reduced smoke sweep, not a skip) and the
# native fuzz seed corpus; the full 3000-seed sweep already ran above.
go test -short -run TestDeepFuzz ./internal/randprog
go test -run FuzzDifferential ./internal/randprog
# Engine equivalence gate: the whole differential surface again with the
# reference switch interpreter as the default engine, so a regression in
# either engine (or in the closure/switch accounting contract) fails CI
# regardless of which engine the suite above happened to exercise.
TRAPNULL_ENGINE=switch go test ./internal/machine ./internal/bench ./internal/randprog
# Benchmark smoke: one iteration of every Exec micro-benchmark (both
# engines, checksum-verified) so the bench harness itself cannot rot.
go test -bench=Exec -benchtime=1x -run '^$' .
# Observability smoke: compile-and-run a sample program with tracing and
# remarks on, then validate the emitted Chrome trace parses and the fate
# ledger conserves (nulljit exits non-zero when it does not). The
# obs-off/obs-on equivalence test then runs under the reference switch
# engine too, so neither engine's measurements can drift when observed.
obs_trace="$(mktemp -t trapnull-trace.XXXXXX.json)"
trap 'rm -f "$obs_trace"' EXIT
go run ./cmd/nulljit -workload Assignment -config full -remarks -profile -trace "$obs_trace" > /dev/null
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); evs=d['traceEvents']; assert evs and all(e.get('ph')=='X' for e in evs), 'bad trace events'" "$obs_trace"
go test -run 'TestObsEquivalence|TestFateConservation' ./internal/bench
TRAPNULL_ENGINE=switch go test -run TestObsEquivalence ./internal/bench
# Compile-cache differential gate: the whole bench/jit surface again with the
# content-addressed compile cache forced off, so the cached fast path (the
# default) and the always-recompile path cannot drift apart — the cache
# equivalence tests themselves compare the two directly.
TRAPNULL_COMPILE_CACHE=off go test ./internal/bench ./internal/jit
go test -run 'TestCompileCache' ./internal/bench
go test -run 'TestCache|TestHashProgram|TestProjectConfig|TestParallelCompile' ./internal/jit
# Tiered differential gate: the full ladder — promotion, speculation,
# trap-triggered deoptimization — against the untiered engines, under the
# race detector and again with the reference switch interpreter as the
# untiered default, so the tiering layer can never drift from either engine.
go test -race -run 'TestTiered|TestTierHook' ./internal/bench
TRAPNULL_ENGINE=switch go test -run 'TestTiered' ./internal/bench ./internal/jit
go test -run 'TestSpecSet|TestKeySpec|TestApplySpeculation' ./internal/jit
# Tiered bench smoke: the -tier table end to end on quick sizes (checksums
# verified per invocation), plus one tiered nulljit run that must deopt and
# converge on the lying-profile workload.
go run ./cmd/benchtab -tier -quick > /dev/null
go run ./cmd/nulljit -workload LateNullStorm -tier -tier-reps 3 > /dev/null
# Robustness gate (governor + fault injection). The chaos pass replays the
# same seeded fault schedule under the race detector and on both engines —
# the reports must be byte-identical and every failure one the schedule
# armed. The governor differential pins governed Outcomes bit-identical to
# the untiered switch-engine oracle, and the degradation acceptance test
# requires governed steady state to beat all-implicit (and stay within 5%
# of all-explicit) on both arch models.
go test -race -run 'TestChaos|TestGovernor|TestDegradation|TestCellTimeout|TestSpecBudget' ./internal/bench
TRAPNULL_ENGINE=switch go test -run 'TestChaos|TestGovernor|TestDegradation' ./internal/bench
go test -run 'TestDemote|TestTrapSite|TestApplyDemotion|TestKeyDemote|TestCacheSingleFlight' ./internal/jit
go test ./internal/faultinject
# Robustness bench smoke: the degradation table and one seeded chaos sweep
# end to end on quick sizes (chaos exits non-zero only on a non-injected
# failure).
go run ./cmd/benchtab -degradation -quick > /dev/null
go run ./cmd/benchtab -chaos -chaos-seed 7 > /dev/null
# Telemetry plane gate. The timeline (flight recorder + trap-cost
# attribution) and the metrics snapshot are deterministic surfaces: two
# sweeps must render them byte-identical, and the merged Perfetto trace of a
# tiered sweep must carry the adaptive decisions as instant events.
tdir="$(mktemp -d -t trapnull-telemetry.XXXXXX)"
trap 'rm -f "$obs_trace"; rm -rf "$tdir"' EXIT
go run ./cmd/benchtab -quick -timeline "$tdir/tl1.txt" -metrics "$tdir/mx1.txt" > /dev/null
go run ./cmd/benchtab -quick -timeline "$tdir/tl2.txt" -metrics "$tdir/mx2.txt" > /dev/null
cmp "$tdir/tl1.txt" "$tdir/tl2.txt"
cmp "$tdir/mx1.txt" "$tdir/mx2.txt"
go run ./cmd/benchtab -tier -quick -trace "$tdir/tier-trace.json" -timeline "$tdir/tier-tl.txt" > /dev/null
python3 -c "import json,sys; evs=json.load(open(sys.argv[1]))['traceEvents']; inst=[e for e in evs if e.get('ph')=='i']; assert inst, 'tier trace carries no instant (adaptive-decision) events'" "$tdir/tier-trace.json"
grep -q 'promote-t1' "$tdir/tier-tl.txt"
TRAPNULL_ENGINE=switch go test -run 'TestTelemetry|TestTieredTelemetry|TestAttributionConservation|TestExecProfileTieredAgree' ./internal/bench
# Benchdiff regression gate: the current tree's quick sweep must not regress
# the checked-in baseline (cycles are deterministic, so the tolerance only
# admits intentional cost-model changes — regenerate BENCH_baseline.json when
# making one). The gate itself is then proved live by planting a 10% cycle
# regression into a copy of the sweep and requiring benchdiff to reject it.
go run ./cmd/benchtab -quick -remarks -json > "$tdir/bench.json"
go run ./cmd/benchdiff BENCH_baseline.json "$tdir/bench.json"
python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
for cells in d['matrices'].values():
    for c in cells:
        if 'cycles' in c:
            c['cycles'] = c['cycles'] * 110 // 100
json.dump(d, open(sys.argv[2], 'w'))
" "$tdir/bench.json" "$tdir/bench-perturbed.json"
if go run ./cmd/benchdiff -quiet BENCH_baseline.json "$tdir/bench-perturbed.json" > /dev/null; then
    echo "benchdiff failed to catch a planted 10% cycle regression" >&2
    exit 1
fi
