package machine

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/rt"
)

func TestShiftMasking(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("sh", false)
	x := b.Param("x", ir.KindInt)
	s := b.Param("s", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.Binop(ir.OpShl, v, ir.Var(x), ir.Var(s))
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	// Shift counts are masked to 6 bits like real hardware.
	out, err := m.Call(f, 1, 65)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 2 {
		t.Fatalf("1 << 65 = %d, want 2 (masked shift)", out.Value)
	}
}

func TestFloatIntConversions(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("conv", false)
	x := b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	fv := b.Temp(ir.KindFloat)
	b.Unop(ir.OpIntToFloat, fv, ir.Var(x))
	b.Binop(ir.OpFMul, fv, ir.Var(fv), ir.ConstFloat(2.5))
	iv := b.Temp(ir.KindInt)
	b.Unop(ir.OpFloatToInt, iv, ir.Var(fv))
	b.Return(ir.Var(iv))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 12 { // 5 * 2.5 = 12.5 truncated
		t.Fatalf("got %d, want 12", out.Value)
	}
}

func TestFloatCompareBranch(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("fcmp", false)
	x := b.Param("x", ir.KindFloat)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	lt := b.DeclareBlock("lt")
	ge := b.DeclareBlock("ge")
	b.SetBlock(entry)
	b.If(ir.CondLT, ir.Var(x), ir.ConstFloat(1.5), lt, ge)
	b.SetBlock(lt)
	b.Return(ir.ConstInt(1))
	b.SetBlock(ge)
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	for _, tc := range []struct {
		x    float64
		want int64
	}{{1.0, 1}, {1.5, 0}, {2.0, 0}, {-3.0, 1}} {
		out, err := m.Call(f, int64(math.Float64bits(tc.x)))
		if err != nil {
			t.Fatal(err)
		}
		if out.Value != tc.want {
			t.Fatalf("x=%g: got %d, want %d", tc.x, out.Value, tc.want)
		}
	}
}

func TestStepLimit(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("spin", false)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	b.SetBlock(entry)
	loop := b.DeclareBlock("loop")
	b.Jump(loop)
	b.SetBlock(loop)
	x := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(1))
	b.Jump(loop)
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	m.MaxSteps = 10_000
	_, err := m.Call(f)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	// The wrapped error must say which function ran away and how far it got.
	if !strings.Contains(err.Error(), "spin") || !strings.Contains(err.Error(), "10000") {
		t.Fatalf("err = %v, want function name and step count", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("rec", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	meth := p.AddMethod(nil, "rec", nil, false)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.CallStatic(v, meth, ir.Var(n))
	b.Return(ir.Var(v))
	f := b.Finish()
	meth.Fn = f

	m := New(arch.IA32Win(), p)
	if _, err := m.Call(f, 1); err == nil {
		t.Fatal("unbounded recursion did not error")
	}
}

func TestExceptionPropagatesThroughCallToCallerHandler(t *testing.T) {
	p, c := prog()
	// callee dereferences null.
	cb := ir.NewFunc("boom", false)
	a := cb.Param("a", ir.KindRef)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	v := cb.Temp(ir.KindInt)
	cb.GetField(v, a, c.FieldByName("f"))
	cb.Return(ir.Var(v))
	meth := p.AddMethod(nil, "boom", cb.Finish(), false)

	// caller invokes it inside a try region.
	b := ir.NewFunc("caller", false)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)
	b.SetBlock(entry)
	r := b.Temp(ir.KindInt)
	b.CallStatic(r, meth, ir.Null())
	b.Return(ir.Var(r))
	b.SetBlock(handler)
	b.Return(ir.ConstInt(-1))
	f := b.F
	region := f.NewRegion(handler, exc)
	entry.Try = region.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone || out.Value != -1 {
		t.Fatalf("out = %+v, want handler result -1", out)
	}
}

func TestNegativeArraySizeThrows(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("neg", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	a := b.Temp(ir.KindRef)
	b.NewArray(a, ir.Var(n))
	ln := b.Temp(ir.KindInt)
	b.ArrayLength(ln, a)
	b.Return(ir.Var(ln))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, -4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNegativeArraySize {
		t.Fatalf("exc = %v, want NegativeArraySizeException", out.Exc)
	}
	out, err = m.Call(f, 4)
	if err != nil || out.Value != 4 {
		t.Fatalf("length = %+v err=%v, want 4", out, err)
	}
}

func TestThrowInstruction(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("thr", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	// Allocate an AIOOBE-shaped exception via a failing boundcheck caught
	// nowhere: simpler — raise via boundcheck.
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.ConstInt(5), ir.ConstInt(2)}})
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcArrayIndexOutOfBounds || out.ExcRef == 0 {
		t.Fatalf("out = %+v, want escaped AIOOBE with object", out)
	}
}

func TestSpeculatedNullReadYieldsZeroOnAIX(t *testing.T) {
	p, c := prog()
	b := ir.NewFunc("spec", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	ld := b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	ld.Speculated = true
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.PPCAIX(), p)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone || out.Value != 0 {
		t.Fatalf("speculated null read = %+v, want silent 0", out)
	}
}

func TestCyclesAccumulateAcrossCalls(t *testing.T) {
	p, c := prog()
	f := makeGetF(c)
	m := New(arch.IA32Win(), p)
	obj := m.Heap.AllocObject(c)
	if _, err := m.Call(f, obj); err != nil {
		t.Fatal(err)
	}
	first := m.Cycles
	if _, err := m.Call(f, obj); err != nil {
		t.Fatal(err)
	}
	if m.Cycles != 2*first {
		t.Fatalf("cycles = %d after two identical runs, want %d", m.Cycles, 2*first)
	}
}
