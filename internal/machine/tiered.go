package machine

import (
	"fmt"
	"sort"
	"time"

	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// Tiered adaptive execution.
//
// A tiered machine starts every method in the switch interpreter (tier 0),
// promotes it to the closure-compiled engine once its block-entry profile
// crosses a threshold (tier 1), and — when the per-check profile shows hot
// checks that never saw a null — recompiles it speculatively (tier 2):
// those checks become zero-cost speculation guards (ir.Instr.SpecGuard)
// beyond what phase 1/phase 2 could prove. A guard that actually meets a
// null fires as a hardware trap, raises the exact NullPointerException the
// explicit check would have raised at the same program point, and triggers
// deoptimization: the speculation is blacklisted, the method falls back to
// the conservative artifact (observationally identical to tier 0 by the
// engine-equivalence invariant), the faulting invocation transfers to that
// artifact at the raise dispatch, and a conservative recompile is pushed
// through the compile cache. Because the guard sits at the original check's
// program point — before any side effect the check was protecting — no heap
// or local state needs rolling back, and the final Outcome is identical to
// the untiered engines by construction, even when the profile lies.
//
// Promotion thresholds count block entries, the same facts
// obs.ExecProfile records; each method keeps the threshold in decremented
// ("budget") form so the hot path pays one nil test per block entry when
// tiering is off and one extra decrement-and-test when it is on. Speculation
// candidates come from the per-check counters the profile accumulates
// (obs.CheckCounts), which both engines maintain through pointers bound at
// prepare/closure-compile time.
//
// Tier artifacts are whole-program compiles: the SpecCompiler callback
// rebuilds and recompiles the source program under a speculation mask, so
// the machine package never imports the jit package. Speculation is a
// post-pipeline flag flip on a deterministic recompile, which keeps every
// artifact block-for-block aligned with the conservative one — that
// alignment is what makes on-stack replacement (tier 0→1 and 1→2 hand-offs
// mid-invocation) and deopt transfers exact.

// TierPolicy sets the promotion thresholds.
type TierPolicy struct {
	// T1Blocks is how many block entries a method accumulates in the
	// interpreter before promoting to the closure engine. ≤ 0 disables
	// promotion entirely (the method stays interpreted).
	T1Blocks int64
	// T2Blocks is how many further block entries a tier-1 method accumulates
	// before a speculative recompile is attempted. ≤ 0 disables tier 2.
	T2Blocks int64
	// MinCheckExecs is the minimum observed executions before a
	// zero-null check may be speculated; below it the profile is too thin to
	// bet on and the promotion attempt is retried after another T2Blocks.
	MinCheckExecs int64
	// SpecRecompileBudget bounds tier-2 speculative recompiles per method
	// (0 → DefaultSpecRecompileBudget). Each deopt re-arms the promotion
	// countdown with exponential backoff (T2Blocks doubling per attempt);
	// once the budget is spent the method parks at tierClosureFinal and the
	// exhaustion is surfaced in TierReport.BudgetExhausted. Without the
	// bound a pathological profile — checks that alternate between long
	// null-free stretches and bursts — can recompile indefinitely.
	SpecRecompileBudget int
}

// DefaultSpecRecompileBudget is the per-method tier-2 recompile bound
// applied when TierPolicy.SpecRecompileBudget is zero.
const DefaultSpecRecompileBudget = 8

// DefaultTierPolicy returns the thresholds the bench harness uses.
func DefaultTierPolicy() TierPolicy {
	return TierPolicy{T1Blocks: 2048, T2Blocks: 8192, MinCheckExecs: 64,
		SpecRecompileBudget: DefaultSpecRecompileBudget}
}

// SpecCompiler compiles the machine's source program under a speculation
// mask — method qualified name → check ordinals in ir.Func.NullChecks order;
// nil or empty is the conservative compilation — and returns the compiled
// program. The bench harness supplies a closure over the workload builder,
// the jit pipeline and its compile cache (keyed with jit.KeySpec, so
// speculative and conservative artifacts never collide).
type SpecCompiler func(mask map[string][]int) (*ir.Program, error)

// tierLevel is a method's current rung.
type tierLevel uint8

const (
	tierInterp       tierLevel = iota // switch interpreter, counting toward tier 1
	tierClosure                       // closure engine, counting toward tier 2
	tierClosureFinal                  // closure engine, no further promotion
	tierSpec                          // speculative closure artifact
)

// methodTier is one method's tier state.
type methodTier struct {
	name   string
	tier   tierLevel
	budget int64    // block entries remaining until the next promotion attempt
	fn0    *ir.Func // conservative artifact (the program's Method.Fn)
	fn2    *ir.Func // speculative artifact body; nil below tier 2
	cf2    *cFunc
	spec   []int // ordinals speculated in fn2
	// specAttempts counts tier-2 speculative recompiles; capped by
	// TierPolicy.SpecRecompileBudget with exponential deopt backoff.
	specAttempts int
	// exhausted marks the method parked by a spent recompile budget.
	exhausted bool
}

// TierEvent is one promotion/deoptimization, in occurrence order.
type TierEvent struct {
	Method string `json:"method"`
	Kind   string `json:"kind"`  // "promote-t1", "promote-t2", "deopt"
	Check  int    `json:"check"` // fired guard's check ordinal; -1 otherwise
	Specs  int    `json:"specs"` // checks speculated by a promote-t2
}

// TierReport is the controller's summary for the bench tables.
type TierReport struct {
	Events      []TierEvent
	Deopts      int
	SpecLive    int // methods currently at tier 2
	CompileHost time.Duration
	// OSREntries counts mid-invocation hand-offs into a freshly promoted
	// artifact (on-stack replacement at tier 0→1 and 1→2).
	OSREntries int
	// BudgetExhausted lists (sorted) the methods whose tier-2 recompile
	// budget ran out; they are parked at the closure tier for good.
	BudgetExhausted []string
}

// tierController holds the machine's tier ladder. It is created by
// EnableTiering and owned by one Machine (not safe for concurrent use,
// matching the Machine itself).
type tierController struct {
	m       *Machine
	policy  TierPolicy
	compile SpecCompiler

	byFn  map[*ir.Func]*methodTier // every known artifact body → its method
	order []*methodTier            // method order: deterministic mask building
	black map[string]map[int]bool  // blacklisted (method, check ordinal)

	events      []TierEvent
	deopts      int
	osrEntries  int
	compileHost time.Duration

	// gov, when non-nil, is the trap-storm governor (EnableGovernor):
	// per-site trap-rate monitoring with implicit→explicit demotion. See
	// governor.go.
	gov *governor
}

// EnableTiering switches the machine to tiered adaptive execution. compile
// supplies speculative recompiles; nil disables tier 2 regardless of policy.
// Tiering needs the execution profile, so one is attached if absent.
func (m *Machine) EnableTiering(policy TierPolicy, compile SpecCompiler) {
	if m.Profile == nil {
		m.Profile = obs.NewExecProfile()
	}
	t := &tierController{m: m, policy: policy, compile: compile}
	t.rebuild()
	m.tier = t
}

// TierReport returns the controller's event log and totals; zero when the
// machine is untiered.
func (m *Machine) TierReport() TierReport {
	if m.tier == nil {
		return TierReport{}
	}
	t := m.tier
	r := TierReport{Events: t.events, Deopts: t.deopts, OSREntries: t.osrEntries, CompileHost: t.compileHost}
	for _, mt := range t.order {
		if mt.tier == tierSpec {
			r.SpecLive++
		}
		if mt.exhausted {
			r.BudgetExhausted = append(r.BudgetExhausted, mt.name)
		}
	}
	sort.Strings(r.BudgetExhausted)
	return r
}

// rebuild initializes the per-method table from the machine's current
// program. Everything restarts at tier 0 with a clean blacklist.
func (t *tierController) rebuild() {
	t.byFn = make(map[*ir.Func]*methodTier)
	t.order = t.order[:0]
	t.black = make(map[string]map[int]bool)
	if t.m.Prog == nil {
		return
	}
	startBudget := t.policy.T1Blocks
	if startBudget <= 0 {
		startBudget = 1 << 62 // promotion disabled: the countdown never fires
	}
	for _, mth := range t.m.Prog.Methods {
		if mth.Fn == nil {
			continue
		}
		mt := &methodTier{name: mth.QualifiedName(), tier: tierInterp, budget: startBudget, fn0: mth.Fn}
		t.byFn[mth.Fn] = mt
		t.order = append(t.order, mt)
	}
}

// reset invalidates all tier state. ResetPrepared calls it so triage
// bisection replays — which swap Method.Fn values between Calls — can never
// dispatch through a stale speculative closure of the previous generation.
// Governor site bindings are dropped with the tier table (they hold
// methodTier pointers); the demote set and policy state survive, matching
// the monotone-demotion contract.
func (t *tierController) reset() {
	t.rebuild()
	if t.gov != nil {
		t.gov.refs = make(map[*ir.Instr]*govSite)
	}
}

// stateOf returns fn's tier state, or nil for bodies outside the program
// (bare test functions). One map lookup per call; never on the block path.
func (t *tierController) stateOf(fn *ir.Func) *methodTier { return t.byFn[fn] }

// specBudget returns the effective per-method tier-2 recompile bound.
func (t *tierController) specBudget() int {
	if t.policy.SpecRecompileBudget > 0 {
		return t.policy.SpecRecompileBudget
	}
	return DefaultSpecRecompileBudget
}

// tierInvoke dispatches one call through the tier table. The tier chooses
// the artifact and engine; all rungs are observationally identical, so this
// only moves cycles between "explicit check" and "trap" flavors exactly as
// the compiled artifacts dictate.
func (m *Machine) tierInvoke(fn *ir.Func, args []int64, depth int) (Outcome, error) {
	mt := m.tier.byFn[fn]
	if mt == nil {
		return m.execClosure(fn, args, depth)
	}
	switch mt.tier {
	case tierInterp:
		return m.exec(mt.fn0, args, depth)
	case tierSpec:
		return m.execCf(mt.fn2, mt.cf2, args, depth)
	default: // tierClosure, tierClosureFinal
		return m.execCf(mt.fn0, m.compiled(mt.fn0), args, depth)
	}
}

// promoteT1 promotes an interpreted method to the closure engine, returning
// the compiled artifact for the caller's on-stack replacement (nil when
// promotion is disabled). The closure-compile cost counts toward
// compile-time-to-peak.
func (t *tierController) promoteT1(mt *methodTier) *cFunc {
	if t.policy.T1Blocks <= 0 {
		return nil
	}
	start := time.Now()
	cf := t.m.compiled(mt.fn0)
	t.compileHost += time.Since(start)
	if t.policy.T2Blocks > 0 && t.compile != nil {
		mt.tier = tierClosure
		mt.budget = t.policy.T2Blocks
	} else {
		mt.tier = tierClosureFinal
	}
	t.osrEntries++
	t.events = append(t.events, TierEvent{Method: mt.name, Kind: "promote-t1", Check: -1})
	t.m.Recorder.Record(t.m.steps, "tier", "promote-t1", mt.name, "osr into closure artifact")
	return cf
}

// candidates returns the ordinals of mt's speculable checks: executed at
// least MinCheckExecs times, zero nulls observed, not blacklisted. thin
// reports whether some check is still below the execution floor (the
// promotion attempt should be retried once more data accumulates).
func (t *tierController) candidates(mt *methodTier) (ords []int, thin bool) {
	checks := mt.fn0.NullChecks()
	bl := t.black[mt.name]
	for ord, in := range checks {
		if bl[ord] {
			continue
		}
		c := t.m.Profile.PeekCheck(in)
		if c == nil || c.Execs < t.policy.MinCheckExecs {
			thin = true
			continue
		}
		if c.Nulls == 0 {
			ords = append(ords, ord)
		}
	}
	return ords, thin
}

// specMask assembles the whole-program speculation mask: every method
// currently at tier 2 keeps its ordinals, plus the new candidate set.
func (t *tierController) specMask(promoting *methodTier, cand []int) map[string][]int {
	mask := make(map[string][]int)
	for _, mt := range t.order {
		if mt.tier == tierSpec && len(mt.spec) > 0 {
			mask[mt.name] = mt.spec
		}
	}
	if len(cand) > 0 {
		mask[promoting.name] = cand
	}
	return mask
}

// promoteT2 attempts the speculative recompile of a tier-1 method. On
// success it returns the speculative body and closure artifact for the
// caller's mid-invocation hand-off. On failure it either re-arms the
// countdown (profile still too thin) or parks the method at
// tierClosureFinal (nothing left to speculate, or the recompile failed).
func (t *tierController) promoteT2(mt *methodTier) (*ir.Func, *cFunc) {
	if mt.specAttempts >= t.specBudget() {
		// Recompile budget spent: park for good and surface the exhaustion.
		mt.tier = tierClosureFinal
		if !mt.exhausted {
			mt.exhausted = true
			t.events = append(t.events, TierEvent{Method: mt.name, Kind: "spec-budget-exhausted", Check: -1})
			t.m.Recorder.Record(t.m.steps, "tier", "spec-budget-exhausted", mt.name,
				fmt.Sprintf("parked after %d recompiles", mt.specAttempts))
		}
		return nil, nil
	}
	cand, thin := t.candidates(mt)
	if len(cand) == 0 {
		if thin {
			mt.budget = t.policy.T2Blocks
		} else {
			mt.tier = tierClosureFinal
		}
		return nil, nil
	}
	mt.specAttempts++
	start := time.Now()
	prog2, err := t.compile(t.specMask(mt, cand))
	t.compileHost += time.Since(start)
	if err != nil {
		mt.tier = tierClosureFinal
		return nil, nil
	}
	fn2 := t.adopt(prog2, mt)
	if fn2 == nil {
		mt.tier = tierClosureFinal
		return nil, nil
	}
	start = time.Now()
	cf2 := t.m.compiled(fn2)
	t.compileHost += time.Since(start)
	mt.tier = tierSpec
	mt.fn2, mt.cf2 = fn2, cf2
	mt.spec = cand
	t.osrEntries++
	t.events = append(t.events, TierEvent{Method: mt.name, Kind: "promote-t2", Check: -1, Specs: len(cand)})
	t.m.Recorder.Record(t.m.steps, "tier", "promote-t2", mt.name,
		fmt.Sprintf("%d checks speculated", len(cand)))
	return fn2, cf2
}

// adopt registers a freshly compiled program generation: every method body
// maps into byFn (calls inside the new artifact dispatch through the tier
// table like any other), and each body's checks alias the conservative
// artifact's profile counters — compilation is deterministic, so ordinals
// align — letting conservative and speculative runs accumulate one profile.
// Returns the promoting method's new body.
func (t *tierController) adopt(prog2 *ir.Program, promoting *methodTier) *ir.Func {
	byName := make(map[string]*methodTier, len(t.order))
	for _, mt := range t.order {
		byName[mt.name] = mt
	}
	var promoted *ir.Func
	for _, mth := range prog2.Methods {
		if mth.Fn == nil {
			continue
		}
		mt := byName[mth.QualifiedName()]
		if mt == nil {
			continue
		}
		t.byFn[mth.Fn] = mt
		// Block-aligned generations share one block-entry counter box, so
		// the execution profile survives the artifact swap instead of
		// fragmenting across generations.
		t.m.Profile.BindCounters(mth.Fn, mt.fn0)
		checks0 := mt.fn0.NullChecks()
		for ord, in2 := range mth.Fn.NullChecks() {
			if ord < len(checks0) {
				t.m.Profile.BindCheck(in2, t.m.Profile.CheckCounter(checks0[ord]))
			}
		}
		if mt == promoting {
			promoted = mth.Fn
		}
	}
	return promoted
}

// deopted handles a fired speculation guard: blacklist the (method, check)
// pair, demote the method to the conservative tier-1 artifact, push a
// conservative recompile through the compile cache, and transfer the
// faulting invocation (fr non-nil when the closure engine trapped) to the
// conservative artifact at the raise dispatch. Re-promotion goes back
// through the countdown with the shrunken mask — a distinct cache key, so
// the recompile is a miss the first time and a hit on replay.
func (t *tierController) deopted(fn *ir.Func, in *ir.Instr, fr *frame) {
	mt := t.byFn[fn]
	if mt == nil {
		return
	}
	ord := int(in.SpecGuard) - 1
	bl := t.black[mt.name]
	if bl == nil {
		bl = make(map[int]bool)
		t.black[mt.name] = bl
	}
	if !bl[ord] {
		bl[ord] = true
	}
	t.deopts++
	mt.tier = tierClosure
	// Exponential backoff: each failed speculation doubles the block-entry
	// countdown before the next recompile attempt, so a flapping profile
	// converges to the conservative artifact instead of thrashing the
	// compiler. The budget check in promoteT2 is the hard stop.
	shift := uint(mt.specAttempts)
	if shift > 20 {
		shift = 20
	}
	mt.budget = t.policy.T2Blocks << shift
	mt.fn2, mt.cf2 = nil, nil
	mt.spec = nil
	if t.compile != nil {
		start := time.Now()
		_, _ = t.compile(nil) // conservative recompile through the cache
		t.compileHost += time.Since(start)
	}
	if fr != nil {
		fr.deoptFn = mt.fn0
		fr.deoptCf = t.m.compiled(mt.fn0)
	}
	t.events = append(t.events, TierEvent{Method: mt.name, Kind: "deopt", Check: ord})
	t.m.Recorder.Record(t.m.steps, "tier", "deopt", mt.name,
		fmt.Sprintf("guard %d fired: blacklisted, backoff %d blocks", ord, mt.budget))
}

// Blacklisted returns the blacklisted check ordinals per method, sorted —
// the deopt-storm tests assert convergence with it.
func (m *Machine) Blacklisted() map[string][]int {
	if m.tier == nil {
		return nil
	}
	out := make(map[string][]int)
	for name, bl := range m.tier.black {
		for ord := range bl {
			out[name] = append(out[name], ord)
		}
		sort.Ints(out[name])
	}
	return out
}
