package machine

import (
	"math"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/rt"
)

func TestAllMathFns(t *testing.T) {
	p, _ := prog()
	for _, tc := range []struct {
		fn   ir.MathFn
		x    float64
		want float64
	}{
		{ir.MathExp, 0, 1},
		{ir.MathLog, 1, 0},
		{ir.MathSin, 0, 0},
		{ir.MathCos, 0, 1},
		{ir.MathSqrt, 16, 4},
		{ir.MathAbs, -2.5, 2.5},
	} {
		b := ir.NewFunc("m", false)
		x := b.Param("x", ir.KindFloat)
		b.Result(ir.KindFloat)
		b.Block("entry")
		v := b.Temp(ir.KindFloat)
		b.Math(tc.fn, v, ir.Var(x))
		b.Return(ir.Var(v))
		f := b.Finish()

		m := New(arch.IA32Win(), p)
		out, err := m.Call(f, int64(math.Float64bits(tc.x)))
		if err != nil {
			t.Fatalf("%v: %v", tc.fn, err)
		}
		if got := math.Float64frombits(uint64(out.Value)); got != tc.want {
			t.Fatalf("%v(%g) = %g, want %g", tc.fn, tc.x, got, tc.want)
		}
	}
}

func TestAllIntConditions(t *testing.T) {
	p, _ := prog()
	for _, tc := range []struct {
		cond    ir.Cond
		a, b    int64
		wantHit bool
	}{
		{ir.CondEQ, 3, 3, true}, {ir.CondEQ, 3, 4, false},
		{ir.CondNE, 3, 4, true}, {ir.CondNE, 3, 3, false},
		{ir.CondLT, 2, 3, true}, {ir.CondLT, 3, 3, false},
		{ir.CondLE, 3, 3, true}, {ir.CondLE, 4, 3, false},
		{ir.CondGT, 4, 3, true}, {ir.CondGT, 3, 3, false},
		{ir.CondGE, 3, 3, true}, {ir.CondGE, 2, 3, false},
	} {
		b := ir.NewFunc("c", false)
		x := b.Param("x", ir.KindInt)
		y := b.Param("y", ir.KindInt)
		b.Result(ir.KindInt)
		entry := b.Block("entry")
		hit := b.DeclareBlock("hit")
		miss := b.DeclareBlock("miss")
		b.SetBlock(entry)
		b.If(tc.cond, ir.Var(x), ir.Var(y), hit, miss)
		b.SetBlock(hit)
		b.Return(ir.ConstInt(1))
		b.SetBlock(miss)
		b.Return(ir.ConstInt(0))
		f := b.Finish()

		m := New(arch.IA32Win(), p)
		out, err := m.Call(f, tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if tc.wantHit {
			want = 1
		}
		if out.Value != want {
			t.Fatalf("%d %s %d -> %d, want %d", tc.a, tc.cond, tc.b, out.Value, want)
		}
	}
}

func TestAllFloatConditionsViaCmp(t *testing.T) {
	p, _ := prog()
	for _, tc := range []struct {
		cond ir.Cond
		a, b float64
		want int64
	}{
		{ir.CondEQ, 1.5, 1.5, 1}, {ir.CondNE, 1.5, 2.5, 1},
		{ir.CondLT, 1.0, 1.5, 1}, {ir.CondLE, 1.5, 1.5, 1},
		{ir.CondGT, 2.0, 1.5, 1}, {ir.CondGE, 1.5, 1.5, 1},
		{ir.CondGT, 1.0, 1.5, 0}, {ir.CondEQ, 1.0, 1.5, 0},
	} {
		b := ir.NewFunc("fc", false)
		x := b.Param("x", ir.KindFloat)
		y := b.Param("y", ir.KindFloat)
		b.Result(ir.KindInt)
		b.Block("entry")
		v := b.Temp(ir.KindInt)
		b.Cmp(v, tc.cond, ir.Var(x), ir.Var(y))
		b.Return(ir.Var(v))
		f := b.Finish()

		m := New(arch.IA32Win(), p)
		out, err := m.Call(f, int64(math.Float64bits(tc.a)), int64(math.Float64bits(tc.b)))
		if err != nil {
			t.Fatal(err)
		}
		if out.Value != tc.want {
			t.Fatalf("%g %s %g = %d, want %d", tc.a, tc.cond, tc.b, out.Value, tc.want)
		}
	}
}

func TestCallArgCountMismatch(t *testing.T) {
	p, c := prog()
	f := makeGetF(c)
	m := New(arch.IA32Win(), p)
	if _, err := m.Call(f); err == nil {
		t.Fatal("expected arg-count error")
	}
	if _, err := m.Call(f, 1, 2); err == nil {
		t.Fatal("expected arg-count error")
	}
}

func TestIntrinsicCallWithoutBody(t *testing.T) {
	p, _ := prog()
	exp := p.AddMethod(nil, "Math.exp", nil, false)
	exp.Intrinsic = ir.MathExp

	b := ir.NewFunc("usesexp", false)
	x := b.Param("x", ir.KindFloat)
	b.Result(ir.KindFloat)
	b.Block("entry")
	v := b.Temp(ir.KindFloat)
	b.CallStatic(v, exp, ir.Var(x))
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.PPCAIX(), p) // stays a call on PPC; runtime implements it
	out, err := m.Call(f, int64(math.Float64bits(1.0)))
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(uint64(out.Value)); math.Abs(got-math.E) > 1e-12 {
		t.Fatalf("exp(1) = %g", got)
	}
}

func TestBodylessNonIntrinsicCallErrors(t *testing.T) {
	p, _ := prog()
	ghost := p.AddMethod(nil, "ghost", nil, false)
	b := ir.NewFunc("callsghost", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.CallStatic(v, ghost)
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	if _, err := m.Call(f); err == nil {
		t.Fatal("expected bodyless-method error")
	}
}

func TestNullArrayStoreTrapsOnWriteArchs(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("nullstore", false)
	a := b.Param("a", ir.KindRef)
	b.Block("entry")
	// Raw unguarded store to a[0] of a null array: address 8 is a trap
	// candidate; unmarked -> simulation error on trapping models.
	b.Emit(&ir.Instr{Op: ir.OpArrayStore, Dst: ir.NoVar,
		Args: []ir.Operand{ir.Var(a), ir.ConstInt(0), ir.ConstInt(9)}})
	b.ReturnVoid()
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	if _, err := m.Call(f, 0); err == nil {
		t.Fatal("unguarded null store should be a simulation error")
	}

	// Marked as exception site it becomes a precise NPE.
	b2 := ir.NewFunc("nullstore2", false)
	a2 := b2.Param("a", ir.KindRef)
	b2.Block("entry")
	st := b2.Emit(&ir.Instr{Op: ir.OpArrayStore, Dst: ir.NoVar,
		Args: []ir.Operand{ir.Var(a2), ir.ConstInt(0), ir.ConstInt(9)}})
	st.ExcSite = true
	st.ExcVar = a2
	b2.ReturnVoid()
	f2 := b2.Finish()
	m2 := New(arch.IA32Win(), p)
	out, err := m2.Call(f2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNullPointer {
		t.Fatalf("exc = %v, want NPE", out.Exc)
	}
}

func TestGarbageZoneWriteVanishes(t *testing.T) {
	p, c := prog()
	mArch := arch.IA32Win()
	b := ir.NewFunc("gw", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	// Write through null at a big offset: lands in the unprotected gap.
	big := &ir.Field{Name: "far", Kind: ir.KindInt, Offset: int32(mArch.TrapAreaBytes) + 128, Class: c}
	b.Emit(&ir.Instr{Op: ir.OpPutField, Dst: ir.NoVar, Field: big,
		Args: []ir.Operand{ir.Var(a), ir.ConstInt(1)}})
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	m := New(mArch, p)
	obj := m.Heap.AllocObject(c)
	before, _ := m.Heap.Peek(obj)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone {
		t.Fatalf("exc = %v", out.Exc)
	}
	if after, _ := m.Heap.Peek(obj); after != before {
		t.Fatal("garbage-zone write corrupted the heap")
	}
}

func TestInstanceOfSemantics(t *testing.T) {
	p, c := prog()
	other := p.NewClass("Other", &ir.Field{Name: "z", Kind: ir.KindInt})
	b := ir.NewFunc("iof", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.InstanceOf(v, a, c)
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	objC := m.Heap.AllocObject(c)
	objO := m.Heap.AllocObject(other)
	for _, tc := range []struct {
		ref  int64
		want int64
	}{{objC, 1}, {objO, 0}, {0, 0}} {
		out, err := m.Call(f, tc.ref)
		if err != nil {
			t.Fatal(err)
		}
		if out.Value != tc.want {
			t.Fatalf("instanceof(%#x) = %d, want %d", tc.ref, out.Value, tc.want)
		}
	}
}
