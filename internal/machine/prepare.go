package machine

import (
	"math"

	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// This file implements the prepared-instruction tables of the exec loop.
// Operand classification (the switch over Operand.Kind the interpreter used
// to re-run on every dynamic instruction) is hoisted to a once-per-function
// decode: each operand becomes a pOp that either names a local slot or
// carries both integer and float views of its constant, and each block gets
// a pInstr slice parallel to its Instrs. Tables are cached per *ir.Func and
// invalidated by pointer identity — every compilation builds fresh Func
// values, so a stale table cannot be observed as long as a function's IR is
// not mutated between Calls on the same Machine (nothing in this repository
// does; compilation always completes before execution starts).

// pOp is a pre-decoded operand: a local slot index, or a constant carried in
// both of the views the exec loop needs.
type pOp struct {
	varIdx  int32 // local slot, or -1 for constants
	isFloat bool  // float-kinded (float constant or float-kinded local)
	i64     int64 // constant as the integer word val() yields
	f64     float64
}

// pInstr pairs an instruction with its pre-decoded operands. chk is the
// per-check profile cell, bound once at prepare time for OpNullCheck when a
// profile is attached, so the hot path pays plain field increments and never
// a map lookup.
type pInstr struct {
	in   *ir.Instr
	args []pOp
	chk  *obs.CheckCounts
}

// pFunc holds one function's prepared blocks, dense by Block.ID.
type pFunc struct {
	blocks [][]pInstr
}

func decodeOperand(fn *ir.Func, o ir.Operand) pOp {
	switch o.Kind {
	case ir.OperVar:
		return pOp{varIdx: int32(o.Var), isFloat: fn.Locals[o.Var].Kind == ir.KindFloat}
	case ir.OperConstInt:
		return pOp{varIdx: -1, i64: o.Int, f64: float64(o.Int)}
	case ir.OperConstFloat:
		return pOp{varIdx: -1, isFloat: true, i64: int64(math.Float64bits(o.Float)), f64: o.Float}
	default: // null (and the invalid zero operand): the zero word
		return pOp{varIdx: -1}
	}
}

// maxPreparedFuncs bounds both per-function caches (prepared tables and
// closure-compiled functions). The caches are keyed by *ir.Func identity and
// every compilation builds fresh Func values, so long triage/fuzz sessions
// that push thousands of distinct functions through one Machine would
// otherwise grow them without limit. Hitting the bound evicts one cold entry
// per insertion (second chance, see fncache.go); a working set slightly
// larger than the bound no longer drops everything and re-prepares from
// scratch each lap.
const maxPreparedFuncs = 512

// ResetPrepared drops all cached per-function tables (prepared operands and
// closure-compiled code). Callers that replay many distinct Func values on
// one Machine — triage's bisection replays, long fuzz loops — call it
// between replays to keep the caches from retaining dead functions. Tables
// still referenced by an in-flight exec remain valid; only the cache entries
// are dropped.
func (m *Machine) ResetPrepared() {
	if m.prepared != nil {
		m.prepared.reset()
	}
	if m.compiledFns != nil {
		m.compiledFns.reset()
	}
	// Tier state indexes compiled artifacts by *ir.Func identity too; a replay
	// that swaps Func values must not dispatch through a stale speculative
	// closure, so the controller rebuilds from the current program.
	if m.tier != nil {
		m.tier.reset()
	}
}

// prepare returns fn's prepared table, building and caching it on first use.
func (m *Machine) prepare(fn *ir.Func) *pFunc {
	if m.prepared == nil {
		m.prepared = newFnCache[*pFunc](maxPreparedFuncs)
	}
	if pf, ok := m.prepared.get(fn); ok {
		return pf
	}
	pf := &pFunc{blocks: make([][]pInstr, fn.MaxBlockID()+1)}
	for _, b := range fn.Blocks {
		pins := make([]pInstr, len(b.Instrs))
		for i, in := range b.Instrs {
			args := make([]pOp, len(in.Args))
			for j, o := range in.Args {
				args[j] = decodeOperand(fn, o)
			}
			pins[i] = pInstr{in: in, args: args}
			if in.Op == ir.OpNullCheck && m.Profile != nil {
				pins[i].chk = m.Profile.CheckCounter(in)
			}
			if m.attrSites && in.ExcSite && m.Profile != nil {
				// Attribution counts executions at implicit sites too; the
				// governor bind below overrides with its canonical cell when
				// both are somehow enabled, so traps are never double-counted.
				pins[i].chk = m.Profile.CheckCounter(in)
			}
			if m.tier != nil && m.tier.gov != nil {
				// Governed machines profile trap sites (and demoted checks)
				// through canonical per-(method, ordinal) cells that survive
				// artifact generations; see governor.bind.
				m.tier.gov.bind(m.tier, fn, &pins[i])
			}
		}
		pf.blocks[b.ID] = pins
	}
	m.prepared.put(fn, pf)
	return pf
}
