package machine

import (
	"math"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
	"trapnull/internal/rt"
)

func prog() (*ir.Program, *ir.Class) {
	p := ir.NewProgram("t")
	c := p.NewClass("C",
		&ir.Field{Name: "f", Kind: ir.KindInt},
		&ir.Field{Name: "g", Kind: ir.KindInt},
	)
	return p, c
}

// makeGetF builds: int getf(a) { return a.f } with the builder's split form.
func makeGetF(c *ir.Class) *ir.Func {
	b := ir.NewFunc("getf", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, c.FieldByName("f"))
	b.Return(ir.Var(v))
	return b.Finish()
}

func TestArithmeticAndControlFlow(t *testing.T) {
	b := ir.NewFunc("sum", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(i))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	f := b.Finish()

	p, _ := prog()
	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone || out.Value != 45 {
		t.Fatalf("sum(10) = %+v, want 45", out)
	}
	if m.Cycles <= 0 || m.Stats.Instrs <= 0 {
		t.Fatalf("no accounting: cycles=%d instrs=%d", m.Cycles, m.Stats.Instrs)
	}
}

func TestFieldRoundTrip(t *testing.T) {
	p, c := prog()
	b := ir.NewFunc("rt", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	o := b.Temp(ir.KindRef)
	b.New(o, c)
	b.PutField(o, c.FieldByName("f"), ir.ConstInt(41))
	v := b.Temp(ir.KindInt)
	b.GetField(v, o, c.FieldByName("f"))
	r := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, r, ir.Var(v), ir.ConstInt(1))
	b.Return(ir.Var(r))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 42 {
		t.Fatalf("got %d, want 42", out.Value)
	}
}

func TestArrayRoundTripAndBounds(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("arr", false)
	n := b.Param("n", ir.KindInt)
	idx := b.Param("i", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	a := b.Temp(ir.KindRef)
	b.NewArray(a, ir.Var(n))
	b.ArrayStore(a, ir.Var(idx), ir.ConstInt(7))
	v := b.Temp(ir.KindInt)
	b.ArrayLoad(v, a, ir.Var(idx))
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 7 {
		t.Fatalf("a[3] = %d, want 7", out.Value)
	}

	out, err = m.Call(f, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcArrayIndexOutOfBounds {
		t.Fatalf("exc = %v, want AIOOBE", out.Exc)
	}
	out, err = m.Call(f, 5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcArrayIndexOutOfBounds {
		t.Fatalf("exc = %v, want AIOOBE for negative index", out.Exc)
	}
}

func TestExplicitNullCheckThrowsNPE(t *testing.T) {
	p, c := prog()
	f := makeGetF(c)
	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 0) // null argument
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNullPointer {
		t.Fatalf("exc = %v, want NPE", out.Exc)
	}
	if m.Stats.TrapsTaken != 0 {
		t.Fatal("explicit check must not count as a hardware trap")
	}
	if m.Stats.ThrownSoftware == 0 {
		t.Fatal("software throw not counted")
	}
}

func TestImplicitNullCheckTrapsToNPE(t *testing.T) {
	p, c := prog()
	f := makeGetF(c)
	nullcheck.Phase2(f, arch.IA32Win())
	if f.CountOp(ir.OpNullCheck) != 0 {
		t.Fatalf("setup: phase 2 left explicit checks:\n%s", f)
	}
	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNullPointer {
		t.Fatalf("exc = %v, want NPE via trap", out.Exc)
	}
	if m.Stats.TrapsTaken != 1 {
		t.Fatalf("traps = %d, want 1", m.Stats.TrapsTaken)
	}
}

func TestUnexpectedTrapIsSimulationError(t *testing.T) {
	p, c := prog()
	// An unguarded, unmarked dereference of null: a real VM would crash.
	b := ir.NewFunc("bad", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	if _, err := m.Call(f, 0); err == nil {
		t.Fatal("expected simulation error for unexpected trap")
	}
}

func TestAIXMissedNPEOnNullRead(t *testing.T) {
	p, c := prog()
	f := makeGetF(c)
	// Illegal Implicit: run the Intel phase 2 but execute on AIX, where
	// reads do not trap. The read silently yields zero — the paper's
	// spec-violating configuration.
	nullcheck.Phase2(f, arch.IA32Win())
	m := New(arch.PPCAIX(), p)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone {
		t.Fatalf("exc = %v, want silent missed NPE", out.Exc)
	}
	if out.Value != 0 {
		t.Fatalf("null read = %d, want 0", out.Value)
	}
}

func TestAIXWriteTrapWorks(t *testing.T) {
	p, c := prog()
	b := ir.NewFunc("put", false)
	a := b.Param("a", ir.KindRef)
	b.Block("entry")
	b.PutField(a, c.FieldByName("f"), ir.ConstInt(1))
	b.ReturnVoid()
	f := b.Finish()

	st := nullcheck.Phase2(f, arch.PPCAIX())
	if st.Implicit != 1 {
		t.Fatalf("setup: write not implicit on AIX:\n%s", f)
	}
	m := New(arch.PPCAIX(), p)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNullPointer || m.Stats.TrapsTaken != 1 {
		t.Fatalf("out=%+v traps=%d, want NPE via trap", out, m.Stats.TrapsTaken)
	}
}

func TestBigOffsetNullReadHitsGarbageNotHeap(t *testing.T) {
	p := ir.NewProgram("t")
	mArch := arch.IA32Win()
	c := p.NewClass("Big",
		&ir.Field{Name: "far", Kind: ir.KindInt, Offset: int32(mArch.TrapAreaBytes) + 64},
	)
	b := ir.NewFunc("big", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	// Unguarded big-offset read of null: must NOT trap and must not read
	// live heap (the gap below HeapBase absorbs it).
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: c.FieldByName("far"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(mArch, p)
	// Allocate something so the heap is non-empty.
	m.Heap.AllocArray(16)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone || out.Value != 0 {
		t.Fatalf("big-offset null read: %+v, want silent 0", out)
	}
}

func TestDivByZeroThrows(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("div", false)
	x := b.Param("x", ir.KindInt)
	y := b.Param("y", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	b.Binop(ir.OpDiv, v, ir.Var(x), ir.Var(y))
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcArithmetic {
		t.Fatalf("exc = %v, want ArithmeticException", out.Exc)
	}
	out, err = m.Call(f, 10, 3)
	if err != nil || out.Value != 3 {
		t.Fatalf("10/3 = %+v, %v", out, err)
	}
}

func TestTryCatchHandler(t *testing.T) {
	p, c := prog()
	b := ir.NewFunc("catch", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)

	b.SetBlock(entry)
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, c.FieldByName("f"))
	b.Return(ir.Var(v))

	b.SetBlock(handler)
	b.Return(ir.ConstInt(-99))

	f := b.F
	r := f.NewRegion(handler, exc)
	entry.Try = r.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone || out.Value != -99 {
		t.Fatalf("handler result = %+v, want -99", out)
	}
}

func TestVirtualCallDispatchAndInlineEquivalence(t *testing.T) {
	p, c := prog()
	cb := ir.NewFunc("getF", true)
	this := cb.Param("this", ir.KindRef)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	v := cb.Temp(ir.KindInt)
	cb.GetField(v, this, c.FieldByName("f"))
	cb.Return(ir.Var(v))
	meth := p.AddMethod(c, "getF", cb.Finish(), true)

	b := ir.NewFunc("caller", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	o := b.Temp(ir.KindRef)
	b.New(o, c)
	b.PutField(o, c.FieldByName("f"), ir.ConstInt(123))
	r := b.Temp(ir.KindInt)
	b.CallVirtual(r, meth, o)
	b.Return(ir.Var(r))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 123 {
		t.Fatalf("virtual call = %d, want 123", out.Value)
	}
	if m.Stats.Calls != 1 {
		t.Fatalf("calls = %d, want 1", m.Stats.Calls)
	}
}

func TestMathOps(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("m", false)
	x := b.Param("x", ir.KindFloat)
	b.Result(ir.KindFloat)
	b.Block("entry")
	v := b.Temp(ir.KindFloat)
	b.Math(ir.MathSqrt, v, ir.Var(x))
	b.Return(ir.Var(v))
	f := b.Finish()

	m := New(arch.IA32Win(), p)
	out, err := m.Call(f, fbits(9.0))
	if err != nil {
		t.Fatal(err)
	}
	if got := bitsToF(out.Value); got != 3.0 {
		t.Fatalf("sqrt(9) = %g, want 3", got)
	}
}

func bitsToF(v int64) float64 {
	return math.Float64frombits(uint64(v))
}

func TestCheaperWithFewerChecks(t *testing.T) {
	// The same source costs fewer cycles after the null check optimization:
	// the foundation of every benchmark table.
	p, c := prog()
	build := func() *ir.Func {
		b := ir.NewFunc("hot", false)
		a := b.Param("a", ir.KindRef)
		n := b.Param("n", ir.KindInt)
		b.Result(ir.KindInt)
		i := b.Local("i", ir.KindInt)
		s := b.Local("s", ir.KindInt)
		entry := b.Block("entry")
		body := b.DeclareBlock("body")
		exit := b.DeclareBlock("exit")
		b.SetBlock(entry)
		b.Move(i, ir.ConstInt(0))
		b.Move(s, ir.ConstInt(0))
		b.Jump(body)
		b.SetBlock(body)
		v := b.Temp(ir.KindInt)
		b.GetField(v, a, c.FieldByName("f"))
		b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
		b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
		b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
		b.SetBlock(exit)
		b.Return(ir.Var(s))
		return b.Finish()
	}

	mkObj := func(m *Machine) int64 {
		o := m.Heap.AllocObject(c)
		m.Heap.Store(o+int64(c.FieldByName("f").Offset), 2)
		return o
	}

	baseline := build()
	mb := New(arch.IA32Win(), p)
	ob := mkObj(mb)
	outB, err := mb.Call(baseline, ob, 1000)
	if err != nil {
		t.Fatal(err)
	}

	optimized := build()
	nullcheck.Phase1(optimized)
	nullcheck.Phase2(optimized, arch.IA32Win())
	mo := New(arch.IA32Win(), p)
	oo := mkObj(mo)
	outO, err := mo.Call(optimized, oo, 1000)
	if err != nil {
		t.Fatal(err)
	}

	if outB.Value != outO.Value {
		t.Fatalf("results differ: %d vs %d", outB.Value, outO.Value)
	}
	if mo.Cycles >= mb.Cycles {
		t.Fatalf("optimization did not pay: %d >= %d cycles", mo.Cycles, mb.Cycles)
	}
	if mo.Stats.ExplicitChecks >= mb.Stats.ExplicitChecks {
		t.Fatalf("explicit checks not reduced: %d >= %d",
			mo.Stats.ExplicitChecks, mb.Stats.ExplicitChecks)
	}
}
