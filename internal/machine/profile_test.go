package machine

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// loopFunc builds: sum(n) { s=0; i=0; do { s+=i; i++ } while (i<n); return s }
func loopFunc() *ir.Func {
	b := ir.NewFunc("sum", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(i))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return b.Finish()
}

// profiledRun executes fn(arg) with a fresh profile attached and returns the
// per-block counters.
func profiledRun(t *testing.T, e Engine, fn *ir.Func, arg int64) []int64 {
	t.Helper()
	p := ir.NewProgram("t")
	m := New(arch.IA32Win(), p)
	m.Engine = e
	prof := obs.NewExecProfile()
	m.Profile = prof
	if _, err := m.Call(fn, arg); err != nil {
		t.Fatalf("call: %v", err)
	}
	return prof.Counters(fn)
}

// TestExecProfileCounts pins the block-entry semantics: the loop body is
// entered once per iteration, entry and exit exactly once.
func TestExecProfileCounts(t *testing.T) {
	fn := loopFunc()
	byName := map[string]int{}
	for _, b := range fn.Blocks {
		byName[b.Name] = b.ID
	}
	for _, e := range []Engine{EngineClosure, EngineSwitch} {
		c := profiledRun(t, e, fn, 10)
		if got := c[byName["entry"]]; got != 1 {
			t.Errorf("engine %v: entry entered %d times, want 1", e, got)
		}
		if got := c[byName["body"]]; got != 10 {
			t.Errorf("engine %v: body entered %d times, want 10", e, got)
		}
		if got := c[byName["exit"]]; got != 1 {
			t.Errorf("engine %v: exit entered %d times, want 1", e, got)
		}
	}
}

// TestExecProfileEnginesAgree pins that block-entry counts are a semantic
// observable: the closure compiler and the reference switch interpreter must
// produce identical counters for every block.
func TestExecProfileEnginesAgree(t *testing.T) {
	fn := loopFunc()
	closure := profiledRun(t, EngineClosure, fn, 37)
	swi := profiledRun(t, EngineSwitch, fn, 37)
	if len(closure) != len(swi) {
		t.Fatalf("counter lengths differ: closure %d, switch %d", len(closure), len(swi))
	}
	for id := range closure {
		if closure[id] != swi[id] {
			t.Errorf("block %d: closure counted %d, switch %d", id, closure[id], swi[id])
		}
	}
}

// TestExecProfileDisabled pins the zero-cost-off contract at the API level:
// a machine without a profile runs normally and records nothing.
func TestExecProfileDisabled(t *testing.T) {
	fn := loopFunc()
	p := ir.NewProgram("t")
	m := New(arch.IA32Win(), p)
	out, err := m.Call(fn, 5)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if out.Value != 10 {
		t.Errorf("sum(5) = %d, want 10", out.Value)
	}
	if m.Profile != nil {
		t.Error("machine grew a profile it was never given")
	}
}
