// Package machine executes compiled IR on a simulated CPU: it applies the
// architecture model's cycle costs to every instruction, detects hardware
// traps when an access touches the protected page, and converts traps into
// precise NullPointerExceptions at marked exception sites — the role the OS
// signal handler plays in the paper's JIT.
//
// The machine is deliberately strict: a trap at an instruction that phase 2
// did not mark as an exception site is a simulation error (a real VM would
// crash), so optimizer bugs surface as errors rather than wrong numbers.
package machine

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/obs"
	"trapnull/internal/rt"
)

// ExecStats counts dynamic events during execution.
type ExecStats struct {
	Instrs         int64 // instructions executed
	ExplicitChecks int64 // explicit null check instructions executed
	ImplicitSites  int64 // dereferences executed at implicit-check sites
	BoundChecks    int64
	Loads          int64
	Stores         int64
	Calls          int64
	TrapsTaken     int64 // hardware traps that became NPEs
	ThrownSoftware int64 // exceptions raised by explicit checks and checks
}

// Machine executes functions against one heap and one architecture model.
type Machine struct {
	Arch  *arch.Model
	Heap  *rt.Heap
	Prog  *ir.Program
	Stats ExecStats
	// Cycles accumulates the simulated execution time.
	Cycles int64
	// MaxSteps bounds total executed instructions (runaway guard).
	MaxSteps int64
	// Engine selects the execution engine. New installs DefaultEngine; both
	// engines produce identical Outcome/ExecStats/Cycles, so this only
	// trades host speed for reference simplicity.
	Engine Engine
	// Profile, when non-nil, receives per-block entry counts from both
	// engines (obs layer; benchtab -profile). Block entries are semantic
	// facts, so the two engines record identical profiles. Disabled cost:
	// one nil test per function call and one slice-nil test per block.
	Profile *obs.ExecProfile
	// Abort, when non-nil, is polled at block entry by both engines; once it
	// reads true the call unwinds with ErrAborted. The bench harness sets it
	// from a deadline goroutine (Options.CellTimeout) so a runaway cell is
	// cancelled cooperatively instead of hanging the sweep. Disabled cost:
	// one nil test per block entry.
	Abort *atomic.Bool
	// Recorder, when non-nil, is the flight recorder: the adaptive subsystems
	// (tier controller, governor, chaos choke point) log their decisions to it
	// with logical clocks (invocation index + dynamic step). It sits entirely
	// off the per-instruction hot path — only decision points, which are rare
	// by construction, touch it. Disabled cost: nil tests at those points.
	Recorder *obs.Recorder

	steps int64
	// injectedStepFault marks MaxSteps as a chaos-armed engine fault
	// (InjectStepFault) rather than the runaway guard.
	injectedStepFault bool
	// attrSites, set by EnableAttribution, makes prepare bind per-site
	// CheckCounts cells at implicit (ExcSite) sites too, so CycleAttribution
	// can split the run's cycles into per-trap-site buckets afterwards.
	attrSites bool
	// tier, when non-nil, drives tiered adaptive execution (EnableTiering):
	// per-method promotion interpreter → closure engine → speculative
	// recompile, and trap-triggered deoptimization. Untiered cost: one nil
	// test per call and one per block entry.
	tier *tierController
	// prepared caches per-function pre-decoded instruction tables; entries
	// are keyed (and invalidated) by *ir.Func identity. Bounded with
	// second-chance eviction: see fncache.go and ResetPrepared.
	prepared *fnCache[*pFunc]
	// compiledFns caches closure-compiled functions for EngineClosure,
	// bounded the same way.
	compiledFns *fnCache[*cFunc]
	// frames is the closure engine's activation-record pool.
	frames []*frame
}

// New returns a machine for the given model and program.
func New(m *arch.Model, prog *ir.Program) *Machine {
	return &Machine{
		Arch:        m,
		Heap:        rt.NewHeap(0),
		Prog:        prog,
		MaxSteps:    2_000_000_000,
		Engine:      DefaultEngine,
		prepared:    newFnCache[*pFunc](maxPreparedFuncs),
		compiledFns: newFnCache[*cFunc](maxPreparedFuncs),
	}
}

// ErrStepLimit reports that execution exceeded MaxSteps.
var ErrStepLimit = errors.New("machine: step limit exceeded")

// ErrInjectedFault reports an armed chaos fault (InjectStepFault) firing.
var ErrInjectedFault = errors.New("machine: injected fault")

// ErrAborted reports that the Abort flag cancelled the call.
var ErrAborted = errors.New("machine: aborted")

// InjectStepFault arms a deterministic engine fault: execution halts at
// dynamic step count step with an injected-fault error. It reuses the
// step-limit choke point both engines share, so the reported fault names the
// same function at the same count on either engine — the chaos harness diffs
// exactly that. Steps at or beyond the current MaxSteps are ignored.
func (m *Machine) InjectStepFault(step int64) {
	if step > 0 && step < m.MaxSteps {
		m.MaxSteps = step
		m.injectedStepFault = true
	}
}

// Outcome is the result of a call: a normal value or an exception that
// escaped the function.
type Outcome struct {
	Value int64
	Exc   rt.ExcKind
	// ExcRef is the escaped exception object (0 when Exc is ExcNone).
	ExcRef int64
}

// Call runs fn with the given arguments and returns its outcome.
func (m *Machine) Call(fn *ir.Func, args ...int64) (Outcome, error) {
	if len(args) != fn.NumParams {
		return Outcome{}, fmt.Errorf("machine: %s expects %d args, got %d", fn.Name, fn.NumParams, len(args))
	}
	m.Recorder.BeginInvocation()
	if m.tier != nil {
		return m.tierInvoke(fn, args, 0)
	}
	if m.Engine == EngineSwitch {
		return m.exec(fn, args, 0)
	}
	return m.execClosure(fn, args, 0)
}

// stepLimitErr is the shared step-limit error; both engines must produce the
// byte-identical message at the identical dynamic instruction count.
func (m *Machine) stepLimitErr(fn *ir.Func) error {
	if m.injectedStepFault {
		m.Recorder.Record(m.steps, "chaos", "step-fault-fire", fn.Name,
			fmt.Sprintf("armed at step %d", m.MaxSteps))
		return fmt.Errorf("machine: injected step fault in %s at step %d: %w", fn.Name, m.MaxSteps, ErrInjectedFault)
	}
	return fmt.Errorf("machine: %s exceeded %d steps: %w", fn.Name, m.MaxSteps, ErrStepLimit)
}

// raise describes an in-flight exception during exec.
type raise struct {
	kind     rt.ExcKind
	ref      int64
	hardware bool
}

const maxCallDepth = 256

func (m *Machine) exec(fn *ir.Func, args []int64, depth int) (Outcome, error) {
	if depth > maxCallDepth {
		return Outcome{}, fmt.Errorf("machine: call depth exceeded in %s", fn.Name)
	}
	locals := make([]int64, fn.NumLocals())
	copy(locals, args)
	pf := m.prepare(fn)

	// Operands were pre-classified by prepare(); these helpers are the whole
	// residue of the old per-step `switch o.Kind` decode.
	val := func(p *pOp) int64 {
		if p.varIdx >= 0 {
			return locals[p.varIdx]
		}
		return p.i64
	}
	fval := func(p *pOp) float64 {
		if p.varIdx >= 0 {
			return math.Float64frombits(uint64(locals[p.varIdx]))
		}
		return p.f64
	}

	var prof []int64
	if m.Profile != nil {
		prof = m.Profile.Counters(fn)
	}
	// Tier state is fetched once per call, like prof; the per-block cost of
	// the promotion countdown is one nil test (untiered) or one
	// decrement-and-test (tiered). The countdown runs BEFORE the profile
	// increment so an on-stack replacement hands over "about to enter this
	// block" and the closure engine's loop top counts the entry exactly once.
	var mt *methodTier
	if m.tier != nil {
		mt = m.tier.stateOf(fn)
	}

	blk := fn.Entry
	for {
		if m.Abort != nil && m.Abort.Load() {
			return Outcome{}, ErrAborted
		}
		if mt != nil && mt.tier == tierInterp {
			mt.budget--
			if mt.budget <= 0 {
				if cf := m.tier.promoteT1(mt); cf != nil {
					return m.execCfFrom(fn, cf, locals, blk.ID, depth)
				}
				mt = nil
			}
		}
		if prof != nil {
			prof[blk.ID]++
		}
		var pending *raise
		pins := pf.blocks[blk.ID]
	instrLoop:
		for pi := range pins {
			pin := &pins[pi]
			in := pin.in
			m.steps++
			if m.steps > m.MaxSteps {
				return Outcome{}, m.stepLimitErr(fn)
			}
			m.Stats.Instrs++
			if in.ExcSite {
				m.Stats.ImplicitSites++
				if pin.chk != nil {
					// Governed and attribution-enabled machines profile
					// per-site executions; the cell is nil everywhere else.
					pin.chk.Execs++
				}
			}
			m.Cycles += m.Arch.Cost(in)

			switch in.Op {
			case ir.OpMove:
				locals[in.Dst] = val(&pin.args[0])
			case ir.OpAdd:
				locals[in.Dst] = val(&pin.args[0]) + val(&pin.args[1])
			case ir.OpSub:
				locals[in.Dst] = val(&pin.args[0]) - val(&pin.args[1])
			case ir.OpMul:
				locals[in.Dst] = val(&pin.args[0]) * val(&pin.args[1])
			case ir.OpDiv, ir.OpRem:
				d := val(&pin.args[1])
				if d == 0 {
					pending = m.throw(rt.ExcArithmetic)
					break instrLoop
				}
				if in.Op == ir.OpDiv {
					locals[in.Dst] = val(&pin.args[0]) / d
				} else {
					locals[in.Dst] = val(&pin.args[0]) % d
				}
			case ir.OpAnd:
				locals[in.Dst] = val(&pin.args[0]) & val(&pin.args[1])
			case ir.OpOr:
				locals[in.Dst] = val(&pin.args[0]) | val(&pin.args[1])
			case ir.OpXor:
				locals[in.Dst] = val(&pin.args[0]) ^ val(&pin.args[1])
			case ir.OpShl:
				locals[in.Dst] = val(&pin.args[0]) << (uint64(val(&pin.args[1])) & 63)
			case ir.OpShr:
				locals[in.Dst] = val(&pin.args[0]) >> (uint64(val(&pin.args[1])) & 63)
			case ir.OpNeg:
				locals[in.Dst] = -val(&pin.args[0])
			case ir.OpNot:
				locals[in.Dst] = ^val(&pin.args[0])
			case ir.OpFAdd:
				locals[in.Dst] = fbits(fval(&pin.args[0]) + fval(&pin.args[1]))
			case ir.OpFSub:
				locals[in.Dst] = fbits(fval(&pin.args[0]) - fval(&pin.args[1]))
			case ir.OpFMul:
				locals[in.Dst] = fbits(fval(&pin.args[0]) * fval(&pin.args[1]))
			case ir.OpFDiv:
				locals[in.Dst] = fbits(fval(&pin.args[0]) / fval(&pin.args[1]))
			case ir.OpFNeg:
				locals[in.Dst] = fbits(-fval(&pin.args[0]))
			case ir.OpIntToFloat:
				locals[in.Dst] = fbits(float64(val(&pin.args[0])))
			case ir.OpFloatToInt:
				locals[in.Dst] = int64(fval(&pin.args[0]))
			case ir.OpCmp:
				if compareCond(pin, val, fval) {
					locals[in.Dst] = 1
				} else {
					locals[in.Dst] = 0
				}
			case ir.OpMath:
				locals[in.Dst] = fbits(mathFn(in.Fn, fval(&pin.args[0])))
			case ir.OpInstanceOf:
				// instanceof never faults: null is simply not an instance.
				ref := val(&pin.args[0])
				locals[in.Dst] = 0
				if ref != 0 && m.Heap.ClassIDOf(ref) == int64(in.Class.ID) {
					locals[in.Dst] = 1
				}

			case ir.OpNullCheck:
				if in.SpecGuard != 0 {
					// Tier-2 speculation guard: costs nothing and counts as no
					// explicit check. A null fires it as a hardware trap —
					// the same NPE at the same program point the explicit
					// check would have raised — and deoptimizes.
					if val(&pin.args[0]) == 0 {
						pending = m.trap()
						if m.tier != nil {
							m.tier.deopted(fn, in, nil)
						}
						break instrLoop
					}
					break
				}
				m.Stats.ExplicitChecks++
				if pin.chk != nil {
					pin.chk.Execs++
				}
				if val(&pin.args[0]) == 0 {
					if pin.chk != nil {
						pin.chk.Nulls++
					}
					m.Stats.ThrownSoftware++
					pending = m.throw(rt.ExcNullPointer)
					break instrLoop
				}

			case ir.OpNew:
				locals[in.Dst] = m.Heap.AllocObject(in.Class)
			case ir.OpNewArray:
				n := val(&pin.args[0])
				if n < 0 {
					pending = m.throw(rt.ExcNegativeArraySize)
					break instrLoop
				}
				m.Cycles += m.Arch.AllocPerWordCycles * n
				locals[in.Dst] = m.Heap.AllocArray(n)

			case ir.OpGetField:
				m.Stats.Loads++
				v, r, err := m.load(in, val(&pin.args[0])+int64(in.Field.Offset))
				if err != nil {
					return Outcome{}, err
				}
				if r != nil {
					pending = r
					break instrLoop
				}
				locals[in.Dst] = v
			case ir.OpPutField:
				m.Stats.Stores++
				r, err := m.storeWord(in, val(&pin.args[0])+int64(in.Field.Offset), val(&pin.args[1]))
				if err != nil {
					return Outcome{}, err
				}
				if r != nil {
					pending = r
					break instrLoop
				}
			case ir.OpArrayLength:
				m.Stats.Loads++
				v, r, err := m.load(in, val(&pin.args[0]))
				if err != nil {
					return Outcome{}, err
				}
				if r != nil {
					pending = r
					break instrLoop
				}
				locals[in.Dst] = v
			case ir.OpBoundCheck:
				m.Stats.BoundChecks++
				idx, n := val(&pin.args[0]), val(&pin.args[1])
				if idx < 0 || idx >= n {
					m.Stats.ThrownSoftware++
					pending = m.throw(rt.ExcArrayIndexOutOfBounds)
					break instrLoop
				}
			case ir.OpArrayLoad:
				m.Stats.Loads++
				addr := val(&pin.args[0]) + ir.ArrayHeaderBytes + val(&pin.args[1])*ir.WordBytes
				v, r, err := m.load(in, addr)
				if err != nil {
					return Outcome{}, err
				}
				if r != nil {
					pending = r
					break instrLoop
				}
				locals[in.Dst] = v
			case ir.OpArrayStore:
				m.Stats.Stores++
				addr := val(&pin.args[0]) + ir.ArrayHeaderBytes + val(&pin.args[1])*ir.WordBytes
				r, err := m.storeWord(in, addr, val(&pin.args[2]))
				if err != nil {
					return Outcome{}, err
				}
				if r != nil {
					pending = r
					break instrLoop
				}

			case ir.OpCallStatic, ir.OpCallVirtual:
				m.Stats.Calls++
				if in.Op == ir.OpCallVirtual {
					// Dispatch reads the header slot: the trap point.
					m.Stats.Loads++
					_, r, err := m.load(in, val(&pin.args[0]))
					if err != nil {
						return Outcome{}, err
					}
					if r != nil {
						pending = r
						break instrLoop
					}
				}
				out, err := m.callTarget(pin, depth, val, fval)
				if err != nil {
					return Outcome{}, err
				}
				if out.Exc != rt.ExcNone {
					pending = &raise{kind: out.Exc, ref: out.ExcRef}
					break instrLoop
				}
				if in.HasDst() {
					locals[in.Dst] = out.Value
				}

			case ir.OpJump:
				blk = in.Targets[0]
				goto nextBlock
			case ir.OpIf:
				if compareCond(pin, val, fval) {
					blk = in.Targets[0]
				} else {
					blk = in.Targets[1]
				}
				goto nextBlock
			case ir.OpReturn:
				if len(in.Args) == 1 {
					return Outcome{Value: val(&pin.args[0])}, nil
				}
				return Outcome{}, nil
			case ir.OpThrow:
				ref := val(&pin.args[0])
				m.Stats.ThrownSoftware++
				pending = &raise{kind: m.Heap.ExcKindOf(ref), ref: ref}
				break instrLoop

			default:
				return Outcome{}, fmt.Errorf("machine: cannot execute %s", in.Op)
			}
		}

		if pending != nil {
			// Exception dispatch: the innermost try region of the faulting
			// block, else propagate to the caller.
			if blk.Try != ir.NoTry {
				region := fn.Regions[blk.Try]
				if region.ExcVar != ir.NoVar {
					locals[region.ExcVar] = pending.ref
				}
				blk = region.Handler
				continue
			}
			return Outcome{Exc: pending.kind, ExcRef: pending.ref}, nil
		}
		// A block must end in a terminator; reaching here means Return
		// already returned or a jump was taken.
		return Outcome{}, fmt.Errorf("machine: block %s of %s fell through", blk, fn.Name)

	nextBlock:
	}
}

// throw allocates an exception object and charges the software-throw cost.
func (m *Machine) throw(k rt.ExcKind) *raise {
	m.Cycles += m.Arch.TrapDispatchCycles / 5
	return &raise{kind: k, ref: m.Heap.AllocException(k)}
}

// trap converts a hardware trap into an NPE, charging the full OS dispatch.
func (m *Machine) trap() *raise {
	m.Stats.TrapsTaken++
	m.Cycles += m.Arch.TrapDispatchCycles
	return &raise{kind: rt.ExcNullPointer, ref: m.Heap.AllocException(rt.ExcNullPointer), hardware: true}
}

// siteTrap is the shared trap bookkeeping for an implicit-check site: both
// engines funnel their trap-candidate loads and stores through it, so the
// governor and the attribution ledger see every hardware trap exactly once.
// Under a governor the canonical site cell is incremented by siteTrapped;
// otherwise, when attribution bound a cell at prepare time, the null lands
// there.
func (m *Machine) siteTrap(in *ir.Instr) *raise {
	r := m.trap()
	if m.tier != nil {
		m.tier.siteTrapped(in)
		if m.tier.gov != nil {
			return r
		}
	}
	if m.attrSites && m.Profile != nil {
		if c := m.Profile.PeekCheck(in); c != nil {
			c.Nulls++
		}
	}
	return r
}

// load performs a memory read with full trap semantics.
func (m *Machine) load(in *ir.Instr, addr int64) (int64, *raise, error) {
	switch m.Heap.Classify(addr, m.Arch.TrapAreaBytes) {
	case rt.AccessOK:
		return m.Heap.Load(addr), nil, nil
	case rt.AccessTrapCandidate:
		if !m.Arch.TrapOnRead {
			// The OS does not trap reads here (AIX): the program silently
			// reads zero. Legal only for speculated loads; for anything
			// else this is the "Illegal Implicit" behaviour — a missed NPE.
			return 0, nil, nil
		}
		if in.ExcSite {
			return 0, m.siteTrap(in), nil
		}
		return 0, nil, fmt.Errorf("machine: unexpected read trap at %s (addr %#x)", in, addr)
	default:
		// Unprotected garbage: no trap possible, reads yield zero.
		return 0, nil, nil
	}
}

// storeWord performs a memory write with full trap semantics.
func (m *Machine) storeWord(in *ir.Instr, addr, v int64) (*raise, error) {
	switch m.Heap.Classify(addr, m.Arch.TrapAreaBytes) {
	case rt.AccessOK:
		m.Heap.Store(addr, v)
		return nil, nil
	case rt.AccessTrapCandidate:
		if !m.Arch.TrapOnWrite {
			return nil, nil
		}
		if in.ExcSite {
			return m.siteTrap(in), nil
		}
		return nil, fmt.Errorf("machine: unexpected write trap at %s (addr %#x)", in, addr)
	default:
		// Writes into the unprotected gap vanish.
		return nil, nil
	}
}

// callTarget invokes the callee of a call instruction.
func (m *Machine) callTarget(pin *pInstr, depth int,
	val func(*pOp) int64, fval func(*pOp) float64) (Outcome, error) {
	in := pin.in
	cal := in.Callee
	if cal.Fn == nil {
		if cal.Intrinsic != ir.MathNone {
			// Runtime-implemented math (the call form used on models
			// without the hardware instruction).
			m.Cycles += m.Arch.MathCycles
			if len(pin.args) == 0 {
				return Outcome{}, fmt.Errorf("machine: intrinsic %s without args", cal.QualifiedName())
			}
			return Outcome{Value: fbits(mathFn(cal.Intrinsic, fval(&pin.args[len(pin.args)-1])))}, nil
		}
		return Outcome{}, fmt.Errorf("machine: call to bodyless method %s", cal.QualifiedName())
	}
	args := make([]int64, len(pin.args))
	for i := range pin.args {
		args[i] = val(&pin.args[i])
	}
	if m.tier != nil {
		// Callees dispatch through the tier table: a hot callee may already
		// run compiled (or speculative) code while this caller interprets.
		return m.tierInvoke(cal.Fn, args, depth+1)
	}
	return m.exec(cal.Fn, args, depth+1)
}

// compareCond evaluates a Cond over two operands, using float comparison
// when either side is float-kinded (pre-decoded into pOp.isFloat).
func compareCond(pin *pInstr, val func(*pOp) int64, fval func(*pOp) float64) bool {
	in := pin.in
	a0, a1 := &pin.args[0], &pin.args[1]
	if a0.isFloat || a1.isFloat {
		a, b := fval(a0), fval(a1)
		switch in.Cond {
		case ir.CondEQ:
			return a == b
		case ir.CondNE:
			return a != b
		case ir.CondLT:
			return a < b
		case ir.CondLE:
			return a <= b
		case ir.CondGT:
			return a > b
		case ir.CondGE:
			return a >= b
		}
	}
	a, b := val(&pin.args[0]), val(&pin.args[1])
	switch in.Cond {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}

func fbits(f float64) int64 { return int64(math.Float64bits(f)) }

func mathFn(fn ir.MathFn, x float64) float64 {
	switch fn {
	case ir.MathExp:
		return math.Exp(x)
	case ir.MathLog:
		return math.Log(x)
	case ir.MathSin:
		return math.Sin(x)
	case ir.MathCos:
		return math.Cos(x)
	case ir.MathSqrt:
		return math.Sqrt(x)
	case ir.MathAbs:
		return math.Abs(x)
	case ir.MathPow:
		return x // unary form unsupported; Pow uses two args elsewhere
	}
	return x
}
