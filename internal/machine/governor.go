package machine

import (
	"fmt"
	"sort"
	"time"

	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// Trap-storm governor.
//
// Implicit null checks are free only while null never happens: one hardware
// trap costs TrapDispatchCycles (~5000) where an explicit check costs 1–2
// cycles plus a cheap software throw. The governor watches the per-site trap
// profile of the running artifacts and, when a site's observed null rate
// crosses the policy threshold, demotes that site from implicit back to
// explicit by recompiling the whole program under a grown demote set
// (jit.DemoteSet — method name → stable trap-site ordinals). Demotion is
// monotone: a demoted site never returns to implicit, so with finitely many
// sites and a bounded per-method recompile budget the governor always
// converges. The budget's last recompile is terminal: the method is "pinned
// conservative" — every site demoted — and the governor never touches it
// again. Exponential backoff between recompiles (counted in swallowed traps)
// keeps a flapping profile from thrashing the compiler.
//
// The governor rides the tier controller's dispatch table: adopted governed
// artifacts replace methodTier.fn0, so both engines and every tier rung
// dispatch to them on the next invocation. Demotion only inserts explicit
// check instructions (never moves, splits or reorders blocks), so governed
// artifacts stay block-aligned with their predecessors and block-boundary
// OSR remains an exact state transfer. Tier-2 speculation is disabled while
// the governor runs — check ordinals shift between demoted generations, and
// the two policies bet in opposite directions anyway.
//
// Per-site profiling reuses obs.CheckCounts: prepare() binds one canonical
// counter cell per (method, trap-site ordinal), aliased across artifact
// generations, incremented on every site execution (Execs) and every trap
// (Nulls). The trigger runs on the trap path only, so the no-trap fast path
// pays nothing beyond the Execs increment.

// GovernorPolicy sets the demotion thresholds.
type GovernorPolicy struct {
	// MinSiteExecs is the minimum observed executions of a site before its
	// null rate is trusted; below it no demotion triggers.
	MinSiteExecs int64
	// NullPerMille is the demotion threshold: a site whose observed nulls
	// exceed this rate (per thousand executions) is demoted.
	NullPerMille int64
	// RecompileBudget bounds governed recompiles per method. The budget's
	// last recompile pins the method conservative (every site demoted) —
	// the terminal graceful floor.
	RecompileBudget int
	// BackoffTraps is how many traps the governor swallows after a
	// recompile before the next trigger may fire; it doubles with each
	// recompile of the method (exponential backoff).
	BackoffTraps int64
}

// DefaultGovernorPolicy returns the thresholds the degradation harness uses.
func DefaultGovernorPolicy() GovernorPolicy {
	return GovernorPolicy{MinSiteExecs: 256, NullPerMille: 5, RecompileBudget: 3, BackoffTraps: 16}
}

// DemoteCompiler compiles the machine's source program under a demote set —
// method qualified name → trap-site ordinals forced back to explicit checks —
// and returns the compiled program. The bench harness supplies a closure
// over the workload builder, the jit pipeline and its compile cache (keyed
// with jit.KeyDemote, so each governed generation has its own entry).
type DemoteCompiler func(demote map[string][]int) (*ir.Program, error)

// GovernorEvent is one demotion decision, in occurrence order.
type GovernorEvent struct {
	Method string `json:"method"`
	// Kind is "demote" (one site), "pin" (budget exhausted: every site,
	// terminal) or "recompile-error" (compile failed; the method keeps its
	// current artifact and the governor pins it to stop retrying).
	Kind string `json:"kind"`
	// Site is the demoted trap-site ordinal; -1 for pin/recompile-error.
	Site int `json:"site"`
	// Demoted is the method's total demoted sites after this event.
	Demoted int `json:"demoted"`
}

// GovernorReport is the governor's summary for the degradation tables.
type GovernorReport struct {
	Events      []GovernorEvent
	Demotions   int // total sites demoted across all methods
	Recompiles  int // governed recompiles performed
	Pinned      []string
	CompileHost time.Duration
	// SiteExecs/SiteNulls total the canonical per-site profile across every
	// governed method: how many times marked sites executed and how many of
	// those executions were null (trapped or explicitly caught).
	SiteExecs int64
	SiteNulls int64
	// Backoffs counts traps the backoff windows swallowed without
	// evaluating the demotion trigger.
	Backoffs int64
}

// govMethod is one method's governor state.
type govMethod struct {
	recompiles int
	backoff    int64
	pinned     bool
}

// govSite locates a registered exception site: its method and stable ordinal.
type govSite struct {
	mt   *methodTier
	ord  int
	cell *obs.CheckCounts
}

// governor is the tier controller's trap-storm state (tierController.gov).
type governor struct {
	policy  GovernorPolicy
	compile DemoteCompiler

	// demote is the monotone demote set handed to the compiler; demoted
	// mirrors it as membership sets.
	demote  map[string][]int
	demoted map[string]map[int]bool
	state   map[string]*govMethod
	// cells holds the canonical per-(method, ordinal) profile counters,
	// aliased onto every artifact generation at prepare time; refs maps a
	// generation's site instructions back to their coordinates for the trap
	// path.
	cells map[string]map[int]*obs.CheckCounts
	refs  map[*ir.Instr]*govSite

	events      []GovernorEvent
	recompiles  int
	backoffs    int64
	compileHost time.Duration
}

// EnableGovernor switches the machine's tier controller to governed
// execution. If the machine is untiered, tiering is enabled with promotion
// disabled — the governor only needs the dispatch table; callers wanting the
// closure ladder call EnableTiering first. Tier-2 speculation is disabled
// for the controller's lifetime (the governor clears its compiler).
func (m *Machine) EnableGovernor(policy GovernorPolicy, compile DemoteCompiler) {
	if m.tier == nil {
		m.EnableTiering(TierPolicy{}, nil)
	}
	m.tier.compile = nil
	m.tier.gov = &governor{
		policy:  policy,
		compile: compile,
		demote:  make(map[string][]int),
		demoted: make(map[string]map[int]bool),
		state:   make(map[string]*govMethod),
		cells:   make(map[string]map[int]*obs.CheckCounts),
		refs:    make(map[*ir.Instr]*govSite),
	}
	// Drop prepared tables so the next prepare() binds site counters.
	m.ResetPrepared()
}

// GovernorReport returns the governor's event log and totals; zero when no
// governor is attached.
func (m *Machine) GovernorReport() GovernorReport {
	if m.tier == nil || m.tier.gov == nil {
		return GovernorReport{}
	}
	g := m.tier.gov
	r := GovernorReport{Events: g.events, Recompiles: g.recompiles,
		Backoffs: g.backoffs, CompileHost: g.compileHost}
	for _, ords := range g.demote {
		r.Demotions += len(ords)
	}
	for name, gm := range g.state {
		if gm.pinned {
			r.Pinned = append(r.Pinned, name)
		}
	}
	// Sums over the canonical cells are commutative, so map iteration order
	// cannot leak into the report.
	for _, per := range g.cells {
		for _, c := range per {
			r.SiteExecs += c.Execs
			r.SiteNulls += c.Nulls
		}
	}
	sort.Strings(r.Pinned)
	return r
}

// methodState returns (creating on demand) the governor state for a method.
func (g *governor) methodState(name string) *govMethod {
	gm := g.state[name]
	if gm == nil {
		gm = &govMethod{}
		g.state[name] = gm
	}
	return gm
}

// cell returns the canonical counter for (method, ordinal).
func (g *governor) cell(name string, ord int) *obs.CheckCounts {
	per := g.cells[name]
	if per == nil {
		per = make(map[int]*obs.CheckCounts)
		g.cells[name] = per
	}
	c := per[ord]
	if c == nil {
		c = &obs.CheckCounts{}
		per[ord] = c
	}
	return c
}

// bind attaches the canonical site counter to one prepared instruction. Both
// current exception sites and demoted explicit checks carry TrapSite tags,
// so a site's Execs/Nulls keep accumulating into one cell across the
// implicit→explicit transition and every artifact generation.
func (g *governor) bind(t *tierController, fn *ir.Func, pin *pInstr) {
	in := pin.in
	if in.TrapSite == 0 {
		return
	}
	mt := t.byFn[fn]
	if mt == nil {
		return
	}
	cell := g.cell(mt.name, int(in.TrapSite)-1)
	pin.chk = cell
	t.m.Profile.BindCheck(in, cell)
	if in.ExcSite {
		g.refs[in] = &govSite{mt: mt, ord: int(in.TrapSite) - 1, cell: cell}
	}
}

// siteTrapped is the trap-path notification: a hardware trap fired at a
// marked exception site. It charges the site's null counter and evaluates
// the demotion trigger. Runs only on traps, never on the fast path.
func (t *tierController) siteTrapped(in *ir.Instr) {
	g := t.gov
	if g == nil {
		return
	}
	ref := g.refs[in]
	if ref == nil {
		return
	}
	ref.cell.Nulls++
	g.trigger(t, ref)
}

// trigger decides whether the trap that just fired demotes its site. The
// decision ladder: pinned methods are terminal; backoff swallows traps after
// a recompile; thin or below-threshold profiles wait; sites already demoted
// (still trapping in a stale frame of the previous generation) never
// retrigger. A firing trigger grows the demote set — the budget's last
// recompile demotes every site (pin) — recompiles through the compiler, and
// adopts the new artifact for all future invocations.
func (g *governor) trigger(t *tierController, ref *govSite) {
	gm := g.methodState(ref.mt.name)
	if gm.pinned {
		return
	}
	if gm.backoff > 0 {
		gm.backoff--
		g.backoffs++
		return
	}
	c := ref.cell
	if c.Execs < g.policy.MinSiteExecs {
		return
	}
	if c.Nulls*1000 < g.policy.NullPerMille*c.Execs {
		return
	}
	if g.demoted[ref.mt.name][ref.ord] {
		return
	}
	if g.compile == nil {
		return
	}

	name := ref.mt.name
	gm.recompiles++
	g.recompiles++
	shift := uint(gm.recompiles - 1)
	if shift > 20 {
		shift = 20
	}
	gm.backoff = g.policy.BackoffTraps << shift
	if gm.recompiles >= g.policy.RecompileBudget {
		// Terminal pin: demote every site of the method, known and future —
		// the artifact after this recompile carries no implicit sites, so
		// the method can never trigger again.
		g.demoteAll(ref.mt)
		gm.pinned = true
		g.events = append(g.events, GovernorEvent{
			Method: name, Kind: "pin", Site: -1, Demoted: len(g.demote[name])})
		t.m.Recorder.Record(t.m.steps, "governor", "pin", name,
			fmt.Sprintf("budget spent: %d sites demoted", len(g.demote[name])))
	} else {
		g.addDemote(name, ref.ord)
		g.events = append(g.events, GovernorEvent{
			Method: name, Kind: "demote", Site: ref.ord, Demoted: len(g.demote[name])})
		t.m.Recorder.Record(t.m.steps, "governor", "demote", name,
			fmt.Sprintf("site %d: %d/%d nulls", ref.ord, c.Nulls, c.Execs))
	}
	if gm.backoff > 0 {
		t.m.Recorder.Record(t.m.steps, "governor", "backoff-armed", name,
			fmt.Sprintf("swallowing next %d traps", gm.backoff))
	}

	start := time.Now()
	prog2, err := g.compile(g.demote)
	g.compileHost += time.Since(start)
	if err != nil {
		// Graceful floor on compile failure: keep the current (correct)
		// artifact, stop retrying. The site keeps paying traps, but the
		// run completes with the exact same Outcome.
		gm.pinned = true
		g.events = append(g.events, GovernorEvent{
			Method: name, Kind: "recompile-error", Site: -1, Demoted: len(g.demote[name])})
		t.m.Recorder.Record(t.m.steps, "governor", "recompile-error", name, err.Error())
		return
	}
	g.adopt(t, prog2)
}

// addDemote grows the monotone demote set.
func (g *governor) addDemote(name string, ord int) {
	set := g.demoted[name]
	if set == nil {
		set = make(map[int]bool)
		g.demoted[name] = set
	}
	if set[ord] {
		return
	}
	set[ord] = true
	g.demote[name] = append(g.demote[name], ord)
	sort.Ints(g.demote[name])
}

// demoteAll demotes every trap-site ordinal of the method: the ones still
// implicit in the current artifact plus everything already demoted.
func (g *governor) demoteAll(mt *methodTier) {
	for _, b := range mt.fn0.Blocks {
		for _, in := range b.Instrs {
			if in.TrapSite != 0 {
				g.addDemote(mt.name, int(in.TrapSite)-1)
			}
		}
	}
}

// adopt installs a governed program generation: every method body maps into
// the tier table and becomes that method's conservative artifact, so the
// next invocation (any rung, either engine) dispatches to it. The faulting
// invocation finishes on the old artifact — the trap that triggered the
// recompile already became the correct NullPointerException — and site
// counters rebind lazily when the new bodies are prepared.
func (g *governor) adopt(t *tierController, prog2 *ir.Program) {
	byName := make(map[string]*methodTier, len(t.order))
	for _, mt := range t.order {
		byName[mt.name] = mt
	}
	for _, mth := range prog2.Methods {
		if mth.Fn == nil {
			continue
		}
		mt := byName[mth.QualifiedName()]
		if mt == nil {
			continue
		}
		t.byFn[mth.Fn] = mt
		// Governed generations are block-aligned with their predecessors
		// (demotion only inserts check instructions at existing sites), so the
		// block-entry profile keeps accumulating into one box across adoptions.
		t.m.Profile.BindCounters(mth.Fn, mt.fn0)
		mt.fn0 = mth.Fn
		mt.fn2, mt.cf2, mt.spec = nil, nil, nil
		if mt.tier == tierSpec {
			mt.tier = tierClosure
		}
	}
}
