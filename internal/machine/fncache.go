package machine

import "trapnull/internal/ir"

// fnCache is a bounded map from *ir.Func to a per-function compiled artifact
// (prepared-operand tables, closure-compiled code) with deterministic
// clock/second-chance eviction.
//
// The previous scheme dropped BOTH caches entirely whenever either reached
// its bound, so a sweep touching a few more functions than the bound
// re-prepared the whole working set on every lap. Second-chance instead
// evicts exactly one cold entry per insertion: entries sit in a ring with a
// reference bit that get() sets and the rotating hand clears; the first
// unreferenced slot the hand finds is the victim. Everything is driven by
// insertion and access order alone — no clocks, no randomness — so eviction
// is reproducible run to run, which the sweep determinism tests rely on.
type fnCache[V any] struct {
	cap  int
	idx  map[*ir.Func]int // key -> ring slot
	keys []*ir.Func
	vals []V
	ref  []bool
	hand int
}

func newFnCache[V any](capacity int) *fnCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &fnCache[V]{cap: capacity, idx: make(map[*ir.Func]int, capacity)}
}

// get returns the cached value and marks the entry recently used.
func (c *fnCache[V]) get(fn *ir.Func) (V, bool) {
	if i, ok := c.idx[fn]; ok {
		c.ref[i] = true
		return c.vals[i], true
	}
	var zero V
	return zero, false
}

// put inserts or replaces fn's entry, evicting one cold entry when full.
func (c *fnCache[V]) put(fn *ir.Func, v V) {
	if i, ok := c.idx[fn]; ok {
		c.vals[i] = v
		c.ref[i] = true
		return
	}
	// New entries are inserted with the reference bit CLEAR. Inserting with
	// the bit set makes a pure insertion stream degenerate into burst
	// rotations: every ~cap insertions the hand clears the whole ring in one
	// sweep (including hot entries refreshed moments earlier) and then
	// evicts slot after slot before the hot set's next use can re-mark it.
	// With ref=0 on insert the stream is recycled FIFO-fashion one slot per
	// insertion and only genuinely re-used entries carry a set bit, so a hot
	// entry is always re-marked long before the hand returns to it.
	if len(c.keys) < c.cap {
		c.idx[fn] = len(c.keys)
		c.keys = append(c.keys, fn)
		c.vals = append(c.vals, v)
		c.ref = append(c.ref, false)
		return
	}
	// Second chance: clear reference bits until an unreferenced slot comes
	// under the hand. Terminates within 2·cap steps because each clear is
	// permanent for this scan.
	for c.ref[c.hand] {
		c.ref[c.hand] = false
		c.hand = (c.hand + 1) % c.cap
	}
	victim := c.hand
	delete(c.idx, c.keys[victim])
	c.keys[victim] = fn
	c.vals[victim] = v
	c.ref[victim] = false
	c.idx[fn] = victim
	c.hand = (c.hand + 1) % c.cap
}

// reset drops every entry and rewinds the hand, releasing the cached values
// so the garbage collector can reclaim dead functions.
func (c *fnCache[V]) reset() {
	clear(c.idx)
	var zero V
	for i := range c.keys {
		c.keys[i] = nil
		c.vals[i] = zero
	}
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.ref = c.ref[:0]
	c.hand = 0
}

// size returns the number of live entries.
func (c *fnCache[V]) size() int { return len(c.keys) }

// contains reports residency without touching the reference bit (tests need
// a probe that does not itself keep the entry alive).
func (c *fnCache[V]) contains(fn *ir.Func) bool {
	_, ok := c.idx[fn]
	return ok
}
