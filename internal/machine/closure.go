package machine

import (
	"fmt"
	"math"

	"trapnull/internal/ir"
	"trapnull/internal/rt"
)

// This file implements the closure-compiled (subroutine-threaded) engine.
// Instead of re-dispatching a switch on every dynamic instruction, each
// instruction is compiled once per (Machine, Func) into a step closure
// specialized on opcode and operand shape; hot adjacent pairs are fused into
// superinstructions; and call-free blocks run with block-batched accounting:
// one steps/Instrs/Cycles update on block entry, with the unexecuted suffix
// rolled back on the rare early exit (raise or simulation error).
//
// The engine is required to be observationally identical to the reference
// switch interpreter in machine.go: same Outcome, same ExecStats, same
// Cycles, same errors. The accounting order per instruction is fixed by the
// reference — steps++ and the limit check first (a step over the limit is
// counted by `steps` but never reaches Instrs), then Instrs++, then the
// ImplicitSites bump for ExcSite instructions, then the static cycle cost,
// then the semantics. tick() and the charged fast path both preserve that
// order; differential tests pin it.
//
// Closures capture the Machine and its Arch's costs, so a Machine's Arch
// must not be swapped after the first Call (nothing in the repository does).

// status is the control-flow result of one step closure.
type status uint8

const (
	stNext   status = iota // fall through to the next instruction
	stJump                 // transfer to block frame.next
	stReturn               // function returns frame.out
	stRaise                // exception in frame.pending; dispatch to handler
	stErr                  // simulation error in frame.err
)

// frame is the per-call activation record. Frames are pooled on the Machine.
type frame struct {
	locals  []int64
	out     Outcome
	pending *raise
	err     error
	next    int // target block ID set by stJump steps
	depth   int
	// deoptFn/deoptCf, set by a fired speculation guard, transfer this
	// invocation to the conservative artifact at the raise dispatch (the two
	// artifacts are block-for-block aligned, so the swap is exact).
	deoptFn *ir.Func
	deoptCf *cFunc
}

// stepFn executes one instruction (or one fused superinstruction).
type stepFn func(fr *frame) status

// cStep is one accounted step: the closure plus the static accounting the
// runner applies before invoking it. Fused superinstructions are marked
// self — they account each constituent internally via tick, because a raise
// or step-limit hit can land between the halves.
type cStep struct {
	step stepFn
	cost int64 // static cycle cost (m.Arch.Cost)
	imp  bool  // ExcSite: bump Stats.ImplicitSites
	self bool  // superinstruction: does its own accounting
}

// cBlock is one compiled block. segs is non-nil when the block ends in its
// only terminator: the block then runs as a sequence of segments — call-free
// charged stretches whose accounting is paid once on entry, separated by
// individually accounted call steps (a callee's step counting must observe
// the caller's steps exactly as of the call, never a pre-charged suffix).
// steps is the per-instruction accounted form, used for irregular blocks
// and to finish a block when the step limit could fire inside a stretch.
type cBlock struct {
	steps []cStep
	// one is the whole block as a single charged stretch (one.charged
	// non-nil) — the common call-free case, kept out of the segment walk.
	one     cSeg
	segs    []cSeg
	handler int      // handler block ID, or -1 outside any try region
	excVar  ir.VarID // handler's exception variable (NoVar when none)
	b       *ir.Block
}

// cSeg is one segment of a segmented block. charged is nil for an accounted
// segment — cb.steps[accFrom:accTo], covering calls and stretches too short
// to be worth charging. Otherwise the segment is a charged stretch:
// count/cycles/implicit are paid up front and a step that exits early via
// raise or error rolls back its unexecuted suffix.
type cSeg struct {
	charged  []stepFn
	suffix   []suf // per charged entry: accounting of the entries after it
	count    int64
	cycles   int64
	implicit int64
	accFrom  int // index into cb.steps of this segment's first instruction
	accTo    int // accounted segments: index just past the last step
}

// suf is the accounting a charged stretch pre-paid for the instructions
// after one charged entry — the amount to roll back when that entry exits
// the block early via raise or simulation error.
type suf struct {
	count  int64
	cycles int64
	imp    int64
}

// cFunc is one function compiled for the closure engine, dense by block ID.
type cFunc struct {
	blocks []cBlock
	entry  int
}

// execClosure is the closure engine's counterpart of exec.
func (m *Machine) execClosure(fn *ir.Func, args []int64, depth int) (Outcome, error) {
	return m.execCf(fn, m.compiled(fn), args, depth)
}

// execCf runs an already-compiled function. Call sites keep their own
// (callee, cFunc) cache so the per-call map lookup in compiled() only
// happens when the call target actually changes.
func (m *Machine) execCf(fn *ir.Func, cf *cFunc, args []int64, depth int) (Outcome, error) {
	if depth > maxCallDepth {
		return Outcome{}, fmt.Errorf("machine: call depth exceeded in %s", fn.Name)
	}
	fr := m.frameGet(fn.NumLocals())
	defer m.framePut(fr)
	copy(fr.locals, args)
	fr.depth = depth
	return m.runCf(fn, cf, fr, cf.entry)
}

// execCfFrom enters the closure engine mid-function: the interpreter
// promotes a hot invocation at a block boundary (on-stack replacement),
// handing over its locals and the block it was about to enter. The depth was
// already checked by the interpreter's prologue.
func (m *Machine) execCfFrom(fn *ir.Func, cf *cFunc, locals []int64, startBlk, depth int) (Outcome, error) {
	fr := m.frameGet(len(locals))
	defer m.framePut(fr)
	copy(fr.locals, locals)
	fr.depth = depth
	return m.runCf(fn, cf, fr, startBlk)
}

// runCf is the closure engine's block loop. fn and cf can change while the
// loop runs: a tier-1→2 promotion swaps in the speculative artifact and a
// fired speculation guard swaps back to the conservative one — both
// artifacts are block-for-block aligned, so locals and the current block ID
// carry over unchanged.
func (m *Machine) runCf(fn *ir.Func, cf *cFunc, fr *frame, blkID int) (Outcome, error) {
	var prof []int64
	if m.Profile != nil {
		prof = m.Profile.Counters(fn)
	}
	// One tier-state fetch per call; the block path pays one nil test when
	// untiered, one decrement-and-test while counting toward promotion. The
	// countdown runs before the profile increment, mirroring the interpreter,
	// so hand-offs never double-count a block entry.
	var mt *methodTier
	if m.tier != nil {
		mt = m.tier.stateOf(fn)
	}

	for {
		if m.Abort != nil && m.Abort.Load() {
			return Outcome{}, ErrAborted
		}
		if mt != nil && mt.tier == tierClosure {
			mt.budget--
			if mt.budget <= 0 {
				if fn2, cf2 := m.tier.promoteT2(mt); cf2 != nil {
					fn, cf = fn2, cf2
					if m.Profile != nil {
						prof = m.Profile.Counters(fn)
					}
				}
				if mt.tier != tierClosure {
					mt = nil
				}
				// Otherwise the profile was too thin to speculate and the
				// controller re-armed the countdown; keep counting.
			}
		}
		if prof != nil {
			prof[blkID]++
		}
		cb := &cf.blocks[blkID]
		st := stNext
		if sg := &cb.one; sg.charged != nil {
			if m.steps+sg.count > m.MaxSteps {
				st = m.runSteps(fr, fn, cb.steps)
			} else {
				m.steps += sg.count
				m.Stats.Instrs += sg.count
				m.Stats.ImplicitSites += sg.implicit
				m.Cycles += sg.cycles
				for i, s := range sg.charged {
					if st = s(fr); st != stNext {
						if st == stRaise || st == stErr {
							sx := &sg.suffix[i]
							m.steps -= sx.count
							m.Stats.Instrs -= sx.count
							m.Stats.ImplicitSites -= sx.imp
							m.Cycles -= sx.cycles
						}
						break
					}
				}
			}
		} else if cb.segs != nil {
			for si := range cb.segs {
				sg := &cb.segs[si]
				if sg.charged == nil {
					// Calls and too-short stretches between charged ones.
					if st = m.runSteps(fr, fn, cb.steps[sg.accFrom:sg.accTo]); st != stNext {
						break
					}
					continue
				}
				if m.steps+sg.count > m.MaxSteps {
					// The step limit can fire inside this stretch: finish the
					// whole block per-instruction accounted.
					st = m.runSteps(fr, fn, cb.steps[sg.accFrom:])
					break
				}
				// Block-batched accounting: charge the stretch up front and
				// run the bare closures; a raising step rolls back its
				// unexecuted suffix, restoring exactly the reference's
				// per-instruction accounting.
				m.steps += sg.count
				m.Stats.Instrs += sg.count
				m.Stats.ImplicitSites += sg.implicit
				m.Cycles += sg.cycles
				for i, s := range sg.charged {
					if st = s(fr); st != stNext {
						if st == stRaise || st == stErr {
							sx := &sg.suffix[i]
							m.steps -= sx.count
							m.Stats.Instrs -= sx.count
							m.Stats.ImplicitSites -= sx.imp
							m.Cycles -= sx.cycles
						}
						break
					}
				}
				if st != stNext {
					break
				}
			}
		} else {
			st = m.runSteps(fr, fn, cb.steps)
		}

		switch st {
		case stJump:
			blkID = fr.next
		case stReturn:
			return fr.out, nil
		case stRaise:
			p := fr.pending
			fr.pending = nil
			if fr.deoptCf != nil {
				// Trap-triggered deoptimization: the fired guard already
				// demoted the method; this invocation transfers to the
				// conservative artifact before the raise dispatches, so the
				// handler (or the escape to the caller) and everything after
				// run tier-0 semantics.
				fn, cf = fr.deoptFn, fr.deoptCf
				fr.deoptFn, fr.deoptCf = nil, nil
				if m.Profile != nil {
					prof = m.Profile.Counters(fn)
				}
				mt = nil
				cb = &cf.blocks[blkID]
			}
			if cb.handler >= 0 {
				if cb.excVar != ir.NoVar {
					fr.locals[cb.excVar] = p.ref
				}
				blkID = cb.handler
				continue
			}
			return Outcome{Exc: p.kind, ExcRef: p.ref}, nil
		case stErr:
			return Outcome{}, fr.err
		default:
			// The block ran out of instructions without a terminator.
			return Outcome{}, fmt.Errorf("machine: block %s of %s fell through", cb.b, fn.Name)
		}
	}
}

// runSteps executes accounted steps in order until one leaves the straight
// line, applying the reference's per-instruction accounting to each.
func (m *Machine) runSteps(fr *frame, fn *ir.Func, steps []cStep) status {
	for i := range steps {
		s := &steps[i]
		if !s.self {
			m.steps++
			if m.steps > m.MaxSteps {
				fr.err = m.stepLimitErr(fn)
				return stErr
			}
			m.Stats.Instrs++
			if s.imp {
				m.Stats.ImplicitSites++
			}
			m.Cycles += s.cost
		}
		if st := s.step(fr); st != stNext {
			return st
		}
	}
	return stNext
}

// tick applies one instruction's accounting inside a self-accounting fused
// step. It mirrors the reference order exactly; false means the step limit
// fired and fr.err is set.
func (m *Machine) tick(fr *frame, fn *ir.Func, cost int64, imp bool) bool {
	m.steps++
	if m.steps > m.MaxSteps {
		fr.err = m.stepLimitErr(fn)
		return false
	}
	m.Stats.Instrs++
	if imp {
		m.Stats.ImplicitSites++
	}
	m.Cycles += cost
	return true
}

// finishLoad completes a memory read: a direct hit inside the live heap —
// the overwhelmingly common case — bypasses the full trap classification.
// The guard is exactly Classify's AccessOK arm: at or above HeapBase (so
// non-negative), at or above the trap area (HeapBase can, in principle, sit
// inside a huge custom trap area), and within the allocated words.
func (m *Machine) finishLoad(fr *frame, in *ir.Instr, addr int64, d ir.VarID) status {
	if addr >= rt.HeapBase && addr >= m.Arch.TrapAreaBytes &&
		(addr-rt.HeapBase)/ir.WordBytes < int64(m.Heap.LiveWords()) {
		fr.locals[d] = m.Heap.Load(addr)
		return stNext
	}
	v, r, err := m.load(in, addr)
	if err != nil {
		fr.err = err
		return stErr
	}
	if r != nil {
		fr.pending = r
		return stRaise
	}
	fr.locals[d] = v
	return stNext
}

// finishStore completes a memory write; same fast path as finishLoad.
func (m *Machine) finishStore(fr *frame, in *ir.Instr, addr, v int64) status {
	if addr >= rt.HeapBase && addr >= m.Arch.TrapAreaBytes &&
		(addr-rt.HeapBase)/ir.WordBytes < int64(m.Heap.LiveWords()) {
		m.Heap.Store(addr, v)
		return stNext
	}
	r, err := m.storeWord(in, addr, v)
	if err != nil {
		fr.err = err
		return stErr
	}
	if r != nil {
		fr.pending = r
		return stRaise
	}
	return stNext
}

// frameGet pops a pooled frame with n zeroed locals.
func (m *Machine) frameGet(n int) *frame {
	if k := len(m.frames); k > 0 {
		fr := m.frames[k-1]
		m.frames = m.frames[:k-1]
		if cap(fr.locals) < n {
			fr.locals = make([]int64, n)
		} else {
			fr.locals = fr.locals[:n]
			clear(fr.locals)
		}
		fr.out = Outcome{}
		fr.pending = nil
		fr.err = nil
		fr.deoptFn, fr.deoptCf = nil, nil
		return fr
	}
	return &frame{locals: make([]int64, n)}
}

func (m *Machine) framePut(fr *frame) {
	if len(m.frames) <= maxCallDepth {
		m.frames = append(m.frames, fr)
	}
}

// compiled returns fn's closure-compiled form, building and caching it on
// first use. The cache shares prepare()'s pointer-identity keying and bound.
func (m *Machine) compiled(fn *ir.Func) *cFunc {
	if m.compiledFns == nil {
		m.compiledFns = newFnCache[*cFunc](maxPreparedFuncs)
	}
	if cf, ok := m.compiledFns.get(fn); ok {
		return cf
	}
	pf := m.prepare(fn)
	cf := &cFunc{blocks: make([]cBlock, fn.MaxBlockID()+1), entry: fn.Entry.ID}
	for _, b := range fn.Blocks {
		pins := pf.blocks[b.ID]
		cb := cBlock{b: b, handler: -1, excVar: ir.NoVar}
		if b.Try != ir.NoTry {
			r := fn.Regions[b.Try]
			cb.handler = r.Handler.ID
			cb.excVar = r.ExcVar
		}

		bare := make([]stepFn, len(pins))
		for i := range pins {
			bare[i] = m.compileStep(fn, &pins[i])
			if c := pins[i].chk; c != nil && pins[i].in.ExcSite {
				// Governed site counter: mirror the interpreter's per-site
				// Execs increment. Fusion refuses counter-bearing sites, so
				// every execution flows through this wrapper.
				inner := bare[i]
				bare[i] = func(fr *frame) status {
					c.Execs++
					return inner(fr)
				}
			}
		}

		// Accounted steps, with superinstruction fusion. stepAt[i] is the
		// index in cb.steps of the step beginning at pin i; second halves of
		// fused pairs have no entry, and no segment ever starts on one
		// (segment boundaries are calls, and calls are never fused).
		cb.steps = make([]cStep, 0, len(pins))
		stepAt := make([]int, len(pins))
		for i := 0; i < len(pins); {
			stepAt[i] = len(cb.steps)
			if i+1 < len(pins) {
				if f := m.fuseAccounted(fn, &pins[i], &pins[i+1]); f != nil {
					cb.steps = append(cb.steps, cStep{step: f, self: true})
					i += 2
					continue
				}
			}
			cb.steps = append(cb.steps, cStep{
				step: bare[i],
				cost: m.Arch.Cost(pins[i].in),
				imp:  pins[i].in.ExcSite,
			})
			i++
		}

		if blockSegmentable(pins) {
			segs := m.buildSegs(pins, bare, stepAt, len(cb.steps))
			if len(segs) == 1 && segs[0].charged != nil {
				cb.one = segs[0]
			} else {
				cb.segs = segs
			}
		}
		cf.blocks[b.ID] = cb
	}
	m.compiledFns.put(fn, cf)
	return cf
}

// blockSegmentable reports whether the block can run as charged segments:
// it must end in its only terminator. A mid-block terminator would skip —
// and so leave overcharged — the rest of its stretch; such irregular blocks
// stay on the per-instruction accounted path. Calls and raising
// instructions are fine: calls become their own accounted segments, raises
// roll back.
func blockSegmentable(pins []pInstr) bool {
	n := len(pins)
	if n == 0 || !pins[n-1].in.IsTerminator() {
		return false
	}
	for i := 0; i < n-1; i++ {
		if pins[i].in.IsTerminator() {
			return false
		}
	}
	return true
}

// minChargeRun is the shortest call-free stretch worth charging inside a
// call-bearing block: below this, per-stretch charging machinery costs more
// than plain per-instruction accounting. Call-free blocks are always
// charged whole — there the machinery runs once per block regardless.
const minChargeRun = 4

// buildSegs splits a segmentable block into charged call-free stretches and
// accounted ranges (calls plus any stretch shorter than minChargeRun).
// Returns nil when nothing qualifies for charging, so the block skips the
// segment walk entirely.
func (m *Machine) buildSegs(pins []pInstr, bare []stepFn, stepAt []int, nSteps int) []cSeg {
	var segs []cSeg
	start := 0
	hasCall := false
	for i := range pins {
		switch pins[i].in.Op {
		case ir.OpCallStatic, ir.OpCallVirtual:
			hasCall = true
		}
	}
	// stepEnd maps a pin boundary to its cb.steps boundary. Boundaries are
	// always calls or the block end, never the swallowed second half of a
	// fused pair, so stepAt is valid there.
	stepEnd := func(pinEnd int) int {
		if pinEnd == len(pins) {
			return nSteps
		}
		return stepAt[pinEnd]
	}
	// Accounted ranges merge with adjacent ones so consecutive calls and
	// short stretches run as one runSteps span.
	accounted := func(from, to int) {
		if n := len(segs); n > 0 && segs[n-1].charged == nil {
			segs[n-1].accTo = to
			return
		}
		segs = append(segs, cSeg{accFrom: from, accTo: to})
	}
	flush := func(end int) {
		if end == start {
			return
		}
		if hasCall && end-start < minChargeRun {
			accounted(stepAt[start], stepEnd(end))
			return
		}
		seg := pins[start:end]
		n := len(seg)
		// Suffix totals: sufAt[i] covers seg[i+1:], the part of this stretch
		// a raise at seg[i] must roll back.
		sufAt := make([]suf, n)
		for i := n - 2; i >= 0; i-- {
			sufAt[i] = sufAt[i+1]
			sufAt[i].count++
			sufAt[i].cycles += m.Arch.Cost(seg[i+1].in)
			if seg[i+1].in.ExcSite {
				sufAt[i].imp++
			}
		}
		sg := cSeg{accFrom: stepAt[start], count: int64(n)}
		for i := range seg {
			sg.cycles += m.Arch.Cost(seg[i].in)
			if seg[i].in.ExcSite {
				sg.implicit++
			}
		}
		for i := 0; i < n; {
			if i+1 < n {
				if s := m.fuseBare(&seg[i], &seg[i+1]); s != nil {
					sg.charged = append(sg.charged, s)
					sg.suffix = append(sg.suffix, sufAt[i+1])
					i += 2
					continue
				}
			}
			sg.charged = append(sg.charged, bare[start+i])
			sg.suffix = append(sg.suffix, sufAt[i])
			i++
		}
		segs = append(segs, sg)
	}
	for i := range pins {
		switch pins[i].in.Op {
		case ir.OpCallStatic, ir.OpCallVirtual:
			flush(i)
			accounted(stepAt[i], stepEnd(i+1))
			start = i + 1
		}
	}
	flush(len(pins))
	for i := range segs {
		if segs[i].charged != nil {
			return segs
		}
	}
	return nil
}

// Operand access helpers over the pre-decoded pOp shapes.

func pv(fr *frame, p *pOp) int64 {
	if p.varIdx >= 0 {
		return fr.locals[p.varIdx]
	}
	return p.i64
}

func pfv(fr *frame, p *pOp) float64 {
	if p.varIdx >= 0 {
		return math.Float64frombits(uint64(fr.locals[p.varIdx]))
	}
	return p.f64
}

func intCmpFn(c ir.Cond) func(a, b int64) bool {
	switch c {
	case ir.CondEQ:
		return func(a, b int64) bool { return a == b }
	case ir.CondNE:
		return func(a, b int64) bool { return a != b }
	case ir.CondLT:
		return func(a, b int64) bool { return a < b }
	case ir.CondLE:
		return func(a, b int64) bool { return a <= b }
	case ir.CondGT:
		return func(a, b int64) bool { return a > b }
	case ir.CondGE:
		return func(a, b int64) bool { return a >= b }
	}
	return func(a, b int64) bool { return false }
}

func floatCmpFn(c ir.Cond) func(a, b float64) bool {
	switch c {
	case ir.CondEQ:
		return func(a, b float64) bool { return a == b }
	case ir.CondNE:
		return func(a, b float64) bool { return a != b }
	case ir.CondLT:
		return func(a, b float64) bool { return a < b }
	case ir.CondLE:
		return func(a, b float64) bool { return a <= b }
	case ir.CondGT:
		return func(a, b float64) bool { return a > b }
	case ir.CondGE:
		return func(a, b float64) bool { return a >= b }
	}
	return func(a, b float64) bool { return false }
}

// binI compiles a two-operand integer op across the four operand shapes
// (var/var, var/const, const/var, const/const — the last folds at compile
// time). Hot ops (Move, Add, Sub, If, Cmp) get hand-inlined shapes instead.
func binI(d ir.VarID, a, b pOp, op func(x, y int64) int64) stepFn {
	switch {
	case a.varIdx >= 0 && b.varIdx >= 0:
		ai, bi := a.varIdx, b.varIdx
		return func(fr *frame) status { fr.locals[d] = op(fr.locals[ai], fr.locals[bi]); return stNext }
	case a.varIdx >= 0:
		ai, k := a.varIdx, b.i64
		return func(fr *frame) status { fr.locals[d] = op(fr.locals[ai], k); return stNext }
	case b.varIdx >= 0:
		k, bi := a.i64, b.varIdx
		return func(fr *frame) status { fr.locals[d] = op(k, fr.locals[bi]); return stNext }
	default:
		v := op(a.i64, b.i64)
		return func(fr *frame) status { fr.locals[d] = v; return stNext }
	}
}

func binF(d ir.VarID, a, b pOp, op func(x, y float64) float64) stepFn {
	return func(fr *frame) status { fr.locals[d] = fbits(op(pfv(fr, &a), pfv(fr, &b))); return stNext }
}

func unI(d ir.VarID, a pOp, op func(x int64) int64) stepFn {
	if a.varIdx >= 0 {
		ai := a.varIdx
		return func(fr *frame) status { fr.locals[d] = op(fr.locals[ai]); return stNext }
	}
	v := op(a.i64)
	return func(fr *frame) status { fr.locals[d] = v; return stNext }
}

// compileStep compiles one instruction into its bare step closure: pure
// semantics, no accounting (the runner or the batch header supplies it).
func (m *Machine) compileStep(fn *ir.Func, pin *pInstr) stepFn {
	in := pin.in
	d := in.Dst
	switch in.Op {
	case ir.OpMove:
		a := pin.args[0]
		if a.varIdx >= 0 {
			ai := a.varIdx
			return func(fr *frame) status { fr.locals[d] = fr.locals[ai]; return stNext }
		}
		// move-const superinstruction: the constant is baked in.
		v := a.i64
		return func(fr *frame) status { fr.locals[d] = v; return stNext }

	case ir.OpAdd:
		a, b := pin.args[0], pin.args[1]
		switch {
		case a.varIdx >= 0 && b.varIdx >= 0:
			ai, bi := a.varIdx, b.varIdx
			return func(fr *frame) status { fr.locals[d] = fr.locals[ai] + fr.locals[bi]; return stNext }
		case a.varIdx >= 0:
			// add-const superinstruction.
			ai, k := a.varIdx, b.i64
			return func(fr *frame) status { fr.locals[d] = fr.locals[ai] + k; return stNext }
		case b.varIdx >= 0:
			k, bi := a.i64, b.varIdx
			return func(fr *frame) status { fr.locals[d] = k + fr.locals[bi]; return stNext }
		default:
			v := a.i64 + b.i64
			return func(fr *frame) status { fr.locals[d] = v; return stNext }
		}
	case ir.OpSub:
		a, b := pin.args[0], pin.args[1]
		switch {
		case a.varIdx >= 0 && b.varIdx >= 0:
			ai, bi := a.varIdx, b.varIdx
			return func(fr *frame) status { fr.locals[d] = fr.locals[ai] - fr.locals[bi]; return stNext }
		case a.varIdx >= 0:
			ai, k := a.varIdx, b.i64
			return func(fr *frame) status { fr.locals[d] = fr.locals[ai] - k; return stNext }
		case b.varIdx >= 0:
			k, bi := a.i64, b.varIdx
			return func(fr *frame) status { fr.locals[d] = k - fr.locals[bi]; return stNext }
		default:
			v := a.i64 - b.i64
			return func(fr *frame) status { fr.locals[d] = v; return stNext }
		}
	case ir.OpMul:
		return binI(d, pin.args[0], pin.args[1], func(x, y int64) int64 { return x * y })
	case ir.OpAnd:
		return binI(d, pin.args[0], pin.args[1], func(x, y int64) int64 { return x & y })
	case ir.OpOr:
		return binI(d, pin.args[0], pin.args[1], func(x, y int64) int64 { return x | y })
	case ir.OpXor:
		return binI(d, pin.args[0], pin.args[1], func(x, y int64) int64 { return x ^ y })
	case ir.OpShl:
		// Shift counts are masked to 6 bits, as in the reference.
		return binI(d, pin.args[0], pin.args[1], func(x, y int64) int64 { return x << (uint64(y) & 63) })
	case ir.OpShr:
		return binI(d, pin.args[0], pin.args[1], func(x, y int64) int64 { return x >> (uint64(y) & 63) })

	case ir.OpDiv, ir.OpRem:
		a, b := pin.args[0], pin.args[1]
		isDiv := in.Op == ir.OpDiv
		if b.varIdx < 0 && b.i64 != 0 {
			k := b.i64
			if isDiv {
				return func(fr *frame) status { fr.locals[d] = pv(fr, &a) / k; return stNext }
			}
			return func(fr *frame) status { fr.locals[d] = pv(fr, &a) % k; return stNext }
		}
		return func(fr *frame) status {
			dv := pv(fr, &b)
			if dv == 0 {
				fr.pending = m.throw(rt.ExcArithmetic)
				return stRaise
			}
			if isDiv {
				fr.locals[d] = pv(fr, &a) / dv
			} else {
				fr.locals[d] = pv(fr, &a) % dv
			}
			return stNext
		}

	case ir.OpNeg:
		return unI(d, pin.args[0], func(x int64) int64 { return -x })
	case ir.OpNot:
		return unI(d, pin.args[0], func(x int64) int64 { return ^x })

	case ir.OpFAdd:
		return binF(d, pin.args[0], pin.args[1], func(x, y float64) float64 { return x + y })
	case ir.OpFSub:
		return binF(d, pin.args[0], pin.args[1], func(x, y float64) float64 { return x - y })
	case ir.OpFMul:
		return binF(d, pin.args[0], pin.args[1], func(x, y float64) float64 { return x * y })
	case ir.OpFDiv:
		return binF(d, pin.args[0], pin.args[1], func(x, y float64) float64 { return x / y })
	case ir.OpFNeg:
		a := pin.args[0]
		return func(fr *frame) status { fr.locals[d] = fbits(-pfv(fr, &a)); return stNext }
	case ir.OpIntToFloat:
		a := pin.args[0]
		if a.varIdx >= 0 {
			ai := a.varIdx
			return func(fr *frame) status { fr.locals[d] = fbits(float64(fr.locals[ai])); return stNext }
		}
		v := fbits(float64(a.i64))
		return func(fr *frame) status { fr.locals[d] = v; return stNext }
	case ir.OpFloatToInt:
		a := pin.args[0]
		return func(fr *frame) status { fr.locals[d] = int64(pfv(fr, &a)); return stNext }

	case ir.OpCmp:
		a, b := pin.args[0], pin.args[1]
		if a.isFloat || b.isFloat {
			cf := floatCmpFn(in.Cond)
			return func(fr *frame) status {
				if cf(pfv(fr, &a), pfv(fr, &b)) {
					fr.locals[d] = 1
				} else {
					fr.locals[d] = 0
				}
				return stNext
			}
		}
		ci := intCmpFn(in.Cond)
		if a.varIdx >= 0 && b.varIdx < 0 {
			ai, k := a.varIdx, b.i64
			return func(fr *frame) status {
				if ci(fr.locals[ai], k) {
					fr.locals[d] = 1
				} else {
					fr.locals[d] = 0
				}
				return stNext
			}
		}
		return func(fr *frame) status {
			if ci(pv(fr, &a), pv(fr, &b)) {
				fr.locals[d] = 1
			} else {
				fr.locals[d] = 0
			}
			return stNext
		}

	case ir.OpMath:
		a := pin.args[0]
		mf := in.Fn
		return func(fr *frame) status { fr.locals[d] = fbits(mathFn(mf, pfv(fr, &a))); return stNext }

	case ir.OpInstanceOf:
		a := pin.args[0]
		cid := int64(in.Class.ID)
		return func(fr *frame) status {
			ref := pv(fr, &a)
			if ref != 0 && m.Heap.ClassIDOf(ref) == cid {
				fr.locals[d] = 1
			} else {
				fr.locals[d] = 0
			}
			return stNext
		}

	case ir.OpNullCheck:
		a := pin.args[0]
		if in.SpecGuard != 0 {
			// Tier-2 speculation guard: zero static cost, no explicit-check
			// accounting. A null fires it as a hardware trap — the same NPE
			// at the same program point the explicit check would have
			// raised — and triggers deoptimization.
			return func(fr *frame) status {
				if pv(fr, &a) != 0 {
					return stNext
				}
				fr.pending = m.trap()
				if m.tier != nil {
					m.tier.deopted(fn, in, fr)
				}
				return stRaise
			}
		}
		if chk := pin.chk; chk != nil {
			return func(fr *frame) status {
				m.Stats.ExplicitChecks++
				chk.Execs++
				if pv(fr, &a) == 0 {
					chk.Nulls++
					m.Stats.ThrownSoftware++
					fr.pending = m.throw(rt.ExcNullPointer)
					return stRaise
				}
				return stNext
			}
		}
		return func(fr *frame) status {
			m.Stats.ExplicitChecks++
			if pv(fr, &a) == 0 {
				m.Stats.ThrownSoftware++
				fr.pending = m.throw(rt.ExcNullPointer)
				return stRaise
			}
			return stNext
		}

	case ir.OpNew:
		cl := in.Class
		return func(fr *frame) status { fr.locals[d] = m.Heap.AllocObject(cl); return stNext }
	case ir.OpNewArray:
		a := pin.args[0]
		return func(fr *frame) status {
			n := pv(fr, &a)
			if n < 0 {
				fr.pending = m.throw(rt.ExcNegativeArraySize)
				return stRaise
			}
			m.Cycles += m.Arch.AllocPerWordCycles * n
			fr.locals[d] = m.Heap.AllocArray(n)
			return stNext
		}

	case ir.OpGetField:
		a := pin.args[0]
		off := int64(in.Field.Offset)
		if a.varIdx >= 0 {
			ai := a.varIdx
			return func(fr *frame) status {
				m.Stats.Loads++
				return m.finishLoad(fr, in, fr.locals[ai]+off, d)
			}
		}
		addr := a.i64 + off
		return func(fr *frame) status {
			m.Stats.Loads++
			return m.finishLoad(fr, in, addr, d)
		}
	case ir.OpPutField:
		a, b := pin.args[0], pin.args[1]
		off := int64(in.Field.Offset)
		if a.varIdx >= 0 && b.varIdx >= 0 {
			ai, bi := a.varIdx, b.varIdx
			return func(fr *frame) status {
				m.Stats.Stores++
				return m.finishStore(fr, in, fr.locals[ai]+off, fr.locals[bi])
			}
		}
		if a.varIdx >= 0 {
			ai, v := a.varIdx, b.i64
			return func(fr *frame) status {
				m.Stats.Stores++
				return m.finishStore(fr, in, fr.locals[ai]+off, v)
			}
		}
		return func(fr *frame) status {
			m.Stats.Stores++
			return m.finishStore(fr, in, pv(fr, &a)+off, pv(fr, &b))
		}
	case ir.OpArrayLength:
		a := pin.args[0]
		if a.varIdx >= 0 {
			ai := a.varIdx
			return func(fr *frame) status {
				m.Stats.Loads++
				return m.finishLoad(fr, in, fr.locals[ai], d)
			}
		}
		addr := a.i64
		return func(fr *frame) status {
			m.Stats.Loads++
			return m.finishLoad(fr, in, addr, d)
		}
	case ir.OpBoundCheck:
		a, b := pin.args[0], pin.args[1]
		return func(fr *frame) status {
			m.Stats.BoundChecks++
			idx, n := pv(fr, &a), pv(fr, &b)
			if idx < 0 || idx >= n {
				m.Stats.ThrownSoftware++
				fr.pending = m.throw(rt.ExcArrayIndexOutOfBounds)
				return stRaise
			}
			return stNext
		}
	case ir.OpArrayLoad:
		a, b := pin.args[0], pin.args[1]
		if a.varIdx >= 0 && b.varIdx >= 0 {
			ai, bi := a.varIdx, b.varIdx
			return func(fr *frame) status {
				m.Stats.Loads++
				return m.finishLoad(fr, in,
					fr.locals[ai]+ir.ArrayHeaderBytes+fr.locals[bi]*ir.WordBytes, d)
			}
		}
		if a.varIdx >= 0 {
			ai, off := a.varIdx, ir.ArrayHeaderBytes+b.i64*ir.WordBytes
			return func(fr *frame) status {
				m.Stats.Loads++
				return m.finishLoad(fr, in, fr.locals[ai]+off, d)
			}
		}
		return func(fr *frame) status {
			m.Stats.Loads++
			return m.finishLoad(fr, in,
				pv(fr, &a)+ir.ArrayHeaderBytes+pv(fr, &b)*ir.WordBytes, d)
		}
	case ir.OpArrayStore:
		a, b, c := pin.args[0], pin.args[1], pin.args[2]
		if a.varIdx >= 0 && b.varIdx >= 0 && c.varIdx >= 0 {
			ai, bi, ci := a.varIdx, b.varIdx, c.varIdx
			return func(fr *frame) status {
				m.Stats.Stores++
				return m.finishStore(fr, in,
					fr.locals[ai]+ir.ArrayHeaderBytes+fr.locals[bi]*ir.WordBytes, fr.locals[ci])
			}
		}
		if a.varIdx >= 0 && b.varIdx >= 0 {
			ai, bi, v := a.varIdx, b.varIdx, c.i64
			return func(fr *frame) status {
				m.Stats.Stores++
				return m.finishStore(fr, in,
					fr.locals[ai]+ir.ArrayHeaderBytes+fr.locals[bi]*ir.WordBytes, v)
			}
		}
		if a.varIdx >= 0 {
			ai, off := a.varIdx, ir.ArrayHeaderBytes+b.i64*ir.WordBytes
			return func(fr *frame) status {
				m.Stats.Stores++
				return m.finishStore(fr, in, fr.locals[ai]+off, pv(fr, &c))
			}
		}
		return func(fr *frame) status {
			m.Stats.Stores++
			return m.finishStore(fr, in,
				pv(fr, &a)+ir.ArrayHeaderBytes+pv(fr, &b)*ir.WordBytes, pv(fr, &c))
		}

	case ir.OpCallStatic, ir.OpCallVirtual:
		return m.compileCall(pin)

	case ir.OpJump:
		t := in.Targets[0].ID
		return func(fr *frame) status { fr.next = t; return stJump }
	case ir.OpIf:
		return compileIf(pin)
	case ir.OpReturn:
		if len(pin.args) == 1 {
			a := pin.args[0]
			if a.varIdx >= 0 {
				ai := a.varIdx
				return func(fr *frame) status { fr.out = Outcome{Value: fr.locals[ai]}; return stReturn }
			}
			v := a.i64
			return func(fr *frame) status { fr.out = Outcome{Value: v}; return stReturn }
		}
		return func(fr *frame) status { fr.out = Outcome{}; return stReturn }
	case ir.OpThrow:
		a := pin.args[0]
		return func(fr *frame) status {
			ref := pv(fr, &a)
			m.Stats.ThrownSoftware++
			fr.pending = &raise{kind: m.Heap.ExcKindOf(ref), ref: ref}
			return stRaise
		}
	}

	op := in.Op
	return func(fr *frame) status {
		fr.err = fmt.Errorf("machine: cannot execute %s", op)
		return stErr
	}
}

// compileIf compiles a conditional branch, specializing the hot integer
// var/const and var/var shapes.
func compileIf(pin *pInstr) stepFn {
	in := pin.in
	t0, t1 := in.Targets[0].ID, in.Targets[1].ID
	a, b := pin.args[0], pin.args[1]
	if a.isFloat || b.isFloat {
		cf := floatCmpFn(in.Cond)
		return func(fr *frame) status {
			if cf(pfv(fr, &a), pfv(fr, &b)) {
				fr.next = t0
			} else {
				fr.next = t1
			}
			return stJump
		}
	}
	ci := intCmpFn(in.Cond)
	switch {
	case a.varIdx >= 0 && b.varIdx < 0:
		ai, k := a.varIdx, b.i64
		return func(fr *frame) status {
			if ci(fr.locals[ai], k) {
				fr.next = t0
			} else {
				fr.next = t1
			}
			return stJump
		}
	case a.varIdx >= 0 && b.varIdx >= 0:
		ai, bi := a.varIdx, b.varIdx
		return func(fr *frame) status {
			if ci(fr.locals[ai], fr.locals[bi]) {
				fr.next = t0
			} else {
				fr.next = t1
			}
			return stJump
		}
	}
	return func(fr *frame) status {
		if ci(pv(fr, &a), pv(fr, &b)) {
			fr.next = t0
		} else {
			fr.next = t1
		}
		return stJump
	}
}

// compileCall compiles OpCallStatic/OpCallVirtual. Callee.Fn is read at run
// time, not captured: triage's bisection replays swap Method.Fn between
// Calls and the machine must follow the swap, exactly as the reference
// engine resolves every call through Callee.Fn dynamically.
func (m *Machine) compileCall(pin *pInstr) stepFn {
	in := pin.in
	cal := in.Callee
	virtual := in.Op == ir.OpCallVirtual
	hasDst := in.HasDst()
	d := in.Dst
	args := append([]pOp(nil), pin.args...)
	// scratch is recursion-safe: execCf copies it into the callee frame
	// before the callee body (and thus any reentry of this closure) runs.
	scratch := make([]int64, len(args))
	// Per-call-site compilation cache: valid as long as the target Func is
	// unchanged. A stale-but-matching entry after ResetPrepared is harmless —
	// recompiling the same Func yields observationally identical closures.
	var ccFn *ir.Func
	var ccCf *cFunc
	return func(fr *frame) status {
		m.Stats.Calls++
		if virtual {
			// Dispatch reads the header slot: the trap point.
			m.Stats.Loads++
			_, r, err := m.load(in, pv(fr, &args[0]))
			if err != nil {
				fr.err = err
				return stErr
			}
			if r != nil {
				fr.pending = r
				return stRaise
			}
		}
		callee := cal.Fn
		if callee == nil {
			if cal.Intrinsic != ir.MathNone {
				m.Cycles += m.Arch.MathCycles
				if len(args) == 0 {
					fr.err = fmt.Errorf("machine: intrinsic %s without args", cal.QualifiedName())
					return stErr
				}
				v := fbits(mathFn(cal.Intrinsic, pfv(fr, &args[len(args)-1])))
				if hasDst {
					fr.locals[d] = v
				}
				return stNext
			}
			fr.err = fmt.Errorf("machine: call to bodyless method %s", cal.QualifiedName())
			return stErr
		}
		for i := range args {
			scratch[i] = pv(fr, &args[i])
		}
		var out Outcome
		var err error
		if m.tier != nil {
			// Tiered dispatch: the callee runs whatever artifact its own
			// tier currently selects.
			out, err = m.tierInvoke(callee, scratch, fr.depth+1)
		} else {
			if callee != ccFn {
				ccCf = m.compiled(callee)
				ccFn = callee
			}
			out, err = m.execCf(callee, ccCf, scratch, fr.depth+1)
		}
		if err != nil {
			fr.err = err
			return stErr
		}
		if out.Exc != rt.ExcNone {
			fr.pending = &raise{kind: out.Exc, ref: out.ExcRef}
			return stRaise
		}
		if hasDst {
			fr.locals[d] = out.Value
		}
		return stNext
	}
}

// Superinstruction fusion.

// fuseableCmpIf reports whether p;q is an integer cmp feeding an integer
// if-vs-const on the cmp's destination — the canonical compare-and-branch
// pair. Float shapes are excluded: the reference would compare the 0/1
// result as float bits if the destination local were float-kinded.
func fuseableCmpIf(p, q *pInstr) bool {
	if p.in.Op != ir.OpCmp || q.in.Op != ir.OpIf {
		return false
	}
	if p.args[0].isFloat || p.args[1].isFloat {
		return false
	}
	fa0, fa1 := &q.args[0], &q.args[1]
	if fa0.isFloat || fa1.isFloat {
		return false
	}
	return fa0.varIdx >= 0 && ir.VarID(fa0.varIdx) == p.in.Dst && fa1.varIdx < 0
}

// fuseBare tries to fuse p;q into a superinstruction for charged blocks.
// A fused step whose FIRST half exits the block early must itself un-charge
// its unexecuted second half (the runner's suffix for the pair only covers
// what follows the pair); uncharge() does that.
func (m *Machine) fuseBare(p, q *pInstr) stepFn {
	if fuseableCmpIf(p, q) {
		return m.bareCmpIf(p, q)
	}
	// Governed site counters never fuse: the per-site Execs increment lives
	// in the wrapped bare closure (see compiled), which fusion would bypass.
	if q.chk != nil && q.in.ExcSite {
		return nil
	}
	// Speculation guards never fuse: the guard traps instead of throwing and
	// must not count as an explicit check, which the fused shapes do.
	if p.in.Op == ir.OpNullCheck && p.in.SpecGuard == 0 && p.args[0].varIdx >= 0 {
		switch q.in.Op {
		case ir.OpGetField, ir.OpPutField, ir.OpArrayLength:
			if q.args[0].varIdx == p.args[0].varIdx {
				return m.bareNullDeref(p, q)
			}
		}
	}
	if p.in.Op == ir.OpBoundCheck && p.args[0].varIdx >= 0 && p.args[1].varIdx >= 0 {
		switch q.in.Op {
		case ir.OpArrayLoad, ir.OpArrayStore:
			if q.args[0].varIdx >= 0 && q.args[1].varIdx == p.args[0].varIdx {
				return m.bareBoundArray(p, q)
			}
		}
	}
	return nil
}

// uncharge rolls one pre-charged instruction back out of the accounting —
// the second half of a fused pair whose first half exited the block.
func (m *Machine) uncharge(cost int64, imp bool) {
	m.steps--
	m.Stats.Instrs--
	if imp {
		m.Stats.ImplicitSites--
	}
	m.Cycles -= cost
}

// bareNullDeref fuses an explicit null check with the dereference it guards
// (same base variable) for charged blocks: one closure, one null test, and
// the base local read once.
func (m *Machine) bareNullDeref(p, q *pInstr) stepFn {
	ai := p.args[0].varIdx
	chk := p.chk
	in := q.in
	costD, impD := m.Arch.Cost(in), in.ExcSite

	// countCheck mirrors the unfused check's accounting, including the
	// per-check profile counters the tier controller speculates from.
	countCheck := func(ref int64) {
		m.Stats.ExplicitChecks++
		if chk != nil {
			chk.Execs++
			if ref == 0 {
				chk.Nulls++
			}
		}
	}

	switch in.Op {
	case ir.OpGetField:
		off := int64(in.Field.Offset)
		d := in.Dst
		return func(fr *frame) status {
			ref := fr.locals[ai]
			countCheck(ref)
			if ref == 0 {
				m.Stats.ThrownSoftware++
				fr.pending = m.throw(rt.ExcNullPointer)
				m.uncharge(costD, impD)
				return stRaise
			}
			m.Stats.Loads++
			return m.finishLoad(fr, in, ref+off, d)
		}
	case ir.OpPutField:
		off := int64(in.Field.Offset)
		b := q.args[1]
		return func(fr *frame) status {
			ref := fr.locals[ai]
			countCheck(ref)
			if ref == 0 {
				m.Stats.ThrownSoftware++
				fr.pending = m.throw(rt.ExcNullPointer)
				m.uncharge(costD, impD)
				return stRaise
			}
			m.Stats.Stores++
			return m.finishStore(fr, in, ref+off, pv(fr, &b))
		}
	default: // ir.OpArrayLength
		d := in.Dst
		return func(fr *frame) status {
			ref := fr.locals[ai]
			countCheck(ref)
			if ref == 0 {
				m.Stats.ThrownSoftware++
				fr.pending = m.throw(rt.ExcNullPointer)
				m.uncharge(costD, impD)
				return stRaise
			}
			m.Stats.Loads++
			return m.finishLoad(fr, in, ref, d)
		}
	}
}

// bareBoundArray fuses a bound check with the array access it guards (the
// access indexes by the checked variable) for charged blocks: the index
// local is read once and the bound test feeds straight into the address
// computation.
func (m *Machine) bareBoundArray(p, q *pInstr) stepFn {
	ii, ni := p.args[0].varIdx, p.args[1].varIdx
	bi := q.args[0].varIdx
	in := q.in
	costD, impD := m.Arch.Cost(in), in.ExcSite

	if in.Op == ir.OpArrayLoad {
		d := in.Dst
		return func(fr *frame) status {
			m.Stats.BoundChecks++
			idx := fr.locals[ii]
			if idx < 0 || idx >= fr.locals[ni] {
				m.Stats.ThrownSoftware++
				fr.pending = m.throw(rt.ExcArrayIndexOutOfBounds)
				m.uncharge(costD, impD)
				return stRaise
			}
			m.Stats.Loads++
			return m.finishLoad(fr, in,
				fr.locals[bi]+ir.ArrayHeaderBytes+idx*ir.WordBytes, d)
		}
	}
	c := q.args[2]
	return func(fr *frame) status {
		m.Stats.BoundChecks++
		idx := fr.locals[ii]
		if idx < 0 || idx >= fr.locals[ni] {
			m.Stats.ThrownSoftware++
			fr.pending = m.throw(rt.ExcArrayIndexOutOfBounds)
			m.uncharge(costD, impD)
			return stRaise
		}
		m.Stats.Stores++
		return m.finishStore(fr, in,
			fr.locals[bi]+ir.ArrayHeaderBytes+idx*ir.WordBytes, pv(fr, &c))
	}
}

// bareCmpIf builds the unaccounted cmp→if superinstruction for charged runs.
// The cmp's destination is still written: later blocks may read it.
func (m *Machine) bareCmpIf(p, q *pInstr) stepFn {
	ccmp := intCmpFn(p.in.Cond)
	icmp := intCmpFn(q.in.Cond)
	d := p.in.Dst
	a, b := p.args[0], p.args[1]
	k := q.args[1].i64
	t0, t1 := q.in.Targets[0].ID, q.in.Targets[1].ID
	return func(fr *frame) status {
		var v int64
		if ccmp(pv(fr, &a), pv(fr, &b)) {
			v = 1
		}
		fr.locals[d] = v
		if icmp(v, k) {
			fr.next = t0
		} else {
			fr.next = t1
		}
		return stJump
	}
}

// fuseAccounted tries to fuse the pair p;q into a self-accounting
// superinstruction for the per-instruction path.
func (m *Machine) fuseAccounted(fn *ir.Func, p, q *pInstr) stepFn {
	if fuseableCmpIf(p, q) {
		return m.accCmpIf(fn, p, q)
	}
	// Governed site counters never fuse (see fuseBare).
	if q.chk != nil && q.in.ExcSite {
		return nil
	}
	// Speculation guards never fuse (see fuseBare).
	if p.in.Op == ir.OpNullCheck && p.in.SpecGuard == 0 && p.args[0].varIdx >= 0 {
		switch q.in.Op {
		case ir.OpGetField, ir.OpPutField, ir.OpArrayLength:
			if q.args[0].varIdx == p.args[0].varIdx {
				return m.accNullDeref(fn, p, q)
			}
		}
	}
	return nil
}

// accCmpIf is the accounted cmp→if superinstruction: each constituent ticks
// before it executes, so a step-limit hit between the halves lands exactly
// where the reference engine puts it.
func (m *Machine) accCmpIf(fn *ir.Func, p, q *pInstr) stepFn {
	ccmp := intCmpFn(p.in.Cond)
	icmp := intCmpFn(q.in.Cond)
	d := p.in.Dst
	a, b := p.args[0], p.args[1]
	k := q.args[1].i64
	t0, t1 := q.in.Targets[0].ID, q.in.Targets[1].ID
	costC, impC := m.Arch.Cost(p.in), p.in.ExcSite
	costI, impI := m.Arch.Cost(q.in), q.in.ExcSite
	return func(fr *frame) status {
		if !m.tick(fr, fn, costC, impC) {
			return stErr
		}
		var v int64
		if ccmp(pv(fr, &a), pv(fr, &b)) {
			v = 1
		}
		fr.locals[d] = v
		if !m.tick(fr, fn, costI, impI) {
			return stErr
		}
		if icmp(v, k) {
			fr.next = t0
		} else {
			fr.next = t1
		}
		return stJump
	}
}

// accNullDeref fuses an explicit null check with the dereference it guards
// (same base variable). Both halves can raise, so the pair is accounted-only
// and never batched; each constituent ticks before executing.
func (m *Machine) accNullDeref(fn *ir.Func, p, q *pInstr) stepFn {
	ai := p.args[0].varIdx
	chk := p.chk
	costN, impN := m.Arch.Cost(p.in), p.in.ExcSite
	costD, impD := m.Arch.Cost(q.in), q.in.ExcSite
	in := q.in

	check := func(fr *frame) (int64, status) {
		if !m.tick(fr, fn, costN, impN) {
			return 0, stErr
		}
		m.Stats.ExplicitChecks++
		ref := fr.locals[ai]
		if chk != nil {
			chk.Execs++
			if ref == 0 {
				chk.Nulls++
			}
		}
		if ref == 0 {
			m.Stats.ThrownSoftware++
			fr.pending = m.throw(rt.ExcNullPointer)
			return 0, stRaise
		}
		if !m.tick(fr, fn, costD, impD) {
			return 0, stErr
		}
		return ref, stNext
	}

	switch in.Op {
	case ir.OpGetField:
		off := int64(in.Field.Offset)
		d := in.Dst
		return func(fr *frame) status {
			ref, st := check(fr)
			if st != stNext {
				return st
			}
			m.Stats.Loads++
			return m.finishLoad(fr, in, ref+off, d)
		}
	case ir.OpPutField:
		off := int64(in.Field.Offset)
		b := q.args[1]
		return func(fr *frame) status {
			ref, st := check(fr)
			if st != stNext {
				return st
			}
			m.Stats.Stores++
			return m.finishStore(fr, in, ref+off, pv(fr, &b))
		}
	default: // ir.OpArrayLength
		d := in.Dst
		return func(fr *frame) status {
			ref, st := check(fr)
			if st != stNext {
				return st
			}
			m.Stats.Loads++
			return m.finishLoad(fr, in, ref, d)
		}
	}
}
