package machine

import (
	"fmt"
	"os"
)

// Engine selects one of the machine's two execution engines.
//
// The engines are required to be observationally identical: same Outcome,
// same ExecStats, same Cycles, same errors, on every program. Cycle counts
// and trap classification are the paper's measurements, so the engine choice
// may change how fast the simulation runs on the host but never what it
// reports. TestEngineDifferential* assert this over every workload ×
// configuration × architecture model and over the randprog corpus.
type Engine uint8

const (
	// EngineClosure is the closure-compiled (subroutine-threaded) engine:
	// each instruction is pre-compiled to a step closure specialized on
	// opcode and operand shape, hot adjacent pairs are fused into
	// superinstructions, and statically non-faulting blocks run with
	// block-batched accounting. The default.
	EngineClosure Engine = iota
	// EngineSwitch is the original per-instruction switch interpreter, kept
	// as the reference implementation the closure engine is differentially
	// tested against.
	EngineSwitch
)

func (e Engine) String() string {
	if e == EngineSwitch {
		return "switch"
	}
	return "closure"
}

// EngineByName parses an engine name. The empty string selects the default
// closure engine.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "closure", "":
		return EngineClosure, nil
	case "switch":
		return EngineSwitch, nil
	}
	return EngineClosure, fmt.Errorf("machine: unknown engine %q (want closure or switch)", name)
}

// DefaultEngine is the engine New installs on fresh machines. It is
// initialized from the TRAPNULL_ENGINE environment variable — so
// `TRAPNULL_ENGINE=switch go test ./...` runs the entire suite on the
// reference interpreter — and can be overridden programmatically
// (cmd/benchtab -engine does).
var DefaultEngine = engineFromEnv()

func engineFromEnv() Engine {
	e, err := EngineByName(os.Getenv("TRAPNULL_ENGINE"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v; using the closure engine\n", err)
		return EngineClosure
	}
	return e
}
