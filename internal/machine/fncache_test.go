package machine

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// TestFnCacheSecondChance pins the eviction discipline: when the cache is
// full, exactly one cold entry is evicted per insertion, and the choice is a
// pure function of the access history (no clocks, no randomness).
func TestFnCacheSecondChance(t *testing.T) {
	run := func() (aOK, bOK bool) {
		c := newFnCache[int](2)
		a, b, d := boundedFn(), boundedFn(), boundedFn()
		c.put(a, 1)
		c.put(b, 2)
		if c.size() != 2 {
			t.Fatalf("size = %d, want 2", c.size())
		}
		if v, ok := c.get(a); !ok || v != 1 {
			t.Fatalf("get(a) = %d,%v", v, ok)
		}
		c.put(d, 3)
		if _, ok := c.get(d); !ok {
			t.Fatal("freshly inserted entry missing")
		}
		if c.size() != 2 {
			t.Fatalf("size after eviction = %d, want 2", c.size())
		}
		_, aOK = c.get(a)
		_, bOK = c.get(b)
		return aOK, bOK
	}
	a1, b1 := run()
	if a1 == b1 {
		t.Fatalf("expected exactly one of a/b evicted: a=%v b=%v", a1, b1)
	}
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("eviction not deterministic: run1 a=%v b=%v, run2 a=%v b=%v", a1, b1, a2, b2)
	}
}

// TestFnCacheUpdateInPlace: re-putting an existing key replaces the value
// without growing the ring or evicting anything.
func TestFnCacheUpdateInPlace(t *testing.T) {
	c := newFnCache[int](2)
	a, b := boundedFn(), boundedFn()
	c.put(a, 1)
	c.put(b, 2)
	c.put(a, 10)
	if v, ok := c.get(a); !ok || v != 10 {
		t.Fatalf("get(a) after update = %d,%v, want 10,true", v, ok)
	}
	if v, ok := c.get(b); !ok || v != 2 {
		t.Fatalf("get(b) after update = %d,%v, want 2,true", v, ok)
	}
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
}

// TestPreparedCacheNoThrash is the sweep-sized regression for the full-drop
// eviction this cache replaced. The sweep/triage access pattern is a small
// HOT set (the workload methods executed in every cell) interleaved with a
// long stream of transient functions (bisection snapshots, fuzz programs).
// The old scheme wiped the whole table every time the transient stream hit
// the bound, so the hot set was re-prepared over and over; second-chance
// eviction keeps the hot entries resident (their reference bits are set
// again on every use, so the hand always passes them by) and only recycles
// the cold stream.
func TestPreparedCacheNoThrash(t *testing.T) {
	p, _ := prog()
	m := New(arch.IA32Win(), p)
	m.Engine = EngineClosure

	const hotN = 16
	hot := make([]*ir.Func, hotN)
	for i := range hot {
		hot[i] = boundedFn()
	}

	// Count how often a hot function must be re-closure-compiled: residency
	// is probed without touching the reference bit, so the measurement
	// itself cannot keep entries alive. (A compiledFns hit never consults
	// the prepared cache, so compiledFns is the cache whose retention
	// decides the rebuild cost.)
	hotMisses := 0
	callHot := func() {
		for _, fn := range hot {
			if !m.compiledFns.contains(fn) {
				hotMisses++
			}
			if _, err := m.Call(fn, 3); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Three full cache generations of transient functions, with the hot set
	// re-executed between each batch (the per-cell rhythm of a sweep).
	const stream = 3 * maxPreparedFuncs
	const batch = 32
	callHot() // initial fill: exactly hotN cold misses
	for i := 0; i < stream; i += batch {
		for j := 0; j < batch; j++ {
			if _, err := m.Call(boundedFn(), 3); err != nil {
				t.Fatal(err)
			}
		}
		callHot()
	}

	// The only acceptable hot misses are the initial fill. Full-drop
	// eviction lost the hot set on every generation (~hotN × stream/cap
	// extra rebuilds); allow a tiny margin for hand collisions.
	budget := hotN + hotN/2
	if hotMisses > budget {
		t.Fatalf("hot set thrashing: %d hot-entry misses (budget %d)", hotMisses, budget)
	}
	if m.prepared.size() > maxPreparedFuncs {
		t.Fatalf("cache exceeded bound: %d > %d", m.prepared.size(), maxPreparedFuncs)
	}
}
