package machine

import "time"

// PrecompileClosures closure-compiles every method body of the machine's
// program up front and returns the host time spent. This is the "eager"
// strategy the tiered bench harness compares compile-time-to-peak against:
// an untiered EngineClosure machine pays this cost before the first call
// instead of spreading lazy compiles across the warm-up. Bodies already in
// the compiled-function cache cost nothing.
func (m *Machine) PrecompileClosures() time.Duration {
	if m.Prog == nil {
		return 0
	}
	start := time.Now()
	for _, mth := range m.Prog.Methods {
		if mth.Fn != nil {
			m.compiled(mth.Fn)
		}
	}
	return time.Since(start)
}
