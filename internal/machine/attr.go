package machine

import (
	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// Trap-cost attribution (obs.Attribution) for untiered machines: prepare
// binds a CheckCounts cell at every implicit (ExcSite) site in addition to
// the explicit checks, and CycleAttribution afterwards folds those per-site
// tallies through the architecture's cycle model into the four-bucket ledger.
// The ledger is analytic — no extra cycle accounting runs during execution —
// so conservation (buckets sum exactly to Machine.Cycles) holds by
// construction and the enabled overhead is two pointer increments per site
// execution.
//
// Attribution is an untiered, ungoverned facility: tiered execution mixes
// block-aligned generations whose per-site instruction mix differs
// (speculation deletes checks, demotion re-adds them), so a single
// per-site cost function does not exist there. EnableTiering and
// EnableGovernor machines simply report a nil ledger.

// Steps returns the cumulative dynamic step count — the logical clock
// flight-recorder events are stamped with. Callers that merge recorded
// events into a wall-clock trace use it to place each event at its step
// fraction of the measured run.
func (m *Machine) Steps() int64 { return m.steps }

// EnableAttribution turns on per-trap-site cycle attribution. Call it before
// the first Call (it resets the prepared-instruction caches so sites rebind).
// Requires a Profile; installs one if absent.
func (m *Machine) EnableAttribution() {
	if m.Profile == nil {
		m.Profile = obs.NewExecProfile()
	}
	m.attrSites = true
	m.ResetPrepared()
}

// CycleAttribution builds the trap-cost ledger for everything this machine
// has executed so far. Returns nil when attribution was not enabled or the
// machine is tiered/governed (see package comment above). The walk order is
// Program.Methods declaration order — deterministic, map-free.
func (m *Machine) CycleAttribution() *obs.Attribution {
	if !m.attrSites || m.Profile == nil || m.tier != nil {
		return nil
	}
	a := &obs.Attribution{
		TotalCycles: m.Cycles,
		TrapsTaken:  m.Stats.TrapsTaken,
		TrapCycles:  m.Stats.TrapsTaken * m.Arch.TrapDispatchCycles,
	}
	throwCost := m.Arch.TrapDispatchCycles / 5
	seen := make(map[*obs.CheckCounts]bool)
	for _, mth := range m.Prog.Methods {
		if mth.Fn == nil {
			continue
		}
		label := mth.QualifiedName()
		for _, b := range mth.Fn.Blocks {
			for _, in := range b.Instrs {
				var kind string
				switch {
				case in.Op == ir.OpNullCheck && in.SpecGuard == 0:
					kind = "explicit"
				case in.ExcSite:
					kind = "implicit"
				default:
					continue
				}
				c := m.Profile.PeekCheck(in)
				if c == nil || seen[c] {
					continue // never executed, or aliased onto a row we counted
				}
				seen[c] = true
				site := obs.AttrSite{
					Method: label,
					Kind:   kind,
					Site:   int(in.TrapSite),
					Op:     in.Op.String(),
					Execs:  c.Execs,
					Nulls:  c.Nulls,
					Cycles: c.Execs * m.Arch.Cost(in),
				}
				if kind == "explicit" {
					// The nulls an explicit check catches pay the software
					// throw on top of the compare-and-branch itself.
					site.Cycles += c.Nulls * throwCost
					a.ExplicitCycles += site.Cycles
				} else {
					a.ImplicitCycles += site.Cycles
				}
				if site.Execs > 0 || site.Nulls > 0 {
					a.Sites = append(a.Sites, site)
				}
			}
		}
	}
	obs.SortSites(a.Sites)
	a.GuardFree = a.TotalCycles - a.ImplicitCycles - a.ExplicitCycles - a.TrapCycles
	return a
}
