package machine

import (
	"errors"
	"fmt"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/rt"
)

// runEngine executes fn on a fresh machine with the given engine and returns
// everything observable: outcome, error, stats, cycles.
func runEngine(e Engine, a *arch.Model, p *ir.Program, fn *ir.Func, maxSteps int64,
	setup func(m *Machine) []int64) (Outcome, error, ExecStats, int64) {
	m := New(a, p)
	m.Engine = e
	if maxSteps > 0 {
		m.MaxSteps = maxSteps
	}
	var args []int64
	if setup != nil {
		args = setup(m)
	}
	out, err := m.Call(fn, args...)
	return out, err, m.Stats, m.Cycles
}

// assertEnginesAgree runs fn under both engines and fails unless every
// observable — Outcome, error, ExecStats, Cycles — is identical. It returns
// the (shared) outcome and error for further assertions.
func assertEnginesAgree(t *testing.T, a *arch.Model, p *ir.Program, fn *ir.Func, maxSteps int64,
	setup func(m *Machine) []int64) (Outcome, error) {
	t.Helper()
	cOut, cErr, cStats, cCycles := runEngine(EngineClosure, a, p, fn, maxSteps, setup)
	sOut, sErr, sStats, sCycles := runEngine(EngineSwitch, a, p, fn, maxSteps, setup)
	if cOut != sOut {
		t.Fatalf("outcome diverges: closure=%+v switch=%+v", cOut, sOut)
	}
	if (cErr == nil) != (sErr == nil) || (cErr != nil && cErr.Error() != sErr.Error()) {
		t.Fatalf("error diverges: closure=%v switch=%v", cErr, sErr)
	}
	if cStats != sStats {
		t.Fatalf("stats diverge:\nclosure %+v\nswitch  %+v", cStats, sStats)
	}
	if cCycles != sCycles {
		t.Fatalf("cycles diverge: closure=%d switch=%d", cCycles, sCycles)
	}
	return cOut, cErr
}

// spinFn builds an infinite counting loop whose loop block is batchable
// (add; add; if — no faulting ops), so the step limit must be enforced by
// the batch guard's per-instruction fallback, not just the batch header.
func spinFn() *ir.Func {
	b := ir.NewFunc("spin", false)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	loop := b.DeclareBlock("loop")
	b.SetBlock(entry)
	x := b.Local("x", ir.KindInt)
	b.Move(x, ir.ConstInt(0))
	b.Jump(loop)
	b.SetBlock(loop)
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(1))
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(0))
	b.If(ir.CondGE, ir.Var(x), ir.ConstInt(0), loop, loop)
	return b.Finish()
}

// boundedFn builds a loop that terminates after n iterations; its loop body
// is batchable, so exact step accounting under batching is observable via
// Stats.Instrs when the limit is NOT hit.
func boundedFn() *ir.Func {
	b := ir.NewFunc("bounded", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	loop := b.DeclareBlock("loop")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	i := b.Local("i", ir.KindInt)
	b.Move(i, ir.ConstInt(0))
	b.Jump(loop)
	b.SetBlock(loop)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), loop, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(i))
	return b.Finish()
}

// TestEngineStepLimitBoundary pins the batching fix for ErrStepLimit: the
// closure engine must fire the limit at the same dynamic instruction count
// as the reference engine — at the exact boundary and one step to either
// side — even though it normally charges whole blocks at once.
func TestEngineStepLimitBoundary(t *testing.T) {
	p, _ := prog()
	fn := boundedFn()

	// Establish the exact dynamic instruction count of bounded(25).
	m := New(arch.IA32Win(), p)
	if _, err := m.Call(fn, 25); err != nil {
		t.Fatal(err)
	}
	total := m.Stats.Instrs

	for _, d := range []int64{-1, 0, +1} {
		limit := total + d
		out, err := assertEnginesAgree(t, arch.IA32Win(), p, fn, limit,
			func(m *Machine) []int64 { return []int64{25} })
		if d < 0 {
			if !errors.Is(err, ErrStepLimit) {
				t.Fatalf("limit=%d (one under): err = %v, want ErrStepLimit", limit, err)
			}
		} else {
			if err != nil {
				t.Fatalf("limit=%d: unexpected error %v", limit, err)
			}
			if out.Value != 25 {
				t.Fatalf("limit=%d: value = %d, want 25", limit, out.Value)
			}
		}
	}

	// The infinite batchable loop must report the limit with identical
	// wording and at an identical steps count on both engines.
	spin := spinFn()
	_, err := assertEnginesAgree(t, arch.IA32Win(), p, spin, 10_000, nil)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("spin: err = %v, want ErrStepLimit", err)
	}
}

// TestEngineStepLimitInsideBatchableBlock places the limit in the middle of
// a batchable block: the closure engine must fall back to per-instruction
// accounting and stop mid-block exactly where the reference does, with
// Stats.Instrs reflecting only the instructions that actually ran.
func TestEngineStepLimitInsideBatchableBlock(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("straight", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	x := b.Local("x", ir.KindInt)
	b.Move(x, ir.ConstInt(1))
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(2))
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(3))
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(4))
	b.Return(ir.Var(x))
	fn := b.Finish() // 5 instructions, one block, batchable

	for limit := int64(1); limit <= 6; limit++ {
		out, err := assertEnginesAgree(t, arch.IA32Win(), p, fn, limit, nil)
		if limit < 5 {
			if !errors.Is(err, ErrStepLimit) {
				t.Fatalf("limit=%d: err = %v, want ErrStepLimit", limit, err)
			}
		} else if err != nil || out.Value != 10 {
			t.Fatalf("limit=%d: out=%+v err=%v, want 10", limit, out, err)
		}
	}
}

// TestEngineFloatLocalThroughIntOp reads a float-kinded local through an
// integer operand path (the reference's val() returns the raw bits). The
// closure engine's shape specialization must preserve that bit-level view.
func TestEngineFloatLocalThroughIntOp(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("fbitsadd", false)
	x := b.Param("x", ir.KindFloat)
	b.Result(ir.KindInt)
	b.Block("entry")
	v := b.Temp(ir.KindInt)
	// Integer add of a float local: operates on the IEEE bits, not the value.
	b.Binop(ir.OpAdd, v, ir.Var(x), ir.ConstInt(1))
	b.Return(ir.Var(v))
	fn := b.Finish()

	out, err := assertEnginesAgree(t, arch.IA32Win(), p, fn, 0,
		func(m *Machine) []int64 { return []int64{fbits(2.5)} })
	if err != nil {
		t.Fatal(err)
	}
	if want := fbits(2.5) + 1; out.Value != want {
		t.Fatalf("got %d, want raw bits %d", out.Value, want)
	}
}

// TestEngineShiftAmounts pins the 6-bit shift-count masking across engines
// for amounts at and beyond 64, including via constants (which the closure
// engine folds at compile time).
func TestEngineShiftAmounts(t *testing.T) {
	p, _ := prog()
	for _, shift := range []int64{63, 64, 65, 127, 128, -1} {
		for _, op := range []ir.Op{ir.OpShl, ir.OpShr} {
			b := ir.NewFunc(fmt.Sprintf("sh_%d_%s", shift, op), false)
			x := b.Param("x", ir.KindInt)
			s := b.Param("s", ir.KindInt)
			b.Result(ir.KindInt)
			b.Block("entry")
			v := b.Temp(ir.KindInt)
			b.Binop(op, v, ir.Var(x), ir.Var(s)) // var/var shape
			w := b.Temp(ir.KindInt)
			b.Binop(op, w, ir.Var(v), ir.ConstInt(shift)) // var/const shape
			u := b.Temp(ir.KindInt)
			b.Binop(op, u, ir.ConstInt(-8), ir.ConstInt(shift)) // folded shape
			r := b.Temp(ir.KindInt)
			b.Binop(ir.OpXor, r, ir.Var(w), ir.Var(u))
			b.Return(ir.Var(r))
			fn := b.Finish()
			if _, err := assertEnginesAgree(t, arch.IA32Win(), p, fn, 0,
				func(m *Machine) []int64 { return []int64{-7, shift} }); err != nil {
				t.Fatalf("shift=%d op=%s: %v", shift, op, err)
			}
		}
	}
}

// TestEngineDivByZeroMidBlock raises ArithmeticException in the middle of a
// multi-instruction block inside a try region: the pending raise must skip
// the rest of the block and land in the handler with identical accounting.
// Also pins that div-by-zero does NOT count as ThrownSoftware (the reference
// increments it only for explicit checks, bound checks, and OpThrow).
func TestEngineDivByZeroMidBlock(t *testing.T) {
	p, _ := prog()
	for _, op := range []ir.Op{ir.OpDiv, ir.OpRem} {
		b := ir.NewFunc("mid_"+op.String(), false)
		y := b.Param("y", ir.KindInt)
		b.Result(ir.KindInt)
		entry := b.Block("entry")
		handler := b.DeclareBlock("handler")
		exc := b.Local("exc", ir.KindRef)
		b.SetBlock(entry)
		a := b.Local("a", ir.KindInt)
		b.Move(a, ir.ConstInt(100))
		v := b.Temp(ir.KindInt)
		b.Binop(op, v, ir.Var(a), ir.Var(y))
		// Instructions after the faulting div must NOT run when y == 0.
		b.Binop(ir.OpAdd, a, ir.Var(a), ir.ConstInt(1000))
		b.Return(ir.Var(a))
		b.SetBlock(handler)
		b.Return(ir.ConstInt(-1))
		f := b.F
		r := f.NewRegion(handler, exc)
		entry.Try = r.ID
		f.RecomputeEdges()
		if err := ir.Validate(f); err != nil {
			t.Fatal(err)
		}

		out, err := assertEnginesAgree(t, arch.IA32Win(), p, f, 0,
			func(m *Machine) []int64 { return []int64{0} })
		if err != nil || out.Value != -1 {
			t.Fatalf("%s by zero: out=%+v err=%v, want handler -1", op, out, err)
		}
		// And the non-faulting path.
		out, err = assertEnginesAgree(t, arch.IA32Win(), p, f, 0,
			func(m *Machine) []int64 { return []int64{7} })
		if err != nil || out.Value != 1100 {
			t.Fatalf("%s no fault: out=%+v err=%v, want 1100", op, out, err)
		}
	}
}

// TestEngineNullCheckFusion exercises the nullcheck→dereference
// superinstructions on the null and non-null paths, for each fused second
// op, on both arch models.
func TestEngineNullCheckFusion(t *testing.T) {
	for _, am := range []*arch.Model{arch.IA32Win(), arch.PPCAIX()} {
		p, c := prog()
		build := func(kind string) *ir.Func {
			b := ir.NewFunc("fused_"+kind, false)
			a := b.Param("a", ir.KindRef)
			b.Result(ir.KindInt)
			b.Block("entry")
			v := b.Temp(ir.KindInt)
			switch kind {
			case "get":
				b.GetField(v, a, c.FieldByName("f")) // emits nullcheck; getfield
			case "put":
				b.PutField(a, c.FieldByName("f"), ir.ConstInt(9))
				b.Move(v, ir.ConstInt(1))
			case "len":
				b.ArrayLength(v, a)
			}
			b.Return(ir.Var(v))
			return b.Finish()
		}
		for _, kind := range []string{"get", "put", "len"} {
			fn := build(kind)
			// Null path: explicit check throws, ThrownSoftware counted.
			out, err := assertEnginesAgree(t, am, p, fn, 0,
				func(m *Machine) []int64 { return []int64{0} })
			if err != nil || out.Exc != rt.ExcNullPointer {
				t.Fatalf("%s/%s null: out=%+v err=%v, want NPE", am.Name, kind, out, err)
			}
			// Non-null path.
			if _, err := assertEnginesAgree(t, am, p, fn, 0, func(m *Machine) []int64 {
				if kind == "len" {
					return []int64{m.Heap.AllocArray(4)}
				}
				o := m.Heap.AllocObject(c)
				m.Heap.Store(o+int64(c.FieldByName("f").Offset), 5)
				return []int64{o}
			}); err != nil {
				t.Fatalf("%s/%s ok path: %v", am.Name, kind, err)
			}
		}
	}
}

// TestEngineCmpIfFusion drives the cmp→if superinstruction down both edges
// and verifies the cmp result variable is still materialized for later
// blocks to read.
func TestEngineCmpIfFusion(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("cmpif", false)
	x := b.Param("x", ir.KindInt)
	y := b.Param("y", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	lt := b.DeclareBlock("lt")
	ge := b.DeclareBlock("ge")
	b.SetBlock(entry)
	cres := b.Local("cres", ir.KindInt)
	b.Cmp(cres, ir.CondLT, ir.Var(x), ir.Var(y))
	b.If(ir.CondNE, ir.Var(cres), ir.ConstInt(0), lt, ge)
	b.SetBlock(lt)
	// Read the cmp result AFTER the branch: fusion must still write it.
	r := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, r, ir.Var(cres), ir.ConstInt(100))
	b.Return(ir.Var(r))
	b.SetBlock(ge)
	b.Return(ir.Var(cres))
	fn := b.Finish()

	for _, tc := range []struct{ x, y, want int64 }{{1, 2, 101}, {2, 1, 0}, {3, 3, 0}} {
		out, err := assertEnginesAgree(t, arch.IA32Win(), p, fn, 0,
			func(m *Machine) []int64 { return []int64{tc.x, tc.y} })
		if err != nil || out.Value != tc.want {
			t.Fatalf("cmpif(%d,%d) = %+v err=%v, want %d", tc.x, tc.y, out, err, tc.want)
		}
	}
}

// TestEngineRecursiveCallScratch pins the per-closure scratch argument
// buffer against recursion: fib(12) re-enters the same call closure many
// times and must still compute correct arguments at every depth.
func TestEngineRecursiveCallScratch(t *testing.T) {
	p, _ := prog()
	b := ir.NewFunc("fib", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	meth := p.AddMethod(nil, "fib", nil, false)
	entry := b.Block("entry")
	rec := b.DeclareBlock("rec")
	base := b.DeclareBlock("base")
	b.SetBlock(entry)
	b.If(ir.CondLT, ir.Var(n), ir.ConstInt(2), base, rec)
	b.SetBlock(base)
	b.Return(ir.Var(n))
	b.SetBlock(rec)
	n1 := b.Temp(ir.KindInt)
	b.Binop(ir.OpSub, n1, ir.Var(n), ir.ConstInt(1))
	a := b.Temp(ir.KindInt)
	b.CallStatic(a, meth, ir.Var(n1))
	n2 := b.Temp(ir.KindInt)
	b.Binop(ir.OpSub, n2, ir.Var(n), ir.ConstInt(2))
	c := b.Temp(ir.KindInt)
	b.CallStatic(c, meth, ir.Var(n2))
	s := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, s, ir.Var(a), ir.Var(c))
	b.Return(ir.Var(s))
	fn := b.Finish()
	meth.Fn = fn

	out, err := assertEnginesAgree(t, arch.IA32Win(), p, fn, 0,
		func(m *Machine) []int64 { return []int64{12} })
	if err != nil || out.Value != 144 {
		t.Fatalf("fib(12) = %+v err=%v, want 144", out, err)
	}
}

// TestPreparedCacheBounded pushes more distinct Func values through one
// Machine than the cache bound and asserts both per-function caches stay
// bounded while execution stays correct.
func TestPreparedCacheBounded(t *testing.T) {
	p, _ := prog()
	m := New(arch.IA32Win(), p)
	base := boundedFn()
	for i := 0; i < 3*maxPreparedFuncs+5; i++ {
		fn := base.Clone()
		out, err := m.Call(fn, 3)
		if err != nil || out.Value != 3 {
			t.Fatalf("iteration %d: out=%+v err=%v", i, out, err)
		}
		if m.prepared.size() > maxPreparedFuncs || m.compiledFns.size() > maxPreparedFuncs {
			t.Fatalf("caches unbounded: prepared=%d compiled=%d (max %d)",
				m.prepared.size(), m.compiledFns.size(), maxPreparedFuncs)
		}
	}
}

// TestResetPrepared drops the caches explicitly and proves execution
// rebuilds them transparently.
func TestResetPrepared(t *testing.T) {
	p, _ := prog()
	m := New(arch.IA32Win(), p)
	m.Engine = EngineClosure // compiledFns only fills on the closure engine
	fn := boundedFn()
	if _, err := m.Call(fn, 5); err != nil {
		t.Fatal(err)
	}
	if m.prepared.size() == 0 || m.compiledFns.size() == 0 {
		t.Fatalf("caches not populated: prepared=%d compiled=%d", m.prepared.size(), m.compiledFns.size())
	}
	m.ResetPrepared()
	if m.prepared.size() != 0 || m.compiledFns.size() != 0 {
		t.Fatalf("caches not cleared: prepared=%d compiled=%d", m.prepared.size(), m.compiledFns.size())
	}
	out, err := m.Call(fn, 5)
	if err != nil || out.Value != 5 {
		t.Fatalf("after reset: out=%+v err=%v", out, err)
	}
}

// TestEngineByName pins the selection surface used by TRAPNULL_ENGINE and
// benchtab -engine.
func TestEngineByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Engine
		ok   bool
	}{
		{"", EngineClosure, true},
		{"closure", EngineClosure, true},
		{"switch", EngineSwitch, true},
		{"bogus", EngineClosure, false},
	} {
		e, err := EngineByName(tc.name)
		if (err == nil) != tc.ok || e != tc.want {
			t.Fatalf("EngineByName(%q) = %v, %v; want %v ok=%v", tc.name, e, err, tc.want, tc.ok)
		}
	}
	if EngineClosure.String() != "closure" || EngineSwitch.String() != "switch" {
		t.Fatal("Engine.String mismatch")
	}
}
