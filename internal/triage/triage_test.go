package triage

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jasm"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/randprog"
	"trapnull/internal/rt"
)

var triageInputs = []int64{0, 1, 5, 7, -3}

// injectedCase plants the §4.2.2 any-path substitution bug into the full
// phase 1 + phase 2 configuration for one random-program seed.
func injectedCase(seed int64) Case {
	cfg := jit.ConfigPhase1Phase2()
	cfg.InjectUnsafeSubstitution = true
	return Case{
		Gen: func() (*ir.Program, *ir.Func) {
			return randprog.Generate(randprog.DefaultConfig(seed))
		},
		Config: cfg,
		Model:  arch.IA32Win(),
		Inputs: triageInputs,
	}
}

// findInjectedDivergence scans seeds until the planted miscompile fires. An
// 8000-seed survey found divergences at seeds 1643, 1748, 3815, 5796 and
// 6186; the scan starts just below the first so the test stays fast while
// not depending on one exact seed.
func findInjectedDivergence(t *testing.T) (Case, *Divergence, int64) {
	t.Helper()
	for seed := int64(1600); seed < 2000; seed++ {
		c := injectedCase(seed)
		div, err := Check(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if div != nil {
			t.Logf("planted bug fires at seed %d: %v", seed, div)
			return c, div, seed
		}
	}
	t.Fatal("planted any-path substitution bug never fired in 400 seeds")
	return Case{}, nil, 0
}

// TestCheckCleanOnLegalConfig: without the injection the same seeds triage
// clean — Check is not a divergence generator of its own.
func TestCheckCleanOnLegalConfig(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := injectedCase(seed)
		c.Config.InjectUnsafeSubstitution = false
		div, err := Check(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if div != nil {
			t.Fatalf("seed %d: legal configuration diverged: %v", seed, div)
		}
	}
}

// TestTriageFindsPlantedBug is the acceptance demo: the full pipeline must
// blame the pass carrying the planted bug (phase2 — the injection weakens
// its substitutable elimination), shrink the reproducer to a small entry
// function, and emit a reproducer that still reproduces.
func TestTriageFindsPlantedBug(t *testing.T) {
	c, _, seed := findInjectedDivergence(t)
	rep, err := Run(c)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if rep.Divergence == nil {
		t.Fatalf("seed %d: Run found no divergence but Check did", seed)
	}
	if rep.Pass != "phase2" {
		t.Errorf("seed %d: first divergent pass = %q, want %q\nsnapshot:\n%s",
			seed, rep.Pass, "phase2", rep.SnapshotIR)
	}
	if rep.MinimalInstrs > 15 {
		t.Errorf("seed %d: minimal reproducer has %d instructions, want <= 15\n%s",
			seed, rep.MinimalInstrs, rep.MinimalEntry)
	}
	if rep.Reproducer == "" || rep.RegressionTest == "" {
		t.Fatalf("seed %d: missing reproducer or regression test", seed)
	}
	for _, want := range []string{"jasm.Parse", "jit.CompileProgram", "InjectUnsafeSubstitution: true"} {
		if !strings.Contains(rep.RegressionTest, want) {
			t.Errorf("seed %d: regression test missing %q:\n%s", seed, want, rep.RegressionTest)
		}
	}
	t.Logf("seed %d: shrunk to %d instructions:\n%s", seed, rep.MinimalInstrs, rep.MinimalEntry)

	// The emitted jasm must round-trip and still diverge: parse it, compare
	// interpreted baseline with the compiled program.
	parse := func() (*ir.Program, *ir.Func) {
		p, fns, err := jasm.Parse(rep.Reproducer)
		if err != nil {
			t.Fatalf("seed %d: reproducer does not parse: %v\n%s", seed, err, rep.Reproducer)
		}
		fn := fns[rep.MinimalEntry.Name]
		if fn == nil {
			t.Fatalf("seed %d: reproducer lost entry %q", seed, rep.MinimalEntry.Name)
		}
		return p, fn
	}
	outcome := func(p *ir.Program, fn *ir.Func) Outcome {
		out, err := machine.New(c.Model, p).Call(fn, rep.Divergence.Input)
		if err != nil {
			t.Fatalf("seed %d: reproducer run: %v", seed, err)
		}
		return Outcome{Value: out.Value, Exc: out.Exc}
	}
	base, fnB := parse()
	want := outcome(base, fnB)
	opt, fnO := parse()
	if _, err := jit.CompileProgram(opt, c.Config, c.Model); err != nil {
		t.Fatalf("seed %d: reproducer compile: %v", seed, err)
	}
	got := outcome(opt, fnO)
	if got.Equal(want) {
		t.Errorf("seed %d: emitted reproducer no longer diverges (both %v)\n%s",
			seed, got, rep.Reproducer)
	}
	// The planted bug's signature: the baseline throws the NPE the buggy
	// pipeline silently skips.
	if want.Exc != rt.ExcNullPointer {
		t.Logf("seed %d: note: baseline outcome is %v (expected an NPE-flavoured divergence)", seed, want)
	}
}

// TestOutcomeEqual pins the comparison rule: exception kind dominates, value
// only matters for normal completion.
func TestOutcomeEqual(t *testing.T) {
	if !(Outcome{Value: 3}).Equal(Outcome{Value: 3}) {
		t.Error("equal values must match")
	}
	if (Outcome{Value: 3}).Equal(Outcome{Value: 4}) {
		t.Error("different values must not match")
	}
	a := Outcome{Value: 1, Exc: rt.ExcNullPointer}
	b := Outcome{Value: 2, Exc: rt.ExcNullPointer}
	if !a.Equal(b) {
		t.Error("same exception kind must match regardless of value")
	}
	if a.Equal(Outcome{Value: 1}) {
		t.Error("exception vs normal completion must not match")
	}
}
