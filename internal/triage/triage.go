// Package triage turns "this (program, config, arch) triple miscompiles"
// into an actionable bug report. Given a deterministic program generator and
// a configuration, it
//
//  1. checks the optimized program against the interpreted baseline over a
//     set of inputs (Check),
//  2. bisects a divergence to the first pipeline pass whose output behaves
//     differently, by re-running the compilation under a pass observer that
//     snapshots the IR after every pass and interpreting each intermediate
//     state (Bisect),
//  3. delta-debugs the generated program down to a minimal entry function
//     that still diverges (Shrink), and
//  4. emits the shrunken program as jasm plus a ready-to-paste Go regression
//     test (Report.RegressionTest).
//
// The machinery assumes nothing about why the compiler is wrong; it only
// needs the generator to be deterministic (same call, same program) so that
// fresh copies can stand in for "undo the compilation".
package triage

import (
	"fmt"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

// Case is one suspected-miscompile triple plus the inputs to try.
type Case struct {
	// Gen builds a fresh copy of the program and returns it with its entry
	// function. It must be deterministic: every call yields a structurally
	// identical program. randprog.Generate with a fixed config is the
	// canonical generator.
	Gen    func() (*ir.Program, *ir.Func)
	Config jit.Config
	Model  *arch.Model
	// Inputs are the argument values passed to the entry function.
	Inputs []int64
}

// Outcome is a program behaviour: a normal result or an exception kind.
type Outcome struct {
	Value int64
	Exc   rt.ExcKind
}

func (o Outcome) String() string {
	if o.Exc != rt.ExcNone {
		return fmt.Sprintf("throws %v", o.Exc)
	}
	return fmt.Sprintf("returns %d", o.Value)
}

// Equal compares outcomes the way the differential tests do: same exception
// kind, and when neither throws, the same value.
func (o Outcome) Equal(p Outcome) bool {
	return o.Exc == p.Exc && (o.Exc != rt.ExcNone || o.Value == p.Value)
}

// Divergence is one observed baseline/optimized disagreement.
type Divergence struct {
	Input int64
	Want  Outcome // interpreted, unoptimized
	Got   Outcome // after compilation under Case.Config
}

func (d *Divergence) String() string {
	return fmt.Sprintf("input %d: baseline %v, optimized %v", d.Input, d.Want, d.Got)
}

// Report is the full triage result for one Case.
type Report struct {
	// Divergence is nil when the case does not miscompile (and the rest of
	// the report is empty).
	Divergence *Divergence

	// Pass is the first pipeline pass whose output diverges from the
	// baseline; Method is the method it was compiling.
	Pass   string
	Method string
	// SnapshotIR is the guilty method's body immediately after Pass — the
	// earliest broken state.
	SnapshotIR string

	// MinimalEntry is the delta-debugged entry function (still diverging),
	// MinimalInstrs its instruction count, and Reproducer the whole shrunken
	// program in jasm form.
	MinimalEntry  *ir.Func
	MinimalInstrs int
	Reproducer    string

	// RegressionTest is a ready-to-paste Go test that parses Reproducer,
	// compiles it under the same configuration and asserts the baseline
	// outcome.
	RegressionTest string

	// PassTimes records how long each pass ran while the bisection timeline
	// was being recorded (observed recompilation, verifier on), in execution
	// order up to and including the guilty pass. cmd/triage prints it so a
	// bisection doubles as a compile-time profile of the failing method.
	PassTimes []PassTime
}

// PassTime is one entry of Report.PassTimes.
type PassTime struct {
	Method  string
	Pass    string
	Elapsed time.Duration
}

// Run executes the whole pipeline: Check, then on divergence Bisect and
// Shrink. A compile error (e.g. a *jit.PassError from a panicking pass) is
// returned as an error — it is already triaged to a pass by construction.
//
// One content-addressed compile cache serves the whole run: Check's
// per-input replays all share one key (same generator, same projection), and
// the shrink loop's candidate evaluations hit whenever two edit sequences
// produce structurally identical programs. The bisection is the one stage
// that must recompile — it exists to observe the passes running.
func Run(c Case) (*Report, error) {
	cache := jit.NewCache(0)
	div, err := check(c, cache)
	if err != nil {
		return nil, err
	}
	if div == nil {
		return &Report{}, nil
	}
	rep := &Report{Divergence: div}
	if err := bisect(c, div, rep); err != nil {
		return nil, fmt.Errorf("triage: bisect: %w", err)
	}
	if err := shrink(c, div, rep, cache); err != nil {
		return nil, fmt.Errorf("triage: shrink: %w", err)
	}
	rep.RegressionTest = regressionTest(c, rep)
	return rep, nil
}

// Check compiles a fresh copy under the configuration and compares it with
// the interpreted baseline on every input. It returns the first divergence,
// or nil when the case behaves.
func Check(c Case) (*Divergence, error) {
	return check(c, jit.NewCache(0))
}

func check(c Case, cache *jit.Cache) (*Divergence, error) {
	for _, input := range c.Inputs {
		want, err := interpretFresh(c, input)
		if err != nil {
			return nil, fmt.Errorf("triage: baseline: %w", err)
		}
		prog, entry := c.Gen()
		prog, entry, err = compileCached(cache, c, prog, entry)
		if err != nil {
			return nil, fmt.Errorf("triage: compile: %w", err)
		}
		got, err := interpret(prog, entry, c.Model, input)
		if err != nil {
			return nil, fmt.Errorf("triage: optimized run: %w", err)
		}
		if !got.Equal(want) {
			return &Divergence{Input: input, Want: want, Got: got}, nil
		}
	}
	return nil, nil
}

// compileCached compiles prog under the case's configuration, serving
// structurally identical programs from the cache. On a hit the freshly
// generated program is discarded and the cached compiled copy runs instead,
// with the entry function re-resolved by qualified name — sound because
// cached entries are immutable and every run gets its own machine and heap.
// An entry function that is not a method of its program cannot be renamed
// into a cached copy, so that (unusual) shape compiles directly.
func compileCached(cache *jit.Cache, c Case, prog *ir.Program, entry *ir.Func) (*ir.Program, *ir.Func, error) {
	em := methodOf(prog, entry)
	if cache == nil || em == nil {
		_, err := jit.CompileProgram(prog, c.Config, c.Model)
		return prog, entry, err
	}
	key := jit.Key(prog, c.Config, c.Model)
	ent, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
		res, cerr := jit.CompileProgram(prog, c.Config, c.Model)
		if cerr != nil {
			return nil, cerr
		}
		return &jit.CacheEntry{Program: prog, Result: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	cm := ent.Program.MethodByName(em.QualifiedName())
	if cm == nil || cm.Fn == nil {
		return nil, nil, fmt.Errorf("cached program has no entry method %s", em.QualifiedName())
	}
	return ent.Program, cm.Fn, nil
}

// methodOf finds the method whose body is fn, or nil.
func methodOf(p *ir.Program, fn *ir.Func) *ir.Method {
	for _, m := range p.Methods {
		if m.Fn == fn {
			return m
		}
	}
	return nil
}

func interpretFresh(c Case, input int64) (Outcome, error) {
	prog, entry := c.Gen()
	return interpret(prog, entry, c.Model, input)
}

func interpret(p *ir.Program, entry *ir.Func, m *arch.Model, input int64) (Outcome, error) {
	mach := machine.New(m, p)
	out, err := mach.Call(entry, input)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Value: out.Value, Exc: out.Exc}, nil
}

// snapshot is one timeline entry: method m's body right after pass, plus
// how long the pass ran.
type snapshot struct {
	m       *ir.Method
	pass    string
	fn      *ir.Func
	elapsed time.Duration
}

// bisect finds the first pass after which the program's behaviour on the
// diverging input no longer matches the baseline. It recompiles a fresh copy
// under a pass observer, cloning the function after every pass, then replays
// the timeline: evaluation step i runs the program with every method's body
// set to its latest snapshot at or before i (methods not yet compiled keep
// their unoptimized bodies). Method.Fn swapping is sound because the machine
// resolves every call through Callee.Fn at call time and Func.Clone shares
// the program-level metadata.
func bisect(c Case, div *Divergence, rep *Report) error {
	prog, entry := c.Gen()

	var entryMethod *ir.Method
	initial := make(map[*ir.Method]*ir.Func)
	var order []*ir.Method
	for _, m := range prog.Methods {
		if m.Fn == nil {
			continue
		}
		if m.Fn == entry {
			entryMethod = m
		}
		initial[m] = m.Fn.Clone()
		order = append(order, m)
	}
	if entryMethod == nil {
		return fmt.Errorf("entry function %s is not a method of the program", entry.Name)
	}

	// Compile in program order — the same order CompileProgram uses, so
	// inlining sees identically-optimized callees.
	var timeline []snapshot
	for _, m := range order {
		m := m
		err := jit.CompileFuncObserved(m.Fn, c.Config, c.Model, func(pass string, f *ir.Func, elapsed time.Duration) error {
			timeline = append(timeline, snapshot{m: m, pass: pass, fn: f.Clone(), elapsed: elapsed})
			return nil
		})
		if err != nil {
			return fmt.Errorf("observed compile of %s: %w", m.QualifiedName(), err)
		}
	}

	compiled := make(map[*ir.Method]*ir.Func)
	for _, m := range order {
		compiled[m] = m.Fn
	}
	current := make(map[*ir.Method]*ir.Func, len(initial))
	for m, f := range initial {
		current[m] = f
	}
	// One machine serves every replay. The timeline swaps Method.Fn to a
	// different *ir.Func snapshot between evaluations, and the machine caches
	// prepared tables and closure-compiled bodies keyed by Func identity —
	// without dropping them, a long timeline would retain every snapshot ever
	// replayed. ResetPrepared is exactly the invalidation hook for this.
	mach := machine.New(c.Model, prog)
	eval := func() (Outcome, error) {
		for m, f := range current {
			m.Fn = f
		}
		defer func() {
			for m, f := range compiled {
				m.Fn = f
			}
		}()
		mach.ResetPrepared()
		mach.Heap.Reset()
		mach.Stats = machine.ExecStats{}
		mach.Cycles = 0
		out, err := mach.Call(entryMethod.Fn, div.Input)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Value: out.Value, Exc: out.Exc}, nil
	}

	if out, err := eval(); err != nil {
		return fmt.Errorf("replaying unoptimized program: %w", err)
	} else if !out.Equal(div.Want) {
		return fmt.Errorf("generator is not deterministic: unoptimized replay %v, baseline %v", out, div.Want)
	}

	for _, s := range timeline {
		current[s.m] = s.fn
		rep.PassTimes = append(rep.PassTimes, PassTime{Method: s.m.QualifiedName(), Pass: s.pass, Elapsed: s.elapsed})
		out, err := eval()
		if err != nil {
			return fmt.Errorf("replaying after %s on %s: %w", s.pass, s.m.QualifiedName(), err)
		}
		if !out.Equal(div.Want) {
			rep.Pass = s.pass
			rep.Method = s.m.QualifiedName()
			rep.SnapshotIR = s.fn.String()
			return nil
		}
	}
	return fmt.Errorf("no pass diverges in replay (divergence was %v)", div)
}
