package triage

import (
	"fmt"

	"trapnull/internal/ir"
	"trapnull/internal/jit"
)

// Shrinking never mutates a function that crossed program boundaries:
// instruction operands hold pointers into program-level metadata (fields,
// classes, callees), so a clone from one Gen() call cannot be installed into
// another. Instead an accepted shrink is a sequence of positional edits, and
// every candidate evaluation replays the whole sequence against a fresh
// program — determinism of Gen makes the positions stable.

const (
	editDelInstr = iota // delete one non-terminator instruction
	editDelBody         // delete every non-terminator instruction of a block
	editIfToJump        // replace a two-way branch with a jump to one target
)

type edit struct {
	kind   int
	bi, ii int // block index; instruction index (editDelInstr only)
	target int // which branch target survives (editIfToJump only)
}

// shrink greedily minimizes the entry function while the case still
// diverges on the triaging input, then fills in the report's reproducer
// fields. The compile cache makes candidate evaluation content-addressed:
// different edit sequences that converge on the same program (and the
// initial no-edit replay, which shares its key with Check's compiles) cost
// one compilation between them.
func shrink(c Case, div *Divergence, rep *Report, cache *jit.Cache) error {
	var edits []edit
	cur, err := builtEntry(c, edits)
	if err != nil {
		return err
	}
	if !editedCaseDiverges(c, edits, div.Input, cache) {
		return fmt.Errorf("case does not diverge on replay (input %d)", div.Input)
	}

	for improved := true; improved; {
		improved = false
		for _, e := range enumerateEdits(cur) {
			trial := append(append([]edit(nil), edits...), e)
			nf, err := builtEntry(c, trial)
			if err != nil || nf.NumInstrs() >= cur.NumInstrs() {
				continue // malformed or not a strict shrink
			}
			if ir.Validate(nf) != nil {
				continue
			}
			if editedCaseDiverges(c, trial, div.Input, cache) {
				edits, cur = trial, nf
				improved = true
				break
			}
		}
	}

	rep.MinimalEntry = cur
	rep.MinimalInstrs = cur.NumInstrs()

	prog, entry, err := editedProgram(c, edits)
	if err != nil {
		return err
	}
	dropUncalledMethods(prog, entry)
	rep.Reproducer = reproducerSource(prog)
	return nil
}

// enumerateEdits lists the next-step candidate edits against the current
// entry function, biggest expected shrink first: whole block bodies, then
// branch removals (which disconnect whole subgraphs), then single
// instructions.
func enumerateEdits(f *ir.Func) []edit {
	var out []edit
	for bi, b := range f.Blocks {
		n := len(b.Instrs)
		if t := b.Terminator(); t != nil {
			n--
		}
		if n > 1 {
			out = append(out, edit{kind: editDelBody, bi: bi})
		}
	}
	for bi, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpIf {
			out = append(out, edit{kind: editIfToJump, bi: bi, target: 0})
			out = append(out, edit{kind: editIfToJump, bi: bi, target: 1})
		}
	}
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			if !in.IsTerminator() {
				out = append(out, edit{kind: editDelInstr, bi: bi, ii: ii})
			}
		}
	}
	return out
}

// applyEdits replays the edit sequence on f. Each edit is followed by an
// unreachable-block prune so positional indices always refer to the pruned
// state the enumeration saw.
func applyEdits(f *ir.Func, edits []edit) error {
	for _, e := range edits {
		if e.bi >= len(f.Blocks) {
			return fmt.Errorf("edit block index %d out of range", e.bi)
		}
		b := f.Blocks[e.bi]
		switch e.kind {
		case editDelInstr:
			if e.ii >= len(b.Instrs) || b.Instrs[e.ii].IsTerminator() {
				return fmt.Errorf("edit instr index %d invalid in block %s", e.ii, b.Name)
			}
			b.Instrs = append(b.Instrs[:e.ii:e.ii], b.Instrs[e.ii+1:]...)
		case editDelBody:
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.IsTerminator() {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		case editIfToJump:
			t := b.Terminator()
			if t == nil || t.Op != ir.OpIf {
				return fmt.Errorf("block %s has no two-way branch", b.Name)
			}
			b.Instrs[len(b.Instrs)-1] = &ir.Instr{
				Op:      ir.OpJump,
				Dst:     ir.NoVar,
				Targets: []*ir.Block{t.Targets[e.target]},
			}
		}
		pruneUnreachable(f)
	}
	return nil
}

// pruneUnreachable drops blocks no path reaches, keeping handler blocks of
// try regions that still cover a live block, and renumbers the surviving
// regions so region IDs stay equal to their indices (the invariant the IR
// verifier enforces).
func pruneUnreachable(f *ir.Func) {
	f.RecomputeEdges()
	live := map[*ir.Block]bool{}
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if b == nil || live[b] {
			return
		}
		live[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(f.Entry)
	// A handler is a root whenever some live block is covered by its region;
	// handlers can cover each other, so iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if !live[b] || b.Try == ir.NoTry || b.Try >= len(f.Regions) {
				continue
			}
			h := f.Regions[b.Try].Handler
			if !live[h] {
				visit(h)
				changed = true
			}
		}
	}

	var blocks []*ir.Block
	for _, b := range f.Blocks {
		if live[b] {
			blocks = append(blocks, b)
		}
	}
	f.Blocks = blocks

	// Keep only regions still covering a live block, renumbering in place.
	used := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Try != ir.NoTry {
			used[b.Try] = true
		}
	}
	remap := map[int]int{}
	var regions []*ir.TryRegion
	for i, r := range f.Regions {
		if used[i] {
			remap[i] = len(regions)
			r.ID = len(regions)
			regions = append(regions, r)
		}
	}
	f.Regions = regions
	for _, b := range f.Blocks {
		if b.Try != ir.NoTry {
			b.Try = remap[b.Try]
		}
	}
	f.RecomputeEdges()
}

// editedProgram builds a fresh program with the edit sequence applied to its
// entry function.
func editedProgram(c Case, edits []edit) (*ir.Program, *ir.Func, error) {
	prog, entry := c.Gen()
	if err := applyEdits(entry, edits); err != nil {
		return nil, nil, err
	}
	return prog, entry, nil
}

// builtEntry returns the edited (uncompiled) entry function.
func builtEntry(c Case, edits []edit) (*ir.Func, error) {
	_, entry, err := editedProgram(c, edits)
	return entry, err
}

// editedCaseDiverges is the delta-debugging oracle: the edited program must
// interpret cleanly unoptimized, compile cleanly, and still disagree with
// its own baseline on the input. Any disagreement counts — delta debugging
// preserves "a divergence exists", not the original outcome pair.
func editedCaseDiverges(c Case, edits []edit, input int64, cache *jit.Cache) bool {
	base, entryB, err := editedProgram(c, edits)
	if err != nil {
		return false
	}
	want, err := interpret(base, entryB, c.Model, input)
	if err != nil {
		return false
	}
	opt, entryO, err := editedProgram(c, edits)
	if err != nil {
		return false
	}
	opt, entryO, err = compileCached(cache, c, opt, entryO)
	if err != nil {
		return false
	}
	got, err := interpret(opt, entryO, c.Model, input)
	if err != nil {
		return false
	}
	return !got.Equal(want)
}

// dropUncalledMethods removes method bodies the entry function cannot reach,
// so the emitted reproducer carries only what the bug needs. Reachability is
// transitive over call instructions; bodyless externs are kept (they cost
// one line).
func dropUncalledMethods(p *ir.Program, entry *ir.Func) {
	keep := map[*ir.Func]bool{entry: true}
	var scan func(f *ir.Func)
	scan = func(f *ir.Func) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Callee != nil && in.Callee.Fn != nil && !keep[in.Callee.Fn] {
					keep[in.Callee.Fn] = true
					scan(in.Callee.Fn)
				}
			}
		}
	}
	scan(entry)

	var methods []*ir.Method
	for _, m := range p.Methods {
		if m.Fn == nil || keep[m.Fn] {
			methods = append(methods, m)
		}
	}
	p.Methods = methods
	for _, c := range p.Classes {
		var virt []*ir.Method
		for _, m := range c.Methods {
			if m.Fn == nil || keep[m.Fn] {
				virt = append(virt, m)
			}
		}
		c.Methods = virt
	}
}
