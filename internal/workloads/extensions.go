package workloads

import "trapnull/internal/ir"

// The workloads in this file are extensions beyond the paper's benchmark
// set, used by the ablation experiments (internal/bench/ablation.go). They
// are intentionally NOT part of All(): the paper's tables are regenerated
// from the original seventeen only.

// NullStorm stresses the implicit-check trade-off the paper leaves
// implicit: a hardware trap is far more expensive than a software check
// when it actually fires. The kernel dereferences a reference that is null
// for `n` out of every 1000 iterations inside a try/catch; as the null rate
// rises, configurations that rely on traps pay the OS dispatch cost per
// occurrence while explicit checks pay a cheap software throw.
//
// The parameter is the null rate in per-mille (0..1000), not a problem size.
func NullStorm() *Workload {
	return &Workload{
		Name:  "NullStorm",
		Suite: "extension",
		N:     200, // 20% nulls
		TestN: 100,
		Build: buildNullStorm,
		Ref:   refNullStorm,
	}
}

const nullStormIters = 2000

func buildNullStorm() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("NullStorm")
	cls := p.NewClass("Cell", &ir.Field{Name: "f", Kind: ir.KindInt})

	b, rate := entry("NullStorm")
	obj := b.Local("obj", ir.KindRef)
	ref := b.Local("ref", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	exc := b.Local("exc", ir.KindRef)

	b.New(obj, cls)
	b.PutField(obj, cls.FieldByName("f"), ir.ConstInt(7))
	b.Move(r, ir.ConstInt(777))
	b.Move(s, ir.ConstInt(0))

	f := b.F
	// Loop structure with an in-loop try region: guard; body picks the
	// reference; a try block dereferences it; the handler counts the NPE.
	body := b.DeclareBlock("body")
	tryBlk := b.DeclareBlock("deref")
	handler := b.DeclareBlock("handler")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	region := f.NewRegion(handler, exc)
	tryBlk.Try = region.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	lcgNext(b, r)
	t := b.Temp(ir.KindInt)
	b.Binop(ir.OpRem, t, ir.Var(r), ir.ConstInt(1000))
	pickNull := b.DeclareBlock("pick_null")
	pickObj := b.DeclareBlock("pick_obj")
	b.If(ir.CondLT, ir.Var(t), ir.Var(rate), pickNull, pickObj)
	b.SetBlock(pickNull)
	b.Move(ref, ir.Null())
	b.Jump(tryBlk)
	b.SetBlock(pickObj)
	b.Move(ref, ir.Var(obj))
	b.Jump(tryBlk)

	b.SetBlock(tryBlk)
	v := b.Temp(ir.KindInt)
	b.GetField(v, ref, cls.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	b.Jump(after)

	b.SetBlock(handler)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.ConstInt(nullStormIters), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refNullStorm(rate int64) int64 {
	r := int64(777)
	s := int64(0)
	for i := 0; i < nullStormIters; i++ {
		r = lcgNextGo(r)
		if r%1000 < rate {
			s++ // handler path
		} else {
			s += 7
		}
	}
	return s
}

// BigOffsetWalk exercises the Figure 5(1) boundary: a field whose offset
// lies beyond the protected trap area can never use an implicit check. The
// ablation runs it against models with different TrapAreaBytes to show the
// check disappearing once the protected region covers the offset.
func BigOffsetWalk() *Workload {
	return &Workload{
		Name:  "BigOffsetWalk",
		Suite: "extension",
		N:     4000,
		TestN: 128,
		Build: buildBigOffsetWalk,
		Ref:   refBigOffsetWalk,
	}
}

// bigOffset is past a 4 KB page but inside a 512 KB protected region.
const bigOffset = 64 * 1024

func buildBigOffsetWalk() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("BigOffsetWalk")
	cls := p.NewClass("Wide",
		&ir.Field{Name: "near", Kind: ir.KindInt},
		&ir.Field{Name: "far", Kind: ir.KindInt, Offset: bigOffset},
	)

	b, n := entry("BigOffsetWalk")
	holder := b.Local("holder", ir.KindRef)
	o := b.Local("o", ir.KindRef)
	wr := b.Local("wr", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// Both objects come from a holder so nothing is statically non-null.
	// The loop writes a field of one object first (the Figure 6 barrier),
	// then reads the far field of the other: that read is the only
	// dereference of `o`, so its check can neither be eliminated nor moved
	// backward — it either converts to a trap or stays explicit, which is
	// exactly the Figure 5(1) decision under ablation.
	b.NewArray(holder, ir.ConstInt(2))
	tmp := b.Temp(ir.KindRef)
	b.New(tmp, cls)
	b.PutField(tmp, cls.FieldByName("far"), ir.ConstInt(11))
	b.ArrayStore(holder, ir.ConstInt(0), ir.Var(tmp))
	tmp2 := b.Temp(ir.KindRef)
	b.New(tmp2, cls)
	b.ArrayStore(holder, ir.ConstInt(1), ir.Var(tmp2))
	b.ArrayLoad(o, holder, ir.ConstInt(0))
	b.ArrayLoad(wr, holder, ir.ConstInt(1))

	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		b.PutField(wr, cls.FieldByName("near"), ir.Var(i))
		v := b.Temp(ir.KindInt)
		b.Emit(&ir.Instr{Op: ir.OpNullCheck, Dst: ir.NoVar,
			Args: []ir.Operand{ir.Var(o)}, Reason: ir.ReasonField, Explicit: true})
		b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: cls.FieldByName("far"),
			Args: []ir.Operand{ir.Var(o)}})
		b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refBigOffsetWalk(n int64) int64 {
	return 11 * n
}

// LateNullStorm is the workload where the profile lies. Two references are
// dereferenced through a field beyond the 4 KB trap area — so phase 2 cannot
// convert the checks on either model and they survive as explicit,
// speculable checks — and each goes null late, at a staggered threshold
// (3n/4 and 7n/8), inside its own in-loop try/catch. A tiered machine
// profiles thousands of null-free executions, speculates both checks away,
// then meets the nulls: each fired guard must deoptimize, blacklist its
// speculation, and converge to conservative code with the exact untiered
// Outcome. The parameter is the iteration count.
func LateNullStorm() *Workload {
	return &Workload{
		Name:  "LateNullStorm",
		Suite: "extension",
		N:     6000,
		TestN: 1200,
		Build: buildLateNullStorm,
		Ref:   refLateNullStorm,
	}
}

func buildLateNullStorm() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("LateNullStorm")
	cls := p.NewClass("Far",
		&ir.Field{Name: "pad", Kind: ir.KindInt},
		&ir.Field{Name: "far", Kind: ir.KindInt, Offset: bigOffset},
	)

	b, n := entry("LateNullStorm")
	a := b.Local("a", ir.KindRef)
	c := b.Local("c", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	t1 := b.Local("t1", ir.KindInt)
	t2 := b.Local("t2", ir.KindInt)
	exc1 := b.Local("exc1", ir.KindRef)
	exc2 := b.Local("exc2", ir.KindRef)

	b.New(a, cls)
	b.PutField(a, cls.FieldByName("far"), ir.ConstInt(11))
	b.New(c, cls)
	b.PutField(c, cls.FieldByName("far"), ir.ConstInt(13))
	b.Move(s, ir.ConstInt(0))
	b.Binop(ir.OpMul, t1, ir.Var(n), ir.ConstInt(3))
	b.Binop(ir.OpDiv, t1, ir.Var(t1), ir.ConstInt(4))
	b.Binop(ir.OpMul, t2, ir.Var(n), ir.ConstInt(7))
	b.Binop(ir.OpDiv, t2, ir.Var(t2), ir.ConstInt(8))

	f := b.F
	body := b.DeclareBlock("body")
	try1 := b.DeclareBlock("deref_a")
	h1 := b.DeclareBlock("handler_a")
	try2 := b.DeclareBlock("deref_c")
	h2 := b.DeclareBlock("handler_c")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	r1 := f.NewRegion(h1, exc1)
	try1.Try = r1.ID
	r2 := f.NewRegion(h2, exc2)
	try2.Try = r2.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	ifThen(b, ir.CondEQ, ir.Var(i), ir.Var(t1), func() { b.Move(a, ir.Null()) })
	ifThen(b, ir.CondEQ, ir.Var(i), ir.Var(t2), func() { b.Move(c, ir.Null()) })
	b.Jump(try1)

	b.SetBlock(try1)
	v := b.Temp(ir.KindInt)
	b.GetField(v, a, cls.FieldByName("far"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	b.Jump(try2)
	b.SetBlock(h1)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(try2)

	b.SetBlock(try2)
	w := b.Temp(ir.KindInt)
	b.GetField(w, c, cls.FieldByName("far"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(w))
	b.Jump(after)
	b.SetBlock(h2)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(3))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refLateNullStorm(n int64) int64 {
	t1, t2 := n*3/4, n*7/8
	var s int64
	aNull, cNull := false, false
	for i := int64(0); i < n; i++ {
		if i == t1 {
			aNull = true
		}
		if i == t2 {
			cNull = true
		}
		if aNull {
			s++
		} else {
			s += 11
		}
		if cNull {
			s += 3
		} else {
			s += 13
		}
	}
	return s
}
