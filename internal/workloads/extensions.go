package workloads

import "trapnull/internal/ir"

// The workloads in this file are extensions beyond the paper's benchmark
// set, used by the ablation experiments (internal/bench/ablation.go). They
// are intentionally NOT part of All(): the paper's tables are regenerated
// from the original seventeen only.

// NullStorm stresses the implicit-check trade-off the paper leaves
// implicit: a hardware trap is far more expensive than a software check
// when it actually fires. The kernel dereferences a reference that is null
// for `n` out of every 1000 iterations inside a try/catch; as the null rate
// rises, configurations that rely on traps pay the OS dispatch cost per
// occurrence while explicit checks pay a cheap software throw.
//
// The parameter is the null rate in per-mille (0..1000), not a problem size.
func NullStorm() *Workload {
	return &Workload{
		Name:  "NullStorm",
		Suite: "extension",
		N:     200, // 20% nulls
		TestN: 100,
		Build: buildNullStorm,
		Ref:   refNullStorm,
	}
}

const nullStormIters = 2000

func buildNullStorm() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("NullStorm")
	cls := p.NewClass("Cell", &ir.Field{Name: "f", Kind: ir.KindInt})

	b, rate := entry("NullStorm")
	obj := b.Local("obj", ir.KindRef)
	ref := b.Local("ref", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	exc := b.Local("exc", ir.KindRef)

	b.New(obj, cls)
	b.PutField(obj, cls.FieldByName("f"), ir.ConstInt(7))
	b.Move(r, ir.ConstInt(777))
	b.Move(s, ir.ConstInt(0))

	f := b.F
	// Loop structure with an in-loop try region: guard; body picks the
	// reference; a try block dereferences it; the handler counts the NPE.
	body := b.DeclareBlock("body")
	tryBlk := b.DeclareBlock("deref")
	handler := b.DeclareBlock("handler")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	region := f.NewRegion(handler, exc)
	tryBlk.Try = region.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	lcgNext(b, r)
	t := b.Temp(ir.KindInt)
	b.Binop(ir.OpRem, t, ir.Var(r), ir.ConstInt(1000))
	pickNull := b.DeclareBlock("pick_null")
	pickObj := b.DeclareBlock("pick_obj")
	b.If(ir.CondLT, ir.Var(t), ir.Var(rate), pickNull, pickObj)
	b.SetBlock(pickNull)
	b.Move(ref, ir.Null())
	b.Jump(tryBlk)
	b.SetBlock(pickObj)
	b.Move(ref, ir.Var(obj))
	b.Jump(tryBlk)

	b.SetBlock(tryBlk)
	v := b.Temp(ir.KindInt)
	b.GetField(v, ref, cls.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	b.Jump(after)

	b.SetBlock(handler)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.ConstInt(nullStormIters), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refNullStorm(rate int64) int64 {
	r := int64(777)
	s := int64(0)
	for i := 0; i < nullStormIters; i++ {
		r = lcgNextGo(r)
		if r%1000 < rate {
			s++ // handler path
		} else {
			s += 7
		}
	}
	return s
}

// BigOffsetWalk exercises the Figure 5(1) boundary: a field whose offset
// lies beyond the protected trap area can never use an implicit check. The
// ablation runs it against models with different TrapAreaBytes to show the
// check disappearing once the protected region covers the offset.
func BigOffsetWalk() *Workload {
	return &Workload{
		Name:  "BigOffsetWalk",
		Suite: "extension",
		N:     4000,
		TestN: 128,
		Build: buildBigOffsetWalk,
		Ref:   refBigOffsetWalk,
	}
}

// bigOffset is past a 4 KB page but inside a 512 KB protected region.
const bigOffset = 64 * 1024

func buildBigOffsetWalk() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("BigOffsetWalk")
	cls := p.NewClass("Wide",
		&ir.Field{Name: "near", Kind: ir.KindInt},
		&ir.Field{Name: "far", Kind: ir.KindInt, Offset: bigOffset},
	)

	b, n := entry("BigOffsetWalk")
	holder := b.Local("holder", ir.KindRef)
	o := b.Local("o", ir.KindRef)
	wr := b.Local("wr", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// Both objects come from a holder so nothing is statically non-null.
	// The loop writes a field of one object first (the Figure 6 barrier),
	// then reads the far field of the other: that read is the only
	// dereference of `o`, so its check can neither be eliminated nor moved
	// backward — it either converts to a trap or stays explicit, which is
	// exactly the Figure 5(1) decision under ablation.
	b.NewArray(holder, ir.ConstInt(2))
	tmp := b.Temp(ir.KindRef)
	b.New(tmp, cls)
	b.PutField(tmp, cls.FieldByName("far"), ir.ConstInt(11))
	b.ArrayStore(holder, ir.ConstInt(0), ir.Var(tmp))
	tmp2 := b.Temp(ir.KindRef)
	b.New(tmp2, cls)
	b.ArrayStore(holder, ir.ConstInt(1), ir.Var(tmp2))
	b.ArrayLoad(o, holder, ir.ConstInt(0))
	b.ArrayLoad(wr, holder, ir.ConstInt(1))

	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		b.PutField(wr, cls.FieldByName("near"), ir.Var(i))
		v := b.Temp(ir.KindInt)
		b.Emit(&ir.Instr{Op: ir.OpNullCheck, Dst: ir.NoVar,
			Args: []ir.Operand{ir.Var(o)}, Reason: ir.ReasonField, Explicit: true})
		b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: cls.FieldByName("far"),
			Args: []ir.Operand{ir.Var(o)}})
		b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refBigOffsetWalk(n int64) int64 {
	return 11 * n
}
