package workloads

import "trapnull/internal/ir"

// Compress mirrors SPECjvm98 _201_compress: LZW-style dictionary
// compression over a byte stream — tight array loops with hashing, where
// the paper's Table 2 shows the hardware trap alone recovering most of the
// available headroom (18.70 → 17.55).
func Compress() *Workload {
	return &Workload{
		Name:  "Compress",
		Suite: "SPECjvm98",
		N:     30000,
		TestN: 512,
		Build: buildCompress,
		Ref:   refCompress,
	}
}

const compTable = 4096

func buildCompress() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Compress")
	b, n := entry("Compress")

	input := b.Local("input", ir.KindRef)
	table := b.Local("table", ir.KindRef)
	codes := b.Local("codes", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	h := b.Local("h", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	matches := b.Local("matches", ir.KindInt)

	b.NewArray(input, ir.Var(n))
	b.Move(r, ir.ConstInt(31337))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		v := b.Temp(ir.KindInt)
		// Biased byte distribution so the dictionary actually hits.
		b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(64))
		ifThen(b, ir.CondGE, ir.Var(v), ir.ConstInt(32), func() {
			b.Binop(ir.OpAnd, v, ir.Var(v), ir.ConstInt(7))
		})
		b.ArrayStore(input, ir.Var(i), ir.Var(v))
	})

	b.NewArray(table, ir.ConstInt(compTable))
	b.NewArray(codes, ir.ConstInt(compTable))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(compTable), func() {
		b.ArrayStore(table, ir.Var(i), ir.ConstInt(-1))
	})

	b.Move(h, ir.ConstInt(0))
	b.Move(matches, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		c := b.Temp(ir.KindInt)
		b.ArrayLoad(c, input, ir.Var(i))
		b.Binop(ir.OpMul, h, ir.Var(h), ir.ConstInt(31))
		b.Binop(ir.OpAdd, h, ir.Var(h), ir.Var(c))
		b.Binop(ir.OpAnd, h, ir.Var(h), ir.ConstInt(compTable-1))
		te := b.Temp(ir.KindInt)
		b.ArrayLoad(te, table, ir.Var(h))
		ifThenElse(b, ir.CondEQ, ir.Var(te), ir.Var(c),
			func() {
				b.Binop(ir.OpAdd, matches, ir.Var(matches), ir.ConstInt(1))
				cd := b.Temp(ir.KindInt)
				b.ArrayLoad(cd, codes, ir.Var(h))
				b.Binop(ir.OpAdd, cd, ir.Var(cd), ir.ConstInt(1))
				b.ArrayStore(codes, ir.Var(h), ir.Var(cd))
			},
			func() {
				b.ArrayStore(table, ir.Var(h), ir.Var(c))
			})
	})
	mix(b, s, ir.Var(matches))
	forLoopStep(b, i, ir.ConstInt(0), ir.ConstInt(compTable), 256, func() {
		cd := b.Temp(ir.KindInt)
		b.ArrayLoad(cd, codes, ir.Var(i))
		mix(b, s, ir.Var(cd))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refCompress(n int64) int64 {
	input := make([]int64, n)
	r := int64(31337)
	for i := range input {
		r = lcgNextGo(r)
		v := r % 64
		if v >= 32 {
			v &= 7
		}
		input[i] = v
	}
	table := make([]int64, compTable)
	codes := make([]int64, compTable)
	for i := range table {
		table[i] = -1
	}
	h, matches := int64(0), int64(0)
	for i := int64(0); i < n; i++ {
		c := input[i]
		h = (h*31 + c) & (compTable - 1)
		if table[h] == c {
			matches++
			codes[h]++
		} else {
			table[h] = c
		}
	}
	s := mixGo(0, matches)
	for i := 0; i < compTable; i += 256 {
		s = mixGo(s, codes[i])
	}
	return s
}

// MPEGAudio mirrors SPECjvm98 _222_mpegaudio: a polyphase FIR filter over
// float sample windows — multiply-accumulate inner loops whose array bases
// are loop-invariant (null check hoisting) but whose indices are not
// (bounds checks stay).
func MPEGAudio() *Workload {
	return &Workload{
		Name:  "MPEGAudio",
		Suite: "SPECjvm98",
		N:     4000,
		TestN: 256,
		Build: buildMPEG,
		Ref:   refMPEG,
	}
}

const firTaps = 32

func buildMPEG() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("MPEGAudio")
	b, n := entry("MPEGAudio")

	x := b.Local("x", ir.KindRef)
	c := b.Local("c", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	b.NewArray(c, ir.ConstInt(firTaps))
	forLoop(b, j, ir.ConstInt(0), ir.ConstInt(firTaps), func() {
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpSub, v, ir.ConstInt(firTaps/2), ir.Var(j))
		vf := b.Temp(ir.KindFloat)
		b.Unop(ir.OpIntToFloat, vf, ir.Var(v))
		b.Binop(ir.OpFMul, vf, ir.Var(vf), ir.ConstFloat(0.01))
		b.ArrayStore(c, ir.Var(j), ir.Var(vf))
	})
	b.NewArray(x, ir.Var(n))
	b.Move(r, ir.ConstInt(808))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(2001))
		b.Binop(ir.OpSub, v, ir.Var(v), ir.ConstInt(1000))
		vf := b.Temp(ir.KindFloat)
		b.Unop(ir.OpIntToFloat, vf, ir.Var(v))
		b.Binop(ir.OpFMul, vf, ir.Var(vf), ir.ConstFloat(0.001))
		b.ArrayStore(x, ir.Var(i), ir.Var(vf))
	})

	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(firTaps), ir.Var(n), func() {
		acc := b.Local("acc", ir.KindFloat)
		b.Move(acc, ir.ConstFloat(0))
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(firTaps), func() {
			cj := b.Temp(ir.KindFloat)
			b.ArrayLoad(cj, c, ir.Var(j))
			idx := b.Temp(ir.KindInt)
			b.Binop(ir.OpSub, idx, ir.Var(i), ir.Var(j))
			xv := b.Temp(ir.KindFloat)
			b.ArrayLoad(xv, x, ir.Var(idx))
			pr := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFMul, pr, ir.Var(cj), ir.Var(xv))
			b.Binop(ir.OpFAdd, acc, ir.Var(acc), ir.Var(pr))
		})
		m := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, m, ir.Var(i), ir.ConstInt(255))
		ifThen(b, ir.CondEQ, ir.Var(m), ir.ConstInt(0), func() {
			sc := b.Temp(ir.KindInt)
			scaleF(b, sc, ir.Var(acc))
			mix(b, s, ir.Var(sc))
		})
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refMPEG(n int64) int64 {
	c := make([]float64, firTaps)
	for j := 0; j < firTaps; j++ {
		c[j] = float64(firTaps/2-j) * 0.01
	}
	x := make([]float64, n)
	r := int64(808)
	for i := range x {
		r = lcgNextGo(r)
		x[i] = float64(r%2001-1000) * 0.001
	}
	s := int64(0)
	for i := int64(firTaps); i < n; i++ {
		acc := 0.0
		for j := int64(0); j < firTaps; j++ {
			acc += c[j] * x[i-j]
		}
		if i&255 == 0 {
			s = mixGo(s, scaleFGo(acc))
		}
	}
	return s
}

// Jack mirrors SPECjvm98 _228_jack: a tokenizer/state machine over a symbol
// stream with small classifier helpers that inline away — branch-dense with
// short basic blocks.
func Jack() *Workload {
	return &Workload{
		Name:  "Jack",
		Suite: "SPECjvm98",
		N:     24000,
		TestN: 512,
		Build: buildJack,
		Ref:   refJack,
	}
}

func buildJack() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Jack")

	// isAlpha(ch): 10 <= ch < 36.
	ab := ir.NewFunc("isAlpha", false)
	ac := ab.Param("ch", ir.KindInt)
	ab.Result(ir.KindInt)
	ab.Block("entry")
	yes := ab.DeclareBlock("yes")
	mid := ab.DeclareBlock("mid")
	no := ab.DeclareBlock("no")
	ab.If(ir.CondGE, ir.Var(ac), ir.ConstInt(10), mid, no)
	ab.SetBlock(mid)
	ab.If(ir.CondLT, ir.Var(ac), ir.ConstInt(36), yes, no)
	ab.SetBlock(yes)
	ab.Return(ir.ConstInt(1))
	ab.SetBlock(no)
	ab.Return(ir.ConstInt(0))
	isAlpha := p.AddMethod(nil, "isAlpha", ab.Finish(), false)

	// isDigit(ch): ch < 10.
	db2 := ir.NewFunc("isDigit", false)
	dc := db2.Param("ch", ir.KindInt)
	db2.Result(ir.KindInt)
	db2.Block("entry")
	dyes := db2.DeclareBlock("yes")
	dno := db2.DeclareBlock("no")
	db2.If(ir.CondLT, ir.Var(dc), ir.ConstInt(10), dyes, dno)
	db2.SetBlock(dyes)
	db2.Return(ir.ConstInt(1))
	db2.SetBlock(dno)
	db2.Return(ir.ConstInt(0))
	isDigit := p.AddMethod(nil, "isDigit", db2.Finish(), false)

	b, n := entry("Jack")
	input := b.Local("input", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	state := b.Local("state", ir.KindInt) // 0 none, 1 ident, 2 number
	idents := b.Local("idents", ir.KindInt)
	numbers := b.Local("numbers", ir.KindInt)
	curLen := b.Local("curLen", ir.KindInt)

	b.NewArray(input, ir.Var(n))
	b.Move(r, ir.ConstInt(1961))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(48))
		b.ArrayStore(input, ir.Var(i), ir.Var(v))
	})

	// Per-class token counters, updated through memory like jack's symbol
	// tables (adds the array traffic a real tokenizer has).
	counts := b.Local("counts", ir.KindRef)
	b.NewArray(counts, ir.ConstInt(48))

	b.Move(state, ir.ConstInt(0))
	b.Move(idents, ir.ConstInt(0))
	b.Move(numbers, ir.ConstInt(0))
	b.Move(curLen, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		ch := b.Temp(ir.KindInt)
		b.ArrayLoad(ch, input, ir.Var(i))
		cc := b.Temp(ir.KindInt)
		b.ArrayLoad(cc, counts, ir.Var(ch))
		b.Binop(ir.OpAdd, cc, ir.Var(cc), ir.ConstInt(1))
		b.ArrayStore(counts, ir.Var(ch), ir.Var(cc))
		al := b.Temp(ir.KindInt)
		b.CallStatic(al, isAlpha, ir.Var(ch))
		dg := b.Temp(ir.KindInt)
		b.CallStatic(dg, isDigit, ir.Var(ch))
		ifThenElse(b, ir.CondNE, ir.Var(al), ir.ConstInt(0),
			func() {
				// Alphabetic: start or continue an identifier.
				ifThenElse(b, ir.CondEQ, ir.Var(state), ir.ConstInt(1),
					func() { b.Binop(ir.OpAdd, curLen, ir.Var(curLen), ir.ConstInt(1)) },
					func() {
						b.Move(state, ir.ConstInt(1))
						b.Binop(ir.OpAdd, idents, ir.Var(idents), ir.ConstInt(1))
						b.Move(curLen, ir.ConstInt(1))
					})
			},
			func() {
				ifThenElse(b, ir.CondNE, ir.Var(dg), ir.ConstInt(0),
					func() {
						// Digit continues an identifier, else forms a number.
						ifThen(b, ir.CondNE, ir.Var(state), ir.ConstInt(1), func() {
							ifThen(b, ir.CondNE, ir.Var(state), ir.ConstInt(2), func() {
								b.Move(state, ir.ConstInt(2))
								b.Binop(ir.OpAdd, numbers, ir.Var(numbers), ir.ConstInt(1))
							})
						})
						b.Binop(ir.OpAdd, curLen, ir.Var(curLen), ir.ConstInt(1))
					},
					func() {
						// Separator: close any token.
						ifThen(b, ir.CondNE, ir.Var(state), ir.ConstInt(0), func() {
							mix(b, s, ir.Var(curLen))
							b.Move(state, ir.ConstInt(0))
							b.Move(curLen, ir.ConstInt(0))
						})
					})
			})
	})
	mix(b, s, ir.Var(idents))
	mix(b, s, ir.Var(numbers))
	forLoopStep(b, i, ir.ConstInt(0), ir.ConstInt(48), 8, func() {
		cv := b.Temp(ir.KindInt)
		b.ArrayLoad(cv, counts, ir.Var(i))
		mix(b, s, ir.Var(cv))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refJack(n int64) int64 {
	input := make([]int64, n)
	r := int64(1961)
	for i := range input {
		r = lcgNextGo(r)
		input[i] = r % 48
	}
	counts := make([]int64, 48)
	state, idents, numbers, curLen := int64(0), int64(0), int64(0), int64(0)
	s := int64(0)
	for i := int64(0); i < n; i++ {
		ch := input[i]
		counts[ch]++
		isAl := ch >= 10 && ch < 36
		isDg := ch < 10
		switch {
		case isAl:
			if state == 1 {
				curLen++
			} else {
				state = 1
				idents++
				curLen = 1
			}
		case isDg:
			if state != 1 && state != 2 {
				state = 2
				numbers++
			}
			curLen++
		default:
			if state != 0 {
				s = mixGo(s, curLen)
				state = 0
				curLen = 0
			}
		}
	}
	s = mixGo(s, idents)
	s = mixGo(s, numbers)
	for i := 0; i < 48; i += 8 {
		s = mixGo(s, counts[i])
	}
	return s
}
