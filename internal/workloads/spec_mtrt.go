package workloads

import "trapnull/internal/ir"

// MTRT mirrors SPECjvm98 _227_mtrt: a ray tracer whose hot loops call tiny
// virtual accessor methods on vector and sphere objects. After
// devirtualization + inlining, each call leaves an explicit null check
// behind (Figure 1); the paper singles mtrt out as the workload where the
// architecture-dependent phase 2 converts those checks into hardware traps
// (§5.1: "particularly effective for mtrt after method inlining").
func MTRT() *Workload {
	return &Workload{
		Name:  "MTRT",
		Suite: "SPECjvm98",
		N:     700,
		TestN: 32,
		Build: buildMTRT,
		Ref:   refMTRT,
	}
}

const mtrtSpheres = 8

func buildMTRT() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("MTRT")
	sphere := p.NewClass("Sphere",
		&ir.Field{Name: "cx", Kind: ir.KindFloat},
		&ir.Field{Name: "cy", Kind: ir.KindFloat},
		&ir.Field{Name: "cz", Kind: ir.KindFloat},
		&ir.Field{Name: "rr", Kind: ir.KindFloat}, // radius squared
	)

	// Virtual accessors — the mtrt pattern. coord(this, axis) has the
	// Figure 1 shape: a range guard that returns without touching the
	// receiver, so after inlining the devirtualization check's dereference
	// is conditional. Only phase 2's forward motion can make the hot
	// (dereferencing) paths free.
	coordB := ir.NewFunc("coord", true)
	cThis := coordB.Param("this", ir.KindRef)
	cAxis := coordB.Param("axis", ir.KindInt)
	coordB.Result(ir.KindFloat)
	coordB.Block("entry")
	chkHi := coordB.DeclareBlock("chk_hi")
	ranged := coordB.DeclareBlock("ranged")
	outOfRange := coordB.DeclareBlock("oor")
	xBlk := coordB.DeclareBlock("x")
	notX := coordB.DeclareBlock("notx")
	yBlk := coordB.DeclareBlock("y")
	zBlk := coordB.DeclareBlock("z")
	coordB.If(ir.CondLT, ir.Var(cAxis), ir.ConstInt(0), outOfRange, chkHi)
	coordB.SetBlock(chkHi)
	coordB.If(ir.CondGE, ir.Var(cAxis), ir.ConstInt(3), outOfRange, ranged)
	coordB.SetBlock(outOfRange)
	coordB.Return(ir.ConstFloat(0))
	coordB.SetBlock(ranged)
	coordB.If(ir.CondEQ, ir.Var(cAxis), ir.ConstInt(0), xBlk, notX)
	coordB.SetBlock(xBlk)
	vx := coordB.Temp(ir.KindFloat)
	coordB.GetField(vx, cThis, sphere.FieldByName("cx"))
	coordB.Return(ir.Var(vx))
	coordB.SetBlock(notX)
	coordB.If(ir.CondEQ, ir.Var(cAxis), ir.ConstInt(1), yBlk, zBlk)
	coordB.SetBlock(yBlk)
	vy := coordB.Temp(ir.KindFloat)
	coordB.GetField(vy, cThis, sphere.FieldByName("cy"))
	coordB.Return(ir.Var(vy))
	coordB.SetBlock(zBlk)
	vz := coordB.Temp(ir.KindFloat)
	coordB.GetField(vz, cThis, sphere.FieldByName("cz"))
	coordB.Return(ir.Var(vz))
	coord := p.AddMethod(sphere, "coord", coordB.Finish(), true)

	radB := ir.NewFunc("radiusSq", true)
	rThis := radB.Param("this", ir.KindRef)
	radB.Result(ir.KindFloat)
	radB.Block("entry")
	rv := radB.Temp(ir.KindFloat)
	radB.GetField(rv, rThis, sphere.FieldByName("rr"))
	radB.Return(ir.Var(rv))
	radiusSq := p.AddMethod(sphere, "radiusSq", radB.Finish(), true)

	b, n := entry("MTRT")
	spheres := b.Local("spheres", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	t := b.Local("t", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	hits := b.Local("hits", ir.KindInt)

	// Scene setup.
	b.NewArray(spheres, ir.ConstInt(mtrtSpheres))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(mtrtSpheres), func() {
		o := b.Temp(ir.KindRef)
		b.New(o, sphere)
		f := b.Temp(ir.KindFloat)
		b.Unop(ir.OpIntToFloat, f, ir.Var(i))
		cx := b.Temp(ir.KindFloat)
		b.Binop(ir.OpFMul, cx, ir.Var(f), ir.ConstFloat(0.75))
		b.PutField(o, sphere.FieldByName("cx"), ir.Var(cx))
		cy := b.Temp(ir.KindFloat)
		b.Binop(ir.OpFSub, cy, ir.ConstFloat(2.0), ir.Var(f))
		b.PutField(o, sphere.FieldByName("cy"), ir.Var(cy))
		b.PutField(o, sphere.FieldByName("cz"), ir.ConstFloat(4.0))
		rr := b.Temp(ir.KindFloat)
		b.Binop(ir.OpFMul, rr, ir.ConstFloat(0.3), ir.Var(f))
		b.Binop(ir.OpFAdd, rr, ir.Var(rr), ir.ConstFloat(1.0))
		b.PutField(o, sphere.FieldByName("rr"), ir.Var(rr))
		b.ArrayStore(spheres, ir.Var(i), ir.Var(o))
	})

	// Trace: for each ray, test every sphere via the accessors. The first
	// accessor call uses a computed axis selector that is out of range for
	// a quarter of the (ray, sphere) pairs; the caller then rejects the
	// pair without touching the sphere again — so the inlined guard check
	// is live on a path with no dereference, the Figure 1 situation that
	// only phase 2's forward motion can optimize.
	b.Move(s, ir.ConstInt(0))
	b.Move(hits, ir.ConstInt(0))
	forLoop(b, t, ir.ConstInt(0), ir.Var(n), func() {
		// Ray direction from the ray index.
		tf := b.Temp(ir.KindFloat)
		b.Unop(ir.OpIntToFloat, tf, ir.Var(t))
		dx := b.Local("dx", ir.KindFloat)
		dy := b.Local("dy", ir.KindFloat)
		b.Binop(ir.OpFMul, dx, ir.Var(tf), ir.ConstFloat(0.001))
		b.Binop(ir.OpFSub, dy, ir.ConstFloat(0.5), ir.Var(dx))
		forLoop(b, i, ir.ConstInt(0), ir.ConstInt(mtrtSpheres), func() {
			o := b.Local("o", ir.KindRef)
			b.ArrayLoad(o, spheres, ir.Var(i))
			// sel in -1..2; -1 selects nothing and rejects the pair.
			sel := b.Temp(ir.KindInt)
			b.Binop(ir.OpAdd, sel, ir.Var(t), ir.Var(i))
			b.Binop(ir.OpAnd, sel, ir.Var(sel), ir.ConstInt(3))
			b.Binop(ir.OpSub, sel, ir.Var(sel), ir.ConstInt(1))
			q := b.Temp(ir.KindFloat)
			b.CallVirtual(q, coord, o, ir.Var(sel))
			skip := b.DeclareBlock("skip_pair")
			keep := b.DeclareBlock("keep_pair")
			cont := b.DeclareBlock("pair_done")
			b.If(ir.CondLT, ir.Var(sel), ir.ConstInt(0), skip, keep)
			b.SetBlock(skip)
			b.Jump(cont)
			b.SetBlock(keep)
			ox := b.Temp(ir.KindFloat)
			b.Move(ox, ir.Var(q))
			oy := b.Temp(ir.KindFloat)
			b.CallVirtual(oy, coord, o, ir.ConstInt(1))
			oz := b.Temp(ir.KindFloat)
			b.CallVirtual(oz, coord, o, ir.ConstInt(2))
			rr := b.Temp(ir.KindFloat)
			b.CallVirtual(rr, radiusSq, o)
			// Distance of sphere centre from the ray (approximate):
			// d = (ox - dx)^2 + (oy - dy)^2 + (oz - 4)^2
			t1 := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFSub, t1, ir.Var(ox), ir.Var(dx))
			b.Binop(ir.OpFMul, t1, ir.Var(t1), ir.Var(t1))
			t2 := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFSub, t2, ir.Var(oy), ir.Var(dy))
			b.Binop(ir.OpFMul, t2, ir.Var(t2), ir.Var(t2))
			t3 := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFSub, t3, ir.Var(oz), ir.ConstFloat(4.0))
			b.Binop(ir.OpFMul, t3, ir.Var(t3), ir.Var(t3))
			d := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFAdd, d, ir.Var(t1), ir.Var(t2))
			b.Binop(ir.OpFAdd, d, ir.Var(d), ir.Var(t3))
			ifThen(b, ir.CondLT, ir.Var(d), ir.Var(rr), func() {
				b.Binop(ir.OpAdd, hits, ir.Var(hits), ir.ConstInt(1))
				sc := b.Temp(ir.KindInt)
				scaleF(b, sc, ir.Var(d))
				mix(b, s, ir.Var(sc))
			})
			b.Jump(cont)
			b.SetBlock(cont)
		})
	})
	mix(b, s, ir.Var(hits))
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refMTRT(n int64) int64 {
	type sphereT struct{ cx, cy, cz, rr float64 }
	spheres := make([]sphereT, mtrtSpheres)
	for i := range spheres {
		f := float64(i)
		spheres[i] = sphereT{
			cx: f * 0.75,
			cy: 2.0 - f,
			cz: 4.0,
			rr: 0.3*f + 1.0,
		}
	}
	s, hits := int64(0), int64(0)
	coordOf := func(o sphereT, axis int64) float64 {
		switch axis {
		case 0:
			return o.cx
		case 1:
			return o.cy
		case 2:
			return o.cz
		}
		return 0
	}
	for t := int64(0); t < n; t++ {
		dx := float64(t) * 0.001
		dy := 0.5 - dx
		for i := range spheres {
			o := spheres[i]
			sel := (t+int64(i))&3 - 1
			if sel < 0 {
				continue
			}
			q := coordOf(o, sel)
			t1 := (q - dx) * (q - dx)
			t2 := (o.cy - dy) * (o.cy - dy)
			t3 := (o.cz - 4.0) * (o.cz - 4.0)
			d := t1 + t2 + t3
			if d < o.rr {
				hits++
				s = mixGo(s, scaleFGo(d))
			}
		}
	}
	s = mixGo(s, hits)
	return s
}
