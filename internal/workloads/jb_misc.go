package workloads

import "trapnull/internal/ir"

// IDEAEncryption mirrors jBYTEmark's IDEA encryption kernel: arithmetic
// rounds over 16-bit blocks with a key schedule held in an array —
// multiply/add/xor dense with regular array traffic.
func IDEAEncryption() *Workload {
	return &Workload{
		Name:  "IDEAEncryption",
		Suite: "jBYTEmark",
		N:     6000,
		TestN: 128,
		Build: buildIDEA,
		Ref:   refIDEA,
	}
}

const ideaKeys = 16

func buildIDEA() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("IDEAEncryption")
	b, n := entry("IDEAEncryption")

	key := b.Local("key", ir.KindRef)
	data := b.Local("data", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	rd := b.Local("rd", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	b.NewArray(key, ir.ConstInt(ideaKeys))
	b.Move(r, ir.ConstInt(321))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(ideaKeys), func() {
		lcgNext(b, r)
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, v, ir.Var(r), ir.ConstInt(0xffff))
		b.Binop(ir.OpOr, v, ir.Var(v), ir.ConstInt(1)) // avoid zero keys
		b.ArrayStore(key, ir.Var(i), ir.Var(v))
	})
	b.NewArray(data, ir.Var(n))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, v, ir.Var(r), ir.ConstInt(0xffff))
		b.ArrayStore(data, ir.Var(i), ir.Var(v))
	})

	// Four rounds of mul-mod-65537 / add / xor per block.
	forLoop(b, rd, ir.ConstInt(0), ir.ConstInt(4), func() {
		forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
			x := b.Local("x", ir.KindInt)
			b.ArrayLoad(x, data, ir.Var(i))
			ki := b.Temp(ir.KindInt)
			kidx := b.Temp(ir.KindInt)
			b.Binop(ir.OpAdd, kidx, ir.Var(i), ir.Var(rd))
			b.Binop(ir.OpAnd, kidx, ir.Var(kidx), ir.ConstInt(ideaKeys-1))
			b.ArrayLoad(ki, key, ir.Var(kidx))
			// x = (x * k) % 65537 (the IDEA multiply, zero mapped to 65536).
			ifThen(b, ir.CondEQ, ir.Var(x), ir.ConstInt(0), func() {
				b.Move(x, ir.ConstInt(65536))
			})
			b.Binop(ir.OpMul, x, ir.Var(x), ir.Var(ki))
			b.Binop(ir.OpRem, x, ir.Var(x), ir.ConstInt(65537))
			b.Binop(ir.OpAnd, x, ir.Var(x), ir.ConstInt(0xffff))
			// x = (x + k2) & 0xffff ^ k3
			k2i := b.Temp(ir.KindInt)
			b.Binop(ir.OpXor, k2i, ir.Var(kidx), ir.ConstInt(5))
			b.Binop(ir.OpAnd, k2i, ir.Var(k2i), ir.ConstInt(ideaKeys-1))
			k2 := b.Temp(ir.KindInt)
			b.ArrayLoad(k2, key, ir.Var(k2i))
			b.Binop(ir.OpAdd, x, ir.Var(x), ir.Var(k2))
			b.Binop(ir.OpAnd, x, ir.Var(x), ir.ConstInt(0xffff))
			b.Binop(ir.OpXor, x, ir.Var(x), ir.Var(ki))
			b.Binop(ir.OpAnd, x, ir.Var(x), ir.ConstInt(0xffff))
			b.ArrayStore(data, ir.Var(i), ir.Var(x))
		})
	})

	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		v := b.Temp(ir.KindInt)
		b.ArrayLoad(v, data, ir.Var(i))
		mix(b, s, ir.Var(v))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refIDEA(n int64) int64 {
	key := make([]int64, ideaKeys)
	r := int64(321)
	for i := range key {
		r = lcgNextGo(r)
		key[i] = r&0xffff | 1
	}
	data := make([]int64, n)
	for i := range data {
		r = lcgNextGo(r)
		data[i] = r & 0xffff
	}
	for rd := int64(0); rd < 4; rd++ {
		for i := int64(0); i < n; i++ {
			x := data[i]
			kidx := (i + rd) & (ideaKeys - 1)
			ki := key[kidx]
			if x == 0 {
				x = 65536
			}
			x = (x * ki) % 65537 & 0xffff
			k2 := key[(kidx^5)&(ideaKeys-1)]
			x = (x + k2) & 0xffff
			x = (x ^ ki) & 0xffff
			data[i] = x
		}
	}
	s := int64(0)
	for i := int64(0); i < n; i++ {
		s = mixGo(s, data[i])
	}
	return s
}

// HuffmanCompression mirrors jBYTEmark's Huffman kernel: frequency counting,
// greedy tree construction over small arrays, then a weighted encode pass —
// branchy control flow around dense small-array access.
func HuffmanCompression() *Workload {
	return &Workload{
		Name:  "HuffmanCompression",
		Suite: "jBYTEmark",
		N:     9000,
		TestN: 256,
		Build: buildHuffman,
		Ref:   refHuffman,
	}
}

const hufSyms = 32

func buildHuffman() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("HuffmanCompression")
	b, n := entry("HuffmanCompression")

	input := b.Local("input", ir.KindRef)
	freq := b.Local("freq", ir.KindRef)
	depth := b.Local("depth", ir.KindRef)
	alive := b.Local("alive", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	b.NewArray(input, ir.Var(n))
	b.Move(r, ir.ConstInt(4242))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		// Skew the distribution: syms 0..7 are four times as likely.
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(hufSyms*2))
		ifThen(b, ir.CondGE, ir.Var(v), ir.ConstInt(hufSyms), func() {
			b.Binop(ir.OpAnd, v, ir.Var(v), ir.ConstInt(7))
		})
		b.ArrayStore(input, ir.Var(i), ir.Var(v))
	})

	// Frequency count.
	b.NewArray(freq, ir.ConstInt(hufSyms))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		v := b.Temp(ir.KindInt)
		b.ArrayLoad(v, input, ir.Var(i))
		f := b.Temp(ir.KindInt)
		b.ArrayLoad(f, freq, ir.Var(v))
		b.Binop(ir.OpAdd, f, ir.Var(f), ir.ConstInt(1))
		b.ArrayStore(freq, ir.Var(v), ir.Var(f))
	})

	// Greedy pairing: repeatedly merge the two lightest alive symbols,
	// deepening every symbol folded into the merge (code length proxy).
	b.NewArray(depth, ir.ConstInt(hufSyms))
	b.NewArray(alive, ir.ConstInt(hufSyms))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(hufSyms), func() {
		b.ArrayStore(alive, ir.Var(i), ir.ConstInt(1))
	})
	work := b.Local("work", ir.KindRef)
	b.NewArray(work, ir.ConstInt(hufSyms))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(hufSyms), func() {
		f := b.Temp(ir.KindInt)
		b.ArrayLoad(f, freq, ir.Var(i))
		b.Binop(ir.OpAdd, f, ir.Var(f), ir.ConstInt(1)) // no zero weights
		b.ArrayStore(work, ir.Var(i), ir.Var(f))
	})
	m := b.Local("m", ir.KindInt)
	forLoop(b, m, ir.ConstInt(0), ir.ConstInt(hufSyms-1), func() {
		best1 := b.Local("best1", ir.KindInt)
		best2 := b.Local("best2", ir.KindInt)
		b.Move(best1, ir.ConstInt(-1))
		b.Move(best2, ir.ConstInt(-1))
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(hufSyms), func() {
			av := b.Temp(ir.KindInt)
			b.ArrayLoad(av, alive, ir.Var(j))
			ifThen(b, ir.CondNE, ir.Var(av), ir.ConstInt(0), func() {
				wj := b.Temp(ir.KindInt)
				b.ArrayLoad(wj, work, ir.Var(j))
				pick2 := func() {
					w2 := b.Temp(ir.KindInt)
					b.Move(w2, ir.ConstInt(1<<30))
					ifThen(b, ir.CondGE, ir.Var(best2), ir.ConstInt(0), func() {
						b.ArrayLoad(w2, work, ir.Var(best2))
					})
					ifThen(b, ir.CondLT, ir.Var(wj), ir.Var(w2), func() {
						b.Move(best2, ir.Var(j))
					})
				}
				w1 := b.Temp(ir.KindInt)
				b.Move(w1, ir.ConstInt(1<<30))
				ifThen(b, ir.CondGE, ir.Var(best1), ir.ConstInt(0), func() {
					b.ArrayLoad(w1, work, ir.Var(best1))
				})
				ifThenElse(b, ir.CondLT, ir.Var(wj), ir.Var(w1),
					func() {
						b.Move(best2, ir.Var(best1))
						b.Move(best1, ir.Var(j))
					},
					pick2)
			})
		})
		// Merge best2 into best1: weights add, both groups deepen by one.
		w1 := b.Temp(ir.KindInt)
		w2 := b.Temp(ir.KindInt)
		b.ArrayLoad(w1, work, ir.Var(best1))
		b.ArrayLoad(w2, work, ir.Var(best2))
		b.Binop(ir.OpAdd, w1, ir.Var(w1), ir.Var(w2))
		b.ArrayStore(work, ir.Var(best1), ir.Var(w1))
		b.ArrayStore(alive, ir.Var(best2), ir.ConstInt(0))
		d1 := b.Temp(ir.KindInt)
		b.ArrayLoad(d1, depth, ir.Var(best1))
		b.Binop(ir.OpAdd, d1, ir.Var(d1), ir.ConstInt(1))
		b.ArrayStore(depth, ir.Var(best1), ir.Var(d1))
		d2 := b.Temp(ir.KindInt)
		b.ArrayLoad(d2, depth, ir.Var(best2))
		b.Binop(ir.OpAdd, d2, ir.Var(d2), ir.ConstInt(1))
		b.ArrayStore(depth, ir.Var(best2), ir.Var(d2))
	})

	// Encode: total output bits = sum over input of depth[sym].
	bits := b.Local("bits", ir.KindInt)
	b.Move(bits, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		v := b.Temp(ir.KindInt)
		b.ArrayLoad(v, input, ir.Var(i))
		d := b.Temp(ir.KindInt)
		b.ArrayLoad(d, depth, ir.Var(v))
		b.Binop(ir.OpAdd, bits, ir.Var(bits), ir.Var(d))
	})
	b.Move(s, ir.ConstInt(0))
	mix(b, s, ir.Var(bits))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(hufSyms), func() {
		d := b.Temp(ir.KindInt)
		b.ArrayLoad(d, depth, ir.Var(i))
		mix(b, s, ir.Var(d))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refHuffman(n int64) int64 {
	input := make([]int64, n)
	r := int64(4242)
	for i := range input {
		r = lcgNextGo(r)
		v := r % (hufSyms * 2)
		if v >= hufSyms {
			v &= 7
		}
		input[i] = v
	}
	freq := make([]int64, hufSyms)
	for _, v := range input {
		freq[v]++
	}
	depth := make([]int64, hufSyms)
	alive := make([]bool, hufSyms)
	work := make([]int64, hufSyms)
	for i := range alive {
		alive[i] = true
		work[i] = freq[i] + 1
	}
	for m := 0; m < hufSyms-1; m++ {
		best1, best2 := int64(-1), int64(-1)
		for j := int64(0); j < hufSyms; j++ {
			if !alive[j] {
				continue
			}
			w1 := int64(1 << 30)
			if best1 >= 0 {
				w1 = work[best1]
			}
			if work[j] < w1 {
				best2 = best1
				best1 = j
			} else {
				w2 := int64(1 << 30)
				if best2 >= 0 {
					w2 = work[best2]
				}
				if work[j] < w2 {
					best2 = j
				}
			}
		}
		work[best1] += work[best2]
		alive[best2] = false
		depth[best1]++
		depth[best2]++
	}
	bits := int64(0)
	for _, v := range input {
		bits += depth[v]
	}
	s := mixGo(0, bits)
	for i := 0; i < hufSyms; i++ {
		s = mixGo(s, depth[i])
	}
	return s
}
