package workloads

import "trapnull/internal/ir"

// NumericSort mirrors jBYTEmark's Numeric Sort: heap sort over an integer
// array. Dense array traffic; every element access carries the full
// nullcheck/arraylength/boundcheck sequence until the optimizers work.
func NumericSort() *Workload {
	return &Workload{
		Name:  "NumericSort",
		Suite: "jBYTEmark",
		N:     2000,
		TestN: 64,
		Build: buildNumericSort,
		Ref:   refNumericSort,
	}
}

func buildNumericSort() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("NumericSort")

	// sift(arr, start, end): sift-down for heap sort.
	sb := ir.NewFunc("sift", false)
	arr := sb.Param("arr", ir.KindRef)
	start := sb.Param("start", ir.KindInt)
	end := sb.Param("end", ir.KindInt)
	sb.Result(ir.KindInt)
	sb.Block("entry")
	root := sb.Local("root", ir.KindInt)
	child := sb.Local("child", ir.KindInt)
	sb.Move(root, ir.Var(start))

	loop := sb.DeclareBlock("loop")
	done := sb.DeclareBlock("done")
	cont1 := sb.DeclareBlock("haveChild")
	sb.Jump(loop)

	sb.SetBlock(loop)
	sb.Binop(ir.OpMul, child, ir.Var(root), ir.ConstInt(2))
	sb.Binop(ir.OpAdd, child, ir.Var(child), ir.ConstInt(1))
	sb.If(ir.CondGE, ir.Var(child), ir.Var(end), done, cont1)

	sb.SetBlock(cont1)
	// if child+1 < end && arr[child] < arr[child+1]: child++
	c1 := sb.Temp(ir.KindInt)
	sb.Binop(ir.OpAdd, c1, ir.Var(child), ir.ConstInt(1))
	ifThen(sb, ir.CondLT, ir.Var(c1), ir.Var(end), func() {
		va := sb.Temp(ir.KindInt)
		vb := sb.Temp(ir.KindInt)
		sb.ArrayLoad(va, arr, ir.Var(child))
		sb.ArrayLoad(vb, arr, ir.Var(c1))
		ifThen(sb, ir.CondLT, ir.Var(va), ir.Var(vb), func() {
			sb.Move(child, ir.Var(c1))
		})
	})
	// if arr[root] < arr[child]: swap, root = child, continue; else done.
	vr := sb.Temp(ir.KindInt)
	vc := sb.Temp(ir.KindInt)
	sb.ArrayLoad(vr, arr, ir.Var(root))
	sb.ArrayLoad(vc, arr, ir.Var(child))
	swapBlk := sb.DeclareBlock("swap")
	sb.If(ir.CondLT, ir.Var(vr), ir.Var(vc), swapBlk, done)
	sb.SetBlock(swapBlk)
	sb.ArrayStore(arr, ir.Var(root), ir.Var(vc))
	sb.ArrayStore(arr, ir.Var(child), ir.Var(vr))
	sb.Move(root, ir.Var(child))
	sb.Jump(loop)

	sb.SetBlock(done)
	sb.Return(ir.ConstInt(0))
	sift := p.AddMethod(nil, "sift", sb.Finish(), false)

	b, n := entry("NumericSort")
	a := b.Local("a", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	b.NewArray(a, ir.Var(n))
	b.Move(r, ir.ConstInt(12345))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		b.ArrayStore(a, ir.Var(i), ir.Var(r))
	})
	// Heapify.
	half := b.Temp(ir.KindInt)
	b.Binop(ir.OpDiv, half, ir.Var(n), ir.ConstInt(2))
	k := b.Local("k", ir.KindInt)
	forLoop(b, k, ir.ConstInt(0), ir.Var(half), func() {
		st := b.Temp(ir.KindInt)
		b.Binop(ir.OpSub, st, ir.Var(half), ir.Var(k))
		b.Binop(ir.OpSub, st, ir.Var(st), ir.ConstInt(1))
		b.CallStatic(ir.NoVar, sift, ir.Var(a), ir.Var(st), ir.Var(n))
	})
	// Sort down.
	e := b.Local("e", ir.KindInt)
	nm1 := b.Temp(ir.KindInt)
	b.Binop(ir.OpSub, nm1, ir.Var(n), ir.ConstInt(1))
	forLoop(b, k, ir.ConstInt(0), ir.Var(nm1), func() {
		b.Binop(ir.OpSub, e, ir.Var(nm1), ir.Var(k))
		v0 := b.Temp(ir.KindInt)
		ve := b.Temp(ir.KindInt)
		b.ArrayLoad(v0, a, ir.ConstInt(0))
		b.ArrayLoad(ve, a, ir.Var(e))
		b.ArrayStore(a, ir.ConstInt(0), ir.Var(ve))
		b.ArrayStore(a, ir.Var(e), ir.Var(v0))
		b.CallStatic(ir.NoVar, sift, ir.Var(a), ir.ConstInt(0), ir.Var(e))
	})
	// Checksum.
	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		v := b.Temp(ir.KindInt)
		b.ArrayLoad(v, a, ir.Var(i))
		mix(b, s, ir.Var(v))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refNumericSort(n int64) int64 {
	a := make([]int64, n)
	r := int64(12345)
	for i := range a {
		r = lcgNextGo(r)
		a[i] = r
	}
	sift := func(start, end int64) {
		root := start
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && a[child] < a[child+1] {
				child++
			}
			if a[root] < a[child] {
				a[root], a[child] = a[child], a[root]
				root = child
				continue
			}
			return
		}
	}
	half := n / 2
	for k := int64(0); k < half; k++ {
		sift(half-k-1, n)
	}
	for e := n - 1; e >= 1; e-- {
		a[0], a[e] = a[e], a[0]
		sift(0, e)
	}
	s := int64(0)
	for i := int64(0); i < n; i++ {
		s = mixGo(s, a[i])
	}
	return s
}

// StringSort mirrors jBYTEmark's String Sort: selection sort of variable
// length byte strings (arrays of arrays) with a lexicographic comparison
// helper — two-level array walks throughout.
func StringSort() *Workload {
	return &Workload{
		Name:  "StringSort",
		Suite: "jBYTEmark",
		N:     160,
		TestN: 24,
		Build: buildStringSort,
		Ref:   refStringSort,
	}
}

func buildStringSort() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("StringSort")

	// cmp(a, b): lexicographic comparison of two int arrays.
	cb := ir.NewFunc("cmp", false)
	aa := cb.Param("a", ir.KindRef)
	bb := cb.Param("b", ir.KindRef)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	la := cb.Temp(ir.KindInt)
	lb := cb.Temp(ir.KindInt)
	cb.ArrayLength(la, aa)
	cb.ArrayLength(lb, bb)
	minl := cb.Local("minl", ir.KindInt)
	cb.Move(minl, ir.Var(la))
	ifThen(cb, ir.CondLT, ir.Var(lb), ir.Var(la), func() {
		cb.Move(minl, ir.Var(lb))
	})
	j := cb.Local("j", ir.KindInt)
	diffExit := cb.DeclareBlock("diff")
	diff := cb.Local("diff", ir.KindInt)
	forLoop(cb, j, ir.ConstInt(0), ir.Var(minl), func() {
		va := cb.Temp(ir.KindInt)
		vb := cb.Temp(ir.KindInt)
		cb.ArrayLoad(va, aa, ir.Var(j))
		cb.ArrayLoad(vb, bb, ir.Var(j))
		cont := cb.DeclareBlock("eq")
		ne := cb.DeclareBlock("ne")
		cb.If(ir.CondNE, ir.Var(va), ir.Var(vb), ne, cont)
		cb.SetBlock(ne)
		cb.Binop(ir.OpSub, diff, ir.Var(va), ir.Var(vb))
		cb.Jump(diffExit)
		cb.SetBlock(cont)
	})
	cb.Binop(ir.OpSub, diff, ir.Var(la), ir.Var(lb))
	cb.Jump(diffExit)
	cb.SetBlock(diffExit)
	cb.Return(ir.Var(diff))
	cmp := p.AddMethod(nil, "cmp", cb.Finish(), false)

	b, n := entry("StringSort")
	arr := b.Local("arr", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	j = b.Local("j", ir.KindInt) // reuse the Go variable; new local in main
	s := b.Local("s", ir.KindInt)
	b.NewArray(arr, ir.Var(n))
	b.Move(r, ir.ConstInt(987))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		ln := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, ln, ir.Var(i), ir.ConstInt(13))
		b.Binop(ir.OpAdd, ln, ir.Var(ln), ir.ConstInt(4))
		str := b.Temp(ir.KindRef)
		b.NewArray(str, ir.Var(ln))
		forLoop(b, j, ir.ConstInt(0), ir.Var(ln), func() {
			lcgNext(b, r)
			ch := b.Temp(ir.KindInt)
			b.Binop(ir.OpRem, ch, ir.Var(r), ir.ConstInt(26))
			b.ArrayStore(str, ir.Var(j), ir.Var(ch))
		})
		b.ArrayStore(arr, ir.Var(i), ir.Var(str))
	})
	// Selection sort using cmp.
	nm1 := b.Temp(ir.KindInt)
	b.Binop(ir.OpSub, nm1, ir.Var(n), ir.ConstInt(1))
	forLoop(b, i, ir.ConstInt(0), ir.Var(nm1), func() {
		best := b.Local("best", ir.KindInt)
		b.Move(best, ir.Var(i))
		js := b.Temp(ir.KindInt)
		b.Binop(ir.OpAdd, js, ir.Var(i), ir.ConstInt(1))
		forLoop(b, j, ir.Var(js), ir.Var(n), func() {
			sa := b.Temp(ir.KindRef)
			sbst := b.Temp(ir.KindRef)
			b.ArrayLoad(sa, arr, ir.Var(j))
			b.ArrayLoad(sbst, arr, ir.Var(best))
			c := b.Temp(ir.KindInt)
			b.CallStatic(c, cmp, ir.Var(sa), ir.Var(sbst))
			ifThen(b, ir.CondLT, ir.Var(c), ir.ConstInt(0), func() {
				b.Move(best, ir.Var(j))
			})
		})
		vi := b.Temp(ir.KindRef)
		vb := b.Temp(ir.KindRef)
		b.ArrayLoad(vi, arr, ir.Var(i))
		b.ArrayLoad(vb, arr, ir.Var(best))
		b.ArrayStore(arr, ir.Var(i), ir.Var(vb))
		b.ArrayStore(arr, ir.Var(best), ir.Var(vi))
	})
	// Checksum: fold first element and length of each string.
	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		str := b.Temp(ir.KindRef)
		b.ArrayLoad(str, arr, ir.Var(i))
		ln := b.Temp(ir.KindInt)
		b.ArrayLength(ln, str)
		c0 := b.Temp(ir.KindInt)
		b.ArrayLoad(c0, str, ir.ConstInt(0))
		mix(b, s, ir.Var(c0))
		mix(b, s, ir.Var(ln))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refStringSort(n int64) int64 {
	arr := make([][]int64, n)
	r := int64(987)
	for i := int64(0); i < n; i++ {
		ln := i%13 + 4
		str := make([]int64, ln)
		for j := range str {
			r = lcgNextGo(r)
			str[j] = r % 26
		}
		arr[i] = str
	}
	cmp := func(a, b []int64) int64 {
		minl := int64(len(a))
		if int64(len(b)) < minl {
			minl = int64(len(b))
		}
		for j := int64(0); j < minl; j++ {
			if a[j] != b[j] {
				return a[j] - b[j]
			}
		}
		return int64(len(a)) - int64(len(b))
	}
	for i := int64(0); i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if cmp(arr[j], arr[best]) < 0 {
				best = j
			}
		}
		arr[i], arr[best] = arr[best], arr[i]
	}
	s := int64(0)
	for i := int64(0); i < n; i++ {
		s = mixGo(s, arr[i][0])
		s = mixGo(s, int64(len(arr[i])))
	}
	return s
}
