package workloads

import (
	"fmt"

	"trapnull/internal/faultinject"
	"trapnull/internal/ir"
)

// The null-heavy workload family behind the trap-storm governor experiments
// (internal/machine/governor.go, bench.RunDegradation). Every stormy
// dereference is a small-offset PutField — a write — so it is an implicit
// trap candidate on BOTH architecture models (ppc-aix traps writes only),
// and every kernel also carries a clean write site whose reference comes out
// of an array each iteration: never null at runtime, but not provably
// non-null at compile time, so it stays an implicit check that the governor
// should leave alone. The interesting comparisons are
//
//	all-implicit : the stormy site pays a ~5000-cycle trap per null
//	all-explicit : every site pays the 1–2 cycle check, nulls throw in software
//	governed     : starts all-implicit, demotes only the stormy site
//
// and the degradation table (benchtab -degradation) renders them per model.

// TrapStorm is the canonical governor workload: one stormy write site at a
// ~10% null rate — two orders of magnitude past the demotion threshold — and
// one clean implicit write site. An ungoverned implicit configuration pays
// ~500 cycles of trap dispatch per iteration; explicit checks pay ~2; the
// governor converges to explicit on the stormy site only, keeping the clean
// site free. The parameter is the iteration count.
func TrapStorm() *Workload {
	return &Workload{
		Name:  "TrapStorm",
		Suite: "extension",
		N:     4000,
		TestN: 800,
		Build: buildTrapStorm,
		Ref:   refTrapStorm,
	}
}

// stormCell is the shared object shape: both fields sit inside the 4 KB trap
// area, so checks guarding writes to them are implicit candidates everywhere.
func stormCell(p *ir.Program) *ir.Class {
	return p.NewClass("Cell",
		&ir.Field{Name: "f", Kind: ir.KindInt},
		&ir.Field{Name: "g", Kind: ir.KindInt},
	)
}

// stormEntry emits the common preamble: a Cell in a one-element holder array
// (the clean site's reference is reloaded from it every iteration, defeating
// static non-null proofs) plus a direct Cell for the stormy reference to
// alias.
func stormEntry(b *ir.Builder, cls *ir.Class) (holder, obj ir.VarID) {
	holder = b.Local("holder", ir.KindRef)
	obj = b.Local("obj", ir.KindRef)
	b.NewArray(holder, ir.ConstInt(1))
	b.New(obj, cls)
	b.ArrayStore(holder, ir.ConstInt(0), ir.Var(obj))
	return holder, obj
}

func buildTrapStorm() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("TrapStorm")
	cls := stormCell(p)

	b, n := entry("TrapStorm")
	holder, obj := stormEntry(b, cls)
	wr := b.Local("wr", ir.KindRef)
	ref := b.Local("ref", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	exc := b.Local("exc", ir.KindRef)
	b.Move(r, ir.ConstInt(99))
	b.Move(s, ir.ConstInt(0))

	f := b.F
	body := b.DeclareBlock("body")
	tryBlk := b.DeclareBlock("store")
	handler := b.DeclareBlock("handler")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	region := f.NewRegion(handler, exc)
	tryBlk.Try = region.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	// Clean implicit site: wr comes out of the holder fresh each iteration,
	// is never null, and the governor must leave its check implicit.
	b.ArrayLoad(wr, holder, ir.ConstInt(0))
	b.PutField(wr, cls.FieldByName("g"), ir.Var(i))
	// Stormy site setup: ~10% of iterations pick null.
	lcgNext(b, r)
	t := b.Temp(ir.KindInt)
	b.Binop(ir.OpRem, t, ir.Var(r), ir.ConstInt(1000))
	pickNull := b.DeclareBlock("pick_null")
	pickObj := b.DeclareBlock("pick_obj")
	b.If(ir.CondLT, ir.Var(t), ir.ConstInt(100), pickNull, pickObj)
	b.SetBlock(pickNull)
	b.Move(ref, ir.Null())
	b.Jump(tryBlk)
	b.SetBlock(pickObj)
	b.Move(ref, ir.Var(obj))
	b.Jump(tryBlk)

	b.SetBlock(tryBlk)
	b.PutField(ref, cls.FieldByName("f"), ir.Var(i))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(2))
	b.Jump(after)

	b.SetBlock(handler)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(exit)
	// Fold the last successful write into the checksum so lost stores show.
	v := b.Temp(ir.KindInt)
	b.GetField(v, obj, cls.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refTrapStorm(n int64) int64 {
	r, s, last := int64(99), int64(0), int64(0)
	for i := int64(0); i < n; i++ {
		r = lcgNextGo(r)
		if r%1000 < 100 {
			s++
		} else {
			s += 2
			last = i
		}
	}
	return s + last
}

// FlappingNull is the governor's thrash adversary: two stormy write sites
// whose null phases alternate in 256-iteration windows — site A storms in
// even windows, site B in odd ones — so a naive reactive policy flips back
// and forth forever. The monotone demote set plus exponential backoff must
// converge anyway, with the exact ungoverned Outcome. The parameter is the
// iteration count.
func FlappingNull() *Workload {
	return &Workload{
		Name:  "FlappingNull",
		Suite: "extension",
		N:     4000,
		TestN: 800,
		Build: buildFlappingNull,
		Ref:   refFlappingNull,
	}
}

const flapWindow = 256

func buildFlappingNull() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("FlappingNull")
	cls := stormCell(p)

	b, n := entry("FlappingNull")
	holder, obj := stormEntry(b, cls)
	wr := b.Local("wr", ir.KindRef)
	refA := b.Local("refA", ir.KindRef)
	refB := b.Local("refB", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	ph := b.Local("ph", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	exc1 := b.Local("exc1", ir.KindRef)
	exc2 := b.Local("exc2", ir.KindRef)
	b.Move(r, ir.ConstInt(7))
	b.Move(s, ir.ConstInt(0))

	f := b.F
	body := b.DeclareBlock("body")
	try1 := b.DeclareBlock("store_a")
	h1 := b.DeclareBlock("handler_a")
	try2 := b.DeclareBlock("store_b")
	h2 := b.DeclareBlock("handler_b")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	r1 := f.NewRegion(h1, exc1)
	try1.Try = r1.ID
	r2 := f.NewRegion(h2, exc2)
	try2.Try = r2.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	b.ArrayLoad(wr, holder, ir.ConstInt(0))
	b.PutField(wr, cls.FieldByName("g"), ir.Var(i))
	lcgNext(b, r)
	t := b.Temp(ir.KindInt)
	b.Binop(ir.OpRem, t, ir.Var(r), ir.ConstInt(1000))
	// ph = (i / flapWindow) % 2 selects which site storms this window.
	b.Binop(ir.OpDiv, ph, ir.Var(i), ir.ConstInt(flapWindow))
	b.Binop(ir.OpRem, ph, ir.Var(ph), ir.ConstInt(2))
	b.Move(refA, ir.Var(obj))
	b.Move(refB, ir.Var(obj))
	ifThen(b, ir.CondLT, ir.Var(t), ir.ConstInt(200), func() {
		ifThenElse(b, ir.CondEQ, ir.Var(ph), ir.ConstInt(0),
			func() { b.Move(refA, ir.Null()) },
			func() { b.Move(refB, ir.Null()) })
	})
	b.Jump(try1)

	b.SetBlock(try1)
	b.PutField(refA, cls.FieldByName("f"), ir.Var(i))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(2))
	b.Jump(try2)
	b.SetBlock(h1)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(try2)

	b.SetBlock(try2)
	b.PutField(refB, cls.FieldByName("f"), ir.Var(i))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(5))
	b.Jump(after)
	b.SetBlock(h2)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(3))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refFlappingNull(n int64) int64 {
	r, s := int64(7), int64(0)
	for i := int64(0); i < n; i++ {
		r = lcgNextGo(r)
		aNull, bNull := false, false
		if r%1000 < 200 {
			if (i/flapWindow)%2 == 0 {
				aNull = true
			} else {
				bNull = true
			}
		}
		if aNull {
			s++
		} else {
			s += 2
		}
		if bNull {
			s += 3
		} else {
			s += 5
		}
	}
	return s
}

// PhaseShiftNull is the profile-betrayal storm: the stormy site is perfectly
// clean for the first 3n/5 iterations — long enough for any warmup heuristic
// to trust it — then jumps to a ~15% null rate. The governor's demotion must
// trigger mid-run, strictly after the profile turns. The parameter is the
// iteration count.
func PhaseShiftNull() *Workload {
	return &Workload{
		Name:  "PhaseShiftNull",
		Suite: "extension",
		N:     5000,
		TestN: 1000,
		Build: buildPhaseShiftNull,
		Ref:   refPhaseShiftNull,
	}
}

func buildPhaseShiftNull() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("PhaseShiftNull")
	cls := stormCell(p)

	b, n := entry("PhaseShiftNull")
	holder, obj := stormEntry(b, cls)
	wr := b.Local("wr", ir.KindRef)
	ref := b.Local("ref", ir.KindRef)
	r := b.Local("r", ir.KindInt)
	shift := b.Local("shift", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	exc := b.Local("exc", ir.KindRef)
	b.Move(r, ir.ConstInt(1234))
	b.Move(s, ir.ConstInt(0))
	b.Binop(ir.OpMul, shift, ir.Var(n), ir.ConstInt(3))
	b.Binop(ir.OpDiv, shift, ir.Var(shift), ir.ConstInt(5))

	f := b.F
	body := b.DeclareBlock("body")
	tryBlk := b.DeclareBlock("store")
	handler := b.DeclareBlock("handler")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	region := f.NewRegion(handler, exc)
	tryBlk.Try = region.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	b.ArrayLoad(wr, holder, ir.ConstInt(0))
	b.PutField(wr, cls.FieldByName("g"), ir.Var(i))
	lcgNext(b, r)
	b.Move(ref, ir.Var(obj))
	ifThen(b, ir.CondGE, ir.Var(i), ir.Var(shift), func() {
		t := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, t, ir.Var(r), ir.ConstInt(1000))
		ifThen(b, ir.CondLT, ir.Var(t), ir.ConstInt(150), func() {
			b.Move(ref, ir.Null())
		})
	})
	b.Jump(tryBlk)

	b.SetBlock(tryBlk)
	b.PutField(ref, cls.FieldByName("f"), ir.Var(i))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(2))
	b.Jump(after)

	b.SetBlock(handler)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refPhaseShiftNull(n int64) int64 {
	r, s := int64(1234), int64(0)
	shift := n * 3 / 5
	for i := int64(0); i < n; i++ {
		r = lcgNextGo(r)
		if i >= shift && r%1000 < 150 {
			s++
		} else {
			s += 2
		}
	}
	return s
}

// seededBurstMod is the phase modulus of the seeded burst kernel: null
// windows repeat every seededBurstMod iterations, so the reference function
// is exact at every problem size.
const seededBurstMod = 1024

// SeededBurst derives an adversarial null-burst storm from the
// fault-injection seed: faultinject.BurstWindows picks disjoint windows over
// the phase modulus and the kernel bakes them in as constants, so a chaos
// run's "adversarial input" is as replayable as its injected faults. The
// parameter is the iteration count.
func SeededBurst(seed int64) *Workload {
	name := fmt.Sprintf("SeededBurst[%d]", seed)
	wins := faultinject.New(seed).BurstWindows(name, seededBurstMod, 3)
	return &Workload{
		Name:  name,
		Suite: "extension",
		N:     4000,
		TestN: 800,
		Build: func() (*ir.Program, *ir.Method) { return buildSeededBurst(name, wins) },
		Ref:   func(n int64) int64 { return refSeededBurst(wins, n) },
	}
}

func buildSeededBurst(name string, wins [][2]int64) (*ir.Program, *ir.Method) {
	p := ir.NewProgram("SeededBurst")
	cls := stormCell(p)

	b, n := entry(name)
	holder, obj := stormEntry(b, cls)
	wr := b.Local("wr", ir.KindRef)
	ref := b.Local("ref", ir.KindRef)
	ph := b.Local("ph", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	exc := b.Local("exc", ir.KindRef)
	b.Move(s, ir.ConstInt(0))

	f := b.F
	body := b.DeclareBlock("body")
	tryBlk := b.DeclareBlock("store")
	handler := b.DeclareBlock("handler")
	after := b.DeclareBlock("after")
	exit := b.DeclareBlock("exit")
	region := f.NewRegion(handler, exc)
	tryBlk.Try = region.ID

	b.Move(i, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	b.ArrayLoad(wr, holder, ir.ConstInt(0))
	b.PutField(wr, cls.FieldByName("g"), ir.Var(i))
	b.Binop(ir.OpRem, ph, ir.Var(i), ir.ConstInt(seededBurstMod))
	b.Move(ref, ir.Var(obj))
	for _, w := range wins {
		lo, hi := w[0], w[0]+w[1]
		ifThen(b, ir.CondGE, ir.Var(ph), ir.ConstInt(lo), func() {
			ifThen(b, ir.CondLT, ir.Var(ph), ir.ConstInt(hi), func() {
				b.Move(ref, ir.Null())
			})
		})
	}
	b.Jump(tryBlk)

	b.SetBlock(tryBlk)
	b.PutField(ref, cls.FieldByName("f"), ir.Var(i))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(2))
	b.Jump(after)

	b.SetBlock(handler)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.ConstInt(1))
	b.Jump(after)

	b.SetBlock(after)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refSeededBurst(wins [][2]int64, n int64) int64 {
	s := int64(0)
	for i := int64(0); i < n; i++ {
		ph := i % seededBurstMod
		null := false
		for _, w := range wins {
			if ph >= w[0] && ph < w[0]+w[1] {
				null = true
			}
		}
		if null {
			s++
		} else {
			s += 2
		}
	}
	return s
}
