package workloads

import (
	"math"

	"trapnull/internal/ir"
)

// Fourier mirrors jBYTEmark's Fourier kernel: numerical integration of
// series coefficients, dominated by transcendental math. The paper's Table 1
// shows essentially no improvement from any null check configuration here
// (22.68 → 22.75) — the math dwarfs the checks — and this kernel preserves
// that property.
func Fourier() *Workload {
	return &Workload{
		Name:  "Fourier",
		Suite: "jBYTEmark",
		N:     120,
		TestN: 8,
		Build: buildFourier,
		Ref:   refFourier,
	}
}

func buildFourier() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Fourier")
	cosM := mathCosMethod(p)
	sinM := mathSinMethod(p)

	b, n := entry("Fourier")
	k := b.Local("k", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	acoef := b.Local("acoef", ir.KindRef)
	bcoef := b.Local("bcoef", ir.KindRef)
	b.Move(s, ir.ConstInt(0))
	// Coefficient arrays, as the original kernel fills (their checks exist
	// but are noise next to the transcendental math — Table 1's flat row).
	b.NewArray(acoef, ir.Var(n))
	b.NewArray(bcoef, ir.Var(n))

	forLoop(b, k, ir.ConstInt(0), ir.Var(n), func() {
		a := b.Local("a", ir.KindFloat)
		bsum := b.Local("bsum", ir.KindFloat)
		b.Move(a, ir.ConstFloat(0))
		b.Move(bsum, ir.ConstFloat(0))
		kf := b.Temp(ir.KindFloat)
		b.Unop(ir.OpIntToFloat, kf, ir.Var(k))
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(20), func() {
			x := b.Temp(ir.KindFloat)
			b.Unop(ir.OpIntToFloat, x, ir.Var(j))
			b.Binop(ir.OpFMul, x, ir.Var(x), ir.ConstFloat(0.05))
			kx := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFMul, kx, ir.Var(x), ir.Var(kf))
			c := b.Temp(ir.KindFloat)
			b.CallStatic(c, cosM, ir.Var(kx))
			b.Binop(ir.OpFAdd, a, ir.Var(a), ir.Var(c))
			sn := b.Temp(ir.KindFloat)
			b.CallStatic(sn, sinM, ir.Var(kx))
			b.Binop(ir.OpFAdd, bsum, ir.Var(bsum), ir.Var(sn))
		})
		b.ArrayStore(acoef, ir.Var(k), ir.Var(a))
		b.ArrayStore(bcoef, ir.Var(k), ir.Var(bsum))
	})
	forLoop(b, k, ir.ConstInt(0), ir.Var(n), func() {
		av := b.Temp(ir.KindFloat)
		b.ArrayLoad(av, acoef, ir.Var(k))
		sa := b.Temp(ir.KindInt)
		scaleF(b, sa, ir.Var(av))
		mix(b, s, ir.Var(sa))
		bv := b.Temp(ir.KindFloat)
		b.ArrayLoad(bv, bcoef, ir.Var(k))
		sb2 := b.Temp(ir.KindInt)
		scaleF(b, sb2, ir.Var(bv))
		mix(b, s, ir.Var(sb2))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refFourier(n int64) int64 {
	acoef := make([]float64, n)
	bcoef := make([]float64, n)
	for k := int64(0); k < n; k++ {
		a, bsum := 0.0, 0.0
		kf := float64(k)
		for j := int64(0); j < 20; j++ {
			x := float64(j) * 0.05
			kx := x * kf
			a += math.Cos(kx)
			bsum += math.Sin(kx)
		}
		acoef[k] = a
		bcoef[k] = bsum
	}
	s := int64(0)
	for k := int64(0); k < n; k++ {
		s = mixGo(s, scaleFGo(acoef[k]))
		s = mixGo(s, scaleFGo(bcoef[k]))
	}
	return s
}

// NeuralNet mirrors jBYTEmark's Neural Net kernel: forward passes through a
// small network with two-dimensional weight matrices and a sigmoid built on
// Math.exp. The paper highlights two effects here: phase 1's iterated
// optimization of the weight-matrix walks (Table 1: 116.81 → 200.50), and
// the PowerPC handicap where Math.exp stays a call and blocks scalar
// replacement (§5.4).
func NeuralNet() *Workload {
	return &Workload{
		Name:  "NeuralNet",
		Suite: "jBYTEmark",
		N:     900,
		TestN: 24,
		Build: buildNeuralNet,
		Ref:   refNeuralNet,
	}
}

const nnSize = 8

func buildNeuralNet() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("NeuralNet")
	expM := mathExpMethod(p)

	b, n := entry("NeuralNet")
	w := b.Local("w", ir.KindRef)   // [nn][nn] weights, array of rows
	in := b.Local("in", ir.KindRef) // input activations
	hid := b.Local("hid", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	t := b.Local("t", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// Build weights: w[i][j] = ((i*7 + j*3) % 10) * 0.1 - 0.4.
	b.NewArray(w, ir.ConstInt(nnSize))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(nnSize), func() {
		row := b.Temp(ir.KindRef)
		b.NewArray(row, ir.ConstInt(nnSize))
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(nnSize), func() {
			v := b.Temp(ir.KindInt)
			b.Binop(ir.OpMul, v, ir.Var(i), ir.ConstInt(7))
			v3 := b.Temp(ir.KindInt)
			b.Binop(ir.OpMul, v3, ir.Var(j), ir.ConstInt(3))
			b.Binop(ir.OpAdd, v, ir.Var(v), ir.Var(v3))
			b.Binop(ir.OpRem, v, ir.Var(v), ir.ConstInt(10))
			vf := b.Temp(ir.KindFloat)
			b.Unop(ir.OpIntToFloat, vf, ir.Var(v))
			b.Binop(ir.OpFMul, vf, ir.Var(vf), ir.ConstFloat(0.1))
			b.Binop(ir.OpFSub, vf, ir.Var(vf), ir.ConstFloat(0.4))
			b.ArrayStore(row, ir.Var(j), ir.Var(vf))
		})
		b.ArrayStore(w, ir.Var(i), ir.Var(row))
	})
	b.NewArray(in, ir.ConstInt(nnSize))
	b.NewArray(hid, ir.ConstInt(nnSize))

	b.Move(s, ir.ConstInt(0))
	forLoop(b, t, ir.ConstInt(0), ir.Var(n), func() {
		// Refresh inputs: in[j] = 0.1 * ((t + j) % 7).
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(nnSize), func() {
			v := b.Temp(ir.KindInt)
			b.Binop(ir.OpAdd, v, ir.Var(t), ir.Var(j))
			b.Binop(ir.OpRem, v, ir.Var(v), ir.ConstInt(7))
			vf := b.Temp(ir.KindFloat)
			b.Unop(ir.OpIntToFloat, vf, ir.Var(v))
			b.Binop(ir.OpFMul, vf, ir.Var(vf), ir.ConstFloat(0.1))
			b.ArrayStore(in, ir.Var(j), ir.Var(vf))
		})
		// Forward pass: hid[i] = sigmoid(sum_j w[i][j] * in[j]).
		forLoop(b, i, ir.ConstInt(0), ir.ConstInt(nnSize), func() {
			sum := b.Local("sum", ir.KindFloat)
			b.Move(sum, ir.ConstFloat(0))
			row := b.Local("row", ir.KindRef)
			b.ArrayLoad(row, w, ir.Var(i))
			forLoop(b, j, ir.ConstInt(0), ir.ConstInt(nnSize), func() {
				wv := b.Temp(ir.KindFloat)
				b.ArrayLoad(wv, row, ir.Var(j))
				iv := b.Temp(ir.KindFloat)
				b.ArrayLoad(iv, in, ir.Var(j))
				pr := b.Temp(ir.KindFloat)
				b.Binop(ir.OpFMul, pr, ir.Var(wv), ir.Var(iv))
				b.Binop(ir.OpFAdd, sum, ir.Var(sum), ir.Var(pr))
			})
			// sigmoid(x) = 1 / (1 + exp(-x))
			neg := b.Temp(ir.KindFloat)
			b.Unop(ir.OpFNeg, neg, ir.Var(sum))
			ex := b.Temp(ir.KindFloat)
			b.CallStatic(ex, expM, ir.Var(neg))
			den := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFAdd, den, ir.ConstFloat(1), ir.Var(ex))
			sig := b.Temp(ir.KindFloat)
			b.Binop(ir.OpFDiv, sig, ir.ConstFloat(1), ir.Var(den))
			b.ArrayStore(hid, ir.Var(i), ir.Var(sig))
		})
		// Fold the first hidden activation into the checksum.
		h0 := b.Temp(ir.KindFloat)
		b.ArrayLoad(h0, hid, ir.ConstInt(0))
		sc := b.Temp(ir.KindInt)
		scaleF(b, sc, ir.Var(h0))
		mix(b, s, ir.Var(sc))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refNeuralNet(n int64) int64 {
	w := make([][]float64, nnSize)
	for i := range w {
		w[i] = make([]float64, nnSize)
		for j := range w[i] {
			w[i][j] = float64((i*7+j*3)%10)*0.1 - 0.4
		}
	}
	in := make([]float64, nnSize)
	hid := make([]float64, nnSize)
	s := int64(0)
	for t := int64(0); t < n; t++ {
		for j := int64(0); j < nnSize; j++ {
			in[j] = 0.1 * float64((t+j)%7)
		}
		for i := 0; i < nnSize; i++ {
			sum := 0.0
			row := w[i]
			for j := 0; j < nnSize; j++ {
				sum += row[j] * in[j]
			}
			hid[i] = 1 / (1 + math.Exp(-sum))
		}
		s = mixGo(s, scaleFGo(hid[0]))
	}
	return s
}
