package workloads

import "trapnull/internal/ir"

// Assignment mirrors jBYTEmark's Assignment kernel: repeated row and column
// reduction passes over a two-dimensional cost matrix. This is the paper's
// flagship phase 1 workload (Table 1: 107.87 → 207.41): the inner loops walk
// `m[i][j]`, and only the iterated null check / bounds check / scalar
// replacement combination can pull the row pointer loads out.
func Assignment() *Workload {
	return &Workload{
		Name:  "Assignment",
		Suite: "jBYTEmark",
		N:     60,
		TestN: 6,
		Build: buildAssignment,
		Ref:   refAssignment,
	}
}

const asgDim = 24

func buildAssignment() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Assignment")
	b, n := entry("Assignment")

	m := b.Local("m", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	t := b.Local("t", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// Build the cost matrix.
	b.NewArray(m, ir.ConstInt(asgDim))
	b.Move(r, ir.ConstInt(77))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(asgDim), func() {
		row := b.Temp(ir.KindRef)
		b.NewArray(row, ir.ConstInt(asgDim))
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(asgDim), func() {
			lcgNext(b, r)
			v := b.Temp(ir.KindInt)
			b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(1000))
			b.ArrayStore(row, ir.Var(j), ir.Var(v))
		})
		b.ArrayStore(m, ir.Var(i), ir.Var(row))
	})

	b.Move(s, ir.ConstInt(0))
	forLoop(b, t, ir.ConstInt(0), ir.Var(n), func() {
		// Row reduction: subtract each row's minimum.
		forLoop(b, i, ir.ConstInt(0), ir.ConstInt(asgDim), func() {
			row := b.Local("rrow", ir.KindRef)
			b.ArrayLoad(row, m, ir.Var(i))
			min := b.Local("rmin", ir.KindInt)
			b.ArrayLoad(min, row, ir.ConstInt(0))
			forLoop(b, j, ir.ConstInt(1), ir.ConstInt(asgDim), func() {
				v := b.Temp(ir.KindInt)
				b.ArrayLoad(v, row, ir.Var(j))
				ifThen(b, ir.CondLT, ir.Var(v), ir.Var(min), func() {
					b.Move(min, ir.Var(v))
				})
			})
			forLoop(b, j, ir.ConstInt(0), ir.ConstInt(asgDim), func() {
				v := b.Temp(ir.KindInt)
				b.ArrayLoad(v, row, ir.Var(j))
				b.Binop(ir.OpSub, v, ir.Var(v), ir.Var(min))
				b.ArrayStore(row, ir.Var(j), ir.Var(v))
			})
			mix(b, s, ir.Var(min))
		})
		// Column reduction: subtract each column's minimum; the inner loops
		// load m[i] fresh every iteration — the redundancy the optimizer
		// family removes.
		forLoop(b, j, ir.ConstInt(0), ir.ConstInt(asgDim), func() {
			min := b.Local("cmin", ir.KindInt)
			row0 := b.Temp(ir.KindRef)
			b.ArrayLoad(row0, m, ir.ConstInt(0))
			b.ArrayLoad(min, row0, ir.Var(j))
			forLoop(b, i, ir.ConstInt(1), ir.ConstInt(asgDim), func() {
				row := b.Temp(ir.KindRef)
				b.ArrayLoad(row, m, ir.Var(i))
				v := b.Temp(ir.KindInt)
				b.ArrayLoad(v, row, ir.Var(j))
				ifThen(b, ir.CondLT, ir.Var(v), ir.Var(min), func() {
					b.Move(min, ir.Var(v))
				})
			})
			forLoop(b, i, ir.ConstInt(0), ir.ConstInt(asgDim), func() {
				row := b.Temp(ir.KindRef)
				b.ArrayLoad(row, m, ir.Var(i))
				v := b.Temp(ir.KindInt)
				b.ArrayLoad(v, row, ir.Var(j))
				b.Binop(ir.OpSub, v, ir.Var(v), ir.Var(min))
				b.ArrayStore(row, ir.Var(j), ir.Var(v))
			})
			mix(b, s, ir.Var(min))
		})
		// Re-seed one diagonal cell so each pass does fresh work.
		lcgNext(b, r)
		d := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, d, ir.Var(t), ir.ConstInt(asgDim))
		rowd := b.Temp(ir.KindRef)
		b.ArrayLoad(rowd, m, ir.Var(d))
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(1000))
		b.ArrayStore(rowd, ir.Var(d), ir.Var(v))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refAssignment(n int64) int64 {
	m := make([][]int64, asgDim)
	r := int64(77)
	for i := range m {
		m[i] = make([]int64, asgDim)
		for j := range m[i] {
			r = lcgNextGo(r)
			m[i][j] = r % 1000
		}
	}
	s := int64(0)
	for t := int64(0); t < n; t++ {
		for i := 0; i < asgDim; i++ {
			row := m[i]
			min := row[0]
			for j := 1; j < asgDim; j++ {
				if row[j] < min {
					min = row[j]
				}
			}
			for j := 0; j < asgDim; j++ {
				row[j] -= min
			}
			s = mixGo(s, min)
		}
		for j := 0; j < asgDim; j++ {
			min := m[0][j]
			for i := 1; i < asgDim; i++ {
				if m[i][j] < min {
					min = m[i][j]
				}
			}
			for i := 0; i < asgDim; i++ {
				m[i][j] -= min
			}
			s = mixGo(s, min)
		}
		r = lcgNextGo(r)
		d := t % asgDim
		m[d][d] = r % 1000
	}
	return s
}

// LUDecomposition mirrors jBYTEmark's LU Decomposition kernel: in-place
// Gaussian elimination over a two-dimensional float matrix — triple-nested
// loops of `a[i][j]` accesses, the other flagship phase 1 workload
// (Table 1: 112.57 → 205.90).
func LUDecomposition() *Workload {
	return &Workload{
		Name:  "LUDecomposition",
		Suite: "jBYTEmark",
		N:     26,
		TestN: 6,
		Build: buildLU,
		Ref:   refLU,
	}
}

func buildLU() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("LUDecomposition")
	b, n := entry("LUDecomposition")

	holder := b.Local("holder", ir.KindRef)
	a := b.Local("a", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	k := b.Local("k", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// The matrix reference is fetched from a holder so no allocation in
	// scope proves it non-null; its checks must be moved by the optimizer.
	b.NewArray(holder, ir.ConstInt(1))
	tmp := b.Temp(ir.KindRef)
	b.NewArray(tmp, ir.Var(n))
	b.ArrayStore(holder, ir.ConstInt(0), ir.Var(tmp))
	b.ArrayLoad(a, holder, ir.ConstInt(0))

	// a[i][j] = ((i*j) % 7) + 1, plus n on the diagonal for dominance.
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		row := b.Temp(ir.KindRef)
		b.NewArray(row, ir.Var(n))
		forLoop(b, j, ir.ConstInt(0), ir.Var(n), func() {
			v := b.Temp(ir.KindInt)
			b.Binop(ir.OpMul, v, ir.Var(i), ir.Var(j))
			b.Binop(ir.OpRem, v, ir.Var(v), ir.ConstInt(7))
			b.Binop(ir.OpAdd, v, ir.Var(v), ir.ConstInt(1))
			ifThen(b, ir.CondEQ, ir.Var(i), ir.Var(j), func() {
				b.Binop(ir.OpAdd, v, ir.Var(v), ir.Var(n))
			})
			vf := b.Temp(ir.KindFloat)
			b.Unop(ir.OpIntToFloat, vf, ir.Var(v))
			b.ArrayStore(row, ir.Var(j), ir.Var(vf))
		})
		b.ArrayStore(a, ir.Var(i), ir.Var(row))
	})

	// Decompose with full a[i][j] indexing in the elimination loop, as the
	// FORTRAN-derived BYTEmark source does: every element touch re-indexes
	// the outer array. Only the iterated phase 1 + bounds + scalar
	// combination can lift the row pointer loads out of the inner loop.
	forLoop(b, k, ir.ConstInt(0), ir.Var(n), func() {
		k1 := b.Temp(ir.KindInt)
		b.Binop(ir.OpAdd, k1, ir.Var(k), ir.ConstInt(1))
		forLoop(b, i, ir.Var(k1), ir.Var(n), func() {
			// f = a[i][k] / a[k][k]; a[i][k] = f
			rowi0 := b.Temp(ir.KindRef)
			b.ArrayLoad(rowi0, a, ir.Var(i))
			aik := b.Temp(ir.KindFloat)
			b.ArrayLoad(aik, rowi0, ir.Var(k))
			rowk0 := b.Temp(ir.KindRef)
			b.ArrayLoad(rowk0, a, ir.Var(k))
			akk := b.Temp(ir.KindFloat)
			b.ArrayLoad(akk, rowk0, ir.Var(k))
			f := b.Local("f", ir.KindFloat)
			b.Binop(ir.OpFDiv, f, ir.Var(aik), ir.Var(akk))
			rowi1 := b.Temp(ir.KindRef)
			b.ArrayLoad(rowi1, a, ir.Var(i))
			b.ArrayStore(rowi1, ir.Var(k), ir.Var(f))
			forLoop(b, j, ir.Var(k1), ir.Var(n), func() {
				// a[i][j] -= f * a[k][j], re-indexing both rows.
				rowk := b.Temp(ir.KindRef)
				b.ArrayLoad(rowk, a, ir.Var(k))
				akj := b.Temp(ir.KindFloat)
				b.ArrayLoad(akj, rowk, ir.Var(j))
				rowi := b.Temp(ir.KindRef)
				b.ArrayLoad(rowi, a, ir.Var(i))
				aij := b.Temp(ir.KindFloat)
				b.ArrayLoad(aij, rowi, ir.Var(j))
				prod := b.Temp(ir.KindFloat)
				b.Binop(ir.OpFMul, prod, ir.Var(f), ir.Var(akj))
				b.Binop(ir.OpFSub, aij, ir.Var(aij), ir.Var(prod))
				b.ArrayStore(rowi, ir.Var(j), ir.Var(aij))
			})
		})
	})

	// Checksum the diagonal.
	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		row := b.Temp(ir.KindRef)
		b.ArrayLoad(row, a, ir.Var(i))
		d := b.Temp(ir.KindFloat)
		b.ArrayLoad(d, row, ir.Var(i))
		sc := b.Temp(ir.KindInt)
		scaleF(b, sc, ir.Var(d))
		mix(b, s, ir.Var(sc))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refLU(n int64) int64 {
	a := make([][]float64, n)
	for i := int64(0); i < n; i++ {
		a[i] = make([]float64, n)
		for j := int64(0); j < n; j++ {
			v := (i*j)%7 + 1
			if i == j {
				v += n
			}
			a[i][j] = float64(v)
		}
	}
	for k := int64(0); k < n; k++ {
		rowk := a[k]
		pivot := rowk[k]
		for i := k + 1; i < n; i++ {
			rowi := a[i]
			f := rowi[k] / pivot
			rowi[k] = f
			for j := k + 1; j < n; j++ {
				rowi[j] -= f * rowk[j]
			}
		}
	}
	s := int64(0)
	for i := int64(0); i < n; i++ {
		s = mixGo(s, scaleFGo(a[i][i]))
	}
	return s
}
