package workloads

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

// opCount sums an opcode across every method body of a fresh build.
func opCount(w *Workload, op ir.Op) int {
	prog, _ := w.Build()
	n := 0
	for _, m := range prog.Methods {
		if m.Fn != nil {
			n += m.Fn.CountOp(op)
		}
	}
	return n
}

// TestStructuralShapes pins each kernel to the code shape the paper's
// narrative assigns it, so a refactor cannot silently hollow a workload out.
func TestStructuralShapes(t *testing.T) {
	cases := []struct {
		name  string
		check func(t *testing.T, prog *ir.Program, entry *ir.Method)
	}{
		{"Assignment", func(t *testing.T, p *ir.Program, e *ir.Method) {
			// Two-dimensional walks: array loads that feed further array ops.
			if n := e.Fn.CountOp(ir.OpArrayLoad); n < 8 {
				t.Fatalf("Assignment has only %d array loads", n)
			}
		}},
		{"LUDecomposition", func(t *testing.T, p *ir.Program, e *ir.Method) {
			if n := e.Fn.CountOp(ir.OpArrayLoad); n < 8 {
				t.Fatalf("LU has only %d array loads", n)
			}
			if n := e.Fn.CountOp(ir.OpFDiv); n < 1 {
				t.Fatal("LU lost its pivot division")
			}
		}},
		{"MTRT", func(t *testing.T, p *ir.Program, e *ir.Method) {
			// The mtrt pattern: virtual accessor calls in the hot loop.
			if n := e.Fn.CountOp(ir.OpCallVirtual); n < 4 {
				t.Fatalf("MTRT has only %d virtual calls", n)
			}
			// The Figure 1 guard shape: the accessor has an early return.
			coord := p.MethodByName("Sphere.coord")
			if coord == nil {
				t.Fatal("Sphere.coord missing")
			}
			if len(coord.Fn.Blocks) < 5 {
				t.Fatalf("coord has %d blocks; the guarded shape needs more", len(coord.Fn.Blocks))
			}
		}},
		{"NeuralNet", func(t *testing.T, p *ir.Program, e *ir.Method) {
			// The §5.4 lever: Math.exp as a bodyless intrinsic method call.
			exp := p.MethodByName("Math.exp")
			if exp == nil || exp.Intrinsic != ir.MathExp {
				t.Fatal("NeuralNet lost its Math.exp intrinsic call")
			}
			if n := e.Fn.CountOp(ir.OpCallStatic); n < 1 {
				t.Fatal("no static calls before intrinsification")
			}
		}},
		{"Fourier", func(t *testing.T, p *ir.Program, e *ir.Method) {
			if p.MethodByName("Math.sin") == nil || p.MethodByName("Math.cos") == nil {
				t.Fatal("Fourier lost its transcendental calls")
			}
		}},
		{"FPEmulation", func(t *testing.T, p *ir.Program, e *ir.Method) {
			// The Figure 6 shape: a putfield precedes the coefficient reads
			// within the loop body block.
			found := false
			for _, b := range e.Fn.Blocks {
				sawStore := false
				for _, in := range b.Instrs {
					if in.Op == ir.OpPutField {
						sawStore = true
					}
					if in.Op == ir.OpArrayLoad && sawStore {
						found = true
					}
				}
			}
			if !found {
				t.Fatal("FPEmulation lost its store-then-read loop shape")
			}
		}},
		{"Jess", func(t *testing.T, p *ir.Program, e *ir.Method) {
			// Pointer chasing with a null loop test.
			foundNullTest := false
			for _, b := range e.Fn.Blocks {
				if tm := b.Terminator(); tm != nil && tm.Op == ir.OpIf {
					for _, a := range tm.Args {
						if a.Kind == ir.OperConstNull {
							foundNullTest = true
						}
					}
				}
			}
			if !foundNullTest {
				t.Fatal("Jess lost its null-terminated list walk")
			}
		}},
		{"Javac", func(t *testing.T, p *ir.Program, e *ir.Method) {
			// Recursive evaluation.
			eval := p.MethodByName("eval")
			if eval == nil {
				t.Fatal("eval missing")
			}
			recursive := false
			for _, b := range eval.Fn.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpCallStatic && in.Callee == eval {
						recursive = true
					}
				}
			}
			if !recursive {
				t.Fatal("Javac's eval is not recursive")
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			prog, entry := w.Build()
			tc.check(t, prog, entry)
		})
	}
}

// TestEveryKernelCarriesChecks: before optimization, every kernel must
// contain null checks (otherwise it measures nothing).
func TestEveryKernelCarriesChecks(t *testing.T) {
	for _, w := range All() {
		if n := opCount(w, ir.OpNullCheck); n < 3 {
			t.Errorf("%s has only %d null checks before optimization", w.Name, n)
		}
	}
}

// TestMultipleSizesMatchReference: the differential contract holds across
// several problem sizes, not just TestN — catches size-dependent bugs like
// loop-boundary mistakes.
func TestMultipleSizesMatchReference(t *testing.T) {
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			sizes := []int64{w.TestN / 2, w.TestN, w.TestN + 7}
			for _, n := range sizes {
				if n < 1 {
					n = 1
				}
				prog, entryM := w.Build()
				if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
					t.Fatalf("n=%d: compile: %v", n, err)
				}
				m := machine.New(model, prog)
				out, err := m.Call(entryM.Fn, n)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if out.Exc != rt.ExcNone {
					t.Fatalf("n=%d: exception %v", n, out.Exc)
				}
				if want := w.Ref(n); out.Value != want {
					t.Fatalf("n=%d: checksum %d, want %d", n, out.Value, want)
				}
			}
		})
	}
}

// TestDynamicCheckEliminationIsSubstantial: across the whole suite, the full
// configuration must remove the overwhelming majority of dynamic explicit
// checks — the paper's core effect.
func TestDynamicCheckEliminationIsSubstantial(t *testing.T) {
	model := arch.IA32Win()
	var baseChecks, fullChecks int64
	for _, w := range All() {
		run := func(cfg jit.Config) int64 {
			prog, entryM := w.Build()
			if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			m := machine.New(model, prog)
			if _, err := m.Call(entryM.Fn, w.TestN); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			return m.Stats.ExplicitChecks
		}
		baseChecks += run(jit.ConfigNoNullOptNoTrap())
		fullChecks += run(jit.ConfigPhase1Phase2())
	}
	if baseChecks == 0 {
		t.Fatal("baseline executed no checks at all")
	}
	ratio := float64(fullChecks) / float64(baseChecks)
	if ratio > 0.10 {
		t.Fatalf("full config retains %.1f%% of dynamic checks (want < 10%%): %d of %d",
			ratio*100, fullChecks, baseChecks)
	}
	t.Logf("dynamic explicit checks: %d -> %d (%.2f%% retained)", baseChecks, fullChecks, ratio*100)
}
