package workloads

import "trapnull/internal/ir"

// Bitfield mirrors jBYTEmark's Bitfield kernel: random set/clear/toggle
// operations over a bitmap array. Each operation is only a few ALU cycles
// around one load and one store, so the relative cost of explicit null
// checks is high — the kernel where the paper's hardware trap alone already
// pays (Table 1: 227.85 → 245.13).
func Bitfield() *Workload {
	return &Workload{
		Name:  "Bitfield",
		Suite: "jBYTEmark",
		N:     30000,
		TestN: 512,
		Build: buildBitfield,
		Ref:   refBitfield,
	}
}

func buildBitfield() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Bitfield")
	b, n := entry("Bitfield")

	words := b.Local("words", ir.KindRef)
	nw := b.Local("nw", ir.KindInt)
	bits := b.Local("bits", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	b.Binop(ir.OpDiv, nw, ir.Var(n), ir.ConstInt(64))
	b.Binop(ir.OpAdd, nw, ir.Var(nw), ir.ConstInt(1))
	b.NewArray(words, ir.Var(nw))
	b.Binop(ir.OpMul, bits, ir.Var(nw), ir.ConstInt(64))
	b.Move(r, ir.ConstInt(555))

	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		lcgNext(b, r)
		bit := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, bit, ir.Var(r), ir.Var(bits))
		idx := b.Temp(ir.KindInt)
		b.Binop(ir.OpShr, idx, ir.Var(bit), ir.ConstInt(6))
		sh := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, sh, ir.Var(bit), ir.ConstInt(63))
		mask := b.Temp(ir.KindInt)
		b.Binop(ir.OpShl, mask, ir.ConstInt(1), ir.Var(sh))
		op := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, op, ir.Var(r), ir.ConstInt(3))
		w := b.Local("w", ir.KindInt)
		b.ArrayLoad(w, words, ir.Var(idx))
		ifThenElse(b, ir.CondEQ, ir.Var(op), ir.ConstInt(0),
			func() { b.Binop(ir.OpOr, w, ir.Var(w), ir.Var(mask)) },
			func() {
				ifThenElse(b, ir.CondEQ, ir.Var(op), ir.ConstInt(1),
					func() {
						nm := b.Temp(ir.KindInt)
						b.Unop(ir.OpNot, nm, ir.Var(mask))
						b.Binop(ir.OpAnd, w, ir.Var(w), ir.Var(nm))
					},
					func() { b.Binop(ir.OpXor, w, ir.Var(w), ir.Var(mask)) })
			})
		b.ArrayStore(words, ir.Var(idx), ir.Var(w))
	})

	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(nw), func() {
		w := b.Temp(ir.KindInt)
		b.ArrayLoad(w, words, ir.Var(i))
		mix(b, s, ir.Var(w))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refBitfield(n int64) int64 {
	nw := n/64 + 1
	words := make([]int64, nw)
	bits := nw * 64
	r := int64(555)
	for i := int64(0); i < n; i++ {
		r = lcgNextGo(r)
		bit := r % bits
		idx := bit >> 6
		mask := int64(1) << uint(bit&63)
		switch r % 3 {
		case 0:
			words[idx] |= mask
		case 1:
			words[idx] &= ^mask
		default:
			words[idx] ^= mask
		}
	}
	s := int64(0)
	for _, w := range words {
		s = mixGo(s, w)
	}
	return s
}

// FPEmulation mirrors jBYTEmark's FP Emulation kernel: software multi-word
// arithmetic over accumulator objects. The hot loop has the Figure 6 shape —
// a memory write at the top of the body followed by field reads — so the
// read checks cannot move backward past the store. Phase 2 makes them free
// on trap-on-read machines, and on AIX only speculation can hoist the loads
// (§3.3.1, §5.4).
func FPEmulation() *Workload {
	return &Workload{
		Name:  "FPEmulation",
		Suite: "jBYTEmark",
		N:     12000,
		TestN: 256,
		Build: buildFPEmulation,
		Ref:   refFPEmulation,
	}
}

func buildFPEmulation() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("FPEmulation")
	fp := p.NewClass("FP",
		&ir.Field{Name: "hi", Kind: ir.KindInt},
		&ir.Field{Name: "lo", Kind: ir.KindInt},
	)
	hiF, loF := fp.FieldByName("hi"), fp.FieldByName("lo")
	const maskC = int64(0xffffffff)

	b, n := entry("FPEmulation")
	cells := b.Local("cells", ir.KindRef)
	acc := b.Local("acc", ir.KindRef)
	karr := b.Local("karr", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	vlo := b.Local("vlo", ir.KindInt)
	vhi := b.Local("vhi", ir.KindInt)

	// The accumulator object and coefficient array live in a holder array,
	// so the optimizer cannot prove them non-null from an allocation in
	// scope — the situation of operands handed to a method from the heap.
	b.NewArray(cells, ir.ConstInt(2))
	t0 := b.Temp(ir.KindRef)
	b.New(t0, fp)
	b.ArrayStore(cells, ir.ConstInt(0), ir.Var(t0))
	t1 := b.Temp(ir.KindRef)
	b.NewArray(t1, ir.ConstInt(2))
	b.ArrayStore(t1, ir.ConstInt(0), ir.ConstInt(3))
	b.ArrayStore(t1, ir.ConstInt(1), ir.ConstInt(5))
	b.ArrayStore(cells, ir.ConstInt(1), ir.Var(t1))
	b.ArrayLoad(acc, cells, ir.ConstInt(0))
	b.ArrayLoad(karr, cells, ir.ConstInt(1))

	b.Move(vlo, ir.ConstInt(1))
	b.Move(vhi, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		// Write the running value back first (the Figure 6 barrier) ...
		b.PutField(acc, loF, ir.Var(vlo))
		b.PutField(acc, hiF, ir.Var(vhi))
		// ... then read the coefficients; these checks are stuck below the
		// stores unless the machine traps reads or speculation is legal
		// (Figure 6: "arraylength b" moved across "nullcheck b").
		klo := b.Temp(ir.KindInt)
		b.ArrayLoad(klo, karr, ir.ConstInt(0))
		khi := b.Temp(ir.KindInt)
		b.ArrayLoad(khi, karr, ir.ConstInt(1))
		// Multi-word update with carry.
		lo := b.Temp(ir.KindInt)
		b.Binop(ir.OpMul, lo, ir.Var(vlo), ir.Var(klo))
		b.Binop(ir.OpAdd, lo, ir.Var(lo), ir.Var(i))
		carry := b.Temp(ir.KindInt)
		b.Binop(ir.OpShr, carry, ir.Var(lo), ir.ConstInt(32))
		b.Binop(ir.OpAnd, vlo, ir.Var(lo), ir.ConstInt(maskC))
		hi := b.Temp(ir.KindInt)
		b.Binop(ir.OpMul, hi, ir.Var(vhi), ir.Var(khi))
		b.Binop(ir.OpAdd, hi, ir.Var(hi), ir.Var(carry))
		b.Binop(ir.OpAnd, vhi, ir.Var(hi), ir.ConstInt(maskC))
	})

	b.Move(s, ir.ConstInt(0))
	flo := b.Temp(ir.KindInt)
	fhi := b.Temp(ir.KindInt)
	b.GetField(flo, acc, loF)
	b.GetField(fhi, acc, hiF)
	mix(b, s, ir.Var(flo))
	mix(b, s, ir.Var(fhi))
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refFPEmulation(n int64) int64 {
	const mask = int64(0xffffffff)
	accLo, accHi := int64(0), int64(0)
	klo, khi := int64(3), int64(5)
	vlo, vhi := int64(1), int64(0)
	for i := int64(0); i < n; i++ {
		accLo = vlo
		accHi = vhi
		lo := vlo*klo + i
		carry := lo >> 32
		vlo = lo & mask
		vhi = (vhi*khi + carry) & mask
	}
	s := int64(0)
	s = mixGo(s, accLo)
	s = mixGo(s, accHi)
	return s
}
