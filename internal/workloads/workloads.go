// Package workloads provides the benchmark kernels of the evaluation: ten
// programs mirroring jBYTEmark v0.9 and seven mirroring SPECjvm98, each
// built against the IR builder with the code shape the paper attributes to
// the original (multidimensional array walks for Assignment / Neural Net /
// LU Decomposition, tiny virtual accessors for mtrt, dense array loops for
// compress, and so on — see DESIGN.md §2).
//
// Every workload carries a pure-Go reference implementation; the machine
// must produce the same checksum under every configuration and architecture,
// which is the repository's strongest end-to-end correctness check.
package workloads

import (
	"fmt"

	"trapnull/internal/ir"
)

// Workload is one benchmark program.
type Workload struct {
	Name  string
	Suite string // "jBYTEmark" or "SPECjvm98"
	// Build returns a fresh program whose entry method takes one int
	// parameter (the problem size) and returns an int checksum. A fresh
	// program per call lets each configuration optimize in place.
	Build func() (*ir.Program, *ir.Method)
	// N is the benchmark problem size; TestN a fast size for tests.
	N, TestN int64
	// Ref computes the expected checksum in pure Go.
	Ref func(n int64) int64
}

// JBYTEmark returns the ten jBYTEmark kernels in the paper's column order.
func JBYTEmark() []*Workload {
	return []*Workload{
		NumericSort(),
		StringSort(),
		Bitfield(),
		FPEmulation(),
		Fourier(),
		Assignment(),
		IDEAEncryption(),
		HuffmanCompression(),
		NeuralNet(),
		LUDecomposition(),
	}
}

// SPECjvm98 returns the seven SPECjvm98 kernels in the paper's column order.
func SPECjvm98() []*Workload {
	return []*Workload{
		MTRT(),
		Jess(),
		Compress(),
		DB(),
		MPEGAudio(),
		Jack(),
		Javac(),
	}
}

// All returns every workload.
func All() []*Workload {
	return append(JBYTEmark(), SPECjvm98()...)
}

// Extensions returns the workloads beyond the paper's benchmark set
// (extensions.go): the ablation kernels and the tiering adversaries. They
// stay out of All() so the paper's tables keep their original seventeen
// rows, but ByName resolves them for the inspection tools.
func Extensions() []*Workload {
	return []*Workload{
		NullStorm(), BigOffsetWalk(), LateNullStorm(),
		TrapStorm(), FlappingNull(), PhaseShiftNull(), SeededBurst(1),
	}
}

// ByName finds a workload by case-sensitive name, searching the paper's set
// and the extensions.
func ByName(name string) (*Workload, error) {
	for _, w := range append(All(), Extensions()...) {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// ---------------------------------------------------------------------------
// Builder helpers shared by the kernels.

// forLoop emits `for (i = start; i < limit; i++) body` in the rotated form
// JITs produce: a guard branch, then a bottom-tested body. The guard→body
// edge is the natural preheader that phase 1 and LICM fill.
func forLoop(b *ir.Builder, i ir.VarID, start, limit ir.Operand, body func()) {
	bodyBlk := b.DeclareBlock("for_body")
	exitBlk := b.DeclareBlock("for_exit")
	b.Move(i, start)
	b.If(ir.CondLT, ir.Var(i), limit, bodyBlk, exitBlk)
	b.SetBlock(bodyBlk)
	body()
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), limit, bodyBlk, exitBlk)
	b.SetBlock(exitBlk)
}

// forLoopStep is forLoop with an arbitrary positive step.
func forLoopStep(b *ir.Builder, i ir.VarID, start, limit ir.Operand, step int64, body func()) {
	bodyBlk := b.DeclareBlock("for_body")
	exitBlk := b.DeclareBlock("for_exit")
	b.Move(i, start)
	b.If(ir.CondLT, ir.Var(i), limit, bodyBlk, exitBlk)
	b.SetBlock(bodyBlk)
	body()
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(step))
	b.If(ir.CondLT, ir.Var(i), limit, bodyBlk, exitBlk)
	b.SetBlock(exitBlk)
}

// ifThen emits `if (a cond b) then()` and continues after it.
func ifThen(b *ir.Builder, cond ir.Cond, a, x ir.Operand, then func()) {
	thenBlk := b.DeclareBlock("then")
	contBlk := b.DeclareBlock("cont")
	b.If(cond, a, x, thenBlk, contBlk)
	b.SetBlock(thenBlk)
	then()
	b.Jump(contBlk)
	b.SetBlock(contBlk)
}

// ifThenElse emits a full conditional and continues after it.
func ifThenElse(b *ir.Builder, cond ir.Cond, a, x ir.Operand, then, els func()) {
	thenBlk := b.DeclareBlock("then")
	elseBlk := b.DeclareBlock("else")
	contBlk := b.DeclareBlock("cont")
	b.If(cond, a, x, thenBlk, elseBlk)
	b.SetBlock(thenBlk)
	then()
	b.Jump(contBlk)
	b.SetBlock(elseBlk)
	els()
	b.Jump(contBlk)
	b.SetBlock(contBlk)
}

// lcgNext emits r = (r*1103515245 + 12345) & 0x7fffffff, the shared PRNG.
func lcgNext(b *ir.Builder, r ir.VarID) {
	b.Binop(ir.OpMul, r, ir.Var(r), ir.ConstInt(1103515245))
	b.Binop(ir.OpAdd, r, ir.Var(r), ir.ConstInt(12345))
	b.Binop(ir.OpAnd, r, ir.Var(r), ir.ConstInt(0x7fffffff))
}

// lcgNextGo is the Go mirror of lcgNext.
func lcgNextGo(r int64) int64 {
	return (r*1103515245 + 12345) & 0x7fffffff
}

// mix emits s = s*31 + x, the shared checksum fold.
func mix(b *ir.Builder, s ir.VarID, x ir.Operand) {
	b.Binop(ir.OpMul, s, ir.Var(s), ir.ConstInt(31))
	b.Binop(ir.OpAdd, s, ir.Var(s), x)
}

// mixGo is the Go mirror of mix.
func mixGo(s, x int64) int64 { return s*31 + x }

// scaleF emits dst = int(x * 1000) for float checksumming.
func scaleF(b *ir.Builder, dst ir.VarID, x ir.Operand) {
	t := b.Temp(ir.KindFloat)
	b.Binop(ir.OpFMul, t, x, ir.ConstFloat(1000))
	b.Unop(ir.OpFloatToInt, dst, ir.Var(t))
}

// scaleFGo is the Go mirror of scaleF.
func scaleFGo(x float64) int64 { return int64(x * 1000) }

// entry starts a workload entry function `int main(int n)`.
func entry(name string) (*ir.Builder, ir.VarID) {
	b := ir.NewFunc(name+".main", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	return b, n
}

// register adds the finished entry as a static method.
func register(p *ir.Program, b *ir.Builder) *ir.Method {
	return p.AddMethod(nil, b.F.Name, b.Finish(), false)
}

// mathExpMethod declares the runtime Math.exp (intrinsified on models with
// the instruction, a call barrier elsewhere — the §5.4 platform split).
func mathExpMethod(p *ir.Program) *ir.Method {
	m := p.AddMethod(nil, "Math.exp", nil, false)
	m.Intrinsic = ir.MathExp
	return m
}

// mathSinMethod declares the runtime Math.sin.
func mathSinMethod(p *ir.Program) *ir.Method {
	m := p.AddMethod(nil, "Math.sin", nil, false)
	m.Intrinsic = ir.MathSin
	return m
}

// mathCosMethod declares the runtime Math.cos.
func mathCosMethod(p *ir.Program) *ir.Method {
	m := p.AddMethod(nil, "Math.cos", nil, false)
	m.Intrinsic = ir.MathCos
	return m
}
