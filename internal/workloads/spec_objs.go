package workloads

import "trapnull/internal/ir"

// Jess mirrors SPECjvm98 _202_jess: rule matching over an object graph — a
// linked list of fact nodes tested against a rotating set of patterns
// through a small virtual predicate. Pointer-chasing with explicit null
// tests (the ifnull Edge rule) and inlined virtual calls.
func Jess() *Workload {
	return &Workload{
		Name:  "Jess",
		Suite: "SPECjvm98",
		N:     1400,
		TestN: 64,
		Build: buildJess,
		Ref:   refJess,
	}
}

const jessFacts = 48

func buildJess() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Jess")
	node := p.NewClass("Fact",
		&ir.Field{Name: "val", Kind: ir.KindInt},
		&ir.Field{Name: "next", Kind: ir.KindRef},
	)

	// matches(this, pat): (this.val & pat) == pat.
	mb := ir.NewFunc("matches", true)
	mThis := mb.Param("this", ir.KindRef)
	mPat := mb.Param("pat", ir.KindInt)
	mb.Result(ir.KindInt)
	mb.Block("entry")
	v := mb.Temp(ir.KindInt)
	mb.GetField(v, mThis, node.FieldByName("val"))
	masked := mb.Temp(ir.KindInt)
	mb.Binop(ir.OpAnd, masked, ir.Var(v), ir.Var(mPat))
	yes := mb.DeclareBlock("yes")
	no := mb.DeclareBlock("no")
	mb.If(ir.CondEQ, ir.Var(masked), ir.Var(mPat), yes, no)
	mb.SetBlock(yes)
	mb.Return(ir.ConstInt(1))
	mb.SetBlock(no)
	mb.Return(ir.ConstInt(0))
	matches := p.AddMethod(node, "matches", mb.Finish(), true)

	b, n := entry("Jess")
	head := b.Local("head", ir.KindRef)
	cur := b.Local("cur", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	t := b.Local("t", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// Build the fact list.
	b.Move(head, ir.Null())
	b.Move(r, ir.ConstInt(99))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(jessFacts), func() {
		o := b.Temp(ir.KindRef)
		b.New(o, node)
		lcgNext(b, r)
		fv := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, fv, ir.Var(r), ir.ConstInt(255))
		b.PutField(o, node.FieldByName("val"), ir.Var(fv))
		b.PutField(o, node.FieldByName("next"), ir.Var(head))
		b.Move(head, ir.Var(o))
	})

	// Match loop.
	b.Move(s, ir.ConstInt(0))
	forLoop(b, t, ir.ConstInt(0), ir.Var(n), func() {
		pat := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, pat, ir.Var(t), ir.ConstInt(63))
		cnt := b.Local("cnt", ir.KindInt)
		b.Move(cnt, ir.ConstInt(0))
		b.Move(cur, ir.Var(head))
		walkHead := b.DeclareBlock("walk_head")
		walkBody := b.DeclareBlock("walk_body")
		walkExit := b.DeclareBlock("walk_exit")
		b.Jump(walkHead)
		b.SetBlock(walkHead)
		b.If(ir.CondEQ, ir.Var(cur), ir.Null(), walkExit, walkBody)
		b.SetBlock(walkBody)
		hit := b.Temp(ir.KindInt)
		b.CallVirtual(hit, matches, cur, ir.Var(pat))
		b.Binop(ir.OpAdd, cnt, ir.Var(cnt), ir.Var(hit))
		b.GetField(cur, cur, node.FieldByName("next"))
		b.Jump(walkHead)
		b.SetBlock(walkExit)
		mix(b, s, ir.Var(cnt))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refJess(n int64) int64 {
	type fact struct {
		val  int64
		next *fact
	}
	var head *fact
	r := int64(99)
	for i := 0; i < jessFacts; i++ {
		r = lcgNextGo(r)
		head = &fact{val: r & 255, next: head}
	}
	s := int64(0)
	for t := int64(0); t < n; t++ {
		pat := t & 63
		cnt := int64(0)
		for cur := head; cur != nil; cur = cur.next {
			if cur.val&pat == pat {
				cnt++
			}
		}
		s = mixGo(s, cnt)
	}
	return s
}

// DB mirrors SPECjvm98 _209_db: an in-memory record table shell-sorted by a
// key accessor and scanned — field access through object arrays.
func DB() *Workload {
	return &Workload{
		Name:  "DB",
		Suite: "SPECjvm98",
		N:     700,
		TestN: 48,
		Build: buildDB,
		Ref:   refDB,
	}
}

func buildDB() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("DB")
	rec := p.NewClass("Record",
		&ir.Field{Name: "key", Kind: ir.KindInt},
		&ir.Field{Name: "val", Kind: ir.KindInt},
	)

	gb := ir.NewFunc("getKey", true)
	gThis := gb.Param("this", ir.KindRef)
	gb.Result(ir.KindInt)
	gb.Block("entry")
	gv := gb.Temp(ir.KindInt)
	gb.GetField(gv, gThis, rec.FieldByName("key"))
	gb.Return(ir.Var(gv))
	getKey := p.AddMethod(rec, "getKey", gb.Finish(), true)

	b, n := entry("DB")
	arr := b.Local("arr", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	gap := b.Local("gap", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	b.NewArray(arr, ir.Var(n))
	b.Move(r, ir.ConstInt(2024))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		o := b.Temp(ir.KindRef)
		b.New(o, rec)
		lcgNext(b, r)
		k := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, k, ir.Var(r), ir.ConstInt(100000))
		b.PutField(o, rec.FieldByName("key"), ir.Var(k))
		b.PutField(o, rec.FieldByName("val"), ir.Var(i))
		b.ArrayStore(arr, ir.Var(i), ir.Var(o))
	})

	// Shell sort by key.
	b.Binop(ir.OpDiv, gap, ir.Var(n), ir.ConstInt(2))
	gapHead := b.DeclareBlock("gap_head")
	gapBody := b.DeclareBlock("gap_body")
	gapExit := b.DeclareBlock("gap_exit")
	b.Jump(gapHead)
	b.SetBlock(gapHead)
	b.If(ir.CondGT, ir.Var(gap), ir.ConstInt(0), gapBody, gapExit)
	b.SetBlock(gapBody)
	forLoop(b, i, ir.Var(gap), ir.Var(n), func() {
		// Insertion within the gap chain.
		b.Move(j, ir.Var(i))
		insHead := b.DeclareBlock("ins_head")
		insTest := b.DeclareBlock("ins_test")
		insBody := b.DeclareBlock("ins_body")
		insExit := b.DeclareBlock("ins_exit")
		b.Jump(insHead)
		b.SetBlock(insHead)
		b.If(ir.CondGE, ir.Var(j), ir.Var(gap), insTest, insExit)
		b.SetBlock(insTest)
		jg := b.Temp(ir.KindInt)
		b.Binop(ir.OpSub, jg, ir.Var(j), ir.Var(gap))
		oa := b.Local("oa", ir.KindRef)
		ob := b.Local("ob", ir.KindRef)
		b.ArrayLoad(oa, arr, ir.Var(jg))
		b.ArrayLoad(ob, arr, ir.Var(j))
		ka := b.Temp(ir.KindInt)
		b.CallVirtual(ka, getKey, oa)
		kb := b.Temp(ir.KindInt)
		b.CallVirtual(kb, getKey, ob)
		b.If(ir.CondGT, ir.Var(ka), ir.Var(kb), insBody, insExit)
		b.SetBlock(insBody)
		b.ArrayStore(arr, ir.Var(jg), ir.Var(ob))
		b.ArrayStore(arr, ir.Var(j), ir.Var(oa))
		b.Binop(ir.OpSub, j, ir.Var(j), ir.Var(gap))
		b.Jump(insHead)
		b.SetBlock(insExit)
	})
	b.Binop(ir.OpDiv, gap, ir.Var(gap), ir.ConstInt(2))
	b.Jump(gapHead)
	b.SetBlock(gapExit)

	// Scan: checksum keys in order and positions of values.
	b.Move(s, ir.ConstInt(0))
	forLoop(b, i, ir.ConstInt(0), ir.Var(n), func() {
		o := b.Local("so", ir.KindRef)
		b.ArrayLoad(o, arr, ir.Var(i))
		k := b.Temp(ir.KindInt)
		b.CallVirtual(k, getKey, o)
		mix(b, s, ir.Var(k))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refDB(n int64) int64 {
	type record struct{ key, val int64 }
	arr := make([]*record, n)
	r := int64(2024)
	for i := int64(0); i < n; i++ {
		r = lcgNextGo(r)
		arr[i] = &record{key: r % 100000, val: i}
	}
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			for j := i; j >= gap; j -= gap {
				if arr[j-gap].key > arr[j].key {
					arr[j-gap], arr[j] = arr[j], arr[j-gap]
				} else {
					break
				}
			}
		}
	}
	s := int64(0)
	for i := int64(0); i < n; i++ {
		s = mixGo(s, arr[i].key)
	}
	return s
}

// Javac mirrors SPECjvm98 _213_javac: repeated walks over an expression
// tree of heap nodes — recursive descent with null tests at the leaves,
// field-dense and branchy like a compiler front end.
func Javac() *Workload {
	return &Workload{
		Name:  "Javac",
		Suite: "SPECjvm98",
		N:     800,
		TestN: 48,
		Build: buildJavac,
		Ref:   refJavac,
	}
}

const javacNodes = 127 // complete binary tree of depth 7

func buildJavac() (*ir.Program, *ir.Method) {
	p := ir.NewProgram("Javac")
	node := p.NewClass("Node",
		&ir.Field{Name: "kind", Kind: ir.KindInt},
		&ir.Field{Name: "val", Kind: ir.KindInt},
		&ir.Field{Name: "left", Kind: ir.KindRef},
		&ir.Field{Name: "right", Kind: ir.KindRef},
	)

	// eval(node): recursive expression evaluation with a null base case.
	eb := ir.NewFunc("eval", false)
	eN := eb.Param("node", ir.KindRef)
	eb.Result(ir.KindInt)
	entryBlk := eb.Block("entry")
	isNull := eb.DeclareBlock("isnull")
	body := eb.DeclareBlock("body")
	_ = entryBlk
	eb.If(ir.CondEQ, ir.Var(eN), ir.Null(), isNull, body)
	eb.SetBlock(isNull)
	eb.Return(ir.ConstInt(0))
	eb.SetBlock(body)
	evalM := p.AddMethod(nil, "eval", nil, false)
	kind := eb.Temp(ir.KindInt)
	eb.GetField(kind, eN, node.FieldByName("kind"))
	lch := eb.Temp(ir.KindRef)
	eb.GetField(lch, eN, node.FieldByName("left"))
	lv := eb.Temp(ir.KindInt)
	eb.CallStatic(lv, evalM, ir.Var(lch))
	rch := eb.Temp(ir.KindRef)
	eb.GetField(rch, eN, node.FieldByName("right"))
	rvv := eb.Temp(ir.KindInt)
	eb.CallStatic(rvv, evalM, ir.Var(rch))
	res := eb.Local("res", ir.KindInt)
	ifThenElse(eb, ir.CondEQ, ir.Var(kind), ir.ConstInt(0),
		func() { // leaf: own value
			eb.GetField(res, eN, node.FieldByName("val"))
		},
		func() {
			ifThenElse(eb, ir.CondEQ, ir.Var(kind), ir.ConstInt(1),
				func() { eb.Binop(ir.OpAdd, res, ir.Var(lv), ir.Var(rvv)) },
				func() {
					eb.Binop(ir.OpSub, res, ir.Var(lv), ir.Var(rvv))
					vv := eb.Temp(ir.KindInt)
					eb.GetField(vv, eN, node.FieldByName("val"))
					eb.Binop(ir.OpXor, res, ir.Var(res), ir.Var(vv))
				})
		})
	eb.Return(ir.Var(res))
	evalM.Fn = eb.Finish()
	evalM.Fn.Method = evalM

	b, n := entry("Javac")
	pool := b.Local("pool", ir.KindRef)
	i := b.Local("i", ir.KindInt)
	t := b.Local("t", ir.KindInt)
	r := b.Local("r", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	// Build the node pool and link it as a complete binary tree.
	b.NewArray(pool, ir.ConstInt(javacNodes))
	b.Move(r, ir.ConstInt(7))
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(javacNodes), func() {
		o := b.Temp(ir.KindRef)
		b.New(o, node)
		lcgNext(b, r)
		k := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, k, ir.Var(r), ir.ConstInt(3))
		b.PutField(o, node.FieldByName("kind"), ir.Var(k))
		v := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, v, ir.Var(r), ir.ConstInt(100))
		b.PutField(o, node.FieldByName("val"), ir.Var(v))
		b.ArrayStore(pool, ir.Var(i), ir.Var(o))
	})
	half := (javacNodes - 1) / 2
	forLoop(b, i, ir.ConstInt(0), ir.ConstInt(int64(half)), func() {
		par := b.Temp(ir.KindRef)
		b.ArrayLoad(par, pool, ir.Var(i))
		li := b.Temp(ir.KindInt)
		b.Binop(ir.OpMul, li, ir.Var(i), ir.ConstInt(2))
		b.Binop(ir.OpAdd, li, ir.Var(li), ir.ConstInt(1))
		lc := b.Temp(ir.KindRef)
		b.ArrayLoad(lc, pool, ir.Var(li))
		b.PutField(par, node.FieldByName("left"), ir.Var(lc))
		ri := b.Temp(ir.KindInt)
		b.Binop(ir.OpAdd, ri, ir.Var(li), ir.ConstInt(1))
		rc := b.Temp(ir.KindRef)
		b.ArrayLoad(rc, pool, ir.Var(ri))
		b.PutField(par, node.FieldByName("right"), ir.Var(rc))
	})

	// Evaluation passes, perturbing one leaf per pass.
	b.Move(s, ir.ConstInt(0))
	root := b.Local("root", ir.KindRef)
	b.ArrayLoad(root, pool, ir.ConstInt(0))
	forLoop(b, t, ir.ConstInt(0), ir.Var(n), func() {
		v := b.Temp(ir.KindInt)
		b.CallStatic(v, evalM, ir.Var(root))
		mix(b, s, ir.Var(v))
		idx := b.Temp(ir.KindInt)
		b.Binop(ir.OpRem, idx, ir.Var(t), ir.ConstInt(javacNodes))
		o := b.Temp(ir.KindRef)
		b.ArrayLoad(o, pool, ir.Var(idx))
		nv := b.Temp(ir.KindInt)
		b.Binop(ir.OpAnd, nv, ir.Var(t), ir.ConstInt(31))
		b.PutField(o, node.FieldByName("val"), ir.Var(nv))
	})
	b.Return(ir.Var(s))
	return p, register(p, b)
}

func refJavac(n int64) int64 {
	type nodeT struct {
		kind, val   int64
		left, right *nodeT
	}
	pool := make([]*nodeT, javacNodes)
	r := int64(7)
	for i := range pool {
		r = lcgNextGo(r)
		pool[i] = &nodeT{kind: r % 3, val: r % 100}
	}
	for i := 0; i < (javacNodes-1)/2; i++ {
		pool[i].left = pool[2*i+1]
		pool[i].right = pool[2*i+2]
	}
	var eval func(nd *nodeT) int64
	eval = func(nd *nodeT) int64 {
		if nd == nil {
			return 0
		}
		lv := eval(nd.left)
		rv := eval(nd.right)
		switch nd.kind {
		case 0:
			return nd.val
		case 1:
			return lv + rv
		default:
			return (lv - rv) ^ nd.val
		}
	}
	s := int64(0)
	for t := int64(0); t < n; t++ {
		s = mixGo(s, eval(pool[0]))
		pool[t%javacNodes].val = t & 31
	}
	return s
}
