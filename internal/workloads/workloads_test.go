package workloads

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

func TestWorkloadsValidate(t *testing.T) {
	for _, w := range All() {
		prog, entryM := w.Build()
		if entryM == nil || entryM.Fn == nil {
			t.Fatalf("%s: no entry", w.Name)
		}
		for _, m := range prog.Methods {
			if m.Fn == nil {
				continue
			}
			if err := ir.Validate(m.Fn); err != nil {
				t.Fatalf("%s/%s: %v", w.Name, m.QualifiedName(), err)
			}
		}
	}
}

func TestWorkloadsMatchReferenceUnoptimized(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, entryM := w.Build()
			m := machine.New(arch.IA32Win(), prog)
			out, err := m.Call(entryM.Fn, w.TestN)
			if err != nil {
				t.Fatalf("execution error: %v", err)
			}
			if out.Exc != rt.ExcNone {
				t.Fatalf("unexpected exception: %v", out.Exc)
			}
			want := w.Ref(w.TestN)
			if out.Value != want {
				t.Fatalf("checksum = %d, want %d", out.Value, want)
			}
		})
	}
}

// TestWorkloadsUnderAllConfigs is the repository's central end-to-end check:
// every workload must compute the identical checksum under every JIT
// configuration on its matching architecture — including the deliberately
// illegal one, whose missed NPEs never fire because the workloads do not
// dereference null.
func TestWorkloadsUnderAllConfigs(t *testing.T) {
	type platform struct {
		model   *arch.Model
		configs []jit.Config
	}
	platforms := []platform{
		{arch.IA32Win(), jit.WindowsConfigs()},
		{arch.PPCAIX(), jit.AIXConfigs()},
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want := w.Ref(w.TestN)
			for _, pl := range platforms {
				for _, cfg := range pl.configs {
					prog, entryM := w.Build()
					res, err := jit.CompileProgram(prog, cfg, pl.model)
					if err != nil {
						t.Fatalf("[%s/%s] compile: %v", pl.model.Name, cfg.Name, err)
					}
					if res.FuncsCompiled == 0 {
						t.Fatalf("[%s/%s] compiled nothing", pl.model.Name, cfg.Name)
					}
					m := machine.New(pl.model, prog)
					out, err := m.Call(entryM.Fn, w.TestN)
					if err != nil {
						t.Fatalf("[%s/%s] run: %v", pl.model.Name, cfg.Name, err)
					}
					if out.Exc != rt.ExcNone {
						t.Fatalf("[%s/%s] exception: %v", pl.model.Name, cfg.Name, out.Exc)
					}
					if out.Value != want {
						t.Fatalf("[%s/%s] checksum = %d, want %d",
							pl.model.Name, cfg.Name, out.Value, want)
					}
				}
			}
		})
	}
}

// TestOptimizationReducesChecksDynamically: on every workload, the full new
// algorithm must execute no more explicit checks than the no-optimization
// baseline, and for the array/field-dense kernels strictly fewer.
func TestOptimizationReducesChecksDynamically(t *testing.T) {
	model := arch.IA32Win()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(cfg jit.Config) machine.ExecStats {
				prog, entryM := w.Build()
				if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
					t.Fatalf("compile: %v", err)
				}
				m := machine.New(model, prog)
				if _, err := m.Call(entryM.Fn, w.TestN); err != nil {
					t.Fatalf("run: %v", err)
				}
				return m.Stats
			}
			base := run(jit.ConfigNoNullOptNoTrap())
			full := run(jit.ConfigPhase1Phase2())
			if full.ExplicitChecks > base.ExplicitChecks {
				t.Fatalf("full opt executes more checks: %d > %d",
					full.ExplicitChecks, base.ExplicitChecks)
			}
			if base.ExplicitChecks > 0 && full.ExplicitChecks == base.ExplicitChecks {
				t.Logf("note: no dynamic check reduction (%d)", base.ExplicitChecks)
			}
		})
	}
}

// TestCycleOrderingOnKeyWorkloads: the headline shape of Table 1 — each
// stronger configuration is at least as fast (never slower beyond noise;
// cycles are deterministic here so the comparison is exact).
func TestCycleOrderingOnKeyWorkloads(t *testing.T) {
	model := arch.IA32Win()
	for _, name := range []string{"Assignment", "NeuralNet", "LUDecomposition", "MTRT", "Bitfield"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cycles := func(cfg jit.Config) int64 {
			prog, entryM := w.Build()
			if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
				t.Fatalf("%s compile: %v", name, err)
			}
			m := machine.New(model, prog)
			if _, err := m.Call(entryM.Fn, w.TestN); err != nil {
				t.Fatalf("%s run: %v", name, err)
			}
			return m.Cycles
		}
		noOpt := cycles(jit.ConfigNoNullOptNoTrap())
		trap := cycles(jit.ConfigNoNullOptTrap())
		old := cycles(jit.ConfigOldNullCheck())
		p1 := cycles(jit.ConfigPhase1Only())
		full := cycles(jit.ConfigPhase1Phase2())
		if !(full <= p1 && p1 <= old && old <= trap && trap <= noOpt) {
			t.Fatalf("%s: cycle ordering violated: full=%d p1=%d old=%d trap=%d noopt=%d",
				name, full, p1, old, trap, noOpt)
		}
		if full >= noOpt {
			t.Fatalf("%s: no improvement at all: full=%d noopt=%d", name, full, noOpt)
		}
	}
}
