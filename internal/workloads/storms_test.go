package workloads

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

// TestStormsMatchReference pins every storm kernel to its Go reference on
// both architecture models and at off-by-prime sizes, under the full
// implicit-check configurations — the exact shapes the governor runs on.
func TestStormsMatchReference(t *testing.T) {
	models := []struct {
		model *arch.Model
		cfg   jit.Config
	}{
		{arch.IA32Win(), jit.ConfigPhase1Phase2()},
		{arch.PPCAIX(), jit.ConfigAIXWriteImplicit()},
	}
	for _, w := range []*Workload{TrapStorm(), FlappingNull(), PhaseShiftNull(), SeededBurst(7)} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, mc := range models {
				for _, n := range []int64{w.TestN, w.TestN + 7} {
					prog, entryM := w.Build()
					if _, err := jit.CompileProgram(prog, mc.cfg, mc.model); err != nil {
						t.Fatalf("%s n=%d: compile: %v", mc.model.Name, n, err)
					}
					m := machine.New(mc.model, prog)
					out, err := m.Call(entryM.Fn, n)
					if err != nil {
						t.Fatalf("%s n=%d: %v", mc.model.Name, n, err)
					}
					if out.Exc != rt.ExcNone {
						t.Fatalf("%s n=%d: exception %v", mc.model.Name, n, out.Exc)
					}
					if want := w.Ref(n); out.Value != want {
						t.Fatalf("%s n=%d: checksum %d, want %d", mc.model.Name, n, out.Value, want)
					}
				}
			}
		})
	}
}

// TestStormyKernelsTrapOnBothModels: the stormy sites are writes, so under
// the implicit configurations they must actually trap on ppc-aix (which
// converts writes only) as well as ia32 — otherwise the degradation tables
// would compare nothing.
func TestStormyKernelsTrapOnBothModels(t *testing.T) {
	cases := []struct {
		model *arch.Model
		cfg   jit.Config
	}{
		{arch.IA32Win(), jit.ConfigPhase1Phase2()},
		{arch.PPCAIX(), jit.ConfigAIXWriteImplicit()},
	}
	for _, mc := range cases {
		w := TrapStorm()
		prog, entryM := w.Build()
		if _, err := jit.CompileProgram(prog, mc.cfg, mc.model); err != nil {
			t.Fatalf("%s: %v", mc.model.Name, err)
		}
		m := machine.New(mc.model, prog)
		if _, err := m.Call(entryM.Fn, w.TestN); err != nil {
			t.Fatalf("%s: %v", mc.model.Name, err)
		}
		if m.Stats.TrapsTaken == 0 {
			t.Fatalf("%s: TrapStorm fired no hardware traps under the implicit config", mc.model.Name)
		}
	}
}

// TestSeededBurstDeterminism: the same seed bakes identical burst windows —
// and therefore an identical checksum — into the kernel, while different
// seeds genuinely vary the adversarial input.
func TestSeededBurstDeterminism(t *testing.T) {
	a, b := SeededBurst(42), SeededBurst(42)
	if a.Name != b.Name {
		t.Fatalf("names differ: %q vs %q", a.Name, b.Name)
	}
	if av, bv := a.Ref(4000), b.Ref(4000); av != bv {
		t.Fatalf("same seed, different reference: %d vs %d", av, bv)
	}
	if SeededBurst(42).Ref(4000) == SeededBurst(43).Ref(4000) {
		t.Fatal("distinct seeds produced identical burst schedules (suspicious)")
	}
	// The kernel carries null checks like every other workload.
	if n := opCount(a, ir.OpNullCheck); n < 2 {
		t.Fatalf("SeededBurst has only %d null checks", n)
	}
}
