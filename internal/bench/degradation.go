package bench

import (
	"fmt"
	"strconv"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// Degradation harness: the bench mode behind benchtab -degradation. It runs
// the null-heavy storm family under three null-check POLICIES per model and
// renders the graceful-degradation table the trap-storm governor is judged
// by (DESIGN.md §12):
//
//	implicit   the model's best static configuration with hardware-trap
//	           null checks — optimal on clean profiles, pays the full
//	           ~5000-cycle trap dispatch per null
//	explicit   the same optimization pipeline with trap conversion off —
//	           every surviving check is an explicit instruction; nulls cost
//	           a cheap software throw
//	governed   starts on the implicit configuration and lets the machine's
//	           trap-storm governor demote storming sites to explicit checks
//	           at runtime (machine.EnableGovernor)
//
// Steady-state cycles are the LAST invocation's cycle delta — by then every
// demotion has settled — so the table shows the governor converging to
// explicit costs on stormy sites while clean sites keep their free implicit
// checks: strictly better than all-implicit, at worst marginally better than
// all-explicit.

// DegradationCell is one (workload, policy) measurement.
type DegradationCell struct {
	Workload string
	Policy   string
	Reps     int
	// FirstCycles is invocation 1's cost (demotion transients included);
	// SteadyCycles is the final invocation's.
	FirstCycles  int64
	SteadyCycles int64
	// SteadyTraps / SteadyChecks are the final invocation's hardware traps
	// and dynamic explicit checks.
	SteadyTraps  int64
	SteadyChecks int64
	// Governor traffic; zero for the static policies.
	Demotions  int
	Recompiles int
	Pinned     int
	// PinnedMethods lists (sorted) the methods pinned conservative;
	// SiteExecs/SiteNulls total the governor's canonical per-site profile;
	// Backoffs counts traps the backoff windows swallowed; Events is the
	// full demotion decision log in occurrence order. These surface
	// GovernorReport in benchtab -json.
	PinnedMethods []string
	SiteExecs     int64
	SiteNulls     int64
	Backoffs      int64
	Events        []machine.GovernorEvent
	// Err marks a failed cell; measurement fields are zero.
	Err string
}

// Failed reports whether the cell is an error entry.
func (c *DegradationCell) Failed() bool { return c.Err != "" }

// DegradationOptions tunes a degradation sweep.
type DegradationOptions struct {
	// Quick selects the small problem sizes (used by tests).
	Quick bool
	// Reps is invocations per cell; the last is the steady-state
	// measurement. Minimum (and default) is 3: storm, demote, steady.
	Reps int
	// Governor sets the demotion thresholds; the zero value selects
	// machine.DefaultGovernorPolicy, scaled down under Quick so the small
	// problem sizes still cross them.
	Governor machine.GovernorPolicy
	// CompileParallelism is forwarded to jit.CompileOptions.Parallelism.
	CompileParallelism int

	// Timeline, when non-nil, attaches a flight recorder to every cell's
	// machine and merges its demotion/backoff/pin events into the timeline;
	// the static policies (implicit, explicit) additionally carry trap-cost
	// attribution. Metrics, when non-nil, receives the governor counters
	// after each cell.
	Timeline *obs.Timeline
	Metrics  *obs.Registry
}

func (o DegradationOptions) reps() int {
	if o.Reps >= 2 {
		return o.Reps
	}
	return 3
}

func (o DegradationOptions) governor() machine.GovernorPolicy {
	if o.Governor != (machine.GovernorPolicy{}) {
		return o.Governor
	}
	p := machine.DefaultGovernorPolicy()
	if o.Quick {
		p.MinSiteExecs, p.BackoffTraps = 64, 8
	}
	return p
}

// DegradationPolicies lists the policies in render order.
func DegradationPolicies() []string {
	return []string{"implicit", "explicit", "governed"}
}

// DegradationWorkloads is the storm family of the degradation tables.
func DegradationWorkloads() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.TrapStorm(),
		workloads.FlappingNull(),
		workloads.PhaseShiftNull(),
	}
}

// ExplicitConfig is the all-explicit comparison policy: the same phase-1
// elimination pipeline as the implicit configurations, but with every
// surviving check emitted as an explicit instruction (no trap conversion,
// no folding) on either model.
func ExplicitConfig() jit.Config {
	return jit.Config{
		Name:       "AllExplicit",
		Inline:     true,
		Algo:       jit.AlgoNew,
		Iterations: 3,
		OtherOpts:  true,
	}
}

// ImplicitConfigWin / ImplicitConfigAIX are the per-model implicit
// configurations the governor starts from: the paper's full Phase1+2 on
// ia32-win, and the legal write-implicit extension on ppc-aix (speculation
// off — the governor bets in the opposite direction and disables tier-2
// speculation anyway).
func ImplicitConfigWin() jit.Config { return jit.ConfigPhase1Phase2() }

func ImplicitConfigAIX() jit.Config {
	c := jit.ConfigAIXWriteImplicit()
	c.Name = "WriteImplicit"
	c.Speculation = false
	return c
}

// DegradationMatrix holds one model's degradation sweep.
type DegradationMatrix struct {
	Model     *arch.Model
	Config    jit.Config // the implicit configuration (governed starts here)
	Workloads []*workloads.Workload
	Policies  []string
	Quick     bool
	Reps      int
	// Cells is indexed [policy][workload name].
	Cells map[string]map[string]*DegradationCell
}

// Cell returns the measurement for (policy, workload).
func (m *DegradationMatrix) Cell(policy, workload string) *DegradationCell {
	if row, ok := m.Cells[policy]; ok {
		return row[workload]
	}
	return nil
}

// RunDegradation sweeps policies × workloads for one model. implicitCfg is
// the trap-based configuration the implicit and governed rows run on.
func RunDegradation(model *arch.Model, implicitCfg jit.Config, ws []*workloads.Workload, opts DegradationOptions) (*DegradationMatrix, error) {
	registerGovernorMetrics(opts.Metrics)
	m := &DegradationMatrix{
		Model:     model,
		Config:    implicitCfg,
		Workloads: ws,
		Policies:  DegradationPolicies(),
		Quick:     opts.Quick,
		Reps:      opts.reps(),
		Cells:     make(map[string]map[string]*DegradationCell),
	}
	for _, pol := range m.Policies {
		m.Cells[pol] = make(map[string]*DegradationCell, len(ws))
	}
	var failures []string
	for _, w := range ws {
		for _, pol := range m.Policies {
			c := runDegradationCell(model, implicitCfg, w, pol, opts)
			m.Cells[pol][w.Name] = c
			if c.Failed() {
				failures = append(failures, fmt.Sprintf("%s/%s: %s", pol, w.Name, c.Err))
			}
		}
	}
	if len(failures) > 0 {
		return m, fmt.Errorf("bench: %d degradation cell(s) failed:\n  %s", len(failures), joinLines(failures))
	}
	return m, nil
}

// runDegradationCell measures one (workload, policy) cell: reps invocations
// on one machine, each checksum-verified against the pure-Go reference — the
// three policies agreeing with the reference is the differential check. Any
// error degrades to an error cell.
func runDegradationCell(model *arch.Model, implicitCfg jit.Config, w *workloads.Workload, policy string, opts DegradationOptions) (cell *DegradationCell) {
	errCell := func(reason string) *DegradationCell {
		return &DegradationCell{Workload: w.Name, Policy: policy, Err: reason}
	}
	defer func() {
		if r := recover(); r != nil {
			cell = errCell(fmt.Sprintf("panic: %v", r))
		}
	}()

	n := w.N
	if opts.Quick {
		n = w.TestN
	}
	reps := opts.reps()

	cfg := implicitCfg
	if policy == "explicit" {
		cfg = ExplicitConfig()
	}

	// One compile cache per cell: the governor's demoted generations key by
	// jit.KeyDemote, so replaying a converged demote set (or re-running the
	// cell) hits instead of recompiling.
	cache := jit.NewCache(0)
	_, entryM := w.Build()
	demoteCompile := func(demote map[string][]int) (*ir.Program, error) {
		p, _ := w.Build()
		d := jit.DemoteSet(demote)
		key := jit.KeyDemote(p, cfg, model, nil, d)
		entry, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
			res, cerr := jit.CompileProgramWith(p, cfg, model,
				jit.CompileOptions{Parallelism: opts.CompileParallelism, Demote: d})
			if cerr != nil {
				return nil, cerr
			}
			return &jit.CacheEntry{Program: p, Result: res}, nil
		})
		if err != nil {
			return nil, err
		}
		return entry.Program, nil
	}

	prog, err := demoteCompile(nil)
	if err != nil {
		return errCell(failReason(err))
	}
	em := prog.MethodByName(entryM.QualifiedName())
	if em == nil || em.Fn == nil {
		return errCell("compiled program lacks entry method " + entryM.QualifiedName())
	}

	mach := machine.New(model, prog)
	// The flight recorder rides every policy; the static ones additionally
	// carry trap-cost attribution (governed machines report a nil ledger).
	rec := attachRecorder(opts.Timeline, mach, policy != "governed")
	switch policy {
	case "implicit", "explicit":
		// Static policies: no governor, whatever the configuration compiled
		// is what runs.
	case "governed":
		mach.EnableGovernor(opts.governor(), demoteCompile)
	default:
		return errCell("unknown policy " + policy)
	}

	cellName := policy + "/" + w.Name
	// Publish from a defer so even a failed cell lands its strand.
	defer func() {
		if rec != nil {
			opts.Timeline.Add(model.Name+"/"+cellName, rec, mach.CycleAttribution())
		}
	}()

	want := w.Ref(n)
	var first, last int64
	var lastTraps, lastChecks int64
	for rep := 0; rep < reps; rep++ {
		before, beforeTraps, beforeChecks := mach.Cycles, mach.Stats.TrapsTaken, mach.Stats.ExplicitChecks
		out, err := mach.Call(em.Fn, n)
		if err != nil {
			return errCell(failReason(err))
		}
		if out.Exc != rt.ExcNone {
			return errCell(fmt.Sprintf("unexpected exception %v", out.Exc))
		}
		if out.Value != want {
			return errCell(fmt.Sprintf("checksum mismatch on rep %d: got %d, want %d", rep, out.Value, want))
		}
		d := mach.Cycles - before
		if rep == 0 {
			first = d
		}
		last = d
		lastTraps = mach.Stats.TrapsTaken - beforeTraps
		lastChecks = mach.Stats.ExplicitChecks - beforeChecks
	}

	cell = &DegradationCell{
		Workload:     w.Name,
		Policy:       policy,
		Reps:         reps,
		FirstCycles:  first,
		SteadyCycles: last,
		SteadyTraps:  lastTraps,
		SteadyChecks: lastChecks,
	}
	grep := mach.GovernorReport()
	cell.Demotions = grep.Demotions
	cell.Recompiles = grep.Recompiles
	cell.Pinned = len(grep.Pinned)
	cell.PinnedMethods = grep.Pinned
	cell.SiteExecs = grep.SiteExecs
	cell.SiteNulls = grep.SiteNulls
	cell.Backoffs = grep.Backoffs
	cell.Events = grep.Events
	publishGovernorMetrics(opts.Metrics, grep)
	publishCacheMetrics(opts.Metrics, cache.Stats())
	noteCacheEvents(opts.Timeline, model.Name+"/"+cellName, cache)
	return cell
}

// DegradationReport bundles the degradation sweeps of both models.
type DegradationReport struct {
	Win *DegradationMatrix // ia32-win, NewNullCheck(Phase1+2)
	AIX *DegradationMatrix // ppc-aix, WriteImplicit
}

// RunDegradationAll produces the full degradation report. Both sweeps run to
// completion even when cells fail.
func RunDegradationAll(opts DegradationOptions) (*DegradationReport, error) {
	var errs []string
	sweep := func(m *DegradationMatrix, err error) *DegradationMatrix {
		if err != nil {
			errs = append(errs, err.Error())
		}
		return m
	}
	rep := &DegradationReport{
		Win: sweep(RunDegradation(arch.IA32Win(), ImplicitConfigWin(), DegradationWorkloads(), opts)),
		AIX: sweep(RunDegradation(arch.PPCAIX(), ImplicitConfigAIX(), DegradationWorkloads(), opts)),
	}
	if len(errs) > 0 {
		return rep, fmt.Errorf("%s", joinLines(errs))
	}
	return rep, nil
}

// DegradationTable renders one matrix as the graceful-degradation table.
func (m *DegradationMatrix) DegradationTable() string {
	title := fmt.Sprintf("Trap-storm degradation: %s, %s (steady state = last of %d invocations%s)",
		m.Model.Name, m.Config.Name, m.Reps, quickNote(m.Quick))
	header := []string{"workload", "policy", "steady cycles", "first cycles",
		"steady traps", "steady checks", "demotions", "recompiles", "pinned"}
	var rows [][]string
	for _, w := range m.Workloads {
		for _, pol := range m.Policies {
			c := m.Cell(pol, w.Name)
			if c == nil {
				rows = append(rows, []string{w.Name, pol, "MISSING", "", "", "", "", "", ""})
				continue
			}
			if c.Failed() {
				rows = append(rows, []string{w.Name, pol, "ERROR(" + c.Err + ")", "", "", "", "", "", ""})
				continue
			}
			rows = append(rows, []string{
				w.Name, pol,
				strconv.FormatInt(c.SteadyCycles, 10),
				strconv.FormatInt(c.FirstCycles, 10),
				strconv.FormatInt(c.SteadyTraps, 10),
				strconv.FormatInt(c.SteadyChecks, 10),
				strconv.Itoa(c.Demotions),
				strconv.Itoa(c.Recompiles),
				strconv.Itoa(c.Pinned),
			})
		}
	}
	return renderGrid(title, header, rows,
		"policies: implicit = static trap-based checks; explicit = same pipeline, every check explicit;",
		"governed = implicit start + runtime trap-storm governor (demote storming sites, pin on budget).",
		"steady cycles show the governor converging to explicit costs on stormy sites while clean",
		"sites keep their free implicit checks.")
}

// Render renders both matrices.
func (r *DegradationReport) Render() string {
	return r.Win.DegradationTable() + "\n" + r.AIX.DegradationTable()
}
