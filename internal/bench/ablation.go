package bench

import (
	"fmt"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// This file holds the ablation experiments DESIGN.md calls out — probes of
// the design choices rather than reproductions of the paper's tables.

// ablRun compiles and runs one workload and returns the cycle count.
func ablRun(w *workloads.Workload, cfg jit.Config, model *arch.Model, n int64) (int64, error) {
	prog, entryM := w.Build()
	if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
		return 0, err
	}
	m := machine.New(model, prog)
	out, err := m.Call(entryM.Fn, n)
	if err != nil {
		return 0, err
	}
	if out.Exc != rt.ExcNone {
		return 0, fmt.Errorf("unexpected exception %v", out.Exc)
	}
	if want := w.Ref(n); out.Value != want {
		return 0, fmt.Errorf("checksum mismatch: got %d want %d", out.Value, want)
	}
	return m.Cycles, nil
}

// AblationIterations sweeps the phase-1 iteration count — the paper only
// says "iterated for a few times"; this measures where it converges.
func AblationIterations(quick bool) (string, error) {
	model := arch.IA32Win()
	names := []string{"Assignment", "LUDecomposition", "NeuralNet", "MTRT"}
	counts := []int{1, 2, 3, 5}

	header := append([]string{"phase1 iterations"}, names...)
	var rows [][]string
	for _, it := range counts {
		row := []string{fmt.Sprintf("%d", it)}
		for _, name := range names {
			w, err := workloads.ByName(name)
			if err != nil {
				return "", err
			}
			n := w.N
			if quick {
				n = w.TestN
			}
			cfg := jit.ConfigPhase1Phase2()
			cfg.Iterations = it
			cycles, err := ablRun(w, cfg, model, n)
			if err != nil {
				return "", fmt.Errorf("iterations=%d %s: %w", it, name, err)
			}
			row = append(row, fmt.Sprintf("%d", cycles))
		}
		rows = append(rows, row)
	}
	return renderGrid("Ablation A. Phase-1 iteration count (cycles; lower is better)",
		header, rows,
		"the paper iterates \"a few times\"; gains typically converge by 2-3"), nil
}

// AblationInlineBudget sweeps the inliner budget: inlining is what creates
// the explicit checks phase 2 optimizes, so both too little and the paper's
// choice are visible here.
func AblationInlineBudget(quick bool) (string, error) {
	model := arch.IA32Win()
	names := []string{"MTRT", "Jess", "DB", "Jack"}
	budgets := []int{1, 12, 24, 96}

	header := append([]string{"inline budget"}, names...)
	var rows [][]string
	for _, budget := range budgets {
		row := []string{fmt.Sprintf("%d", budget)}
		for _, name := range names {
			w, err := workloads.ByName(name)
			if err != nil {
				return "", err
			}
			n := w.N
			if quick {
				n = w.TestN
			}
			cfg := jit.ConfigPhase1Phase2()
			cfg.InlineBudget = budget
			cycles, err := ablRun(w, cfg, model, n)
			if err != nil {
				return "", fmt.Errorf("budget=%d %s: %w", budget, name, err)
			}
			row = append(row, fmt.Sprintf("%d", cycles))
		}
		rows = append(rows, row)
	}
	return renderGrid("Ablation B. Inline budget (cycles; lower is better)",
		header, rows,
		"budget 1 disables inlining; the accessor-heavy kernels need it before phase 2 matters"), nil
}

// AblationNullRate sweeps how often the checked reference actually is null.
// Implicit checks are free until they fire; a hardware trap costs thousands
// of cycles where a failed software check costs hundreds — so explicit
// checks win as soon as nulls are at all common. (This is why production
// VMs that adopted the paper's technique recompile methods that trap
// repeatedly.)
func AblationNullRate() (string, error) {
	model := arch.IA32Win()
	w := workloads.NullStorm()
	rates := []int64{0, 1, 5, 20, 100, 500}

	header := []string{"nulls per 1000", "explicit checks (cycles)", "trap-based (cycles)", "winner"}
	var rows [][]string
	for _, rate := range rates {
		exp, err := ablRun(w, jit.ConfigNoNullOptNoTrap(), model, rate)
		if err != nil {
			return "", fmt.Errorf("rate=%d explicit: %w", rate, err)
		}
		trap, err := ablRun(w, jit.ConfigPhase1Phase2(), model, rate)
		if err != nil {
			return "", fmt.Errorf("rate=%d trap: %w", rate, err)
		}
		winner := "trap"
		if exp < trap {
			winner = "explicit"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", rate), fmt.Sprintf("%d", exp), fmt.Sprintf("%d", trap), winner,
		})
	}
	return renderGrid("Ablation C. Null frequency vs. check implementation (NullStorm)",
		header, rows,
		"traps win only when nulls are rare — the assumption underlying the whole design"), nil
}

// AblationTrapArea sweeps the protected-area size against a big-offset
// field (Figure 5(1)): once the area covers the offset, the explicit check
// disappears.
func AblationTrapArea(quick bool) (string, error) {
	w := workloads.BigOffsetWalk()
	n := w.N
	if quick {
		n = w.TestN
	}
	sizes := []int64{4 << 10, 16 << 10, 512 << 10}

	header := []string{"trap area", "cycles", "dynamic explicit checks"}
	var rows [][]string
	for _, size := range sizes {
		model := arch.IA32Win()
		model.TrapAreaBytes = size

		prog, entryM := w.Build()
		if _, err := jit.CompileProgram(prog, jit.ConfigPhase1Phase2(), model); err != nil {
			return "", err
		}
		m := machine.New(model, prog)
		out, err := m.Call(entryM.Fn, n)
		if err != nil {
			return "", err
		}
		if out.Value != w.Ref(n) {
			return "", fmt.Errorf("trapArea=%d: checksum mismatch", size)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d KB", size/1024),
			fmt.Sprintf("%d", m.Cycles),
			fmt.Sprintf("%d", m.Stats.ExplicitChecks),
		})
	}
	return renderGrid("Ablation D. Protected trap area vs. a 64 KB field offset (BigOffsetWalk)",
		header, rows,
		"the far-field check converts to a trap only once the protected area covers its offset"), nil
}

// ExtensionAIXWriteImplicit measures the future-work mode of §3.3.1 — the
// paper's AIX JIT generated a conditional trap for every check, noting that
// writes could have used implicit checks "but we have not implemented it
// yet". This extension implements it (phase 2 against the real AIX model)
// and compares against the paper's shipped AIX configurations.
func ExtensionAIXWriteImplicit(quick bool) (string, error) {
	model := arch.PPCAIX()
	names := []string{"FPEmulation", "Bitfield", "Assignment", "DB", "Javac"}
	configs := []jit.Config{
		jit.ConfigAIXSpeculation(),
		jit.ConfigAIXWriteImplicit(),
		jit.ConfigAIXIllegalImplicit(),
	}

	header := append([]string{"configuration"}, names...)
	var rows [][]string
	for _, cfg := range configs {
		row := []string{cfg.Name}
		for _, name := range names {
			w, err := workloads.ByName(name)
			if err != nil {
				return "", err
			}
			n := w.N
			if quick {
				n = w.TestN
			}
			cycles, err := ablRun(w, cfg, model, n)
			if err != nil {
				return "", fmt.Errorf("%s %s: %w", cfg.Name, name, err)
			}
			row = append(row, fmt.Sprintf("%d", cycles))
		}
		rows = append(rows, row)
	}
	return renderGrid("Extension E. AIX write-implicit checks (§3.3.1 future work; cycles, lower is better)",
		header, rows,
		"legal write-implicit recovers part of IllegalImplicit's gain without violating the spec"), nil
}

// Ablations renders every ablation experiment.
func Ablations(quick bool) (string, error) {
	out := ""
	for _, fn := range []func() (string, error){
		func() (string, error) { return AblationIterations(quick) },
		func() (string, error) { return AblationInlineBudget(quick) },
		AblationNullRate,
		func() (string, error) { return AblationTrapArea(quick) },
		func() (string, error) { return ExtensionAIXWriteImplicit(quick) },
	} {
		s, err := fn()
		if err != nil {
			return "", err
		}
		out += s + "\n"
	}
	return out, nil
}

// newMachineFor is a small indirection for tests that need custom models.
func newMachineFor(m *arch.Model, prog *ir.Program) *machine.Machine {
	return machine.New(m, prog)
}
