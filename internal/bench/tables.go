package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// renderGrid formats a header row and value rows with aligned columns.
func renderGrid(title string, header []string, rows [][]string, footer ...string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, f := range footer {
		sb.WriteString(f)
		sb.WriteString("\n")
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// cellText renders one table cell: the metric for a measured cell, the
// deterministic ERROR(<reason>) text for a failed one, and MISSING for a
// cell the sweep never produced.
func cellText(c *Cell, metric func(*Cell) string) string {
	switch {
	case c == nil:
		return "MISSING"
	case c.Failed():
		return c.ErrText()
	default:
		return metric(c)
	}
}

// usable reports whether a cell carries a real measurement (non-nil and not
// an error entry); aggregating tables skip the others.
func usable(c *Cell) bool { return c != nil && !c.Failed() }

// workloadNames lists the matrix's workload column order.
func (m *Matrix) workloadNames() []string {
	names := make([]string, len(m.Workloads))
	for i, w := range m.Workloads {
		names[i] = w.Name
	}
	return names
}

// Table1 renders the jBYTEmark index table (paper Table 1; larger better).
func (r *Report) Table1() string {
	m := r.WinJB
	header := append([]string{"(index = runs/sim-sec)"}, m.workloadNames()...)
	var rows [][]string
	for _, cfg := range m.Configs {
		row := []string{cfg.Name}
		for _, w := range m.workloadNames() {
			row = append(row, cellText(m.Cell(cfg.Name, w), func(c *Cell) string { return f2(c.Index()) }))
		}
		rows = append(rows, row)
	}
	return renderGrid("Table 1. Performance for jBYTEmark on ia32-win (larger is better)",
		header, rows,
		"index = 1 / simulated seconds at 600 MHz; shapes, not absolute values, correspond to the paper")
}

// Table2 renders the SPECjvm98 time table (paper Table 2; smaller better).
func (r *Report) Table2() string {
	m := r.WinSpec
	header := append([]string{"(unit: sim ms)"}, m.workloadNames()...)
	var rows [][]string
	for _, cfg := range m.Configs {
		row := []string{cfg.Name}
		for _, w := range m.workloadNames() {
			row = append(row, cellText(m.Cell(cfg.Name, w), func(c *Cell) string { return f2(c.SimMillis()) }))
		}
		rows = append(rows, row)
	}
	return renderGrid("Table 2. Performance for SPECjvm98 on ia32-win (smaller is better)",
		header, rows,
		"simulated milliseconds at 600 MHz")
}

// improvement returns the % speedup of cfg over base on workload w
// (cycle-based, so it works for both index and time metrics).
func improvement(m *Matrix, base, cfg, w string) float64 {
	b := m.Cell(base, w)
	c := m.Cell(cfg, w)
	if !usable(c) || !usable(b) || c.Cycles == 0 {
		return 0
	}
	return (float64(b.Cycles)/float64(c.Cycles) - 1) * 100
}

// figureImprovement renders a %-improvement-over-baseline figure.
func figureImprovement(title string, m *Matrix, base string, configs []string) string {
	header := append([]string{"% improvement vs " + base}, m.workloadNames()...)
	var rows [][]string
	for _, cfg := range configs {
		row := []string{cfg}
		for _, w := range m.workloadNames() {
			row = append(row, f1(improvement(m, base, cfg, w)))
		}
		rows = append(rows, row)
	}
	return renderGrid(title, header, rows)
}

// Figure8 renders the jBYTEmark improvement chart (paper Figure 8).
func (r *Report) Figure8() string {
	return figureImprovement(
		"Figure 8. Improvement for jBYTEmark on ia32-win",
		r.WinJB, "NoNullOpt(NoTrap)",
		[]string{"NoNullOpt(Trap)", "OldNullCheck", "NewNullCheck(Phase1)", "NewNullCheck(Phase1+2)"})
}

// Figure9 renders the SPECjvm98 improvement chart (paper Figure 9).
func (r *Report) Figure9() string {
	return figureImprovement(
		"Figure 9. Improvement for SPECjvm98 on ia32-win",
		r.WinSpec, "NoNullOpt(NoTrap)",
		[]string{"NoNullOpt(Trap)", "OldNullCheck", "NewNullCheck(Phase1)", "NewNullCheck(Phase1+2)"})
}

// figureVersus renders ours-vs-comparator relative performance.
func figureVersus(title string, m *Matrix, ours, other string) string {
	header := append([]string{"% faster than " + other}, m.workloadNames()...)
	row := []string{ours}
	sum := 0.0
	for _, w := range m.workloadNames() {
		v := improvement(m, other, ours, w)
		sum += v
		row = append(row, f1(v))
	}
	avg := sum / float64(len(m.workloadNames()))
	return renderGrid(title, header, [][]string{row},
		fmt.Sprintf("average relative performance: %+.1f%%", avg))
}

// Figure10 renders the jBYTEmark ours-vs-HotSpotSim comparison (Figure 10).
func (r *Report) Figure10() string {
	return figureVersus("Figure 10. jBYTEmark: NewNullCheck(Phase1+2) vs HotSpotSim",
		r.WinJB, "NewNullCheck(Phase1+2)", "HotSpotSim")
}

// Figure11 renders the SPECjvm98 ours-vs-HotSpotSim comparison (Figure 11).
func (r *Report) Figure11() string {
	return figureVersus("Figure 11. SPECjvm98: NewNullCheck(Phase1+2) vs HotSpotSim",
		r.WinSpec, "NewNullCheck(Phase1+2)", "HotSpotSim")
}

// Table3 renders the compilation-time table (paper Table 3): first run =
// execution + compilation; best run = execution. Execution is simulated
// milliseconds, compilation real milliseconds of the respective pipeline —
// the mix is documented in EXPERIMENTS.md.
func (r *Report) Table3() string {
	m := r.WinSpec
	header := append([]string{"", "metric"}, m.workloadNames()...)
	var rows [][]string
	for _, cfg := range []string{"NewNullCheck(Phase1+2)", "HotSpotSim"} {
		label := "Our JIT"
		if cfg == "HotSpotSim" {
			label = "HotSpotSim"
		}
		first := []string{label, "first run (ms)"}
		bestR := []string{"", "best run (ms)"}
		comp := []string{"", "compile (ms, %first)"}
		for _, w := range m.workloadNames() {
			c := m.Cell(cfg, w)
			if !usable(c) {
				t := cellText(c, nil)
				first = append(first, t)
				bestR = append(bestR, t)
				comp = append(comp, t)
				continue
			}
			exec := c.SimMillis()
			cms := float64(c.CompileTotal().Microseconds()) / 1000
			first = append(first, f2(exec+cms))
			bestR = append(bestR, f2(exec))
			comp = append(comp, fmt.Sprintf("%.2f (%.1f%%)", cms, cms/(exec+cms)*100))
		}
		rows = append(rows, first, bestR, comp)
	}
	return renderGrid("Table 3. JIT compilation time, SPECjvm98 on ia32-win", header, rows,
		"execution in simulated ms; compilation in real host ms (see EXPERIMENTS.md on units)")
}

// Figure12 renders the compile/total ratio chart (paper Figure 12).
func (r *Report) Figure12() string {
	m := r.WinSpec
	header := append([]string{"% of first run"}, m.workloadNames()...)
	row := []string{"compilation"}
	for _, w := range m.workloadNames() {
		c := m.Cell("NewNullCheck(Phase1+2)", w)
		if !usable(c) {
			row = append(row, cellText(c, nil))
			continue
		}
		exec := c.SimMillis()
		cms := float64(c.CompileTotal().Microseconds()) / 1000
		row = append(row, f1(cms/(exec+cms)*100))
	}
	return renderGrid("Figure 12. Ratio of JIT compilation time to first run", header, [][]string{row})
}

// table4Groups mirrors the paper's grouping: small-compile benchmarks merge.
func (r *Report) table4Groups() []struct {
	Name  string
	Cells func(cfg string) []*Cell
} {
	spec := r.WinSpec
	jb := r.WinJB
	group := func(names ...string) func(cfg string) []*Cell {
		return func(cfg string) []*Cell {
			var out []*Cell
			for _, n := range names {
				out = append(out, spec.Cell(cfg, n))
			}
			return out
		}
	}
	jbAll := func(cfg string) []*Cell {
		var out []*Cell
		for _, w := range jb.workloadNames() {
			out = append(out, jb.Cell(cfg, w))
		}
		return out
	}
	return []struct {
		Name  string
		Cells func(cfg string) []*Cell
	}{
		{"mtrt", group("MTRT")},
		{"jess", group("Jess")},
		{"db+compress+mpegaudio", group("DB", "Compress", "MPEGAudio")},
		{"jack", group("Jack")},
		{"javac", group("Javac")},
		{"jBYTEmark", jbAll},
	}
}

// Table4 renders the compile-time breakdown (paper Table 4): null check
// optimization vs everything else, NEW vs OLD.
func (r *Report) Table4() string {
	header := []string{"group", "algo", "nullcheck (ms)", "others (ms)", "nullcheck %"}
	var rows [][]string
	for _, g := range r.table4Groups() {
		for _, v := range []struct{ label, cfg string }{
			{"NEW", "NewNullCheck(Phase1+2)"},
			{"OLD", "OldNullCheck"},
		} {
			var null, other float64
			for _, c := range g.Cells(v.cfg) {
				if !usable(c) {
					continue
				}
				null += float64(c.CompileNull.Microseconds()) / 1000
				other += float64(c.CompileOther.Microseconds()) / 1000
			}
			pct := 0.0
			if null+other > 0 {
				pct = null / (null + other) * 100
			}
			rows = append(rows, []string{g.Name, v.label, f2(null), f2(other), f1(pct)})
		}
	}
	return renderGrid("Table 4. Breakdown of JIT compilation time (real host ms)", header, rows)
}

// Figure13 renders the breakdown chart data (paper Figure 13): the NEW
// pipeline's total compile time relative to OLD, split by phase family.
func (r *Report) Figure13() string {
	header := []string{"group", "new/old nullcheck-opt time", "new/old total time"}
	var rows [][]string
	for _, g := range r.table4Groups() {
		sum := func(cfg string) (null, total float64) {
			for _, c := range g.Cells(cfg) {
				if !usable(c) {
					continue
				}
				null += float64(c.CompileNull.Microseconds()) / 1000
				total += float64(c.CompileTotal().Microseconds()) / 1000
			}
			return
		}
		nNew, tNew := sum("NewNullCheck(Phase1+2)")
		nOld, tOld := sum("OldNullCheck")
		ratioN, ratioT := 0.0, 0.0
		if nOld > 0 {
			ratioN = nNew / nOld
		}
		if tOld > 0 {
			ratioT = tNew / tOld
		}
		rows = append(rows, []string{g.Name, f2(ratioN) + "x", f2(ratioT) + "x"})
	}
	return renderGrid("Figure 13. New vs old null check optimization compile cost", header, rows,
		"paper: new null check opt ≈3x the old one; total ≈1.02x")
}

// Table5 renders the compile-time increase table (paper Table 5).
func (r *Report) Table5() string {
	header := []string{"group", "increase (ms)", "increase (%)"}
	var rows [][]string
	var totNew, totOld float64
	for _, g := range r.table4Groups() {
		var tNew, tOld float64
		for _, c := range g.Cells("NewNullCheck(Phase1+2)") {
			if usable(c) {
				tNew += float64(c.CompileTotal().Microseconds()) / 1000
			}
		}
		for _, c := range g.Cells("OldNullCheck") {
			if usable(c) {
				tOld += float64(c.CompileTotal().Microseconds()) / 1000
			}
		}
		totNew += tNew
		totOld += tOld
		pct := 0.0
		if tOld > 0 {
			pct = (tNew/tOld - 1) * 100
		}
		rows = append(rows, []string{g.Name, f2(tNew - tOld), f1(pct)})
	}
	avg := 0.0
	if totOld > 0 {
		avg = (totNew/totOld - 1) * 100
	}
	return renderGrid("Table 5. Increase in JIT compilation time (new vs old)", header, rows,
		fmt.Sprintf("overall increase: %.1f%% (paper: 2.3%% average)", avg))
}

// Table6 renders the AIX jBYTEmark table (paper Table 6; larger better).
func (r *Report) Table6() string {
	m := r.AIXJB
	header := append([]string{"(index = runs/sim-sec)"}, m.workloadNames()...)
	var rows [][]string
	for _, cfg := range m.Configs {
		row := []string{cfg.Name}
		for _, w := range m.workloadNames() {
			row = append(row, cellText(m.Cell(cfg.Name, w), func(c *Cell) string { return f2(c.Index()) }))
		}
		rows = append(rows, row)
	}
	return renderGrid("Table 6. Performance for jBYTEmark on ppc-aix (larger is better)",
		header, rows,
		"index = 1 / simulated seconds at 332 MHz")
}

// Table7 renders the AIX SPECjvm98 table (paper Table 7; smaller better).
func (r *Report) Table7() string {
	m := r.AIXSpec
	header := append([]string{"(unit: sim ms)"}, m.workloadNames()...)
	var rows [][]string
	for _, cfg := range m.Configs {
		row := []string{cfg.Name}
		for _, w := range m.workloadNames() {
			row = append(row, cellText(m.Cell(cfg.Name, w), func(c *Cell) string { return f2(c.SimMillis()) }))
		}
		rows = append(rows, row)
	}
	return renderGrid("Table 7. Performance for SPECjvm98 on ppc-aix (smaller is better)",
		header, rows)
}

// Figure14 renders the AIX jBYTEmark improvement chart (paper Figure 14).
func (r *Report) Figure14() string {
	return figureImprovement(
		"Figure 14. Improvement for jBYTEmark on ppc-aix",
		r.AIXJB, "NoNullCheckOpt",
		[]string{"Speculation", "NoSpeculation", "IllegalImplicit(NoSpec)"})
}

// Figure15 renders the AIX SPECjvm98 improvement chart (paper Figure 15).
func (r *Report) Figure15() string {
	return figureImprovement(
		"Figure 15. Improvement for SPECjvm98 on ppc-aix",
		r.AIXSpec, "NoNullCheckOpt",
		[]string{"Speculation", "NoSpeculation", "IllegalImplicit(NoSpec)"})
}

// CompileCacheTable renders the per-matrix compile-cache traffic counters.
// Not a paper artifact (and not timing-free in spirit — the counters depend
// on whether the cache ran at all), it documents how much compilation the
// sweep actually performed versus replayed.
func (r *Report) CompileCacheTable() string {
	header := []string{"matrix", "lookups", "hits", "misses", "evictions"}
	var rows [][]string
	for _, mx := range []struct {
		name string
		m    *Matrix
	}{
		{"windows_jbytemark", r.WinJB},
		{"windows_specjvm98", r.WinSpec},
		{"aix_jbytemark", r.AIXJB},
		{"aix_specjvm98", r.AIXSpec},
	} {
		st := mx.m.CompileCache
		if st == nil {
			rows = append(rows, []string{mx.name, "-", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{mx.name,
			fmt.Sprint(st.Lookups), fmt.Sprint(st.Hits),
			fmt.Sprint(st.Misses), fmt.Sprint(st.Evictions)})
	}
	return renderGrid("Compile cache. Content-addressed compilation reuse per sweep", header, rows,
		"misses = distinct (program, config projection, model) compilations; '-' = cache off")
}

// Artifacts maps table/figure identifiers to their renderers.
func (r *Report) Artifacts() map[string]func() string {
	return map[string]func() string{
		"table1": r.Table1, "table2": r.Table2, "table3": r.Table3,
		"table4": r.Table4, "table5": r.Table5, "table6": r.Table6,
		"table7":  r.Table7,
		"figure8": r.Figure8, "figure9": r.Figure9, "figure10": r.Figure10,
		"figure11": r.Figure11, "figure12": r.Figure12, "figure13": r.Figure13,
		"figure14": r.Figure14, "figure15": r.Figure15,
		"compile_cache": r.CompileCacheTable,
	}
}

// ArtifactNames returns the identifiers in render order. compile_cache is
// deliberately NOT in timingFreeArtifacts (parallel_test.go): its counters
// describe the harness run, not the simulated measurement, and a cache-off
// sweep renders it differently by design.
func ArtifactNames() []string {
	return []string{
		"table1", "figure8", "table2", "figure9", "figure10", "figure11",
		"table3", "figure12", "table4", "figure13", "table5",
		"table6", "figure14", "table7", "figure15",
		"compile_cache",
	}
}
