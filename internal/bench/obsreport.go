package bench

import (
	"fmt"
	"strings"

	"trapnull/internal/obs"
)

// matrices returns the report's matrices with their display names, in the
// fixed render order shared by the JSON export.
func (r *Report) matrices() []struct {
	Name string
	M    *Matrix
} {
	return []struct {
		Name string
		M    *Matrix
	}{
		{"jBYTEmark on ia32-win", r.WinJB},
		{"SPECjvm98 on ia32-win", r.WinSpec},
		{"jBYTEmark on ppc-aix", r.AIXJB},
		{"SPECjvm98 on ppc-aix", r.AIXSpec},
	}
}

// FateTables renders the null-check fate histograms collected under
// Options.Remarks: one grid per matrix, one row per configuration with the
// fates aggregated across that configuration's workloads. Empty when the
// sweep ran without remarks.
func (r *Report) FateTables() string {
	var sb strings.Builder
	header := []string{"config", "source", "inlined", "moved",
		"elim", "hoist", "sunk", "conv", "subst", "dead", "kept", "lost"}
	for _, mx := range r.matrices() {
		m := mx.M
		var rows [][]string
		for _, cfg := range m.Configs {
			var agg obs.FateCounts
			seen := false
			for _, w := range m.workloadNames() {
				c := m.Cell(cfg.Name, w)
				if usable(c) && c.Fates != nil {
					agg.Add(*c.Fates)
					seen = true
				}
			}
			if !seen {
				continue
			}
			row := []string{cfg.Name}
			for _, v := range []int{agg.Source, agg.Inlined, agg.Moved,
				agg.Eliminated, agg.Hoisted, agg.Sunk, agg.Converted,
				agg.Substituted, agg.Dead, agg.Retained, agg.Lost} {
				row = append(row, fmt.Sprintf("%d", v))
			}
			if !agg.Conserved() {
				row = append(row, "CONSERVATION VIOLATED")
			}
			rows = append(rows, row)
		}
		if len(rows) == 0 {
			continue
		}
		sb.WriteString(renderGrid("Null check fates: "+mx.Name, header, rows))
		sb.WriteString("\n")
	}
	return sb.String()
}

// ProfileTables renders the execution-profile summaries collected under
// Options.Profile: one grid per matrix with per-cell dynamic totals and the
// hottest block. Empty when the sweep ran without profiling.
func (r *Report) ProfileTables() string {
	var sb strings.Builder
	header := []string{"config", "workload", "blocks entered", "traps",
		"explicit", "implicit", "hottest block"}
	for _, mx := range r.matrices() {
		m := mx.M
		var rows [][]string
		for _, cfg := range m.Configs {
			for _, w := range m.workloadNames() {
				c := m.Cell(cfg.Name, w)
				if !usable(c) || c.Profile == nil {
					continue
				}
				p := c.Profile
				hot := "-"
				if len(p.Hot) > 0 {
					h := p.Hot[0]
					hot = fmt.Sprintf("%s %s ×%d", h.Method, h.Block, h.Count)
					if len(h.Checks) > 0 {
						hot += " [" + strings.Join(h.Checks, ", ") + "]"
					}
				}
				rows = append(rows, []string{cfg.Name, w,
					fmt.Sprintf("%d", p.BlocksEntered),
					fmt.Sprintf("%d", p.TrapsTaken),
					fmt.Sprintf("%d", p.ExplicitChecks),
					fmt.Sprintf("%d", p.ImplicitSites),
					hot})
			}
		}
		if len(rows) == 0 {
			continue
		}
		sb.WriteString(renderGrid("Execution profile: "+mx.Name, header, rows))
		sb.WriteString("\n")
	}
	return sb.String()
}
