package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// diffFixture builds a small baseline report document for the gate tests.
func diffFixture(t *testing.T) []byte {
	t.Helper()
	rep := jsonReport{
		GeneratedBy: "trapnull benchtab",
		CompileCache: []jsonCacheStats{
			{Matrix: "windows_jbytemark", Lookups: 100, Hits: 80, Misses: 20},
		},
		Matrices: map[string][]jsonCell{
			"windows_jbytemark": {
				{Workload: "Assignment", Config: "Base", Cycles: 100000, TrapsTaken: 0, ExplicitChecks: 50},
				{Workload: "Assignment", Config: "Opt", Cycles: 80000, TrapsTaken: 2, ExplicitChecks: 10},
				{Workload: "StringSort", Config: "Base", Error: "timeout"},
			},
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mutate unmarshals the fixture, applies f, and re-marshals it.
func mutate(t *testing.T, data []byte, f func(*jsonReport)) []byte {
	t.Helper()
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	f(&rep)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDiffIdenticalPasses pins the no-op case: a report diffed against itself
// has no regressions and renders the "no regressions" verdict.
func TestDiffIdenticalPasses(t *testing.T) {
	data := diffFixture(t)
	d, err := DiffReports(data, data, DiffOptions{CyclesTolerancePct: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Ok() {
		t.Fatalf("identical reports gated: %v", d.Regressions)
	}
	if !strings.Contains(d.Render(), "no regressions") {
		t.Errorf("render lacks the pass verdict:\n%s", d.Render())
	}
}

// TestDiffCatchesCycleRegression pins the core gate: a planted 10% cycle
// increase must fail under the default 2% tolerance and pass under a 15% one.
func TestDiffCatchesCycleRegression(t *testing.T) {
	base := diffFixture(t)
	cand := mutate(t, base, func(rep *jsonReport) {
		cells := rep.Matrices["windows_jbytemark"]
		cells[0].Cycles = cells[0].Cycles * 110 / 100
	})
	d, err := DiffReports(base, cand, DiffOptions{CyclesTolerancePct: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Ok() {
		t.Fatal("10% cycle regression passed a 2% gate")
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "cycles 100000 -> 110000") {
		t.Errorf("unexpected regressions: %v", d.Regressions)
	}
	loose, err := DiffReports(base, cand, DiffOptions{CyclesTolerancePct: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Ok() {
		t.Errorf("10%% regression gated under a 15%% tolerance: %v", loose.Regressions)
	}
}

// TestDiffImprovementIsNote pins that a cycle drop never gates; it lands in
// the notes instead.
func TestDiffImprovementIsNote(t *testing.T) {
	base := diffFixture(t)
	cand := mutate(t, base, func(rep *jsonReport) {
		rep.Matrices["windows_jbytemark"][1].Cycles = 70000
	})
	d, err := DiffReports(base, cand, DiffOptions{CyclesTolerancePct: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Ok() {
		t.Fatalf("improvement gated: %v", d.Regressions)
	}
	found := false
	for _, n := range d.Notes {
		if strings.Contains(n, "improved") {
			found = true
		}
	}
	if !found {
		t.Errorf("improvement produced no note: %v", d.Notes)
	}
}

// TestDiffErrorTransitions pins the error-cell semantics: healthy→ERROR
// gates, ERROR→healthy is a note, ERROR→ERROR passes, and a cell vanishing
// from the candidate gates.
func TestDiffErrorTransitions(t *testing.T) {
	base := diffFixture(t)

	broken := mutate(t, base, func(rep *jsonReport) {
		c := &rep.Matrices["windows_jbytemark"][0]
		*c = jsonCell{Workload: c.Workload, Config: c.Config, Error: "checksum mismatch"}
	})
	d, _ := DiffReports(base, broken, DiffOptions{})
	if d.Ok() || !strings.Contains(strings.Join(d.Regressions, "\n"), "now fails") {
		t.Errorf("healthy->ERROR did not gate: %v", d.Regressions)
	}

	fixed := mutate(t, base, func(rep *jsonReport) {
		c := &rep.Matrices["windows_jbytemark"][2]
		*c = jsonCell{Workload: c.Workload, Config: c.Config, Cycles: 5}
	})
	d, _ = DiffReports(base, fixed, DiffOptions{})
	if !d.Ok() {
		t.Errorf("ERROR->healthy gated: %v", d.Regressions)
	}

	missing := mutate(t, base, func(rep *jsonReport) {
		rep.Matrices["windows_jbytemark"] = rep.Matrices["windows_jbytemark"][:2]
	})
	d, _ = DiffReports(base, missing, DiffOptions{})
	if d.Ok() || !strings.Contains(strings.Join(d.Regressions, "\n"), "missing") {
		t.Errorf("missing cell did not gate: %v", d.Regressions)
	}
}

// TestDiffHitRateGate pins the cache column: a hit-rate drop beyond the
// tolerance gates; within it, only the comparison line is emitted.
func TestDiffHitRateGate(t *testing.T) {
	base := diffFixture(t)
	worse := mutate(t, base, func(rep *jsonReport) {
		rep.CompileCache[0].Hits = 60
		rep.CompileCache[0].Misses = 40
	})
	d, _ := DiffReports(base, worse, DiffOptions{HitRateDropPct: 5})
	if d.Ok() {
		t.Error("20pp hit-rate drop passed a 5pp gate")
	}
	d, _ = DiffReports(base, worse, DiffOptions{HitRateDropPct: 25})
	if !d.Ok() {
		t.Errorf("20pp hit-rate drop gated under a 25pp tolerance: %v", d.Regressions)
	}
}

// TestDiffStrictFates pins the fate-histogram switch: changes are notes by
// default and regressions under -strict-fates. Dynamic-counter drift is
// always a note.
func TestDiffStrictFates(t *testing.T) {
	base := mutate(t, diffFixture(t), func(rep *jsonReport) {
		rep.Matrices["windows_jbytemark"][0].TrapsTaken = 7
	})
	drifted := mutate(t, base, func(rep *jsonReport) {
		rep.Matrices["windows_jbytemark"][0].TrapsTaken = 9
	})
	d, _ := DiffReports(base, drifted, DiffOptions{})
	if !d.Ok() {
		t.Errorf("dynamic-counter drift gated without strict mode: %v", d.Regressions)
	}
	found := false
	for _, n := range d.Notes {
		if strings.Contains(n, "dynamic checks changed") {
			found = true
		}
	}
	if !found {
		t.Errorf("counter drift produced no note: %v", d.Notes)
	}
}

// TestDiffRoundTripSelf runs the real sweep through the gate: a quick
// benchtab JSON diffed against itself must pass, proving the gate tolerates
// the one legitimately noisy column (host compile µs) out of the box.
func TestDiffRoundTripSelf(t *testing.T) {
	rep, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	a, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// A second independent sweep differs only in host timings.
	rep2, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	b, err := rep2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffReports(a, b, DiffOptions{CyclesTolerancePct: 0, StrictFates: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Ok() {
		t.Errorf("two sweeps of the same tree gate each other: %v", d.Regressions)
	}
}
