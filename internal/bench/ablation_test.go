package bench

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/workloads"
)

func TestAblationsRender(t *testing.T) {
	out, err := Ablations(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C", "Ablation D"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %s in ablation output", want)
		}
	}
}

// TestAblationIterationsMonotone: more phase-1 iterations never hurt, and
// the second iteration already captures the bulk of the gain (the paper's
// "a few times").
func TestAblationIterationsMonotone(t *testing.T) {
	model := arch.IA32Win()
	w, err := workloads.ByName("Assignment")
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(iters int) int64 {
		cfg := jit.ConfigPhase1Phase2()
		cfg.Iterations = iters
		c, err := ablRun(w, cfg, model, w.TestN)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2, c5 := cycles(1), cycles(2), cycles(5)
	if !(c5 <= c2 && c2 <= c1) {
		t.Fatalf("iteration sweep not monotone: 1->%d 2->%d 5->%d", c1, c2, c5)
	}
	if c2 == c1 {
		t.Log("note: second iteration added nothing at quick size")
	}
}

// TestAblationNullRateCrossover: the design assumption of the whole paper —
// traps only pay when nulls are rare. Explicit checks must win once nulls
// are common, and trap-based checks must win when nulls never occur.
func TestAblationNullRateCrossover(t *testing.T) {
	model := arch.IA32Win()
	w := workloads.NullStorm()
	run := func(cfg jit.Config, rate int64) int64 {
		c, err := ablRun(w, cfg, model, rate)
		if err != nil {
			t.Fatalf("rate=%d: %v", rate, err)
		}
		return c
	}
	// No nulls: the trap configuration is at least as fast.
	if e, tr := run(jit.ConfigNoNullOptNoTrap(), 0), run(jit.ConfigPhase1Phase2(), 0); tr > e {
		t.Fatalf("rate 0: trap config slower (%d > %d)", tr, e)
	}
	// Frequent nulls: explicit checks win decisively.
	if e, tr := run(jit.ConfigNoNullOptNoTrap(), 500), run(jit.ConfigPhase1Phase2(), 500); e >= tr {
		t.Fatalf("rate 500: explicit checks did not win (%d >= %d)", e, tr)
	}
}

// TestAblationTrapAreaBoundary: a big-offset field converts to an implicit
// check exactly when the protected area covers its offset.
func TestAblationTrapAreaBoundary(t *testing.T) {
	w := workloads.BigOffsetWalk()
	run := func(area int64) int64 {
		model := arch.IA32Win()
		model.TrapAreaBytes = area
		prog, entryM := w.Build()
		if _, err := jit.CompileProgram(prog, jit.ConfigPhase1Phase2(), model); err != nil {
			t.Fatal(err)
		}
		m := newMachineFor(model, prog)
		out, err := m.Call(entryM.Fn, w.TestN)
		if err != nil {
			t.Fatal(err)
		}
		if out.Value != w.Ref(w.TestN) {
			t.Fatalf("area=%d: checksum mismatch", area)
		}
		return m.Stats.ExplicitChecks
	}
	small := run(4 << 10)
	big := run(512 << 10)
	if small == 0 {
		t.Fatal("small trap area: far-field check vanished illegally")
	}
	if big != 0 {
		t.Fatalf("large trap area: %d explicit checks remain", big)
	}
}

// TestExtensionWorkloadsMatchReference: the ablation workloads obey the same
// differential contract as the paper's seventeen.
func TestExtensionWorkloadsMatchReference(t *testing.T) {
	model := arch.IA32Win()
	for _, w := range []*workloads.Workload{workloads.NullStorm(), workloads.BigOffsetWalk()} {
		for _, cfg := range jit.WindowsConfigs() {
			if _, err := ablRun(w, cfg, model, w.TestN); err != nil {
				t.Fatalf("%s under %s: %v", w.Name, cfg.Name, err)
			}
		}
	}
}
