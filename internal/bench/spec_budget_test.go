package bench

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// TestSpecBudgetExhaustionSurfaced: with a tight tier-2 recompile budget, a
// workload whose profile keeps betraying speculation (LateNullStorm: both
// speculated checks go null late, every invocation) must park at the
// conservative closure tier once the budget is spent — surfaced in
// TierReport.BudgetExhausted — instead of recompiling forever, and every
// invocation still matches the reference.
func TestSpecBudgetExhaustionSurfaced(t *testing.T) {
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	w := workloads.LateNullStorm()
	n := w.TestN

	cache := jit.NewCache(0)
	_, entryM := w.Build()
	specCompile := func(mask map[string][]int) (*ir.Program, error) {
		p, _ := w.Build()
		spec := jit.SpecSet(mask)
		key := jit.KeySpec(p, cfg, model, spec)
		entry, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
			res, cerr := jit.CompileProgramWith(p, cfg, model, jit.CompileOptions{Spec: spec})
			if cerr != nil {
				return nil, cerr
			}
			return &jit.CacheEntry{Program: p, Result: res}, nil
		})
		if err != nil {
			return nil, err
		}
		return entry.Program, nil
	}

	prog, err := specCompile(nil)
	if err != nil {
		t.Fatal(err)
	}
	em := prog.MethodByName(entryM.QualifiedName())

	mach := machine.New(model, prog)
	mach.EnableTiering(machine.TierPolicy{
		T1Blocks: 64, T2Blocks: 64, MinCheckExecs: 8, SpecRecompileBudget: 1,
	}, specCompile)

	want := w.Ref(n)
	for rep := 0; rep < 6; rep++ {
		out, err := mach.Call(em.Fn, n)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if out.Exc != rt.ExcNone || out.Value != want {
			t.Fatalf("rep %d: outcome %+v, want value %d", rep, out, want)
		}
	}

	rep := mach.TierReport()
	if len(rep.BudgetExhausted) == 0 {
		t.Fatalf("budget of 1 never exhausted despite repeated deopts (events: %+v)", rep.Events)
	}
	sawEvent := false
	promotes := 0
	for _, ev := range rep.Events {
		if ev.Kind == "spec-budget-exhausted" {
			sawEvent = true
		}
		if ev.Kind == "promote-t2" {
			promotes++
		}
	}
	if !sawEvent {
		t.Fatal("no spec-budget-exhausted event in the tier log")
	}
	if promotes > 1 {
		t.Fatalf("budget of 1 allowed %d speculative recompiles", promotes)
	}
}
