package bench

import (
	"fmt"
	"time"

	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
)

// Telemetry plumbing shared by the sweep modes: the metrics registry names,
// the per-cell flight-recorder attachment, and the merge of recorded events
// into the Perfetto trace.
//
// Determinism contract: everything published here is derived from simulated
// quantities (cycles, dynamic counters, logical clocks), never from host
// timing — with two deliberate exceptions registered as VOLATILE metrics
// (compile host time, single-flight waits), which obs.Registry.Snapshot
// excludes unless explicitly asked for. The deterministic snapshot of the
// same sweep is therefore byte-identical at any parallelism and on either
// engine; the telemetry tests in telemetry_test.go pin that.

// registerSweepMetrics pre-registers the main sweep's metric set in fixed
// order, so snapshots render identically no matter which cells ran or in
// what order the counters were touched.
func registerSweepMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("bench.cells", "measured (config, workload) cells")
	reg.Counter("bench.cell_errors", "cells that degraded to ERROR entries")
	reg.Histogram("bench.cell_cycles", "simulated cycles per cell",
		[]int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000})
	reg.Counter("engine.instrs", "dynamic instructions executed")
	reg.Counter("engine.explicit_checks", "explicit null check instructions executed")
	reg.Counter("engine.implicit_sites", "dereferences executed at implicit-check sites")
	reg.Counter("engine.bound_checks", "dynamic array bound checks")
	reg.Counter("engine.loads", "dynamic loads")
	reg.Counter("engine.stores", "dynamic stores")
	reg.Counter("engine.calls", "dynamic calls")
	reg.Counter("engine.traps_taken", "hardware traps that became NPEs")
	reg.Counter("engine.thrown_software", "exceptions raised by explicit checks")
	reg.Counter("engine.blocks", "block entries (profiled cells only)")
	reg.Counter("static.implicit", "checks compiled to implicit trap sites")
	reg.Counter("static.explicit_left", "explicit checks surviving compilation")
	reg.Counter("static.eliminated", "checks eliminated at compile time")
	reg.Counter("attr.implicit_cycles", "cycles attributed to implicit-check sites")
	reg.Counter("attr.explicit_cycles", "cycles attributed to explicit checks")
	reg.Counter("attr.trap_cycles", "cycles attributed to trap dispatch")
	reg.Counter("attr.guard_free_cycles", "cycles outside any null-check machinery")
	registerCacheMetrics(reg)
}

func registerCacheMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("cache.lookups", "compile cache lookups")
	reg.Counter("cache.hits", "compile cache hits")
	reg.Counter("cache.misses", "compile cache misses")
	reg.Counter("cache.evictions", "compile cache capacity evictions")
	reg.Counter("cache.injected_fault_repairs", "injected cache faults repaired by recompiling")
	reg.VolatileCounter("cache.single_flight_waits", "lookups that blocked on an in-flight compile (interleaving-dependent)")
}

// registerTierMetrics pre-registers the tiered sweep's counters.
func registerTierMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("tier.promotions_t1", "interpreter -> closure promotions")
	reg.Counter("tier.promotions_t2", "closure -> speculative promotions")
	reg.Counter("tier.osr_entries", "mid-invocation on-stack replacements")
	reg.Counter("tier.deopts", "speculation guards fired")
	reg.Counter("tier.spec_live", "methods at tier 2 at end of cell")
	reg.Counter("tier.budget_exhausted", "methods parked by the recompile budget")
	reg.VolatileCounter("tier.compile_host_us", "host microseconds spent in tier recompiles")
	registerCacheMetrics(reg)
}

// registerGovernorMetrics pre-registers the degradation sweep's counters.
func registerGovernorMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("governor.site_execs", "marked-site executions observed")
	reg.Counter("governor.site_nulls", "null outcomes at marked sites")
	reg.Counter("governor.demotions", "sites demoted to explicit checks")
	reg.Counter("governor.recompiles", "governed recompiles performed")
	reg.Counter("governor.backoffs", "traps swallowed by backoff windows")
	reg.Counter("governor.pins", "methods pinned conservative")
	reg.VolatileCounter("governor.compile_host_us", "host microseconds spent in governed recompiles")
	registerCacheMetrics(reg)
}

// publishCellMetrics folds one finished main-sweep cell into the registry.
func publishCellMetrics(reg *obs.Registry, c *Cell) {
	if reg == nil || c == nil {
		return
	}
	reg.Counter("bench.cells", "").Add(1)
	if c.Failed() {
		reg.Counter("bench.cell_errors", "").Add(1)
		return
	}
	reg.Histogram("bench.cell_cycles", "", nil).Observe(c.Cycles)
	st := c.Exec
	reg.Counter("engine.instrs", "").Add(st.Instrs)
	reg.Counter("engine.explicit_checks", "").Add(st.ExplicitChecks)
	reg.Counter("engine.implicit_sites", "").Add(st.ImplicitSites)
	reg.Counter("engine.bound_checks", "").Add(st.BoundChecks)
	reg.Counter("engine.loads", "").Add(st.Loads)
	reg.Counter("engine.stores", "").Add(st.Stores)
	reg.Counter("engine.calls", "").Add(st.Calls)
	reg.Counter("engine.traps_taken", "").Add(st.TrapsTaken)
	reg.Counter("engine.thrown_software", "").Add(st.ThrownSoftware)
	if c.Profile != nil {
		reg.Counter("engine.blocks", "").Add(c.Profile.BlocksEntered)
	}
	reg.Counter("static.implicit", "").Add(int64(c.Static.Checks.Implicit))
	reg.Counter("static.explicit_left", "").Add(int64(c.Static.Checks.ExplicitRemaining))
	reg.Counter("static.eliminated", "").Add(int64(c.Static.Checks.Eliminated))
	if a := c.Attr; a != nil {
		reg.Counter("attr.implicit_cycles", "").Add(a.ImplicitCycles)
		reg.Counter("attr.explicit_cycles", "").Add(a.ExplicitCycles)
		reg.Counter("attr.trap_cycles", "").Add(a.TrapCycles)
		reg.Counter("attr.guard_free_cycles", "").Add(a.GuardFree)
	}
}

// publishCacheMetrics folds one sweep's cache traffic into the registry.
func publishCacheMetrics(reg *obs.Registry, st jit.CacheStats) {
	if reg == nil {
		return
	}
	reg.Counter("cache.lookups", "").Add(st.Lookups)
	reg.Counter("cache.hits", "").Add(st.Hits)
	reg.Counter("cache.misses", "").Add(st.Misses)
	reg.Counter("cache.evictions", "").Add(st.Evictions)
	reg.Counter("cache.injected_fault_repairs", "").Add(st.InjectedFaults)
	reg.VolatileCounter("cache.single_flight_waits", "").Add(st.SingleFlightWaits)
}

// noteCacheEvents appends one sweep's aggregated cache lifecycle events
// (evictions, chaos faults) to the timeline as notes. EventLog is sorted by
// (key, kind), so the notes are deterministic.
func noteCacheEvents(tl *obs.Timeline, label string, cache *jit.Cache) {
	if tl == nil || cache == nil {
		return
	}
	for _, ev := range cache.EventLog() {
		tl.Note(fmt.Sprintf("cache[%s] %s %s x%d", label, ev.Kind, ev.Key, ev.Count))
	}
}

// attachRecorder wires a flight recorder (and, for untiered machines,
// trap-cost attribution) into a cell's machine. Returns nil when the sweep
// carries no timeline, keeping the default path recorder-free.
func attachRecorder(tl *obs.Timeline, mach *machine.Machine, attribute bool) *obs.Recorder {
	if tl == nil {
		return nil
	}
	rec := obs.NewRecorder(0)
	mach.Recorder = rec
	if attribute {
		mach.EnableAttribution()
	}
	return rec
}

// repWindow is one invocation's wall span and step range, for placing
// logically-clocked events inside a multi-invocation cell's trace lane.
type repWindow struct {
	start  time.Time
	dur    time.Duration
	s0, s1 int64
}

// publishRepTimeline lands a multi-invocation cell's recorded events in the
// timeline and — when tracing — replays each event as an instant marker
// positioned within its invocation's span at its step fraction.
func publishRepTimeline(tl *obs.Timeline, tr *obs.Trace, name string, rec *obs.Recorder,
	attr *obs.Attribution, tid int64, wins []repWindow) {
	if rec == nil {
		return
	}
	tl.Add(name, rec, attr)
	if tr == nil {
		return
	}
	for _, e := range rec.Events() {
		var at time.Time
		switch {
		case e.Invocation >= 1 && e.Invocation <= len(wins):
			w := wins[e.Invocation-1]
			at = w.start
			if span := w.s1 - w.s0; span > 0 && e.Step > w.s0 {
				frac := float64(e.Step-w.s0) / float64(span)
				if frac > 1 {
					frac = 1
				}
				at = w.start.Add(time.Duration(float64(w.dur) * frac))
			}
		case len(wins) > 0:
			// The invocation never finished (an errored rep): pin the marker
			// to the last recorded window's start.
			at = wins[len(wins)-1].start
		default:
			continue
		}
		args := map[string]any{"invocation": e.Invocation, "step": e.Step}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		tr.Instant(tid, e.Cat, e.Kind+" "+e.Subject, at, args)
	}
}

// publishTierMetrics folds one tiered cell's controller report into the
// registry.
func publishTierMetrics(reg *obs.Registry, r machine.TierReport) {
	if reg == nil {
		return
	}
	var t1, t2 int64
	for _, ev := range r.Events {
		switch ev.Kind {
		case "promote-t1":
			t1++
		case "promote-t2":
			t2++
		}
	}
	reg.Counter("tier.promotions_t1", "").Add(t1)
	reg.Counter("tier.promotions_t2", "").Add(t2)
	reg.Counter("tier.osr_entries", "").Add(int64(r.OSREntries))
	reg.Counter("tier.deopts", "").Add(int64(r.Deopts))
	reg.Counter("tier.spec_live", "").Add(int64(r.SpecLive))
	reg.Counter("tier.budget_exhausted", "").Add(int64(len(r.BudgetExhausted)))
	reg.VolatileCounter("tier.compile_host_us", "").Add(int64(r.CompileHost / time.Microsecond))
}

// publishGovernorMetrics folds one degradation cell's governor report into
// the registry.
func publishGovernorMetrics(reg *obs.Registry, r machine.GovernorReport) {
	if reg == nil {
		return
	}
	reg.Counter("governor.site_execs", "").Add(r.SiteExecs)
	reg.Counter("governor.site_nulls", "").Add(r.SiteNulls)
	reg.Counter("governor.demotions", "").Add(int64(r.Demotions))
	reg.Counter("governor.recompiles", "").Add(int64(r.Recompiles))
	reg.Counter("governor.backoffs", "").Add(r.Backoffs)
	reg.Counter("governor.pins", "").Add(int64(len(r.Pinned)))
	reg.VolatileCounter("governor.compile_host_us", "").Add(int64(r.CompileHost / time.Microsecond))
}

// publishTimeline lands one cell's recorded events (and optional ledger) in
// the timeline and — when the sweep also traces — replays each event as a
// Perfetto instant marker on the cell's lane. The recorder itself holds
// logical clocks only; the wall position is derived here as the event's step
// fraction of the measured exec span, so the instants line up with the span
// they annotate without the recorder ever touching wall time.
func publishTimeline(tl *obs.Timeline, tr *obs.Trace, name string, rec *obs.Recorder,
	attr *obs.Attribution, tid int64, execStart time.Time, execDur time.Duration, steps int64) {
	if rec == nil {
		return
	}
	tl.Add(name, rec, attr)
	if tr == nil {
		return
	}
	for _, e := range rec.Events() {
		at := execStart
		if steps > 0 && e.Step > 0 {
			frac := float64(e.Step) / float64(steps)
			if frac > 1 {
				frac = 1
			}
			at = execStart.Add(time.Duration(float64(execDur) * frac))
		}
		args := map[string]any{"invocation": e.Invocation, "step": e.Step}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		tr.Instant(tid, e.Cat, e.Kind+" "+e.Subject, at, args)
	}
}
