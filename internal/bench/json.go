package bench

import (
	"encoding/json"
	"time"

	"trapnull/internal/machine"
	"trapnull/internal/obs"
)

// jsonCell is the export shape of one measurement.
type jsonCell struct {
	Workload       string  `json:"workload"`
	Config         string  `json:"config"`
	Cycles         int64   `json:"cycles"`
	SimSeconds     float64 `json:"sim_seconds"`
	CompileNullUS  int64   `json:"compile_nullcheck_us"`
	CompileOtherUS int64   `json:"compile_other_us"`
	ExplicitChecks int64   `json:"dyn_explicit_checks"`
	ImplicitSites  int64   `json:"dyn_implicit_sites"`
	BoundChecks    int64   `json:"dyn_bound_checks"`
	Loads          int64   `json:"dyn_loads"`
	Stores         int64   `json:"dyn_stores"`
	TrapsTaken     int64   `json:"dyn_traps_taken"`
	StaticImplicit int     `json:"static_implicit"`
	StaticExplicit int     `json:"static_explicit_left"`
	Eliminated     int     `json:"static_eliminated"`
	// Fates and Profile are the obs-layer extensions: the per-cell
	// null-check fate histogram (Options.Remarks) and the hot-block
	// execution summary (Options.Profile). Both are omitted entirely when
	// the layer is off, so obs-disabled JSON is byte-identical to the
	// pre-obs shape; both are fixed-order structs with sorted slices, so
	// two marshals of the same sweep are byte-identical.
	Fates   *obs.FateCounts     `json:"check_fates,omitempty"`
	Profile *obs.ProfileSummary `json:"profile,omitempty"`
	// TrapCost is the per-trap-site cycle ledger (Options.Timeline); its
	// buckets sum exactly to Cycles. Omitted when telemetry is off.
	TrapCost *obs.Attribution `json:"trap_cost,omitempty"`
	// Error carries the deterministic failure reason of an error cell; the
	// measurement fields are zero when it is set.
	Error string `json:"error,omitempty"`
}

// jsonCacheStats is the export shape of one matrix's compile-cache traffic.
// Fixed field order keeps marshals of the same report byte-identical.
type jsonCacheStats struct {
	Matrix    string `json:"matrix"`
	Lookups   int64  `json:"lookups"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
	// InjectedFaults counts chaos cache faults repaired by recompiling;
	// omitted when zero so fault-free JSON keeps its pre-chaos shape.
	InjectedFaults int64 `json:"injected_faults,omitempty"`
}

// jsonReport is the export shape of a full run.
type jsonReport struct {
	GeneratedBy string `json:"generated_by"`
	// CompileCache lists per-matrix cache traffic in matrix order; omitted
	// entirely when the cache is off, so cache-off JSON is byte-identical to
	// the pre-cache shape.
	CompileCache []jsonCacheStats      `json:"compile_cache,omitempty"`
	Matrices     map[string][]jsonCell `json:"matrices"`
}

// JSON renders the whole report as machine-readable JSON, for plotting or
// external analysis.
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{
		GeneratedBy: "trapnull benchtab",
		Matrices:    map[string][]jsonCell{},
	}
	add := func(name string, m *Matrix) {
		if m.CompileCache != nil {
			st := *m.CompileCache
			out.CompileCache = append(out.CompileCache, jsonCacheStats{
				Matrix:         name,
				Lookups:        st.Lookups,
				Hits:           st.Hits,
				Misses:         st.Misses,
				Evictions:      st.Evictions,
				InjectedFaults: st.InjectedFaults,
			})
		}
		var cells []jsonCell
		for _, cfg := range m.Configs {
			for _, w := range m.Workloads {
				c := m.Cell(cfg.Name, w.Name)
				if c == nil {
					continue
				}
				if c.Failed() {
					cells = append(cells, jsonCell{
						Workload: c.Workload,
						Config:   c.Config,
						Error:    c.Err,
					})
					continue
				}
				cells = append(cells, jsonCell{
					Workload:       c.Workload,
					Config:         c.Config,
					Cycles:         c.Cycles,
					SimSeconds:     c.SimSeconds,
					CompileNullUS:  int64(c.CompileNull / time.Microsecond),
					CompileOtherUS: int64(c.CompileOther / time.Microsecond),
					ExplicitChecks: c.Exec.ExplicitChecks,
					ImplicitSites:  c.Exec.ImplicitSites,
					BoundChecks:    c.Exec.BoundChecks,
					Loads:          c.Exec.Loads,
					Stores:         c.Exec.Stores,
					TrapsTaken:     c.Exec.TrapsTaken,
					StaticImplicit: c.Static.Checks.Implicit,
					StaticExplicit: c.Static.Checks.ExplicitRemaining,
					Eliminated:     c.Static.Checks.Eliminated,
					Fates:          c.Fates,
					Profile:        c.Profile,
					TrapCost:       c.Attr,
				})
			}
		}
		out.Matrices[name] = cells
	}
	add("windows_jbytemark", r.WinJB)
	add("windows_specjvm98", r.WinSpec)
	add("aix_jbytemark", r.AIXJB)
	add("aix_specjvm98", r.AIXSpec)
	return json.MarshalIndent(out, "", "  ")
}

// jsonTierCell is the export shape of one tiered measurement.
type jsonTierCell struct {
	Workload      string `json:"workload"`
	Policy        string `json:"policy"`
	Reps          int    `json:"reps"`
	FirstCycles   int64  `json:"first_cycles"`
	SteadyCycles  int64  `json:"steady_cycles"`
	TotalCycles   int64  `json:"total_cycles"`
	CompileToPeak int64  `json:"compile_to_peak_us"`
	PromotionsT1  int    `json:"promotions_t1"`
	PromotionsT2  int    `json:"promotions_t2"`
	Deopts        int    `json:"deopts"`
	SpecLive      int    `json:"spec_live"`
	OSREntries    int    `json:"osr_entries"`
	// BudgetExhausted and Events surface the rest of machine.TierReport:
	// parked methods (sorted) and the full decision log in occurrence order.
	BudgetExhausted []string            `json:"budget_exhausted,omitempty"`
	Events          []machine.TierEvent `json:"events,omitempty"`
	Error           string              `json:"error,omitempty"`
}

// jsonTieredReport is the export shape of a tiered run.
type jsonTieredReport struct {
	GeneratedBy string                    `json:"generated_by"`
	Matrices    map[string][]jsonTierCell `json:"matrices"`
}

// JSON renders the tiered report as machine-readable JSON. Cells appear in
// workload-major, policy-minor order, so two marshals of the same sweep are
// byte-identical up to the host compile timings.
func (r *TieredReport) JSON() ([]byte, error) {
	out := jsonTieredReport{
		GeneratedBy: "trapnull benchtab -tier",
		Matrices:    map[string][]jsonTierCell{},
	}
	add := func(name string, m *TierMatrix) {
		if m == nil {
			return
		}
		var cells []jsonTierCell
		for _, w := range m.Workloads {
			for _, pol := range m.Policies {
				c := m.Cell(pol, w.Name)
				if c == nil {
					continue
				}
				if c.Failed() {
					cells = append(cells, jsonTierCell{Workload: c.Workload, Policy: c.Policy, Error: c.Err})
					continue
				}
				cells = append(cells, jsonTierCell{
					Workload:        c.Workload,
					Policy:          c.Policy,
					Reps:            c.Reps,
					FirstCycles:     c.FirstCycles,
					SteadyCycles:    c.SteadyCycles,
					TotalCycles:     c.TotalCycles,
					CompileToPeak:   int64(c.CompileToPeak / time.Microsecond),
					PromotionsT1:    c.PromotionsT1,
					PromotionsT2:    c.PromotionsT2,
					Deopts:          c.Deopts,
					SpecLive:        c.SpecLive,
					OSREntries:      c.OSREntries,
					BudgetExhausted: c.BudgetExhausted,
					Events:          c.Events,
				})
			}
		}
		out.Matrices[name] = cells
	}
	add("windows_tiered", r.Win)
	add("aix_tiered", r.AIX)
	return json.MarshalIndent(out, "", "  ")
}

// jsonDegradationCell is the export shape of one degradation measurement.
type jsonDegradationCell struct {
	Workload     string `json:"workload"`
	Policy       string `json:"policy"`
	Reps         int    `json:"reps"`
	FirstCycles  int64  `json:"first_cycles"`
	SteadyCycles int64  `json:"steady_cycles"`
	SteadyTraps  int64  `json:"steady_traps"`
	SteadyChecks int64  `json:"steady_checks"`
	Demotions    int    `json:"demotions"`
	Recompiles   int    `json:"recompiles"`
	Pinned       int    `json:"pinned"`
	// The remaining fields surface machine.GovernorReport: the canonical
	// per-site profile totals, swallowed-trap count, pinned method names
	// (sorted) and the full demotion decision log in occurrence order.
	SiteExecs     int64                   `json:"site_execs"`
	SiteNulls     int64                   `json:"site_nulls"`
	Backoffs      int64                   `json:"backoffs"`
	PinnedMethods []string                `json:"pinned_methods,omitempty"`
	Events        []machine.GovernorEvent `json:"events,omitempty"`
	Error         string                  `json:"error,omitempty"`
}

// jsonDegradationReport is the export shape of a degradation run.
type jsonDegradationReport struct {
	GeneratedBy string                           `json:"generated_by"`
	Matrices    map[string][]jsonDegradationCell `json:"matrices"`
}

// JSON renders the degradation report as machine-readable JSON. Cells appear
// in workload-major, policy-minor order, so two marshals of the same sweep
// are byte-identical (the measurements themselves are deterministic).
func (r *DegradationReport) JSON() ([]byte, error) {
	out := jsonDegradationReport{
		GeneratedBy: "trapnull benchtab -degradation",
		Matrices:    map[string][]jsonDegradationCell{},
	}
	add := func(name string, m *DegradationMatrix) {
		if m == nil {
			return
		}
		var cells []jsonDegradationCell
		for _, w := range m.Workloads {
			for _, pol := range m.Policies {
				c := m.Cell(pol, w.Name)
				if c == nil {
					continue
				}
				if c.Failed() {
					cells = append(cells, jsonDegradationCell{Workload: c.Workload, Policy: c.Policy, Error: c.Err})
					continue
				}
				cells = append(cells, jsonDegradationCell{
					Workload:      c.Workload,
					Policy:        c.Policy,
					Reps:          c.Reps,
					FirstCycles:   c.FirstCycles,
					SteadyCycles:  c.SteadyCycles,
					SteadyTraps:   c.SteadyTraps,
					SteadyChecks:  c.SteadyChecks,
					Demotions:     c.Demotions,
					Recompiles:    c.Recompiles,
					Pinned:        c.Pinned,
					SiteExecs:     c.SiteExecs,
					SiteNulls:     c.SiteNulls,
					Backoffs:      c.Backoffs,
					PinnedMethods: c.PinnedMethods,
					Events:        c.Events,
				})
			}
		}
		out.Matrices[name] = cells
	}
	add("windows_degradation", r.Win)
	add("aix_degradation", r.AIX)
	return json.MarshalIndent(out, "", "  ")
}
