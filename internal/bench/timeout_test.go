package bench

import (
	"strings"
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/workloads"
)

// TestCellTimeoutDegradesDeterministically: a cell that exceeds the
// wall-clock deadline is cancelled cooperatively and renders as the
// deterministic ERROR(timeout) entry; the sweep completes instead of
// hanging.
func TestCellTimeoutDegradesDeterministically(t *testing.T) {
	// A storm sized to run for seconds on the simulated machine; the 30ms
	// deadline fires long before it finishes.
	w := workloads.TrapStorm()
	w.N = 50_000_000

	start := time.Now()
	m, err := Run(arch.IA32Win(), []jit.Config{jit.ConfigPhase1Phase2()},
		[]*workloads.Workload{w}, Options{CellTimeout: 30 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timed-out sweep took %v — the deadline did not cancel the cell", elapsed)
	}
	if err == nil {
		t.Fatal("sweep with a timed-out cell reported success")
	}
	c := m.Cell(jit.ConfigPhase1Phase2().Name, w.Name)
	if c == nil {
		t.Fatal("missing cell")
	}
	if c.Err != "timeout" {
		t.Fatalf("cell error %q, want the deterministic \"timeout\"", c.Err)
	}
	if c.ErrText() != "ERROR(timeout)" {
		t.Fatalf("rendered error %q, want ERROR(timeout)", c.ErrText())
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("sweep error does not name the timeout: %v", err)
	}

	// A comfortable deadline leaves the quick-size cell untouched.
	w2 := workloads.TrapStorm()
	if _, err := Run(arch.IA32Win(), []jit.Config{jit.ConfigPhase1Phase2()},
		[]*workloads.Workload{w2}, Options{Quick: true, CellTimeout: 30 * time.Second}); err != nil {
		t.Fatalf("quick cell failed under a generous deadline: %v", err)
	}
}
