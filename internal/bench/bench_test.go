package bench

import (
	"strings"
	"testing"
)

// report runs the full sweep once (quick sizes) and is shared by the shape
// tests below.
var cachedReport *Report

func getReport(t *testing.T) *Report {
	t.Helper()
	if cachedReport == nil {
		r, err := RunAll(Options{Quick: true})
		if err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		cachedReport = r
	}
	return cachedReport
}

func TestRunAllProducesAllCells(t *testing.T) {
	r := getReport(t)
	for _, m := range []*Matrix{r.WinJB, r.WinSpec, r.AIXJB, r.AIXSpec} {
		for _, cfg := range m.Configs {
			for _, w := range m.Workloads {
				c := m.Cell(cfg.Name, w.Name)
				if c == nil {
					t.Fatalf("missing cell %s/%s", cfg.Name, w.Name)
				}
				if c.Cycles <= 0 {
					t.Fatalf("cell %s/%s has no cycles", cfg.Name, w.Name)
				}
			}
		}
	}
}

// TestShapeConfigOrdering verifies the paper's headline ordering on every
// Windows workload: the full algorithm never loses to the weaker
// configurations.
func TestShapeConfigOrdering(t *testing.T) {
	r := getReport(t)
	for _, m := range []*Matrix{r.WinJB, r.WinSpec} {
		for _, w := range m.Workloads {
			full := m.Cell("NewNullCheck(Phase1+2)", w.Name).Cycles
			p1 := m.Cell("NewNullCheck(Phase1)", w.Name).Cycles
			old := m.Cell("OldNullCheck", w.Name).Cycles
			trap := m.Cell("NoNullOpt(Trap)", w.Name).Cycles
			noTrap := m.Cell("NoNullOpt(NoTrap)", w.Name).Cycles
			if !(full <= p1 && p1 <= old && old <= trap && trap <= noTrap) {
				t.Errorf("%s: ordering violated: full=%d p1=%d old=%d trap=%d notrap=%d",
					w.Name, full, p1, old, trap, noTrap)
			}
		}
	}
}

// TestShapePhase1DominatesOnMatrixKernels: the paper's §5.1 finding — the
// architecture-independent optimization is what moves Assignment, NeuralNet
// and LUDecomposition.
func TestShapePhase1DominatesOnMatrixKernels(t *testing.T) {
	r := getReport(t)
	for _, name := range []string{"Assignment", "NeuralNet", "LUDecomposition"} {
		gain := improvement(r.WinJB, "OldNullCheck", "NewNullCheck(Phase1)", name)
		if gain < 2 {
			t.Errorf("%s: phase 1 gain over old algorithm = %.1f%%, want noticeable", name, gain)
		}
	}
}

// TestShapePhase2HelpsMTRT: §5.1's other finding — phase 2 pays on mtrt's
// inlined accessors.
func TestShapePhase2HelpsMTRT(t *testing.T) {
	r := getReport(t)
	full := r.WinSpec.Cell("NewNullCheck(Phase1+2)", "MTRT").Cycles
	p1 := r.WinSpec.Cell("NewNullCheck(Phase1)", "MTRT").Cycles
	if full >= p1 {
		t.Errorf("MTRT: phase 2 added nothing: full=%d p1=%d", full, p1)
	}
}

// TestShapeTrapHelpsCheckDenseKernels: hardware trap alone must pay on the
// check-dense kernels (Table 1's Bitfield row et al.).
func TestShapeTrapHelpsCheckDenseKernels(t *testing.T) {
	r := getReport(t)
	for _, name := range []string{"Bitfield", "HuffmanCompression", "NumericSort"} {
		gain := improvement(r.WinJB, "NoNullOpt(NoTrap)", "NoNullOpt(Trap)", name)
		if gain <= 0 {
			t.Errorf("%s: trap-based checks gained %.1f%%, want > 0", name, gain)
		}
	}
}

// TestShapeFourierInsensitive: Table 1 shows Fourier flat across all
// configurations (math dominates).
func TestShapeFourierInsensitive(t *testing.T) {
	r := getReport(t)
	gain := improvement(r.WinJB, "NoNullOpt(NoTrap)", "NewNullCheck(Phase1+2)", "Fourier")
	if gain > 15 {
		t.Errorf("Fourier gained %.1f%%; the paper's kernel is insensitive (<~5%%)", gain)
	}
}

// TestShapeAIXSpeculation: Figure 14 — speculation ≥ no-speculation
// everywhere, and strictly better on the kernel with the Figure 6 pattern
// (FPEmulation here; the paper's strongest case was Neural Net, whose
// store-then-read shape our FPEmulation carries — see EXPERIMENTS.md).
func TestShapeAIXSpeculation(t *testing.T) {
	r := getReport(t)
	for _, w := range r.AIXJB.Workloads {
		spec := r.AIXJB.Cell("Speculation", w.Name).Cycles
		nospec := r.AIXJB.Cell("NoSpeculation", w.Name).Cycles
		if spec > nospec {
			t.Errorf("%s: speculation slower: %d > %d", w.Name, spec, nospec)
		}
	}
	fp := improvement(r.AIXJB, "NoSpeculation", "Speculation", "FPEmulation")
	if fp <= 0 {
		t.Errorf("FPEmulation: speculation gain = %.1f%%, want > 0 (paper §5.4)", fp)
	}
}

// TestShapeIllegalImplicitBeatsLegalNoSpec: Tables 6/7 — assuming every
// access traps (illegally) is at least as fast as keeping explicit checks.
func TestShapeIllegalImplicitBeatsLegalNoSpec(t *testing.T) {
	r := getReport(t)
	for _, m := range []*Matrix{r.AIXJB, r.AIXSpec} {
		for _, w := range m.Workloads {
			ill := m.Cell("IllegalImplicit(NoSpec)", w.Name).Cycles
			leg := m.Cell("NoSpeculation", w.Name).Cycles
			if ill > leg {
				t.Errorf("%s: illegal implicit slower than explicit checks: %d > %d",
					w.Name, ill, leg)
			}
		}
	}
}

// TestShapeAIXDeltasSmallerThanIA32: §5.4 — the 1-cycle conditional trap
// makes the AIX improvement for the new algorithm smaller than on IA32 for
// the check-sensitive kernels.
func TestShapeAIXDeltasSmallerThanIA32(t *testing.T) {
	r := getReport(t)
	sumIA, sumAIX := 0.0, 0.0
	for _, name := range []string{"NumericSort", "Bitfield", "HuffmanCompression", "IDEAEncryption"} {
		sumIA += improvement(r.WinJB, "NoNullOpt(NoTrap)", "NewNullCheck(Phase1+2)", name)
		sumAIX += improvement(r.AIXJB, "NoNullCheckOpt", "Speculation", name)
	}
	if sumAIX >= sumIA {
		t.Errorf("AIX improvements (%.1f%%) should be smaller than IA32's (%.1f%%)", sumAIX, sumIA)
	}
}

func TestAllArtifactsRender(t *testing.T) {
	r := getReport(t)
	arts := r.Artifacts()
	for _, name := range ArtifactNames() {
		fn, ok := arts[name]
		if !ok {
			t.Fatalf("artifact %s missing", name)
		}
		out := fn()
		if len(out) == 0 || !strings.Contains(out, "\n") {
			t.Fatalf("artifact %s rendered empty", name)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := getReport(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"windows_jbytemark", "aix_specjvm98", "dyn_explicit_checks", "Assignment"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %q", want)
		}
	}
}
