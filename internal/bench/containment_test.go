package bench

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/workloads"
)

// poisonedWorkload builds a workload whose builder panics outright — the
// harshest failure a cell can inject into the worker pool.
func poisonedWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name:  "Poisoned",
		Suite: "test",
		Build: func() (*ir.Program, *ir.Method) {
			panic("deliberately poisoned workload")
		},
		N: 1, TestN: 1,
		Ref: func(n int64) int64 { return 0 },
	}
}

// TestPanickingWorkloadDoesNotAbortSweep: a panicking cell degrades to a
// deterministic ERROR entry while every other cell of the parallel sweep is
// still measured; Run reports the failure without dropping the matrix.
func TestPanickingWorkloadDoesNotAbortSweep(t *testing.T) {
	model := arch.IA32Win()
	ws := append(workloads.JBYTEmark()[:3], poisonedWorkload())
	cfgs := jit.WindowsConfigs()[:3]

	m, err := Run(model, cfgs, ws, Options{Quick: true, CompileReps: 1, Parallelism: 4})
	if err == nil {
		t.Fatal("expected an aggregate sweep error")
	}
	if m == nil {
		t.Fatal("matrix must be returned alongside the error")
	}
	if !strings.Contains(err.Error(), "Poisoned") || !strings.Contains(err.Error(), "panic") {
		t.Errorf("aggregate error does not identify the failing cell: %v", err)
	}

	for _, cfg := range cfgs {
		for _, w := range ws {
			c := m.Cell(cfg.Name, w.Name)
			if c == nil {
				t.Fatalf("%s/%s: missing cell", cfg.Name, w.Name)
			}
			if w.Name == "Poisoned" {
				if !c.Failed() {
					t.Errorf("%s/Poisoned: expected error cell", cfg.Name)
				}
				if c.Err != "panic: deliberately poisoned workload" {
					t.Errorf("%s/Poisoned: Err = %q, want deterministic panic reason", cfg.Name, c.Err)
				}
				if got := c.ErrText(); got != "ERROR(panic: deliberately poisoned workload)" {
					t.Errorf("%s/Poisoned: ErrText = %q", cfg.Name, got)
				}
			} else {
				if c.Failed() {
					t.Errorf("%s/%s: healthy cell poisoned: %s", cfg.Name, w.Name, c.Err)
				}
				if c.Cycles == 0 {
					t.Errorf("%s/%s: healthy cell not measured", cfg.Name, w.Name)
				}
			}
		}
	}
}

// TestErrorCellsRenderDeterministically: the rendered table text of a
// failing sweep must be byte-identical no matter how many workers ran it.
func TestErrorCellsRenderDeterministically(t *testing.T) {
	model := arch.IA32Win()
	render := func(par int) string {
		ws := append(workloads.JBYTEmark()[:3], poisonedWorkload())
		cfgs := jit.WindowsConfigs()[:3]
		m, err := Run(model, cfgs, ws, Options{Quick: true, CompileReps: 1, Parallelism: par})
		if err == nil {
			t.Fatal("expected sweep error")
		}
		var rows []string
		for _, cfg := range cfgs {
			for _, w := range ws {
				rows = append(rows, cellText(m.Cell(cfg.Name, w.Name), func(c *Cell) string { return "ok" }))
			}
		}
		return err.Error() + "\n" + strings.Join(rows, "\n")
	}
	if serial, parallel := render(1), render(4); serial != parallel {
		t.Errorf("error rendering differs by worker count:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestPassErrorReasonIsDeterministic pins the PassError-to-cell-text
// contract: reasons carry no addresses, stacks or timings.
func TestPassErrorReasonIsDeterministic(t *testing.T) {
	pe := &jit.PassError{Pass: "phase2", Func: "main", Panic: "boom", Stack: []byte("stack..."), IRDump: "func..."}
	if got := failReason(pe); got != "panic in phase2: boom" {
		t.Errorf("panic reason = %q", got)
	}
	ve := &jit.PassError{Pass: "cleanup", Func: "main", Err: errFixed("bad edge")}
	if got := failReason(ve); got != "invalid IR after cleanup" {
		t.Errorf("verifier reason = %q", got)
	}
}

type errFixed string

func (e errFixed) Error() string { return string(e) }
