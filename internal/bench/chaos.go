package bench

import (
	"fmt"
	"strings"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/faultinject"
	"trapnull/internal/jit"
	"trapnull/internal/obs"
	"trapnull/internal/workloads"
)

// Chaos harness: the bench mode behind benchtab -chaos. One seed drives a
// deterministic fault-injection schedule (internal/faultinject) over a
// compact sweep of both models: compile passes panic, engines fault
// mid-execution, compile-cache slots are evicted or corrupted, and the
// seeded-burst workload bakes adversarial null bursts into its kernel. The
// contract under all of that:
//
//   - the sweep always completes — every injected fault degrades to a
//     deterministic ERROR(...) cell or a transparently recovered outcome,
//     never a hang or a partial sweep;
//   - the report is byte-for-byte reproducible from the seed, at any worker
//     count and on either execution engine (the schedule keys on semantic
//     coordinates, not timing — see the faultinject package doc).
//
// RunChaos returns an error only for UNEXPECTED failures: cells that failed
// for a reason the injector cannot produce (checksum mismatch, genuine
// machine errors). Injected failures are the point, not a problem.

// ChaosOptions tunes a chaos run.
type ChaosOptions struct {
	// Parallelism bounds concurrent cells (0 = GOMAXPROCS); the report is
	// identical at any setting.
	Parallelism int
	// CellTimeout is the per-cell wall-clock deadline; 0 selects 30s. It is
	// the last-resort backstop — injected faults are all deterministic, so a
	// timeout firing means a genuine hang (and fails the run).
	CellTimeout time.Duration
	// CompileParallelism is forwarded to jit.CompileOptions.Parallelism.
	CompileParallelism int
	// Timeline / Metrics are forwarded to the underlying sweeps: the
	// timeline collects every cell's chaos arm/fire events (and the cache
	// fault log as notes), the registry totals the sweep counters.
	Timeline *obs.Timeline
	Metrics  *obs.Registry
}

func (o ChaosOptions) cellTimeout() time.Duration {
	if o.CellTimeout > 0 {
		return o.CellTimeout
	}
	return 30 * time.Second
}

// ChaosReport is the canonical chaos run record: one line per cell in
// declaration order plus the injector's armed-decision schedule. Render is
// byte-identical across runs with the same seed.
type ChaosReport struct {
	Seed  int64
	Lines []string
	// Schedule is the sorted armed-decision list (faultinject.Schedule).
	Schedule []string
	// Unexpected collects failures the injector cannot explain; empty on a
	// healthy run.
	Unexpected []string
}

// Render produces the canonical report text.
func (r *ChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d cells=%d\n", r.Seed, len(r.Lines))
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	b.WriteString("schedule:\n")
	for _, l := range r.Schedule {
		b.WriteString("  ")
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// chaosSweeps is the compact model × config matrix of the chaos run.
func chaosSweeps(seed int64) []struct {
	model   *arch.Model
	configs []jit.Config
	ws      []*workloads.Workload
} {
	ws := []*workloads.Workload{
		workloads.TrapStorm(),
		workloads.FlappingNull(),
		workloads.PhaseShiftNull(),
		workloads.NullStorm(),
		workloads.SeededBurst(seed),
	}
	return []struct {
		model   *arch.Model
		configs []jit.Config
		ws      []*workloads.Workload
	}{
		{arch.IA32Win(), []jit.Config{ImplicitConfigWin(), ExplicitConfig()}, ws},
		{arch.PPCAIX(), []jit.Config{ImplicitConfigAIX()}, ws},
	}
}

// injectedFailure reports whether a cell error is one the injector produces
// by design (as opposed to a genuine bug surfacing under chaos).
func injectedFailure(reason string) bool {
	return strings.Contains(reason, "injected pass fault") ||
		strings.Contains(reason, "injected step fault")
}

// RunChaos executes the seeded chaos sweep. The returned report is
// byte-for-byte reproducible from the seed; the returned error is non-nil
// only when a cell failed for a reason fault injection cannot explain.
func RunChaos(seed int64, opts ChaosOptions) (*ChaosReport, error) {
	inj := faultinject.New(seed)
	rep := &ChaosReport{Seed: seed}

	for _, sw := range chaosSweeps(seed) {
		// Quick sizes, compile cache forced on (cache faults need a cache to
		// perturb), per-cell deadline as the hang backstop. Run's own
		// aggregate error restates the per-cell Err fields, which the loop
		// below classifies line by line — so it is deliberately dropped.
		m, _ := Run(sw.model, sw.configs, sw.ws, Options{
			Quick:              true,
			Parallelism:        opts.Parallelism,
			CompileCache:       CacheOn,
			CompileParallelism: opts.CompileParallelism,
			CellTimeout:        opts.cellTimeout(),
			Inject:             inj,
			Timeline:           opts.Timeline,
			Metrics:            opts.Metrics,
		})
		for _, cfg := range sw.configs {
			for _, w := range sw.ws {
				c := m.Cell(cfg.Name, w.Name)
				id := sw.model.Name + "/" + cfg.Name + "/" + w.Name
				switch {
				case c == nil:
					rep.Lines = append(rep.Lines, "cell "+id+" MISSING")
					rep.Unexpected = append(rep.Unexpected, id+": missing cell")
				case c.Failed():
					rep.Lines = append(rep.Lines, "cell "+id+" "+c.ErrText())
					if !injectedFailure(c.Err) {
						rep.Unexpected = append(rep.Unexpected, id+": "+c.Err)
					}
				default:
					rep.Lines = append(rep.Lines, fmt.Sprintf(
						"cell %s ok cycles=%d traps=%d checks=%d",
						id, c.Cycles, c.Exec.TrapsTaken, c.Exec.ExplicitChecks))
				}
			}
		}
	}
	rep.Schedule = inj.Schedule()

	if len(rep.Unexpected) > 0 {
		return rep, fmt.Errorf("chaos: %d unexpected failure(s):\n  %s",
			len(rep.Unexpected), strings.Join(rep.Unexpected, "\n  "))
	}
	return rep, nil
}
