package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/workloads"
)

// TestFateConservation is the taxonomy-exhaustiveness contract: for every
// workload × configuration × architecture, every source-IR null check must
// end with exactly one terminal fate — no losses, no double reports. A
// FateLost or a conflict means a pass deleted or moved a check through an
// uninstrumented path.
func TestFateConservation(t *testing.T) {
	combos := []struct {
		model   *arch.Model
		configs []jit.Config
	}{
		{arch.IA32Win(), jit.WindowsConfigs()},
		{arch.PPCAIX(), jit.AIXConfigs()},
	}
	suites := [][]*workloads.Workload{workloads.JBYTEmark(), workloads.SPECjvm98()}
	for _, combo := range combos {
		for _, cfg := range combo.configs {
			for _, suite := range suites {
				for _, w := range suite {
					prog, _ := w.Build()
					want := 0
					for _, m := range prog.Methods {
						if m.Fn != nil {
							want += m.Fn.CountOp(ir.OpNullCheck)
						}
					}
					rem := obs.NewRemarks()
					if _, err := jit.CompileProgramObserved(prog, cfg, combo.model, &jit.Observer{Remarks: rem}); err != nil {
						t.Fatalf("%s/%s on %s: compile: %v", cfg.Name, w.Name, combo.model.Name, err)
					}
					tot := rem.Totals()
					label := cfg.Name + "/" + w.Name + " on " + combo.model.Name
					if tot.Source != want {
						t.Errorf("%s: ledger saw %d source checks, source IR has %d", label, tot.Source, want)
					}
					if !tot.Conserved() {
						t.Errorf("%s: fates do not conserve: tracked=%d fated=%d lost=%d (%+v)",
							label, tot.Tracked(), tot.Fated(), tot.Lost, tot)
					}
					if n := rem.Conflicts(); n != 0 {
						t.Errorf("%s: %d double-fate conflicts", label, n)
					}
				}
			}
		}
	}
}

// TestObsEquivalence is the zero-interference contract: a sweep with the
// whole observability layer on (tracing + remarks + profiling) must produce
// exactly the simulated measurements of a sweep with it off. Only host-clock
// compile durations may differ, so the comparison covers the timing-free
// artifacts plus per-cell cycles and event counts. ci.sh re-runs this test
// under TRAPNULL_ENGINE=switch so both engines are held to it.
func TestObsEquivalence(t *testing.T) {
	off, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("obs-off sweep: %v", err)
	}
	on, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4,
		Trace: obs.NewTrace(), Remarks: true, Profile: true})
	if err != nil {
		t.Fatalf("obs-on sweep: %v", err)
	}

	offArts, onArts := off.Artifacts(), on.Artifacts()
	for _, name := range timingFreeArtifacts {
		if o, n := offArts[name](), onArts[name](); o != n {
			t.Errorf("%s differs with observability on:\n--- off ---\n%s\n--- on ---\n%s", name, o, n)
		}
	}
	pairs := []struct {
		name   string
		off, o *Matrix
	}{
		{"WinJB", off.WinJB, on.WinJB},
		{"WinSpec", off.WinSpec, on.WinSpec},
		{"AIXJB", off.AIXJB, on.AIXJB},
		{"AIXSpec", off.AIXSpec, on.AIXSpec},
	}
	for _, pr := range pairs {
		for _, cfg := range pr.off.Configs {
			for _, w := range pr.off.Workloads {
				oc, nc := pr.off.Cell(cfg.Name, w.Name), pr.o.Cell(cfg.Name, w.Name)
				if oc == nil || nc == nil {
					t.Fatalf("%s %s/%s: missing cell", pr.name, cfg.Name, w.Name)
				}
				if oc.Cycles != nc.Cycles || oc.Exec != nc.Exec {
					t.Errorf("%s %s/%s: observed run measured differently: cycles %d vs %d, exec %+v vs %+v",
						pr.name, cfg.Name, w.Name, oc.Cycles, nc.Cycles, oc.Exec, nc.Exec)
				}
				if nc.Fates == nil && !nc.Failed() {
					t.Errorf("%s %s/%s: obs-on cell has no fate histogram", pr.name, cfg.Name, w.Name)
				}
				if nc.Profile == nil && !nc.Failed() {
					t.Errorf("%s %s/%s: obs-on cell has no profile summary", pr.name, cfg.Name, w.Name)
				}
			}
		}
	}

	// The obs JSON fields must serialize deterministically: two marshals of
	// the same report are byte-identical (no map iteration anywhere).
	j1, err := on.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	j2, err := on.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("two marshals of the same obs-on report differ")
	}
	for _, want := range []string{`"check_fates"`, `"profile"`, `"hot_blocks"`} {
		if !strings.Contains(string(j1), want) {
			t.Errorf("obs-on JSON is missing %s", want)
		}
	}
	// Obs-off JSON must not grow the new fields at all.
	jOff, err := off.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, reject := range []string{`"check_fates"`, `"profile"`} {
		if strings.Contains(string(jOff), reject) {
			t.Errorf("obs-off JSON contains %s; the fields must be omitted when the layer is off", reject)
		}
	}
}

// obsTrial measures one compile+run of the Assignment workload, fully
// observed or fully unobserved.
func obsTrial(t *testing.T, observed bool) time.Duration {
	t.Helper()
	w, err := workloads.ByName("Assignment")
	if err != nil {
		t.Fatal(err)
	}
	cfg := configByName(t, jit.WindowsConfigs(), "NewNullCheck(Phase1+2)")
	model := arch.IA32Win()

	start := time.Now()
	prog, entry := w.Build()
	var ob *jit.Observer
	if observed {
		tr := obs.NewTrace()
		ob = &jit.Observer{Trace: tr, TID: tr.NextTID(), Remarks: obs.NewRemarks()}
	}
	if _, err := jit.CompileProgramObserved(prog, cfg, model, ob); err != nil {
		t.Fatal(err)
	}
	m := machine.New(model, prog)
	if observed {
		m.Profile = obs.NewExecProfile()
	}
	if _, err := m.Call(entry.Fn, 20); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func configByName(t *testing.T, configs []jit.Config, name string) jit.Config {
	t.Helper()
	for _, c := range configs {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no config %q", name)
	return jit.Config{}
}

// TestObsOverheadBudget pins the enabled-overhead acceptance criterion:
// compile+run with tracing, remarks and profiling all on must stay within
// 1.15x of the unobserved path. Host timing is noisy, so the test takes the
// best of several paired trials — it fails only if the overhead exceeds the
// budget on every attempt.
func TestObsOverheadBudget(t *testing.T) {
	const trials = 5
	const budget = 1.15
	obsTrial(t, false) // warm up caches and the JIT's allocation pools
	best := 0.0
	for i := 0; i < trials; i++ {
		off := obsTrial(t, false)
		on := obsTrial(t, true)
		ratio := float64(on) / float64(off)
		if i == 0 || ratio < best {
			best = ratio
		}
		if ratio <= budget {
			return
		}
	}
	t.Errorf("observability overhead %.3fx exceeds %.2fx budget in all %d trials", best, budget, trials)
}

// BenchmarkObsOff and BenchmarkObsOn make the overhead measurable with
// `go test -bench Obs -benchtime 10x ./internal/bench`.
func BenchmarkObsOff(b *testing.B) { benchObs(b, false) }
func BenchmarkObsOn(b *testing.B)  { benchObs(b, true) }

func benchObs(b *testing.B, observed bool) {
	w, err := workloads.ByName("Assignment")
	if err != nil {
		b.Fatal(err)
	}
	var cfg jit.Config
	for _, c := range jit.WindowsConfigs() {
		if c.Name == "NewNullCheck(Phase1+2)" {
			cfg = c
		}
	}
	model := arch.IA32Win()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, entry := w.Build()
		var ob *jit.Observer
		if observed {
			tr := obs.NewTrace()
			ob = &jit.Observer{Trace: tr, TID: tr.NextTID(), Remarks: obs.NewRemarks()}
		}
		if _, err := jit.CompileProgramObserved(prog, cfg, model, ob); err != nil {
			b.Fatal(err)
		}
		m := machine.New(model, prog)
		if observed {
			m.Profile = obs.NewExecProfile()
		}
		if _, err := m.Call(entry.Fn, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelObsDeterminism extends the parallelism contract to the obs
// artifacts: fate histograms and profile summaries must be identical between
// a serial and a 4-worker sweep.
func TestParallelObsDeterminism(t *testing.T) {
	serial, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 1, Remarks: true, Profile: true})
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	parallel, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4, Remarks: true, Profile: true})
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	pairs := []struct {
		name string
		s, p *Matrix
	}{
		{"WinJB", serial.WinJB, parallel.WinJB},
		{"WinSpec", serial.WinSpec, parallel.WinSpec},
		{"AIXJB", serial.AIXJB, parallel.AIXJB},
		{"AIXSpec", serial.AIXSpec, parallel.AIXSpec},
	}
	for _, pr := range pairs {
		for _, cfg := range pr.s.Configs {
			for _, w := range pr.s.Workloads {
				sc, pc := pr.s.Cell(cfg.Name, w.Name), pr.p.Cell(cfg.Name, w.Name)
				if sc == nil || pc == nil {
					t.Fatalf("%s %s/%s: missing cell", pr.name, cfg.Name, w.Name)
				}
				if !reflect.DeepEqual(sc.Fates, pc.Fates) {
					t.Errorf("%s %s/%s: fate histograms differ by worker count:\nserial   %+v\nparallel %+v",
						pr.name, cfg.Name, w.Name, sc.Fates, pc.Fates)
				}
				if !reflect.DeepEqual(sc.Profile, pc.Profile) {
					t.Errorf("%s %s/%s: profile summaries differ by worker count:\nserial   %+v\nparallel %+v",
						pr.name, cfg.Name, w.Name, sc.Profile, pc.Profile)
				}
			}
		}
	}
}
