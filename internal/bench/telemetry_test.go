package bench

import (
	"strings"
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/workloads"
)

// telemetrySweep runs a quick main sweep with the telemetry plane on and
// returns the rendered timeline and (deterministic) metrics snapshot.
func telemetrySweep(t *testing.T, parallelism int) (string, string) {
	t.Helper()
	tl := obs.NewTimeline()
	reg := obs.NewRegistry()
	if _, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: parallelism,
		Timeline: tl, Metrics: reg}); err != nil {
		t.Fatalf("sweep (parallelism %d): %v", parallelism, err)
	}
	return tl.Render(), reg.RenderText(false)
}

// TestTelemetryDeterminism is the central contract of the telemetry plane:
// the rendered timeline and the non-volatile metrics snapshot are semantic
// facts, byte-identical between a serial and a 4-worker sweep and between the
// closure engine and the reference switch interpreter. Logical clocks
// (invocation + step) and registration-order snapshots make this hold; any
// wall time or map iteration leaking into either surface breaks this test.
func TestTelemetryDeterminism(t *testing.T) {
	serialTL, serialMX := telemetrySweep(t, 1)
	parTL, parMX := telemetrySweep(t, 4)
	if serialTL != parTL {
		t.Errorf("timeline differs by worker count:\n--- serial ---\n%s\n--- parallel ---\n%s",
			firstDiffContext(serialTL, parTL), firstDiffContext(parTL, serialTL))
	}
	if serialMX != parMX {
		t.Errorf("metrics snapshot differs by worker count:\n--- serial ---\n%s\n--- parallel ---\n%s", serialMX, parMX)
	}

	// Engine swap: the simulated measurements, and therefore the telemetry
	// built from them, are engine-independent by construction.
	saved := machine.DefaultEngine
	defer func() { machine.DefaultEngine = saved }()
	machine.DefaultEngine = machine.EngineSwitch
	swTL, swMX := telemetrySweep(t, 4)
	if serialTL != swTL {
		t.Errorf("timeline differs by engine:\n--- closure ---\n%s\n--- switch ---\n%s",
			firstDiffContext(serialTL, swTL), firstDiffContext(swTL, serialTL))
	}
	if serialMX != swMX {
		t.Errorf("metrics snapshot differs by engine:\n--- closure ---\n%s\n--- switch ---\n%s", serialMX, swMX)
	}
}

// firstDiffContext trims a big rendering to the neighborhood of its first
// divergence from other, keeping test failures readable.
func firstDiffContext(s, other string) string {
	n := len(s)
	if len(other) < n {
		n = len(other)
	}
	at := n
	for i := 0; i < n; i++ {
		if s[i] != other[i] {
			at = i
			break
		}
	}
	lo, hi := at-200, at+200
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestTieredTelemetryDeterminism extends the byte-identity contract to the
// tiered and degradation sweeps, whose timelines carry the adaptive decisions
// (promotions, deopts, demotions, backoffs) with logical clocks.
func TestTieredTelemetryDeterminism(t *testing.T) {
	run := func(engine machine.Engine) (string, string, string, string) {
		saved := machine.DefaultEngine
		defer func() { machine.DefaultEngine = saved }()
		machine.DefaultEngine = engine
		ttl, treg := obs.NewTimeline(), obs.NewRegistry()
		if _, err := RunTieredAll(TierOptions{Quick: true, Timeline: ttl, Metrics: treg}); err != nil {
			t.Fatalf("tier sweep: %v", err)
		}
		dtl, dreg := obs.NewTimeline(), obs.NewRegistry()
		if _, err := RunDegradationAll(DegradationOptions{Quick: true, Timeline: dtl, Metrics: dreg}); err != nil {
			t.Fatalf("degradation sweep: %v", err)
		}
		return ttl.Render(), treg.RenderText(false), dtl.Render(), dreg.RenderText(false)
	}
	cTT, cTM, cDT, cDM := run(machine.EngineClosure)
	sTT, sTM, sDT, sDM := run(machine.EngineSwitch)
	if cTT != sTT {
		t.Errorf("tier timeline differs by engine near:\n%s\nvs\n%s",
			firstDiffContext(cTT, sTT), firstDiffContext(sTT, cTT))
	}
	if cTM != sTM {
		t.Errorf("tier metrics differ by engine:\n--- closure ---\n%s\n--- switch ---\n%s", cTM, sTM)
	}
	if cDT != sDT {
		t.Errorf("degradation timeline differs by engine near:\n%s\nvs\n%s",
			firstDiffContext(cDT, sDT), firstDiffContext(sDT, cDT))
	}
	if cDM != sDM {
		t.Errorf("degradation metrics differ by engine:\n--- closure ---\n%s\n--- switch ---\n%s", cDM, sDM)
	}
	if !strings.Contains(cTT, "promote-t1") {
		t.Error("tier timeline records no promote-t1 decisions")
	}
	if !strings.Contains(cDT, "demote") {
		t.Error("degradation timeline records no governor demotions")
	}
}

// TestAttributionConservation pins the trap-cost ledger's exactness: for
// every healthy cell of a telemetry-on sweep, the four buckets sum EXACTLY to
// the cell's reported cycles, the remainder is non-negative, and the trap
// bucket is the dispatch cost model applied to the trap count.
func TestAttributionConservation(t *testing.T) {
	tl := obs.NewTimeline()
	rep, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4, Timeline: tl})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	matrices := []struct {
		name string
		m    *Matrix
	}{
		{"WinJB", rep.WinJB}, {"WinSpec", rep.WinSpec},
		{"AIXJB", rep.AIXJB}, {"AIXSpec", rep.AIXSpec},
	}
	cells := 0
	for _, mx := range matrices {
		for _, cfg := range mx.m.Configs {
			for _, w := range mx.m.Workloads {
				c := mx.m.Cell(cfg.Name, w.Name)
				if c == nil || c.Failed() {
					continue
				}
				cells++
				label := mx.name + " " + cfg.Name + "/" + w.Name
				if c.Attr == nil {
					t.Errorf("%s: telemetry-on cell has no attribution ledger", label)
					continue
				}
				if !c.Attr.Conserves() {
					t.Errorf("%s: ledger does not conserve: total %d != %d = implicit %d + explicit %d + trap %d + guard-free %d",
						label, c.Attr.TotalCycles, c.Attr.Sum(), c.Attr.ImplicitCycles,
						c.Attr.ExplicitCycles, c.Attr.TrapCycles, c.Attr.GuardFree)
				}
				if c.Attr.TotalCycles != c.Cycles {
					t.Errorf("%s: ledger total %d != cell cycles %d", label, c.Attr.TotalCycles, c.Cycles)
				}
				if c.Attr.TrapsTaken != c.Exec.TrapsTaken {
					t.Errorf("%s: ledger traps %d != exec traps %d", label, c.Attr.TrapsTaken, c.Exec.TrapsTaken)
				}
				wantTrap := c.Exec.TrapsTaken * mx.m.Model.TrapDispatchCycles
				if c.Attr.TrapCycles != wantTrap {
					t.Errorf("%s: trap bucket %d != traps %d x dispatch %d", label,
						c.Attr.TrapCycles, c.Exec.TrapsTaken, mx.m.Model.TrapDispatchCycles)
				}
			}
		}
	}
	if cells == 0 {
		t.Fatal("sweep produced no healthy cells")
	}
}

// TestTelemetryOffUnchanged pins the zero-footprint-off contract at the JSON
// surface: a sweep without the telemetry plane must not grow any of the new
// keys, so pre-existing consumers see byte-identical documents.
func TestTelemetryOffUnchanged(t *testing.T) {
	rep, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, reject := range []string{`"trap_cost"`, `"injected_faults"`} {
		if strings.Contains(string(data), reject) {
			t.Errorf("telemetry-off JSON contains %s; the field must be omitted when the plane is off", reject)
		}
	}
	// And the telemetry-on sweep does carry the ledger.
	onRep, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4, Timeline: obs.NewTimeline()})
	if err != nil {
		t.Fatalf("telemetry-on sweep: %v", err)
	}
	onData, err := onRep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(onData), `"trap_cost"`) {
		t.Error("telemetry-on JSON is missing trap_cost")
	}
}

// telemetryTrial measures one compile+run of the Assignment workload with the
// whole telemetry plane on (flight recorder + attribution + metrics registry
// + timeline render) or fully off.
func telemetryTrial(t *testing.T, observed bool) time.Duration {
	t.Helper()
	w, err := workloads.ByName("Assignment")
	if err != nil {
		t.Fatal(err)
	}
	cfg := configByName(t, jit.WindowsConfigs(), "NewNullCheck(Phase1+2)")
	model := arch.IA32Win()

	start := time.Now()
	prog, entry := w.Build()
	if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
		t.Fatal(err)
	}
	m := machine.New(model, prog)
	var rec *obs.Recorder
	if observed {
		rec = obs.NewRecorder(0)
		m.Recorder = rec
		m.EnableAttribution()
	}
	if _, err := m.Call(entry.Fn, 20); err != nil {
		t.Fatal(err)
	}
	if observed {
		tl := obs.NewTimeline()
		tl.Add(w.Name, rec, m.CycleAttribution())
		reg := obs.NewRegistry()
		instrs := reg.Counter("engine.instrs", "")
		instrs.Add(m.Stats.Instrs)
		_ = tl.Render()
		_ = reg.RenderText(false)
	}
	return time.Since(start)
}

// TestTelemetryOverheadBudget pins the enabled-overhead acceptance criterion
// for the new plane: flight recorder, attribution and metrics together must
// stay within 1.15x of the bare path. Host timing is noisy, so the test takes
// the best of several paired trials, failing only if every attempt exceeds
// the budget.
func TestTelemetryOverheadBudget(t *testing.T) {
	const trials = 5
	const budget = 1.15
	telemetryTrial(t, false) // warm up caches and allocation pools
	best := 0.0
	for i := 0; i < trials; i++ {
		off := telemetryTrial(t, false)
		on := telemetryTrial(t, true)
		ratio := float64(on) / float64(off)
		if i == 0 || ratio < best {
			best = ratio
		}
		if ratio <= budget {
			return
		}
	}
	t.Errorf("telemetry overhead %.3fx exceeds %.2fx budget in all %d trials", best, budget, trials)
}

// TestExecProfileTieredAgree pins the block-counting fix under tiered
// execution: a fully tiered machine — promoting through the ladder,
// speculating, deopting — must report exactly the untiered switch
// interpreter's total block entries. Tier promotions swap artifacts
// mid-flight; BindCounters aliases every generation onto the conservative
// artifact's counter box, so the totals survive the swaps.
func TestExecProfileTieredAgree(t *testing.T) {
	model := arch.IA32Win()
	cfg := configByName(t, jit.WindowsConfigs(), "NewNullCheck(Phase1+2)")
	const reps = 3
	for _, w := range append(workloads.All(), workloads.Extensions()...) {
		// Untiered oracle on the reference interpreter.
		p, entryM := w.Build()
		if _, err := jit.CompileProgram(p, cfg, model); err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		oracle := machine.New(model, p)
		oracle.Engine = machine.EngineSwitch
		oracleProf := obs.NewExecProfile()
		oracle.Profile = oracleProf
		for rep := 0; rep < reps; rep++ {
			oracle.Call(entryM.Fn, w.TestN)
		}

		// Tiered machine with the profile attached BEFORE tiering, so the
		// controller binds its check counters into the same profile.
		compile := tierCompiler(w, cfg, model, jit.NewCache(0))
		prog2, err := compile(nil)
		if err != nil {
			t.Fatalf("%s: conservative compile: %v", w.Name, err)
		}
		em := prog2.MethodByName(entryM.QualifiedName())
		if em == nil || em.Fn == nil {
			t.Fatalf("%s: compiled program lacks entry method", w.Name)
		}
		mach := machine.New(model, prog2)
		tierProf := obs.NewExecProfile()
		mach.Profile = tierProf
		mach.EnableTiering(stormPolicy(), compile)
		for rep := 0; rep < reps; rep++ {
			mach.Call(em.Fn, w.TestN)
		}

		want, got := oracleProf.TotalBlocks(), tierProf.TotalBlocks()
		if got != want {
			t.Errorf("%s: tiered machine entered %d blocks, untiered switch %d", w.Name, got, want)
		}
	}
}
