package bench

import (
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/workloads"
)

// tierCompiler builds the SpecCompiler glue the tests share with the
// harness: rebuild the pristine workload, key by (program, config, model,
// speculation set), compile through the cache.
func tierCompiler(w *workloads.Workload, cfg jit.Config, model *arch.Model, cache *jit.Cache) machine.SpecCompiler {
	return func(mask map[string][]int) (*ir.Program, error) {
		p, _ := w.Build()
		spec := jit.SpecSet(mask)
		key := jit.KeySpec(p, cfg, model, spec)
		entry, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
			res, cerr := jit.CompileProgramWith(p, cfg, model, jit.CompileOptions{Spec: spec})
			if cerr != nil {
				return nil, cerr
			}
			return &jit.CacheEntry{Program: p, Result: res}, nil
		})
		if err != nil {
			return nil, err
		}
		return entry.Program, nil
	}
}

// newTieredMachine compiles w conservatively and returns a tiered machine
// plus the entry body of the compiled program.
func newTieredMachine(t *testing.T, w *workloads.Workload, cfg jit.Config, model *arch.Model,
	pol machine.TierPolicy, cache *jit.Cache) (*machine.Machine, *ir.Func) {
	t.Helper()
	compile := tierCompiler(w, cfg, model, cache)
	prog, err := compile(nil)
	if err != nil {
		t.Fatalf("%s/%s: conservative compile: %v", cfg.Name, w.Name, err)
	}
	_, entryM := w.Build()
	em := prog.MethodByName(entryM.QualifiedName())
	if em == nil || em.Fn == nil {
		t.Fatalf("%s/%s: compiled program lacks entry method", cfg.Name, w.Name)
	}
	m := machine.New(model, prog)
	m.EnableTiering(pol, compile)
	return m, em.Fn
}

// stormPolicy pushes methods up the ladder almost immediately, so the quick
// problem sizes exercise every rung and every deopt path.
func stormPolicy() machine.TierPolicy {
	return machine.TierPolicy{T1Blocks: 32, T2Blocks: 64, MinCheckExecs: 8}
}

// TestTieredDifferentialAllWorkloads is the tiering half of the engine
// equivalence proof: a fully tiered machine — promoting through the ladder
// and speculating as aggressively as the policy allows — must produce the
// untiered switch interpreter's exact Outcome and error on every invocation,
// for every workload under every configuration on both arch models. The set
// includes the extension workloads where the profile lies and nulls arrive
// late, so the deopt path is inside the differential contract, not beside it.
func TestTieredDifferentialAllWorkloads(t *testing.T) {
	sweeps := []struct {
		name    string
		model   func() *arch.Model
		configs []jit.Config
		work    []*workloads.Workload
	}{
		{"win", arch.IA32Win, jit.WindowsConfigs(), append(workloads.All(), workloads.Extensions()...)},
		{"aix", arch.PPCAIX, jit.AIXConfigs(), append(workloads.All(), workloads.Extensions()...)},
	}
	const reps = 3

	for _, sw := range sweeps {
		for _, cfg := range sw.configs {
			for _, w := range sw.work {
				id := sw.name + "/" + cfg.Name + "/" + w.Name
				model := sw.model()

				// Untiered oracle: fresh switch-interpreter machine.
				p, entryM := w.Build()
				if _, err := jit.CompileProgram(p, cfg, model); err != nil {
					t.Fatalf("%s: compile: %v", id, err)
				}
				oracle := machine.New(model, p)
				oracle.Engine = machine.EngineSwitch
				wantOut, wantErr := oracle.Call(entryM.Fn, w.TestN)

				mach, fn := newTieredMachine(t, w, cfg, model, stormPolicy(), jit.NewCache(0))
				for rep := 0; rep < reps; rep++ {
					out, err := mach.Call(fn, w.TestN)
					if out != wantOut {
						t.Errorf("%s rep %d: outcome diverges: tiered=%+v switch=%+v", id, rep, out, wantOut)
					}
					if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
						t.Errorf("%s rep %d: error diverges: tiered=%v switch=%v", id, rep, err, wantErr)
					}
				}
			}
		}
	}
}

// TestTieredSteadyStateBeatsBestStatic pins the headline speedup: on hot
// null-free workloads the speculative tier never does worse than its own
// configuration's untiered run, and on two or more of them its steady state
// strictly beats the best static configuration of the model — speculation
// removes checks the static pipeline provably cannot (profile facts are not
// proofs), so the strict wins are exactly where surviving explicit checks
// were hot.
func TestTieredSteadyStateBeatsBestStatic(t *testing.T) {
	nullFree := []*workloads.Workload{
		workloads.NumericSort(),
		workloads.Assignment(),
		workloads.Compress(),
		workloads.BigOffsetWalk(),
	}
	type sweep struct {
		name    string
		model   *arch.Model
		cfg     jit.Config
		configs []jit.Config
	}
	sweeps := []sweep{
		{"win", arch.IA32Win(), jit.ConfigPhase1Phase2(), jit.WindowsConfigs()},
		{"aix", arch.PPCAIX(), jit.ConfigAIXSpeculation(), jit.AIXConfigs()},
	}

	strictWins := 0
	for _, sw := range sweeps {
		m, err := RunTiered(sw.model, sw.cfg, nullFree, TierOptions{Quick: true})
		if err != nil {
			t.Fatalf("%s: tiered sweep: %v", sw.name, err)
		}
		for _, w := range nullFree {
			// Best static: minimum single-invocation cycles over every
			// configuration of this model, untiered.
			best := int64(-1)
			for _, cfg := range sw.configs {
				p, entryM := w.Build()
				if _, err := jit.CompileProgram(p, cfg, sw.model); err != nil {
					t.Fatalf("%s/%s/%s: compile: %v", sw.name, cfg.Name, w.Name, err)
				}
				mach := machine.New(sw.model, p)
				out, err := mach.Call(entryM.Fn, w.TestN)
				if err != nil || out.Value != w.Ref(w.TestN) {
					t.Fatalf("%s/%s/%s: run failed: %+v %v", sw.name, cfg.Name, w.Name, out, err)
				}
				if best < 0 || mach.Cycles < best {
					best = mach.Cycles
				}
			}
			c := m.Cell("tiered-spec", w.Name)
			if c == nil || c.Failed() {
				t.Fatalf("%s/%s: tiered-spec cell missing or failed: %+v", sw.name, w.Name, c)
			}
			// Against its own configuration the speculative tier can only
			// remove cost: never worse than the untiered baseline.
			base := m.Cell("interp", w.Name)
			if base == nil || base.Failed() {
				t.Fatalf("%s/%s: interp cell missing or failed", sw.name, w.Name)
			}
			if c.SteadyCycles > base.SteadyCycles {
				t.Errorf("%s/%s: tiered-spec steady state %d cycles worse than its own untiered config %d",
					sw.name, w.Name, c.SteadyCycles, base.SteadyCycles)
			}
			if c.SteadyCycles < best {
				strictWins++
			}
		}
	}
	if strictWins < 2 {
		t.Errorf("tiered-spec steady state strictly beats the best static config on only %d null-free workloads, want >= 2", strictWins)
	}
}

// TestTieredDeoptStorm is the convergence proof (satellite 3): LateNullStorm
// speculates both far-offset checks off a lying profile, meets the late
// nulls, and must deoptimize into conservative code that terminates with the
// untiered switch engine's bit-identical Outcome on every invocation — and
// once converged, never deoptimizes again: every wrong speculation is
// blacklisted exactly once, and nulls observed by the conservative artifact
// keep the remaining checks out of future candidate sets.
func TestTieredDeoptStorm(t *testing.T) {
	w := workloads.LateNullStorm()
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	n := w.TestN

	p, entryM := w.Build()
	if _, err := jit.CompileProgram(p, cfg, model); err != nil {
		t.Fatal(err)
	}
	oracle := machine.New(model, p)
	oracle.Engine = machine.EngineSwitch
	wantOut, wantErr := oracle.Call(entryM.Fn, n)
	if wantErr != nil {
		t.Fatalf("oracle: %v", wantErr)
	}

	mach, fn := newTieredMachine(t, w, cfg, model, stormPolicy(), jit.NewCache(0))
	const reps = 8
	var deoptsAfter [reps]int
	for rep := 0; rep < reps; rep++ {
		out, err := mach.Call(fn, n)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if out != wantOut {
			t.Errorf("rep %d: outcome diverges: tiered=%+v switch=%+v", rep, out, wantOut)
		}
		deoptsAfter[rep] = mach.TierReport().Deopts
	}

	rep := mach.TierReport()
	if rep.Deopts == 0 {
		t.Fatalf("speculation never deoptimized; events: %+v", rep.Events)
	}
	// Each check can be wrong at most once: the guard that fires is
	// blacklisted, and a check whose null was seen by conservative code is
	// never a candidate again. Two checks bound the storm at two deopts.
	if rep.Deopts > 2 {
		t.Errorf("deopt storm did not converge: %d deopts for 2 checks", rep.Deopts)
	}
	if deoptsAfter[reps-1] != deoptsAfter[2] {
		t.Errorf("deopts still accumulating after convergence: %v", deoptsAfter)
	}
	bl := mach.Blacklisted()
	if len(bl["LateNullStorm.main"]) == 0 {
		t.Errorf("no blacklisted checks after deopt: %+v", bl)
	}
}

// TestTieredResetPreparedInvalidation is the satellite-2 regression: after
// ResetPrepared — the triage bisection replay hook — a previously speculated
// method must NOT execute its stale speculative closure. The first post-reset
// invocation runs at conservative cost (the ladder restarts at tier 0), and
// the controller's speculative state is gone.
func TestTieredResetPreparedInvalidation(t *testing.T) {
	w := workloads.BigOffsetWalk()
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	n := w.TestN

	// T2Blocks is sized so the speculative recompile needs a second
	// invocation's block entries: one invocation alone can never re-reach
	// tier 2, making "first post-reset invocation is conservative" a sharp
	// assertion rather than a race with re-promotion.
	pol := machine.TierPolicy{T1Blocks: 32, T2Blocks: 200, MinCheckExecs: 8}
	mach, fn := newTieredMachine(t, w, cfg, model, pol, jit.NewCache(0))

	want := w.Ref(n)
	var conservative, steady int64
	for rep := 0; rep < 4; rep++ {
		before := mach.Cycles
		out, err := mach.Call(fn, n)
		if err != nil || out.Value != want {
			t.Fatalf("rep %d: %+v %v", rep, out, err)
		}
		d := mach.Cycles - before
		if rep == 0 {
			conservative = d // tier 0/1 only: same simulated cost by engine equivalence
		}
		steady = d
	}
	if mach.TierReport().SpecLive == 0 {
		t.Fatalf("method never reached tier 2; events: %+v", mach.TierReport().Events)
	}
	if steady >= conservative {
		t.Fatalf("speculation did not reduce steady-state cycles: %d vs %d", steady, conservative)
	}

	mach.ResetPrepared()
	if got := mach.TierReport().SpecLive; got != 0 {
		t.Errorf("SpecLive = %d after ResetPrepared, want 0", got)
	}
	if bl := mach.Blacklisted(); len(bl) != 0 {
		t.Errorf("blacklist survived ResetPrepared: %+v", bl)
	}
	before := mach.Cycles
	out, err := mach.Call(fn, n)
	if err != nil || out.Value != want {
		t.Fatalf("post-reset call: %+v %v", out, err)
	}
	if d := mach.Cycles - before; d != conservative {
		t.Errorf("first post-reset invocation cost %d cycles, want conservative %d (stale speculative closure executed?)", d, conservative)
	}
}

// TestTieredCacheKeying is the satellite-4 check at the machine level: one
// tiered run compiles the conservative artifact (miss), the speculative
// artifact (miss, distinct key), and the deopt-triggered conservative
// recompile (hit — same key as the initial compile); an identical replay on
// a second machine sharing the cache hits on everything. Speculative and
// conservative artifacts therefore can never collide, and replays are free.
func TestTieredCacheKeying(t *testing.T) {
	w := workloads.LateNullStorm()
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	cache := jit.NewCache(0)
	n := w.TestN
	want := w.Ref(n)

	run := func() {
		mach, fn := newTieredMachine(t, w, cfg, model, stormPolicy(), cache)
		for rep := 0; rep < 4; rep++ {
			out, err := mach.Call(fn, n)
			if err != nil || out.Value != want {
				t.Fatalf("rep %d: %+v %v", rep, out, err)
			}
		}
		if mach.TierReport().Deopts == 0 {
			t.Fatal("run never deoptimized; the keying scenario needs the deopt recompile")
		}
	}

	run()
	first := cache.Stats()
	if first.Misses < 2 {
		t.Fatalf("conservative and speculative compiles must be distinct misses, got %+v", first)
	}
	if first.Hits < 1 {
		t.Fatalf("deopt-triggered conservative recompile should hit the initial entry, got %+v", first)
	}

	run()
	second := cache.Stats()
	if second.Misses != first.Misses {
		t.Errorf("replay recompiled: misses %d -> %d (keys unstable across identical runs)", first.Misses, second.Misses)
	}
	if second.Hits != first.Hits+first.Lookups {
		t.Errorf("replay should hit on every lookup: %+v then %+v", first, second)
	}
}

// TestTierHookOverheadBudget pins satellite 1: with tiering enabled but
// promotion thresholds set out of reach, the interpreter pays one tier-state
// fetch per call and one budget decrement per block entry over the
// profile-enabled baseline. Host timing is noisy, so the test takes the best
// of several paired trials and fails only if every attempt exceeds the
// budget.
func TestTierHookOverheadBudget(t *testing.T) {
	const trials = 5
	const budget = 1.20
	tierTrial(t, false) // warm up
	best := 0.0
	for i := 0; i < trials; i++ {
		off := tierTrial(t, false)
		on := tierTrial(t, true)
		ratio := float64(on) / float64(off)
		if i == 0 || ratio < best {
			best = ratio
		}
		if ratio <= budget {
			return
		}
	}
	t.Errorf("tier hook overhead %.3fx exceeds %.2fx budget in all %d trials", best, budget, trials)
}

func tierTrial(t testing.TB, tiered bool) time.Duration {
	w, err := workloads.ByName("Assignment")
	if err != nil {
		t.Fatal(err)
	}
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	prog, entry := w.Build()
	if _, err := jit.CompileProgram(prog, cfg, model); err != nil {
		t.Fatal(err)
	}
	m := machine.New(model, prog)
	m.Engine = machine.EngineSwitch
	if tiered {
		// Thresholds no run can reach: the hook is live on every block
		// entry but never promotes, isolating its cost.
		m.EnableTiering(machine.TierPolicy{T1Blocks: 1 << 40}, nil)
	} else {
		// The baseline carries the same profile, so the trial measures the
		// tier hook alone, not profiling.
		m.Profile = obs.NewExecProfile()
	}
	start := time.Now()
	if _, err := m.Call(entry.Fn, 30); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkTierHookOff and BenchmarkTierHookOn make the satellite-1 delta
// measurable with `go test -bench TierHook -benchtime 20x ./internal/bench`.
func BenchmarkTierHookOff(b *testing.B) { benchTierHook(b, false) }
func BenchmarkTierHookOn(b *testing.B)  { benchTierHook(b, true) }

func benchTierHook(b *testing.B, tiered bool) {
	for i := 0; i < b.N; i++ {
		tierTrial(b, tiered)
	}
}
