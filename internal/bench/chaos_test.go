package bench

import (
	"testing"

	"trapnull/internal/machine"
)

// TestChaosDeterministicAcrossWorkers: the same seed must produce a
// byte-identical chaos report at any parallelism — the whole point of keying
// injection decisions on semantic coordinates instead of scheduling.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	serial, err := RunChaos(3, ChaosOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("serial chaos run had unexpected failures: %v", err)
	}
	parallel, err := RunChaos(3, ChaosOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("parallel chaos run had unexpected failures: %v", err)
	}
	if a, b := serial.Render(), parallel.Render(); a != b {
		t.Fatalf("chaos report depends on worker count:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestChaosDeterministicAcrossEngines: both execution engines must produce
// the identical chaos report — injected step faults fire through the shared
// step-limit choke point, so the fault surfaces at the same dynamic step in
// the same function either way.
func TestChaosDeterministicAcrossEngines(t *testing.T) {
	old := machine.DefaultEngine
	defer func() { machine.DefaultEngine = old }()

	machine.DefaultEngine = machine.EngineClosure
	closure, err := RunChaos(5, ChaosOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("closure-engine chaos run had unexpected failures: %v", err)
	}
	machine.DefaultEngine = machine.EngineSwitch
	sw, err := RunChaos(5, ChaosOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("switch-engine chaos run had unexpected failures: %v", err)
	}
	if a, b := closure.Render(), sw.Render(); a != b {
		t.Fatalf("chaos report depends on the engine:\n--- closure ---\n%s\n--- switch ---\n%s", a, b)
	}
}

// TestChaosActuallyInjects: a chaos run that never arms a fault is testing
// nothing — the default rates must perturb a sweep this size.
func TestChaosActuallyInjects(t *testing.T) {
	rep, err := RunChaos(3, ChaosOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("chaos run had unexpected failures: %v", err)
	}
	if len(rep.Schedule) == 0 {
		t.Fatal("chaos run armed no faults at all")
	}
	if len(rep.Lines) == 0 {
		t.Fatal("chaos run measured no cells")
	}
}
