package bench

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/workloads"
)

// timingFreeArtifacts lists the tables/figures derived purely from simulated
// quantities (cycles, event counts, static check stats). Tables 3–5 and
// Figures 12–13 render host compile times, which legitimately vary run to
// run, so byte-identity is asserted only for the rest (DESIGN.md §6).
var timingFreeArtifacts = []string{
	"table1", "table2", "table6", "table7",
	"figure8", "figure9", "figure10", "figure11", "figure14", "figure15",
}

// TestParallelSweepDeterminism is the harness-parallelism contract: a sweep
// fanned out over 4 workers must produce cell-for-cell identical simulated
// measurements — and byte-identical rendered artifacts — to the serial
// sweep. Only host-clock compile durations may differ.
func TestParallelSweepDeterminism(t *testing.T) {
	serial, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 1})
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	parallel, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4})
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}

	sArts, pArts := serial.Artifacts(), parallel.Artifacts()
	for _, name := range timingFreeArtifacts {
		if s, p := sArts[name](), pArts[name](); s != p {
			t.Errorf("%s differs between serial and parallel sweeps:\n--- serial ---\n%s\n--- parallel ---\n%s", name, s, p)
		}
	}

	pairs := []struct {
		name string
		s, p *Matrix
	}{
		{"WinJB", serial.WinJB, parallel.WinJB},
		{"WinSpec", serial.WinSpec, parallel.WinSpec},
		{"AIXJB", serial.AIXJB, parallel.AIXJB},
		{"AIXSpec", serial.AIXSpec, parallel.AIXSpec},
	}
	for _, pr := range pairs {
		for _, cfg := range pr.s.Configs {
			for _, w := range pr.s.Workloads {
				sc, pc := pr.s.Cell(cfg.Name, w.Name), pr.p.Cell(cfg.Name, w.Name)
				if sc == nil || pc == nil {
					t.Fatalf("%s %s/%s: missing cell (serial=%v parallel=%v)", pr.name, cfg.Name, w.Name, sc != nil, pc != nil)
				}
				if sc.Cycles != pc.Cycles {
					t.Errorf("%s %s/%s: cycles %d (serial) vs %d (parallel)", pr.name, cfg.Name, w.Name, sc.Cycles, pc.Cycles)
				}
				if sc.Exec != pc.Exec {
					t.Errorf("%s %s/%s: exec stats %+v vs %+v", pr.name, cfg.Name, w.Name, sc.Exec, pc.Exec)
				}
				ss, ps := sc.Static, pc.Static
				if ss.Checks != ps.Checks || ss.Inline != ps.Inline || ss.Scalar != ps.Scalar ||
					ss.BoundChecksRemoved != ps.BoundChecksRemoved || ss.FuncsCompiled != ps.FuncsCompiled {
					t.Errorf("%s %s/%s: static stats differ:\n%+v\nvs\n%+v", pr.name, cfg.Name, w.Name, ss, ps)
				}
			}
		}
	}
}

// TestParallelismOverride checks the worker-count policy: explicit override
// wins, zero falls back to GOMAXPROCS, and the pool never exceeds the job
// count.
func TestParallelismOverride(t *testing.T) {
	if got := (Options{Parallelism: 3}).workers(100); got != 3 {
		t.Errorf("explicit override: %d workers, want 3", got)
	}
	if got := (Options{Parallelism: 8}).workers(2); got != 2 {
		t.Errorf("capped by jobs: %d workers, want 2", got)
	}
	if got := (Options{}).workers(100); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
}

// TestParallelErrorDeterminism: a failing cell must surface the same error
// regardless of worker count or completion order.
func TestParallelErrorDeterminism(t *testing.T) {
	model := arch.IA32Win()
	ws := workloads.JBYTEmark()[:3]
	// A config whose guard checker is guaranteed to fail would be
	// artificial; instead poison a workload's reference function so the
	// checksum mismatches deterministically.
	bad := *ws[1]
	bad.Ref = func(n int64) int64 { return -1 }
	ws = []*workloads.Workload{ws[0], &bad, ws[2]}
	cfgs := jit.WindowsConfigs()[:2]

	var msgs []string
	for _, par := range []int{1, 4} {
		_, err := Run(model, cfgs, ws, Options{Quick: true, CompileReps: 1, Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: expected checksum error", par)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs by worker count:\nserial:   %s\nparallel: %s", msgs[0], msgs[1])
	}
}
