package bench

import (
	"fmt"
	"strconv"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// Tiered-execution harness: the bench mode behind benchtab -tier. Where the
// paper's tables compare static configurations, this mode compares execution
// POLICIES on one configuration: how a method reaches its peak code, and what
// that path costs in simulated steady-state cycles and host compile time.
//
// Policies:
//
//	interp       untiered switch interpreter (tier 0 forever)
//	eager        untiered closure engine, every method closure-compiled up
//	             front (the all-at-once tier 1)
//	tiered       adaptive 0→1: interpret until hot, then closure-compile
//	tiered-spec  full ladder 0→1→2: additionally recompile hot methods with
//	             profile-guided speculation guards on never-null checks, and
//	             deoptimize when a guard fires
//
// Every invocation of every cell verifies its checksum against the pure-Go
// reference, and the untiered rows double as the differential oracle: all
// four policies must report the same final value on the same workload or the
// cell errors. Steady-state cycles are the LAST invocation's cycle delta —
// by then promotions have settled — and compile-time-to-peak is the host
// time spent compiling before the peak tier ran: the initial jit pipeline
// compile for everyone, plus eager's up-front closure compilation, plus the
// tier controller's promotion/recompile cost for the adaptive policies.

// TierCell is one (workload, policy) measurement.
type TierCell struct {
	Workload string
	Policy   string
	Reps     int
	// FirstCycles is invocation 1's simulated cost (promotion transients
	// included); SteadyCycles is the final invocation's.
	FirstCycles  int64
	SteadyCycles int64
	TotalCycles  int64
	// CompileToPeak is host time: initial jit compile + up-front closure
	// compiles (eager) + tier promotions and deopt recompiles (tiered).
	CompileToPeak time.Duration
	// Ladder traffic; zero for the untiered policies.
	PromotionsT1 int
	PromotionsT2 int
	Deopts       int
	SpecLive     int
	// OSREntries counts mid-invocation hand-offs into freshly promoted
	// artifacts; BudgetExhausted lists (sorted) the methods parked by the
	// tier-2 recompile budget; Events is the controller's full decision log
	// in occurrence order. All three surface TierReport in benchtab -json.
	OSREntries      int
	BudgetExhausted []string
	Events          []machine.TierEvent
	// Err marks a failed cell (compile error, checksum mismatch, policy
	// divergence); measurement fields are zero.
	Err string
}

// Failed reports whether the cell is an error entry.
func (c *TierCell) Failed() bool { return c.Err != "" }

// TierOptions tunes a tiered sweep.
type TierOptions struct {
	// Quick selects the small problem sizes (used by tests).
	Quick bool
	// Reps is invocations per cell; the last one is the steady-state
	// measurement. Minimum (and default) is 4: warm-up, promotions,
	// settle, steady.
	Reps int
	// Policy sets the promotion thresholds; the zero value selects
	// machine.DefaultTierPolicy, scaled down under Quick so the small
	// problem sizes still cross them.
	Policy machine.TierPolicy
	// CompileParallelism is forwarded to jit.CompileOptions.Parallelism.
	CompileParallelism int

	// Timeline, when non-nil, attaches a flight recorder to every cell's
	// machine and merges its promotion/deopt/demotion events into the
	// timeline; the untiered policies (interp, eager) additionally carry
	// trap-cost attribution. Trace, when non-nil, gives each cell a lane of
	// per-invocation spans with the recorded events as instant markers.
	// Metrics, when non-nil, receives the tier counters after each cell.
	Timeline *obs.Timeline
	Trace    *obs.Trace
	Metrics  *obs.Registry
}

func (o TierOptions) reps() int {
	if o.Reps >= 3 {
		return o.Reps
	}
	return 4
}

func (o TierOptions) policy() machine.TierPolicy {
	if o.Policy != (machine.TierPolicy{}) {
		return o.Policy
	}
	p := machine.DefaultTierPolicy()
	if o.Quick {
		// Small problem sizes enter far fewer blocks — and the closure
		// engine's block batching makes its entries coarser still — so
		// shrink the thresholds until the quick sweep exercises the whole
		// ladder within the default rep count.
		p.T1Blocks, p.T2Blocks, p.MinCheckExecs = 128, 128, 16
	}
	return p
}

// TierPolicies lists the policies in render order.
func TierPolicies() []string {
	return []string{"interp", "eager", "tiered", "tiered-spec"}
}

// TieredWorkloads is the workload set of the tiered tables: hot null-free
// kernels where speculation should win (NumericSort, Assignment, Compress),
// the far-offset kernel whose surviving explicit check is the canonical
// speculation target (BigOffsetWalk), and the two adversarial ones where the
// profile lies and guards must deoptimize (NullStorm, LateNullStorm).
func TieredWorkloads() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.NumericSort(),
		workloads.Assignment(),
		workloads.Compress(),
		workloads.BigOffsetWalk(),
		workloads.NullStorm(),
		workloads.LateNullStorm(),
	}
}

// TierMatrix holds one (model, config) tiered sweep.
type TierMatrix struct {
	Model     *arch.Model
	Config    jit.Config
	Workloads []*workloads.Workload
	Policies  []string
	Quick     bool
	Reps      int
	// Cells is indexed [policy][workload name].
	Cells map[string]map[string]*TierCell
}

// Cell returns the measurement for (policy, workload).
func (m *TierMatrix) Cell(policy, workload string) *TierCell {
	if row, ok := m.Cells[policy]; ok {
		return row[workload]
	}
	return nil
}

// RunTiered sweeps policies × workloads for one (model, config).
func RunTiered(model *arch.Model, cfg jit.Config, ws []*workloads.Workload, opts TierOptions) (*TierMatrix, error) {
	registerTierMetrics(opts.Metrics)
	m := &TierMatrix{
		Model:     model,
		Config:    cfg,
		Workloads: ws,
		Policies:  TierPolicies(),
		Quick:     opts.Quick,
		Reps:      opts.reps(),
		Cells:     make(map[string]map[string]*TierCell),
	}
	for _, pol := range m.Policies {
		m.Cells[pol] = make(map[string]*TierCell, len(ws))
	}
	var failures []string
	for _, w := range ws {
		// Every policy — including the untiered oracle rows — verifies each
		// invocation's value against the pure-Go reference, so all four
		// policies agreeing with the reference is the differential check.
		for _, pol := range m.Policies {
			c := runTierCell(model, cfg, w, pol, opts)
			m.Cells[pol][w.Name] = c
			if c.Failed() {
				failures = append(failures, fmt.Sprintf("%s/%s: %s", pol, w.Name, c.Err))
			}
		}
	}
	if len(failures) > 0 {
		return m, fmt.Errorf("bench: %d tiered cell(s) failed:\n  %s", len(failures), joinLines(failures))
	}
	return m, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// runTierCell measures one (workload, policy) cell: reps invocations on one
// machine, each checksum-verified. Any error degrades to an error cell.
func runTierCell(model *arch.Model, cfg jit.Config, w *workloads.Workload, policy string, opts TierOptions) (cell *TierCell) {
	errCell := func(reason string) *TierCell {
		return &TierCell{Workload: w.Name, Policy: policy, Err: reason}
	}
	defer func() {
		if r := recover(); r != nil {
			cell = errCell(fmt.Sprintf("panic: %v", r))
		}
	}()

	n := w.N
	if opts.Quick {
		n = w.TestN
	}
	reps := opts.reps()

	// One compile cache per cell keeps the compile-time-to-peak column
	// honest — every policy pays its own initial compile — while still
	// giving the tier controller the miss-then-hit behavior its recompiles
	// are designed around (a deopt's conservative recompile hits the entry
	// the initial compile stored; a re-promotion under a shrunken mask is a
	// genuine miss the first time).
	cache := jit.NewCache(0)
	_, entryM := w.Build()

	specCompile := func(mask map[string][]int) (*jit.CacheEntry, error) {
		p, _ := w.Build()
		spec := jit.SpecSet(mask)
		key := jit.KeySpec(p, cfg, model, spec)
		entry, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
			res, cerr := jit.CompileProgramWith(p, cfg, model,
				jit.CompileOptions{Parallelism: opts.CompileParallelism, Spec: spec})
			if cerr != nil {
				return nil, cerr
			}
			return &jit.CacheEntry{Program: p, Result: res}, nil
		})
		if err != nil {
			return nil, err
		}
		return entry, nil
	}

	jitStart := time.Now()
	entry0, err := specCompile(nil)
	compileToPeak := time.Since(jitStart)
	if err != nil {
		return errCell(failReason(err))
	}
	prog := entry0.Program
	em := prog.MethodByName(entryM.QualifiedName())
	if em == nil || em.Fn == nil {
		return errCell("compiled program lacks entry method " + entryM.QualifiedName())
	}

	mach := machine.New(model, prog)
	// The flight recorder rides every policy; the untiered ones (interp,
	// eager) additionally carry trap-cost attribution — tiered machines mix
	// block-aligned generations and report a nil ledger by design.
	rec := attachRecorder(opts.Timeline, mach, policy == "interp" || policy == "eager")
	switch policy {
	case "interp":
		mach.Engine = machine.EngineSwitch
	case "eager":
		mach.Engine = machine.EngineClosure
		compileToPeak += mach.PrecompileClosures()
	case "tiered":
		mach.EnableTiering(opts.policy(), nil)
	case "tiered-spec":
		mach.EnableTiering(opts.policy(), func(mask map[string][]int) (*ir.Program, error) {
			e, cerr := specCompile(mask)
			if cerr != nil {
				return nil, cerr
			}
			return e.Program, nil
		})
	default:
		return errCell("unknown policy " + policy)
	}

	cellName := policy + "/" + w.Name
	var tid int64
	var cellStart time.Time
	if opts.Trace != nil {
		tid = opts.Trace.NextTID()
		cellStart = time.Now()
	}
	var wins []repWindow
	// Publish from a defer so even a failed cell lands its recorded strand
	// (and its instant markers) in the timeline.
	defer func() {
		publishRepTimeline(opts.Timeline, opts.Trace, model.Name+"/"+cellName, rec,
			mach.CycleAttribution(), tid, wins)
		if opts.Trace != nil {
			opts.Trace.Span(tid, "cell", cellName, cellStart, time.Since(cellStart), nil)
		}
	}()

	want := w.Ref(n)
	var first, last, total int64
	for rep := 0; rep < reps; rep++ {
		before := mach.Cycles
		stepsBefore := mach.Steps()
		repStart := time.Now()
		out, err := mach.Call(em.Fn, n)
		if opts.Trace != nil {
			dur := time.Since(repStart)
			opts.Trace.Span(tid, "exec", fmt.Sprintf("%s inv %d", cellName, rep+1), repStart, dur,
				map[string]any{"cycles": mach.Cycles - before})
			wins = append(wins, repWindow{repStart, dur, stepsBefore, mach.Steps()})
		}
		if err != nil {
			return errCell(failReason(err))
		}
		if out.Exc != rt.ExcNone {
			return errCell(fmt.Sprintf("unexpected exception %v", out.Exc))
		}
		if out.Value != want {
			return errCell(fmt.Sprintf("checksum mismatch on rep %d: got %d, want %d", rep, out.Value, want))
		}
		d := mach.Cycles - before
		if rep == 0 {
			first = d
		}
		last = d
		total += d
	}

	cell = &TierCell{
		Workload:     w.Name,
		Policy:       policy,
		Reps:         reps,
		FirstCycles:  first,
		SteadyCycles: last,
		TotalCycles:  total,
	}
	rep := mach.TierReport()
	compileToPeak += rep.CompileHost
	cell.CompileToPeak = compileToPeak
	cell.Deopts = rep.Deopts
	cell.SpecLive = rep.SpecLive
	cell.OSREntries = rep.OSREntries
	cell.BudgetExhausted = rep.BudgetExhausted
	cell.Events = rep.Events
	for _, ev := range rep.Events {
		switch ev.Kind {
		case "promote-t1":
			cell.PromotionsT1++
		case "promote-t2":
			cell.PromotionsT2++
		}
	}
	publishTierMetrics(opts.Metrics, rep)
	publishCacheMetrics(opts.Metrics, cache.Stats())
	noteCacheEvents(opts.Timeline, model.Name+"/"+cellName, cache)
	return cell
}

// TieredReport bundles the tiered sweeps of both machines, each under its
// model's best static configuration — the hardest baseline for tier 2 to
// beat.
type TieredReport struct {
	Win *TierMatrix // ia32-win, NewNullCheck(Phase1+2)
	AIX *TierMatrix // ppc-aix, Speculation
}

// RunTieredAll produces the full tiered report. Both sweeps run to
// completion even when cells fail.
func RunTieredAll(opts TierOptions) (*TieredReport, error) {
	var errs []string
	sweep := func(m *TierMatrix, err error) *TierMatrix {
		if err != nil {
			errs = append(errs, err.Error())
		}
		return m
	}
	rep := &TieredReport{
		Win: sweep(RunTiered(arch.IA32Win(), jit.ConfigPhase1Phase2(), TieredWorkloads(), opts)),
		AIX: sweep(RunTiered(arch.PPCAIX(), jit.ConfigAIXSpeculation(), TieredWorkloads(), opts)),
	}
	if len(errs) > 0 {
		return rep, fmt.Errorf("%s", joinLines(errs))
	}
	return rep, nil
}

// TierTable renders one matrix as the tiering table: steady-state cycles and
// compile-time-to-peak per workload per policy, plus ladder traffic.
func (m *TierMatrix) TierTable() string {
	title := fmt.Sprintf("Tiered execution: %s, %s (steady state = last of %d invocations%s)",
		m.Model.Name, m.Config.Name, m.Reps, quickNote(m.Quick))
	header := []string{"workload", "policy", "steady cycles", "first cycles",
		"compile-to-peak (us)", "t1", "t2", "deopts", "spec live"}
	var rows [][]string
	for _, w := range m.Workloads {
		for _, pol := range m.Policies {
			c := m.Cell(pol, w.Name)
			if c == nil {
				rows = append(rows, []string{w.Name, pol, "MISSING", "", "", "", "", "", ""})
				continue
			}
			if c.Failed() {
				rows = append(rows, []string{w.Name, pol, "ERROR(" + c.Err + ")", "", "", "", "", "", ""})
				continue
			}
			rows = append(rows, []string{
				w.Name, pol,
				strconv.FormatInt(c.SteadyCycles, 10),
				strconv.FormatInt(c.FirstCycles, 10),
				strconv.FormatInt(int64(c.CompileToPeak/time.Microsecond), 10),
				strconv.Itoa(c.PromotionsT1),
				strconv.Itoa(c.PromotionsT2),
				strconv.Itoa(c.Deopts),
				strconv.Itoa(c.SpecLive),
			})
		}
	}
	return renderGrid(title, header, rows,
		"policies: interp = switch interpreter; eager = closure engine, all methods compiled up front;",
		"tiered = adaptive interpreter->closure; tiered-spec = + profile-guided speculation with deopt.",
		"compile-to-peak is host time (jit compile + closure compiles + tier recompiles); cycles are simulated.")
}

func quickNote(quick bool) string {
	if quick {
		return ", quick sizes"
	}
	return ""
}

// Render renders both matrices.
func (r *TieredReport) Render() string {
	return r.Win.TierTable() + "\n" + r.AIX.TierTable()
}
