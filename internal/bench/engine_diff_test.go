package bench

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/workloads"
)

// TestEngineDifferentialAllWorkloads is the workload half of the engine
// equivalence proof: every workload under every configuration on both arch
// models must produce identical Outcome, ExecStats, and Cycles on the
// closure-compiled engine and the reference switch interpreter. Cycle counts
// and trap classification are the paper's measurements, so any divergence
// here is a correctness bug, not a performance detail.
func TestEngineDifferentialAllWorkloads(t *testing.T) {
	sweeps := []struct {
		name    string
		model   func() *arch.Model
		configs []jit.Config
		work    []*workloads.Workload
	}{
		{"win/jbytemark", arch.IA32Win, jit.WindowsConfigs(), workloads.JBYTEmark()},
		{"win/specjvm98", arch.IA32Win, jit.WindowsConfigs(), workloads.SPECjvm98()},
		{"aix/jbytemark", arch.PPCAIX, jit.AIXConfigs(), workloads.JBYTEmark()},
		{"aix/specjvm98", arch.PPCAIX, jit.AIXConfigs(), workloads.SPECjvm98()},
	}

	type result struct {
		out   machine.Outcome
		err   string
		stats machine.ExecStats
		cyc   int64
	}
	// runCell builds and compiles the workload from scratch for each engine:
	// compilation is deterministic, so the two engines see identical IR.
	runCell := func(e machine.Engine, model *arch.Model, cfg jit.Config, w *workloads.Workload) result {
		p, entryM := w.Build()
		if _, err := jit.CompileProgram(p, cfg, model); err != nil {
			return result{err: err.Error()}
		}
		m := machine.New(model, p)
		m.Engine = e
		out, err := m.Call(entryM.Fn, w.TestN)
		r := result{out: out, stats: m.Stats, cyc: m.Cycles}
		if err != nil {
			r.err = err.Error()
		}
		return r
	}

	for _, sw := range sweeps {
		for _, cfg := range sw.configs {
			for _, w := range sw.work {
				c := runCell(machine.EngineClosure, sw.model(), cfg, w)
				s := runCell(machine.EngineSwitch, sw.model(), cfg, w)
				id := sw.name + "/" + cfg.Name + "/" + w.Name
				if c.out != s.out {
					t.Errorf("%s: outcome diverges: closure=%+v switch=%+v", id, c.out, s.out)
				}
				if c.err != s.err {
					t.Errorf("%s: error diverges: closure=%q switch=%q", id, c.err, s.err)
				}
				if c.stats != s.stats {
					t.Errorf("%s: stats diverge:\nclosure %+v\nswitch  %+v", id, c.stats, s.stats)
				}
				if c.cyc != s.cyc {
					t.Errorf("%s: cycles diverge: closure=%d switch=%d", id, c.cyc, s.cyc)
				}
			}
		}
	}
}
