package bench

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// TestDegradationGovernorWins is the governor's acceptance gate: on the
// TrapStorm workload the governed steady state must be strictly cheaper than
// all-implicit on BOTH architecture models (the traps it stops paying) and
// within 5% of all-explicit (the checks it converged to), with at least one
// demotion recorded inside the recompile budget.
func TestDegradationGovernorWins(t *testing.T) {
	rep, err := RunDegradationAll(DegradationOptions{Quick: true})
	if err != nil {
		t.Fatalf("degradation sweep failed: %v", err)
	}
	for _, m := range []*DegradationMatrix{rep.Win, rep.AIX} {
		imp := m.Cell("implicit", "TrapStorm")
		exp := m.Cell("explicit", "TrapStorm")
		gov := m.Cell("governed", "TrapStorm")
		if imp == nil || exp == nil || gov == nil || imp.Failed() || exp.Failed() || gov.Failed() {
			t.Fatalf("%s: missing or failed TrapStorm cells", m.Model.Name)
		}
		if gov.SteadyCycles >= imp.SteadyCycles {
			t.Errorf("%s: governed steady state %d is not better than all-implicit %d",
				m.Model.Name, gov.SteadyCycles, imp.SteadyCycles)
		}
		if gov.SteadyCycles*100 > exp.SteadyCycles*105 {
			t.Errorf("%s: governed steady state %d is more than 5%% above all-explicit %d",
				m.Model.Name, gov.SteadyCycles, exp.SteadyCycles)
		}
		if gov.Demotions < 1 {
			t.Errorf("%s: governor demoted nothing on TrapStorm", m.Model.Name)
		}
		budget := machine.DefaultGovernorPolicy().RecompileBudget
		if gov.Recompiles > budget {
			t.Errorf("%s: %d recompiles exceed the budget %d", m.Model.Name, gov.Recompiles, budget)
		}
		// The stormy site is demoted, the clean site is not: steady state
		// still executes explicit checks but strictly fewer than the
		// all-explicit row (the clean site kept its free implicit check).
		if gov.SteadyChecks == 0 || gov.SteadyChecks >= exp.SteadyChecks {
			t.Errorf("%s: governed steady checks %d should be in (0, %d)",
				m.Model.Name, gov.SteadyChecks, exp.SteadyChecks)
		}
	}
}

// TestGovernorConvergesUnderFlappingNull is the governor's differential
// gate: under the flapping adversary — two sites storming in alternating
// windows, built to make a reactive policy thrash — every governed
// invocation must produce the exact Outcome of an untiered switch-engine
// oracle, and the recompile traffic must respect the budget and converge.
func TestGovernorConvergesUnderFlappingNull(t *testing.T) {
	model := arch.IA32Win()
	cfg := ImplicitConfigWin()
	w := workloads.FlappingNull()
	n := w.TestN
	const reps = 6

	cache := jit.NewCache(0)
	_, entryM := w.Build()
	demoteCompile := func(demote map[string][]int) (*ir.Program, error) {
		p, _ := w.Build()
		d := jit.DemoteSet(demote)
		key := jit.KeyDemote(p, cfg, model, nil, d)
		entry, _, err := cache.GetOrCompile(key, false, func() (*jit.CacheEntry, error) {
			res, cerr := jit.CompileProgramWith(p, cfg, model, jit.CompileOptions{Demote: d})
			if cerr != nil {
				return nil, cerr
			}
			return &jit.CacheEntry{Program: p, Result: res}, nil
		})
		if err != nil {
			return nil, err
		}
		return entry.Program, nil
	}

	prog, err := demoteCompile(nil)
	if err != nil {
		t.Fatal(err)
	}
	em := prog.MethodByName(entryM.QualifiedName())
	if em == nil || em.Fn == nil {
		t.Fatal("compiled program lacks entry method")
	}

	gov := machine.New(model, prog)
	policy := machine.DefaultGovernorPolicy()
	policy.MinSiteExecs = 64
	policy.BackoffTraps = 8
	gov.EnableGovernor(policy, demoteCompile)

	// Untiered switch-engine oracle on the same pristine implicit program
	// (execution never mutates shared IR; each machine decodes its own
	// tables).
	oracle := machine.New(model, prog)
	oracle.Engine = machine.EngineSwitch

	for rep := 0; rep < reps; rep++ {
		got, err := gov.Call(em.Fn, n)
		if err != nil {
			t.Fatalf("rep %d: governed: %v", rep, err)
		}
		want, err := oracle.Call(em.Fn, n)
		if err != nil {
			t.Fatalf("rep %d: oracle: %v", rep, err)
		}
		if got != want {
			t.Fatalf("rep %d: governed outcome %+v diverges from oracle %+v", rep, got, want)
		}
		if got.Exc != rt.ExcNone || got.Value != w.Ref(n) {
			t.Fatalf("rep %d: outcome %+v does not match reference %d", rep, got, w.Ref(n))
		}
	}

	grep := gov.GovernorReport()
	if grep.Demotions < 1 {
		t.Fatal("flapping profile never triggered a demotion")
	}
	if grep.Recompiles > policy.RecompileBudget {
		t.Fatalf("%d recompiles exceed the budget %d", grep.Recompiles, policy.RecompileBudget)
	}
	// Convergence: once the flapping sites are demoted (or the budget pinned
	// the method), a further invocation performs no new recompiles.
	before := grep.Recompiles
	if _, err := gov.Call(em.Fn, n); err != nil {
		t.Fatal(err)
	}
	if after := gov.GovernorReport().Recompiles; after != before {
		t.Fatalf("governor still recompiling after convergence: %d -> %d", before, after)
	}
}
