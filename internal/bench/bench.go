// Package bench is the experiment harness: it runs every workload under
// every JIT configuration on the simulated machines and renders the rows of
// each table and the series of each figure in the paper's evaluation
// section (§5). Checksums are verified against the pure-Go references on
// every run, so the benchmark numbers can never come from broken code.
package bench

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/faultinject"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// Cell is one (configuration, workload) measurement.
type Cell struct {
	Workload string
	Config   string
	// Cycles is the simulated execution cost; SimSeconds converts it at the
	// model's clock rate.
	Cycles     int64
	SimSeconds float64
	// Compile times are real (host) durations of our optimizer, split the
	// way Table 4 reports them.
	CompileNull  time.Duration
	CompileOther time.Duration
	// Exec counts dynamic events; Static summarizes the compile-side check
	// statistics.
	Exec   machine.ExecStats
	Static jit.Result
	// Err is the deterministic failure reason when this cell could not be
	// measured (compile error, pass panic, checksum mismatch, ...); the
	// measurement fields above are zero. A failed cell never aborts the
	// sweep — tables render it as ERROR(<reason>).
	Err string

	// Fates is the null-check fate histogram of the cell's compilation; nil
	// unless Options.Remarks. Profile is the hot-block execution summary;
	// nil unless Options.Profile. Both are deterministic (fixed-order
	// structs, sorted slices) so they extend the sweep's determinism
	// contract.
	Fates   *obs.FateCounts
	Profile *obs.ProfileSummary
	// Attr is the per-trap-site cycle ledger (implicit / explicit / trap /
	// guard-free buckets summing exactly to Cycles); nil unless
	// Options.Timeline. Deterministic like Fates and Profile.
	Attr *obs.Attribution
	// remarks backs Fates with the full per-method ledgers (hot-block
	// overlays and renderers use it); not serialized.
	remarks *obs.Remarks
}

// Failed reports whether the cell is an error entry.
func (c *Cell) Failed() bool { return c.Err != "" }

// ErrText renders the deterministic table text for a failed cell.
func (c *Cell) ErrText() string { return "ERROR(" + c.Err + ")" }

// CompileTotal returns the whole compile time for the cell.
func (c *Cell) CompileTotal() time.Duration { return c.CompileNull + c.CompileOther }

// Matrix holds the cells of one (model, config set, workload set) sweep.
type Matrix struct {
	Model     *arch.Model
	Configs   []jit.Config
	Workloads []*workloads.Workload
	Quick     bool
	// Cells is indexed [config name][workload name].
	Cells map[string]map[string]*Cell
	// CompileCache holds the sweep-scoped compilation cache's traffic
	// counters; nil when the cache was disabled for this sweep.
	CompileCache *jit.CacheStats
}

// Cell returns the measurement for (config, workload).
func (m *Matrix) Cell(config, workload string) *Cell {
	if row, ok := m.Cells[config]; ok {
		return row[workload]
	}
	return nil
}

// Options tunes a sweep.
type Options struct {
	// Quick selects the small problem sizes (used by tests).
	Quick bool
	// CompileReps measures compilation this many times and keeps the
	// fastest, stabilizing the µs-scale timings of Tables 3–5. Minimum 1.
	CompileReps int
	// Parallelism bounds how many (config, workload) cells run
	// concurrently: 0 means GOMAXPROCS, 1 forces the serial sweep. Every
	// cell gets its own Machine and Heap, and each cell's compile timing
	// runs start-to-finish on its own goroutine with CompileReps
	// unchanged, so per-phase compile accounting (Tables 3–5) stays valid.
	Parallelism int

	// CompileCache controls the sweep-scoped content-addressed compilation
	// cache (internal/jit cache.go). The zero value CacheAuto enables it
	// unless the TRAPNULL_COMPILE_CACHE environment variable says otherwise.
	// With the cache on, each cell compiles its program at most once — the
	// CompileReps best-of-N timing loop is skipped, because a cached Result
	// replays the stored times anyway — so Tables 3–5 report single-compile
	// timings; every timing-free artifact is byte-identical either way (the
	// compiled IR is deterministic, cache or no cache).
	CompileCache CacheSetting
	// CompileParallelism is forwarded to jit.CompileOptions.Parallelism:
	// methods of one program compile on that many workers (≤ 1 = serial).
	// The artifact is byte-identical at any setting.
	CompileParallelism int

	// Trace, when non-nil, collects Chrome trace-event spans: one lane per
	// cell, a cell span wrapping the measured compile and run, pass and
	// function spans nested inside (benchtab -trace). Cache-enabled cells
	// additionally get a compile_cache span recording hit or miss.
	Trace *obs.Trace
	// Remarks attaches a fate ledger to every cell's final compilation and
	// fills Cell.Fates (benchtab -remarks; JSON check_fates).
	Remarks bool
	// Profile counts block entries during every cell's run and fills
	// Cell.Profile (benchtab -profile; JSON profile).
	Profile bool

	// Timeline, when non-nil, attaches a flight recorder and trap-cost
	// attribution to every cell's machine and merges each cell's adaptive
	// events and cycle ledger into it (benchtab -timeline). When Trace is
	// also set, the recorded events additionally appear as instant markers
	// on the cell's trace lane.
	Timeline *obs.Timeline
	// Metrics, when non-nil, receives the sweep's counters after assembly
	// (benchtab -metrics): engine, static-check, attribution and cache
	// totals, published in fixed registration order so the deterministic
	// snapshot of the same sweep is byte-identical at any parallelism.
	Metrics *obs.Registry

	// CellTimeout, when positive, bounds each cell's wall-clock measurement
	// (benchtab -cell-timeout). A cell that exceeds it is cancelled
	// cooperatively — the machine's abort flag is raised and polled at block
	// entry — and renders as the deterministic ERROR(timeout) entry instead
	// of hanging the sweep.
	CellTimeout time.Duration
	// Inject attaches a deterministic fault-injection schedule to the sweep
	// (benchtab -chaos): seeded compile-pass panics, engine step faults and
	// compile-cache slot faults, all keyed on semantic coordinates so the
	// same seed reproduces the same faults byte-for-byte at any parallelism.
	Inject *faultinject.Injector
}

// CacheSetting is the tri-state compile-cache switch.
type CacheSetting uint8

const (
	// CacheAuto defers to TRAPNULL_COMPILE_CACHE: "off"/"0"/"false" disables
	// the cache, anything else (including unset) enables it.
	CacheAuto CacheSetting = iota
	// CacheOn forces the cache regardless of the environment.
	CacheOn
	// CacheOff disables it regardless of the environment.
	CacheOff
)

// cacheEnabled resolves the tri-state against the environment.
func (o Options) cacheEnabled() bool {
	switch o.CompileCache {
	case CacheOn:
		return true
	case CacheOff:
		return false
	}
	switch strings.ToLower(os.Getenv("TRAPNULL_COMPILE_CACHE")) {
	case "off", "0", "false":
		return false
	}
	return true
}

// observed reports whether the final compile rep needs an observer.
func (o Options) observed() bool { return o.Trace != nil || o.Remarks }

func (o Options) workers(total int) int {
	n := o.Parallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > total {
		n = total
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run sweeps configs × workloads on the model, fanning cells out to a
// bounded worker pool. Results land in slots pre-sized by (config, workload)
// index, so the assembled matrix — and everything rendered from it — is
// identical to the serial sweep regardless of completion order.
//
// A failing cell — compile error, contained pass panic, run failure,
// checksum mismatch, even a panicking workload builder — never aborts the
// sweep: it becomes an error entry (Cell.Err) and every other cell is still
// measured. When any cell failed, the returned error lists all failures in
// declaration order (deterministic regardless of worker count) alongside the
// complete matrix, so callers can render the partial results and still exit
// non-zero.
func Run(model *arch.Model, configs []jit.Config, ws []*workloads.Workload, opts Options) (*Matrix, error) {
	if opts.CompileReps < 1 {
		opts.CompileReps = 1
	}
	// Pre-register the metric set so the snapshot's order is fixed before
	// any worker touches a counter.
	registerSweepMetrics(opts.Metrics)
	m := &Matrix{
		Model:     model,
		Configs:   configs,
		Workloads: ws,
		Quick:     opts.Quick,
		Cells:     make(map[string]map[string]*Cell),
	}

	type job struct{ ci, wi int }
	total := len(configs) * len(ws)
	cells := make([][]*Cell, len(configs))
	for ci := range configs {
		cells[ci] = make([]*Cell, len(ws))
	}

	// One content-addressed compile cache per sweep: concurrent cells that
	// need the same (program, projection, model) compilation coalesce onto a
	// single compile, and triage-style replays of the same sweep would hit.
	var cache *jit.Cache
	if opts.cacheEnabled() {
		cache = jit.NewCache(0)
		if opts.Inject != nil {
			cf := opts.Inject.CacheFaults()
			cache.SetFaultPolicy(&jit.CacheFaultPolicy{Evict: cf.Evict, Corrupt: cf.Corrupt})
		}
	}

	jobs := make(chan job, total)
	var wg sync.WaitGroup
	for i := 0; i < opts.workers(total); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cells[j.ci][j.wi] = runCell(model, configs[j.ci], ws[j.wi], opts, cache)
			}
		}()
	}
	for ci := range configs {
		for wi := range ws {
			jobs <- job{ci, wi}
		}
	}
	close(jobs)
	wg.Wait()
	if cache != nil {
		st := cache.Stats()
		m.CompileCache = &st
		publishCacheMetrics(opts.Metrics, st)
		noteCacheEvents(opts.Timeline, model.Name, cache)
	}

	// Assemble in declaration order, collecting failures in the same order
	// so the aggregate error is deterministic too.
	var failures []string
	for ci, cfg := range configs {
		row := make(map[string]*Cell, len(ws))
		m.Cells[cfg.Name] = row
		for wi, w := range ws {
			c := cells[ci][wi]
			row[w.Name] = c
			// Metrics publish runs here, single-threaded and in declaration
			// order, so the registry sees the same sequence of adds no
			// matter how the worker pool interleaved the cells.
			publishCellMetrics(opts.Metrics, c)
			if c.Failed() {
				failures = append(failures, fmt.Sprintf("%s/%s: %s", cfg.Name, w.Name, c.Err))
			}
		}
	}
	if len(failures) > 0 {
		return m, fmt.Errorf("bench: %d cell(s) failed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return m, nil
}

// failReason maps a cell failure to its deterministic table text: structured
// pass errors render through PassError.Reason (stable across runs and worker
// counts — no addresses, stacks or timings), everything else through its
// error string.
func failReason(err error) string {
	var pe *jit.PassError
	if errors.As(err, &pe) {
		return pe.Reason()
	}
	return err.Error()
}

// runCell wraps runOne with the optional wall-clock deadline. The cell runs
// on its own goroutine; on timeout the machine's abort flag is raised and the
// wrapper waits for the cooperative cancel (block-entry polls) so the cell
// has stopped touching shared state — the compile cache above all — before
// the deterministic ERROR(timeout) entry replaces whatever it was measuring.
func runCell(model *arch.Model, cfg jit.Config, w *workloads.Workload, opts Options, cache *jit.Cache) *Cell {
	if opts.CellTimeout <= 0 {
		return runOne(model, cfg, w, opts, cache, nil)
	}
	abort := new(atomic.Bool)
	done := make(chan *Cell, 1)
	go func() { done <- runOne(model, cfg, w, opts, cache, abort) }()
	timer := time.NewTimer(opts.CellTimeout)
	defer timer.Stop()
	select {
	case c := <-done:
		return c
	case <-timer.C:
		abort.Store(true)
		<-done
		return &Cell{Workload: w.Name, Config: cfg.Name, Err: "timeout"}
	}
}

// runOne measures one (config, workload) cell. It never fails the sweep: any
// error — including a panic out of the workload builder, the compiler, or
// the simulated machine — degrades to an error cell. abort, when non-nil, is
// the cooperative cancellation flag runCell polls through the machine.
func runOne(model *arch.Model, cfg jit.Config, w *workloads.Workload, opts Options, cache *jit.Cache, abort *atomic.Bool) (cell *Cell) {
	errCell := func(reason string) *Cell {
		return &Cell{Workload: w.Name, Config: cfg.Name, Err: reason}
	}
	defer func() {
		if r := recover(); r != nil {
			cell = errCell(fmt.Sprintf("panic: %v", r))
		}
	}()

	n := w.N
	if opts.Quick {
		n = w.TestN
	}

	cellName := cfg.Name + "/" + w.Name
	if cache != nil {
		return runOneCached(model, cfg, w, opts, cache, n, cellName, errCell, abort)
	}

	// Compile: repeat for timing stability, keeping the fastest rep (the
	// one least disturbed by the host). The final rep's program is run, and
	// only the final rep is observed — remarks and trace spans describe
	// exactly the program the measurements come from. (With tracing on, the
	// observed rep's compile timing includes the span bookkeeping; the
	// overhead budget test in internal/obs bounds it.)
	var best *jit.Result
	var finalProg *machine.Machine
	var rem *obs.Remarks
	var prof *obs.ExecProfile
	var attr *obs.Attribution
	var tid int64
	var cellStart time.Time
	for rep := 0; rep < opts.CompileReps; rep++ {
		p, entryM := w.Build()
		final := rep == opts.CompileReps-1

		// Injected pass faults key on the compilation's content identity, so
		// every rep of the same cell draws the same fault.
		var passFault func(method, pass string) string
		if opts.Inject != nil {
			passFault = opts.Inject.PassFault(jit.Key(p, cfg, model).ID())
		}

		var res *jit.Result
		var err error
		if final && opts.observed() {
			ob := &jit.Observer{}
			if opts.Trace != nil {
				tid = opts.Trace.NextTID()
				cellStart = time.Now()
				ob.Trace = opts.Trace
				ob.TID = tid
			}
			if opts.Remarks {
				rem = obs.NewRemarks()
				ob.Remarks = rem
			}
			res, err = jit.CompileProgramWith(p, cfg, model,
				jit.CompileOptions{Observer: ob, Parallelism: opts.CompileParallelism, PassFault: passFault})
		} else {
			res, err = jit.CompileProgramWith(p, cfg, model,
				jit.CompileOptions{Parallelism: opts.CompileParallelism, PassFault: passFault})
		}
		if err != nil {
			return errCell(failReason(err))
		}
		if best == nil || res.Times.Total() < best.Times.Total() {
			best = res
		}
		if final {
			mach := machine.New(model, p)
			mach.Abort = abort
			if opts.Profile {
				prof = obs.NewExecProfile()
				mach.Profile = prof
			}
			rec := attachRecorder(opts.Timeline, mach, true)
			if opts.Inject != nil {
				if step, ok := opts.Inject.StepFault(model.Name + "/" + cellName); ok {
					mach.InjectStepFault(step)
					rec.Record(0, "chaos", "step-fault-arm", cellName, fmt.Sprintf("fires at step %d", step))
				}
			}
			var execStart time.Time
			if opts.Trace != nil {
				execStart = time.Now()
			}
			out, err := mach.Call(entryM.Fn, n)
			execDur := time.Since(execStart)
			if opts.Trace != nil {
				now := time.Now()
				opts.Trace.Span(tid, "exec", "run "+cellName, execStart, now.Sub(execStart),
					map[string]any{"cycles": mach.Cycles, "instrs": mach.Stats.Instrs})
				opts.Trace.Span(tid, "cell", cellName, cellStart, now.Sub(cellStart), nil)
			}
			attr = mach.CycleAttribution()
			// Publish before the error checks: a cell that errored (an
			// injected fault, say) still lands its recorded strand in the
			// timeline — that is what the chaos fire markers are for.
			publishTimeline(opts.Timeline, opts.Trace, model.Name+"/"+cellName, rec,
				attr, tid, execStart, execDur, mach.Steps())
			if err != nil {
				return errCell(failReason(err))
			}
			if out.Exc != rt.ExcNone {
				return errCell(fmt.Sprintf("unexpected exception %v", out.Exc))
			}
			if want := w.Ref(n); out.Value != want {
				return errCell(fmt.Sprintf("checksum mismatch: got %d, want %d", out.Value, want))
			}
			finalProg = mach
		}
	}

	cell = &Cell{
		Workload:     w.Name,
		Config:       cfg.Name,
		Cycles:       finalProg.Cycles,
		SimSeconds:   float64(finalProg.Cycles) / float64(model.ClockHz),
		CompileNull:  best.Times.NullCheckOpt,
		CompileOther: best.Times.Other,
		Exec:         finalProg.Stats,
		Static:       *best,
		Attr:         attr,
	}
	if rem != nil {
		fc := rem.Totals()
		cell.Fates = &fc
		cell.remarks = rem
	}
	if prof != nil {
		cell.Profile = prof.Summary(hotBlockTopN, rem,
			finalProg.Stats.TrapsTaken, finalProg.Stats.ExplicitChecks, finalProg.Stats.ImplicitSites)
	}
	return cell
}

// runOneCached is runOne's compile path when the sweep carries a compile
// cache: build the program once, address the compilation by content, and
// reuse the stored artifact on a hit. The CompileReps loop is skipped — a
// cached Result replays the stored timings, so best-of-N has nothing to
// average — and per-cell statistics (Fates, Static, compile times) are
// RE-DERIVED from the shared immutable entry rather than accumulated into
// it, so two cells hitting one entry never double-count.
func runOneCached(model *arch.Model, cfg jit.Config, w *workloads.Workload, opts Options,
	cache *jit.Cache, n int64, cellName string, errCell func(string) *Cell, abort *atomic.Bool) *Cell {
	p, entryM := w.Build()

	var tid int64
	var cellStart time.Time
	if opts.Trace != nil {
		tid = opts.Trace.NextTID()
		cellStart = time.Now()
	}

	key := jit.Key(p, cfg, model)
	// Injected pass faults key on the compilation identity (the cache key),
	// not the cell: under single-flight coalescing WHICH cell compiles depends
	// on worker interleaving, but what is compiled does not.
	var passFault func(method, pass string) string
	if opts.Inject != nil {
		passFault = opts.Inject.PassFault(key.ID())
	}
	entry, hit, err := cache.GetOrCompile(key, opts.Remarks, func() (*jit.CacheEntry, error) {
		var rem *obs.Remarks
		var ob *jit.Observer
		if opts.observed() {
			ob = &jit.Observer{}
			if opts.Trace != nil {
				ob.Trace = opts.Trace
				ob.TID = tid
			}
			if opts.Remarks {
				rem = obs.NewRemarks()
				ob.Remarks = rem
			}
		}
		res, cerr := jit.CompileProgramWith(p, cfg, model,
			jit.CompileOptions{Observer: ob, Parallelism: opts.CompileParallelism, PassFault: passFault})
		if cerr != nil {
			return nil, cerr
		}
		return &jit.CacheEntry{Program: p, Result: res, Remarks: rem}, nil
	})
	if opts.Trace != nil {
		opts.Trace.Span(tid, "compile_cache", cellName, cellStart, time.Since(cellStart),
			map[string]any{"hit": hit})
	}
	if err != nil {
		return errCell(failReason(err))
	}

	// On a hit the entry's program is NOT the one we just built; resolve our
	// entry method into the cached program by qualified name. The cached IR
	// is shared between cells and execution never mutates it (machines decode
	// into their own tables).
	prog := entry.Program
	em := prog.MethodByName(entryM.QualifiedName())
	if em == nil || em.Fn == nil {
		return errCell("cached program lacks entry method " + entryM.QualifiedName())
	}

	mach := machine.New(model, prog)
	mach.Abort = abort
	var prof *obs.ExecProfile
	if opts.Profile {
		prof = obs.NewExecProfile()
		mach.Profile = prof
	}
	rec := attachRecorder(opts.Timeline, mach, true)
	if opts.Inject != nil {
		if step, ok := opts.Inject.StepFault(model.Name + "/" + cellName); ok {
			mach.InjectStepFault(step)
			rec.Record(0, "chaos", "step-fault-arm", cellName, fmt.Sprintf("fires at step %d", step))
		}
	}
	var execStart time.Time
	if opts.Trace != nil {
		execStart = time.Now()
	}
	out, err := mach.Call(em.Fn, n)
	execDur := time.Since(execStart)
	if opts.Trace != nil {
		now := time.Now()
		opts.Trace.Span(tid, "exec", "run "+cellName, execStart, now.Sub(execStart),
			map[string]any{"cycles": mach.Cycles, "instrs": mach.Stats.Instrs})
		opts.Trace.Span(tid, "cell", cellName, cellStart, now.Sub(cellStart), nil)
	}
	attr := mach.CycleAttribution()
	publishTimeline(opts.Timeline, opts.Trace, model.Name+"/"+cellName, rec,
		attr, tid, execStart, execDur, mach.Steps())
	if err != nil {
		return errCell(failReason(err))
	}
	if out.Exc != rt.ExcNone {
		return errCell(fmt.Sprintf("unexpected exception %v", out.Exc))
	}
	if want := w.Ref(n); out.Value != want {
		return errCell(fmt.Sprintf("checksum mismatch: got %d, want %d", out.Value, want))
	}

	cell := &Cell{
		Workload:     w.Name,
		Config:       cfg.Name,
		Cycles:       mach.Cycles,
		SimSeconds:   float64(mach.Cycles) / float64(model.ClockHz),
		CompileNull:  entry.Result.Times.NullCheckOpt,
		CompileOther: entry.Result.Times.Other,
		Exec:         mach.Stats,
		Static:       *entry.Result,
		Attr:         attr,
	}
	if opts.Remarks && entry.Remarks != nil {
		fc := entry.Remarks.Totals()
		cell.Fates = &fc
		cell.remarks = entry.Remarks
	}
	if prof != nil {
		cell.Profile = prof.Summary(hotBlockTopN, entry.Remarks,
			mach.Stats.TrapsTaken, mach.Stats.ExplicitChecks, mach.Stats.ImplicitSites)
	}
	return cell
}

// hotBlockTopN bounds the per-cell hot-block report.
const hotBlockTopN = 10

// Index is the jBYTEmark-style score: iterations of the reference machine
// per simulated second (larger is better).
func (c *Cell) Index() float64 {
	if c.SimSeconds == 0 {
		return 0
	}
	return 1.0 / c.SimSeconds
}

// SimMillis returns the SPECjvm98-style time metric (smaller is better).
func (c *Cell) SimMillis() float64 { return c.SimSeconds * 1000 }

// Report bundles the four sweeps that feed every table and figure.
type Report struct {
	WinJB   *Matrix // Table 1, Figures 8/10
	WinSpec *Matrix // Tables 2–5, Figures 9/11/12/13
	AIXJB   *Matrix // Table 6, Figure 14
	AIXSpec *Matrix // Table 7, Figure 15
}

// RunAll produces the full report. All four sweeps run to completion even
// when cells fail; the returned error (if any) joins each sweep's failure
// list, and the report is always non-nil so partial results can be rendered.
func RunAll(opts Options) (*Report, error) {
	var errs []error
	sweep := func(m *Matrix, err error) *Matrix {
		if err != nil {
			errs = append(errs, err)
		}
		return m
	}
	rep := &Report{
		WinJB:   sweep(Run(arch.IA32Win(), jit.WindowsConfigs(), workloads.JBYTEmark(), opts)),
		WinSpec: sweep(Run(arch.IA32Win(), jit.WindowsConfigs(), workloads.SPECjvm98(), opts)),
		AIXJB:   sweep(Run(arch.PPCAIX(), jit.AIXConfigs(), workloads.JBYTEmark(), opts)),
		AIXSpec: sweep(Run(arch.PPCAIX(), jit.AIXConfigs(), workloads.SPECjvm98(), opts)),
	}
	return rep, errors.Join(errs...)
}
