// Package bench is the experiment harness: it runs every workload under
// every JIT configuration on the simulated machines and renders the rows of
// each table and the series of each figure in the paper's evaluation
// section (§5). Checksums are verified against the pure-Go references on
// every run, so the benchmark numbers can never come from broken code.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
	"trapnull/internal/workloads"
)

// Cell is one (configuration, workload) measurement.
type Cell struct {
	Workload string
	Config   string
	// Cycles is the simulated execution cost; SimSeconds converts it at the
	// model's clock rate.
	Cycles     int64
	SimSeconds float64
	// Compile times are real (host) durations of our optimizer, split the
	// way Table 4 reports them.
	CompileNull  time.Duration
	CompileOther time.Duration
	// Exec counts dynamic events; Static summarizes the compile-side check
	// statistics.
	Exec   machine.ExecStats
	Static jit.Result
}

// CompileTotal returns the whole compile time for the cell.
func (c *Cell) CompileTotal() time.Duration { return c.CompileNull + c.CompileOther }

// Matrix holds the cells of one (model, config set, workload set) sweep.
type Matrix struct {
	Model     *arch.Model
	Configs   []jit.Config
	Workloads []*workloads.Workload
	Quick     bool
	// Cells is indexed [config name][workload name].
	Cells map[string]map[string]*Cell
}

// Cell returns the measurement for (config, workload).
func (m *Matrix) Cell(config, workload string) *Cell {
	if row, ok := m.Cells[config]; ok {
		return row[workload]
	}
	return nil
}

// Options tunes a sweep.
type Options struct {
	// Quick selects the small problem sizes (used by tests).
	Quick bool
	// CompileReps measures compilation this many times and keeps the
	// fastest, stabilizing the µs-scale timings of Tables 3–5. Minimum 1.
	CompileReps int
	// Parallelism bounds how many (config, workload) cells run
	// concurrently: 0 means GOMAXPROCS, 1 forces the serial sweep. Every
	// cell gets its own Machine and Heap, and each cell's compile timing
	// runs start-to-finish on its own goroutine with CompileReps
	// unchanged, so per-phase compile accounting (Tables 3–5) stays valid.
	Parallelism int
}

func (o Options) workers(total int) int {
	n := o.Parallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > total {
		n = total
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run sweeps configs × workloads on the model, fanning cells out to a
// bounded worker pool. Results land in slots pre-sized by (config, workload)
// index, so the assembled matrix — and everything rendered from it — is
// identical to the serial sweep regardless of completion order.
func Run(model *arch.Model, configs []jit.Config, ws []*workloads.Workload, opts Options) (*Matrix, error) {
	if opts.CompileReps < 1 {
		opts.CompileReps = 1
	}
	m := &Matrix{
		Model:     model,
		Configs:   configs,
		Workloads: ws,
		Quick:     opts.Quick,
		Cells:     make(map[string]map[string]*Cell),
	}

	type job struct{ ci, wi int }
	total := len(configs) * len(ws)
	cells := make([][]*Cell, len(configs))
	errs := make([][]error, len(configs))
	for ci := range configs {
		cells[ci] = make([]*Cell, len(ws))
		errs[ci] = make([]error, len(ws))
	}

	jobs := make(chan job, total)
	var wg sync.WaitGroup
	for i := 0; i < opts.workers(total); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cells[j.ci][j.wi], errs[j.ci][j.wi] = runOne(model, configs[j.ci], ws[j.wi], opts)
			}
		}()
	}
	for ci := range configs {
		for wi := range ws {
			jobs <- job{ci, wi}
		}
	}
	close(jobs)
	wg.Wait()

	// Assemble in declaration order; report the first failure by (config,
	// workload) position so errors are deterministic too.
	for ci, cfg := range configs {
		row := make(map[string]*Cell, len(ws))
		m.Cells[cfg.Name] = row
		for wi, w := range ws {
			if err := errs[ci][wi]; err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", cfg.Name, w.Name, err)
			}
			row[w.Name] = cells[ci][wi]
		}
	}
	return m, nil
}

func runOne(model *arch.Model, cfg jit.Config, w *workloads.Workload, opts Options) (*Cell, error) {
	n := w.N
	if opts.Quick {
		n = w.TestN
	}

	// Compile: repeat for timing stability, keeping the fastest rep (the
	// one least disturbed by the host). The final rep's program is run.
	var best *jit.Result
	var finalProg *machine.Machine
	for rep := 0; rep < opts.CompileReps; rep++ {
		p, entryM := w.Build()
		res, err := jit.CompileProgram(p, cfg, model)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Times.Total() < best.Times.Total() {
			best = res
		}
		if rep == opts.CompileReps-1 {
			mach := machine.New(model, p)
			out, err := mach.Call(entryM.Fn, n)
			if err != nil {
				return nil, err
			}
			if out.Exc != rt.ExcNone {
				return nil, fmt.Errorf("unexpected exception %v", out.Exc)
			}
			if want := w.Ref(n); out.Value != want {
				return nil, fmt.Errorf("checksum mismatch: got %d, want %d", out.Value, want)
			}
			finalProg = mach
		}
	}

	cell := &Cell{
		Workload:     w.Name,
		Config:       cfg.Name,
		Cycles:       finalProg.Cycles,
		SimSeconds:   float64(finalProg.Cycles) / float64(model.ClockHz),
		CompileNull:  best.Times.NullCheckOpt,
		CompileOther: best.Times.Other,
		Exec:         finalProg.Stats,
		Static:       *best,
	}
	return cell, nil
}

// Index is the jBYTEmark-style score: iterations of the reference machine
// per simulated second (larger is better).
func (c *Cell) Index() float64 {
	if c.SimSeconds == 0 {
		return 0
	}
	return 1.0 / c.SimSeconds
}

// SimMillis returns the SPECjvm98-style time metric (smaller is better).
func (c *Cell) SimMillis() float64 { return c.SimSeconds * 1000 }

// Report bundles the four sweeps that feed every table and figure.
type Report struct {
	WinJB   *Matrix // Table 1, Figures 8/10
	WinSpec *Matrix // Tables 2–5, Figures 9/11/12/13
	AIXJB   *Matrix // Table 6, Figure 14
	AIXSpec *Matrix // Table 7, Figure 15
}

// RunAll produces the full report.
func RunAll(opts Options) (*Report, error) {
	winJB, err := Run(arch.IA32Win(), jit.WindowsConfigs(), workloads.JBYTEmark(), opts)
	if err != nil {
		return nil, err
	}
	winSpec, err := Run(arch.IA32Win(), jit.WindowsConfigs(), workloads.SPECjvm98(), opts)
	if err != nil {
		return nil, err
	}
	aixJB, err := Run(arch.PPCAIX(), jit.AIXConfigs(), workloads.JBYTEmark(), opts)
	if err != nil {
		return nil, err
	}
	aixSpec, err := Run(arch.PPCAIX(), jit.AIXConfigs(), workloads.SPECjvm98(), opts)
	if err != nil {
		return nil, err
	}
	return &Report{WinJB: winJB, WinSpec: winSpec, AIXJB: aixJB, AIXSpec: aixSpec}, nil
}
