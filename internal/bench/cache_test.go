package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/workloads"
)

// TestCompileCacheDeterminism is the cache acceptance gate: a cache-on sweep
// and a cache-off sweep must render byte-identical timing-free artifacts and
// identical per-cell simulated measurements, static statistics, and fate
// histograms. Only host compile timings may differ (cache-on skips the
// best-of-reps loop).
func TestCompileCacheDeterminism(t *testing.T) {
	on, err := RunAll(Options{Quick: true, CompileReps: 2, Parallelism: 4,
		CompileCache: CacheOn, Remarks: true})
	if err != nil {
		t.Fatalf("cache-on sweep: %v", err)
	}
	off, err := RunAll(Options{Quick: true, CompileReps: 2, Parallelism: 4,
		CompileCache: CacheOff, Remarks: true})
	if err != nil {
		t.Fatalf("cache-off sweep: %v", err)
	}

	onArts, offArts := on.Artifacts(), off.Artifacts()
	for _, name := range timingFreeArtifacts {
		if o, f := onArts[name](), offArts[name](); o != f {
			t.Errorf("%s differs with the compile cache on:\n--- on ---\n%s\n--- off ---\n%s", name, o, f)
		}
	}

	pairs := []struct {
		name    string
		on, off *Matrix
	}{
		{"WinJB", on.WinJB, off.WinJB},
		{"WinSpec", on.WinSpec, off.WinSpec},
		{"AIXJB", on.AIXJB, off.AIXJB},
		{"AIXSpec", on.AIXSpec, off.AIXSpec},
	}
	for _, pr := range pairs {
		if pr.on.CompileCache == nil {
			t.Errorf("%s: cache-on matrix has no cache stats", pr.name)
		} else if want := int64(len(pr.on.Configs) * len(pr.on.Workloads)); pr.on.CompileCache.Misses != want {
			// Every cell is a distinct (program, projection) pair, so every
			// cell compiles exactly once — deterministic miss count.
			t.Errorf("%s: %d misses, want %d (one per cell)", pr.name, pr.on.CompileCache.Misses, want)
		}
		if pr.off.CompileCache != nil {
			t.Errorf("%s: cache-off matrix carries cache stats", pr.name)
		}
		for _, cfg := range pr.on.Configs {
			for _, w := range pr.on.Workloads {
				oc, fc := pr.on.Cell(cfg.Name, w.Name), pr.off.Cell(cfg.Name, w.Name)
				if oc == nil || fc == nil {
					t.Fatalf("%s %s/%s: missing cell", pr.name, cfg.Name, w.Name)
				}
				if oc.Cycles != fc.Cycles || oc.Exec != fc.Exec {
					t.Errorf("%s %s/%s: cached cell measured differently: cycles %d vs %d",
						pr.name, cfg.Name, w.Name, oc.Cycles, fc.Cycles)
				}
				os, fs := oc.Static, fc.Static
				if os.Checks != fs.Checks || os.Inline != fs.Inline || os.Scalar != fs.Scalar ||
					os.BoundChecksRemoved != fs.BoundChecksRemoved || os.FuncsCompiled != fs.FuncsCompiled {
					t.Errorf("%s %s/%s: static stats differ with cache on:\n%+v\nvs\n%+v",
						pr.name, cfg.Name, w.Name, os, fs)
				}
				if !reflect.DeepEqual(oc.Fates, fc.Fates) {
					t.Errorf("%s %s/%s: fate histograms differ with cache on:\n%+v\nvs\n%+v",
						pr.name, cfg.Name, w.Name, oc.Fates, fc.Fates)
				}
			}
		}
	}
}

// TestCompileCacheFateReattribution pins the no-double-count contract: when
// several cells hit one cached entry, each cell's fate histogram is
// re-derived from the shared immutable ledger, not accumulated into it. Two
// configs differing only in display name share every cache key, so the
// second config's cells are guaranteed hits.
func TestCompileCacheFateReattribution(t *testing.T) {
	model := arch.IA32Win()
	base := jit.ConfigPhase1Phase2()
	clone := base
	clone.Name = base.Name + "-clone"
	clone.Verify = !base.Verify // projection-excluded field: still the same key
	ws := workloads.JBYTEmark()[:3]

	m, err := Run(model, []jit.Config{base, clone}, ws,
		Options{Quick: true, CompileReps: 1, CompileCache: CacheOn, Remarks: true})
	if err != nil {
		t.Fatal(err)
	}
	st := m.CompileCache
	if st == nil {
		t.Fatal("no cache stats")
	}
	if want := int64(len(ws)); st.Misses != want || st.Hits != want {
		t.Fatalf("stats = %+v, want %d misses and %d hits (clone cells all hit)", *st, want, want)
	}
	for _, w := range ws {
		b, c := m.Cell(base.Name, w.Name), m.Cell(clone.Name, w.Name)
		if b == nil || c == nil || b.Fates == nil || c.Fates == nil {
			t.Fatalf("%s: missing cell or fates", w.Name)
		}
		// Identical histograms — and in particular NOT doubled on the hit.
		if *b.Fates != *c.Fates {
			t.Errorf("%s: hit cell's fates differ from miss cell's:\nmiss %+v\nhit  %+v", w.Name, b.Fates, c.Fates)
		}
		if b.Cycles != c.Cycles || b.Exec != c.Exec {
			t.Errorf("%s: hit cell measured differently from miss cell", w.Name)
		}
	}
}

// TestCompileCacheEntryImmutable deep-freezes a cache entry and verifies
// that consuming it the way runOneCached does — executing the program,
// re-deriving statistics — leaves every byte of it untouched.
func TestCompileCacheEntryImmutable(t *testing.T) {
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	w, err := workloads.ByName("Assignment")
	if err != nil {
		t.Fatal(err)
	}
	cache := jit.NewCache(0)
	p, entryM := w.Build()
	entry, _, err := cache.GetOrCompile(jit.Key(p, cfg, model), false, func() (*jit.CacheEntry, error) {
		res, cerr := jit.CompileProgram(p, cfg, model)
		if cerr != nil {
			return nil, cerr
		}
		return &jit.CacheEntry{Program: p, Result: res}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	freeze := func() (string, string) {
		var sb strings.Builder
		for _, m := range entry.Program.Methods {
			if m.Fn != nil {
				sb.WriteString(m.Fn.String())
			}
		}
		return sb.String(), fmt.Sprintf("%+v", *entry.Result)
	}
	irBefore, resBefore := freeze()

	for i := 0; i < 2; i++ { // two consumers, as two hit cells would be
		mach := machine.New(model, entry.Program)
		out, err := mach.Call(entry.Program.MethodByName(entryM.QualifiedName()).Fn, w.TestN)
		if err != nil {
			t.Fatal(err)
		}
		if want := w.Ref(w.TestN); out.Value != want {
			t.Fatalf("checksum mismatch: got %d, want %d", out.Value, want)
		}
		derived := *entry.Result // per-cell stats are copies
		derived.FuncsCompiled++  // mutate the copy, never the entry
		_ = derived
	}

	irAfter, resAfter := freeze()
	if irBefore != irAfter {
		t.Error("executing a cached program mutated its IR")
	}
	if resBefore != resAfter {
		t.Errorf("consuming a cached Result mutated it:\nbefore %s\nafter  %s", resBefore, resAfter)
	}
}

// TestCompileCacheJSONGating: the compile_cache JSON block appears exactly
// when the cache ran, so cache-off JSON stays byte-compatible with the
// pre-cache shape.
func TestCompileCacheJSONGating(t *testing.T) {
	on, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4, CompileCache: CacheOn})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunAll(Options{Quick: true, CompileReps: 1, Parallelism: 4, CompileCache: CacheOff})
	if err != nil {
		t.Fatal(err)
	}
	jOn, err := on.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jOff, err := off.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"compile_cache"`, `"lookups"`, `"misses"`} {
		if !strings.Contains(string(jOn), want) {
			t.Errorf("cache-on JSON missing %s", want)
		}
	}
	if strings.Contains(string(jOff), `"compile_cache"`) {
		t.Error("cache-off JSON contains compile_cache; the block must be omitted")
	}
}

// TestCompileCacheEnvSwitch: TRAPNULL_COMPILE_CACHE governs CacheAuto.
func TestCompileCacheEnvSwitch(t *testing.T) {
	t.Setenv("TRAPNULL_COMPILE_CACHE", "off")
	if (Options{}).cacheEnabled() {
		t.Error("TRAPNULL_COMPILE_CACHE=off ignored by CacheAuto")
	}
	if !(Options{CompileCache: CacheOn}).cacheEnabled() {
		t.Error("CacheOn must override the environment")
	}
	t.Setenv("TRAPNULL_COMPILE_CACHE", "1")
	if !(Options{}).cacheEnabled() {
		t.Error("TRAPNULL_COMPILE_CACHE=1 should leave the cache on")
	}
	if (Options{CompileCache: CacheOff}).cacheEnabled() {
		t.Error("CacheOff must override the environment")
	}
}
