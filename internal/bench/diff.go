package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
)

// Benchdiff: benchstat-style comparison of two benchtab -json reports, and
// the regression gate behind cmd/benchdiff and the CI baseline check.
//
// The quantities it gates on are SIMULATED and deterministic — cycles, dynamic
// counters, fate histograms, cache hit rates — so a delta between two runs of
// the same tree is a bug, and a delta across trees is a real behavioral
// change. Host compile timings are reported but never gated by default: they
// are the one noisy column in the JSON.

// DiffOptions tunes the regression gate.
type DiffOptions struct {
	// CyclesTolerancePct is how far (percent) a cell's simulated cycles may
	// rise above the baseline before it gates. Cycles are deterministic, so
	// the tolerance exists to let intentional minor cost-model adjustments
	// through, not to absorb noise; CI uses a small value.
	CyclesTolerancePct float64
	// HitRateDropPct is how many percentage points a matrix's compile-cache
	// hit rate may drop before it gates.
	HitRateDropPct float64
	// CompileTolerancePct, when > 0, additionally gates on host compile
	// time (per cell, nullcheck+other µs). Default 0: compile deltas are
	// reported as notes only — host timing is noisy.
	CompileTolerancePct float64
	// StrictFates gates on any check-fate histogram change; otherwise fate
	// changes are notes.
	StrictFates bool
}

// Diff is the comparison result.
type Diff struct {
	// Lines is the rendered per-cell comparison in baseline order.
	Lines []string
	// Regressions lists the gating failures; empty means the gate passes.
	Regressions []string
	// Notes lists non-gating observations (improvements, fate changes,
	// new cells, compile-time deltas).
	Notes []string
}

// Ok reports whether the gate passes.
func (d *Diff) Ok() bool { return len(d.Regressions) == 0 }

// Render produces the full report text.
func (d *Diff) Render() string {
	var b strings.Builder
	for _, l := range d.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(d.Notes) > 0 {
		b.WriteString("notes:\n")
		for _, n := range d.Notes {
			b.WriteString("  " + n + "\n")
		}
	}
	if len(d.Regressions) > 0 {
		fmt.Fprintf(&b, "REGRESSIONS (%d):\n", len(d.Regressions))
		for _, r := range d.Regressions {
			b.WriteString("  " + r + "\n")
		}
	} else {
		b.WriteString("no regressions\n")
	}
	return b.String()
}

// matrixOrder fixes the rendering order of the report's matrices.
var matrixOrder = []string{"windows_jbytemark", "windows_specjvm98", "aix_jbytemark", "aix_specjvm98"}

// DiffReports compares two benchtab -json documents (old = baseline,
// new = candidate) and returns the rendered comparison plus the gating
// verdict. The comparison walks the baseline's cell order, so the output is
// deterministic for the same pair of inputs.
func DiffReports(oldData, newData []byte, opts DiffOptions) (*Diff, error) {
	var oldRep, newRep jsonReport
	if err := json.Unmarshal(oldData, &oldRep); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(newData, &newRep); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	d := &Diff{}

	names := append([]string(nil), matrixOrder...)
	for name := range oldRep.Matrices {
		if !containsStr(names, name) {
			names = append(names, name)
		}
	}
	for _, name := range names {
		oldCells, inOld := oldRep.Matrices[name]
		newCells, inNew := newRep.Matrices[name]
		if !inOld && !inNew {
			continue
		}
		d.Lines = append(d.Lines, "matrix "+name)
		if !inNew {
			d.Regressions = append(d.Regressions, name+": matrix missing from candidate")
			continue
		}
		if !inOld {
			d.Notes = append(d.Notes, name+": matrix new in candidate (no baseline)")
			continue
		}
		index := make(map[string]*jsonCell, len(newCells))
		for i := range newCells {
			c := &newCells[i]
			index[c.Config+"/"+c.Workload] = c
		}
		seen := make(map[string]bool, len(oldCells))
		for i := range oldCells {
			oc := &oldCells[i]
			id := oc.Config + "/" + oc.Workload
			seen[id] = true
			d.diffCell(name, id, oc, index[id], opts)
		}
		for i := range newCells {
			nc := &newCells[i]
			id := nc.Config + "/" + nc.Workload
			if !seen[id] {
				d.Notes = append(d.Notes, name+"/"+id+": new cell (no baseline)")
			}
		}
	}
	d.diffCache(oldRep.CompileCache, newRep.CompileCache, opts)
	return d, nil
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// diffCell compares one baseline cell against its candidate.
func (d *Diff) diffCell(matrix, id string, oc, nc *jsonCell, opts DiffOptions) {
	full := matrix + "/" + id
	switch {
	case nc == nil:
		d.Lines = append(d.Lines, fmt.Sprintf("  %-44s MISSING from candidate", id))
		d.Regressions = append(d.Regressions, full+": cell missing from candidate")
		return
	case oc.Error != "" && nc.Error != "":
		d.Lines = append(d.Lines, fmt.Sprintf("  %-44s ERROR in both (%s | %s)", id, oc.Error, nc.Error))
		return
	case nc.Error != "":
		d.Lines = append(d.Lines, fmt.Sprintf("  %-44s ERROR(%s), baseline was healthy", id, nc.Error))
		d.Regressions = append(d.Regressions, full+": now fails: "+nc.Error)
		return
	case oc.Error != "":
		d.Lines = append(d.Lines, fmt.Sprintf("  %-44s fixed (baseline ERROR(%s))", id, oc.Error))
		d.Notes = append(d.Notes, full+": baseline error cell now healthy")
		return
	}

	deltaPct := 0.0
	if oc.Cycles != 0 {
		deltaPct = (float64(nc.Cycles) - float64(oc.Cycles)) / float64(oc.Cycles) * 100
	}
	verdict := ""
	switch {
	case deltaPct > opts.CyclesTolerancePct:
		verdict = "  REGRESS"
		d.Regressions = append(d.Regressions,
			fmt.Sprintf("%s: cycles %d -> %d (%+.2f%%, tolerance %.2f%%)",
				full, oc.Cycles, nc.Cycles, deltaPct, opts.CyclesTolerancePct))
	case nc.Cycles < oc.Cycles:
		d.Notes = append(d.Notes, fmt.Sprintf("%s: cycles improved %d -> %d (%+.2f%%)",
			full, oc.Cycles, nc.Cycles, deltaPct))
	}
	d.Lines = append(d.Lines, fmt.Sprintf("  %-44s cycles %12d -> %12d  %+7.2f%%%s",
		id, oc.Cycles, nc.Cycles, deltaPct, verdict))

	// Dynamic counters and static check statistics are deterministic: any
	// drift is a behavioral change worth a note even when cycles pass.
	if oc.TrapsTaken != nc.TrapsTaken || oc.ExplicitChecks != nc.ExplicitChecks ||
		oc.ImplicitSites != nc.ImplicitSites {
		d.Notes = append(d.Notes, fmt.Sprintf(
			"%s: dynamic checks changed (traps %d->%d, explicit %d->%d, implicit %d->%d)",
			full, oc.TrapsTaken, nc.TrapsTaken, oc.ExplicitChecks, nc.ExplicitChecks,
			oc.ImplicitSites, nc.ImplicitSites))
	}
	if oc.StaticImplicit != nc.StaticImplicit || oc.StaticExplicit != nc.StaticExplicit ||
		oc.Eliminated != nc.Eliminated {
		d.Notes = append(d.Notes, fmt.Sprintf(
			"%s: static checks changed (implicit %d->%d, explicit-left %d->%d, eliminated %d->%d)",
			full, oc.StaticImplicit, nc.StaticImplicit, oc.StaticExplicit, nc.StaticExplicit,
			oc.Eliminated, nc.Eliminated))
	}
	if oc.Fates != nil && nc.Fates != nil && !reflect.DeepEqual(oc.Fates, nc.Fates) {
		msg := full + ": check-fate histogram changed"
		if opts.StrictFates {
			d.Regressions = append(d.Regressions, msg)
		} else {
			d.Notes = append(d.Notes, msg)
		}
	}

	// Host compile time: noisy, so a note unless a tolerance was asked for.
	oldUS, newUS := oc.CompileNullUS+oc.CompileOtherUS, nc.CompileNullUS+nc.CompileOtherUS
	if opts.CompileTolerancePct > 0 && oldUS > 0 {
		cPct := (float64(newUS) - float64(oldUS)) / float64(oldUS) * 100
		if cPct > opts.CompileTolerancePct {
			d.Regressions = append(d.Regressions, fmt.Sprintf(
				"%s: compile time %dus -> %dus (%+.2f%%, tolerance %.2f%%)",
				full, oldUS, newUS, cPct, opts.CompileTolerancePct))
		}
	}
}

// diffCache compares per-matrix compile-cache hit rates.
func (d *Diff) diffCache(oldStats, newStats []jsonCacheStats, opts DiffOptions) {
	byMatrix := make(map[string]jsonCacheStats, len(newStats))
	for _, st := range newStats {
		byMatrix[st.Matrix] = st
	}
	rate := func(st jsonCacheStats) float64 {
		if st.Lookups == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Lookups) * 100
	}
	for _, ost := range oldStats {
		nst, ok := byMatrix[ost.Matrix]
		if !ok {
			d.Notes = append(d.Notes, ost.Matrix+": cache stats missing from candidate (cache off?)")
			continue
		}
		oldRate, newRate := rate(ost), rate(nst)
		d.Lines = append(d.Lines, fmt.Sprintf("cache %-28s hit rate %6.2f%% -> %6.2f%%",
			ost.Matrix, oldRate, newRate))
		if oldRate-newRate > opts.HitRateDropPct {
			d.Regressions = append(d.Regressions, fmt.Sprintf(
				"%s: cache hit rate dropped %.2f%% -> %.2f%% (tolerance %.2fpp)",
				ost.Matrix, oldRate, newRate, opts.HitRateDropPct))
		}
	}
}
