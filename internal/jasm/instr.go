package jasm

import (
	"strconv"
	"strings"

	"trapnull/internal/ir"
)

// operand parses a variable name, integer/float literal, or null.
func (fp *funcParser) operand(s string) (ir.Operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "null":
		return ir.Null(), nil
	case s == "":
		return ir.Operand{}, fp.errf("empty operand")
	}
	if v, ok := fp.vars[s]; ok {
		return ir.Var(v), nil
	}
	if strings.ContainsAny(s, ".eE") && s != "e" {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return ir.ConstFloat(f), nil
		}
	}
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		return ir.ConstInt(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return ir.ConstFloat(f), nil
	}
	return ir.Operand{}, fp.errf("unknown operand %q", s)
}

func (fp *funcParser) varOperand(s string) (ir.VarID, error) {
	s = strings.TrimSpace(s)
	v, ok := fp.vars[s]
	if !ok {
		return 0, fp.errf("unknown variable %q", s)
	}
	return v, nil
}

// fieldRef resolves "Class.field".
func (fp *funcParser) fieldRef(s string) (*ir.Field, error) {
	s = strings.TrimSpace(s)
	dot := strings.Index(s, ".")
	if dot < 0 {
		return nil, fp.errf("field reference %q needs Class.field", s)
	}
	cls := fp.prog.ClassByName(s[:dot])
	if cls == nil {
		return nil, fp.errf("unknown class %q", s[:dot])
	}
	f := cls.FieldByName(s[dot+1:])
	if f == nil {
		return nil, fp.errf("unknown field %q", s)
	}
	return f, nil
}

// splitArgs splits on commas at depth zero.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var binops = map[string]ir.Op{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul, "div": ir.OpDiv,
	"rem": ir.OpRem, "and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "shr": ir.OpShr,
	"fadd": ir.OpFAdd, "fsub": ir.OpFSub, "fmul": ir.OpFMul, "fdiv": ir.OpFDiv,
}

var unops = map[string]ir.Op{
	"neg": ir.OpNeg, "not": ir.OpNot, "fneg": ir.OpFNeg,
	"i2f": ir.OpIntToFloat, "f2i": ir.OpFloatToInt,
}

var conds = map[string]ir.Cond{
	"eq": ir.CondEQ, "ne": ir.CondNE, "lt": ir.CondLT,
	"le": ir.CondLE, "gt": ir.CondGT, "ge": ir.CondGE,
}

var mathFns = map[string]ir.MathFn{
	"exp": ir.MathExp, "log": ir.MathLog, "sin": ir.MathSin,
	"cos": ir.MathCos, "sqrt": ir.MathSqrt, "abs": ir.MathAbs,
}

// instr parses one instruction line.
func (fp *funcParser) instr(line string) error {
	if !fp.started {
		return fp.errf("instruction before first block label: %q", line)
	}

	// Annotations: "@excsite vN" marks the instruction as an implicit null
	// check exception site; "@spec" marks a speculated load. They attach to
	// the parsed instruction (the raw forms of optimized code carry them).
	var excVar string
	spec := false
	for {
		if i := strings.LastIndex(line, "@excsite "); i >= 0 {
			excVar = strings.TrimSpace(line[i+len("@excsite "):])
			line = strings.TrimSpace(line[:i])
			continue
		}
		if strings.HasSuffix(line, "@spec") {
			spec = true
			line = strings.TrimSpace(strings.TrimSuffix(line, "@spec"))
			continue
		}
		break
	}
	if excVar != "" || spec {
		if err := fp.instrCore(line); err != nil {
			return err
		}
		blk := fp.b.Cur()
		if len(blk.Instrs) == 0 {
			return fp.errf("annotation on empty block")
		}
		last := blk.Instrs[len(blk.Instrs)-1]
		if excVar != "" {
			v, err := fp.varOperand(excVar)
			if err != nil {
				return err
			}
			last.ExcSite = true
			last.ExcVar = v
		}
		if spec {
			last.Speculated = true
		}
		return nil
	}
	return fp.instrCore(line)
}

func (fp *funcParser) instrCore(line string) error {

	// Assignment form: "dst = op rest".
	if eq := strings.Index(line, "="); eq > 0 && !strings.Contains(line[:eq], " goto") {
		dstName := strings.TrimSpace(line[:eq])
		rest := strings.TrimSpace(line[eq+1:])
		dst, err := fp.varOperand(dstName)
		if err != nil {
			return err
		}
		return fp.assign(dst, rest)
	}

	fields := strings.Fields(line)
	if len(fields) == 0 {
		return fp.errf("empty instruction")
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	switch fields[0] {
	case "nullcheck":
		v, err := fp.varOperand(rest)
		if err != nil {
			return err
		}
		fp.b.NullCheck(v, ir.ReasonField)
		return nil
	case "putfield", "putfield!":
		// putfield obj, Class.f, src  (the ! form skips the auto nullcheck)
		raw := fields[0] == "putfield!"
		args := splitArgs(rest)
		if len(args) != 3 {
			return fp.errf("putfield needs obj, Class.f, src")
		}
		obj, err := fp.varOperand(args[0])
		if err != nil {
			return err
		}
		f, err := fp.fieldRef(args[1])
		if err != nil {
			return err
		}
		src, err := fp.operand(args[2])
		if err != nil {
			return err
		}
		if raw {
			fp.b.Emit(&ir.Instr{Op: ir.OpPutField, Dst: ir.NoVar, Field: f,
				Args: []ir.Operand{ir.Var(obj), src}})
		} else {
			fp.b.PutField(obj, f, src)
		}
		return nil
	case "astore", "astore!":
		// astore arr, idx, src  (the ! form emits only the raw store)
		raw := fields[0] == "astore!"
		args := splitArgs(rest)
		if len(args) != 3 {
			return fp.errf("astore needs arr, idx, src")
		}
		arr, err := fp.varOperand(args[0])
		if err != nil {
			return err
		}
		idx, err := fp.operand(args[1])
		if err != nil {
			return err
		}
		src, err := fp.operand(args[2])
		if err != nil {
			return err
		}
		if raw {
			fp.b.Emit(&ir.Instr{Op: ir.OpArrayStore, Dst: ir.NoVar,
				Args: []ir.Operand{ir.Var(arr), idx, src}})
		} else {
			fp.b.ArrayStore(arr, idx, src)
		}
		return nil
	case "boundcheck":
		args := splitArgs(rest)
		if len(args) != 2 {
			return fp.errf("boundcheck needs idx, len")
		}
		idx, err := fp.operand(args[0])
		if err != nil {
			return err
		}
		ln, err := fp.operand(args[1])
		if err != nil {
			return err
		}
		fp.b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{idx, ln}})
		return nil
	case "jump":
		fp.b.Jump(fp.block(rest))
		return nil
	case "if":
		// if a lt b goto L1 else L2
		parts := strings.Fields(rest)
		if len(parts) != 7 || parts[3] != "goto" || parts[5] != "else" {
			return fp.errf("malformed if %q (want: if a lt b goto L1 else L2)", line)
		}
		a, err := fp.operand(parts[0])
		if err != nil {
			return err
		}
		cond, ok := conds[parts[1]]
		if !ok {
			return fp.errf("unknown condition %q", parts[1])
		}
		bop, err := fp.operand(parts[2])
		if err != nil {
			return err
		}
		fp.b.If(cond, a, bop, fp.block(parts[4]), fp.block(parts[6]))
		return nil
	case "return":
		if rest == "" {
			fp.b.ReturnVoid()
			return nil
		}
		v, err := fp.operand(rest)
		if err != nil {
			return err
		}
		fp.b.Return(v)
		return nil
	case "throw":
		v, err := fp.varOperand(rest)
		if err != nil {
			return err
		}
		fp.b.Throw(v)
		return nil
	case "call", "callv", "callv!":
		// Statement-form call without result.
		return fp.call(ir.NoVar, fields[0] != "call", fields[0] == "callv!", rest)
	}
	return fp.errf("unknown instruction %q", line)
}

// assign parses the right-hand side of "dst = ...".
func (fp *funcParser) assign(dst ir.VarID, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fp.errf("empty right-hand side")
	}
	op := fields[0]
	args := strings.TrimSpace(rest[len(op):])

	if bop, ok := binops[op]; ok {
		parts := splitArgs(args)
		if len(parts) != 2 {
			return fp.errf("%s needs two operands", op)
		}
		a, err := fp.operand(parts[0])
		if err != nil {
			return err
		}
		b, err := fp.operand(parts[1])
		if err != nil {
			return err
		}
		fp.b.Binop(bop, dst, a, b)
		return nil
	}
	if uop, ok := unops[op]; ok {
		a, err := fp.operand(args)
		if err != nil {
			return err
		}
		fp.b.Unop(uop, dst, a)
		return nil
	}

	switch op {
	case "move", "const":
		a, err := fp.operand(args)
		if err != nil {
			return err
		}
		fp.b.Move(dst, a)
		return nil
	case "cmp":
		// dst = cmp lt a, b
		parts := strings.Fields(args)
		if len(parts) < 2 {
			return fp.errf("cmp needs cond and operands")
		}
		cond, ok := conds[parts[0]]
		if !ok {
			return fp.errf("unknown condition %q", parts[0])
		}
		ops := splitArgs(strings.TrimSpace(args[len(parts[0]):]))
		if len(ops) != 2 {
			return fp.errf("cmp needs two operands")
		}
		a, err := fp.operand(ops[0])
		if err != nil {
			return err
		}
		b, err := fp.operand(ops[1])
		if err != nil {
			return err
		}
		fp.b.Cmp(dst, cond, a, b)
		return nil
	case "math":
		// dst = math exp x
		parts := strings.Fields(args)
		if len(parts) != 2 {
			return fp.errf("math needs fn and operand")
		}
		fn, ok := mathFns[parts[0]]
		if !ok {
			return fp.errf("unknown math fn %q", parts[0])
		}
		a, err := fp.operand(parts[1])
		if err != nil {
			return err
		}
		fp.b.Math(fn, dst, a)
		return nil
	case "new":
		cls := fp.prog.ClassByName(args)
		if cls == nil {
			return fp.errf("unknown class %q", args)
		}
		fp.b.New(dst, cls)
		return nil
	case "instanceof":
		// dst = instanceof v, Class
		parts := splitArgs(args)
		if len(parts) != 2 {
			return fp.errf("instanceof needs v, Class")
		}
		v, err := fp.varOperand(parts[0])
		if err != nil {
			return err
		}
		cls := fp.prog.ClassByName(parts[1])
		if cls == nil {
			return fp.errf("unknown class %q", parts[1])
		}
		fp.b.InstanceOf(dst, v, cls)
		return nil
	case "newarray":
		n, err := fp.operand(args)
		if err != nil {
			return err
		}
		fp.b.NewArray(dst, n)
		return nil
	case "getfield", "getfield!":
		// dst = getfield obj, Class.f  (the ! form skips the auto nullcheck)
		parts := splitArgs(args)
		if len(parts) != 2 {
			return fp.errf("getfield needs obj, Class.f")
		}
		obj, err := fp.varOperand(parts[0])
		if err != nil {
			return err
		}
		f, err := fp.fieldRef(parts[1])
		if err != nil {
			return err
		}
		if op == "getfield!" {
			fp.b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: dst, Field: f,
				Args: []ir.Operand{ir.Var(obj)}})
		} else {
			fp.b.GetField(dst, obj, f)
		}
		return nil
	case "arraylength", "arraylength!":
		arr, err := fp.varOperand(args)
		if err != nil {
			return err
		}
		if op == "arraylength!" {
			fp.b.Emit(&ir.Instr{Op: ir.OpArrayLength, Dst: dst,
				Args: []ir.Operand{ir.Var(arr)}})
		} else {
			fp.b.ArrayLength(dst, arr)
		}
		return nil
	case "aload", "aload!":
		parts := splitArgs(args)
		if len(parts) != 2 {
			return fp.errf("aload needs arr, idx")
		}
		arr, err := fp.varOperand(parts[0])
		if err != nil {
			return err
		}
		idx, err := fp.operand(parts[1])
		if err != nil {
			return err
		}
		if op == "aload!" {
			fp.b.Emit(&ir.Instr{Op: ir.OpArrayLoad, Dst: dst,
				Args: []ir.Operand{ir.Var(arr), idx}})
		} else {
			fp.b.ArrayLoad(dst, arr, idx)
		}
		return nil
	case "call", "callv", "callv!":
		return fp.call(dst, op != "call", op == "callv!", args)
	}
	// Bare-operand shorthand: `dst = null`, `dst = 5`, `dst = other`.
	if len(fields) == 1 {
		if o, err := fp.operand(rest); err == nil {
			fp.b.Move(dst, o)
			return nil
		}
	}
	return fp.errf("unknown operation %q", op)
}

// call parses "name(arg, arg, ...)" for static and virtual calls; virtual
// calls take the receiver as the first argument. rawVirtual skips the
// receiver's automatic null check (the form optimized code uses).
func (fp *funcParser) call(dst ir.VarID, virtual, rawVirtual bool, rest string) error {
	open := strings.Index(rest, "(")
	closeP := strings.LastIndex(rest, ")")
	if open < 0 || closeP < open {
		return fp.errf("malformed call %q", rest)
	}
	name := strings.TrimSpace(rest[:open])
	m := fp.prog.MethodByName(name)
	if m == nil {
		return fp.errf("unknown method %q (define callees before callers)", name)
	}
	argSrcs := splitArgs(rest[open+1 : closeP])
	if virtual {
		if len(argSrcs) == 0 {
			return fp.errf("virtual call needs a receiver")
		}
		recv, err := fp.varOperand(argSrcs[0])
		if err != nil {
			return err
		}
		var args []ir.Operand
		for _, a := range argSrcs[1:] {
			o, err := fp.operand(a)
			if err != nil {
				return err
			}
			args = append(args, o)
		}
		if rawVirtual {
			all := append([]ir.Operand{ir.Var(recv)}, args...)
			fp.b.Emit(&ir.Instr{Op: ir.OpCallVirtual, Dst: dst, Callee: m, Args: all})
		} else {
			fp.b.CallVirtual(dst, m, recv, args...)
		}
		return nil
	}
	var args []ir.Operand
	for _, a := range argSrcs {
		o, err := fp.operand(a)
		if err != nil {
			return err
		}
		args = append(args, o)
	}
	fp.b.CallStatic(dst, m, args...)
	return nil
}
