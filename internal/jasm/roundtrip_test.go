package jasm

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/randprog"
	"trapnull/internal/workloads"
)

// outcome runs fn(5) and returns (value, excKind as int, cycles).
func outcome(t *testing.T, prog *ir.Program, fn *ir.Func, seedInfo string) (int64, int, int64) {
	t.Helper()
	m := machine.New(arch.IA32Win(), prog)
	out, err := m.Call(fn, 5)
	if err != nil {
		t.Fatalf("%s: %v", seedInfo, err)
	}
	return out.Value, int(out.Exc), m.Cycles
}

// TestRoundTripRandomPrograms: Format then Parse must reproduce the exact
// execution — value, exception and cycle count — of random programs, both
// before and after full optimization.
func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		cfg := randprog.DefaultConfig(seed)

		// Unoptimized round trip.
		p1, f1 := randprog.Generate(cfg)
		v1, e1, c1 := outcome(t, p1, f1, "orig")
		text := Format(p1)
		p2, funcs, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		f2 := funcs["main"]
		v2, e2, c2 := outcome(t, p2, f2, "reparsed")
		if v1 != v2 || e1 != e2 || c1 != c2 {
			t.Fatalf("seed %d: round trip diverged: (%d,%d,%d) vs (%d,%d,%d)\n%s",
				seed, v1, e1, c1, v2, e2, c2, text)
		}

		// Optimized round trip: the formatted text must carry the marks.
		p3, f3 := randprog.Generate(cfg)
		if _, err := jit.CompileProgram(p3, jit.ConfigPhase1Phase2(), arch.IA32Win()); err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		v3, e3, c3 := outcome(t, p3, f3, "optimized")
		text3 := Format(p3)
		p4, funcs4, err := Parse(text3)
		if err != nil {
			t.Fatalf("seed %d: reparse optimized: %v\n%s", seed, err, text3)
		}
		v4, e4, c4 := outcome(t, p4, funcs4["main"], "reparsed-optimized")
		if v3 != v4 || e3 != e4 || c3 != c4 {
			t.Fatalf("seed %d: optimized round trip diverged: (%d,%d,%d) vs (%d,%d,%d)\n%s",
				seed, v3, e3, c3, v4, e4, c4, text3)
		}
	}
}

// TestRoundTripWorkloads: the real kernels survive the round trip too
// (method calls, classes, intrinsics, regions).
func TestRoundTripWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, entryM := w.Build()
			text := Format(prog)
			p2, funcs, err := Parse(text)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			fn2 := funcs[entryM.QualifiedName()]
			if fn2 == nil {
				t.Fatalf("entry %q missing after round trip", entryM.QualifiedName())
			}
			m := machine.New(arch.IA32Win(), p2)
			out, err := m.Call(fn2, w.TestN)
			if err != nil {
				t.Fatal(err)
			}
			if want := w.Ref(w.TestN); out.Value != want {
				t.Fatalf("round-tripped checksum %d, want %d", out.Value, want)
			}
		})
	}
}

// TestFormatIsStable: after one round trip the representation reaches a
// fixpoint — parsing renumbers blocks by first reference, so the first
// Format may relabel, but Format∘Parse must then be the identity.
func TestFormatIsStable(t *testing.T) {
	p1, _ := randprog.Generate(randprog.DefaultConfig(42))
	t1 := Format(p1)
	p2, _, err := Parse(t1)
	if err != nil {
		t.Fatal(err)
	}
	t2 := Format(p2)
	p3, _, err := Parse(t2)
	if err != nil {
		t.Fatal(err)
	}
	t3 := Format(p3)
	if t2 != t3 {
		t.Fatalf("format not stable after a round:\n--- second\n%s\n--- third\n%s", t2, t3)
	}
}
