package jasm

import (
	"math"
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/nullcheck"
	"trapnull/internal/rt"
)

const pointProgram = `
# a class with two fields
class Point {
    int x
    int y
}

virtual method Point.getX(this ref) int {
entry:
    var t int
    t = getfield this, Point.x
    return t
}

func main(n int) int {
entry:
    var p ref
    var s int
    var i int
    p = new Point
    putfield p, Point.x, 7
    s = move 0
    i = move 0
    jump Lbody
Lbody:
    var t int
    t = callv Point.getX(p)
    s = add s, t
    i = add i, 1
    if i lt n goto Lbody else Ldone
Ldone:
    return s
}
`

func mustParse(t *testing.T, src string) (*machine.Machine, int64) {
	t.Helper()
	prog, funcs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := funcs["main"]
	if fn == nil {
		t.Fatal("no main")
	}
	m := machine.New(arch.IA32Win(), prog)
	out, err := m.Call(fn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exc != rt.ExcNone {
		t.Fatalf("exception %v", out.Exc)
	}
	return m, out.Value
}

func TestParseAndRunPointProgram(t *testing.T) {
	_, v := mustParse(t, pointProgram)
	if v != 70 {
		t.Fatalf("main(10) = %d, want 70", v)
	}
}

func TestParsedProgramOptimizes(t *testing.T) {
	prog, funcs, err := Parse(pointProgram)
	if err != nil {
		t.Fatal(err)
	}
	model := arch.IA32Win()
	if _, err := jit.CompileProgram(prog, jit.ConfigPhase1Phase2(), model); err != nil {
		t.Fatal(err)
	}
	m := machine.New(model, prog)
	out, err := m.Call(funcs["main"], 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 70 {
		t.Fatalf("optimized main(10) = %d, want 70", out.Value)
	}
	if m.Stats.ExplicitChecks != 0 {
		t.Fatalf("explicit checks executed: %d, want 0 after full optimization", m.Stats.ExplicitChecks)
	}
}

func TestParseTryRegion(t *testing.T) {
	src := `
func main(n int) int {
region R0 handler Lcatch exc e
entry:
    var s int
    var e ref
    s = move 1
    jump Ltry
Ltry (try R0):
    s = div s, n
    jump Ldone
Lcatch:
    s = move -1
    jump Ldone
Ldone:
    return s
}
`
	prog, funcs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(arch.IA32Win(), prog)
	out, err := m.Call(funcs["main"], 0) // division by zero -> handler
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != -1 {
		t.Fatalf("main(0) = %d, want handler result -1", out.Value)
	}
	out, err = m.Call(funcs["main"], 1)
	if err != nil || out.Value != 1 {
		t.Fatalf("main(1) = %+v err=%v, want 1", out, err)
	}
}

func TestParseArraysAndMath(t *testing.T) {
	src := `
extern Math.sqrt sqrt

func main(n int) int {
entry:
    var a ref
    var v float
    var w float
    var r int
    a = newarray n
    astore a, 0, 9
    var x int
    x = aload a, 0
    v = i2f x
    w = math sqrt v
    r = f2i w
    return r
}
`
	_, funcs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, funcs2, _ := Parse(src)
	_ = funcs
	m := machine.New(arch.IA32Win(), prog)
	out, err := m.Call(funcs2["main"], 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 3 {
		t.Fatalf("sqrt(9) = %d, want 3", out.Value)
	}
}

func TestParseBigOffsetField(t *testing.T) {
	src := `
class Wide {
    int near
    int far @ 65536
}
func main(n int) int {
entry:
    var w ref
    var t int
    w = new Wide
    putfield w, Wide.far, 5
    t = getfield w, Wide.far
    return t
}
`
	prog, funcs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cls := prog.ClassByName("Wide")
	if cls.FieldByName("far").Offset != 65536 {
		t.Fatalf("far offset = %d", cls.FieldByName("far").Offset)
	}
	m := machine.New(arch.IA32Win(), prog)
	out, err := m.Call(funcs["main"], 0)
	if err != nil || out.Value != 5 {
		t.Fatalf("out=%+v err=%v", out, err)
	}
	// Phase 2 must keep the far-field check explicit (Figure 5(1)).
	st := nullcheck.Phase2(funcs["main"], arch.IA32Win())
	if st.ExplicitRemaining == 0 {
		t.Fatal("big-offset checks all became implicit")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown instr", "func main() int {\nentry:\n  frobnicate x\n}", "unknown"},
		{"undefined var", "func main() int {\nentry:\n  x = move 1\n}", "unknown variable"},
		{"unknown class", "func main() int {\nentry:\n  var p ref\n  p = new Nope\n  return 0\n}", "unknown class"},
		{"bad kind", "func main(x quux) int {\nentry:\n  return 0\n}", "unknown kind"},
		{"no terminator", "func main() int {\nentry:\n  var x int\n  x = move 1\n}", "terminator"},
		{"instr before label", "func main() int {\n  var x int\n  x = move 1\n}", "before first block"},
		{"dup var", "func main() int {\nentry:\n  var x int\n  var x int\n  return 0\n}", "duplicate"},
		{"unknown field", "class C {\n int f\n}\nfunc main() int {\nentry:\n  var p ref\n  p = new C\n  putfield p, C.g, 1\n  return 0\n}", "unknown field"},
		{"bad if", "func main(n int) int {\nentry:\n  if n goto A else B\n}", "malformed if"},
		{"unknown region", "func main() int {\nentry (try R9):\n  return 0\n}", "unknown region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := `
# leading comment

func main() int {   # trailing comment
entry:
    var x int       # declare
    x = move 42
    return x
}
`
	_, funcs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if funcs["main"] == nil {
		t.Fatal("main missing")
	}
}

func TestParseFloatLiterals(t *testing.T) {
	src := `
func main() float {
entry:
    var v float
    v = fadd 1.5, 2.25
    return v
}
`
	prog, funcs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(arch.IA32Win(), prog)
	out, err := m.Call(funcs["main"])
	if err != nil {
		t.Fatal(err)
	}
	if got := bitsToFloat(out.Value); got != 3.75 {
		t.Fatalf("1.5+2.25 = %g, want 3.75", got)
	}
}

func bitsToFloat(v int64) float64 { return math.Float64frombits(uint64(v)) }
