package jasm

import (
	"fmt"
	"strings"

	"trapnull/internal/ir"
)

// Format renders a program as parseable jasm source. Instructions are
// emitted in their raw forms (getfield!, aload!, ...) so that no implicit
// check sequences are re-synthesized on parse: the round trip
// Parse(Format(p)) preserves the instruction stream exactly, including
// exception-site marks and speculated loads of optimized code.
//
// Functions must not reference methods declared after them (the parser
// resolves callees eagerly); Format emits methods in program order, so
// programs built that way — as all of this repository's builders do —
// round-trip cleanly.
func Format(p *ir.Program) string {
	var sb strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&sb, "class %s {\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(&sb, "    %s %s @ %d\n", f.Kind, f.Name, f.Offset)
		}
		sb.WriteString("}\n\n")
	}
	for _, m := range p.Methods {
		if m.Fn == nil {
			if m.Intrinsic != ir.MathNone {
				fmt.Fprintf(&sb, "extern %s %s\n\n", m.QualifiedName(), m.Intrinsic)
			}
			continue
		}
		writeFunc(&sb, m)
	}
	return sb.String()
}

func writeFunc(sb *strings.Builder, m *ir.Method) {
	fn := m.Fn
	kw := "func"
	name := m.Name
	if m.Class != nil {
		kw = "method"
		if m.Virtual {
			kw = "virtual method"
		}
		name = m.QualifiedName()
	}
	fmt.Fprintf(sb, "%s %s(", kw, name)
	for i := 0; i < fn.NumParams; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "v%d %s", i, fn.Locals[i].Kind)
	}
	sb.WriteString(")")
	if fn.HasResult {
		fmt.Fprintf(sb, " %s", fn.ResultKind)
	}
	sb.WriteString(" {\n")

	for _, r := range fn.Regions {
		fmt.Fprintf(sb, "region R%d handler L%d exc v%d\n", r.ID, r.Handler.ID, r.ExcVar)
	}

	// The entry block must be printed first; the parser takes the first
	// label as the entry.
	blocks := append([]*ir.Block{fn.Entry}, nil...)
	for _, b := range fn.Blocks {
		if b != fn.Entry {
			blocks = append(blocks, b)
		}
	}

	declared := make(map[ir.VarID]bool, fn.NumLocals())
	for i := 0; i < fn.NumParams; i++ {
		declared[ir.VarID(i)] = true
	}
	// Declare all locals up front inside the entry block.
	first := true
	for _, b := range blocks {
		if b.Try != ir.NoTry {
			fmt.Fprintf(sb, "L%d (try R%d):\n", b.ID, b.Try)
		} else {
			fmt.Fprintf(sb, "L%d:\n", b.ID)
		}
		if first {
			first = false
			for i := fn.NumParams; i < fn.NumLocals(); i++ {
				fmt.Fprintf(sb, "    var v%d %s\n", i, fn.Locals[i].Kind)
			}
		}
		for _, in := range b.Instrs {
			fmt.Fprintf(sb, "    %s\n", writeInstr(in))
		}
	}
	sb.WriteString("}\n\n")
}

func wOperand(o ir.Operand) string {
	switch o.Kind {
	case ir.OperVar:
		return fmt.Sprintf("v%d", o.Var)
	case ir.OperConstInt:
		return fmt.Sprintf("%d", o.Int)
	case ir.OperConstFloat:
		s := fmt.Sprintf("%g", o.Float)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return "null"
	}
}

var opNamesW = map[ir.Op]string{
	ir.OpAdd: "add", ir.OpSub: "sub", ir.OpMul: "mul", ir.OpDiv: "div",
	ir.OpRem: "rem", ir.OpAnd: "and", ir.OpOr: "or", ir.OpXor: "xor",
	ir.OpShl: "shl", ir.OpShr: "shr",
	ir.OpFAdd: "fadd", ir.OpFSub: "fsub", ir.OpFMul: "fmul", ir.OpFDiv: "fdiv",
	ir.OpNeg: "neg", ir.OpNot: "not", ir.OpFNeg: "fneg",
	ir.OpIntToFloat: "i2f", ir.OpFloatToInt: "f2i",
}

var condNamesW = map[ir.Cond]string{
	ir.CondEQ: "eq", ir.CondNE: "ne", ir.CondLT: "lt",
	ir.CondLE: "le", ir.CondGT: "gt", ir.CondGE: "ge",
}

// marks renders the excsite/speculated annotations.
func marks(in *ir.Instr) string {
	out := ""
	if in.ExcSite {
		out += fmt.Sprintf(" @excsite v%d", in.ExcVar)
	}
	if in.Speculated {
		out += " @spec"
	}
	return out
}

func writeInstr(in *ir.Instr) string {
	dst := ""
	if in.HasDst() {
		dst = fmt.Sprintf("v%d = ", in.Dst)
	}
	switch in.Op {
	case ir.OpMove:
		return fmt.Sprintf("%smove %s", dst, wOperand(in.Args[0]))
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return fmt.Sprintf("%s%s %s, %s", dst, opNamesW[in.Op], wOperand(in.Args[0]), wOperand(in.Args[1]))
	case ir.OpNeg, ir.OpNot, ir.OpFNeg, ir.OpIntToFloat, ir.OpFloatToInt:
		return fmt.Sprintf("%s%s %s", dst, opNamesW[in.Op], wOperand(in.Args[0]))
	case ir.OpCmp:
		return fmt.Sprintf("%scmp %s %s, %s", dst, condNamesW[in.Cond], wOperand(in.Args[0]), wOperand(in.Args[1]))
	case ir.OpMath:
		return fmt.Sprintf("%smath %s %s", dst, in.Fn, wOperand(in.Args[0]))
	case ir.OpNullCheck:
		return fmt.Sprintf("nullcheck %s", wOperand(in.Args[0]))
	case ir.OpNew:
		return fmt.Sprintf("%snew %s", dst, in.Class.Name)
	case ir.OpInstanceOf:
		return fmt.Sprintf("%sinstanceof %s, %s", dst, wOperand(in.Args[0]), in.Class.Name)
	case ir.OpNewArray:
		return fmt.Sprintf("%snewarray %s", dst, wOperand(in.Args[0]))
	case ir.OpGetField:
		return fmt.Sprintf("%sgetfield! %s, %s.%s%s", dst, wOperand(in.Args[0]),
			in.Field.Class.Name, in.Field.Name, marks(in))
	case ir.OpPutField:
		return fmt.Sprintf("putfield! %s, %s.%s, %s%s", wOperand(in.Args[0]),
			in.Field.Class.Name, in.Field.Name, wOperand(in.Args[1]), marks(in))
	case ir.OpArrayLength:
		return fmt.Sprintf("%sarraylength! %s%s", dst, wOperand(in.Args[0]), marks(in))
	case ir.OpBoundCheck:
		return fmt.Sprintf("boundcheck %s, %s", wOperand(in.Args[0]), wOperand(in.Args[1]))
	case ir.OpArrayLoad:
		return fmt.Sprintf("%saload! %s, %s%s", dst, wOperand(in.Args[0]), wOperand(in.Args[1]), marks(in))
	case ir.OpArrayStore:
		return fmt.Sprintf("astore! %s, %s, %s%s", wOperand(in.Args[0]), wOperand(in.Args[1]),
			wOperand(in.Args[2]), marks(in))
	case ir.OpCallStatic, ir.OpCallVirtual:
		kw := "call"
		if in.Op == ir.OpCallVirtual {
			kw = "callv!"
		}
		var args []string
		for _, a := range in.Args {
			args = append(args, wOperand(a))
		}
		return fmt.Sprintf("%s%s %s(%s)%s", dst, kw, in.Callee.QualifiedName(),
			strings.Join(args, ", "), marks(in))
	case ir.OpJump:
		return fmt.Sprintf("jump L%d", in.Targets[0].ID)
	case ir.OpIf:
		return fmt.Sprintf("if %s %s %s goto L%d else L%d", wOperand(in.Args[0]),
			condNamesW[in.Cond], wOperand(in.Args[1]), in.Targets[0].ID, in.Targets[1].ID)
	case ir.OpReturn:
		if len(in.Args) == 1 {
			return fmt.Sprintf("return %s", wOperand(in.Args[0]))
		}
		return "return"
	case ir.OpThrow:
		return fmt.Sprintf("throw %s", wOperand(in.Args[0]))
	}
	return fmt.Sprintf("# unprintable %s", in.Op)
}
