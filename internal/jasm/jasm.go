// Package jasm parses a small textual assembly for the trapnull IR, so
// programs can be written, inspected and replayed without building them in
// Go. The nulljit CLI accepts -file program.jasm, and the format is the
// natural exchange format for bug reports against the optimizer.
//
// Format by example:
//
//	# comment
//	class Point {
//	    int x
//	    int y
//	    int far @ 65536        # explicit byte offset (a big-offset field)
//	}
//
//	extern Math.exp exp        # intrinsic method (call barrier off-IA32)
//
//	virtual method Point.getX(this ref) int {
//	entry:
//	    var t int
//	    nullcheck this
//	    t = getfield this, Point.x
//	    return t
//	}
//
//	func main(n int) int {
//	region R0 handler Lcatch exc e
//	entry:
//	    var p ref
//	    var s int
//	    var e ref
//	    p = new Point
//	    putfield p, Point.x, 41
//	    s = callv Point.getX(p)
//	    jump Ldone
//	Ltry (try R0):
//	    s = div s, 0
//	    jump Ldone
//	Lcatch:
//	    s = move -1
//	    jump Ldone
//	Ldone:
//	    return s
//	}
//
// Rules: blocks are labels ending in ':'; the first block is the entry; every
// block must end in jump/if/return/throw; `var` lines may appear anywhere
// inside a function body and declare function-scoped locals; operands are
// variable names, integer or float literals, or `null` (and `dst = <operand>`
// is shorthand for a move).
//
// The dereferencing forms getfield/putfield/aload/astore/arraylength/callv
// emit the paper's split sequences (automatic nullcheck, and for element
// accesses arraylength + boundcheck); their `!`-suffixed raw forms emit just
// the instruction, and accept `@excsite v` / `@spec` annotations — that is
// the dialect optimized code round-trips through (see Format). An
// `instanceof` result branched against 0 carries the §4.1.2 Edge fact.
package jasm

import (
	"fmt"
	"strconv"
	"strings"

	"trapnull/internal/ir"
)

// Parse builds a program from jasm source. The returned map indexes the
// parsed functions by name (methods by qualified name).
func Parse(src string) (*ir.Program, map[string]*ir.Func, error) {
	p := &parser{
		prog:  ir.NewProgram("jasm"),
		funcs: map[string]*ir.Func{},
	}
	if err := p.run(src); err != nil {
		return nil, nil, err
	}
	return p.prog, p.funcs, nil
}

type parser struct {
	prog  *ir.Program
	funcs map[string]*ir.Func
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("jasm: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// next returns the next meaningful line (comments stripped) or false at EOF.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *parser) run(src string) error {
	p.lines = strings.Split(src, "\n")
	for {
		line, ok := p.next()
		if !ok {
			return nil
		}
		switch {
		case strings.HasPrefix(line, "class "):
			if err := p.parseClass(line); err != nil {
				return err
			}
		case strings.HasPrefix(line, "extern "):
			if err := p.parseExtern(line); err != nil {
				return err
			}
		case strings.HasPrefix(line, "func ") || strings.HasPrefix(line, "method ") ||
			strings.HasPrefix(line, "virtual method "):
			if err := p.parseFunc(line); err != nil {
				return err
			}
		default:
			return p.errf("unexpected top-level line %q", line)
		}
	}
}

func (p *parser) parseClass(line string) error {
	// class Name {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "class "))
	name := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	if name == "" || !strings.HasSuffix(rest, "{") {
		return p.errf("malformed class header %q", line)
	}
	var fields []*ir.Field
	for {
		l, ok := p.next()
		if !ok {
			return p.errf("unterminated class %s", name)
		}
		if l == "}" {
			break
		}
		// "<kind> <name> [@ offset]"
		parts := strings.Fields(l)
		if len(parts) != 2 && !(len(parts) == 4 && parts[2] == "@") {
			return p.errf("malformed field %q", l)
		}
		k, err := parseKind(parts[0])
		if err != nil {
			return p.errf("%v", err)
		}
		f := &ir.Field{Name: parts[1], Kind: k}
		if len(parts) == 4 {
			off, err := strconv.ParseInt(parts[3], 0, 32)
			if err != nil {
				return p.errf("bad offset %q", parts[3])
			}
			f.Offset = int32(off)
		}
		fields = append(fields, f)
	}
	p.prog.NewClass(name, fields...)
	return nil
}

func (p *parser) parseExtern(line string) error {
	// extern Math.exp exp
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return p.errf("malformed extern %q", line)
	}
	m := p.prog.AddMethod(nil, parts[1], nil, false)
	switch parts[2] {
	case "exp":
		m.Intrinsic = ir.MathExp
	case "log":
		m.Intrinsic = ir.MathLog
	case "sin":
		m.Intrinsic = ir.MathSin
	case "cos":
		m.Intrinsic = ir.MathCos
	case "sqrt":
		m.Intrinsic = ir.MathSqrt
	case "abs":
		m.Intrinsic = ir.MathAbs
	default:
		return p.errf("unknown intrinsic %q", parts[2])
	}
	return nil
}

func parseKind(s string) (ir.Kind, error) {
	switch s {
	case "int":
		return ir.KindInt, nil
	case "float":
		return ir.KindFloat, nil
	case "ref":
		return ir.KindRef, nil
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

// funcParser carries the per-function state.
type funcParser struct {
	*parser
	b      *ir.Builder
	vars   map[string]ir.VarID
	blocks map[string]*ir.Block
	// pendingRegions maps region name -> (handler label, exc var name).
	regions     map[string]*regionDecl
	regionIndex map[string]int
	started     bool
}

type regionDecl struct {
	handlerLabel string
	excVar       string
}

func (p *parser) parseFunc(header string) error {
	virtual := strings.HasPrefix(header, "virtual ")
	header = strings.TrimPrefix(header, "virtual ")
	isMethod := strings.HasPrefix(header, "method ")
	header = strings.TrimPrefix(header, "method ")
	header = strings.TrimPrefix(header, "func ")
	header = strings.TrimSpace(strings.TrimSuffix(header, "{"))

	open := strings.Index(header, "(")
	closeP := strings.LastIndex(header, ")")
	if open < 0 || closeP < open {
		return p.errf("malformed function header %q", header)
	}
	name := strings.TrimSpace(header[:open])
	paramsSrc := header[open+1 : closeP]
	resultSrc := strings.TrimSpace(header[closeP+1:])

	var cls *ir.Class
	fnName := name
	if isMethod {
		dot := strings.Index(name, ".")
		if dot < 0 {
			return p.errf("method name %q needs Class.name", name)
		}
		cls = p.prog.ClassByName(name[:dot])
		if cls == nil {
			return p.errf("unknown class %q", name[:dot])
		}
		fnName = name[dot+1:]
	}

	fp := &funcParser{
		parser:      p,
		b:           ir.NewFunc(fnName, isMethod),
		vars:        map[string]ir.VarID{},
		blocks:      map[string]*ir.Block{},
		regions:     map[string]*regionDecl{},
		regionIndex: map[string]int{},
	}

	// Parameters: "a int, b ref".
	if strings.TrimSpace(paramsSrc) != "" {
		for _, ps := range strings.Split(paramsSrc, ",") {
			parts := strings.Fields(strings.TrimSpace(ps))
			if len(parts) != 2 {
				return p.errf("malformed parameter %q", ps)
			}
			k, err := parseKind(parts[1])
			if err != nil {
				return p.errf("%v", err)
			}
			fp.vars[parts[0]] = fp.b.Param(parts[0], k)
		}
	}
	if resultSrc != "" {
		k, err := parseKind(resultSrc)
		if err != nil {
			return p.errf("%v", err)
		}
		fp.b.Result(k)
	}

	// Register the method before parsing the body so recursive calls
	// resolve; the function pointer is attached afterwards.
	m := p.prog.AddMethod(cls, fnName, nil, virtual)

	if err := fp.body(); err != nil {
		return err
	}

	fn := fp.b.F
	fn.RecomputeEdges()
	if err := ir.Validate(fn); err != nil {
		return p.errf("invalid function %s: %v", name, err)
	}
	m.Fn = fn
	fn.Method = m
	p.funcs[name] = fn
	return nil
}

// block returns (creating on demand) the named block.
func (fp *funcParser) block(label string) *ir.Block {
	if blk, ok := fp.blocks[label]; ok {
		return blk
	}
	blk := fp.b.F.NewBlock(label)
	fp.blocks[label] = blk
	return blk
}

func (fp *funcParser) body() error {
	for {
		line, ok := fp.next()
		if !ok {
			return fp.errf("unterminated function")
		}
		if line == "}" {
			// Resolve regions.
			for name, decl := range fp.regions {
				h, ok := fp.blocks[decl.handlerLabel]
				if !ok {
					return fp.errf("region %s: unknown handler label %q", name, decl.handlerLabel)
				}
				v, ok := fp.vars[decl.excVar]
				if !ok {
					return fp.errf("region %s: unknown exception variable %q", name, decl.excVar)
				}
				fp.b.F.Regions[fp.regionIndex[name]].Handler = h
				fp.b.F.Regions[fp.regionIndex[name]].ExcVar = v
			}
			return nil
		}
		if strings.HasPrefix(line, "region ") {
			// region R0 handler Lcatch exc e
			parts := strings.Fields(line)
			if len(parts) != 6 || parts[2] != "handler" || parts[4] != "exc" {
				return fp.errf("malformed region %q", line)
			}
			r := fp.b.F.NewRegion(nil, ir.NoVar)
			fp.regions[parts[1]] = &regionDecl{handlerLabel: parts[3], excVar: parts[5]}
			fp.regionIndex[parts[1]] = r.ID
			continue
		}
		if strings.HasSuffix(line, ":") || strings.Contains(line, "):") ||
			(strings.Contains(line, "(try ") && strings.HasSuffix(line, ":")) {
			// "label:" or "label (try R0):"
			lbl := strings.TrimSuffix(line, ":")
			try := ""
			if i := strings.Index(lbl, "(try "); i >= 0 {
				try = strings.TrimSpace(strings.TrimSuffix(lbl[i+5:], ")"))
				lbl = strings.TrimSpace(lbl[:i])
			}
			blk := fp.block(lbl)
			if try != "" {
				idx, ok := fp.regionIndex[try]
				if !ok {
					return fp.errf("unknown region %q", try)
				}
				blk.Try = idx
			}
			fp.b.SetBlock(blk)
			if !fp.started {
				fp.b.F.Entry = blk
				fp.started = true
			}
			continue
		}
		if strings.HasPrefix(line, "var ") {
			parts := strings.Fields(line)
			if len(parts) != 3 {
				return fp.errf("malformed var %q", line)
			}
			k, err := parseKind(parts[2])
			if err != nil {
				return fp.errf("%v", err)
			}
			if _, dup := fp.vars[parts[1]]; dup {
				return fp.errf("duplicate variable %q", parts[1])
			}
			fp.vars[parts[1]] = fp.b.Local(parts[1], k)
			continue
		}
		if err := fp.instr(line); err != nil {
			return err
		}
	}
}
