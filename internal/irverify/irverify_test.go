package irverify

import (
	"strings"
	"testing"

	"trapnull/internal/ir"
)

// sample builds prog with one class, a guarded field read and a try region:
// enough surface to exercise every verifier family.
func sample(t *testing.T) (*ir.Program, *ir.Func) {
	t.Helper()
	p := ir.NewProgram("verif")
	cls := p.NewClass("C", &ir.Field{Name: "f", Kind: ir.KindInt})

	b := ir.NewFunc("main", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	r := b.Local("r", ir.KindRef)
	b.New(r, cls)

	exc := b.Local("exc", ir.KindRef)
	handler := b.DeclareBlock("handler")
	region := b.F.NewRegion(handler, exc)
	tryB := b.DeclareBlock("try")
	tryB.Try = region.ID
	join := b.DeclareBlock("join")

	b.Jump(tryB)
	b.SetBlock(tryB)
	v := b.Temp(ir.KindInt)
	b.NullCheck(r, ir.ReasonField)
	b.GetField(v, r, cls.Fields[0])
	b.Jump(join)

	b.SetBlock(handler)
	b.Move(v, ir.ConstInt(-1))
	b.Jump(join)

	b.SetBlock(join)
	out := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, out, ir.Var(v), ir.Var(n))
	b.Return(ir.Var(out))
	fn := b.Finish()
	p.AddMethod(nil, "main", fn, false)
	return p, fn
}

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("verifier accepted corrupted IR, want error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestValidFunctionPasses(t *testing.T) {
	p, fn := sample(t)
	if err := Func(fn); err != nil {
		t.Fatalf("valid function rejected: %v", err)
	}
	if err := Program(p); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestStaleSuccsDetected(t *testing.T) {
	_, fn := sample(t)
	// Redirect the entry terminator without refreshing edges.
	fn.Entry.Terminator().Targets[0] = fn.Blocks[3]
	wantErr(t, Func(fn), "stale Succs")
}

func TestDroppedPredDetected(t *testing.T) {
	_, fn := sample(t)
	var join *ir.Block
	for _, b := range fn.Blocks {
		if b.Name == "join" {
			join = b
		}
	}
	join.Preds = join.Preds[:1]
	wantErr(t, Func(fn), "asymmetric edge")
}

func TestDuplicateBlockDetected(t *testing.T) {
	_, fn := sample(t)
	fn.Blocks = append(fn.Blocks, fn.Blocks[0])
	wantErr(t, Func(fn), "twice")
}

func TestDuplicateIDDetected(t *testing.T) {
	_, fn := sample(t)
	fn.Blocks[1].ID = fn.Blocks[0].ID
	wantErr(t, Func(fn), "duplicate block ID")
}

func TestExcSiteOnNonDereference(t *testing.T) {
	_, fn := sample(t)
	fn.Entry.Instrs[0].ExcSite = true // `new` is not a dereference
	wantErr(t, Func(fn), "exception-site")
}

func TestExcSiteVarMismatch(t *testing.T) {
	_, fn := sample(t)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGetField {
				in.ExcSite = true
				in.ExcVar = 0 // getfield dereferences r, not v0
			}
		}
	}
	wantErr(t, Func(fn), "dereferences")
}

func TestSpeculatedWriteDetected(t *testing.T) {
	_, fn := sample(t)
	fn.Entry.Instrs[0].Speculated = true // `new` cannot be a speculated read
	wantErr(t, Func(fn), "speculation mark")
}

func TestNullCheckOnIntLocal(t *testing.T) {
	_, fn := sample(t)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpNullCheck {
				in.Args[0] = ir.Var(0) // v0 is the int parameter
			}
		}
	}
	wantErr(t, Func(fn), "non-reference")
}

func TestSelfHandlingRegionDetected(t *testing.T) {
	_, fn := sample(t)
	fn.Regions[0].Handler.Try = fn.Regions[0].ID
	wantErr(t, Func(fn), "its own region")
}

func TestRegionIDMismatchDetected(t *testing.T) {
	_, fn := sample(t)
	fn.Regions[0].ID = 7
	// Re-point the try block so ir.Validate's range check does not fire first.
	for _, b := range fn.Blocks {
		if b.Try == 0 {
			b.Try = ir.NoTry
		}
	}
	wantErr(t, Func(fn), "has ID")
}

func TestBasicValidationStillRuns(t *testing.T) {
	_, fn := sample(t)
	fn.Entry.Instrs = fn.Entry.Instrs[:len(fn.Entry.Instrs)-1] // drop terminator
	if err := Func(fn); err == nil {
		t.Fatal("function without terminator accepted")
	}
}
