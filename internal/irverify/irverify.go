// Package irverify is the structural IR verifier the hardened pipeline runs
// between passes. ir.Validate covers the basic shape every consumer needs
// (terminators, arities, operand ranges); this package layers the invariants
// that only matter because passes mutate the CFG in place — Preds/Succs
// consistency with the terminators, no dangling or duplicated block
// pointers, exception-site marks that actually match the dereference they
// annotate, and try-region well-formedness. A violation here means a pass
// left the function in a state the next pass or the machine would
// misinterpret silently; catching it at the pass boundary turns a wrong
// benchmark number into a named, located compiler bug.
package irverify

import (
	"fmt"

	"trapnull/internal/ir"
)

// Error locates one structural violation. Func names the function; Block and
// Instr (when non-empty) pin the offending block and instruction. The jit
// pipeline wraps it with the pass that produced the state.
type Error struct {
	Func  string
	Block string
	Instr string
	Msg   string
}

func (e *Error) Error() string {
	s := "irverify: " + e.Func
	if e.Block != "" {
		s += " " + e.Block
	}
	if e.Instr != "" {
		s += ": `" + e.Instr + "`"
	}
	return s + ": " + e.Msg
}

func errf(f *ir.Func, b *ir.Block, in *ir.Instr, format string, args ...interface{}) *Error {
	e := &Error{Func: f.Name, Msg: fmt.Sprintf(format, args...)}
	if b != nil {
		e.Block = b.String()
	}
	if in != nil {
		e.Instr = in.String()
	}
	return e
}

// Func verifies all structural invariants of one function. It runs
// ir.Validate first, so a nil result implies basic validity too.
func Func(f *ir.Func) error {
	if err := ir.Validate(f); err != nil {
		return &Error{Func: f.Name, Msg: err.Error()}
	}

	inFunc := make(map[*ir.Block]bool, len(f.Blocks))
	ids := make(map[int]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		if inFunc[b] {
			return errf(f, b, nil, "block appears twice in Blocks")
		}
		inFunc[b] = true
		if b.ID < 0 {
			return errf(f, b, nil, "negative block ID")
		}
		if prev, dup := ids[b.ID]; dup {
			return errf(f, b, nil, "duplicate block ID (also %s)", prev)
		}
		ids[b.ID] = b
	}

	for _, b := range f.Blocks {
		if err := checkEdges(f, b, inFunc); err != nil {
			return err
		}
		for _, in := range b.Instrs {
			if err := checkInstr(f, b, in); err != nil {
				return err
			}
		}
	}
	return checkRegions(f, inFunc)
}

// checkEdges verifies the RecomputeEdges contract: Succs is exactly the
// terminator's target sequence, and every (pred, succ) pairing is mutual —
// the stale-edge bug class that makes dataflow solve over a phantom CFG.
func checkEdges(f *ir.Func, b *ir.Block, inFunc map[*ir.Block]bool) error {
	t := b.Terminator()
	var targets []*ir.Block
	if t != nil {
		targets = t.Targets
	}
	if len(b.Succs) != len(targets) {
		return errf(f, b, t, "stale Succs: %d edges, terminator has %d targets", len(b.Succs), len(targets))
	}
	for i, s := range b.Succs {
		if s != targets[i] {
			return errf(f, b, t, "stale Succs[%d]: %s, terminator targets %s", i, s, targets[i])
		}
		if !inFunc[s] {
			return errf(f, b, t, "dangling successor %s (not in function)", s)
		}
		if !hasEdge(s.Preds, b) {
			return errf(f, b, t, "asymmetric edge: %s missing from Preds of %s", b, s)
		}
	}
	for _, p := range b.Preds {
		if !inFunc[p] {
			return errf(f, b, nil, "dangling predecessor %s (not in function)", p)
		}
		if !hasEdge(p.Succs, b) {
			return errf(f, b, nil, "asymmetric edge: %s lists pred %s, which does not list it as succ", b, p)
		}
	}
	// Multiset equality of Preds against the true predecessor count.
	for _, s := range b.Succs {
		if count(s.Preds, b) != count(b.Succs, s) {
			return errf(f, b, nil, "edge multiplicity mismatch between %s and %s", b, s)
		}
	}
	return nil
}

func hasEdge(list []*ir.Block, b *ir.Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func count(list []*ir.Block, b *ir.Block) int {
	n := 0
	for _, x := range list {
		if x == b {
			n++
		}
	}
	return n
}

// checkInstr verifies per-instruction invariants beyond ir.Validate: operand
// kinds are members of the enum, exception-site marks annotate a real
// dereference of the variable they claim to cover, speculation marks only
// appear on reads, and null checks target reference-kinded locals.
func checkInstr(f *ir.Func, b *ir.Block, in *ir.Instr) error {
	for _, a := range in.Args {
		if a.Kind > ir.OperConstNull {
			return errf(f, b, in, "operand kind %d out of range", a.Kind)
		}
		if a.IsVar() && (a.Var < 0 || int(a.Var) >= f.NumLocals()) {
			return errf(f, b, in, "operand v%d out of range", a.Var)
		}
	}
	if in.HasDst() && int(in.Dst) >= f.NumLocals() {
		return errf(f, b, in, "destination v%d out of range", in.Dst)
	}
	if in.Op == ir.OpNullCheck {
		v := in.NullCheckVar()
		if f.Locals[v].Kind != ir.KindRef {
			return errf(f, b, in, "nullcheck targets non-reference local v%d (%s)", v, f.Locals[v].Kind)
		}
	}
	if in.ExcSite {
		sa, ok := in.SlotAccessInfo()
		if !ok {
			return errf(f, b, in, "exception-site mark on a non-dereferencing instruction")
		}
		if in.ExcVar < 0 || int(in.ExcVar) >= f.NumLocals() {
			return errf(f, b, in, "exception-site variable v%d out of range", in.ExcVar)
		}
		if in.ExcVar != sa.Base {
			return errf(f, b, in, "exception-site covers v%d but dereferences v%d", in.ExcVar, sa.Base)
		}
	}
	if in.Speculated {
		sa, ok := in.SlotAccessInfo()
		if !ok || sa.IsWrite {
			return errf(f, b, in, "speculation mark on a non-read instruction")
		}
	}
	return nil
}

// checkRegions verifies try-region well-formedness: region IDs match their
// index (blocks reference regions by index), handlers live in the function
// and do not handle their own region (exception dispatch would loop), and
// handler ExcVars are in range.
func checkRegions(f *ir.Func, inFunc map[*ir.Block]bool) error {
	for i, r := range f.Regions {
		if r.ID != i {
			return errf(f, nil, nil, "region at index %d has ID %d", i, r.ID)
		}
		if !inFunc[r.Handler] {
			return errf(f, nil, nil, "region %d: dangling handler %s", i, r.Handler)
		}
		if r.Handler.Try == r.ID {
			return errf(f, r.Handler, nil, "region %d: handler lies inside its own region", i)
		}
		if r.ExcVar != ir.NoVar && (r.ExcVar < 0 || int(r.ExcVar) >= f.NumLocals()) {
			return errf(f, nil, nil, "region %d: exception variable v%d out of range", i, r.ExcVar)
		}
	}
	return nil
}

// Program verifies every method body of a program.
func Program(p *ir.Program) error {
	for _, m := range p.Methods {
		if m.Fn == nil {
			continue
		}
		if err := Func(m.Fn); err != nil {
			return err
		}
	}
	return nil
}
