package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("after Add, missing %d", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Remove(64) did not clear the bit")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	New(10).Add(10)
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched Union")
		}
	}()
	New(10).Union(New(11))
}

func TestFillTrimAndComplement(t *testing.T) {
	s := New(70)
	s.Fill()
	if got := s.Count(); got != 70 {
		t.Fatalf("Fill count = %d, want 70", got)
	}
	s.Complement()
	if !s.IsEmpty() {
		t.Fatalf("complement of full set not empty: %v", s)
	}
	s.Complement()
	if got := s.Count(); got != 70 {
		t.Fatalf("double complement count = %d, want 70", got)
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Copy()
	if !u.Union(b) {
		t.Fatal("Union reported no change")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Has(i) != want {
			t.Fatalf("union bit %d = %v, want %v", i, u.Has(i), want)
		}
	}
	in := a.Copy()
	in.Intersect(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if in.Has(i) != want {
			t.Fatalf("intersect bit %d = %v, want %v", i, in.Has(i), want)
		}
	}
	d := a.Copy()
	d.Subtract(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Has(i) != want {
			t.Fatalf("subtract bit %d = %v, want %v", i, d.Has(i), want)
		}
	}
}

func TestChangedReporting(t *testing.T) {
	a := New(64)
	b := New(64)
	b.Add(5)
	if !a.Union(b) {
		t.Fatal("Union of new element should report change")
	}
	if a.Union(b) {
		t.Fatal("idempotent Union should report no change")
	}
	if a.Subtract(New(64)) {
		t.Fatal("subtracting empty set should report no change")
	}
	if !a.Subtract(b) {
		t.Fatal("subtracting present element should report change")
	}
}

func TestElemsAndForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestEqualAndCopy(t *testing.T) {
	a := New(77)
	a.Add(5)
	a.Add(76)
	b := a.Copy()
	if !a.Equal(b) {
		t.Fatal("copy not equal to original")
	}
	b.Add(6)
	if a.Equal(b) {
		t.Fatal("mutating copy affected equality")
	}
	if a.Has(6) {
		t.Fatal("copy shares storage with original")
	}
	if a.Equal(New(78)) {
		t.Fatal("sets of different sizes reported equal")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(40)
	a.Add(1)
	b := New(40)
	b.Add(2)
	b.Add(3)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatalf("CopyFrom: got %v want %v", a, b)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1, 7}" {
		t.Fatalf("String = %q", got)
	}
}

// randomSet builds a set of size n from a seed, used by the property tests.
func randomSet(n int, seed int64) *Set {
	r := rand.New(rand.NewSource(seed))
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// ¬(a ∪ b) == ¬a ∩ ¬b for arbitrary sets.
	f := func(seedA, seedB int64, sz uint8) bool {
		n := int(sz)%150 + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		left := a.Copy()
		left.Union(b)
		left.Complement()
		na := a.Copy()
		na.Complement()
		nb := b.Copy()
		nb.Complement()
		na.Intersect(nb)
		return left.Equal(na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractIdentity(t *testing.T) {
	// a − b == a ∩ ¬b.
	f := func(seedA, seedB int64, sz uint8) bool {
		n := int(sz)%150 + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		left := a.Copy()
		left.Subtract(b)
		nb := b.Copy()
		nb.Complement()
		right := a.Copy()
		right.Intersect(nb)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesElems(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%200 + 1
		s := randomSet(n, seed)
		return s.Count() == len(s.Elems())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickThreeOperandOps(t *testing.T) {
	// UnionWith / IntersectWith / SubtractInto match their two-operand
	// counterparts, including when the destination aliases an operand.
	f := func(seedA, seedB int64, sz uint8) bool {
		n := int(sz)%150 + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)

		union := New(n)
		union.UnionWith(a, b)
		wantU := a.Copy()
		wantU.Union(b)

		inter := New(n)
		inter.IntersectWith(a, b)
		wantI := a.Copy()
		wantI.Intersect(b)

		diff := New(n)
		a.SubtractInto(b, diff)
		wantD := a.Copy()
		wantD.Subtract(b)

		aliased := a.Copy()
		aliased.UnionWith(aliased, b)

		selfDiff := a.Copy()
		selfDiff.SubtractInto(b, selfDiff)

		return union.Equal(wantU) && inter.Equal(wantI) && diff.Equal(wantD) &&
			aliased.Equal(wantU) && selfDiff.Equal(wantD)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransferInto(t *testing.T) {
	// s.TransferInto(in, kill, gen) == (in − kill) ∪ gen, with an exact
	// changed report.
	f := func(seedIn, seedKill, seedGen int64, sz uint8) bool {
		n := int(sz)%150 + 1
		in := randomSet(n, seedIn)
		kill := randomSet(n, seedKill)
		gen := randomSet(n, seedGen)

		want := in.Copy()
		want.Subtract(kill)
		want.Union(gen)

		s := randomSet(n, seedIn^seedGen)
		wasEqual := s.Equal(want)
		changed := s.TransferInto(in, kill, gen)
		if !s.Equal(want) {
			return false
		}
		if changed == wasEqual {
			return false // changed must mean "s differed beforehand"
		}
		// A second application is a no-op.
		return !s.TransferInto(in, kill, gen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 3, 64, 127, 128, 199} {
		s.Add(i)
	}
	cases := []struct{ from, want int }{
		{0, 0}, {1, 3}, {3, 3}, {4, 64}, {65, 127}, {128, 128}, {129, 199},
		{199, 199}, {-5, 0},
	}
	for _, tc := range cases {
		if got := s.NextSet(tc.from); got != tc.want {
			t.Errorf("NextSet(%d) = %d, want %d", tc.from, got, tc.want)
		}
	}
	if got := New(64).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
	if got := s.NextSet(200); got != -1 {
		t.Errorf("NextSet past end = %d, want -1", got)
	}
}

func TestNextSetExhaustive(t *testing.T) {
	s := randomSet(130, 42)
	for from := 0; from <= 130; from++ {
		want := -1
		for i := from; i < 130; i++ {
			if s.Has(i) {
				want = i
				break
			}
		}
		if got := s.NextSet(from); got != want {
			t.Fatalf("NextSet(%d) = %d, want %d", from, got, want)
		}
	}
}

func TestNewSlab(t *testing.T) {
	sets := NewSlab(5, 70)
	if len(sets) != 5 {
		t.Fatalf("len = %d, want 5", len(sets))
	}
	for i, s := range sets {
		if s.Len() != 70 || !s.IsEmpty() {
			t.Fatalf("set %d: len=%d empty=%v", i, s.Len(), s.IsEmpty())
		}
	}
	// Sets must be independent despite the shared backing.
	sets[1].Fill()
	sets[3].Add(69)
	if !sets[0].IsEmpty() || !sets[2].IsEmpty() || !sets[4].IsEmpty() {
		t.Fatal("slab neighbors leaked bits")
	}
	if sets[1].Count() != 70 || sets[3].Count() != 1 {
		t.Fatalf("counts: %d, %d", sets[1].Count(), sets[3].Count())
	}
	if got := NewSlab(0, 10); len(got) != 0 {
		t.Fatalf("empty slab: %d sets", len(got))
	}
}
