package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("after Add, missing %d", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Remove(64) did not clear the bit")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	New(10).Add(10)
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched Union")
		}
	}()
	New(10).Union(New(11))
}

func TestFillTrimAndComplement(t *testing.T) {
	s := New(70)
	s.Fill()
	if got := s.Count(); got != 70 {
		t.Fatalf("Fill count = %d, want 70", got)
	}
	s.Complement()
	if !s.IsEmpty() {
		t.Fatalf("complement of full set not empty: %v", s)
	}
	s.Complement()
	if got := s.Count(); got != 70 {
		t.Fatalf("double complement count = %d, want 70", got)
	}
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Copy()
	if !u.Union(b) {
		t.Fatal("Union reported no change")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Has(i) != want {
			t.Fatalf("union bit %d = %v, want %v", i, u.Has(i), want)
		}
	}
	in := a.Copy()
	in.Intersect(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if in.Has(i) != want {
			t.Fatalf("intersect bit %d = %v, want %v", i, in.Has(i), want)
		}
	}
	d := a.Copy()
	d.Subtract(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Has(i) != want {
			t.Fatalf("subtract bit %d = %v, want %v", i, d.Has(i), want)
		}
	}
}

func TestChangedReporting(t *testing.T) {
	a := New(64)
	b := New(64)
	b.Add(5)
	if !a.Union(b) {
		t.Fatal("Union of new element should report change")
	}
	if a.Union(b) {
		t.Fatal("idempotent Union should report no change")
	}
	if a.Subtract(New(64)) {
		t.Fatal("subtracting empty set should report no change")
	}
	if !a.Subtract(b) {
		t.Fatal("subtracting present element should report change")
	}
}

func TestElemsAndForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestEqualAndCopy(t *testing.T) {
	a := New(77)
	a.Add(5)
	a.Add(76)
	b := a.Copy()
	if !a.Equal(b) {
		t.Fatal("copy not equal to original")
	}
	b.Add(6)
	if a.Equal(b) {
		t.Fatal("mutating copy affected equality")
	}
	if a.Has(6) {
		t.Fatal("copy shares storage with original")
	}
	if a.Equal(New(78)) {
		t.Fatal("sets of different sizes reported equal")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(40)
	a.Add(1)
	b := New(40)
	b.Add(2)
	b.Add(3)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatalf("CopyFrom: got %v want %v", a, b)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1, 7}" {
		t.Fatalf("String = %q", got)
	}
}

// randomSet builds a set of size n from a seed, used by the property tests.
func randomSet(n int, seed int64) *Set {
	r := rand.New(rand.NewSource(seed))
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// ¬(a ∪ b) == ¬a ∩ ¬b for arbitrary sets.
	f := func(seedA, seedB int64, sz uint8) bool {
		n := int(sz)%150 + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		left := a.Copy()
		left.Union(b)
		left.Complement()
		na := a.Copy()
		na.Complement()
		nb := b.Copy()
		nb.Complement()
		na.Intersect(nb)
		return left.Equal(na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractIdentity(t *testing.T) {
	// a − b == a ∩ ¬b.
	f := func(seedA, seedB int64, sz uint8) bool {
		n := int(sz)%150 + 1
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		left := a.Copy()
		left.Subtract(b)
		nb := b.Copy()
		nb.Complement()
		right := a.Copy()
		right.Intersect(nb)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesElems(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%200 + 1
		s := randomSet(n, seed)
		return s.Count() == len(s.Elems())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
