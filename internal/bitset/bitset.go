// Package bitset provides dense bit vectors sized for data-flow analysis.
//
// The null check analyses in this repository are bit-vector problems whose
// elements are local-variable indices; every lattice value is a Set. Sets are
// mutable and cheap to copy, and all binary operations require operands of
// identical length so that a mismatch is caught immediately rather than
// silently truncated.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-size bit vector. The zero value is an empty set of size 0.
type Set struct {
	n     int
	words []uint64
	// inline backs words for sets of up to 3*64 elements, making New a
	// single heap object instead of header-plus-backing. Data-flow sets here
	// are indexed by local-variable number, which rarely exceeds 192.
	inline [3]uint64
}

// New returns an empty set able to hold elements 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	s := &Set{n: n}
	if w <= len(s.inline) {
		s.words = s.inline[:w]
	} else {
		s.words = make([]uint64, w)
	}
	return s
}

// NewPair returns two independent empty sets of size n sharing one heap
// allocation — the gen/kill summary shape every per-block data-flow scan
// builds, so a scan costs one object instead of two (or four).
func NewPair(n int) (*Set, *Set) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	p := new([2]Set)
	p[0].n, p[1].n = n, n
	if w <= len(p[0].inline) {
		p[0].words = p[0].inline[:w]
		p[1].words = p[1].inline[:w]
	} else {
		backing := make([]uint64, 2*w)
		p[0].words = backing[:w:w]
		p[1].words = backing[w:]
	}
	return &p[0], &p[1]
}

// NewFull returns a set of size n with every bit set.
func NewFull(n int) *Set {
	s := New(n)
	s.Fill()
	return s
}

// NewSlab returns count independent empty sets of size n carved out of a
// single backing allocation. A data-flow solver materializing In/Out sets for
// every block of a large function allocates twice instead of 2×count times.
func NewSlab(count, n int) []*Set {
	if n < 0 || count < 0 {
		panic(fmt.Sprintf("bitset: negative slab dimensions %d×%d", count, n))
	}
	words := (n + wordBits - 1) / wordBits
	backing := make([]uint64, count*words)
	hdrs := make([]Set, count)
	out := make([]*Set, count)
	for i := range hdrs {
		hdrs[i] = Set{n: n, words: backing[i*words : (i+1)*words : (i+1)*words]}
		out[i] = &hdrs[i]
	}
	return out
}

// Len returns the number of elements the set can hold.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) sameSize(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", s.n, t.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Clear resets every bit.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the unused high bits of the last word so that Equal and Count
// remain exact after Fill or Complement.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	t := New(s.n)
	copy(t.words, s.words)
	return t
}

// CopyFrom overwrites s with the contents of t.
func (s *Set) CopyFrom(t *Set) {
	s.sameSize(t)
	copy(s.words, t.words)
}

// Union sets s = s ∪ t and reports whether s changed.
func (s *Set) Union(t *Set) bool {
	s.sameSize(t)
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect sets s = s ∩ t and reports whether s changed.
func (s *Set) Intersect(t *Set) bool {
	s.sameSize(t)
	changed := false
	for i, w := range t.words {
		nw := s.words[i] & w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Subtract sets s = s − t and reports whether s changed.
func (s *Set) Subtract(t *Set) bool {
	s.sameSize(t)
	changed := false
	for i, w := range t.words {
		nw := s.words[i] &^ w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// UnionWith sets s = a ∪ b. The receiver may alias either operand; the
// three-operand form lets data-flow transfer functions combine sets without a
// temporary copy.
func (s *Set) UnionWith(a, b *Set) {
	s.sameSize(a)
	s.sameSize(b)
	for i := range s.words {
		s.words[i] = a.words[i] | b.words[i]
	}
}

// IntersectWith sets s = a ∩ b. The receiver may alias either operand.
func (s *Set) IntersectWith(a, b *Set) {
	s.sameSize(a)
	s.sameSize(b)
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// SubtractInto sets dst = s − t without modifying s. dst may alias either
// operand.
func (s *Set) SubtractInto(t, dst *Set) {
	s.sameSize(t)
	s.sameSize(dst)
	for i := range s.words {
		dst.words[i] = s.words[i] &^ t.words[i]
	}
}

// TransferInto sets s = (in − kill) ∪ gen — the standard gen/kill transfer
// function fused into one pass — and reports whether s changed. The receiver
// may alias in.
func (s *Set) TransferInto(in, kill, gen *Set) bool {
	s.sameSize(in)
	s.sameSize(kill)
	s.sameSize(gen)
	changed := false
	for i := range s.words {
		nw := (in.words[i] &^ kill.words[i]) | gen.words[i]
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Complement sets s = ¬s.
func (s *Set) Complement() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether no bit is set.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the smallest set bit ≥ i, or -1 when none exists. A
// priority worklist over dense indices pops its minimum element with it.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls f for every set bit in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elems returns the set bits in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as {a, b, c}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
