package opt

import (
	"sort"

	"trapnull/internal/arch"
	"trapnull/internal/bitset"
	"trapnull/internal/cfg"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
)

// ScalarStats reports what ScalarReplace did.
type ScalarStats struct {
	// CSE counts redundant loads replaced by register moves.
	CSE int
	// Hoisted counts loop-invariant instructions moved to preheaders.
	Hoisted int
	// Promoted counts field locations promoted to a register across a loop
	// (the Figure 6 transformation).
	Promoted int
	// Speculated counts loads hoisted above their null checks on
	// architectures where a null read cannot trap (§3.3.1).
	Speculated int
}

// Add accumulates other into s.
func (s *ScalarStats) Add(o ScalarStats) {
	s.CSE += o.CSE
	s.Hoisted += o.Hoisted
	s.Promoted += o.Promoted
	s.Speculated += o.Speculated
}

// ScalarReplace performs the paper's "scalar replacement" family: local
// common-subexpression elimination of memory reads, loop-invariant code
// motion of pure operations and guarded (or speculated) reads, and loop
// register promotion of fields. Null checks gate every memory hoist: a read
// only leaves the loop when its base is proven non-null at the preheader —
// which is exactly what iterating with phase 1 provides — or when the model
// permits read speculation.
func ScalarReplace(f *ir.Func, m *arch.Model) ScalarStats {
	st := ScalarStats{}
	st.CSE += localCSE(f)

	f.RecomputeEdges()
	doms := cfg.ComputeDominators(f)
	loops := cfg.FindLoops(f, doms)
	if len(loops) == 0 {
		return st
	}
	cfg.EnsurePreheaders(f, loops)
	f.RecomputeEdges()
	nonNull := nullcheck.NonNullOut(f)

	defCount := countDefs(f)
	for _, l := range loops {
		if loopTouchesTry(l) {
			// Inside a try region every local write is observable by the
			// handler (the paper's barrier rule), so changing when any
			// instruction of the loop executes relative to a potential
			// exception is illegal. No motion in or across regions.
			continue
		}
		h, s := hoistLoop(f, l, m, nonNull, defCount)
		st.Hoisted += h
		st.Speculated += s
		p, ps := promoteLoop(f, l, m, nonNull)
		st.Promoted += p
		st.Speculated += ps
	}
	return st
}

// loadKey identifies the value a memory read produces.
type loadKey struct {
	op    ir.Op
	base  ir.VarID
	field *ir.Field
	// Index operand for array loads.
	idxIsVar bool
	idxVar   ir.VarID
	idxConst int64
}

func keyOfLoad(in *ir.Instr) (loadKey, bool) {
	switch in.Op {
	case ir.OpGetField:
		if in.Args[0].IsVar() {
			return loadKey{op: in.Op, base: in.Args[0].Var, field: in.Field}, true
		}
	case ir.OpArrayLength:
		if in.Args[0].IsVar() {
			return loadKey{op: in.Op, base: in.Args[0].Var}, true
		}
	case ir.OpArrayLoad:
		if !in.Args[0].IsVar() {
			break
		}
		k := loadKey{op: in.Op, base: in.Args[0].Var}
		switch in.Args[1].Kind {
		case ir.OperVar:
			k.idxIsVar = true
			k.idxVar = in.Args[1].Var
		case ir.OperConstInt:
			k.idxConst = in.Args[1].Int
		default:
			return loadKey{}, false
		}
		return k, true
	}
	return loadKey{}, false
}

// CSE runs only the block-local redundant-load elimination, without any
// loop motion. The simulated HotSpot comparator uses it: the 1999 server
// compiler the paper measured did not have the iterated loop-invariant
// machinery under test here.
func CSE(f *ir.Func) int { return localCSE(f) }

// localCSE replaces a repeated read of the same location within a block by a
// move from the variable holding the earlier result.
func localCSE(f *ir.Func) int {
	replaced := 0
	for _, b := range f.Blocks {
		avail := map[loadKey]ir.VarID{}
		for _, in := range b.Instrs {
			k, isLoad := keyOfLoad(in)
			if isLoad && !in.ExcSite && !in.Speculated {
				if src, hit := avail[k]; hit && src != in.Dst {
					in.Op = ir.OpMove
					in.Args = []ir.Operand{ir.Var(src)}
					in.Field = nil
					replaced++
					isLoad = false
				}
			} else {
				isLoad = false
			}
			invalidateLoads(avail, in)
			// Record after invalidation so the fact defined by this very
			// instruction survives; a load whose destination doubles as its
			// base (a = a.f) cannot be recorded.
			if isLoad && in.Dst != k.base && !(k.idxIsVar && in.Dst == k.idxVar) {
				avail[k] = in.Dst
			}
		}
	}
	return replaced
}

// invalidateLoads drops availability facts clobbered by in.
func invalidateLoads(avail map[loadKey]ir.VarID, in *ir.Instr) {
	switch in.Op {
	case ir.OpPutField:
		for k := range avail {
			if k.op == ir.OpGetField && k.field == in.Field {
				delete(avail, k)
			}
		}
	case ir.OpArrayStore:
		for k := range avail {
			if k.op == ir.OpArrayLoad {
				delete(avail, k)
			}
		}
	case ir.OpCallStatic, ir.OpCallVirtual:
		for k := range avail {
			delete(avail, k)
		}
	}
	if in.HasDst() {
		for k, v := range avail {
			if v == in.Dst || k.base == in.Dst || (k.idxIsVar && k.idxVar == in.Dst) {
				delete(avail, k)
			}
		}
	}
}

func countDefs(f *ir.Func) map[ir.VarID]int {
	defs := map[ir.VarID]int{}
	// Parameters carry an implicit definition at function entry: an
	// instruction assigning one is always a REdefinition, and hoisting it
	// would clobber the incoming value for earlier uses.
	for i := 0; i < f.NumParams; i++ {
		defs[ir.VarID(i)] = 1
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasDst() {
				defs[in.Dst]++
			}
		}
	}
	return defs
}

func loopTouchesTry(l *cfg.Loop) bool {
	if l.Preheader.Try != ir.NoTry {
		return true
	}
	for b := range l.Blocks {
		if b.Try != ir.NoTry {
			return true
		}
	}
	return false
}

// loopSummary captures the memory behaviour of a loop body.
type loopSummary struct {
	hasCall       bool
	hasArrayStore bool
	storedFields  map[*ir.Field]bool
	defsInLoop    map[ir.VarID]int
	// checkedInLoop marks variables with a surviving null check inside the
	// loop. A read of such a base may not leave the loop: the check is its
	// motion barrier (the paper's Figure 4 interplay — only after phase 1
	// removes the in-loop check does the load become hoistable), unless
	// the model permits read speculation.
	checkedInLoop map[ir.VarID]bool
}

func summarizeLoop(l *cfg.Loop) loopSummary {
	s := loopSummary{
		storedFields:  map[*ir.Field]bool{},
		defsInLoop:    map[ir.VarID]int{},
		checkedInLoop: map[ir.VarID]bool{},
	}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCallStatic, ir.OpCallVirtual:
				s.hasCall = true
			case ir.OpArrayStore:
				s.hasArrayStore = true
			case ir.OpPutField:
				s.storedFields[in.Field] = true
			case ir.OpNullCheck:
				s.checkedInLoop[in.NullCheckVar()] = true
			}
			if in.HasDst() {
				s.defsInLoop[in.Dst]++
			}
		}
	}
	return s
}

// hoistLoop moves loop-invariant instructions of loop l into its preheader.
// Returns (hoisted, speculated) counts.
//
// An instruction hoists when every variable operand is loop-invariant, its
// destination has a single definition in the function (builder temporaries),
// and its category permits motion:
//
//   - pure non-throwing computation: always;
//   - memory read: additionally no killing store or call in the loop, and the
//     base must be proven non-null at the preheader (its check was hoisted,
//     typically by phase 1) or the model must allow read speculation, in
//     which case the hoisted read is marked Speculated;
//   - bounds check: additionally it must sit in the loop header before any
//     side effect, so that it is anticipated on loop entry and hoisting it
//     cannot surface an exception early across observable state.
func hoistLoop(f *ir.Func, l *cfg.Loop, m *arch.Model, nonNull map[*ir.Block]*bitset.Set, defCount map[ir.VarID]int) (int, int) {
	sum := summarizeLoop(l)
	pre := l.Preheader
	hoisted, speculated := 0, 0

	invariantOperand := func(a ir.Operand) bool {
		return !a.IsVar() || sum.defsInLoop[a.Var] == 0
	}
	invariant := func(in *ir.Instr) bool {
		for _, a := range in.Args {
			if !invariantOperand(a) {
				return false
			}
		}
		return true
	}

	// Iterate: hoisting one definition can make dependents invariant.
	for changed := true; changed; {
		changed = false
		// Visit the header first so dependency order (length before bounds
		// check before element load) is preserved in the preheader; the
		// remaining blocks go in ID order for deterministic output.
		blocks := []*ir.Block{l.Header}
		for _, b := range f.Blocks {
			if l.Blocks[b] && b != l.Header {
				blocks = append(blocks, b)
			}
		}
		for _, b := range blocks {
			sideEffectSeen := false
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if in.IsTerminator() {
					break
				}
				move := false
				speculate := false
				switch {
				case in.ExcSite || in.Speculated:
					// Never disturb an implicit check site.
				case pureNonThrowing(in):
					move = in.HasDst() && defCount[in.Dst] == 1 && invariant(in)
				case in.Op == ir.OpGetField || in.Op == ir.OpArrayLength || in.Op == ir.OpArrayLoad:
					if in.HasDst() && defCount[in.Dst] == 1 && invariant(in) && !loadKilledInLoop(in, sum) {
						base := in.Args[0].Var
						switch {
						case !sum.checkedInLoop[base] &&
							nonNull[pre] != nil && nonNull[pre].Has(int(base)):
							move = true
						case m.SpeculativeReads:
							move = true
							speculate = true
						}
					}
				case in.Op == ir.OpBoundCheck:
					move = b == l.Header && !sideEffectSeen && invariant(in)
				}
				if move {
					b.RemoveInstr(i)
					i--
					if speculate {
						in.Speculated = true
						speculated++
					}
					pre.InsertBeforeTerminator(in)
					if in.HasDst() {
						sum.defsInLoop[in.Dst] = 0
					}
					hoisted++
					changed = true
					continue
				}
				if in.WritesMemory() || in.CanThrowOther() {
					sideEffectSeen = true
				}
			}
		}
	}
	return hoisted, speculated
}

// pureNonThrowing reports whether the instruction computes a value with no
// possible exception and no memory access.
func pureNonThrowing(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpMove, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpNot,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg,
		ir.OpIntToFloat, ir.OpFloatToInt, ir.OpCmp, ir.OpMath:
		return true
	case ir.OpInstanceOf:
		// Pure, but pinned: the instanceof-if Edge rule (§4.1.2) is
		// recognized block-locally, so separating the test from its branch
		// would strand non-null facts that earlier passes already used.
		return false
	}
	return false
}

// loadKilledInLoop reports whether any store or call in the loop may change
// the value in's read observes.
func loadKilledInLoop(in *ir.Instr, sum loopSummary) bool {
	if sum.hasCall {
		return true
	}
	switch in.Op {
	case ir.OpGetField:
		return sum.storedFields[in.Field]
	case ir.OpArrayLength:
		// Array lengths are immutable after allocation.
		return false
	case ir.OpArrayLoad:
		return sum.hasArrayStore
	}
	return true
}

// promoteLoop applies the Figure 6 transformation: a field read and written
// through one invariant base inside a loop is kept in a register; loads
// become register moves, stores update the register and still write through
// for precise visibility. Returns (promotions, speculated loads).
func promoteLoop(f *ir.Func, l *cfg.Loop, m *arch.Model, nonNull map[*ir.Block]*bitset.Set) (int, int) {
	sum := summarizeLoop(l)
	if sum.hasCall {
		return 0, 0
	}
	pre := l.Preheader

	// Candidate fields: loaded and stored in the loop, always through the
	// same invariant base variable.
	type access struct {
		base   ir.VarID
		loads  int
		stores int
		mixed  bool // multiple bases or non-var base
	}
	cand := map[*ir.Field]*access{}
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpGetField && in.Op != ir.OpPutField {
				continue
			}
			a := cand[in.Field]
			if a == nil {
				a = &access{base: -2}
				cand[in.Field] = a
			}
			if !in.Args[0].IsVar() || in.ExcSite || in.Speculated {
				a.mixed = true
				continue
			}
			base := in.Args[0].Var
			if a.base == -2 {
				a.base = base
			} else if a.base != base {
				a.mixed = true
			}
			if in.Op == ir.OpGetField {
				a.loads++
			} else {
				a.stores++
			}
		}
	}

	// Deterministic order for the preheader initializers.
	fields := make([]*ir.Field, 0, len(cand))
	for field := range cand {
		fields = append(fields, field)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].String() < fields[j].String() })

	promoted, speculated := 0, 0
	for _, field := range fields {
		a := cand[field]
		if a.mixed || a.stores == 0 || a.loads == 0 || sum.defsInLoop[a.base] != 0 {
			continue
		}
		spec := false
		switch {
		case !sum.checkedInLoop[a.base] && nonNull[pre] != nil && nonNull[pre].Has(int(a.base)):
		case m.SpeculativeReads:
			spec = true
		default:
			continue
		}
		tmp := f.NewLocal("prom_"+field.Name, field.Kind)
		arena := f.Alloc()
		init := arena.NewInstr(ir.Instr{Op: ir.OpGetField, Dst: tmp, Field: field, Args: arena.Operands(ir.Var(a.base))})
		if spec {
			init.Speculated = true
			speculated++
		}
		pre.InsertBeforeTerminator(init)
		for b := range l.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				switch {
				case in.Op == ir.OpGetField && in.Field == field:
					in.Op = ir.OpMove
					in.Args = []ir.Operand{ir.Var(tmp)}
					in.Field = nil
				case in.Op == ir.OpPutField && in.Field == field:
					// tmp = src; base.f = tmp
					src := in.Args[1]
					b.InsertBefore(i, arena.NewInstr(ir.Instr{Op: ir.OpMove, Dst: tmp, Args: arena.Operands(src)}))
					i++
					in.Args[1] = ir.Var(tmp)
				}
			}
		}
		promoted++
	}
	return promoted, speculated
}
