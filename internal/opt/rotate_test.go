package opt

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
)

// whileLoop builds a top-tested loop: entry -> head; head: if i<n -> body
// else exit; body: t=a.f; s+=t; i++; -> head.
func whileLoop() (*ir.Func, *ir.Block, *ir.Block) {
	p := ir.NewProgram("w")
	cls := p.NewClass("C", &ir.Field{Name: "f", Kind: ir.KindInt})
	b := ir.NewFunc("while", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	entry := b.Block("entry")
	head := b.DeclareBlock("head")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(head)
	b.SetBlock(head)
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(body)
	t := b.Temp(ir.KindInt)
	b.GetField(t, a, cls.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(t))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.Jump(head)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return b.Finish(), head, body
}

func TestRotateLoopsPeelsTest(t *testing.T) {
	f, head, _ := whileLoop()
	nBlocks := len(f.Blocks)
	if got := RotateLoops(f); got != 1 {
		t.Fatalf("rotated %d, want 1", got)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(f.Blocks) != nBlocks+1 {
		t.Fatalf("blocks %d, want %d", len(f.Blocks), nBlocks+1)
	}
	// The original header must now be reached only from inside the loop.
	f.RecomputeEdges()
	for _, p := range head.Preds {
		if p.Name == "entry" {
			t.Fatalf("entry still targets the original header:\n%s", f)
		}
	}
}

// TestRotationEnablesPhase1Hoisting: the point of the pass — the while-loop
// field check cannot leave the loop without rotation, and does with it.
func TestRotationEnablesPhase1Hoisting(t *testing.T) {
	checksIn := func(blk *ir.Block) int {
		n := 0
		for _, in := range blk.Instrs {
			if in.Op == ir.OpNullCheck {
				n++
			}
		}
		return n
	}

	fNoRot, _, bodyNoRot := whileLoop()
	nullcheck.Phase1(fNoRot)
	if checksIn(bodyNoRot) == 0 {
		t.Fatalf("without rotation the body check should be stuck:\n%s", fNoRot)
	}

	fRot, _, bodyRot := whileLoop()
	RotateLoops(fRot)
	nullcheck.Phase1(fRot)
	if got := checksIn(bodyRot); got != 0 {
		t.Fatalf("after rotation %d checks remain in the body:\n%s", got, fRot)
	}
	if err := nullcheck.CheckGuards(fRot, arch.IA32Win()); err != nil {
		t.Fatalf("guards: %v", err)
	}
}

func TestRotateSkipsBottomTestedLoops(t *testing.T) {
	// A do-while loop's header is its body; the terminator pattern does not
	// match and nothing should change.
	p := ir.NewProgram("d")
	_ = p
	b := ir.NewFunc("dowhile", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(i))
	f := b.Finish()

	// The body IS the header and tests at the bottom — but it also has the
	// one-in-one-out successor shape, so rotation may legally peel it; what
	// matters is semantics. Accept either outcome but require validity.
	RotateLoops(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestRotateHugeHeaderSkipped(t *testing.T) {
	f, head, _ := whileLoop()
	// Inflate the header past the duplication budget.
	for k := 0; k < rotateMaxHeader+1; k++ {
		head.InsertBefore(0, &ir.Instr{
			Op: ir.OpMove, Dst: f.NewLocal("pad", ir.KindInt),
			Args: []ir.Operand{ir.ConstInt(int64(k))},
		})
	}
	f.RecomputeEdges()
	if got := RotateLoops(f); got != 0 {
		t.Fatalf("rotated an oversized header")
	}
}
