package opt

import (
	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// InlineStats reports what the inliner did.
type InlineStats struct {
	// Devirtualized counts virtual call sites converted to inlined bodies;
	// each leaves behind an explicit null check with ReasonInlined — the
	// checks phase 2 exists to optimize (Figure 1).
	Devirtualized int
	// Inlined counts static call sites inlined.
	Inlined int
	// Intrinsified counts math calls lowered to single instructions (only
	// on models with MathIntrinsics, the §5.4 platform difference).
	Intrinsified int
}

// Add accumulates o into s.
func (s *InlineStats) Add(o InlineStats) {
	s.Devirtualized += o.Devirtualized
	s.Inlined += o.Inlined
	s.Intrinsified += o.Intrinsified
}

// InlineBudget is the default maximum callee size (in instructions) the
// inliner accepts; the paper targets the small accessor methods of mtrt.
const InlineBudget = 24

// Inline devirtualizes and inlines small method bodies into f and lowers
// math intrinsics according to the model, using the default budget.
func Inline(f *ir.Func, m *arch.Model) InlineStats {
	return InlineWithBudget(f, m, InlineBudget)
}

// InlineWithBudget is Inline with an explicit callee-size budget. Callee
// bodies are taken as-is (depth 1; nested calls inside an inlined body stay
// calls, then become further sites). Callees with try regions or recursion
// back to f are skipped.
func InlineWithBudget(f *ir.Func, m *arch.Model, budget int) InlineStats {
	st := InlineStats{}
	// Collect sites first: inlining splits blocks and appends new ones.
	type site struct {
		b   *ir.Block
		idx int
	}
	// Hard cap on expansions per function: mutual-recursion cycles that the
	// per-callee guards cannot see terminate here instead of running away.
	const maxInlineSites = 64
	for st.Devirtualized+st.Inlined < maxInlineSites {
		var found *site
		var callee *ir.Method
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpCallStatic && in.Op != ir.OpCallVirtual {
					continue
				}
				cal := in.Callee
				if cal == nil {
					continue
				}
				if cal.Intrinsic != ir.MathNone && m.MathIntrinsics {
					// Lower to a single instruction in place. On models
					// without the instruction the call remains and acts as
					// an optimization barrier (§5.4).
					in.Op = ir.OpMath
					in.Fn = cal.Intrinsic
					in.Callee = nil
					st.Intrinsified++
					continue
				}
				if cal.Fn == nil || !inlinable(cal, f, budget) {
					continue
				}
				found = &site{b, i}
				callee = cal
				break
			}
			if found != nil {
				break
			}
		}
		if found == nil {
			break
		}
		inlineAt(f, found.b, found.idx, callee)
		if callee.Virtual {
			st.Devirtualized++
		} else {
			st.Inlined++
		}
	}
	f.RecomputeEdges()
	return st
}

// inlinable applies the inlining policy.
func inlinable(m *ir.Method, caller *ir.Func, budget int) bool {
	if m.Fn == caller || len(m.Fn.Regions) > 0 {
		return false
	}
	if m.Fn.NumInstrs() > budget {
		return false
	}
	// Reject callees that call themselves (their body would re-expand at
	// every round) or call back into the caller.
	for _, b := range m.Fn.Blocks {
		for _, in := range b.Instrs {
			if (in.Op == ir.OpCallStatic || in.Op == ir.OpCallVirtual) &&
				in.Callee != nil && (in.Callee.Fn == caller || in.Callee.Fn == m.Fn) {
				return false
			}
		}
	}
	return true
}

// inlineAt splices callee's body in place of the call at b.Instrs[idx].
//
// For a virtual call the dispatch dereference of the receiver disappears, so
// an explicit null check with ReasonInlined takes its place — the paper's
// Figure 1 requirement. The builder already emitted a check before the call;
// that one remains and is retagged rather than duplicated when it
// immediately precedes the site.
func inlineAt(f *ir.Func, b *ir.Block, idx int, m *ir.Method) {
	call := b.Instrs[idx]
	callee := m.Fn
	arena := f.Alloc()

	// Parameters the callee never writes alias the argument variable
	// directly instead of being copied into a fresh local. This keeps the
	// null check linkage intact: the dereferences of an inlined accessor
	// body target the very variable the devirtualization guard checks.
	written := make([]bool, callee.NumParams)
	for _, cb := range callee.Blocks {
		for _, in := range cb.Instrs {
			if in.HasDst() && int(in.Dst) < callee.NumParams {
				written[in.Dst] = true
			}
		}
	}
	mapping := make([]ir.VarID, len(callee.Locals))
	var argMoves []*ir.Instr
	for li, l := range callee.Locals {
		if li < callee.NumParams {
			a := call.Args[li]
			if a.IsVar() && !written[li] {
				mapping[li] = a.Var
				continue
			}
			nv := f.NewLocal("in_"+l.Name, l.Kind)
			mapping[li] = nv
			argMoves = append(argMoves, arena.NewInstr(ir.Instr{Op: ir.OpMove, Dst: nv, Args: arena.Operands(a)}))
			continue
		}
		mapping[li] = f.NewLocal("in_"+l.Name, l.Kind)
	}
	remap := func(v ir.VarID) ir.VarID { return mapping[v] }

	// Continuation block: everything after the call.
	cont := f.NewBlock(b.Name + "_cont")
	cont.Try = b.Try
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)

	// Head: everything before the call plus the argument moves.
	head := b.Instrs[:idx]
	if call.Op == ir.OpCallVirtual {
		// Retag the guard the builder placed, or add one if the call was
		// constructed without it.
		if idx > 0 && head[idx-1].Op == ir.OpNullCheck &&
			head[idx-1].Args[0].IsVar() && call.Args[0].IsVar() &&
			head[idx-1].Args[0].Var == call.Args[0].Var {
			head[idx-1].Reason = ir.ReasonInlined
		} else {
			head = append(head, arena.NewInstr(ir.Instr{
				Op: ir.OpNullCheck, Dst: ir.NoVar,
				Args:     arena.Operands(call.Args[0]),
				Reason:   ir.ReasonInlined,
				Explicit: true,
			}))
		}
	}
	head = append(head, argMoves...)

	// Clone callee blocks.
	bmap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := f.NewBlock(callee.Name + "_" + cb.Name)
		nb.Try = b.Try
		bmap[cb] = nb
	}
	for _, cb := range callee.Blocks {
		nb := bmap[cb]
		for _, in := range cb.Instrs {
			ci := in.CloneInto(arena)
			if ci.HasDst() {
				ci.Dst = remap(ci.Dst)
			}
			for i, a := range ci.Args {
				if a.IsVar() {
					ci.Args[i].Var = remap(a.Var)
				}
			}
			if ci.ExcSite {
				// Callee bodies may already carry implicit-check marks
				// (methods are optimized in program order).
				ci.ExcVar = remap(ci.ExcVar)
			}
			for i, tgt := range ci.Targets {
				ci.Targets[i] = bmap[tgt]
			}
			if ci.Op == ir.OpReturn {
				if call.HasDst() && len(ci.Args) == 1 {
					nb.Instrs = append(nb.Instrs, arena.NewInstr(ir.Instr{
						Op: ir.OpMove, Dst: call.Dst, Args: arena.Operands(ci.Args[0]),
					}))
				}
				nb.Instrs = append(nb.Instrs, arena.NewInstr(ir.Instr{
					Op: ir.OpJump, Dst: ir.NoVar, Targets: []*ir.Block{cont},
				}))
				continue
			}
			nb.Instrs = append(nb.Instrs, ci)
		}
	}

	b.Instrs = append(head, arena.NewInstr(ir.Instr{
		Op: ir.OpJump, Dst: ir.NoVar, Targets: []*ir.Block{bmap[callee.Entry]},
	}))
}
