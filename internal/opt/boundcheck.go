package opt

import (
	"trapnull/internal/bitset"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
)

// bcKey identifies a bounds check by value: the index operand and the
// length-holding variable. Two checks with equal keys and no intervening
// redefinition check the same condition.
type bcKey struct {
	idxIsVar bool
	idxVar   ir.VarID
	idxConst int64
	lenVar   ir.VarID
}

func boundKey(in *ir.Instr) (bcKey, bool) {
	if in.Op != ir.OpBoundCheck || !in.Args[1].IsVar() {
		return bcKey{}, false
	}
	k := bcKey{lenVar: in.Args[1].Var}
	switch in.Args[0].Kind {
	case ir.OperVar:
		k.idxIsVar = true
		k.idxVar = in.Args[0].Var
	case ir.OperConstInt:
		k.idxConst = in.Args[0].Int
	default:
		return bcKey{}, false
	}
	return k, true
}

// BoundCheckElim removes array bounds checks that are available: an
// identical check (same index operand, same length variable) already
// executed on every path with neither operand redefined since. Combined with
// scalar replacement CSE-ing `arraylength` loads into shared length
// variables, this is what collapses the repeated checks of multidimensional
// array walks (the Assignment / Neural Net / LU workloads of §5.1).
// Returns the number of checks removed.
func BoundCheckElim(f *ir.Func) int {
	// Build the universe of keys.
	index := map[bcKey]int{}
	var keys []bcKey
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if k, ok := boundKey(in); ok {
				if _, seen := index[k]; !seen {
					index[k] = len(keys)
					keys = append(keys, k)
				}
			}
		}
	}
	if len(keys) == 0 {
		return 0
	}
	size := len(keys)

	killsOf := func(v ir.VarID, kill *bitset.Set) {
		for i, k := range keys {
			if (k.idxIsVar && k.idxVar == v) || k.lenVar == v {
				kill.Add(i)
			}
		}
	}
	kid := bitset.New(size)
	scan := func(b *ir.Block) (gen, kill *bitset.Set) {
		gen, kill = bitset.NewPair(size)
		for _, in := range b.Instrs {
			if k, ok := boundKey(in); ok {
				gen.Add(index[k])
			}
			if in.HasDst() {
				kid.Clear()
				killsOf(in.Dst, kid)
				gen.Subtract(kid)
				kill.Union(kid)
			}
		}
		return gen, kill
	}

	genB, killB := dataflow.GenKill(scan)
	res := dataflow.Solve(f, &dataflow.Problem{
		Dir:  dataflow.Forward,
		Meet: dataflow.Intersect,
		Size: size,
		Gen:  genB,
		Kill: killB,
	})

	removed := 0
	cur := bitset.New(size)
	for _, b := range f.Blocks {
		cur.CopyFrom(res.In(b))
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if k, ok := boundKey(in); ok {
				ki := index[k]
				if cur.Has(ki) {
					removed++
					continue
				}
				cur.Add(ki)
			}
			if in.HasDst() {
				kid.Clear()
				killsOf(in.Dst, kid)
				cur.Subtract(kid)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}
