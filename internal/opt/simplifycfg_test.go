package opt

import (
	"testing"

	"trapnull/internal/ir"
)

func TestSimplifyCFGThreadsEmptyJumpBlocks(t *testing.T) {
	b := ir.NewFunc("thread", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	mid := b.DeclareBlock("mid") // only a jump
	tgt := b.DeclareBlock("tgt")
	other := b.DeclareBlock("other")
	b.SetBlock(entry)
	b.If(ir.CondLT, ir.Var(n), ir.ConstInt(0), mid, other)
	b.SetBlock(mid)
	b.Jump(tgt)
	b.SetBlock(tgt)
	b.Return(ir.ConstInt(1))
	b.SetBlock(other)
	b.Return(ir.ConstInt(2))
	f := b.Finish()

	SimplifyCFG(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// entry's then-target is tgt directly; mid is gone.
	if got := entry.Terminator().Targets[0]; got.Name != "tgt" {
		t.Fatalf("then-target = %s, want tgt", got)
	}
	for _, blk := range f.Blocks {
		if blk.Name == "mid" {
			t.Fatalf("empty jump block survived:\n%s", f)
		}
	}
}

func TestSimplifyCFGThreadsChains(t *testing.T) {
	b := ir.NewFunc("chain", false)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	m1 := b.DeclareBlock("m1")
	m2 := b.DeclareBlock("m2")
	end := b.DeclareBlock("end")
	b.SetBlock(entry)
	b.Jump(m1)
	b.SetBlock(m1)
	b.Jump(m2)
	b.SetBlock(m2)
	b.Jump(end)
	b.SetBlock(end)
	b.Return(ir.ConstInt(7))
	f := b.Finish()

	SimplifyCFG(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Everything merges into one block.
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1:\n%s", len(f.Blocks), f)
	}
}

func TestSimplifyCFGMergesStraightLine(t *testing.T) {
	b := ir.NewFunc("merge", false)
	x := b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	next := b.DeclareBlock("next")
	b.SetBlock(entry)
	v := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, v, ir.Var(x), ir.ConstInt(1))
	b.Jump(next)
	b.SetBlock(next)
	w := b.Temp(ir.KindInt)
	b.Binop(ir.OpMul, w, ir.Var(v), ir.ConstInt(2))
	b.Return(ir.Var(w))
	f := b.Finish()

	SimplifyCFG(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(f.Blocks))
	}
	if entry.Instrs[len(entry.Instrs)-1].Op != ir.OpReturn {
		t.Fatalf("merged block does not end in return:\n%s", f)
	}
}

func TestSimplifyCFGKeepsHandlers(t *testing.T) {
	b := ir.NewFunc("keephandler", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)
	b.SetBlock(entry)
	v := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpDiv, Dst: v, Args: []ir.Operand{ir.ConstInt(1), ir.ConstInt(0)}})
	_ = a
	b.Return(ir.Var(v))
	b.SetBlock(handler)
	b.Return(ir.ConstInt(-1))
	f := b.F
	region := f.NewRegion(handler, exc)
	entry.Try = region.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	SimplifyCFG(f)
	found := false
	for _, blk := range f.Blocks {
		if blk == f.Regions[0].Handler {
			found = true
		}
	}
	if !found {
		t.Fatalf("handler removed:\n%s", f)
	}
}

func TestSimplifyCFGDoesNotMergeAcrossTryBoundary(t *testing.T) {
	b := ir.NewFunc("tryedge", false)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	inTry := b.DeclareBlock("intry")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)
	b.SetBlock(entry)
	x := b.Temp(ir.KindInt)
	b.Move(x, ir.ConstInt(1))
	b.Jump(inTry)
	b.SetBlock(inTry)
	y := b.Temp(ir.KindInt)
	b.Binop(ir.OpDiv, y, ir.ConstInt(1), ir.Var(x))
	b.Return(ir.Var(y))
	b.SetBlock(handler)
	b.Return(ir.ConstInt(-1))
	f := b.F
	region := f.NewRegion(handler, exc)
	inTry.Try = region.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	SimplifyCFG(f)
	// entry (no region) and inTry (region 0) must stay separate.
	for _, blk := range f.Blocks {
		if blk.Name == "entry" {
			if blk.Terminator().Op != ir.OpJump {
				t.Fatalf("entry merged across try boundary:\n%s", f)
			}
		}
	}
}

func TestSimplifyCFGSelfLoopUntouched(t *testing.T) {
	b := ir.NewFunc("selfloop", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	loop := b.DeclareBlock("loop")
	exit := b.DeclareBlock("exit")
	i := b.Local("i", ir.KindInt)
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Jump(loop)
	b.SetBlock(loop)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), loop, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(i))
	f := b.Finish()

	SimplifyCFG(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// The loop must still loop.
	if f.CountOp(ir.OpIf) != 1 {
		t.Fatalf("loop branch disappeared:\n%s", f)
	}
}
