package opt

import (
	"math"

	"trapnull/internal/ir"
)

// ConstFold evaluates instructions whose operands are all constants and
// rewrites them to moves, and simplifies the algebraic identities that the
// other passes expose (x*0, x+0, x&0, 0/x-safe cases). It never touches
// anything that can fault: constant division stays put unless the divisor is
// a non-zero constant, and memory operations are never folded. Returns the
// number of instructions rewritten.
func ConstFold(f *ir.Func) int {
	folded := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if rewriteConst(in) {
				folded++
			}
		}
	}
	return folded
}

func intConst(o ir.Operand) (int64, bool) {
	if o.Kind == ir.OperConstInt {
		return o.Int, true
	}
	return 0, false
}

func floatConst(o ir.Operand) (float64, bool) {
	if o.Kind == ir.OperConstFloat {
		return o.Float, true
	}
	return 0, false
}

// toMoveInt rewrites in into `dst = move <c>`.
func toMoveInt(in *ir.Instr, c int64) {
	in.Op = ir.OpMove
	in.Args = []ir.Operand{ir.ConstInt(c)}
}

func toMoveFloat(in *ir.Instr, c float64) {
	in.Op = ir.OpMove
	in.Args = []ir.Operand{ir.ConstFloat(c)}
}

// toMoveOperand rewrites in into `dst = move <o>`.
func toMoveOperand(in *ir.Instr, o ir.Operand) {
	in.Op = ir.OpMove
	in.Args = []ir.Operand{o}
}

func rewriteConst(in *ir.Instr) bool {
	if !in.HasDst() {
		return false
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		a, aok := intConst(in.Args[0])
		bb, bok := intConst(in.Args[1])
		switch {
		case aok && bok:
			toMoveInt(in, evalInt(in.Op, a, bb))
			return true
		case in.Op == ir.OpMul && ((aok && a == 0) || (bok && bb == 0)):
			toMoveInt(in, 0)
			return true
		case in.Op == ir.OpMul && aok && a == 1:
			toMoveOperand(in, in.Args[1])
			return true
		case in.Op == ir.OpMul && bok && bb == 1:
			toMoveOperand(in, in.Args[0])
			return true
		case in.Op == ir.OpAdd && aok && a == 0:
			toMoveOperand(in, in.Args[1])
			return true
		case (in.Op == ir.OpAdd || in.Op == ir.OpSub || in.Op == ir.OpOr ||
			in.Op == ir.OpXor || in.Op == ir.OpShl || in.Op == ir.OpShr) && bok && bb == 0:
			toMoveOperand(in, in.Args[0])
			return true
		case in.Op == ir.OpAnd && ((aok && a == 0) || (bok && bb == 0)):
			toMoveInt(in, 0)
			return true
		}
	case ir.OpDiv, ir.OpRem:
		a, aok := intConst(in.Args[0])
		bb, bok := intConst(in.Args[1])
		if aok && bok && bb != 0 {
			if in.Op == ir.OpDiv {
				toMoveInt(in, a/bb)
			} else {
				toMoveInt(in, a%bb)
			}
			return true
		}
	case ir.OpNeg:
		if a, ok := intConst(in.Args[0]); ok {
			toMoveInt(in, -a)
			return true
		}
	case ir.OpNot:
		if a, ok := intConst(in.Args[0]); ok {
			toMoveInt(in, ^a)
			return true
		}
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a, aok := floatConst(in.Args[0])
		bb, bok := floatConst(in.Args[1])
		if aok && bok {
			toMoveFloat(in, evalFloat(in.Op, a, bb))
			return true
		}
	case ir.OpFNeg:
		if a, ok := floatConst(in.Args[0]); ok {
			toMoveFloat(in, -a)
			return true
		}
	case ir.OpIntToFloat:
		if a, ok := intConst(in.Args[0]); ok {
			toMoveFloat(in, float64(a))
			return true
		}
	case ir.OpFloatToInt:
		if a, ok := floatConst(in.Args[0]); ok && !math.IsNaN(a) && !math.IsInf(a, 0) {
			toMoveInt(in, int64(a))
			return true
		}
	case ir.OpCmp:
		a, aok := intConst(in.Args[0])
		bb, bok := intConst(in.Args[1])
		if aok && bok {
			if evalCond(in.Cond, a, bb) {
				toMoveInt(in, 1)
			} else {
				toMoveInt(in, 0)
			}
			return true
		}
	}
	return false
}

func evalInt(op ir.Op, a, b int64) int64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (uint64(b) & 63)
	case ir.OpShr:
		return a >> (uint64(b) & 63)
	}
	return 0
}

func evalFloat(op ir.Op, a, b float64) float64 {
	switch op {
	case ir.OpFAdd:
		return a + b
	case ir.OpFSub:
		return a - b
	case ir.OpFMul:
		return a * b
	case ir.OpFDiv:
		return a / b
	}
	return 0
}

func evalCond(c ir.Cond, a, b int64) bool {
	switch c {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return a < b
	case ir.CondLE:
		return a <= b
	case ir.CondGT:
		return a > b
	case ir.CondGE:
		return a >= b
	}
	return false
}
