package opt

import (
	"trapnull/internal/cfg"
	"trapnull/internal/ir"
)

// rotateMaxHeader bounds the size of a header we are willing to duplicate.
const rotateMaxHeader = 16

// RotateLoops converts top-tested (while-style) loops into the guarded
// bottom-tested form by peeling a copy of the header in front of the loop.
// Null check anticipability — the heart of phase 1 — requires the loop body
// to execute on every path from the insertion point; a top-tested loop
// denies that, so JITs rotate loops before running PRE-style optimizations
// and this pipeline does the same. Returns the number of loops rotated.
//
// The transformation clones the header block G = copy(H) and retargets the
// loop entry edge to G; each dynamic evaluation of the test still executes
// exactly once (at G on entry, at H afterwards), so any header content is
// safe to duplicate.
func RotateLoops(f *ir.Func) int {
	f.RecomputeEdges()
	doms := cfg.ComputeDominators(f)
	loops := cfg.FindLoops(f, doms)
	rotated := 0
	for _, l := range loops {
		if rotateOne(f, l) {
			rotated++
		}
	}
	if rotated > 0 {
		f.RecomputeEdges()
	}
	return rotated
}

func rotateOne(f *ir.Func, l *cfg.Loop) bool {
	h := l.Header
	t := h.Terminator()
	if t == nil || t.Op != ir.OpIf || len(h.Instrs) > rotateMaxHeader {
		return false
	}
	// Only rotate genuine while-headers: a pure test computation. A header
	// containing memory accesses, checks or calls is a do-while body —
	// duplicating it would be loop peeling, a different optimization that
	// would blur the experiment (the paper's compiler does not peel).
	for _, in := range h.Instrs {
		if in.IsTerminator() {
			continue
		}
		if _, isAccess := in.SlotAccessInfo(); isAccess ||
			in.Op == ir.OpNullCheck || in.ReadsMemory() || in.WritesMemory() ||
			in.CanThrowOther() {
			return false
		}
	}
	// The header must be the loop's exit test: one successor in the loop,
	// one outside.
	inLoop, outLoop := 0, 0
	for _, s := range h.Succs {
		if l.Blocks[s] {
			inLoop++
		} else {
			outLoop++
		}
	}
	if inLoop != 1 || outLoop != 1 {
		return false
	}
	// Don't rotate across try-region boundaries; the guard copy would need
	// the header's region and entry edges may come from outside it.
	for _, p := range h.Preds {
		if !l.Blocks[p] && p.Try != h.Try {
			return false
		}
	}

	// Clone the header as the guard block.
	g := f.NewBlock("rot_" + h.Name)
	g.Try = h.Try
	arena := f.Alloc()
	for _, in := range h.Instrs {
		g.Instrs = append(g.Instrs, in.CloneInto(arena))
	}

	// Retarget every out-of-loop entry edge from H to G.
	for _, p := range h.Preds {
		if l.Blocks[p] {
			continue
		}
		pt := p.Terminator()
		for i, tgt := range pt.Targets {
			if tgt == h {
				pt.Targets[i] = g
			}
		}
	}
	if h == f.Entry {
		f.Entry = g
	}
	return true
}
