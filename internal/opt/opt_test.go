package opt

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
)

func testClass() (*ir.Program, *ir.Class) {
	p := ir.NewProgram("t")
	c := p.NewClass("C",
		&ir.Field{Name: "f", Kind: ir.KindInt},
		&ir.Field{Name: "g", Kind: ir.KindInt},
	)
	return p, c
}

func TestCopyPropRewritesUses(t *testing.T) {
	b := ir.NewFunc("cp", false)
	x := b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	y := b.Temp(ir.KindInt)
	z := b.Temp(ir.KindInt)
	b.Move(y, ir.Var(x))
	b.Binop(ir.OpAdd, z, ir.Var(y), ir.ConstInt(1))
	b.Return(ir.Var(z))
	f := b.Finish()

	if n := CopyProp(f); n != 1 {
		t.Fatalf("rewrote %d operands, want 1", n)
	}
	add := f.Entry.Instrs[1]
	if !add.Args[0].IsVar() || add.Args[0].Var != x {
		t.Fatalf("add operand not propagated: %s", add)
	}
}

func TestCopyPropStopsAtRedefinition(t *testing.T) {
	b := ir.NewFunc("cp2", false)
	x := b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	y := b.Temp(ir.KindInt)
	z := b.Temp(ir.KindInt)
	b.Move(y, ir.Var(x))
	b.Binop(ir.OpAdd, x, ir.Var(x), ir.ConstInt(1)) // x redefined
	b.Binop(ir.OpAdd, z, ir.Var(y), ir.ConstInt(1)) // must keep y
	b.Return(ir.Var(z))
	f := b.Finish()

	CopyProp(f)
	add2 := f.Entry.Instrs[2]
	if !add2.Args[0].IsVar() || add2.Args[0].Var != y {
		t.Fatalf("copy propagated past redefinition: %s", add2)
	}
}

func TestCopyPropConstant(t *testing.T) {
	b := ir.NewFunc("cp3", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	y := b.Temp(ir.KindInt)
	z := b.Temp(ir.KindInt)
	b.Move(y, ir.ConstInt(42))
	b.Binop(ir.OpAdd, z, ir.Var(y), ir.ConstInt(1))
	b.Return(ir.Var(z))
	f := b.Finish()

	CopyProp(f)
	add := f.Entry.Instrs[1]
	if add.Args[0].Kind != ir.OperConstInt || add.Args[0].Int != 42 {
		t.Fatalf("constant not propagated: %s", add)
	}
}

func TestCopyPropKeepsDerefBasesAsVars(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("cp4", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	a := b.Temp(ir.KindRef)
	b.Move(a, ir.Null())
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))
	f := b.Finish()

	CopyProp(f)
	for _, in := range f.Entry.Instrs {
		if in.Op == ir.OpNullCheck && !in.Args[0].IsVar() {
			t.Fatalf("null check target became a constant: %s", in)
		}
		if in.Op == ir.OpGetField && !in.Args[0].IsVar() {
			t.Fatalf("getfield base became a constant: %s", in)
		}
	}
}

func TestDCERemovesDeadArith(t *testing.T) {
	b := ir.NewFunc("dce", false)
	x := b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	dead := b.Temp(ir.KindInt)
	b.Binop(ir.OpMul, dead, ir.Var(x), ir.ConstInt(3))
	b.Return(ir.Var(x))
	f := b.Finish()

	if n := DCE(f); n != 1 {
		t.Fatalf("removed %d, want 1:\n%s", n, f)
	}
}

func TestDCEKeepsStoresAndExcSites(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("dce2", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.PutField(a, c.FieldByName("f"), ir.ConstInt(1))
	deadLoad := b.Temp(ir.KindInt)
	g := b.GetField(deadLoad, a, c.FieldByName("g"))
	g.ExcSite = true // pretend phase 2 made this the exception site
	g.ExcVar = a
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	DCE(f)
	if f.CountOp(ir.OpPutField) != 1 {
		t.Fatalf("store removed:\n%s", f)
	}
	if f.CountOp(ir.OpGetField) != 1 {
		t.Fatalf("exception-site load removed:\n%s", f)
	}
}

func TestDCERemovesDeadGuardedLoad(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("dce3", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	deadLoad := b.Temp(ir.KindInt)
	b.GetField(deadLoad, a, c.FieldByName("g"))
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	DCE(f)
	if f.CountOp(ir.OpGetField) != 0 {
		t.Fatalf("dead guarded load kept:\n%s", f)
	}
	// Its null check remains (it is not dead code — it throws).
	if f.CountOp(ir.OpNullCheck) != 1 {
		t.Fatalf("null check dropped by DCE:\n%s", f)
	}
}

func TestDCERemovesUnreachableBlocks(t *testing.T) {
	b := ir.NewFunc("dce4", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.Return(ir.ConstInt(0))
	f := b.Finish()
	dead := f.NewBlock("dead")
	dead.Instrs = []*ir.Instr{{Op: ir.OpReturn, Dst: ir.NoVar, Args: []ir.Operand{ir.ConstInt(1)}}}
	f.RecomputeEdges()

	DCE(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("unreachable block kept: %d blocks", len(f.Blocks))
	}
}

func TestBoundCheckElimSequential(t *testing.T) {
	b := ir.NewFunc("bce", false)
	b.Param("arr", ir.KindRef)
	i := b.Param("i", ir.KindInt)
	ln := b.Param("len", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.Var(i), ir.Var(ln)}})
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.Var(i), ir.Var(ln)}})
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	if n := BoundCheckElim(f); n != 1 {
		t.Fatalf("removed %d, want 1:\n%s", n, f)
	}
}

func TestBoundCheckElimKilledByRedefinition(t *testing.T) {
	b := ir.NewFunc("bce2", false)
	i := b.Param("i", ir.KindInt)
	ln := b.Param("len", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.Var(i), ir.Var(ln)}})
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.Var(i), ir.Var(ln)}})
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	if n := BoundCheckElim(f); n != 0 {
		t.Fatalf("removed %d, want 0 (index changed):\n%s", n, f)
	}
}

func TestBoundCheckElimAcrossMergeNeedsBothPaths(t *testing.T) {
	b := ir.NewFunc("bce3", false)
	i := b.Param("i", ir.KindInt)
	ln := b.Param("len", ir.KindInt)
	cond := b.Param("c", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	l := b.DeclareBlock("l")
	r := b.DeclareBlock("r")
	merge := b.DeclareBlock("m")
	b.SetBlock(entry)
	b.If(ir.CondNE, ir.Var(cond), ir.ConstInt(0), l, r)
	b.SetBlock(l)
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.Var(i), ir.Var(ln)}})
	b.Jump(merge)
	b.SetBlock(r)
	b.Jump(merge)
	b.SetBlock(merge)
	b.Emit(&ir.Instr{Op: ir.OpBoundCheck, Dst: ir.NoVar, Args: []ir.Operand{ir.Var(i), ir.Var(ln)}})
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	if n := BoundCheckElim(f); n != 0 {
		t.Fatalf("removed %d, want 0 (one path unchecked):\n%s", n, f)
	}
}

func TestLocalCSEGetField(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("cse", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	t2 := b.Temp(ir.KindInt)
	t3 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.GetField(t2, a, c.FieldByName("f"))
	b.Binop(ir.OpAdd, t3, ir.Var(t1), ir.Var(t2))
	b.Return(ir.Var(t3))
	f := b.Finish()

	st := ScalarReplace(f, arch.IA32Win())
	if st.CSE != 1 {
		t.Fatalf("CSE = %d, want 1:\n%s", st.CSE, f)
	}
	if f.CountOp(ir.OpGetField) != 1 {
		t.Fatalf("loads = %d, want 1:\n%s", f.CountOp(ir.OpGetField), f)
	}
}

func TestLocalCSEKilledByStore(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("cse2", false)
	a := b.Param("a", ir.KindRef)
	o := b.Param("o", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	t2 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.PutField(o, c.FieldByName("f"), ir.ConstInt(9)) // may alias a.f
	b.GetField(t2, a, c.FieldByName("f"))
	t3 := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, t3, ir.Var(t1), ir.Var(t2))
	b.Return(ir.Var(t3))
	f := b.Finish()

	st := ScalarReplace(f, arch.IA32Win())
	if st.CSE != 0 {
		t.Fatalf("CSE across aliasing store: %d:\n%s", st.CSE, f)
	}
}

// loopWithFieldLoad builds a do-while loop summing a.f, optionally with the
// null check pre-hoisted by phase 1.
func loopWithFieldLoad(hoistChecks bool) (*ir.Func, *ir.Block, *ir.Block) {
	_, c := testClass()
	b := ir.NewFunc("licm", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(t1))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	f := b.Finish()
	if hoistChecks {
		nullcheck.Phase1(f)
	}
	return f, entry, body
}

func TestLICMNeedsHoistedNullCheck(t *testing.T) {
	// Without phase 1, the load's null check sits in the loop; the load must
	// stay (the barrier interplay of Figure 4).
	f, _, body := loopWithFieldLoad(false)
	st := ScalarReplace(f, arch.IA32Win())
	loadInBody := 0
	for _, in := range body.Instrs {
		if in.Op == ir.OpGetField {
			loadInBody++
		}
	}
	if loadInBody != 1 {
		t.Fatalf("load left the loop without its check being hoisted (hoisted=%d):\n%s", st.Hoisted, f)
	}
}

func TestLICMHoistsAfterPhase1(t *testing.T) {
	f, _, body := loopWithFieldLoad(true)
	st := ScalarReplace(f, arch.IA32Win())
	if st.Hoisted == 0 {
		t.Fatalf("nothing hoisted after phase 1:\n%s", f)
	}
	for _, in := range body.Instrs {
		if in.Op == ir.OpGetField {
			t.Fatalf("load still in loop:\n%s", f)
		}
	}
	if err := nullcheck.CheckGuards(f, arch.IA32Win()); err != nil {
		t.Fatalf("guards violated: %v", err)
	}
}

func TestLICMSpeculatesReadsOnAIX(t *testing.T) {
	// Without phase 1 the check stays in the loop, but AIX reads cannot
	// trap, so the load may be speculated out anyway (§3.3.1, Figure 6).
	f, _, body := loopWithFieldLoad(false)
	st := ScalarReplace(f, arch.PPCAIX())
	if st.Speculated == 0 {
		t.Fatalf("no speculation on AIX model:\n%s", f)
	}
	for _, in := range body.Instrs {
		if in.Op == ir.OpGetField {
			t.Fatalf("load still in loop under speculation:\n%s", f)
		}
	}
	if err := nullcheck.CheckGuards(f, arch.PPCAIX()); err != nil {
		t.Fatalf("guards violated: %v", err)
	}
}

func TestPromoteFieldAcrossLoop(t *testing.T) {
	// Figure 6: a.I is read and written every iteration; after promotion the
	// loads become register moves and the stores write through.
	_, c := testClass()
	b := ir.NewFunc("prom", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	t2 := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, t2, ir.Var(t1), ir.ConstInt(1))
	b.PutField(a, c.FieldByName("f"), ir.Var(t2))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	t3 := b.Temp(ir.KindInt)
	b.GetField(t3, a, c.FieldByName("f"))
	b.Return(ir.Var(t3))
	f := b.Finish()

	nullcheck.Phase1(f)
	st := ScalarReplace(f, arch.IA32Win())
	if st.Promoted != 1 {
		t.Fatalf("promoted = %d, want 1:\n%s", st.Promoted, f)
	}
	// Loads inside the loop are gone; the store remains for visibility.
	for _, in := range body.Instrs {
		if in.Op == ir.OpGetField {
			t.Fatalf("load still in loop after promotion:\n%s", f)
		}
	}
	stores := 0
	for _, in := range body.Instrs {
		if in.Op == ir.OpPutField {
			stores++
		}
	}
	if stores != 1 {
		t.Fatalf("stores in loop = %d, want 1:\n%s", stores, f)
	}
}

func TestInlineDevirtualizes(t *testing.T) {
	p, c := testClass()
	// int getF(this) { return this.f }
	cb := ir.NewFunc("getF", true)
	this := cb.Param("this", ir.KindRef)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	v := cb.Temp(ir.KindInt)
	cb.GetField(v, this, c.FieldByName("f"))
	cb.Return(ir.Var(v))
	m := p.AddMethod(c, "getF", cb.Finish(), true)

	b := ir.NewFunc("caller", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	r := b.Temp(ir.KindInt)
	b.CallVirtual(r, m, a)
	b.Return(ir.Var(r))
	f := b.Finish()

	st := Inline(f, arch.IA32Win())
	if st.Devirtualized != 1 {
		t.Fatalf("devirtualized = %d, want 1:\n%s", st.Devirtualized, f)
	}
	if f.CountOp(ir.OpCallVirtual) != 0 {
		t.Fatalf("call survived:\n%s", f)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid after inline: %v", err)
	}
	// The devirtualization guard must exist and be tagged.
	foundGuard := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpNullCheck && in.Reason == ir.ReasonInlined {
				foundGuard = true
			}
		}
	}
	if !foundGuard {
		t.Fatalf("no ReasonInlined guard after devirtualization:\n%s", f)
	}
	if err := nullcheck.CheckGuards(f, arch.IA32Win()); err != nil {
		t.Fatalf("guards violated: %v", err)
	}
}

func TestInlineMultiBlockCallee(t *testing.T) {
	p, c := testClass()
	// Figure 1's callee: int func(this, s1) { if s1 < 0 return s1; return this.f }
	cb := ir.NewFunc("func", true)
	this := cb.Param("this", ir.KindRef)
	s1 := cb.Param("s1", ir.KindInt)
	cb.Result(ir.KindInt)
	entry := cb.Block("entry")
	neg := cb.DeclareBlock("neg")
	pos := cb.DeclareBlock("pos")
	cb.SetBlock(entry)
	cb.If(ir.CondLT, ir.Var(s1), ir.ConstInt(0), neg, pos)
	cb.SetBlock(neg)
	cb.Return(ir.Var(s1))
	cb.SetBlock(pos)
	v := cb.Temp(ir.KindInt)
	cb.GetField(v, this, c.FieldByName("f"))
	cb.Return(ir.Var(v))
	m := p.AddMethod(c, "func", cb.Finish(), true)

	b := ir.NewFunc("caller", false)
	a := b.Param("a", ir.KindRef)
	i := b.Param("i", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	r := b.Temp(ir.KindInt)
	b.CallVirtual(r, m, a, ir.Var(i))
	t2 := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, t2, ir.Var(r), ir.ConstInt(1))
	b.Return(ir.Var(t2))
	f := b.Finish()

	Inline(f, arch.IA32Win())
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid after inline: %v", err)
	}
	if f.CountOp(ir.OpCallVirtual) != 0 {
		t.Fatalf("call survived:\n%s", f)
	}
	if f.CountOp(ir.OpIf) != 1 {
		t.Fatalf("callee branch lost:\n%s", f)
	}
	if err := nullcheck.CheckGuards(f, arch.IA32Win()); err != nil {
		t.Fatalf("guards violated: %v", err)
	}
}

func TestInlineIntrinsicPerModel(t *testing.T) {
	p := ir.NewProgram("t")
	expM := p.AddMethod(nil, "Math.exp", nil, false)
	expM.Intrinsic = ir.MathExp

	build := func() *ir.Func {
		b := ir.NewFunc("caller", false)
		x := b.Param("x", ir.KindFloat)
		b.Result(ir.KindFloat)
		b.Block("entry")
		r := b.Temp(ir.KindFloat)
		b.CallStatic(r, expM, ir.Var(x))
		b.Return(ir.Var(r))
		return b.Finish()
	}

	fIA := build()
	st := Inline(fIA, arch.IA32Win())
	if st.Intrinsified != 1 || fIA.CountOp(ir.OpMath) != 1 {
		t.Fatalf("ia32: intrinsified=%d math=%d:\n%s", st.Intrinsified, fIA.CountOp(ir.OpMath), fIA)
	}

	fPPC := build()
	st = Inline(fPPC, arch.PPCAIX())
	if st.Intrinsified != 0 || fPPC.CountOp(ir.OpCallStatic) != 1 {
		t.Fatalf("ppc: intrinsified=%d calls=%d (Math.exp must stay a call, §5.4):\n%s",
			st.Intrinsified, fPPC.CountOp(ir.OpCallStatic), fPPC)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	p, c := testClass()
	cb := ir.NewFunc("rec", true)
	this := cb.Param("this", ir.KindRef)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	r := cb.Temp(ir.KindInt)
	m := p.AddMethod(c, "rec", nil, true)
	cb.CallVirtual(r, m, this)
	cb.Return(ir.Var(r))
	fn := cb.Finish()
	m.Fn = fn
	fn.Method = m

	before := fn.NumInstrs()
	Inline(fn, arch.IA32Win())
	if fn.NumInstrs() != before {
		t.Fatalf("self-recursive call was inlined:\n%s", fn)
	}
}
