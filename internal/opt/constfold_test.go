package opt

import (
	"testing"

	"trapnull/internal/ir"
)

// foldOne builds `dst = <op>(a, b); return dst`, folds, and returns the
// rewritten instruction.
func foldOne(t *testing.T, op ir.Op, args ...ir.Operand) *ir.Instr {
	t.Helper()
	b := ir.NewFunc("cf", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	dst := b.Temp(ir.KindInt)
	in := b.Emit(&ir.Instr{Op: op, Dst: dst, Args: args})
	b.Return(ir.Var(dst))
	f := b.Finish()
	ConstFold(f)
	return in
}

func wantMoveInt(t *testing.T, in *ir.Instr, c int64) {
	t.Helper()
	if in.Op != ir.OpMove || in.Args[0].Kind != ir.OperConstInt || in.Args[0].Int != c {
		t.Fatalf("got %s, want move %d", in, c)
	}
}

func TestConstFoldArithmetic(t *testing.T) {
	wantMoveInt(t, foldOne(t, ir.OpAdd, ir.ConstInt(3), ir.ConstInt(4)), 7)
	wantMoveInt(t, foldOne(t, ir.OpSub, ir.ConstInt(3), ir.ConstInt(4)), -1)
	wantMoveInt(t, foldOne(t, ir.OpMul, ir.ConstInt(3), ir.ConstInt(4)), 12)
	wantMoveInt(t, foldOne(t, ir.OpAnd, ir.ConstInt(6), ir.ConstInt(3)), 2)
	wantMoveInt(t, foldOne(t, ir.OpOr, ir.ConstInt(6), ir.ConstInt(3)), 7)
	wantMoveInt(t, foldOne(t, ir.OpXor, ir.ConstInt(6), ir.ConstInt(3)), 5)
	wantMoveInt(t, foldOne(t, ir.OpShl, ir.ConstInt(1), ir.ConstInt(4)), 16)
	wantMoveInt(t, foldOne(t, ir.OpShr, ir.ConstInt(16), ir.ConstInt(2)), 4)
	wantMoveInt(t, foldOne(t, ir.OpDiv, ir.ConstInt(17), ir.ConstInt(5)), 3)
	wantMoveInt(t, foldOne(t, ir.OpRem, ir.ConstInt(17), ir.ConstInt(5)), 2)
	wantMoveInt(t, foldOne(t, ir.OpNeg, ir.ConstInt(9)), -9)
	wantMoveInt(t, foldOne(t, ir.OpNot, ir.ConstInt(0)), -1)
}

func TestConstFoldShiftMaskMatchesMachine(t *testing.T) {
	// 1 << 65 must fold to the same value the machine computes (mask 63).
	wantMoveInt(t, foldOne(t, ir.OpShl, ir.ConstInt(1), ir.ConstInt(65)), 2)
}

func TestConstFoldDivByZeroKept(t *testing.T) {
	in := foldOne(t, ir.OpDiv, ir.ConstInt(1), ir.ConstInt(0))
	if in.Op != ir.OpDiv {
		t.Fatalf("constant division by zero folded away: %s", in)
	}
}

func TestConstFoldIdentities(t *testing.T) {
	b := ir.NewFunc("ids", false)
	x := b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	d1 := b.Temp(ir.KindInt)
	mulZero := b.Emit(&ir.Instr{Op: ir.OpMul, Dst: d1, Args: []ir.Operand{ir.Var(x), ir.ConstInt(0)}})
	d2 := b.Temp(ir.KindInt)
	mulOne := b.Emit(&ir.Instr{Op: ir.OpMul, Dst: d2, Args: []ir.Operand{ir.Var(x), ir.ConstInt(1)}})
	d3 := b.Temp(ir.KindInt)
	addZero := b.Emit(&ir.Instr{Op: ir.OpAdd, Dst: d3, Args: []ir.Operand{ir.ConstInt(0), ir.Var(x)}})
	d4 := b.Temp(ir.KindInt)
	andZero := b.Emit(&ir.Instr{Op: ir.OpAnd, Dst: d4, Args: []ir.Operand{ir.Var(x), ir.ConstInt(0)}})
	b.Return(ir.Var(d4))
	f := b.Finish()
	n := ConstFold(f)
	if n != 4 {
		t.Fatalf("folded %d, want 4", n)
	}
	wantMoveInt(t, mulZero, 0)
	if mulOne.Op != ir.OpMove || !mulOne.Args[0].IsVar() || mulOne.Args[0].Var != x {
		t.Fatalf("x*1: got %s, want move x", mulOne)
	}
	if addZero.Op != ir.OpMove || !addZero.Args[0].IsVar() || addZero.Args[0].Var != x {
		t.Fatalf("0+x: got %s, want move x", addZero)
	}
	wantMoveInt(t, andZero, 0)
}

func TestConstFoldFloat(t *testing.T) {
	b := ir.NewFunc("ff", false)
	b.Result(ir.KindFloat)
	b.Block("entry")
	d := b.Temp(ir.KindFloat)
	in := b.Emit(&ir.Instr{Op: ir.OpFMul, Dst: d, Args: []ir.Operand{ir.ConstFloat(2.5), ir.ConstFloat(4)}})
	b.Return(ir.Var(d))
	f := b.Finish()
	ConstFold(f)
	if in.Op != ir.OpMove || in.Args[0].Kind != ir.OperConstFloat || in.Args[0].Float != 10 {
		t.Fatalf("got %s, want move 10.0", in)
	}
}

func TestConstFoldConversionsAndCmp(t *testing.T) {
	wantMoveInt(t, foldOne(t, ir.OpFloatToInt, ir.ConstFloat(3.9)), 3)

	b := ir.NewFunc("cc", false)
	b.Result(ir.KindInt)
	b.Block("entry")
	d := b.Temp(ir.KindInt)
	cmp := b.Emit(&ir.Instr{Op: ir.OpCmp, Dst: d, Cond: ir.CondLT, Args: []ir.Operand{ir.ConstInt(2), ir.ConstInt(5)}})
	b.Return(ir.Var(d))
	f := b.Finish()
	ConstFold(f)
	wantMoveInt(t, cmp, 1)
}

func TestConstFoldLeavesVarsAlone(t *testing.T) {
	b := ir.NewFunc("vars", false)
	x := b.Param("x", ir.KindInt)
	y := b.Param("y", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	d := b.Temp(ir.KindInt)
	in := b.Emit(&ir.Instr{Op: ir.OpAdd, Dst: d, Args: []ir.Operand{ir.Var(x), ir.Var(y)}})
	b.Return(ir.Var(d))
	f := b.Finish()
	if n := ConstFold(f); n != 0 {
		t.Fatalf("folded %d variable-operand instructions", n)
	}
	if in.Op != ir.OpAdd {
		t.Fatalf("instruction rewritten: %s", in)
	}
}

func TestConstFoldAllFloatOpsAndConds(t *testing.T) {
	// Exercise every float op and every comparison through folding.
	fold := func(op ir.Op, a, b float64) float64 {
		bld := ir.NewFunc("ff2", false)
		bld.Result(ir.KindFloat)
		bld.Block("entry")
		d := bld.Temp(ir.KindFloat)
		in := bld.Emit(&ir.Instr{Op: op, Dst: d, Args: []ir.Operand{ir.ConstFloat(a), ir.ConstFloat(b)}})
		bld.Return(ir.Var(d))
		f := bld.Finish()
		ConstFold(f)
		if in.Op != ir.OpMove {
			t.Fatalf("%s not folded", op)
		}
		return in.Args[0].Float
	}
	if fold(ir.OpFAdd, 1, 2) != 3 || fold(ir.OpFSub, 5, 2) != 3 ||
		fold(ir.OpFMul, 2, 3) != 6 || fold(ir.OpFDiv, 9, 3) != 3 {
		t.Fatal("float fold values wrong")
	}

	foldCmp := func(c ir.Cond, a, b int64) int64 {
		bld := ir.NewFunc("cc2", false)
		bld.Result(ir.KindInt)
		bld.Block("entry")
		d := bld.Temp(ir.KindInt)
		in := bld.Emit(&ir.Instr{Op: ir.OpCmp, Dst: d, Cond: c, Args: []ir.Operand{ir.ConstInt(a), ir.ConstInt(b)}})
		bld.Return(ir.Var(d))
		f := bld.Finish()
		ConstFold(f)
		return in.Args[0].Int
	}
	type tc struct {
		c    ir.Cond
		a, b int64
		want int64
	}
	for _, x := range []tc{
		{ir.CondEQ, 1, 1, 1}, {ir.CondNE, 1, 1, 0}, {ir.CondLT, 1, 2, 1},
		{ir.CondLE, 2, 2, 1}, {ir.CondGT, 1, 2, 0}, {ir.CondGE, 3, 2, 1},
	} {
		if got := foldCmp(x.c, x.a, x.b); got != x.want {
			t.Fatalf("cmp %v %d,%d = %d want %d", x.c, x.a, x.b, got, x.want)
		}
	}
}

func TestConstFoldFNegAndI2F(t *testing.T) {
	bld := ir.NewFunc("fneg", false)
	bld.Result(ir.KindFloat)
	bld.Block("entry")
	d := bld.Temp(ir.KindFloat)
	in := bld.Emit(&ir.Instr{Op: ir.OpFNeg, Dst: d, Args: []ir.Operand{ir.ConstFloat(2.5)}})
	d2 := bld.Temp(ir.KindFloat)
	in2 := bld.Emit(&ir.Instr{Op: ir.OpIntToFloat, Dst: d2, Args: []ir.Operand{ir.ConstInt(4)}})
	bld.Return(ir.Var(d2))
	f := bld.Finish()
	ConstFold(f)
	if in.Op != ir.OpMove || in.Args[0].Float != -2.5 {
		t.Fatalf("fneg fold: %s", in)
	}
	if in2.Op != ir.OpMove || in2.Args[0].Float != 4 {
		t.Fatalf("i2f fold: %s", in2)
	}
}
