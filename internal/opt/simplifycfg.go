package opt

import "trapnull/internal/ir"

// SimplifyCFG removes the control-flow scaffolding earlier passes leave
// behind: branches are threaded past blocks that contain only a jump, and
// straight-line block chains are merged. Without this, the critical-edge
// splits that phase 1 and phase 2 introduce would cost a dynamic jump per
// loop iteration and mask the very savings being measured. Returns the
// number of edits.
func SimplifyCFG(f *ir.Func) int {
	edits := 0
	handlers := make(map[*ir.Block]bool, len(f.Regions))
	for _, r := range f.Regions {
		handlers[r.Handler] = true
	}

	// finalTarget follows chains of jump-only blocks.
	finalTarget := func(b *ir.Block) *ir.Block {
		seen := map[*ir.Block]bool{}
		for len(b.Instrs) == 1 && b.Instrs[0].Op == ir.OpJump && !seen[b] {
			seen[b] = true
			next := b.Instrs[0].Targets[0]
			if next == b {
				break
			}
			b = next
		}
		return b
	}

	// Thread branches past empty jump blocks.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for i, tgt := range t.Targets {
			if ft := finalTarget(tgt); ft != tgt {
				t.Targets[i] = ft
				edits++
			}
		}
	}
	// Region handlers may themselves be empty jump blocks after
	// optimization; retarget the region too.
	for _, r := range f.Regions {
		if ft := finalTarget(r.Handler); ft != r.Handler {
			r.Handler = ft
			edits++
		}
	}
	f.RecomputeEdges()

	// Drop blocks the threading just bypassed before merging: a stale
	// unreachable predecessor would otherwise block a legal merge.
	edits += removeUnreachable(f)

	// Merge straight-line chains: B ends in Jump(S), S has only B as
	// predecessor, same try region, S is not a handler.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpJump {
				continue
			}
			s := t.Targets[0]
			if s == b || len(s.Preds) != 1 || s.Preds[0] != b || s.Try != b.Try || handlers[s] {
				continue
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			// Delete s from the function.
			for i, blk := range f.Blocks {
				if blk == s {
					f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
					break
				}
			}
			f.RecomputeEdges()
			edits++
			changed = true
			break
		}
	}

	// Drop unreachable blocks (threaded-past jump blocks).
	edits += removeUnreachable(f)
	return edits
}
