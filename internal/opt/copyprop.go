// Package opt implements the optimizations the paper iterates with its null
// check elimination (Figure 2): copy propagation and dead code elimination
// as enablers, array bounds check elimination, scalar replacement with
// loop-invariant code motion (including the AIX read-speculation variant of
// §3.3.1), and devirtualization with method inlining (the source of the
// explicit checks phase 2 optimizes, Figure 1).
package opt

import "trapnull/internal/ir"

// CopyProp performs block-local copy and constant propagation: after
// `x = move y`, uses of x read y (or the constant) until either side is
// redefined. Returns the number of operands rewritten.
func CopyProp(f *ir.Func) int {
	rewritten := 0
	for _, b := range f.Blocks {
		// copyOf[v] is the operand v currently mirrors.
		copyOf := make(map[ir.VarID]ir.Operand)
		invalidate := func(v ir.VarID) {
			delete(copyOf, v)
			for dst, src := range copyOf {
				if src.IsVar() && src.Var == v {
					delete(copyOf, dst)
				}
			}
		}
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if !a.IsVar() {
					continue
				}
				rep, ok := copyOf[a.Var]
				if !ok {
					continue
				}
				// Dereference bases and null check targets must remain
				// variables: the analyses and the machine key on them.
				if !rep.IsVar() && baseOperand(in, i) {
					continue
				}
				// An implicit-check mark tracks its base variable; keep the
				// pair consistent across the rewrite.
				if in.ExcSite && baseOperand(in, i) && in.ExcVar == a.Var {
					in.ExcVar = rep.Var
				}
				in.Args[i] = rep
				rewritten++
			}
			if v := in.Dst; in.HasDst() {
				invalidate(v)
				if in.Op == ir.OpMove {
					src := in.Args[0]
					// Reference copies are never propagated: every null
					// check analysis (and the guard checker) keys facts on
					// variable identity, and a block-local rewrite would
					// split a null test from the dereferences it guards.
					if f.Locals[v].Kind != ir.KindRef &&
						src.Kind != ir.OperConstNull && (!src.IsVar() || src.Var != v) {
						copyOf[v] = src
					}
				}
			}
		}
	}
	return rewritten
}

// baseOperand reports whether argument i of in must remain a variable: the
// target of a null check, the base of a dereference, or a virtual receiver.
func baseOperand(in *ir.Instr, i int) bool {
	switch in.Op {
	case ir.OpNullCheck, ir.OpGetField, ir.OpPutField, ir.OpArrayLength,
		ir.OpArrayLoad, ir.OpArrayStore, ir.OpCallVirtual:
		return i == 0
	}
	return false
}
