package opt

import (
	"trapnull/internal/bitset"
	"trapnull/internal/cfg"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
)

// DCE removes unreachable blocks and pure instructions whose results are
// dead. An instruction is removable only when it has a destination, the
// destination is dead after it, and executing it has no observable effect:
// no memory write, no possible exception, no implicit-check exception-site
// mark (removing a marked dereference would silently delete a null check).
// Returns the number of instructions removed.
func DCE(f *ir.Func) int {
	removed := removeUnreachable(f)
	live := liveness(f)
	for _, b := range f.Blocks {
		if b.Try != ir.NoTry {
			// A handler may observe any local at any faulting point.
			continue
		}
		cur := live.Out(b).Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if removableWhenDead(in) && !cur.Has(int(in.Dst)) {
				b.RemoveInstr(i)
				removed++
				continue
			}
			// Backward liveness transfer.
			if in.HasDst() {
				cur.Remove(int(in.Dst))
			}
			for _, a := range in.Args {
				if a.IsVar() {
					cur.Add(int(a.Var))
				}
			}
		}
	}
	return removed
}

// removableWhenDead reports whether the instruction may vanish if its result
// is unused.
func removableWhenDead(in *ir.Instr) bool {
	if !in.HasDst() || in.ExcSite || in.Speculated {
		return false
	}
	switch in.Op {
	case ir.OpMove, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpNot,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg,
		ir.OpIntToFloat, ir.OpFloatToInt, ir.OpCmp, ir.OpMath, ir.OpInstanceOf:
		return true
	case ir.OpGetField, ir.OpArrayLength, ir.OpArrayLoad:
		// A guarded read has no observable effect; its null check (explicit
		// or exception-site mark) stays behind independently.
		return true
	}
	return false
}

// removeUnreachable drops blocks with no path from entry.
func removeUnreachable(f *ir.Func) int {
	reach := cfg.Reachable(f)
	// Handler blocks are reachable through exceptions even without CFG
	// edges; keep each region handler and everything it reaches.
	for _, r := range f.Regions {
		markFrom(r.Handler, reach)
	}
	kept := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed += len(b.Instrs)
			if t := f.Track; t != nil {
				// Null checks disappearing with an unreachable block are a
				// legitimate terminal fate; report them so the ledger's
				// conservation invariant holds through DCE and SimplifyCFG.
				for _, in := range b.Instrs {
					if in.Op == ir.OpNullCheck {
						t.Dead(in, b)
					}
				}
			}
		}
	}
	f.Blocks = kept
	f.RecomputeEdges()
	return removed
}

func markFrom(b *ir.Block, reach map[*ir.Block]bool) {
	if reach[b] {
		return
	}
	reach[b] = true
	for _, s := range b.Succs {
		markFrom(s, reach)
	}
}

// liveness solves backward may-liveness of locals.
func liveness(f *ir.Func) *dataflow.Result {
	size := f.NumLocals()
	scan := func(b *ir.Block) (use, def *bitset.Set) {
		use, def = bitset.NewPair(size)
		if b.Try != ir.NoTry {
			// A handler can observe any local after any faulting point, and
			// handlers are not connected by CFG edges; treat everything as
			// used inside try regions so liveness flows out to their
			// predecessors.
			use.Fill()
			return use, def
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a.IsVar() && !def.Has(int(a.Var)) {
					use.Add(int(a.Var))
				}
			}
			if in.HasDst() && !use.Has(int(in.Dst)) {
				def.Add(int(in.Dst))
			}
		}
		return use, def
	}
	use, def := dataflow.GenKill(scan)
	return dataflow.Solve(f, &dataflow.Problem{
		Dir:  dataflow.Backward,
		Meet: dataflow.Union,
		Size: size,
		Gen:  use,
		Kill: def,
	})
}
