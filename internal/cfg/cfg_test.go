package cfg

import (
	"testing"

	"trapnull/internal/ir"
)

// loopFunc builds: entry -> header; header -> body | exit; body -> header.
func loopFunc() (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Block) {
	b := ir.NewFunc("loop", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)

	entry := b.Block("entry")
	header := b.DeclareBlock("header")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Jump(header)

	b.SetBlock(header)
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(body)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.Jump(header)

	b.SetBlock(exit)
	b.Return(ir.Var(i))
	return b.Finish(), entry, header, body, exit
}

func TestReversePostorder(t *testing.T) {
	f, entry, header, _, _ := loopFunc()
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks, want 4", len(rpo))
	}
	if rpo[0] != entry {
		t.Fatalf("rpo[0] = %s, want entry", rpo[0])
	}
	if rpo[1] != header {
		t.Fatalf("rpo[1] = %s, want header", rpo[1])
	}
}

func TestReversePostorderSkipsUnreachable(t *testing.T) {
	f, _, _, _, _ := loopFunc()
	dead := f.NewBlock("dead")
	dead.Instrs = []*ir.Instr{{Op: ir.OpReturn, Dst: ir.NoVar, Args: []ir.Operand{ir.ConstInt(0)}}}
	f.RecomputeEdges()
	if got := len(ReversePostorder(f)); got != 4 {
		t.Fatalf("rpo has %d blocks, want 4 (dead excluded)", got)
	}
	if Reachable(f)[dead] {
		t.Fatal("dead block reported reachable")
	}
}

func TestDominators(t *testing.T) {
	f, entry, header, body, exit := loopFunc()
	dom := ComputeDominators(f)
	if dom.Idom(header) != entry {
		t.Fatalf("idom(header) = %s, want entry", dom.Idom(header))
	}
	if dom.Idom(body) != header {
		t.Fatalf("idom(body) = %s, want header", dom.Idom(body))
	}
	if dom.Idom(exit) != header {
		t.Fatalf("idom(exit) = %s, want header", dom.Idom(exit))
	}
	if !dom.Dominates(entry, exit) {
		t.Fatal("entry must dominate exit")
	}
	if !dom.Dominates(header, header) {
		t.Fatal("dominance must be reflexive")
	}
	if dom.Dominates(body, exit) {
		t.Fatal("body must not dominate exit")
	}
}

func TestFindLoops(t *testing.T) {
	f, _, header, body, exit := loopFunc()
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != header {
		t.Fatalf("loop header = %s, want header", l.Header)
	}
	if !l.Contains(body) || !l.Contains(header) {
		t.Fatal("loop must contain header and body")
	}
	if l.Contains(exit) {
		t.Fatal("loop must not contain exit")
	}
	if l.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", l.Depth())
	}
}

func TestEnsurePreheadersReusesExisting(t *testing.T) {
	f, entry, _, _, _ := loopFunc()
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	created := EnsurePreheaders(f, loops)
	if created != 0 {
		t.Fatalf("created %d preheaders, want 0 (entry qualifies)", created)
	}
	if loops[0].Preheader != entry {
		t.Fatalf("preheader = %s, want entry", loops[0].Preheader)
	}
}

// nestedLoops builds a doubly nested counted loop.
func nestedLoops() *ir.Func {
	b := ir.NewFunc("nested", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	j := b.Local("j", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	entry := b.Block("entry")
	oh := b.DeclareBlock("outerHead")
	ih := b.DeclareBlock("innerHead")
	ib := b.DeclareBlock("innerBody")
	oinc := b.DeclareBlock("outerInc")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(oh)

	b.SetBlock(oh)
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), ih, exit)

	b.SetBlock(ih)
	b.Move(j, ir.ConstInt(0))
	b.Jump(ib)

	b.SetBlock(ib)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(j))
	b.Binop(ir.OpAdd, j, ir.Var(j), ir.ConstInt(1))
	innerTest := b.DeclareBlock("innerTest")
	b.Jump(innerTest)
	b.SetBlock(innerTest)
	b.If(ir.CondLT, ir.Var(j), ir.Var(n), ib, oinc)

	b.SetBlock(oinc)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.Jump(oh)

	b.SetBlock(exit)
	b.Return(ir.Var(s))
	return b.Finish()
}

func TestNestedLoopsDetected(t *testing.T) {
	f := nestedLoops()
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	inner, outer := loops[0], loops[1]
	if len(inner.Blocks) >= len(outer.Blocks) {
		t.Fatal("loops not sorted innermost-first")
	}
	if inner.Parent != outer {
		t.Fatalf("inner.Parent = %v, want outer", inner.Parent)
	}
	if inner.Depth() != 2 {
		t.Fatalf("inner depth = %d, want 2", inner.Depth())
	}
	for blk := range inner.Blocks {
		if !outer.Blocks[blk] {
			t.Fatalf("inner block %s not inside outer loop", blk)
		}
	}
}

func TestEnsurePreheadersReusedForNested(t *testing.T) {
	f := nestedLoops()
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	EnsurePreheaders(f, loops)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid after preheaders: %v", err)
	}
	for _, l := range loops {
		if l.Preheader == nil {
			t.Fatalf("loop %s missing preheader", l.Header)
		}
	}
}

// twoEntryLoop builds a loop whose header has two distinct outside
// predecessors, forcing preheader creation.
func twoEntryLoop() *ir.Func {
	b := ir.NewFunc("twoentry", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)

	entry := b.Block("entry")
	a := b.DeclareBlock("a")
	c := b.DeclareBlock("c")
	header := b.DeclareBlock("header")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.If(ir.CondLT, ir.Var(n), ir.ConstInt(10), a, c)
	b.SetBlock(a)
	b.Move(i, ir.ConstInt(0))
	b.Jump(header)
	b.SetBlock(c)
	b.Move(i, ir.ConstInt(5))
	b.Jump(header)
	b.SetBlock(header)
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(body)
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.Jump(header)
	b.SetBlock(exit)
	b.Return(ir.Var(i))
	return b.Finish()
}

func TestEnsurePreheadersCreates(t *testing.T) {
	f := twoEntryLoop()
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	created := EnsurePreheaders(f, loops)
	if created != 1 {
		t.Fatalf("created %d preheaders, want 1", created)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid after preheaders: %v", err)
	}
	for _, l := range loops {
		if l.Preheader == nil {
			t.Fatalf("loop %s missing preheader", l.Header)
		}
		// Preheader must have the header as its only successor.
		if len(l.Preheader.Succs) != 1 || l.Preheader.Succs[0] != l.Header {
			t.Fatalf("preheader %s has wrong successors", l.Preheader)
		}
		// Header's only out-of-loop pred must be the preheader.
		for _, p := range l.Header.Preds {
			if !l.Blocks[p] && p != l.Preheader {
				t.Fatalf("header %s still has outside pred %s", l.Header, p)
			}
		}
	}
}
