// Package cfg provides control-flow-graph analyses over ir.Func: reverse
// postorder, dominators, and natural-loop detection with pre-header
// creation. The loop machinery backs loop-invariant code motion, which is
// the optimization the paper's phase 1 exists to unlock.
package cfg

import (
	"trapnull/internal/ir"
)

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder. Forward data-flow problems converge fastest in this order and
// backward problems in its reverse.
func ReversePostorder(f *ir.Func) []*ir.Block {
	return rpo(f, false)
}

// ReversePostorderWithHandlers additionally roots the traversal at every
// try-region handler. Handlers have no ordinary CFG predecessors (exception
// dispatch is not an edge), but their code runs; any analysis that feeds a
// transformation — liveness for DCE, the guard checker — must cover them.
func ReversePostorderWithHandlers(f *ir.Func) []*ir.Block {
	return rpo(f, true)
}

func rpo(f *ir.Func, withHandlers bool) []*ir.Block {
	// Dense visited marks and a pre-sized postorder buffer: this runs once
	// per Solve, and compile time is itself measured (Tables 3–5).
	seen := make([]bool, f.MaxBlockID()+1)
	post := make([]*ir.Block, 0, len(f.Blocks))
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	if withHandlers {
		for _, r := range f.Regions {
			if !seen[r.Handler.ID] {
				dfs(r.Handler)
			}
		}
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Numbering is a reverse-postorder numbering of the reachable blocks: Order
// is the RPO sequence and Pos maps Block.ID (densely) to the block's position
// in it, or -1 for unreachable blocks. Worklist data-flow solvers use the
// positions as processing priorities: forward problems on reducible CFGs
// converge in near one pass when blocks are drained in ascending RPO.
type Numbering struct {
	Order []*ir.Block
	Pos   []int32 // indexed by Block.ID; -1 = unreachable
}

// Reaches reports whether b was reached by the numbering traversal.
func (n *Numbering) Reaches(b *ir.Block) bool {
	return b.ID < len(n.Pos) && n.Pos[b.ID] >= 0
}

// NumberReversePostorder numbers the blocks reachable from entry, rooting the
// traversal additionally at every try-region handler when withHandlers is
// set (the variant every analysis feeding a transformation wants).
func NumberReversePostorder(f *ir.Func, withHandlers bool) *Numbering {
	order := rpo(f, withHandlers)
	pos := make([]int32, f.MaxBlockID()+1)
	for i := range pos {
		pos[i] = -1
	}
	for i, b := range order {
		pos[b.ID] = int32(i)
	}
	return &Numbering{Order: order, Pos: pos}
}

// Reachable returns the set of blocks reachable from entry.
func Reachable(f *ir.Func) map[*ir.Block]bool {
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	work := []*ir.Block{f.Entry}
	seen[f.Entry] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// Dominators computes the immediate dominator of every reachable block using
// the Cooper–Harvey–Kennedy iterative algorithm. The entry block's idom is
// itself.
type Dominators struct {
	idom  []*ir.Block // indexed by Block.ID; nil = unreachable
	order []int       // RPO index by Block.ID
}

// ComputeDominators builds the dominator tree for f.
func ComputeDominators(f *ir.Func) *Dominators {
	rpo := ReversePostorder(f)
	n := f.MaxBlockID() + 1
	order := make([]int, n)
	for i, b := range rpo {
		order[b.ID] = i
	}
	idom := make([]*ir.Block, n)
	idom[f.Entry.ID] = f.Entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for order[a.ID] > order[b.ID] {
				a = idom[a.ID]
			}
			for order[b.ID] > order[a.ID] {
				b = idom[b.ID]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p.ID] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return &Dominators{idom: idom, order: order}
}

// Idom returns the immediate dominator of b (entry dominates itself), or nil
// for blocks the tree does not cover (unreachable, or created afterwards).
func (d *Dominators) Idom(b *ir.Block) *ir.Block {
	if b.ID >= len(d.idom) {
		return nil
	}
	return d.idom[b.ID]
}

// Dominates reports whether a dominates b (reflexive).
func (d *Dominators) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := d.Idom(b)
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop: a back edge tail->Header plus the body blocks.
type Loop struct {
	Header *ir.Block
	// Blocks includes the header.
	Blocks map[*ir.Block]bool
	// Preheader is the unique out-of-loop predecessor of the header,
	// created by EnsurePreheaders when absent.
	Preheader *ir.Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
}

// Contains reports whether b is in the loop body.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// Depth returns the nesting depth (outermost = 1).
func (l *Loop) Depth() int {
	d := 0
	for ; l != nil; l = l.Parent {
		d++
	}
	return d
}

// FindLoops detects natural loops from back edges (tail dominated by head).
// Loops sharing a header are merged. Results are sorted innermost-first
// (by body size ascending), the order LICM wants.
func FindLoops(f *ir.Func, dom *Dominators) []*Loop {
	f.RecomputeEdges()
	byHeader := make(map[*ir.Block]*Loop)
	var loops []*Loop
	for _, b := range ReversePostorder(f) {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b) {
				continue
			}
			// Back edge b -> s.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
				loops = append(loops, l)
			}
			// Walk predecessors from the tail up to the header.
			work := []*ir.Block{b}
			for len(work) > 0 {
				n := work[len(work)-1]
				work = work[:len(work)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range n.Preds {
					work = append(work, p)
				}
			}
		}
	}
	// Sort innermost-first.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if len(loops[j].Blocks) < len(loops[i].Blocks) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	// Link parents: the smallest other loop strictly containing the header.
	for i, l := range loops {
		for j := i + 1; j < len(loops); j++ {
			if loops[j] != l && loops[j].Blocks[l.Header] && len(loops[j].Blocks) > len(l.Blocks) {
				l.Parent = loops[j]
				break
			}
		}
	}
	return loops
}

// EnsurePreheaders guarantees every loop has a dedicated preheader block:
// a single edge into the header from outside the loop. Existing qualifying
// predecessors are reused. Returns the number of blocks created.
func EnsurePreheaders(f *ir.Func, loops []*Loop) int {
	created := 0
	for _, l := range loops {
		var outside []*ir.Block
		for _, p := range l.Header.Preds {
			if !l.Blocks[p] {
				outside = append(outside, p)
			}
		}
		if len(outside) == 1 && len(outside[0].Succs) == 1 {
			l.Preheader = outside[0]
			continue
		}
		pre := f.NewBlock("pre_" + l.Header.Name)
		pre.Try = l.Header.Try
		pre.Instrs = []*ir.Instr{f.Alloc().NewInstr(ir.Instr{Op: ir.OpJump, Dst: ir.NoVar, Targets: []*ir.Block{l.Header}})}
		for _, p := range outside {
			t := p.Terminator()
			for i, tgt := range t.Targets {
				if tgt == l.Header {
					t.Targets[i] = pre
				}
			}
		}
		l.Preheader = pre
		created++
		f.RecomputeEdges()
	}
	return created
}
