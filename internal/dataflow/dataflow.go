// Package dataflow implements a generic iterative bit-vector data-flow
// solver. All four analyses of the paper (§4.1.1 backward insertion, §4.1.2
// forward non-null, §4.2.1 forward motion, §4.2.2 backward substitutable)
// instantiate it with their own Gen/Kill/Edge functions over variable-indexed
// sets.
//
// The solver is a priority worklist: blocks are drained in reverse-postorder
// position (postorder position for backward problems), and a block is
// re-enqueued only when the output of a neighbor it depends on actually
// changes. On reducible CFGs forward problems converge in near one pass, and
// the per-block state lives in dense slices indexed by Block.ID with all
// meets performed in place — the solver allocates nothing per iteration.
// Compile time is itself a measured quantity here (Tables 3–5).
package dataflow

import (
	"trapnull/internal/bitset"
	"trapnull/internal/cfg"
	"trapnull/internal/ir"
)

// Direction selects forward or backward propagation.
type Direction uint8

const (
	Forward Direction = iota
	Backward
)

// Meet selects the confluence operator.
type Meet uint8

const (
	// Intersect is the must/all-paths meet (anticipability, availability).
	Intersect Meet = iota
	// Union is the may/some-path meet.
	Union
)

// Problem describes one bit-vector data-flow problem. Gen and Kill summarize
// a whole block; EdgeSubtract removes elements crossing a specific edge (the
// paper's Edge_try) and EdgeAdd injects elements on an edge (the paper's
// Edge sets: ifnonnull outcomes, the `this` parameter). Either edge function
// may be nil. The solver does not retain the sets returned by the edge
// functions, so callers may reuse a scratch set across calls.
type Problem struct {
	Dir      Direction
	Meet     Meet
	Size     int
	Boundary *bitset.Set // value at the CFG boundary (entry or all exits)
	Gen      func(b *ir.Block) *bitset.Set
	Kill     func(b *ir.Block) *bitset.Set

	EdgeSubtract func(from, to *ir.Block) *bitset.Set
	EdgeAdd      func(from, to *ir.Block) *bitset.Set
}

// Result holds the fixpoint In/Out sets, indexed densely by Block.ID.
type Result struct {
	in  []*bitset.Set
	out []*bitset.Set
}

// In returns the fixpoint value at the entry of b.
func (r *Result) In(b *ir.Block) *bitset.Set { return r.in[b.ID] }

// Out returns the fixpoint value at the exit of b.
func (r *Result) Out(b *ir.Block) *bitset.Set { return r.out[b.ID] }

// GenKill adapts a combined per-block scan into the separate Gen/Kill
// accessors of Problem, computing each block's summary exactly once. Every
// analysis in this repository derives gen and kill from one walk over the
// block, so this halves summary construction cost. The cache is a dense
// slice by Block.ID scoped to the returned closures — one Solve — so
// repeated compilations neither rescan blocks nor retain summaries of
// functions long gone.
func GenKill(scan func(b *ir.Block) (gen, kill *bitset.Set)) (genFn, killFn func(*ir.Block) *bitset.Set) {
	var gens, kills []*bitset.Set
	get := func(b *ir.Block) (*bitset.Set, *bitset.Set) {
		id := b.ID
		if id >= len(gens) {
			// Grow geometrically: the solver asks for summaries in block-ID
			// order often enough that one-element growth would reallocate
			// per block.
			newCap := 2 * len(gens)
			if newCap <= id {
				newCap = id + 1
			}
			grown := make([]*bitset.Set, newCap)
			copy(grown, gens)
			gens = grown
			grown = make([]*bitset.Set, newCap)
			copy(grown, kills)
			kills = grown
		}
		if gens[id] == nil {
			gens[id], kills[id] = scan(b)
		}
		return gens[id], kills[id]
	}
	return func(b *ir.Block) *bitset.Set { g, _ := get(b); return g },
		func(b *ir.Block) *bitset.Set { _, k := get(b); return k }
}

// Solve runs the worklist algorithm to a fixpoint over the reachable blocks
// of f. Unreachable blocks receive empty sets. The returned sets are owned by
// the caller.
func Solve(f *ir.Func, p *Problem) *Result {
	// Handlers run even though no CFG edge reaches them; they participate
	// in every analysis with a conservative (empty) entry value.
	num := cfg.NumberReversePostorder(f, true)

	// byPrio orders blocks by processing priority: ascending RPO position
	// for forward problems, descending (≈ postorder) for backward ones.
	byPrio := num.Order
	prio := num.Pos
	if p.Dir == Backward {
		n := len(num.Order)
		byPrio = make([]*ir.Block, n)
		prio = make([]int32, len(num.Pos))
		copy(prio, num.Pos)
		for i, b := range num.Order {
			byPrio[n-1-i] = b
			prio[b.ID] = int32(n - 1 - i)
		}
	}

	res := &Result{
		in:  make([]*bitset.Set, f.MaxBlockID()+1),
		out: make([]*bitset.Set, f.MaxBlockID()+1),
	}
	// Intersection problems start optimistic (full sets) so that loops reach
	// the greatest fixpoint; union problems start empty for the least one.
	// Unreachable blocks keep empty sets either way.
	slab := bitset.NewSlab(2*len(f.Blocks), p.Size)
	for i, b := range f.Blocks {
		res.in[b.ID] = slab[2*i]
		res.out[b.ID] = slab[2*i+1]
		if p.Meet == Intersect && num.Reaches(b) {
			res.in[b.ID].Fill()
			res.out[b.ID].Fill()
		}
	}

	gen := make([]*bitset.Set, f.MaxBlockID()+1)
	kill := make([]*bitset.Set, f.MaxBlockID()+1)
	for _, b := range num.Order {
		gen[b.ID] = p.Gen(b)
		kill[b.ID] = p.Kill(b)
	}

	boundary := p.Boundary
	if boundary == nil {
		boundary = bitset.New(p.Size)
	}
	var edgeScratch *bitset.Set
	if p.EdgeAdd != nil || p.EdgeSubtract != nil {
		edgeScratch = bitset.New(p.Size)
	}

	// meetFrom folds the (edge-adjusted) value of one reachable neighbor
	// into acc. The first contribution is copied, later ones meet.
	meetFrom := func(acc, v *bitset.Set, from, to *ir.Block, first bool) {
		if p.EdgeAdd != nil || p.EdgeSubtract != nil {
			edgeScratch.CopyFrom(v)
			if p.EdgeAdd != nil {
				if add := p.EdgeAdd(from, to); add != nil {
					edgeScratch.Union(add)
				}
			}
			if p.EdgeSubtract != nil {
				if sub := p.EdgeSubtract(from, to); sub != nil {
					edgeScratch.Subtract(sub)
				}
			}
			v = edgeScratch
		}
		switch {
		case first:
			acc.CopyFrom(v)
		case p.Meet == Intersect:
			acc.Intersect(v)
		default:
			acc.Union(v)
		}
	}

	// The worklist holds priority positions; popping the minimum processes
	// blocks in convergence order. Seed it with every reachable block so
	// each is visited at least once.
	work := bitset.New(len(byPrio))
	work.Fill()

	for {
		i := work.NextSet(0)
		if i < 0 {
			break
		}
		work.Remove(i)
		b := byPrio[i]

		if p.Dir == Forward {
			// In(b) only depends on predecessor Outs, so the meet can
			// accumulate directly into the stored set.
			in := res.in[b.ID]
			first := true
			for _, pr := range b.Preds {
				if !num.Reaches(pr) {
					continue
				}
				meetFrom(in, res.out[pr.ID], pr, b, first)
				first = false
			}
			if b == f.Entry {
				// The entry's preds (if any, e.g. a loop back to entry)
				// still meet with the boundary.
				switch {
				case first:
					in.CopyFrom(boundary)
				case p.Meet == Intersect:
					in.Intersect(boundary)
				default:
					in.Union(boundary)
				}
			} else if first {
				// No reachable preds: handler entries assume nothing (the
				// state at an exception dispatch point is unknown).
				in.Clear()
			}
			if res.out[b.ID].TransferInto(in, kill[b.ID], gen[b.ID]) {
				for _, s := range b.Succs {
					if num.Reaches(s) {
						work.Add(int(prio[s.ID]))
					}
				}
			}
		} else {
			out := res.out[b.ID]
			first := true
			for _, s := range b.Succs {
				if !num.Reaches(s) {
					continue
				}
				meetFrom(out, res.in[s.ID], b, s, first)
				first = false
			}
			if first {
				// Exits (and succ-less blocks generally) see the boundary.
				out.CopyFrom(boundary)
			}
			if res.in[b.ID].TransferInto(out, kill[b.ID], gen[b.ID]) {
				for _, pr := range b.Preds {
					if num.Reaches(pr) {
						work.Add(int(prio[pr.ID]))
					}
				}
			}
		}
	}
	return res
}
