// Package dataflow implements a generic iterative bit-vector data-flow
// solver. All four analyses of the paper (§4.1.1 backward insertion, §4.1.2
// forward non-null, §4.2.1 forward motion, §4.2.2 backward substitutable)
// instantiate it with their own Gen/Kill/Edge functions over variable-indexed
// sets.
package dataflow

import (
	"trapnull/internal/bitset"
	"trapnull/internal/cfg"
	"trapnull/internal/ir"
)

// Direction selects forward or backward propagation.
type Direction uint8

const (
	Forward Direction = iota
	Backward
)

// Meet selects the confluence operator.
type Meet uint8

const (
	// Intersect is the must/all-paths meet (anticipability, availability).
	Intersect Meet = iota
	// Union is the may/some-path meet.
	Union
)

// Problem describes one bit-vector data-flow problem. Gen and Kill summarize
// a whole block; EdgeSubtract removes elements crossing a specific edge (the
// paper's Edge_try) and EdgeAdd injects elements on an edge (the paper's
// Edge sets: ifnonnull outcomes, the `this` parameter). Either edge function
// may be nil.
type Problem struct {
	Dir      Direction
	Meet     Meet
	Size     int
	Boundary *bitset.Set // value at the CFG boundary (entry or all exits)
	Gen      func(b *ir.Block) *bitset.Set
	Kill     func(b *ir.Block) *bitset.Set

	EdgeSubtract func(from, to *ir.Block) *bitset.Set
	EdgeAdd      func(from, to *ir.Block) *bitset.Set
}

// Result holds the fixpoint In/Out sets per block.
type Result struct {
	In  map[*ir.Block]*bitset.Set
	Out map[*ir.Block]*bitset.Set
}

// GenKill adapts a combined per-block scan into the separate Gen/Kill
// accessors of Problem, computing each block's summary exactly once. Every
// analysis in this repository derives gen and kill from one walk over the
// block, so this halves summary construction cost — compile time is itself a
// measured quantity here (Tables 3–5).
func GenKill(scan func(b *ir.Block) (gen, kill *bitset.Set)) (genFn, killFn func(*ir.Block) *bitset.Set) {
	type pair struct{ gen, kill *bitset.Set }
	cache := make(map[*ir.Block]pair)
	get := func(b *ir.Block) pair {
		if p, ok := cache[b]; ok {
			return p
		}
		g, k := scan(b)
		p := pair{g, k}
		cache[b] = p
		return p
	}
	return func(b *ir.Block) *bitset.Set { return get(b).gen },
		func(b *ir.Block) *bitset.Set { return get(b).kill }
}

// Solve runs the iterative algorithm to a fixpoint over the reachable blocks
// of f. Unreachable blocks receive empty sets. The returned sets are owned by
// the caller.
func Solve(f *ir.Func, p *Problem) *Result {
	// Handlers run even though no CFG edge reaches them; they participate
	// in every analysis with a conservative (empty) entry value.
	rpo := cfg.ReversePostorderWithHandlers(f)
	order := rpo
	if p.Dir == Backward {
		order = make([]*ir.Block, len(rpo))
		for i, b := range rpo {
			order[len(rpo)-1-i] = b
		}
	}
	reach := make(map[*ir.Block]bool, len(rpo))
	for _, b := range rpo {
		reach[b] = true
	}

	res := &Result{
		In:  make(map[*ir.Block]*bitset.Set, len(f.Blocks)),
		Out: make(map[*ir.Block]*bitset.Set, len(f.Blocks)),
	}
	// Intersection problems start optimistic (full sets) so that loops reach
	// the greatest fixpoint; union problems start empty for the least one.
	// Unreachable blocks keep empty sets either way.
	for _, b := range f.Blocks {
		if p.Meet == Intersect && reach[b] {
			res.In[b] = bitset.NewFull(p.Size)
			res.Out[b] = bitset.NewFull(p.Size)
		} else {
			res.In[b] = bitset.New(p.Size)
			res.Out[b] = bitset.New(p.Size)
		}
	}

	gen := make(map[*ir.Block]*bitset.Set, len(rpo))
	kill := make(map[*ir.Block]*bitset.Set, len(rpo))
	for _, b := range rpo {
		gen[b] = p.Gen(b)
		kill[b] = p.Kill(b)
	}

	boundary := p.Boundary
	if boundary == nil {
		boundary = bitset.New(p.Size)
	}

	// meetInput computes the confluence value flowing into block b.
	// fallback is used when b has no reachable neighbors: the boundary value
	// at the true CFG boundary, the empty set for handler entries (the state
	// at an exception dispatch point is unknown, so nothing may be assumed).
	meetInput := func(b *ir.Block, neighbors []*ir.Block, fallback *bitset.Set, edgeFrom func(n *ir.Block) (from, to *ir.Block), neighborVal func(n *ir.Block) *bitset.Set) *bitset.Set {
		acc := bitset.New(p.Size)
		first := true
		for _, n := range neighbors {
			if !reach[n] {
				continue
			}
			v := neighborVal(n).Copy()
			from, to := edgeFrom(n)
			if p.EdgeAdd != nil {
				if add := p.EdgeAdd(from, to); add != nil {
					v.Union(add)
				}
			}
			if p.EdgeSubtract != nil {
				if sub := p.EdgeSubtract(from, to); sub != nil {
					v.Subtract(sub)
				}
			}
			if first {
				acc.CopyFrom(v)
				first = false
			} else if p.Meet == Intersect {
				acc.Intersect(v)
			} else {
				acc.Union(v)
			}
		}
		if first {
			acc.CopyFrom(fallback)
		}
		return acc
	}
	empty := bitset.New(p.Size)

	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if p.Dir == Forward {
				fallback := empty
				if b == f.Entry {
					fallback = boundary
				}
				in := meetInput(b, b.Preds, fallback,
					func(n *ir.Block) (*ir.Block, *ir.Block) { return n, b },
					func(n *ir.Block) *bitset.Set { return res.Out[n] })
				if b == f.Entry {
					// The entry's preds (if any, e.g. a loop back to entry)
					// still meet with the boundary.
					if len(b.Preds) == 0 {
						in.CopyFrom(boundary)
					} else if p.Meet == Intersect {
						in.Intersect(boundary)
					} else {
						in.Union(boundary)
					}
				}
				out := in.Copy()
				out.Subtract(kill[b])
				out.Union(gen[b])
				if !in.Equal(res.In[b]) || !out.Equal(res.Out[b]) {
					res.In[b].CopyFrom(in)
					res.Out[b].CopyFrom(out)
					changed = true
				}
			} else {
				out := meetInput(b, b.Succs, boundary,
					func(n *ir.Block) (*ir.Block, *ir.Block) { return b, n },
					func(n *ir.Block) *bitset.Set { return res.In[n] })
				in := out.Copy()
				in.Subtract(kill[b])
				in.Union(gen[b])
				if !in.Equal(res.In[b]) || !out.Equal(res.Out[b]) {
					res.In[b].CopyFrom(in)
					res.Out[b].CopyFrom(out)
					changed = true
				}
			}
		}
	}
	return res
}
