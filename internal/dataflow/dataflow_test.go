package dataflow

import (
	"testing"

	"trapnull/internal/bitset"
	"trapnull/internal/ir"
)

// straightLine builds entry -> mid -> exit.
func straightLine() (*ir.Func, []*ir.Block) {
	b := ir.NewFunc("sl", false)
	b.Param("x", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	mid := b.DeclareBlock("mid")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Jump(mid)
	b.SetBlock(mid)
	b.Jump(exit)
	b.SetBlock(exit)
	b.Return(ir.ConstInt(0))
	return b.Finish(), []*ir.Block{entry, mid, exit}
}

// loop builds entry -> header <-> body, header -> exit.
func loop() (*ir.Func, map[string]*ir.Block) {
	b := ir.NewFunc("lp", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	header := b.DeclareBlock("header")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.Jump(header)
	b.SetBlock(header)
	b.If(ir.CondLT, ir.ConstInt(0), ir.Var(n), body, exit)
	b.SetBlock(body)
	b.Jump(header)
	b.SetBlock(exit)
	b.Return(ir.ConstInt(0))
	return b.Finish(), map[string]*ir.Block{
		"entry": entry, "header": header, "body": body, "exit": exit,
	}
}

func setOf(size int, elems ...int) *bitset.Set {
	s := bitset.New(size)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func constGen(m map[*ir.Block]*bitset.Set, size int) func(*ir.Block) *bitset.Set {
	return func(b *ir.Block) *bitset.Set {
		if s, ok := m[b]; ok {
			return s.Copy()
		}
		return bitset.New(size)
	}
}

func TestForwardUnionPropagates(t *testing.T) {
	f, blocks := straightLine()
	const size = 4
	gen := map[*ir.Block]*bitset.Set{blocks[0]: setOf(size, 1)}
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Union, Size: size,
		Gen:  constGen(gen, size),
		Kill: constGen(nil, size),
	})
	if !res.In(blocks[2]).Has(1) {
		t.Fatalf("bit 1 did not reach exit: In(exit) = %v", res.In(blocks[2]))
	}
	if res.In(blocks[0]).Has(1) {
		t.Fatal("gen leaked into entry In")
	}
}

func TestForwardKillStopsPropagation(t *testing.T) {
	f, blocks := straightLine()
	const size = 4
	gen := map[*ir.Block]*bitset.Set{blocks[0]: setOf(size, 1)}
	kill := map[*ir.Block]*bitset.Set{blocks[1]: setOf(size, 1)}
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Union, Size: size,
		Gen:  constGen(gen, size),
		Kill: constGen(kill, size),
	})
	if res.In(blocks[2]).Has(1) {
		t.Fatal("killed bit reached exit")
	}
	if !res.In(blocks[1]).Has(1) {
		t.Fatal("bit should reach mid's entry before being killed")
	}
}

func TestForwardIntersectAtMerge(t *testing.T) {
	// entry -> (a | b) -> merge. Only a gens the bit, so intersection at
	// merge must drop it; union must keep it.
	b := ir.NewFunc("m", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	ba := b.DeclareBlock("a")
	bb := b.DeclareBlock("b")
	merge := b.DeclareBlock("merge")
	b.SetBlock(entry)
	b.If(ir.CondLT, ir.Var(n), ir.ConstInt(0), ba, bb)
	b.SetBlock(ba)
	b.Jump(merge)
	b.SetBlock(bb)
	b.Jump(merge)
	b.SetBlock(merge)
	b.Return(ir.ConstInt(0))
	f := b.Finish()

	const size = 2
	gen := map[*ir.Block]*bitset.Set{ba: setOf(size, 0)}
	for _, tc := range []struct {
		meet Meet
		want bool
	}{{Intersect, false}, {Union, true}} {
		res := Solve(f, &Problem{
			Dir: Forward, Meet: tc.meet, Size: size,
			Gen:  constGen(gen, size),
			Kill: constGen(nil, size),
		})
		if got := res.In(merge).Has(0); got != tc.want {
			t.Fatalf("meet=%v: In(merge).Has(0) = %v, want %v", tc.meet, got, tc.want)
		}
	}
}

func TestBackwardAnticipabilityThroughLoop(t *testing.T) {
	// A bit generated in the loop body and in the exit is anticipable at the
	// loop header only with the optimistic (full) intersection init: the
	// header's Out meets body.In ∩ exit.In.
	f, m := loop()
	const size = 2
	gen := map[*ir.Block]*bitset.Set{m["body"]: setOf(size, 0), m["exit"]: setOf(size, 0)}
	res := Solve(f, &Problem{
		Dir: Backward, Meet: Intersect, Size: size,
		Gen:  constGen(gen, size),
		Kill: constGen(nil, size),
	})
	if !res.Out(m["header"]).Has(0) {
		t.Fatal("bit generated on every path from header not anticipated at header exit")
	}
	if !res.Out(m["entry"]).Has(0) {
		t.Fatal("bit not anticipated at entry exit")
	}
	// A bit generated only in the body must not be anticipated at the header
	// (the exit path lacks it).
	gen2 := map[*ir.Block]*bitset.Set{m["body"]: setOf(size, 1)}
	res2 := Solve(f, &Problem{
		Dir: Backward, Meet: Intersect, Size: size,
		Gen:  constGen(gen2, size),
		Kill: constGen(nil, size),
	})
	if res2.Out(m["header"]).Has(1) {
		t.Fatal("body-only bit wrongly anticipated at header exit")
	}
}

func TestBoundaryValueUsed(t *testing.T) {
	f, blocks := straightLine()
	const size = 3
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Intersect, Size: size,
		Boundary: setOf(size, 2),
		Gen:      constGen(nil, size),
		Kill:     constGen(nil, size),
	})
	if !res.In(blocks[0]).Has(2) {
		t.Fatal("boundary bit missing from entry In")
	}
	if !res.Out(blocks[2]).Has(2) {
		t.Fatal("boundary bit did not flow to exit Out")
	}
}

func TestEdgeSubtract(t *testing.T) {
	f, blocks := straightLine()
	const size = 2
	gen := map[*ir.Block]*bitset.Set{blocks[0]: setOf(size, 0)}
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Union, Size: size,
		Gen:  constGen(gen, size),
		Kill: constGen(nil, size),
		EdgeSubtract: func(from, to *ir.Block) *bitset.Set {
			if from == blocks[1] && to == blocks[2] {
				return setOf(size, 0)
			}
			return nil
		},
	})
	if !res.In(blocks[1]).Has(0) {
		t.Fatal("bit should cross entry->mid")
	}
	if res.In(blocks[2]).Has(0) {
		t.Fatal("bit should be subtracted on mid->exit")
	}
}

func TestEdgeAdd(t *testing.T) {
	f, blocks := straightLine()
	const size = 2
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Union, Size: size,
		Gen:  constGen(nil, size),
		Kill: constGen(nil, size),
		EdgeAdd: func(from, to *ir.Block) *bitset.Set {
			if from == blocks[0] && to == blocks[1] {
				return setOf(size, 1)
			}
			return nil
		},
	})
	if !res.In(blocks[1]).Has(1) {
		t.Fatal("edge-added bit missing at mid")
	}
	if !res.In(blocks[2]).Has(1) {
		t.Fatal("edge-added bit should keep flowing to exit")
	}
	if res.In(blocks[0]).Has(1) {
		t.Fatal("edge-added bit leaked to entry")
	}
}

func TestUnreachableBlocksGetEmptySets(t *testing.T) {
	f, _ := straightLine()
	dead := f.NewBlock("dead")
	dead.Instrs = []*ir.Instr{{Op: ir.OpReturn, Dst: ir.NoVar, Args: []ir.Operand{ir.ConstInt(0)}}}
	f.RecomputeEdges()
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Intersect, Size: 4,
		Boundary: setOf(4, 1),
		Gen:      constGen(nil, 4),
		Kill:     constGen(nil, 4),
	})
	if !res.In(dead).IsEmpty() || !res.Out(dead).IsEmpty() {
		t.Fatal("unreachable block should have empty sets")
	}
}

func TestGenKillMemoizesSingleScan(t *testing.T) {
	f, blocks := straightLine()
	scans := 0
	gen, kill := GenKill(func(b *ir.Block) (*bitset.Set, *bitset.Set) {
		scans++
		g := bitset.New(4)
		g.Add(1)
		return g, bitset.New(4)
	})
	for i := 0; i < 3; i++ {
		for _, b := range blocks {
			if !gen(b).Has(1) {
				t.Fatal("gen lost")
			}
			if !kill(b).IsEmpty() {
				t.Fatal("kill wrong")
			}
		}
	}
	if scans != len(blocks) {
		t.Fatalf("scanned %d times for %d blocks; memoization broken", scans, len(blocks))
	}
	_ = f
}

func TestHandlerBlocksParticipateInAnalysis(t *testing.T) {
	// A handler block has no CFG predecessors; it must still get solved
	// (non-empty results where its own gen provides them) rather than being
	// skipped as unreachable.
	b := ir.NewFunc("h", false)
	b.Result(ir.KindInt)
	entry := b.Block("entry")
	handler := b.DeclareBlock("handler")
	after := b.DeclareBlock("after")
	exc := b.F.NewLocal("exc", ir.KindRef)
	b.SetBlock(entry)
	x := b.Temp(ir.KindInt)
	b.Binop(ir.OpDiv, x, ir.ConstInt(1), ir.ConstInt(1))
	b.Jump(after)
	b.SetBlock(handler)
	y := b.Temp(ir.KindInt)
	b.Move(y, ir.ConstInt(5))
	b.Jump(after)
	b.SetBlock(after)
	b.Return(ir.ConstInt(0))
	f := b.F
	region := f.NewRegion(handler, exc)
	entry.Try = region.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}

	const size = 8
	genVals := map[*ir.Block]*bitset.Set{handler: setOf(size, 2)}
	res := Solve(f, &Problem{
		Dir: Forward, Meet: Union, Size: size,
		Gen:  constGen(genVals, size),
		Kill: constGen(nil, size),
	})
	if !res.Out(handler).Has(2) {
		t.Fatal("handler block not analyzed")
	}
	if !res.In(after).Has(2) {
		t.Fatal("handler facts did not flow to its successor")
	}
	// The handler's In must be the conservative empty set, not the entry
	// boundary.
	if !res.In(handler).IsEmpty() {
		t.Fatalf("handler In = %v, want empty", res.In(handler))
	}
}
