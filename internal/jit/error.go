package jit

import (
	"fmt"
	"strings"
	"time"
)

// PassError is the structured failure of one pipeline pass: either the pass
// panicked (Panic/Stack are set) or it left the function in a state the IR
// verifier rejects (Err is set). The IR dump is the function as the pass
// left it, so a failing sweep cell carries everything needed to reproduce
// the bug without re-running anything.
type PassError struct {
	// Pass names the pipeline step ("phase1#2", "phase2", "cleanup", ...).
	Pass string
	// Func is the function being compiled when the pass failed.
	Func string
	// IRDump is the function body at the moment of failure.
	IRDump string
	// Panic is the recovered panic value; nil when the failure was a
	// verifier rejection instead.
	Panic any
	// Stack is the goroutine stack captured at the panic site.
	Stack []byte
	// Err is the verifier (or other structured) failure when the pass
	// completed but produced invalid IR.
	Err error
	// Elapsed is how long the pass ran before failing — how far it got.
	// Excluded from Error() and Reason() so failure text stays deterministic
	// (table cells and sweep summaries must not vary run to run); Detail()
	// reports it.
	Elapsed time.Duration
}

func (e *PassError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("jit: pass %s on %s: panic: %v", e.Pass, e.Func, e.Panic)
	}
	return fmt.Sprintf("jit: pass %s on %s: %v", e.Pass, e.Func, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// Reason is a short, deterministic label for table cells and sweep
// summaries: no addresses, no stack, no IR dump — the same failing cell must
// render identically regardless of worker count or run.
func (e *PassError) Reason() string {
	if e.Panic != nil {
		return fmt.Sprintf("panic in %s: %v", e.Pass, e.Panic)
	}
	return fmt.Sprintf("invalid IR after %s", e.Pass)
}

// Detail renders the full diagnostic: the error, the IR at failure, and the
// panic stack when there is one. cmd/triage and failing tests print it.
func (e *PassError) Detail() string {
	var sb strings.Builder
	sb.WriteString(e.Error())
	if e.Elapsed > 0 {
		fmt.Fprintf(&sb, "\npass ran %v before failing", e.Elapsed)
	}
	if e.IRDump != "" {
		sb.WriteString("\n--- IR at failure ---\n")
		sb.WriteString(e.IRDump)
	}
	if len(e.Stack) > 0 {
		sb.WriteString("\n--- stack ---\n")
		sb.Write(e.Stack)
	}
	return sb.String()
}
