package jit

import (
	"fmt"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// Parallel per-method compilation.
//
// Safety argument (DESIGN.md §10 carries the prose version):
//
// Compiling method M mutates exactly one thing — M's own body — and reads,
// besides program-level metadata that no pass mutates (class layouts, method
// signatures, virtual slots), the bodies of the methods M may inline. The
// inliner resolves call sites through in.Callee only (devirtualization fills
// in.Callee on M's OWN call instructions before inlining consults it; it
// never redirects a site to a method not already reachable through Callee
// edges), so the methods whose bodies M can ever read are exactly the
// transitive Callee closure of M's pristine body: inlining copies callee
// call sites into M, and those copies are by construction inside the
// transitive closure.
//
// The serial loop compiles methods in program order, so for an ordered pair
// i < j it establishes two reader/writer facts: (a) j reads i's body only
// AFTER i finished optimizing it, and (b) i reads j's body BEFORE j touched
// it. Parallel compilation preserves the artifact byte-for-byte by keeping
// exactly those edges: method j waits for every i < j with i ∈ closure(j)
// (fact a — j must see i's final body) or j ∈ closure(i) (fact b — j must
// not start rewriting its body while i may still be reading the pristine
// version). Methods unrelated by either closure share no mutable state and
// commute freely. Every dependency points at a smaller index, so the wait
// graph is acyclic and the scheduler cannot deadlock.
//
// Bounded workers: each method's goroutine first waits for its dependencies
// and only then acquires a semaphore slot for the actual compilation, so a
// blocked method never occupies a slot a dependency needs.
//
// Everything else the workers share is concurrency-safe by construction:
// per-method statistics go into per-method Results merged in program order
// afterwards, fate ledgers are pre-registered in program order (obs.Remarks
// is mutex-guarded, each Ledger is then touched by one worker only), trace
// spans go to the mutex-guarded obs.Trace on per-worker lanes, and
// CheckTracker hooks run through Func.Track, which is per-function state.
func compileParallel(prog *ir.Program, cfg Config, execModel *arch.Model, opts CompileOptions) (*Result, error) {
	ob := opts.Observer
	type unit struct {
		m      *ir.Method
		ledger *obs.Ledger
		res    Result
		err    error
		done   chan struct{}
	}
	var units []*unit
	index := make(map[*ir.Method]int)
	for _, m := range prog.Methods {
		if m.Fn == nil {
			continue
		}
		index[m] = len(units)
		units = append(units, &unit{m: m, done: make(chan struct{})})
	}
	// Ledger registration order must match the serial loop exactly; register
	// everything up front, before any worker can race for the slot. (The
	// serial loop registers each ledger immediately before compiling the
	// method, but since compilation never mutates OTHER bodies, the pristine
	// snapshot a ledger takes is the same either way.)
	for _, u := range units {
		u.ledger = newLedgerFor(ob, u.m)
	}

	// Pristine transitive Callee closures, computed before any body changes.
	closures := make([][]bool, len(units))
	for j, u := range units {
		closures[j] = calleeClosure(u.m, index, len(units))
	}
	deps := make([][]int, len(units))
	for j := range units {
		for i := 0; i < j; i++ {
			if closures[j][i] || closures[i][j] {
				deps[j] = append(deps[j], i)
			}
		}
	}

	sem := make(chan struct{}, opts.Parallelism)
	for j, u := range units {
		go func(j int, u *unit) {
			defer close(u.done)
			for _, i := range deps[j] {
				<-units[i].done
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			wob := ob
			if ob.tracing() {
				w := *ob
				w.TID = ob.Trace.NextTID()
				wob = &w
			}
			u.res.Config = cfg
			u.err = compileFunc(u.m.Fn, cfg, execModel, &u.res, wob, u.ledger, opts.PassFault)
		}(j, u)
	}
	for _, u := range units {
		<-u.done
	}

	// Merge in program order; on error report the lowest-index failure (the
	// one the serial loop would have hit first). Note a failed parallel run
	// may have compiled methods the serial loop never reached — irrelevant,
	// because an errored program is never executed.
	res := &Result{Config: cfg}
	for _, u := range units {
		if u.err != nil {
			return nil, fmt.Errorf("%s: %w", u.m.QualifiedName(), u.err)
		}
		res.Times.Add(u.res.Times)
		res.Checks.Add(u.res.Checks)
		res.Inline.Add(u.res.Inline)
		res.Scalar.Add(u.res.Scalar)
		res.BoundChecksRemoved += u.res.BoundChecksRemoved
		res.FuncsCompiled++
	}
	finishProgramStats(prog, res)
	return res, nil
}

// calleeClosure returns, as a dense bit set over unit indices, every method
// transitively reachable from m's pristine body through Callee edges
// (excluding m itself unless it is self-recursive).
func calleeClosure(m *ir.Method, index map[*ir.Method]int, n int) []bool {
	reach := make([]bool, n)
	var work []*ir.Method
	push := func(callee *ir.Method) {
		if callee == nil {
			return
		}
		if i, ok := index[callee]; ok && !reach[i] {
			reach[i] = true
			work = append(work, callee)
		}
	}
	scan := func(fn *ir.Func) {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				push(in.Callee)
			}
		}
	}
	scan(m.Fn)
	for len(work) > 0 {
		next := work[len(work)-1]
		work = work[:len(work)-1]
		scan(next.Fn)
	}
	return reach
}
