// Trap-storm governor compilation input.
//
// The governor (internal/machine) watches per-site trap profiles on the
// running artifact; an implicit null check site whose observed null rate
// crosses the policy threshold is demoted back to an explicit check. The
// governor hands the accumulated decisions here as a DemoteSet — method
// qualified name → stable trap-site ordinals — and the pipeline applies it
// AFTER the normal pass list has run: each selected exception site loses its
// ExcSite flag and gains an explicit OpNullCheck immediately before it in the
// same block.
//
// Site ordinals must survive recompilation, so every compile ends by
// numbering the exception sites deterministically (numberTrapSites): ordinal
// = position in block order. Compilation of a pristine program is
// deterministic, so the same source-level dereference gets the same ordinal
// in every artifact generation; a demoted site keeps its ordinal on the
// inserted check, which lets the machine alias its profile counter across
// generations. Demotion inserts instructions but never reorders or splits
// blocks, so block IDs stay aligned with the conservative artifact and
// block-boundary OSR between generations remains an exact state transfer.
package jit

import (
	"sort"
	"strconv"
	"strings"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// DemoteSet maps a method's qualified name to the trap-site ordinals
// (numberTrapSites order) to force back to explicit checks. A nil or empty
// set leaves every site implicit.
type DemoteSet map[string][]int

// Canon renders the set in its canonical form: methods sorted by name,
// ordinals sorted ascending and deduplicated, e.g. "A.main:0,2;B.get:1".
// The empty string means no demotion. The canonical form enters the cache
// key, so governed artifacts with distinct demote sets never collide with
// each other or with the ungoverned compilation.
func (s DemoteSet) Canon() string {
	if len(s) == 0 {
		return ""
	}
	names := make([]string, 0, len(s))
	for name, ords := range s {
		if len(ords) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte(':')
		ords := append([]int(nil), s[name]...)
		sort.Ints(ords)
		prev := -1
		first := true
		for _, o := range ords {
			if o == prev {
				continue
			}
			prev = o
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(strconv.Itoa(o))
		}
	}
	return b.String()
}

// KeyDemote builds the cache key for compiling prog under cfg on execModel
// with the given speculation and demotion sets. Either set may be nil.
func KeyDemote(prog *ir.Program, cfg Config, execModel *arch.Model, spec SpecSet, demote DemoteSet) CacheKey {
	k := Key(prog, cfg, execModel)
	k.Spec = spec.Canon()
	k.Demote = demote.Canon()
	return k
}

// numberTrapSites assigns each exception site its stable per-method ordinal
// (TrapSite = ordinal+1) in block order. It runs after every pipeline so the
// numbering is a pure function of the compiled body; because compilation is
// deterministic, ordinals agree across artifact generations of the same
// pristine program under the same config.
func numberTrapSites(prog *ir.Program) {
	for _, m := range prog.Methods {
		if m.Fn == nil {
			continue
		}
		ord := int32(0)
		for _, b := range m.Fn.Blocks {
			for _, in := range b.Instrs {
				if in.ExcSite {
					in.TrapSite = ord + 1
					ord++
				}
			}
		}
	}
}

// applyDemotion forces the selected exception sites back to explicit checks
// and returns how many were applied. For each selected site the dereference
// loses its ExcSite marking and an explicit OpNullCheck on the same base
// reference is inserted immediately before it in the same block, so the
// exception is raised at the same program point under the same try region
// and the Outcome is unchanged — only the cycle accounting moves from trap
// dispatch to a cheap software check and throw. Ordinals that match no site
// are ignored (a stale set must not corrupt a compile). Must run after
// numberTrapSites.
func applyDemotion(prog *ir.Program, demote DemoteSet) int {
	applied := 0
	for _, m := range prog.Methods {
		if m.Fn == nil {
			continue
		}
		ords := demote[m.QualifiedName()]
		if len(ords) == 0 {
			continue
		}
		want := make(map[int32]bool, len(ords))
		for _, o := range ords {
			want[int32(o)+1] = true
		}
		for _, b := range m.Fn.Blocks {
			grow := 0
			for _, in := range b.Instrs {
				if in.ExcSite && want[in.TrapSite] {
					grow++
				}
			}
			if grow == 0 {
				continue
			}
			out := make([]*ir.Instr, 0, len(b.Instrs)+grow)
			for _, in := range b.Instrs {
				if in.ExcSite && want[in.TrapSite] {
					out = append(out, &ir.Instr{
						Op:       ir.OpNullCheck,
						Dst:      ir.NoVar,
						Args:     []ir.Operand{in.Args[0]},
						Reason:   demoteReason(in.Op),
						Explicit: true,
						TrapSite: in.TrapSite,
					})
					in.ExcSite = false
					in.TrapSite = 0
					applied++
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
	return applied
}

// demoteReason picks the CheckReason for a check re-materialized by demotion,
// matching the reason lowering would have used for the dereference kind.
func demoteReason(op ir.Op) ir.CheckReason {
	switch op {
	case ir.OpArrayLength, ir.OpArrayLoad, ir.OpArrayStore:
		return ir.ReasonArray
	case ir.OpCallVirtual:
		return ir.ReasonCall
	}
	return ir.ReasonField
}
