package jit

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/workloads"
)

func TestSpecSetCanon(t *testing.T) {
	cases := []struct {
		name string
		set  SpecSet
		want string
	}{
		{"nil", nil, ""},
		{"empty", SpecSet{}, ""},
		{"empty-ords", SpecSet{"A.m": nil}, ""},
		{"one", SpecSet{"A.m": {1}}, "A.m:1"},
		{"sorted-dedup", SpecSet{"A.m": {2, 0, 2, 0}}, "A.m:0,2"},
		{"methods-sorted", SpecSet{"B.g": {1}, "A.m": {0}}, "A.m:0;B.g:1"},
	}
	for _, c := range cases {
		if got := c.set.Canon(); got != c.want {
			t.Errorf("%s: Canon() = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestKeySpecDistinct pins the satellite-4 keying contract: the conservative
// key, the speculative key, and any two distinct speculation sets of the
// same program never collide, while a nil set reproduces the plain Key.
func TestKeySpecDistinct(t *testing.T) {
	w := workloads.BigOffsetWalk()
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()
	p, _ := w.Build()

	k0 := Key(p, cfg, model)
	kNil := KeySpec(p, cfg, model, nil)
	if k0 != kNil {
		t.Errorf("KeySpec with nil set must equal Key: %+v vs %+v", k0, kNil)
	}
	kA := KeySpec(p, cfg, model, SpecSet{"BigOffsetWalk.main": {0}})
	if kA == k0 {
		t.Errorf("speculative key collides with conservative key")
	}
	kB := KeySpec(p, cfg, model, SpecSet{"BigOffsetWalk.main": {1}})
	if kA == kB {
		t.Errorf("distinct speculation sets share a key")
	}
}

// TestApplySpeculation checks the post-pipeline flag flip: compiling with a
// Spec set marks exactly the selected ordinals as guards, counts them in
// Result.SpeculatedChecks, leaves the block structure identical to the
// conservative compile, and ignores out-of-range ordinals.
func TestApplySpeculation(t *testing.T) {
	w := workloads.BigOffsetWalk()
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()

	p0, _ := w.Build()
	if _, err := CompileProgramWith(p0, cfg, model, CompileOptions{}); err != nil {
		t.Fatal(err)
	}
	m0 := p0.MethodByName("BigOffsetWalk.main")
	checks := m0.Fn.NullChecks()
	if len(checks) == 0 {
		t.Fatal("BigOffsetWalk.main has no surviving checks to speculate")
	}
	for ord, in := range checks {
		if in.SpecGuard != 0 {
			t.Fatalf("conservative compile set SpecGuard on check %d", ord)
		}
	}

	p2, _ := w.Build()
	spec := SpecSet{"BigOffsetWalk.main": {0, 99}} // 99 is out of range: ignored
	res, err := CompileProgramWith(p2, cfg, model, CompileOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculatedChecks != 1 {
		t.Errorf("SpeculatedChecks = %d, want 1", res.SpeculatedChecks)
	}
	m2 := p2.MethodByName("BigOffsetWalk.main")
	checks2 := m2.Fn.NullChecks()
	if len(checks2) != len(checks) {
		t.Fatalf("speculative compile changed the check list: %d vs %d", len(checks2), len(checks))
	}
	if checks2[0].SpecGuard != 1 {
		t.Errorf("check 0: SpecGuard = %d, want 1 (ordinal+1)", checks2[0].SpecGuard)
	}
	for ord := 1; ord < len(checks2); ord++ {
		if checks2[ord].SpecGuard != 0 {
			t.Errorf("check %d speculated without being selected", ord)
		}
	}

	// Block-for-block alignment: speculation is a flag flip on the
	// deterministic recompile, so the block and instruction shape match the
	// conservative artifact exactly.
	f0, f2 := m0.Fn, m2.Fn
	if len(f0.Blocks) != len(f2.Blocks) {
		t.Fatalf("block count diverged: %d vs %d", len(f0.Blocks), len(f2.Blocks))
	}
	for i := range f0.Blocks {
		if f0.Blocks[i].ID != f2.Blocks[i].ID || len(f0.Blocks[i].Instrs) != len(f2.Blocks[i].Instrs) {
			t.Fatalf("block %d shape diverged", i)
		}
	}

	// The speculative program's content hash differs — SpecGuard is part of
	// the instruction encoding, so a cached artifact can never masquerade as
	// its conservative twin even if the Spec key field were dropped.
	if HashProgram(p0) == HashProgram(p2) {
		t.Errorf("speculative and conservative programs hash identically")
	}
}
