package jit

import (
	"fmt"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
	"trapnull/internal/opt"
)

// PassObserver is invoked after every pipeline pass with the pass name and
// the function in its current state. Observers are how miscompilations get
// bisected: run the observed pipeline, execute the function after each pass,
// and the first divergence names the guilty pass (this is exactly how the
// bugs in DESIGN.md §6 were found).
type PassObserver func(pass string, f *ir.Func) error

// CompileFuncObserved runs the cfg pipeline on a single function, invoking
// obs after every pass. It mirrors CompileProgram's per-function pipeline
// exactly, minus the timing bookkeeping.
func CompileFuncObserved(f *ir.Func, cfg Config, execModel *arch.Model, obs PassObserver) error {
	trapModel := cfg.Phase2Model
	if trapModel == nil {
		trapModel = execModel
	}
	scalarModel := *execModel
	scalarModel.SpeculativeReads = execModel.SpeculativeReads && cfg.Speculation

	step := func(pass string) error {
		if err := ir.Validate(f); err != nil {
			return fmt.Errorf("after %s: invalid IR: %w", pass, err)
		}
		if obs != nil {
			if err := obs(pass, f); err != nil {
				return fmt.Errorf("after %s: %w", pass, err)
			}
		}
		return nil
	}

	if cfg.Inline {
		budget := cfg.InlineBudget
		if budget == 0 {
			budget = opt.InlineBudget
		}
		opt.InlineWithBudget(f, execModel, budget)
		if err := step("inline"); err != nil {
			return err
		}
	}
	if cfg.OtherOpts {
		opt.RotateLoops(f)
		if err := step("rotate"); err != nil {
			return err
		}
	}

	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		switch cfg.Algo {
		case AlgoWhaley:
			nullcheck.Whaley(f)
			if err := step(fmt.Sprintf("whaley#%d", i)); err != nil {
				return err
			}
		case AlgoNew:
			nullcheck.Phase1(f)
			if err := step(fmt.Sprintf("phase1#%d", i)); err != nil {
				return err
			}
		}
		if cfg.OtherOpts {
			opt.CopyProp(f)
			if err := step(fmt.Sprintf("copyprop#%d", i)); err != nil {
				return err
			}
			opt.ConstFold(f)
			if err := step(fmt.Sprintf("constfold#%d", i)); err != nil {
				return err
			}
			if cfg.LightScalar {
				opt.CSE(f)
				if err := step(fmt.Sprintf("cse#%d", i)); err != nil {
					return err
				}
			} else {
				opt.BoundCheckElim(f)
				if err := step(fmt.Sprintf("boundelim#%d", i)); err != nil {
					return err
				}
				opt.ScalarReplace(f, &scalarModel)
				if err := step(fmt.Sprintf("scalar#%d", i)); err != nil {
					return err
				}
			}
			opt.DCE(f)
			if err := step(fmt.Sprintf("dce#%d", i)); err != nil {
				return err
			}
		}
	}

	switch {
	case cfg.Phase2:
		nullcheck.Phase2(f, trapModel)
		if err := step("phase2"); err != nil {
			return err
		}
	case cfg.TrapConvert:
		nullcheck.ConvertToTraps(f, trapModel)
		if err := step("trapconvert"); err != nil {
			return err
		}
	case cfg.TrapFold:
		nullcheck.FoldAdjacentTraps(f, trapModel)
		if err := step("trapfold"); err != nil {
			return err
		}
	}

	opt.CopyProp(f)
	opt.ConstFold(f)
	opt.DCE(f)
	opt.SimplifyCFG(f)
	if err := step("cleanup"); err != nil {
		return err
	}

	if !cfg.SkipGuardCheck {
		if err := nullcheck.CheckGuards(f, execModel); err != nil {
			return fmt.Errorf("guard check: %w", err)
		}
	}
	return nil
}
