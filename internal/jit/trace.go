package jit

import (
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/obs"
)

// PassObserver is invoked after every pipeline pass with the pass name, the
// function in its current state, and how long the pass ran (verification
// included). Observers are how miscompilations get bisected: run the
// observed pipeline, execute the function after each pass, and the first
// divergence names the guilty pass — internal/triage automates exactly that,
// and reports the timings alongside.
type PassObserver func(pass string, f *ir.Func, elapsed time.Duration) error

// Observer bundles the observability sinks of one observed compilation
// (ISSUE: internal/obs). Both fields are optional; a nil Observer — the
// CompileProgram path — costs nothing.
type Observer struct {
	// Trace records one span per pass and per function; TID is the trace
	// lane the spans land in (take it from Trace.NextTID so concurrent
	// compilations do not interleave).
	Trace *obs.Trace
	TID   int64
	// Remarks collects a per-function null-check fate ledger.
	Remarks *obs.Remarks
}

func (ob *Observer) tracing() bool { return ob != nil && ob.Trace != nil }

// CompileFuncObserved runs the cfg pipeline on a single function, invoking
// po after every pass. It executes the same pass list as CompileProgram
// (both call pipeline()), with the structural verifier always on, so the
// observed pipeline can never drift from the production one.
func CompileFuncObserved(f *ir.Func, cfg Config, execModel *arch.Model, po PassObserver) error {
	res := &Result{Config: cfg}
	for _, p := range pipeline(cfg, execModel) {
		if err := runPass(p, f, res, true, po, nil); err != nil {
			return err
		}
	}
	if !cfg.SkipGuardCheck {
		if err := checkGuardsContained(f, execModel); err != nil {
			return err
		}
	}
	return nil
}
