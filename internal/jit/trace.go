package jit

import (
	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// PassObserver is invoked after every pipeline pass with the pass name and
// the function in its current state. Observers are how miscompilations get
// bisected: run the observed pipeline, execute the function after each pass,
// and the first divergence names the guilty pass — internal/triage automates
// exactly that.
type PassObserver func(pass string, f *ir.Func) error

// CompileFuncObserved runs the cfg pipeline on a single function, invoking
// obs after every pass. It executes the same pass list as CompileProgram
// (both call pipeline()), with the structural verifier always on, so the
// observed pipeline can never drift from the production one.
func CompileFuncObserved(f *ir.Func, cfg Config, execModel *arch.Model, obs PassObserver) error {
	res := &Result{Config: cfg}
	for _, p := range pipeline(cfg, execModel) {
		if err := runPass(p, f, res, true, obs); err != nil {
			return err
		}
	}
	if !cfg.SkipGuardCheck {
		if err := checkGuardsContained(f, execModel); err != nil {
			return err
		}
	}
	return nil
}
