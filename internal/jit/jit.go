// Package jit assembles the paper's compilation pipelines: which null check
// algorithm runs, whether hardware traps are exploited, how many times
// phase 1 iterates with the other optimizations (Figure 2), and — for the
// AIX experiments — whether reads may be speculated and whether the
// spec-violating Intel phase 2 is forced ("Illegal Implicit"). It also
// accounts compile time per phase family, which Tables 3–5 report.
package jit

import (
	"fmt"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
	"trapnull/internal/obs"
	"trapnull/internal/opt"
)

// Algo selects the null check elimination algorithm.
type Algo uint8

const (
	// AlgoNone disables null check elimination entirely.
	AlgoNone Algo = iota
	// AlgoWhaley is the previous best algorithm (§2.2): forward analysis
	// elimination only.
	AlgoWhaley
	// AlgoNew is the paper's phase 1 (and, when Phase2 is set, phase 2).
	AlgoNew
)

// Config describes one JIT configuration — one row of the paper's tables.
type Config struct {
	Name string

	// Inline enables devirtualization + method inlining before the null
	// check optimizations. InlineBudget overrides the default callee size
	// limit when non-zero (the HotSpot comparator inlines more).
	Inline       bool
	InlineBudget int

	Algo Algo
	// Iterations is how many times the null check algorithm iterates with
	// the other optimizations (Figure 2's loop); minimum 1.
	Iterations int
	// OtherOpts enables bounds check elimination, scalar replacement, copy
	// propagation and DCE in each iteration.
	OtherOpts bool
	// LightScalar restricts scalar replacement to block-local CSE and skips
	// bounds check elimination — the profile of the simulated HotSpot
	// comparator (big inliner, heavy pipeline, no iterated loop machinery).
	LightScalar bool

	// TrapFold folds a check into an immediately following trapping
	// dereference — the pre-paper implicit check lowering used by the
	// baselines (§2.1). Ignored when Phase2 runs.
	TrapFold bool
	// TrapConvert lowers checks through the trap with the full §4.2.2
	// substitutable analysis but without forward motion; the Phase1Only
	// configuration uses it (the paper's phase-1-only row still utilizes
	// hardware traps). Ignored when Phase2 runs.
	TrapConvert bool
	// Phase2 runs the architecture-dependent optimization (§4.2).
	Phase2 bool
	// Phase2Model overrides the trap model phase 2 (and TrapFold) assume;
	// nil means the execution model. The AIX "Illegal Implicit"
	// configuration sets this to the Intel model.
	Phase2Model *arch.Model

	// Speculation allows scalar replacement to hoist reads above null
	// checks when the execution model's reads cannot trap (§3.3.1).
	Speculation bool

	// SkipGuardCheck disables the post-compile safety verification; only
	// the deliberately illegal configuration sets it.
	SkipGuardCheck bool

	// Verify runs the structural IR verifier (internal/irverify) after every
	// pass, reporting the pass, function and offending instruction on the
	// first violation. The TRAPNULL_VERIFY environment variable force-enables
	// it process-wide (ci.sh's hardened gate).
	Verify bool

	// InjectUnsafeSubstitution deliberately weakens the §4.2.2 substitutable
	// elimination from all-paths to any-path coverage — a planted miscompile
	// used by cmd/triage and the triage tests to prove the bisect/shrink
	// machinery catches real optimizer bugs. Never set by a real
	// configuration.
	InjectUnsafeSubstitution bool
}

// Times is the per-phase-family compile time split of Table 4.
type Times struct {
	NullCheckOpt time.Duration
	Other        time.Duration
}

// Total returns the whole compile time.
func (t Times) Total() time.Duration { return t.NullCheckOpt + t.Other }

// Add accumulates o into t.
func (t *Times) Add(o Times) {
	t.NullCheckOpt += o.NullCheckOpt
	t.Other += o.Other
}

// Result is the outcome of compiling one program under one configuration.
type Result struct {
	Config Config
	Times  Times
	Checks nullcheck.Stats
	Inline opt.InlineStats
	Scalar opt.ScalarStats
	// BoundChecksRemoved counts statically removed bounds checks.
	BoundChecksRemoved int
	// FuncsCompiled counts optimized method bodies.
	FuncsCompiled int
	// SpeculatedChecks counts surviving checks flipped into tier-2
	// speculation guards (CompileOptions.Spec); zero for conservative
	// compilations.
	SpeculatedChecks int
	// DemotedChecks counts implicit sites forced back to explicit checks
	// (CompileOptions.Demote); zero for ungoverned compilations.
	DemotedChecks int
}

// CompileOptions tunes one CompileProgramWith call beyond the Config itself.
type CompileOptions struct {
	// Observer attaches the observability layer (trace spans, fate ledgers).
	// Nil (or nil fields) degrades to the exact unobserved compilation.
	Observer *Observer
	// Parallelism caps how many independent methods compile concurrently;
	// values ≤ 1 compile serially in method order. Methods related by the
	// pristine call graph are still ordered exactly as the serial loop would
	// order them, so the compiled artifact is byte-identical at any setting
	// (see parallel.go for the safety argument and DESIGN.md §10).
	Parallelism int
	// Spec, when non-empty, flips the selected surviving checks into tier-2
	// speculation guards after the normal pipeline has run (see
	// speculate.go). Cache keys for speculative compiles must be built with
	// KeySpec so artifacts never collide with conservative ones.
	Spec SpecSet
	// Demote, when non-empty, forces the selected implicit check sites back
	// to explicit checks after the normal pipeline has run (see demote.go).
	// Cache keys for demoted compiles must be built with KeyDemote.
	Demote DemoteSet
	// PassFault, when non-nil, is consulted before every optimization pass;
	// a non-empty return panics inside the pass's containment boundary, so
	// the fault surfaces as a deterministic *PassError exactly like a real
	// pass bug would. The fault-injection harness (internal/faultinject)
	// supplies pure functions of (seed, method, pass) here.
	PassFault func(method, pass string) string
}

// CompileProgram optimizes every method body of prog (in place) under cfg
// for execution on execModel. Workload constructors build a fresh program
// per compilation, so in-place rewriting is safe. Calls on distinct programs
// are safe to run concurrently: all statistics accumulate into the per-call
// Result and neither this package nor the passes it drives keep mutable
// package-level state — the parallel bench harness relies on this.
func CompileProgram(prog *ir.Program, cfg Config, execModel *arch.Model) (*Result, error) {
	return CompileProgramWith(prog, cfg, execModel, CompileOptions{})
}

// CompileProgramObserved is CompileProgram with the observability layer
// attached: pass/function trace spans land in ob.Trace and per-check fate
// ledgers in ob.Remarks.
func CompileProgramObserved(prog *ir.Program, cfg Config, execModel *arch.Model, ob *Observer) (*Result, error) {
	return CompileProgramWith(prog, cfg, execModel, CompileOptions{Observer: ob})
}

// CompileProgramWith is the full-control entry point behind CompileProgram
// and CompileProgramObserved.
func CompileProgramWith(prog *ir.Program, cfg Config, execModel *arch.Model, opts CompileOptions) (*Result, error) {
	var res *Result
	var err error
	if opts.Parallelism > 1 {
		res, err = compileParallel(prog, cfg, execModel, opts)
	} else {
		res, err = compileSerial(prog, cfg, execModel, opts)
	}
	if err != nil {
		return nil, err
	}
	// Trap sites are numbered on every compile so the governor can key its
	// per-site profile on ordinals that survive recompilation; the numbering
	// is a pure function of the (deterministic) compiled body.
	numberTrapSites(prog)
	if len(opts.Demote) > 0 {
		// Demotion, like speculation below, is applied after the whole
		// pipeline has run: no pass ever observes an inserted check, and the
		// demoted body stays block-aligned with the ungoverned compilation
		// of the same pristine program (instructions are inserted, never
		// moved or split across blocks).
		res.DemotedChecks = applyDemotion(prog, opts.Demote)
	}
	if len(opts.Spec) > 0 {
		// Speculation flags are applied after the whole pipeline (including
		// the guard containment check) has run, so no pass ever observes a
		// SpecGuard and the speculative body stays block-for-block aligned
		// with the conservative compilation of the same pristine program.
		res.SpeculatedChecks = applySpeculation(prog, opts.Spec)
	}
	return res, nil
}

// compileSerial is the single-threaded method loop behind CompileProgramWith.
func compileSerial(prog *ir.Program, cfg Config, execModel *arch.Model, opts CompileOptions) (*Result, error) {
	res := &Result{Config: cfg}
	ob := opts.Observer
	for _, m := range prog.Methods {
		if m.Fn == nil {
			continue
		}
		if err := compileFunc(m.Fn, cfg, execModel, res, ob, newLedgerFor(ob, m), opts.PassFault); err != nil {
			return nil, fmt.Errorf("%s: %w", m.QualifiedName(), err)
		}
		res.FuncsCompiled++
	}
	finishProgramStats(prog, res)
	return res, nil
}

// newLedgerFor registers a fate ledger for m's body, or nil when unobserved.
func newLedgerFor(ob *Observer, m *ir.Method) *obs.Ledger {
	if ob == nil || ob.Remarks == nil {
		return nil
	}
	return ob.Remarks.NewLedger(m.Fn, m.QualifiedName())
}

// finishProgramStats recomputes the surviving static check count from the
// final bodies (the per-pass values accumulated by Add double-count across
// iterations).
func finishProgramStats(prog *ir.Program, res *Result) {
	res.Checks.ExplicitRemaining = 0
	for _, m := range prog.Methods {
		if m.Fn != nil {
			res.Checks.ExplicitRemaining += m.Fn.CountOp(ir.OpNullCheck)
		}
	}
}

// compileFunc runs the cfg pipeline on one function body. ledger, when
// non-nil, was pre-registered by the caller (parallel compilation creates
// every ledger up front, in method order, so ledger order never depends on
// worker interleaving). fault is CompileOptions.PassFault (usually nil).
func compileFunc(f *ir.Func, cfg Config, execModel *arch.Model, res *Result, ob *Observer, ledger *obs.Ledger, fault func(method, pass string) string) error {
	verify := cfg.Verify || envVerify
	name := f.Name
	if f.Method != nil {
		name = f.Method.QualifiedName()
	}
	if ledger != nil {
		f.Track = ledger
		defer func() { f.Track = nil }()
	}
	var fnStart time.Time
	if ob.tracing() {
		fnStart = time.Now()
		defer func() {
			ob.Trace.Span(ob.TID, "compile", name, fnStart, time.Since(fnStart),
				map[string]any{"instrs": f.NumInstrs(), "config": cfg.Name})
		}()
	}
	for _, p := range pipeline(cfg, execModel) {
		if ledger != nil {
			ledger.BeginPass(p.name)
		}
		if fault != nil {
			// Injected faults panic inside runPass's containment boundary,
			// so they surface as deterministic *PassError values exactly
			// like organic pass bugs.
			run, pname := p.run, p.name
			p.run = func(f *ir.Func, res *Result) {
				if msg := fault(name, pname); msg != "" {
					panic(msg)
				}
				run(f, res)
			}
		}
		if err := runPass(p, f, res, verify, nil, ob); err != nil {
			return err
		}
		if ledger != nil {
			ledger.Sync()
		}
	}
	if ledger != nil {
		ledger.Finish()
	}
	if !verify {
		// The verified path already checked after every pass, including the
		// last one; the fast path keeps the original single post-pipeline
		// validation.
		if err := ir.Validate(f); err != nil {
			return fmt.Errorf("invalid after optimization: %w", err)
		}
	}
	if !cfg.SkipGuardCheck {
		if err := checkGuardsContained(f, execModel); err != nil {
			return err
		}
	}
	return nil
}
