package jit

import (
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/irverify"
	"trapnull/internal/nullcheck"
	"trapnull/internal/opt"
)

// envVerify force-enables per-pass IR verification for a whole process:
// `TRAPNULL_VERIFY=1 go test ./...` is ci.sh's verifier-enabled gate. It is
// read once at init, so concurrent compilations observe a constant.
var envVerify = os.Getenv("TRAPNULL_VERIFY") != ""

// pass is one named step of the compilation pipeline.
type pass struct {
	name string
	// null accounts the pass's time to Times.NullCheckOpt (Table 4's split);
	// everything else bills to Times.Other.
	null bool
	run  func(f *ir.Func, res *Result)
}

// pipeline assembles the ordered pass list for one configuration. Both
// CompileProgram and CompileFuncObserved execute exactly this list, so the
// production pipeline and the observed/bisected one can never drift apart.
func pipeline(cfg Config, execModel *arch.Model) []pass {
	trapModel := cfg.Phase2Model
	if trapModel == nil {
		trapModel = execModel
	}
	// Scalar replacement consults SpeculativeReads; the configuration
	// decides whether that capability is used at all.
	scalarModel := *execModel
	scalarModel.SpeculativeReads = execModel.SpeculativeReads && cfg.Speculation

	var ps []pass
	add := func(name string, null bool, run func(*ir.Func, *Result)) {
		ps = append(ps, pass{name: name, null: null, run: run})
	}

	if cfg.Inline {
		budget := cfg.InlineBudget
		if budget == 0 {
			budget = opt.InlineBudget
		}
		add("inline", false, func(f *ir.Func, res *Result) {
			res.Inline.Add(opt.InlineWithBudget(f, execModel, budget))
		})
	}
	if cfg.OtherOpts {
		// Rotate top-tested loops into the guarded do-while shape before
		// any PRE runs: anticipability needs bodies on every path.
		add("rotate", false, func(f *ir.Func, res *Result) {
			opt.RotateLoops(f)
		})
	}

	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		switch cfg.Algo {
		case AlgoWhaley:
			add(fmt.Sprintf("whaley#%d", i), true, func(f *ir.Func, res *Result) {
				res.Checks.Add(nullcheck.Whaley(f))
			})
		case AlgoNew:
			add(fmt.Sprintf("phase1#%d", i), true, func(f *ir.Func, res *Result) {
				res.Checks.Add(nullcheck.Phase1(f))
			})
		}
		if cfg.OtherOpts {
			add(fmt.Sprintf("copyprop#%d", i), false, func(f *ir.Func, res *Result) {
				opt.CopyProp(f)
			})
			add(fmt.Sprintf("constfold#%d", i), false, func(f *ir.Func, res *Result) {
				opt.ConstFold(f)
			})
			if cfg.LightScalar {
				add(fmt.Sprintf("cse#%d", i), false, func(f *ir.Func, res *Result) {
					res.Scalar.Add(opt.ScalarStats{CSE: opt.CSE(f)})
				})
			} else {
				add(fmt.Sprintf("boundelim#%d", i), false, func(f *ir.Func, res *Result) {
					res.BoundChecksRemoved += opt.BoundCheckElim(f)
				})
				add(fmt.Sprintf("scalar#%d", i), false, func(f *ir.Func, res *Result) {
					res.Scalar.Add(opt.ScalarReplace(f, &scalarModel))
				})
			}
			add(fmt.Sprintf("dce#%d", i), false, func(f *ir.Func, res *Result) {
				opt.DCE(f)
			})
		}
	}

	switch {
	case cfg.Phase2:
		add("phase2", true, func(f *ir.Func, res *Result) {
			if cfg.InjectUnsafeSubstitution {
				res.Checks.Add(nullcheck.Phase2UnsafeSubst(f, trapModel))
			} else {
				res.Checks.Add(nullcheck.Phase2(f, trapModel))
			}
		})
	case cfg.TrapConvert:
		add("trapconvert", true, func(f *ir.Func, res *Result) {
			if cfg.InjectUnsafeSubstitution {
				res.Checks.Implicit += nullcheck.ConvertToTrapsAnyPath(f, trapModel)
			} else {
				res.Checks.Implicit += nullcheck.ConvertToTraps(f, trapModel)
			}
		})
	case cfg.TrapFold:
		add("trapfold", true, func(f *ir.Func, res *Result) {
			res.Checks.Implicit += nullcheck.FoldAdjacentTraps(f, trapModel)
		})
	}

	add("cleanup", false, func(f *ir.Func, res *Result) {
		opt.CopyProp(f)
		opt.ConstFold(f)
		opt.DCE(f)
		opt.SimplifyCFG(f)
	})
	return ps
}

// runPass executes one pass with full containment: a panic inside the pass
// becomes a *PassError carrying the pass name, function, IR dump and stack
// instead of unwinding the caller, and — when verify is set — the structural
// verifier runs on the result so a silently-corrupting pass is caught at the
// boundary it crossed. The observer, if any, sees the function after the
// pass (and after verification, so it only ever sees verified IR). When ob
// carries a trace, the pass is wrapped in a span recording its wall time, IR
// size before/after, and — when the verifier ran — the verification time.
func runPass(p pass, f *ir.Func, res *Result, verify bool, po PassObserver, ob *Observer) (err error) {
	start := time.Now()
	tracing := ob.tracing()
	irBefore := 0
	if tracing {
		irBefore = f.NumInstrs()
	}
	defer func() {
		if p.null {
			res.Times.NullCheckOpt += time.Since(start)
		} else {
			res.Times.Other += time.Since(start)
		}
	}()

	func() {
		defer func() {
			if r := recover(); r != nil {
				err = &PassError{
					Pass:    p.name,
					Func:    f.Name,
					IRDump:  safeDump(f),
					Panic:   r,
					Stack:   debug.Stack(),
					Elapsed: time.Since(start),
				}
			}
		}()
		p.run(f, res)
	}()
	if err != nil {
		return err
	}

	var verifyTime time.Duration
	if verify {
		v0 := time.Now()
		verr := irverify.Func(f)
		verifyTime = time.Since(v0)
		if verr != nil {
			return &PassError{Pass: p.name, Func: f.Name, IRDump: safeDump(f), Err: verr, Elapsed: time.Since(start)}
		}
	}
	if tracing {
		args := map[string]any{"ir_before": irBefore, "ir_after": f.NumInstrs()}
		if verify {
			args["verify_us"] = float64(verifyTime) / float64(time.Microsecond)
		}
		ob.Trace.Span(ob.TID, "pass", p.name, start, time.Since(start), args)
	}
	if po != nil {
		if oerr := po(p.name, f, time.Since(start)); oerr != nil {
			return fmt.Errorf("after %s: %w", p.name, oerr)
		}
	}
	return nil
}

// safeDump renders the function, tolerating IR so corrupt that printing
// itself panics.
func safeDump(f *ir.Func) (dump string) {
	defer func() {
		if recover() != nil {
			dump = "<IR unprintable>"
		}
	}()
	return f.String()
}

// checkGuardsContained runs the post-compile safety verification with the
// same panic containment as a pass.
func checkGuardsContained(f *ir.Func, execModel *arch.Model) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PassError{
				Pass:   "guardcheck",
				Func:   f.Name,
				IRDump: safeDump(f),
				Panic:  r,
				Stack:  debug.Stack(),
			}
		}
	}()
	return nullcheck.CheckGuards(f, execModel)
}
