package jit

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/nullcheck"
)

// sample builds a small program with a loop, a virtual accessor, and an
// array walk — enough surface for every pipeline stage to do something.
func sample() (*ir.Program, *ir.Func) {
	p := ir.NewProgram("sample")
	cls := p.NewClass("C",
		&ir.Field{Name: "f", Kind: ir.KindInt},
	)
	gb := ir.NewFunc("getF", true)
	this := gb.Param("this", ir.KindRef)
	gb.Result(ir.KindInt)
	gb.Block("entry")
	gv := gb.Temp(ir.KindInt)
	gb.GetField(gv, this, cls.FieldByName("f"))
	gb.Return(ir.Var(gv))
	getF := p.AddMethod(cls, "getF", gb.Finish(), true)

	b := ir.NewFunc("main", false)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)
	o := b.Local("o", ir.KindRef)
	a := b.Local("a", ir.KindRef)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")
	b.SetBlock(entry)
	b.New(o, cls)
	b.PutField(o, cls.FieldByName("f"), ir.ConstInt(3))
	b.NewArray(a, ir.ConstInt(8))
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	v := b.Temp(ir.KindInt)
	b.CallVirtual(v, getF, o)
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	idx := b.Temp(ir.KindInt)
	b.Binop(ir.OpAnd, idx, ir.Var(i), ir.ConstInt(7))
	b.ArrayStore(a, ir.Var(idx), ir.Var(s))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	fn := b.Finish()
	p.AddMethod(nil, "main", fn, false)
	return p, fn
}

func allConfigs() []Config {
	return append(WindowsConfigs(), AIXConfigs()...)
}

func TestConfigNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range allConfigs() {
		if seen[c.Name] {
			t.Fatalf("duplicate config name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestCompileAllConfigsOnSample(t *testing.T) {
	for _, cfg := range WindowsConfigs() {
		p, _ := sample()
		res, err := CompileProgram(p, cfg, arch.IA32Win())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.FuncsCompiled != 2 {
			t.Fatalf("%s: compiled %d funcs, want 2", cfg.Name, res.FuncsCompiled)
		}
		if res.Times.Total() <= 0 {
			t.Fatalf("%s: no compile time measured", cfg.Name)
		}
	}
	for _, cfg := range AIXConfigs() {
		p, _ := sample()
		if _, err := CompileProgram(p, cfg, arch.PPCAIX()); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestCompileIsDeterministic(t *testing.T) {
	for _, cfg := range allConfigs() {
		model := arch.IA32Win()
		if strings.Contains(cfg.Name, "Spec") || strings.Contains(cfg.Name, "NoNullCheckOpt") || strings.Contains(cfg.Name, "Illegal") {
			model = arch.PPCAIX()
		}
		p1, f1 := sample()
		p2, f2 := sample()
		if _, err := CompileProgram(p1, cfg, model); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if _, err := CompileProgram(p2, cfg, model); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if f1.String() != f2.String() {
			t.Fatalf("%s: nondeterministic compilation:\n%s\n---\n%s", cfg.Name, f1, f2)
		}
	}
}

func TestFullConfigRemovesAllChecksOnSample(t *testing.T) {
	p, fn := sample()
	res, err := CompileProgram(p, ConfigPhase1Phase2(), arch.IA32Win())
	if err != nil {
		t.Fatal(err)
	}
	// Every check in the hot loop is either eliminated (receiver allocated
	// locally) or converted to a trap; none should survive as instructions.
	if got := fn.CountOp(ir.OpNullCheck); got != 0 {
		t.Fatalf("%d explicit checks survive:\n%s", got, fn)
	}
	if res.Checks.ExplicitRemaining != 0 {
		t.Fatalf("stats disagree: ExplicitRemaining = %d", res.Checks.ExplicitRemaining)
	}
}

func TestNoNullOptKeepsEveryCheck(t *testing.T) {
	p, fn := sample()
	before := fn.CountOp(ir.OpNullCheck)
	if _, err := CompileProgram(p, ConfigNoNullOptNoTrap(), arch.IA32Win()); err != nil {
		t.Fatal(err)
	}
	// Inlining may add the devirtualization guard; nothing may be removed.
	if got := fn.CountOp(ir.OpNullCheck); got < before {
		t.Fatalf("baseline removed checks: %d -> %d", before, got)
	}
}

func TestIllegalImplicitSkipsGuardCheck(t *testing.T) {
	// The illegal configuration compiles code that the guard checker would
	// reject on the AIX model; CompileProgram must not reject it.
	p, fn := sample()
	cfg := ConfigAIXIllegalImplicit()
	if _, err := CompileProgram(p, cfg, arch.PPCAIX()); err != nil {
		t.Fatalf("illegal config rejected: %v", err)
	}
	// And it really is illegal: the checker flags it.
	hasViolation := nullcheck.CheckGuards(fn, arch.PPCAIX()) != nil
	hasMarks := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.ExcSite {
				hasMarks = true
			}
		}
	}
	if !hasMarks {
		t.Fatal("illegal config produced no implicit marks at all")
	}
	if !hasViolation {
		t.Log("note: sample happened to stay legal on AIX (all reads guarded)")
	}
}

func TestPhase2ModelDefaultsToExecModel(t *testing.T) {
	// On AIX with phase 2 enabled and no override, writes become implicit
	// but reads stay explicit.
	p, fn := sample()
	cfg := Config{
		Name:   "aix-p2",
		Inline: true,
		Algo:   AlgoNew, Iterations: 1,
		OtherOpts: true,
		Phase2:    true,
	}
	if _, err := CompileProgram(p, cfg, arch.PPCAIX()); err != nil {
		t.Fatal(err)
	}
	if err := nullcheck.CheckGuards(fn, arch.PPCAIX()); err != nil {
		t.Fatalf("phase2 with default model violated AIX guards: %v", err)
	}
}

func TestIterationsClampedToOne(t *testing.T) {
	p, _ := sample()
	cfg := ConfigPhase1Phase2()
	cfg.Iterations = 0
	if _, err := CompileProgram(p, cfg, arch.IA32Win()); err != nil {
		t.Fatalf("zero iterations: %v", err)
	}
}
