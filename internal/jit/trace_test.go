package jit

import (
	"errors"
	"strings"
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

func TestObservedPipelineVisitsEveryPass(t *testing.T) {
	_, fn := sample()
	var passes []string
	err := CompileFuncObserved(fn, ConfigPhase1Phase2(), arch.IA32Win(),
		func(pass string, f *ir.Func, _ time.Duration) error {
			passes = append(passes, pass)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(passes, " ")
	for _, want := range []string{"inline", "rotate", "phase1#0", "copyprop#0",
		"constfold#0", "boundelim#0", "scalar#0", "dce#0", "phase2", "cleanup"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("pass %q not observed in %q", want, joined)
		}
	}
}

func TestObservedPipelineMatchesCompileProgram(t *testing.T) {
	// The observed pipeline must produce the identical function as the
	// production one.
	for _, cfg := range WindowsConfigs() {
		p1, f1 := sample()
		if _, err := CompileProgram(p1, cfg, arch.IA32Win()); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		p2, f2 := sample()
		// CompileProgram compiles the accessor method too; do the same.
		for _, m := range p2.Methods {
			if m.Fn != nil && m.Fn != f2 {
				if err := CompileFuncObserved(m.Fn, cfg, arch.IA32Win(), nil); err != nil {
					t.Fatalf("%s: callee: %v", cfg.Name, err)
				}
			}
		}
		if err := CompileFuncObserved(f2, cfg, arch.IA32Win(), nil); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if f1.String() != f2.String() {
			t.Fatalf("%s: observed pipeline diverges from CompileProgram:\n%s\n---\n%s",
				cfg.Name, f1, f2)
		}
	}
}

func TestObserverErrorStopsPipeline(t *testing.T) {
	_, fn := sample()
	boom := errors.New("stop here")
	err := CompileFuncObserved(fn, ConfigPhase1Phase2(), arch.IA32Win(),
		func(pass string, f *ir.Func, _ time.Duration) error {
			if strings.HasPrefix(pass, "phase1") {
				return boom
			}
			return nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped observer error", err)
	}
	if !strings.Contains(err.Error(), "phase1") {
		t.Fatalf("error %q does not name the pass", err)
	}
}
