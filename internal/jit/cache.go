// Content-addressed compilation cache.
//
// A sweep (bench.Run) and a triage session compile the same (program,
// configuration, model) triple over and over: every CompileReps repetition,
// every bisection replay, every delta-debug oracle call re-runs the whole
// pass pipeline on an identical input. Compilation is deterministic — same
// input program, same effective configuration, same models, same output IR —
// so the triple is a perfect cache key. The cache stores the compiled
// program together with its immutable *Result (and fate ledger, when the
// compile was observed); callers re-attribute per-cell statistics from the
// shared entry instead of recompiling.
//
// Key construction (see DESIGN.md §10 for the full projection rules):
//
//   - Program: a SHA-256 over a canonical encoding of the ENTIRE pristine
//     program — classes, field layouts, method signatures and every
//     instruction of every body. Two programs with the same digest compile
//     identically under the same projection.
//   - Proj: the projection of jit.Config onto the fields that can change
//     generated code, with defaults applied ("effective" values) so configs
//     spelled differently but compiled identically share entries.
//   - Model: the execution model NAME (models are identified by name;
//     comparing pointers would split identical configurations).
package jit

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"sort"
	"sync"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/obs"
	"trapnull/internal/opt"
)

// Projection is the subset of Config that can affect the generated code.
// Every field holds the EFFECTIVE value the pipeline would use, not the raw
// Config field: defaults applied, ignored knobs normalized away. Config
// fields deliberately excluded:
//
//   - Name: a display label; never consulted by any pass.
//   - Verify: the structural verifier is read-only — it never mutates IR, it
//     can only turn a silently-corrupting compile into an error, and errors
//     are never cached. (A planted bug that produces structurally VALID but
//     wrong IR is invisible to the verifier either way.)
//   - TrapFold/TrapConvert/Phase2 raw flags: collapsed into Lowering by the
//     pipeline's precedence (Phase2 > TrapConvert > TrapFold).
//   - Phase2Model: collapsed into TrapModel (its NAME, nil → execution
//     model), and only when some lowering actually consults it.
//   - Speculation: collapsed into the effective conjunction with the
//     execution model's SpeculativeReads, exactly as pipeline() computes the
//     scalar-replacement model.
type Projection struct {
	Inline       bool
	InlineBudget int // effective (default applied); 0 when !Inline
	Algo         Algo
	Iterations   int // effective, ≥ 1
	OtherOpts    bool
	LightScalar  bool
	// Lowering is which trap lowering runs: "phase2", "trapconvert",
	// "trapfold" or "" (none), after the pipeline's precedence.
	Lowering string
	// TrapModel is the name of the model the lowering assumes ("" when no
	// lowering runs).
	TrapModel string
	// Speculation is the effective cfg.Speculation && model.SpeculativeReads.
	Speculation              bool
	SkipGuardCheck           bool
	InjectUnsafeSubstitution bool
}

// ProjectConfig computes cfg's projection for execution on execModel.
func ProjectConfig(cfg Config, execModel *arch.Model) Projection {
	p := Projection{
		Inline:                   cfg.Inline,
		Algo:                     cfg.Algo,
		Iterations:               cfg.Iterations,
		OtherOpts:                cfg.OtherOpts,
		LightScalar:              cfg.LightScalar,
		Speculation:              cfg.Speculation && execModel.SpeculativeReads,
		SkipGuardCheck:           cfg.SkipGuardCheck,
		InjectUnsafeSubstitution: cfg.InjectUnsafeSubstitution,
	}
	if cfg.Inline {
		p.InlineBudget = cfg.InlineBudget
		if p.InlineBudget == 0 {
			p.InlineBudget = opt.InlineBudget
		}
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	switch {
	case cfg.Phase2:
		p.Lowering = "phase2"
	case cfg.TrapConvert:
		p.Lowering = "trapconvert"
	case cfg.TrapFold:
		p.Lowering = "trapfold"
	}
	if p.Lowering != "" {
		if cfg.Phase2Model != nil {
			p.TrapModel = cfg.Phase2Model.Name
		} else {
			p.TrapModel = execModel.Name
		}
	}
	return p
}

// CacheKey identifies one deterministic compilation. It is a comparable
// value type, usable directly as a map key.
type CacheKey struct {
	Program [sha256.Size]byte
	Proj    Projection
	Model   string // execution model name
	// Spec is the canonical speculation set (SpecSet.Canon); "" is the
	// conservative compilation. Including it keys speculative artifacts
	// separately from conservative ones — and from each other per distinct
	// speculation set — so a tier-2 recompile can never serve (or poison)
	// a conservative lookup.
	Spec string
	// Demote is the canonical demotion set (DemoteSet.Canon); "" is the
	// ungoverned compilation. Each governed recompile keys its own artifact,
	// so the governor's degradation ladder never aliases cache entries.
	Demote string
}

// ID renders the key as a deterministic, human-readable string. The
// fault-injection harness keys its schedule decisions on it, so the same
// compilation draws the same faults regardless of which sweep cell reaches
// it first.
func (k CacheKey) ID() string {
	return fmt.Sprintf("%x|%s|%+v|spec=%s|demote=%s",
		k.Program[:8], k.Model, k.Proj, k.Spec, k.Demote)
}

// Key builds the cache key for compiling prog under cfg on execModel. The
// program must be in its PRISTINE (pre-compilation) state: hashing an
// already-optimized program would key the output by itself.
func Key(prog *ir.Program, cfg Config, execModel *arch.Model) CacheKey {
	return CacheKey{Program: HashProgram(prog), Proj: ProjectConfig(cfg, execModel), Model: execModel.Name}
}

// HashProgram computes the canonical content digest of a program. The
// encoding covers everything compilation can observe: class layouts, method
// order and signatures, local kinds, block structure (IDs, try regions) and
// every instruction field, with strings length-prefixed and block references
// by ID. Host pointers never enter the hash, so structurally identical
// programs digest identically across processes.
func HashProgram(p *ir.Program) [sha256.Size]byte {
	h := sha256.New()
	e := &hashEnc{h: h}
	e.str(p.Name)
	e.i64(int64(len(p.Classes)))
	for _, c := range p.Classes {
		e.str(c.Name)
		e.i64(int64(c.ID))
		e.i64(int64(c.SizeBytes))
		e.i64(int64(len(c.Fields)))
		for _, f := range c.Fields {
			e.str(f.Name)
			e.u8(uint8(f.Kind))
			e.i64(int64(f.Offset))
		}
		// Virtual slots by qualified name; the bodies hash below under the
		// program-level method list.
		e.i64(int64(len(c.Methods)))
		for _, m := range c.Methods {
			e.str(m.QualifiedName())
		}
	}
	e.i64(int64(len(p.Methods)))
	for _, m := range p.Methods {
		e.str(m.QualifiedName())
		e.bool(m.Virtual)
		e.u8(uint8(m.Intrinsic))
		if m.Fn == nil {
			e.bool(false)
			continue
		}
		e.bool(true)
		e.fn(m.Fn)
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// hashEnc streams the canonical encoding into a hash with a small reused
// scratch buffer.
type hashEnc struct {
	h   hash.Hash
	buf [8]byte
}

func (e *hashEnc) u8(v uint8) {
	e.buf[0] = v
	e.h.Write(e.buf[:1])
}

func (e *hashEnc) i64(v int64) {
	binary.LittleEndian.PutUint64(e.buf[:], uint64(v))
	e.h.Write(e.buf[:8])
}

func (e *hashEnc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *hashEnc) str(s string) {
	e.i64(int64(len(s)))
	e.h.Write([]byte(s))
}

func (e *hashEnc) fn(f *ir.Func) {
	e.str(f.Name)
	e.i64(int64(f.NumParams))
	e.bool(f.IsInstance)
	e.bool(f.HasResult)
	e.u8(uint8(f.ResultKind))
	e.i64(int64(len(f.Locals)))
	for _, l := range f.Locals {
		e.str(l.Name)
		e.u8(uint8(l.Kind))
	}
	e.i64(int64(len(f.Regions)))
	for _, r := range f.Regions {
		e.i64(int64(r.ID))
		e.i64(int64(r.Handler.ID))
		e.i64(int64(r.ExcVar))
	}
	entry := int64(-1)
	if f.Entry != nil {
		entry = int64(f.Entry.ID)
	}
	e.i64(entry)
	e.i64(int64(len(f.Blocks)))
	for _, b := range f.Blocks {
		e.i64(int64(b.ID))
		e.str(b.Name)
		e.i64(int64(b.Try))
		e.i64(int64(len(b.Instrs)))
		for _, in := range b.Instrs {
			e.instr(in)
		}
	}
}

func (e *hashEnc) instr(in *ir.Instr) {
	e.u8(uint8(in.Op))
	e.i64(int64(in.Dst))
	e.i64(int64(len(in.Args)))
	for _, a := range in.Args {
		e.u8(uint8(a.Kind))
		e.i64(int64(a.Var))
		e.i64(a.Int)
		e.i64(int64(math.Float64bits(a.Float)))
	}
	if in.Field != nil {
		e.bool(true)
		e.str(in.Field.String())
		e.i64(int64(in.Field.Offset))
	} else {
		e.bool(false)
	}
	if in.Class != nil {
		e.bool(true)
		e.str(in.Class.Name)
	} else {
		e.bool(false)
	}
	if in.Callee != nil {
		e.bool(true)
		e.str(in.Callee.QualifiedName())
	} else {
		e.bool(false)
	}
	e.u8(uint8(in.Cond))
	e.u8(uint8(in.Fn))
	e.i64(int64(len(in.Targets)))
	for _, t := range in.Targets {
		e.i64(int64(t.ID))
	}
	e.u8(uint8(in.Reason))
	e.bool(in.Explicit)
	e.bool(in.ExcSite)
	e.i64(int64(in.ExcVar))
	e.bool(in.Speculated)
	e.i64(int64(in.SpecGuard))
}

// CacheEntry is one cached compilation. Entries are shared between every
// cell that hits the key, so ALL fields are immutable after insertion:
// callers must not mutate the program's IR (execution never does — machines
// keep their own decoded tables) and must treat Result and Remarks as
// read-only. The bench tests deep-freeze an entry and verify a sweep leaves
// it untouched.
type CacheEntry struct {
	// Program is the COMPILED program (bodies optimized under the key's
	// projection).
	Program *ir.Program
	// Result is the compile result; per-cell statistics are re-derived from
	// it, never accumulated into it.
	Result *Result
	// Remarks is the fate ledger of the observed compile, or nil when the
	// compile ran unobserved. Cells re-attribute fates from it so a cached
	// compile reports the same histogram as a fresh one.
	Remarks *obs.Remarks
}

// CacheStats counts cache traffic. With single-flight coalescing the split
// is deterministic for a deterministic workload: misses = distinct keys
// compiled, hits = everything else, regardless of worker interleaving.
type CacheStats struct {
	Lookups   int64
	Hits      int64
	Misses    int64
	Evictions int64
	// InjectedFaults counts cache-slot faults (evictions/corruptions) fired
	// by an attached FaultPolicy. Every fired fault is repaired transparently
	// by recompiling, so it perturbs traffic counters but never outcomes.
	InjectedFaults int64
	// SingleFlightWaits counts lookups that blocked on another caller's
	// in-flight compile. Unlike the hit/miss split (deterministic under
	// single-flight), this depends on worker interleaving — it feeds the
	// VOLATILE metrics only, never a deterministic artifact.
	SingleFlightWaits int64
}

// CacheEvent is one aggregated cache lifecycle event for the telemetry
// timeline: how many times Kind happened to Key. Kinds: "evict" (capacity
// eviction), "fault-evict" and "fault-corrupt" (armed chaos faults firing).
type CacheEvent struct {
	Key   string `json:"key"`
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// CacheFaultPolicy injects deterministic cache-slot faults for chaos testing.
// Decisions must be pure functions of the key ID (CacheKey.ID): the policy is
// consulted when an entry completes, arming at most one fault per key for the
// cache's lifetime. An armed fault fires on the next lookup that would have
// hit the entry: an eviction silently drops the slot, a corruption models a
// poisoned artifact that integrity-checking detects and discards. Both repair
// the same way — the victim recompiles — so a faulted run reaches the exact
// outcomes of a clean one; only CacheStats traffic differs.
type CacheFaultPolicy struct {
	Evict   func(keyID string) bool
	Corrupt func(keyID string) bool
}

// SetFaultPolicy attaches (or clears, with nil) the fault policy.
func (c *Cache) SetFaultPolicy(p *CacheFaultPolicy) {
	c.mu.Lock()
	c.fault = p
	c.mu.Unlock()
}

// DefaultCacheCapacity bounds a sweep-scoped cache. A full quick sweep
// produces at most configs × workloads distinct keys per matrix (≤ 42), so
// the default never evicts in practice; the bound is a safety valve for
// open-ended callers (fuzz loops feeding one cache forever).
const DefaultCacheCapacity = 256

// Cache is a bounded, concurrency-safe, single-flight compilation cache.
// Concurrent lookups of the same key coalesce: one caller compiles, the
// rest wait and count as hits. Eviction is clock/second-chance over
// completed entries (in-flight compilations are never evicted), driven
// purely by insertion and access order.
type Cache struct {
	mu    sync.Mutex
	cap   int
	slots map[CacheKey]*cacheSlot
	// Eviction ring over completed keys.
	ring []CacheKey
	ref  []bool
	hand int
	st   CacheStats
	// Chaos testing: fault is the active policy (usually nil); faulted
	// remembers keys whose armed fault already fired, enforcing
	// at-most-once per key.
	fault   *CacheFaultPolicy
	faulted map[CacheKey]bool
	// evlog aggregates lifecycle events (evictions, fired faults) per
	// (key ID, kind) for EventLog. Bounded by distinct keys × kinds.
	evlog map[CacheEvent]int64
}

// noteEvent aggregates one lifecycle event. Caller holds c.mu.
func (c *Cache) noteEvent(key CacheKey, kind string) {
	if c.evlog == nil {
		c.evlog = make(map[CacheEvent]int64)
	}
	c.evlog[CacheEvent{Key: key.ID(), Kind: kind}]++
}

// EventLog returns the aggregated lifecycle events sorted by (key, kind) —
// a deterministic digest for the telemetry timeline: which entries were
// evicted or chaos-faulted, and how often.
func (c *Cache) EventLog() []CacheEvent {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]CacheEvent, 0, len(c.evlog))
	for ev, n := range c.evlog {
		ev.Count = n
		out = append(out, ev)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

type cacheSlot struct {
	ready chan struct{} // closed when entry/err are set
	entry *CacheEntry
	err   error
	// armedFault is non-zero when the fault policy armed an injected fault
	// on this completed slot (1 = evict, 2 = corrupt). It fires on the next
	// lookup that would hit the slot.
	armedFault uint8
}

// NewCache returns a cache bounded to capacity entries (0 → default).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{cap: capacity, slots: make(map[CacheKey]*cacheSlot)}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// Len returns the number of completed entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ring)
}

// GetOrCompile returns the entry for key, invoking compile exactly once per
// distinct key (single flight) on the calling goroutine. The boolean
// reports whether this call was served from cache (or by waiting on another
// caller's in-flight compile — both avoid compiling here). needRemarks
// demands an entry carrying a fate ledger: a hit whose entry lacks one is
// upgraded by recompiling (counted as a miss). Errors are returned to every
// coalesced waiter but never cached — the slot is removed so a later lookup
// retries.
func (c *Cache) GetOrCompile(key CacheKey, needRemarks bool, compile func() (*CacheEntry, error)) (*CacheEntry, bool, error) {
	c.mu.Lock()
	c.st.Lookups++
	if s, ok := c.slots[key]; ok {
		select {
		case <-s.ready:
		default:
			// Another caller's compile is in flight; we are about to block on
			// it. Interleaving-dependent, so this feeds volatile metrics only.
			c.st.SingleFlightWaits++
		}
		c.mu.Unlock()
		<-s.ready
		c.mu.Lock()
		if s.err != nil {
			// The flight failed; we coalesced onto it, so we share its error
			// rather than recompiling (bench error cells stay deterministic
			// under any worker count).
			c.st.Hits++
			c.mu.Unlock()
			return nil, false, s.err
		}
		if s.armedFault != 0 {
			// An armed injected fault fires (at most once per key): the slot
			// is dropped — an eviction loses it outright, a corruption is a
			// poisoned artifact detected and discarded — and this lookup
			// repairs it by recompiling below. Outcomes are unaffected.
			c.st.InjectedFaults++
			if s.armedFault == 1 {
				c.noteEvent(key, "fault-evict")
			} else {
				c.noteEvent(key, "fault-corrupt")
			}
			if c.faulted == nil {
				c.faulted = make(map[CacheKey]bool)
			}
			c.faulted[key] = true
		} else if !needRemarks || s.entry.Remarks != nil {
			c.st.Hits++
			c.touch(key)
			c.mu.Unlock()
			return s.entry, true, nil
		}
		// Entry predates an observed sweep sharing this cache (or its armed
		// fault just fired). Fall through (mutex held) and replace it by
		// recompiling; the replacement serves every caller from then on.
	}

	// Mutex held on both paths (not found, or found-but-needs-upgrade).
	// Replacing an upgraded key's slot is safe: the old slot's waiters hold
	// their own channel and drain normally.
	s := &cacheSlot{ready: make(chan struct{})}
	c.slots[key] = s
	c.st.Misses++
	c.mu.Unlock()

	entry, err := compile()
	s.entry, s.err = entry, err
	c.mu.Lock()
	if err != nil {
		// Never cache failures; only remove our own slot (an even newer
		// flight may have replaced it already).
		if c.slots[key] == s {
			delete(c.slots, key)
		}
	} else {
		c.insert(key)
		c.armFault(key, s)
	}
	c.mu.Unlock()
	close(s.ready)
	return entry, false, err
}

// armFault consults the fault policy for a freshly completed entry, arming
// at most one injected fault per key per cache lifetime. Caller holds c.mu.
func (c *Cache) armFault(key CacheKey, s *cacheSlot) {
	if c.fault == nil || c.faulted[key] {
		return
	}
	id := key.ID()
	switch {
	case c.fault.Evict != nil && c.fault.Evict(id):
		s.armedFault = 1
	case c.fault.Corrupt != nil && c.fault.Corrupt(id):
		s.armedFault = 2
	}
}

// touch marks key recently used. Caller holds c.mu.
func (c *Cache) touch(key CacheKey) {
	for i, k := range c.ring {
		if k == key {
			c.ref[i] = true
			return
		}
	}
}

// insert records a completed key in the eviction ring, evicting one cold
// completed entry when the bound is reached. Caller holds c.mu.
func (c *Cache) insert(key CacheKey) {
	for _, k := range c.ring {
		if k == key {
			return // replacement of an existing completed entry
		}
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, key)
		c.ref = append(c.ref, false)
		return
	}
	for c.ref[c.hand] {
		c.ref[c.hand] = false
		c.hand = (c.hand + 1) % c.cap
	}
	victim := c.ring[c.hand]
	// Evict only completed slots; an in-flight slot under the same key has
	// already replaced the map entry and must not be dropped.
	if s, ok := c.slots[victim]; ok {
		select {
		case <-s.ready:
			delete(c.slots, victim)
		default:
		}
	}
	c.st.Evictions++
	c.noteEvent(victim, "evict")
	c.ring[c.hand] = key
	c.ref[c.hand] = false
	c.hand = (c.hand + 1) % c.cap
}
