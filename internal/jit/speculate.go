// Tier-2 speculative compilation input.
//
// The tier controller (internal/machine) watches per-check null profiles on
// the conservative tier-1 artifact; checks that executed often enough with
// zero observed nulls become speculation candidates. The controller hands the
// candidate set here as a SpecSet — method qualified name → ordinals of the
// surviving checks in ir.Func.NullChecks order — and the pipeline applies it
// AFTER the normal pass list has run, flipping each selected check into a
// speculation guard (Instr.SpecGuard = ordinal+1).
//
// The application is deliberately a flag flip and nothing more: block
// structure, instruction order and every other field are untouched, so the
// speculative artifact is block-for-block aligned with the conservative one.
// That alignment is what makes on-stack replacement (tier promotion) and
// trap-triggered deoptimization exact state transfers, and it is also why
// ordinals computed on the conservative body apply cleanly to the speculative
// recompile of the same pristine program: compilation is deterministic, so
// both bodies are identical before the flags are set.
package jit

import (
	"sort"
	"strconv"
	"strings"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

// SpecSet maps a method's qualified name to the ordinals (Func.NullChecks
// order) of the checks to speculate. A nil or empty set is the conservative
// compilation.
type SpecSet map[string][]int

// Canon renders the set in its canonical form: methods sorted by name,
// ordinals sorted ascending and deduplicated, e.g. "A.main:0,2;B.get:1".
// The empty string is the conservative (no-speculation) compilation. The
// canonical form enters the cache key, so speculative and conservative
// artifacts — and any two distinct speculation sets — can never collide.
func (s SpecSet) Canon() string {
	if len(s) == 0 {
		return ""
	}
	names := make([]string, 0, len(s))
	for name, ords := range s {
		if len(ords) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte(':')
		ords := append([]int(nil), s[name]...)
		sort.Ints(ords)
		prev := -1
		first := true
		for _, o := range ords {
			if o == prev {
				continue
			}
			prev = o
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(strconv.Itoa(o))
		}
	}
	return b.String()
}

// KeySpec builds the cache key for compiling prog under cfg on execModel with
// the given speculation set. Key(prog, cfg, model) is KeySpec with a nil set.
func KeySpec(prog *ir.Program, cfg Config, execModel *arch.Model, spec SpecSet) CacheKey {
	k := Key(prog, cfg, execModel)
	k.Spec = spec.Canon()
	return k
}

// applySpeculation flips the selected surviving checks into speculation
// guards and returns how many were applied. Ordinals outside the method's
// check list are ignored (they cannot arise from a deterministic profile of
// the same compiled body, but a stale mask must not corrupt a compile).
func applySpeculation(prog *ir.Program, spec SpecSet) int {
	applied := 0
	for _, m := range prog.Methods {
		if m.Fn == nil {
			continue
		}
		ords := spec[m.QualifiedName()]
		if len(ords) == 0 {
			continue
		}
		want := make(map[int]bool, len(ords))
		for _, o := range ords {
			want[o] = true
		}
		for ord, in := range m.Fn.NullChecks() {
			if want[ord] {
				in.SpecGuard = int32(ord) + 1
				applied++
			}
		}
	}
	return applied
}
