package jit

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/workloads"
)

// TestDemoteSetCanon: canonical form is order-insensitive and deduplicated —
// it feeds both the cache key and the content hash.
func TestDemoteSetCanon(t *testing.T) {
	a := DemoteSet{"B.get": {3, 1}, "A.main": {2, 0, 2}}
	b := DemoteSet{"A.main": {0, 2}, "B.get": {1, 3}}
	if a.Canon() != b.Canon() {
		t.Fatalf("canon is order-sensitive: %q vs %q", a.Canon(), b.Canon())
	}
	if want := "A.main:0,2;B.get:1,3"; a.Canon() != want {
		t.Fatalf("canon %q, want %q", a.Canon(), want)
	}
	if (DemoteSet{}).Canon() != "" || DemoteSet(nil).Canon() != "" {
		t.Fatal("empty demote set must canonicalize to the empty string")
	}
}

// TestTrapSiteNumberingIsStable: trap-site ordinals are assigned in block
// order after the pipeline, so two compilations of the same program under
// the same configuration tag the same sites with the same ordinals — the
// property the governor's cross-generation counters depend on.
func TestTrapSiteNumberingIsStable(t *testing.T) {
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()

	sites := func() map[string][]int32 {
		p, _ := workloads.TrapStorm().Build()
		if _, err := CompileProgram(p, cfg, model); err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]int32)
		for _, m := range p.Methods {
			if m.Fn == nil {
				continue
			}
			for _, b := range m.Fn.Blocks {
				for _, in := range b.Instrs {
					if in.TrapSite != 0 {
						out[m.QualifiedName()] = append(out[m.QualifiedName()], in.TrapSite)
						if !in.ExcSite {
							t.Errorf("%s: pristine compile tagged a non-exception site", m.QualifiedName())
						}
					}
				}
			}
		}
		return out
	}

	first, second := sites(), sites()
	if len(first) == 0 {
		t.Fatal("no trap sites numbered on TrapStorm under the implicit config")
	}
	for name, ords := range first {
		if got := second[name]; len(got) != len(ords) {
			t.Fatalf("%s: site count differs across compiles: %v vs %v", name, ords, got)
		} else {
			for i := range ords {
				if got[i] != ords[i] {
					t.Fatalf("%s: ordinals differ across compiles: %v vs %v", name, ords, got)
				}
			}
		}
	}
}

// TestApplyDemotionInsertsExplicitChecks: demoting a site replaces its
// implicit trap with an explicit OpNullCheck in the same block, carrying the
// site's ordinal forward; un-demoted sites are untouched.
func TestApplyDemotionInsertsExplicitChecks(t *testing.T) {
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()

	// Pristine compile to learn the ordinals.
	p0, _ := workloads.TrapStorm().Build()
	if _, err := CompileProgram(p0, cfg, model); err != nil {
		t.Fatal(err)
	}
	var method string
	var ords []int
	for _, m := range p0.Methods {
		if m.Fn == nil {
			continue
		}
		for _, b := range m.Fn.Blocks {
			for _, in := range b.Instrs {
				if in.TrapSite != 0 {
					method = m.QualifiedName()
					ords = append(ords, int(in.TrapSite)-1)
				}
			}
		}
	}
	if len(ords) < 2 {
		t.Fatalf("need at least two trap sites to demote selectively, got %v", ords)
	}

	// Recompile with the first ordinal demoted.
	demote := DemoteSet{method: {ords[0]}}
	p1, _ := workloads.TrapStorm().Build()
	res, err := CompileProgramWith(p1, cfg, model, CompileOptions{Demote: demote})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemotedChecks != 1 {
		t.Fatalf("DemotedChecks = %d, want 1", res.DemotedChecks)
	}

	m1 := p1.MethodByName(method)
	var explicit, implicit []int32
	for _, b := range m1.Fn.Blocks {
		for i, in := range b.Instrs {
			if in.TrapSite == 0 {
				continue
			}
			if in.Op == ir.OpNullCheck {
				if !in.Explicit || in.ExcSite {
					t.Fatal("demoted check must be explicit and not an exception site")
				}
				explicit = append(explicit, in.TrapSite)
				// The guarded dereference follows in the same block with its
				// implicit tag cleared.
				if i+1 >= len(b.Instrs) || b.Instrs[i+1].ExcSite {
					t.Fatal("demoted deref still marked as an exception site")
				}
			} else if in.ExcSite {
				implicit = append(implicit, in.TrapSite)
			}
		}
	}
	if len(explicit) != 1 || int(explicit[0])-1 != ords[0] {
		t.Fatalf("explicit sites %v, want exactly ordinal %d", explicit, ords[0])
	}
	if len(implicit) != len(ords)-1 {
		t.Fatalf("%d implicit sites survive, want %d", len(implicit), len(ords)-1)
	}
}

// TestKeyDemoteSeparatesGenerations: cache keys must distinguish demote
// sets, and the pristine key must equal the plain Key.
func TestKeyDemoteSeparatesGenerations(t *testing.T) {
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()
	p, _ := workloads.TrapStorm().Build()

	k0 := Key(p, cfg, model)
	kEmpty := KeyDemote(p, cfg, model, nil, nil)
	if k0 != kEmpty {
		t.Fatal("empty demote set changes the cache key")
	}
	k1 := KeyDemote(p, cfg, model, nil, DemoteSet{"TrapStorm.main": {0}})
	k2 := KeyDemote(p, cfg, model, nil, DemoteSet{"TrapStorm.main": {1}})
	if k1 == k0 || k1 == k2 {
		t.Fatal("demote sets do not separate cache keys")
	}
	if k1.ID() == k2.ID() {
		t.Fatal("key IDs do not separate demote sets")
	}
}
