package jit

import (
	"errors"
	"strings"
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

func pipelineTestFunc() *ir.Func {
	b := ir.NewFunc("victim", false)
	b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.Return(ir.ConstInt(0))
	return b.Finish()
}

// TestRunPassContainsPanic: a panicking pass must become a structured
// *PassError carrying the pass name, function, IR dump and stack — never an
// unwinding panic.
func TestRunPassContainsPanic(t *testing.T) {
	f := pipelineTestFunc()
	res := &Result{}
	p := pass{name: "exploding", run: func(*ir.Func, *Result) { panic("kaboom") }}

	err := runPass(p, f, res, false, nil, nil)
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *PassError", err, err)
	}
	if pe.Pass != "exploding" || pe.Func != "victim" {
		t.Errorf("PassError identifies %s/%s, want exploding/victim", pe.Pass, pe.Func)
	}
	if pe.Panic != "kaboom" {
		t.Errorf("Panic = %v, want kaboom", pe.Panic)
	}
	if len(pe.Stack) == 0 {
		t.Error("stack not captured")
	}
	if !strings.Contains(pe.IRDump, "victim") {
		t.Errorf("IR dump missing function body:\n%s", pe.IRDump)
	}
	if got := pe.Reason(); got != "panic in exploding: kaboom" {
		t.Errorf("Reason = %q", got)
	}
	if d := pe.Detail(); !strings.Contains(d, "IR at failure") || !strings.Contains(d, "stack") {
		t.Errorf("Detail missing sections:\n%s", d)
	}
}

// TestRunPassVerifierCatchesCorruption: with verification on, a pass that
// silently corrupts the CFG is caught at the pass boundary and named.
func TestRunPassVerifierCatchesCorruption(t *testing.T) {
	f := pipelineTestFunc()
	res := &Result{}
	corrupt := pass{name: "corrupting", run: func(f *ir.Func, _ *Result) {
		// Drop the terminator: structurally invalid IR, but no panic.
		e := f.Entry
		e.Instrs = e.Instrs[:len(e.Instrs)-1]
	}}

	if err := runPass(corrupt, f, res, false, nil, nil); err != nil {
		t.Fatalf("unverified pipeline should not notice: %v", err)
	}

	f2 := pipelineTestFunc()
	err := runPass(corrupt, f2, res, true, nil, nil)
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *PassError", err, err)
	}
	if pe.Pass != "corrupting" || pe.Err == nil || pe.Panic != nil {
		t.Errorf("want verifier rejection naming the pass, got %+v", pe)
	}
	if got := pe.Reason(); got != "invalid IR after corrupting" {
		t.Errorf("Reason = %q", got)
	}
}

// benchCompile measures full-program compilation with or without the
// per-pass structural verifier; the ratio of the two is the verifier
// overhead budgeted at <2x in DESIGN.md §7.
func benchCompile(b *testing.B, verify bool) {
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()
	cfg.Verify = verify
	for i := 0; i < b.N; i++ {
		p, _ := sample()
		if _, err := CompileProgram(p, cfg, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileNoVerify(b *testing.B) { benchCompile(b, false) }
func BenchmarkCompileVerify(b *testing.B)   { benchCompile(b, true) }

// TestObserverSeesEveryPass: the observed pipeline reports the same pass
// names the production pipeline runs, in order.
func TestObserverSeesEveryPass(t *testing.T) {
	cfg := ConfigPhase1Phase2()
	var fromPipeline []string
	model := arch.IA32Win()
	for _, p := range pipeline(cfg, model) {
		fromPipeline = append(fromPipeline, p.name)
	}
	var observed []string
	f := pipelineTestFunc()
	err := CompileFuncObserved(f, cfg, model, func(pass string, _ *ir.Func, _ time.Duration) error {
		observed = append(observed, pass)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(observed, ",") != strings.Join(fromPipeline, ",") {
		t.Errorf("observed passes %v, pipeline declares %v", observed, fromPipeline)
	}
}
