package jit

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/machine"
	"trapnull/internal/workloads"
)

// benchConfigs is one representative configuration per family of the sweep:
// the no-opt baseline, the prior art, the paper's full pipeline, and the
// heavy-inliner comparator.
func benchConfigs() []Config {
	return []Config{
		ConfigNoNullOptNoTrap(),
		ConfigOldNullCheck(),
		ConfigPhase1Phase2(),
		ConfigHotSpotSim(),
	}
}

// BenchmarkCompileProgram measures the full compile path per workload and
// configuration family. Each run compiles a FRESH program (the bench
// harness's per-cell pattern) and the compiled artifact is checksum-verified
// once per benchmark, so a wrong-answer fast path can never produce a
// number.
func BenchmarkCompileProgram(b *testing.B) {
	model := arch.IA32Win()
	for _, w := range workloads.All() {
		for _, cfg := range benchConfigs() {
			w, cfg := w, cfg
			b.Run(w.Name+"/"+cfg.Name, func(b *testing.B) {
				// Verify the artifact before timing.
				p, entryM := w.Build()
				if _, err := CompileProgram(p, cfg, model); err != nil {
					b.Fatal(err)
				}
				m := machine.New(model, p)
				out, err := m.Call(entryM.Fn, w.TestN)
				if err != nil {
					b.Fatal(err)
				}
				if want := w.Ref(w.TestN); out.Value != want {
					b.Fatalf("checksum mismatch: got %d, want %d", out.Value, want)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p, _ := w.Build()
					if _, err := CompileProgram(p, cfg, model); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompileCacheHit measures the cached replay of a compilation —
// the cost runOne pays for every repetition after the first: hash the built
// program, look the key up, hit. The checksum check runs on the cached
// artifact itself.
func BenchmarkCompileCacheHit(b *testing.B) {
	model := arch.IA32Win()
	cfg := ConfigPhase1Phase2()
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			cache := NewCache(0)
			seed, entryM := w.Build()
			key := Key(seed, cfg, model)
			entry, _, err := cache.GetOrCompile(key, false, func() (*CacheEntry, error) {
				res, err := CompileProgram(seed, cfg, model)
				if err != nil {
					return nil, err
				}
				return &CacheEntry{Program: seed, Result: res}, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			m := machine.New(model, entry.Program)
			out, err := m.Call(entryM.Fn, w.TestN)
			if err != nil {
				b.Fatal(err)
			}
			if want := w.Ref(w.TestN); out.Value != want {
				b.Fatalf("checksum mismatch: got %d, want %d", out.Value, want)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A replay still builds and hashes a fresh program — that is
				// the irreducible per-rep cost the cache leaves behind.
				p, _ := w.Build()
				e, hit, err := cache.GetOrCompile(Key(p, cfg, model), false, func() (*CacheEntry, error) {
					b.Fatal("cache miss on identical program")
					return nil, nil
				})
				if err != nil || !hit || e != entry {
					b.Fatalf("hit=%v err=%v", hit, err)
				}
			}
		})
	}
}
