package jit

import "trapnull/internal/arch"

// The Windows/IA32 configurations of Tables 1–2 (§5). All enable inlining
// and the other optimizations; only the null check treatment varies, exactly
// as in the paper's experiment design.

// ConfigNoNullOptNoTrap: every required check is an explicit instruction.
func ConfigNoNullOptNoTrap() Config {
	return Config{
		Name:      "NoNullOpt(NoTrap)",
		Inline:    true,
		Algo:      AlgoNone,
		OtherOpts: true,
	}
}

// ConfigNoNullOptTrap: no elimination, but checks adjacent to trapping
// dereferences fold into the hardware trap.
func ConfigNoNullOptTrap() Config {
	c := ConfigNoNullOptNoTrap()
	c.Name = "NoNullOpt(Trap)"
	c.TrapFold = true
	return c
}

// ConfigOldNullCheck: Whaley's forward-analysis elimination plus trap
// folding — the previously known best algorithm.
func ConfigOldNullCheck() Config {
	return Config{
		Name:      "OldNullCheck",
		Inline:    true,
		Algo:      AlgoWhaley,
		OtherOpts: true,
		TrapFold:  true,
	}
}

// ConfigPhase1Only: the architecture-independent optimization iterated with
// the other optimizations; hardware traps used only via folding.
func ConfigPhase1Only() Config {
	return Config{
		Name:        "NewNullCheck(Phase1)",
		Inline:      true,
		Algo:        AlgoNew,
		Iterations:  3,
		OtherOpts:   true,
		TrapConvert: true,
	}
}

// ConfigPhase1Phase2: the full new algorithm.
func ConfigPhase1Phase2() Config {
	c := ConfigPhase1Only()
	c.Name = "NewNullCheck(Phase1+2)"
	c.TrapConvert = false
	c.Phase2 = true
	return c
}

// ConfigHotSpotSim is the simulated comparator for Figures 10–11 and
// Table 3 (see DESIGN.md §2): forward-analysis null check handling like the
// old algorithm, a considerably larger inlining budget, and a heavier
// pipeline (more optimization iterations), which makes it strong on
// call-dense workloads and slow to compile — the relative profile the paper
// reports for the HotSpot Server VM. Absolute HotSpot numbers are not
// reproducible and are not claimed.
func ConfigHotSpotSim() Config {
	return Config{
		Name:         "HotSpotSim",
		Inline:       true,
		InlineBudget: 96,
		Algo:         AlgoWhaley,
		Iterations:   14,
		OtherOpts:    true,
		LightScalar:  true,
		TrapFold:     true,
	}
}

// The AIX configurations of Tables 6–7 (§5.4). The paper's AIX JIT skips
// phase 2 and emits a one-cycle conditional trap for every surviving check;
// speculation is the lever under test.

// ConfigAIXSpeculation: new algorithm phase 1, speculation enabled.
func ConfigAIXSpeculation() Config {
	return Config{
		Name:        "Speculation",
		Inline:      true,
		Algo:        AlgoNew,
		Iterations:  3,
		OtherOpts:   true,
		Speculation: true,
	}
}

// ConfigAIXNoSpeculation: new algorithm phase 1, speculation disabled.
func ConfigAIXNoSpeculation() Config {
	c := ConfigAIXSpeculation()
	c.Name = "NoSpeculation"
	c.Speculation = false
	return c
}

// ConfigAIXNoNullOpt: the AIX baseline — no null check optimization, no
// speculation, all checks explicit conditional traps.
func ConfigAIXNoNullOpt() Config {
	return Config{
		Name:      "NoNullCheckOpt",
		Inline:    true,
		Algo:      AlgoNone,
		OtherOpts: true,
	}
}

// ConfigAIXIllegalImplicit applies the Intel phase 2 on AIX, assuming every
// memory access traps. Null reads then miss their NullPointerExceptions —
// the paper runs it purely to bound the benefit ("this violates the Java
// language specification").
func ConfigAIXIllegalImplicit() Config {
	return Config{
		Name:           "IllegalImplicit(NoSpec)",
		Inline:         true,
		Algo:           AlgoNew,
		Iterations:     3,
		OtherOpts:      true,
		Phase2:         true,
		Phase2Model:    arch.IA32Win(),
		Speculation:    false,
		SkipGuardCheck: true,
	}
}

// ConfigAIXWriteImplicit is the extension the paper describes but had not
// implemented ("Our JIT compiler for AIX could use implicit null checks for
// the memory writes, but we have not implemented it yet", §3.3.1): run the
// full phase 2 against the real AIX model, so checks consumed by memory
// writes become hardware traps while read checks stay explicit conditional
// traps. Fully legal, unlike IllegalImplicit.
func ConfigAIXWriteImplicit() Config {
	return Config{
		Name:        "WriteImplicit(Spec)",
		Inline:      true,
		Algo:        AlgoNew,
		Iterations:  3,
		OtherOpts:   true,
		Phase2:      true, // model defaults to the AIX execution model
		Speculation: true,
	}
}

// WindowsConfigs returns the Table 1/2 rows in presentation order.
func WindowsConfigs() []Config {
	return []Config{
		ConfigPhase1Phase2(),
		ConfigPhase1Only(),
		ConfigOldNullCheck(),
		ConfigNoNullOptTrap(),
		ConfigNoNullOptNoTrap(),
		ConfigHotSpotSim(),
	}
}

// AIXConfigs returns the Table 6/7 rows in presentation order.
func AIXConfigs() []Config {
	return []Config{
		ConfigAIXSpeculation(),
		ConfigAIXNoSpeculation(),
		ConfigAIXNoNullOpt(),
		ConfigAIXIllegalImplicit(),
	}
}
