package jit

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheSingleFlightSharesCompileFailure: when the in-flight compilation
// of a key fails, every waiter coalesced onto that flight receives the SAME
// error, the failure is never cached, and the next lookup retries the
// compilation and succeeds.
func TestCacheSingleFlightSharesCompileFailure(t *testing.T) {
	c := NewCache(0)
	key := CacheKey{Model: "test", Spec: "", Demote: ""}

	const waiters = 8
	boom := errors.New("injected compile failure")
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var compiles atomic.Int64

	// First flight: the leader enters the compile function, signals, then
	// blocks until every other goroutine has had time to coalesce.
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	leader := func() (*CacheEntry, error) {
		compiles.Add(1)
		close(inFlight)
		<-release
		return nil, boom
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = c.GetOrCompile(key, false, leader)
	}()
	<-inFlight
	for i := 1; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompile(key, false, func() (*CacheEntry, error) {
				compiles.Add(1)
				return nil, boom
			})
		}()
	}
	// Give the waiters time to park on the slot's ready channel, then fail
	// the flight. A straggler that misses the flight window recompiles and
	// gets the same (deterministic) error, so the assertion below holds
	// regardless.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: got %v, want the shared compile failure", i, err)
		}
	}

	// The failure must not be cached: a retry with a working compiler runs
	// it and succeeds.
	entry := &CacheEntry{Result: &Result{}}
	got, hit, err := c.GetOrCompile(key, false, func() (*CacheEntry, error) {
		compiles.Add(1)
		return entry, nil
	})
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if hit {
		t.Fatal("retry reported a cache hit — the failure was cached")
	}
	if got != entry {
		t.Fatal("retry did not return the fresh entry")
	}

	// And from now on the key hits.
	if _, hit, err := c.GetOrCompile(key, false, func() (*CacheEntry, error) {
		t.Error("cached key recompiled")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("expected a hit after the successful retry (hit=%v err=%v)", hit, err)
	}

	st := c.Stats()
	if st.Misses < 2 {
		t.Fatalf("expected at least 2 misses (failed flight + retry), got %d", st.Misses)
	}
}
