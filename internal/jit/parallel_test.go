package jit

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/machine"
	"trapnull/internal/obs"
	"trapnull/internal/workloads"
)

// disasm renders every method body, in program order.
func disasm(p *ir.Program) string {
	var sb strings.Builder
	for _, m := range p.Methods {
		if m.Fn == nil {
			continue
		}
		sb.WriteString(m.QualifiedName())
		sb.WriteString(":\n")
		sb.WriteString(m.Fn.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderRemarks(r *obs.Remarks) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

// TestParallelCompileMatchesSerial is the parallel-compilation determinism
// gate: for every workload under every configuration of both sweeps, the
// parallel compiler must produce byte-identical disassembly, an identical
// fate ledger, and identical non-time statistics — any worker interleaving
// effect is a bug (see parallel.go's safety argument).
func TestParallelCompileMatchesSerial(t *testing.T) {
	type matrix struct {
		configs []Config
		model   *arch.Model
	}
	matrices := []matrix{
		{WindowsConfigs(), arch.IA32Win()},
		{AIXConfigs(), arch.PPCAIX()},
	}
	for _, w := range workloads.All() {
		for _, mx := range matrices {
			for _, cfg := range mx.configs {
				serialP, _ := w.Build()
				serialOb := &Observer{Remarks: obs.NewRemarks()}
				serialRes, err := CompileProgramWith(serialP, cfg, mx.model, CompileOptions{Observer: serialOb})
				if err != nil {
					t.Fatalf("%s/%s serial: %v", w.Name, cfg.Name, err)
				}

				parP, _ := w.Build()
				parOb := &Observer{Remarks: obs.NewRemarks()}
				parRes, err := CompileProgramWith(parP, cfg, mx.model,
					CompileOptions{Observer: parOb, Parallelism: 4})
				if err != nil {
					t.Fatalf("%s/%s parallel: %v", w.Name, cfg.Name, err)
				}

				if s, p := disasm(serialP), disasm(parP); s != p {
					t.Fatalf("%s/%s: parallel disassembly diverges from serial", w.Name, cfg.Name)
				}
				if s, p := renderRemarks(serialOb.Remarks), renderRemarks(parOb.Remarks); s != p {
					t.Fatalf("%s/%s: fate ledgers diverge:\nserial:\n%s\nparallel:\n%s",
						w.Name, cfg.Name, s, p)
				}
				ss, ps := *serialRes, *parRes
				ss.Times, ps.Times = Times{}, Times{}
				if ss != ps {
					t.Fatalf("%s/%s: results diverge:\nserial:   %+v\nparallel: %+v",
						w.Name, cfg.Name, ss, ps)
				}
			}
		}
	}
}

// TestParallelCompileRunsCorrectCode executes a parallel-compiled program to
// the reference checksum — the end-to-end backstop behind the byte-equality
// test above.
func TestParallelCompileRunsCorrectCode(t *testing.T) {
	for _, w := range workloads.All() {
		p, entryM := w.Build()
		if _, err := CompileProgramWith(p, ConfigPhase1Phase2(), arch.IA32Win(),
			CompileOptions{Parallelism: 4}); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		m := machine.New(arch.IA32Win(), p)
		out, err := m.Call(entryM.Fn, w.TestN)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if want := w.Ref(w.TestN); out.Value != want {
			t.Fatalf("%s: checksum %d, want %d", w.Name, out.Value, want)
		}
	}
}

// TestParallelCompileErrorMatchesSerial: a failing compilation reports the
// same method (the lowest-index failure) regardless of parallelism.
func TestParallelCompileErrorMatchesSerial(t *testing.T) {
	cfg := ConfigPhase1Phase2()
	cfg.Verify = true
	cfg.SkipGuardCheck = false
	// Build a program whose LAST method fails the guard checker: a raw-Emit
	// field read with no null check anywhere is an unguarded dereference,
	// which checkGuardsContained rejects deterministically.
	build := func() *ir.Program {
		p, _ := sample()
		bb := ir.NewFunc("bad", false)
		o := bb.Param("o", ir.KindRef)
		bb.Result(ir.KindInt)
		bb.Block("entry")
		v := bb.Temp(ir.KindInt)
		big := &ir.Field{Name: "big", Kind: ir.KindInt, Offset: 1 << 20}
		bb.Emit(&ir.Instr{Op: ir.OpGetField, Dst: v, Field: big, Args: []ir.Operand{ir.Var(o)}})
		bb.Return(ir.Var(v))
		p.AddMethod(nil, "bad", bb.Finish(), false)
		return p
	}
	_, serialErr := CompileProgram(build(), cfg, arch.IA32Win())
	if serialErr == nil {
		t.Fatal("expected the forged program to fail serial compilation")
	}
	_, parErr := CompileProgramWith(build(), cfg, arch.IA32Win(), CompileOptions{Parallelism: 4})
	if parErr == nil {
		t.Fatal("expected the forged program to fail parallel compilation")
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error diverges:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}
