package jit

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/obs"
	"trapnull/internal/opt"
)

// TestProjectConfigEffectiveValues pins the key-projection rules of DESIGN.md
// §10: configurations spelled differently but compiled identically must share
// a projection, and every knob that changes generated code must split it.
func TestProjectConfigEffectiveValues(t *testing.T) {
	win := arch.IA32Win()
	aix := arch.PPCAIX()
	base := ConfigPhase1Phase2()

	t.Run("name and verify excluded", func(t *testing.T) {
		a, b := base, base
		b.Name = "renamed"
		b.Verify = true
		if ProjectConfig(a, win) != ProjectConfig(b, win) {
			t.Fatal("Name/Verify changed the projection")
		}
	})
	t.Run("iterations default", func(t *testing.T) {
		a, b := base, base
		a.Iterations = 0
		b.Iterations = 1
		if ProjectConfig(a, win) != ProjectConfig(b, win) {
			t.Fatal("Iterations 0 and 1 should project identically")
		}
		b.Iterations = 2
		if ProjectConfig(a, win) == ProjectConfig(b, win) {
			t.Fatal("Iterations 2 must split the projection")
		}
	})
	t.Run("inline budget default", func(t *testing.T) {
		a, b := base, base
		a.InlineBudget = 0
		b.InlineBudget = opt.InlineBudget
		if ProjectConfig(a, win) != ProjectConfig(b, win) {
			t.Fatal("default budget spelled explicitly should project identically")
		}
		// With inlining off the budget is dead config.
		a.Inline, b.Inline = false, false
		a.InlineBudget, b.InlineBudget = 0, 99
		if ProjectConfig(a, win) != ProjectConfig(b, win) {
			t.Fatal("InlineBudget must be ignored when Inline is off")
		}
	})
	t.Run("lowering precedence", func(t *testing.T) {
		a := base
		a.Phase2, a.TrapConvert, a.TrapFold = true, true, true
		b := base
		b.Phase2, b.TrapConvert, b.TrapFold = true, false, false
		if ProjectConfig(a, win) != ProjectConfig(b, win) {
			t.Fatal("Phase2 must shadow TrapConvert/TrapFold")
		}
		if got := ProjectConfig(a, win).Lowering; got != "phase2" {
			t.Fatalf("Lowering = %q, want phase2", got)
		}
	})
	t.Run("trap model by name", func(t *testing.T) {
		// Illegal Implicit: AIX execution, Intel trap model. Two distinct
		// Model values with the same name must not split the key.
		a := ConfigAIXIllegalImplicit()
		b := a
		m := *arch.IA32Win()
		b.Phase2Model = &m
		if ProjectConfig(a, aix) != ProjectConfig(b, aix) {
			t.Fatal("projection compared model pointers, not names")
		}
		if got := ProjectConfig(a, aix).TrapModel; got != arch.IA32Win().Name {
			t.Fatalf("TrapModel = %q, want %q", got, arch.IA32Win().Name)
		}
		// nil Phase2Model falls back to the execution model.
		c := base
		if got := ProjectConfig(c, aix).TrapModel; got != aix.Name {
			t.Fatalf("default TrapModel = %q, want %q", got, aix.Name)
		}
		// Without any lowering the trap model is dead config.
		d := base
		d.Phase2, d.TrapConvert, d.TrapFold = false, false, false
		d.Phase2Model = arch.IA32Win()
		e := d
		e.Phase2Model = nil
		if ProjectConfig(d, aix) != ProjectConfig(e, aix) {
			t.Fatal("Phase2Model must be ignored when no lowering runs")
		}
		if got := ProjectConfig(d, aix).TrapModel; got != "" {
			t.Fatalf("TrapModel without lowering = %q, want empty", got)
		}
	})
	t.Run("speculation is the effective conjunction", func(t *testing.T) {
		a := base
		a.Speculation = true
		if win.SpeculativeReads {
			t.Fatal("test premise: ia32-win reads can trap")
		}
		if ProjectConfig(a, win).Speculation {
			t.Fatal("Speculation must be masked by the execution model")
		}
		if !aix.SpeculativeReads {
			t.Fatal("test premise: ppc-aix reads cannot trap")
		}
		if !ProjectConfig(a, aix).Speculation {
			t.Fatal("Speculation lost on a speculative model")
		}
	})
}

// TestHashProgramContentAddressed: structurally identical programs digest
// identically (across distinct pointer graphs), and any content change —
// down to one constant operand — changes the digest.
func TestHashProgramContentAddressed(t *testing.T) {
	p1, _ := sample()
	p2, _ := sample()
	if HashProgram(p1) != HashProgram(p2) {
		t.Fatal("identical programs hash differently")
	}
	// Flip one constant deep inside a body.
	mutated := false
	for _, m := range p2.Methods {
		if m.Fn == nil {
			continue
		}
		for _, b := range m.Fn.Blocks {
			for _, in := range b.Instrs {
				for i := range in.Args {
					if in.Args[i].Kind != ir.OperConstInt {
						continue
					}
					in.Args[i].Int++
					mutated = true
					break
				}
				if mutated {
					break
				}
			}
			if mutated {
				break
			}
		}
		if mutated {
			break
		}
	}
	if !mutated {
		t.Fatal("found nothing to mutate")
	}
	if HashProgram(p1) == HashProgram(p2) {
		t.Fatal("one-constant mutation did not change the digest")
	}
}

func testKey(i int) CacheKey {
	var k CacheKey
	k.Model = "m"
	k.Program[0] = byte(i)
	k.Program[1] = byte(i >> 8)
	return k
}

// TestCacheSingleFlight: n concurrent lookups of one cold key run compile
// exactly once; everyone else blocks on the flight and counts as a hit.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0)
	key := testKey(1)
	var mu sync.Mutex
	compiles := 0
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.GetOrCompile(key, false, func() (*CacheEntry, error) {
				mu.Lock()
				compiles++
				mu.Unlock()
				return &CacheEntry{}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if compiles != 1 {
		t.Fatalf("compile ran %d times, want 1", compiles)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Lookups != n {
		t.Fatalf("stats = %+v, want 1 miss / %d hits / %d lookups", st, n-1, n)
	}
}

// TestCacheErrorNotCached: a failed compile propagates to its waiters but
// leaves no entry behind, so the next lookup retries.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(0)
	key := testKey(2)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompile(key, false, func() (*CacheEntry, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len = %d", c.Len())
	}
	entry, hit, err := c.GetOrCompile(key, false, func() (*CacheEntry, error) {
		return &CacheEntry{}, nil
	})
	if err != nil || hit || entry == nil {
		t.Fatalf("retry after error: entry=%v hit=%v err=%v", entry, hit, err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (error flight + retry)", st.Misses)
	}
}

// TestCacheEvictionDeterministic pins second-chance eviction: at capacity,
// inserting a new key evicts the cold entry (the one not touched since
// insertion), and the choice is a pure function of the access history.
func TestCacheEvictionDeterministic(t *testing.T) {
	run := func() (hot, cold bool) {
		c := NewCache(2)
		fresh := func(k CacheKey) {
			if _, hit, _ := c.GetOrCompile(k, false, func() (*CacheEntry, error) {
				return &CacheEntry{}, nil
			}); hit {
				t.Fatal("unexpected hit")
			}
		}
		lookup := func(k CacheKey) bool {
			_, hit, _ := c.GetOrCompile(k, false, func() (*CacheEntry, error) {
				return &CacheEntry{}, nil
			})
			return hit
		}
		fresh(testKey(1))
		fresh(testKey(2))
		if !lookup(testKey(1)) { // mark 1 hot
			t.Fatal("warm entry missed")
		}
		fresh(testKey(3)) // forces one eviction
		if c.Len() != 2 {
			t.Fatalf("len = %d, want 2", c.Len())
		}
		if c.Stats().Evictions != 1 {
			t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
		}
		return lookup(testKey(1)), lookup(testKey(2))
	}
	hot1, cold1 := run()
	if !hot1 || cold1 {
		t.Fatalf("second chance broken: hot survived=%v, cold survived=%v", hot1, cold1)
	}
	hot2, cold2 := run()
	if hot1 != hot2 || cold1 != cold2 {
		t.Fatal("eviction not deterministic across runs")
	}
}

// TestCacheNeedRemarksUpgrade: a hit on an entry without a fate ledger, when
// the caller needs one, recompiles (observed) and replaces the entry; both
// observed and unobserved callers hit the upgraded entry afterwards.
func TestCacheNeedRemarksUpgrade(t *testing.T) {
	c := NewCache(0)
	key := testKey(4)
	bare := &CacheEntry{}
	c.GetOrCompile(key, false, func() (*CacheEntry, error) { return bare, nil })

	upgraded := &CacheEntry{Remarks: obs.NewRemarks()}
	entry, hit, err := c.GetOrCompile(key, true, func() (*CacheEntry, error) { return upgraded, nil })
	if err != nil || hit || entry != upgraded {
		t.Fatalf("upgrade path: entry==upgraded=%v hit=%v err=%v", entry == upgraded, hit, err)
	}
	entry, hit, _ = c.GetOrCompile(key, true, func() (*CacheEntry, error) {
		t.Fatal("recompiled after upgrade")
		return nil, nil
	})
	if !hit || entry != upgraded {
		t.Fatal("observed lookup missed the upgraded entry")
	}
	entry, hit, _ = c.GetOrCompile(key, false, func() (*CacheEntry, error) {
		t.Fatal("recompiled after upgrade")
		return nil, nil
	})
	if !hit || entry != upgraded {
		t.Fatal("unobserved lookup missed the upgraded entry")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (upgrade replaces in place)", c.Len())
	}
}

// TestCacheKeyIsComparable guards the CacheKey contract: it must stay a pure
// value type (map key), which fmt can render for debugging.
func TestCacheKeyIsComparable(t *testing.T) {
	m := map[CacheKey]int{}
	p, _ := sample()
	k := Key(p, ConfigPhase1Phase2(), arch.IA32Win())
	m[k]++
	m[Key(p, ConfigPhase1Phase2(), arch.IA32Win())]++
	if len(m) != 1 || m[k] != 2 {
		t.Fatalf("equal inputs produced %d distinct keys", len(m))
	}
	_ = fmt.Sprint(k)
}
