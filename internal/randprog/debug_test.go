package randprog

// Bisection helper for fuzzer findings: set the seed/config below, remove
// the Skip, and the first pass whose output diverges from the baseline
// outcome is reported. Built on jit.CompileFuncObserved so it always matches
// the production pipeline exactly.

import (
	"fmt"
	"testing"
	"time"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

func TestBisectSeed(t *testing.T) {
	t.Skip("bisection helper; enable manually and set seed")

	const seed = 0
	const n = 5
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()

	run := func(p *ir.Program, fn *ir.Func) (int64, rt.ExcKind, int64) {
		m := machine.New(model, p)
		out, err := m.Call(fn, n)
		if err != nil {
			t.Fatalf("sim error: %v", err)
		}
		return out.Value, out.Exc, m.Cycles
	}

	base, fnBase := Generate(DefaultConfig(seed))
	wantV, wantE, baseCycles := run(base, fnBase)
	fmt.Printf("baseline: %d %v cycles=%d\n", wantV, wantE, baseCycles)

	p, fn := Generate(DefaultConfig(seed))
	// Compile the helper methods first, as CompileProgram would.
	for _, m := range p.Methods {
		if m.Fn != nil && m.Fn != fn {
			if err := jit.CompileFuncObserved(m.Fn, cfg, model, nil); err != nil {
				t.Fatalf("callee %s: %v", m.QualifiedName(), err)
			}
		}
	}
	err := jit.CompileFuncObserved(fn, cfg, model, func(pass string, f *ir.Func, _ time.Duration) error {
		gotV, gotE, cycles := run(p, f)
		fmt.Printf("%-16s %d %v cycles=%d\n", pass, gotV, gotE, cycles)
		if gotV != wantV || gotE != wantE {
			return fmt.Errorf("diverged (got %d %v, want %d %v)\n%s", gotV, gotE, wantV, wantE, f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
