// Package randprog generates random, structurally valid, always-terminating
// IR programs for differential testing: whatever the optimizer does to them,
// execution on the simulated machine must produce the identical outcome —
// same checksum or same exception kind — as the unoptimized original.
//
// Programs are generated structurally (sequences, if/else, bounded counted
// loops, optional try/catch), so termination is guaranteed by construction.
// Reference variables may be null on some paths, so null pointer exceptions,
// bounds failures and division faults all occur organically and the precise
// exception semantics of every pipeline get exercised.
package randprog

import (
	"fmt"
	"math/rand"

	"trapnull/internal/ir"
)

// Config tunes generation.
type Config struct {
	Seed     int64
	MaxDepth int // nesting depth of if/loop/try constructs
	MaxStmts int // statements per block sequence
	// AllowNull lets reference variables be assigned null, making real NPE
	// paths reachable.
	AllowNull bool
	// AllowTry wraps some regions in try/catch.
	AllowTry bool
	// AllowOOB permits out-of-range constant array indices, exercising
	// bounds-check exceptions.
	AllowOOB bool
}

// DefaultConfig returns a balanced generator configuration for a seed.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:      seed,
		MaxDepth:  3,
		MaxStmts:  6,
		AllowNull: true,
		AllowTry:  true,
		AllowOOB:  true,
	}
}

type gen struct {
	cfg   Config
	rng   *rand.Rand
	arena *ir.Arena // nil = every function gets its own
	b     *ir.Builder
	cls   *ir.Class
	ints  []ir.VarID
	refs  []ir.VarID
	arrs  []ir.VarID
	depth int
	// curTry is the innermost active try region index or ir.NoTry; new
	// blocks created while inside a try must inherit it.
	curTry int
	names  int
	// Callable helpers generated alongside main, exercising the
	// devirtualizer/inliner: a plain accessor, a Figure 1 guarded accessor,
	// and a throwing static.
	getter  *ir.Method
	clamped *ir.Method
	divider *ir.Method
	// refArr is an array of references with null slots; loading from it is
	// how maybe-null row pointers enter the program.
	refArr ir.VarID
}

// Generate builds a random program: one class with three int fields and a
// function `int main(int n)` returning a checksum of its integer state.
func Generate(cfg Config) (*ir.Program, *ir.Func) {
	return GenerateIn(cfg, nil)
}

// GenerateIn is Generate with every function body allocated from a
// caller-owned arena (nil behaves like Generate). Fuzz and delta-debug
// loops that build, test, and discard thousands of programs pair it with
// Arena.Reset between iterations so IR slabs are recycled instead of
// re-grown — the caller must not touch the previous program after the
// reset. Determinism is untouched: the arena changes where instructions
// live, never what they say.
func GenerateIn(cfg Config, a *ir.Arena) (*ir.Program, *ir.Func) {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 2
	}
	if cfg.MaxStmts <= 0 {
		cfg.MaxStmts = 4
	}
	p := ir.NewProgram(fmt.Sprintf("rand%d", cfg.Seed))
	cls := p.NewClass("R",
		&ir.Field{Name: "f0", Kind: ir.KindInt},
		&ir.Field{Name: "f1", Kind: ir.KindInt},
		&ir.Field{Name: "f2", Kind: ir.KindInt},
	)

	g := &gen{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		arena:  a,
		cls:    cls,
		curTry: ir.NoTry,
	}
	g.buildHelpers(p)
	b := g.newFunc("main", false)
	g.b = b
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	b.Block("entry")

	// Seed the variable pools.
	g.ints = append(g.ints, n)
	for i := 0; i < 3; i++ {
		v := b.Local(fmt.Sprintf("x%d", i), ir.KindInt)
		b.Move(v, ir.ConstInt(int64(g.rng.Intn(20)-5)))
		g.ints = append(g.ints, v)
	}
	for i := 0; i < 2; i++ {
		r := b.Local(fmt.Sprintf("r%d", i), ir.KindRef)
		b.New(r, cls)
		g.refs = append(g.refs, r)
	}
	a0 := b.Local("a0", ir.KindRef)
	b.NewArray(a0, ir.ConstInt(int64(4+g.rng.Intn(4))))
	g.arrs = append(g.arrs, a0)
	// A reference array seeded with one object and one null slot: loads
	// from it produce maybe-null references, the 2D row-pointer pattern.
	ra := b.Local("ra", ir.KindRef)
	b.NewArray(ra, ir.ConstInt(4))
	b.ArrayStore(ra, ir.ConstInt(0), ir.Var(g.refs[0]))
	g.refArr = ra

	g.seq()

	// Checksum all integer state plus the fields of the first ref and the
	// first array slot, guarding with explicit null tests so the epilogue
	// itself cannot throw.
	s := b.Local("checksum", ir.KindInt)
	b.Move(s, ir.ConstInt(0))
	for _, v := range g.ints {
		b.Binop(ir.OpMul, s, ir.Var(s), ir.ConstInt(31))
		b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	}
	g.checksumRef(s, g.refs[0])
	b.Return(ir.Var(s))
	fn := b.Finish()
	p.AddMethod(nil, "main", fn, false)
	return p, fn
}

// newFunc starts a function in the generator's arena, or a private one when
// no arena was supplied.
func (g *gen) newFunc(name string, instance bool) *ir.Builder {
	if g.arena == nil {
		return ir.NewFunc(name, instance)
	}
	return ir.NewFuncIn(name, instance, g.arena)
}

// buildHelpers creates the three fixed callee shapes main's random sites
// invoke: a virtual accessor (inliner fodder), a Figure 1 guarded accessor
// (the conditional-dereference shape phase 2 exists for), and a static
// divider (a call that can throw ArithmeticException).
func (g *gen) buildHelpers(p *ir.Program) {
	// virtual getf0(this): return this.f0
	gb := g.newFunc("getf0", true)
	gThis := gb.Param("this", ir.KindRef)
	gb.Result(ir.KindInt)
	gb.Block("entry")
	gv := gb.Temp(ir.KindInt)
	gb.GetField(gv, gThis, g.cls.FieldByName("f0"))
	gb.Return(ir.Var(gv))
	g.getter = p.AddMethod(g.cls, "getf0", gb.Finish(), true)

	// virtual clamped(this, i): if i < 0 { return i } return this.f1
	cb := g.newFunc("clamped", true)
	cThis := cb.Param("this", ir.KindRef)
	cArg := cb.Param("i", ir.KindInt)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	neg := cb.DeclareBlock("neg")
	pos := cb.DeclareBlock("pos")
	cb.If(ir.CondLT, ir.Var(cArg), ir.ConstInt(0), neg, pos)
	cb.SetBlock(neg)
	cb.Return(ir.Var(cArg))
	cb.SetBlock(pos)
	cv := cb.Temp(ir.KindInt)
	cb.GetField(cv, cThis, g.cls.FieldByName("f1"))
	cb.Return(ir.Var(cv))
	g.clamped = p.AddMethod(g.cls, "clamped", cb.Finish(), true)

	// static divide(a, b): return a / b   (throws on b == 0)
	db := g.newFunc("divide", false)
	dA := db.Param("a", ir.KindInt)
	dB := db.Param("b", ir.KindInt)
	db.Result(ir.KindInt)
	db.Block("entry")
	dv := db.Temp(ir.KindInt)
	db.Binop(ir.OpDiv, dv, ir.Var(dA), ir.Var(dB))
	db.Return(ir.Var(dv))
	g.divider = p.AddMethod(nil, "divide", db.Finish(), false)
}

// checksumRef folds r's fields into s when r is non-null.
func (g *gen) checksumRef(s, r ir.VarID) {
	b := g.b
	use := g.newBlock("ck_use")
	done := g.newBlock("ck_done")
	b.If(ir.CondEQ, ir.Var(r), ir.Null(), done, use)
	b.SetBlock(use)
	for _, fname := range []string{"f0", "f1", "f2"} {
		v := b.Temp(ir.KindInt)
		b.GetField(v, r, g.cls.FieldByName(fname))
		b.Binop(ir.OpMul, s, ir.Var(s), ir.ConstInt(31))
		b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(v))
	}
	b.Jump(done)
	b.SetBlock(done)
}

func (g *gen) newBlock(name string) *ir.Block {
	g.names++
	blk := g.b.DeclareBlock(fmt.Sprintf("%s_%d", name, g.names))
	blk.Try = g.curTry
	return blk
}

func (g *gen) intOperand() ir.Operand {
	if g.rng.Intn(3) == 0 {
		return ir.ConstInt(int64(g.rng.Intn(17) - 4))
	}
	return ir.Var(g.ints[g.rng.Intn(len(g.ints))])
}

func (g *gen) intVar() ir.VarID { return g.ints[g.rng.Intn(len(g.ints))] }
func (g *gen) refVar() ir.VarID { return g.refs[g.rng.Intn(len(g.refs))] }
func (g *gen) arrVar() ir.VarID { return g.arrs[g.rng.Intn(len(g.arrs))] }
func (g *gen) field() *ir.Field { return g.cls.Fields[g.rng.Intn(len(g.cls.Fields))] }
func (g *gen) cond() ir.Cond    { return ir.Cond(g.rng.Intn(6)) }
func (g *gen) arith() ir.Op {
	return []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}[g.rng.Intn(6)]
}
func (g *gen) idxOperand() ir.Operand {
	max := 6
	if g.cfg.AllowOOB {
		max = 9 // sometimes out of range for the small arrays
	}
	if g.rng.Intn(2) == 0 {
		return ir.ConstInt(int64(g.rng.Intn(max)))
	}
	// Variable index masked into a small range by an emitted AND.
	v := g.b.Temp(ir.KindInt)
	g.b.Binop(ir.OpAnd, v, ir.Var(g.intVar()), ir.ConstInt(7))
	return ir.Var(v)
}

// seq emits a straight-line sequence with nested constructs.
func (g *gen) seq() {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *gen) stmt() {
	b := g.b
	choice := g.rng.Intn(14)
	switch {
	case choice < 4: // integer arithmetic
		b.Binop(g.arith(), g.intVar(), g.intOperand(), g.intOperand())
	case choice == 4: // division (can throw ArithmeticException)
		b.Binop(ir.OpDiv, g.intVar(), g.intOperand(), g.intOperand())
	case choice == 5: // field load (null check + getfield)
		b.GetField(g.intVar(), g.refVar(), g.field())
	case choice == 6: // field store
		b.PutField(g.refVar(), g.field(), g.intOperand())
	case choice == 7: // array load
		b.ArrayLoad(g.intVar(), g.arrVar(), g.idxOperand())
	case choice == 8: // array store
		b.ArrayStore(g.arrVar(), g.idxOperand(), g.intOperand())
	case choice == 9: // reference shuffle
		r := g.refVar()
		switch g.rng.Intn(5) {
		case 0:
			b.New(r, g.cls)
		case 1:
			if g.cfg.AllowNull {
				b.Move(r, ir.Null())
			} else {
				b.New(r, g.cls)
			}
		case 2:
			// Load a maybe-null reference from the reference array (the
			// row-pointer pattern); in-range index so only nullness varies.
			b.ArrayLoad(r, g.refArr, ir.ConstInt(int64(g.rng.Intn(4))))
		case 3:
			// Store a reference into the array (possibly null already).
			b.ArrayStore(g.refArr, ir.ConstInt(int64(g.rng.Intn(4))), ir.Var(g.refVar()))
		default:
			b.Move(r, ir.Var(g.refVar()))
		}
	case choice == 10 && g.depth < g.cfg.MaxDepth: // if/else
		g.ifElse()
	case choice == 11 && g.depth < g.cfg.MaxDepth: // counted loop
		g.loop()
	case choice == 12 && g.depth < g.cfg.MaxDepth && g.cfg.AllowTry && g.curTry == ir.NoTry:
		g.try()
	case choice == 13:
		// Method call — devirtualization/inlining fodder. The receiver may
		// be null, so inlined guards fire organically.
		switch g.rng.Intn(3) {
		case 0:
			b.CallVirtual(g.intVar(), g.getter, g.refVar())
		case 1:
			b.CallVirtual(g.intVar(), g.clamped, g.refVar(), g.intOperand())
		default:
			b.CallStatic(g.intVar(), g.divider, g.intOperand(), g.intOperand())
		}
	default: // arraylength
		b.ArrayLength(g.intVar(), g.arrVar())
	}
}

func (g *gen) ifElse() {
	b := g.b
	g.depth++
	defer func() { g.depth-- }()

	thenB := g.newBlock("then")
	elseB := g.newBlock("else")
	joinB := g.newBlock("join")

	// Branch on a null test or an instanceof result (the two Edge rules of
	// §4.1.2), otherwise on an integer comparison.
	switch g.rng.Intn(4) {
	case 0:
		if g.cfg.AllowNull {
			b.If(ir.CondEQ, ir.Var(g.refVar()), ir.Null(), thenB, elseB)
			break
		}
		fallthrough
	case 1:
		t := b.Temp(ir.KindInt)
		b.InstanceOf(t, g.refVar(), g.cls)
		if g.rng.Intn(2) == 0 {
			b.If(ir.CondNE, ir.Var(t), ir.ConstInt(0), thenB, elseB)
		} else {
			b.If(ir.CondEQ, ir.Var(t), ir.ConstInt(0), thenB, elseB)
		}
	default:
		b.If(g.cond(), g.intOperand(), g.intOperand(), thenB, elseB)
	}
	b.SetBlock(thenB)
	g.seq()
	b.Jump(joinB)
	b.SetBlock(elseB)
	g.seq()
	b.Jump(joinB)
	b.SetBlock(joinB)
}

func (g *gen) loop() {
	b := g.b
	g.depth++
	defer func() { g.depth-- }()

	i := b.Local(fmt.Sprintf("i%d", g.names), ir.KindInt)
	g.names++
	trip := int64(g.rng.Intn(5)) // 0..4; zero-trip only reachable while-style

	if g.rng.Intn(2) == 0 {
		// Bottom-tested (do-while) form; always runs at least once.
		if trip == 0 {
			trip = 1
		}
		body := g.newBlock("loop_body")
		exit := g.newBlock("loop_exit")
		b.Move(i, ir.ConstInt(0))
		b.Jump(body)
		b.SetBlock(body)
		g.seq()
		b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
		b.If(ir.CondLT, ir.Var(i), ir.ConstInt(trip), body, exit)
		b.SetBlock(exit)
		return
	}
	// Top-tested (while) form — the shape RotateLoops peels; may run zero
	// times, exercising the guard path.
	head := g.newBlock("while_head")
	body := g.newBlock("while_body")
	exit := g.newBlock("while_exit")
	b.Move(i, ir.ConstInt(0))
	b.Jump(head)
	b.SetBlock(head)
	b.If(ir.CondLT, ir.Var(i), ir.ConstInt(trip), body, exit)
	b.SetBlock(body)
	g.seq()
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.Jump(head)
	b.SetBlock(exit)
}

func (g *gen) try() {
	b := g.b
	g.depth++
	defer func() { g.depth-- }()

	exc := b.Local(fmt.Sprintf("exc%d", g.names), ir.KindRef)
	g.names++
	handler := g.newBlock("handler")
	region := g.b.F.NewRegion(handler, exc)

	tryB := g.newBlock("try")
	tryB.Try = region.ID
	join := g.newBlock("try_join")

	b.Jump(tryB)
	b.SetBlock(tryB)
	prevTry := g.curTry
	g.curTry = region.ID
	g.seq()
	g.curTry = prevTry
	// All blocks created inside the try carry the region; leave it.
	b.Jump(join)

	b.SetBlock(handler)
	// The handler records that it ran.
	b.Binop(ir.OpAdd, g.ints[1], ir.Var(g.ints[1]), ir.ConstInt(1000))
	b.Jump(join)

	b.SetBlock(join)
}
