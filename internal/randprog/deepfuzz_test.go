package randprog

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

func TestDeepFuzz(t *testing.T) {
	// In -short mode run a reduced smoke pass instead of skipping outright:
	// every configuration variant still executes, over a 100x smaller seed
	// range, so CI catches gross pipeline breakage in seconds.
	first, last := int64(1000), int64(4000)
	if testing.Short() {
		last = first + 30
	}
	model := arch.IA32Win()
	aix := arch.PPCAIX()
	variant := func(seed int64) Config {
		cfg := DefaultConfig(seed)
		switch seed % 4 {
		case 1:
			cfg.MaxDepth = 5 // deeper nesting
		case 2:
			cfg.AllowTry = false
			cfg.MaxStmts = 10
		case 3:
			cfg.AllowNull = false
			cfg.AllowOOB = false
		}
		return cfg
	}
	// One arena serves the whole fuzz run: each generated program is tested
	// and discarded before the next Reset, so its IR slabs are recycled
	// instead of re-grown for every (seed, config) pair.
	arena := ir.NewArena()
	for seed := first; seed < last; seed++ {
		arena.Reset()
		base, fnBase := GenerateIn(variant(seed), arena)
		mb := machine.New(model, base)
		outB, err := mb.Call(fnBase, 5)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		for _, pc := range []struct {
			m   *arch.Model
			cfg jit.Config
		}{
			{model, jit.ConfigPhase1Phase2()},
			{model, jit.ConfigPhase1Only()},
			{model, jit.ConfigHotSpotSim()},
			{aix, jit.ConfigAIXSpeculation()},
			{aix, jit.ConfigAIXWriteImplicit()},
		} {
			// The baseline program is dead by now (only outB survives), so
			// the arena can be recycled for the optimized copy.
			arena.Reset()
			p, fn := GenerateIn(variant(seed), arena)
			if _, err := jit.CompileProgram(p, pc.cfg, pc.m); err != nil {
				t.Fatalf("seed %d [%s/%s]: compile: %v", seed, pc.m.Name, pc.cfg.Name, err)
			}
			mo := machine.New(pc.m, p)
			out, err := mo.Call(fn, 5)
			if err != nil {
				t.Fatalf("seed %d [%s/%s]: run: %v\n%s", seed, pc.m.Name, pc.cfg.Name, err, fn)
			}
			if out.Exc != outB.Exc || (outB.Exc == rt.ExcNone && out.Value != outB.Value) {
				t.Fatalf("seed %d [%s/%s]: (%d,%v) want (%d,%v)\n%s",
					seed, pc.m.Name, pc.cfg.Name, out.Value, out.Exc, outB.Value, outB.Exc, fn)
			}
		}
	}
}
