package randprog

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

// FuzzDifferential is the native-fuzzing face of TestDifferentialAllLegalConfigs:
// the fuzzer drives the generator seed, the program input, and the
// (architecture, configuration) selection, and every mutation must preserve
// the unoptimized outcome. Run with
//
//	go test -fuzz=FuzzDifferential ./internal/randprog
//
// The checked-in corpus under testdata/fuzz seeds the interesting regions:
// the default generator shape, the deep-nesting and no-try variants, and
// seeds known to exercise check motion across branches.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(0), int64(5), uint8(0), uint8(0))
	f.Add(int64(42), int64(0), uint8(1), uint8(1))
	f.Add(int64(97), int64(-3), uint8(2), uint8(2))
	f.Add(int64(1643), int64(-3), uint8(0), uint8(0)) // branchy check motion
	f.Add(int64(123), int64(7), uint8(3), uint8(0))

	f.Fuzz(func(t *testing.T, seed, input int64, cfgSel, archSel uint8) {
		// Keep runs fast: huge inputs only scale loop trip counts.
		input %= 32

		var model *arch.Model
		var configs []jit.Config
		switch archSel % 3 {
		case 0:
			model, configs = arch.IA32Win(), jit.WindowsConfigs()
		case 1:
			model, configs = arch.PPCAIX(), legalAIXConfigs()
		case 2:
			model, configs = arch.SPARCLike(), jit.WindowsConfigs()
		}
		cfg := configs[int(cfgSel)%len(configs)]

		base, fnBase := Generate(DefaultConfig(seed))
		mb := machine.New(model, base)
		outB, err := mb.Call(fnBase, input)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}

		p, fn := Generate(DefaultConfig(seed))
		if _, err := jit.CompileProgram(p, cfg, model); err != nil {
			t.Fatalf("seed %d [%s/%s]: compile: %v\n%s", seed, model.Name, cfg.Name, err, fn)
		}
		mo := machine.New(model, p)
		out, err := mo.Call(fn, input)
		if err != nil {
			t.Fatalf("seed %d [%s/%s]: run: %v\n%s", seed, model.Name, cfg.Name, err, fn)
		}
		if out.Exc != outB.Exc || (outB.Exc == rt.ExcNone && out.Value != outB.Value) {
			t.Fatalf("seed %d input %d [%s/%s]: outcome (%d,%v), want (%d,%v)\n%s",
				seed, input, model.Name, cfg.Name, out.Value, out.Exc, outB.Value, outB.Exc, fn)
		}
	})
}
