package randprog

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
)

// TestEngineDifferentialRandprog is the fuzz half of the engine equivalence
// proof: the closure-compiled engine and the reference switch interpreter
// must agree on Outcome, ExecStats, Cycles, AND errors over a large corpus
// of generated programs — uncompiled and fully optimized, on both arch
// models. Unlike the output-only deep fuzz, this compares the complete
// accounting, because cycle counts and trap classification are the paper's
// measurements.
func TestEngineDifferentialRandprog(t *testing.T) {
	first, last := int64(7000), int64(8200) // 1200 seeds
	if testing.Short() {
		last = first + 150
	}

	type result struct {
		out   machine.Outcome
		err   string
		stats machine.ExecStats
		cyc   int64
	}

	variant := func(seed int64) Config {
		cfg := DefaultConfig(seed)
		switch seed % 4 {
		case 1:
			cfg.MaxDepth = 5
		case 2:
			cfg.AllowTry = false
			cfg.MaxStmts = 10
		case 3:
			cfg.AllowNull = false
			cfg.AllowOOB = false
		}
		return cfg
	}

	models := []*arch.Model{arch.IA32Win(), arch.PPCAIX()}
	// Each engine's program is executed and abandoned before the next
	// generation, so one Reset-recycled arena backs the whole corpus.
	arena := ir.NewArena()
	for seed := first; seed < last; seed++ {
		// Cycle through all four (model, compiled?) combinations: even seeds
		// run the raw generated program, odd seeds run it through the full
		// Phase1+2 pipeline (or the AIX speculation pipeline on the AIX
		// model), so both optimized and unoptimized IR shapes hit both
		// engines on both models.
		model := models[(seed>>1)%2]
		compiled := seed%2 == 1
		var results [2]result
		for i, e := range []machine.Engine{machine.EngineClosure, machine.EngineSwitch} {
			arena.Reset()
			p, fn := GenerateIn(variant(seed), arena)
			if compiled {
				cfg := jit.ConfigPhase1Phase2()
				if model.Name == "ppc-aix" {
					cfg = jit.ConfigAIXSpeculation()
				}
				if _, err := jit.CompileProgram(p, cfg, model); err != nil {
					t.Fatalf("seed %d: compile: %v", seed, err)
				}
			}
			m := machine.New(model, p)
			m.Engine = e
			out, err := m.Call(fn, 5)
			r := result{out: out, stats: m.Stats, cyc: m.Cycles}
			if err != nil {
				r.err = err.Error()
			}
			results[i] = r
		}
		c, s := results[0], results[1]
		if c.out != s.out || c.err != s.err || c.stats != s.stats || c.cyc != s.cyc {
			t.Fatalf("seed %d [%s]: engines diverge:\nclosure out=%+v err=%q stats=%+v cycles=%d\nswitch  out=%+v err=%q stats=%+v cycles=%d",
				seed, model.Name,
				c.out, c.err, c.stats, c.cyc,
				s.out, s.err, s.stats, s.cyc)
		}
	}
}
