package randprog

import (
	"strings"
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
	"trapnull/internal/jit"
	"trapnull/internal/machine"
	"trapnull/internal/rt"
)

const seeds = 200

// outcomeOf runs fn and returns (value, exception kind). Simulation errors
// (unexpected traps, invalid IR) fail the test — they mean a broken
// optimizer, never a legal program behaviour.
func outcomeOf(t *testing.T, seed int64, label string, p *ir.Program, fn *ir.Func, m *arch.Model, n int64) (int64, rt.ExcKind) {
	t.Helper()
	mach := machine.New(m, p)
	out, err := mach.Call(fn, n)
	if err != nil {
		t.Fatalf("seed %d [%s]: simulation error: %v\n%s", seed, label, err, fn)
	}
	return out.Value, out.Exc
}

func TestGeneratedProgramsAreValidAndTerminate(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		p, fn := Generate(DefaultConfig(seed))
		if err := ir.Validate(fn); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		outcomeOf(t, seed, "unoptimized", p, fn, arch.IA32Win(), 5)
	}
}

// TestDifferentialAllLegalConfigs is the central property test promised in
// DESIGN.md §6: for random programs, every legal configuration must produce
// exactly the outcome of the unoptimized program — same checksum, or the
// same exception kind when the program faults.
func TestDifferentialAllLegalConfigs(t *testing.T) {
	type platform struct {
		model   *arch.Model
		configs []jit.Config
	}
	platforms := []platform{
		{arch.IA32Win(), jit.WindowsConfigs()},
		{arch.PPCAIX(), legalAIXConfigs()},
		{arch.SPARCLike(), jit.WindowsConfigs()},
	}
	for seed := int64(0); seed < seeds; seed++ {
		for _, pl := range platforms {
			base, fnBase := Generate(DefaultConfig(seed))
			wantV, wantE := outcomeOf(t, seed, "baseline/"+pl.model.Name, base, fnBase, pl.model, 5)

			for _, cfg := range pl.configs {
				p, fn := Generate(DefaultConfig(seed))
				if _, err := jit.CompileProgram(p, cfg, pl.model); err != nil {
					t.Fatalf("seed %d [%s/%s]: compile: %v\n%s", seed, pl.model.Name, cfg.Name, err, fn)
				}
				gotV, gotE := outcomeOf(t, seed, pl.model.Name+"/"+cfg.Name, p, fn, pl.model, 5)
				if gotE != wantE || (wantE == rt.ExcNone && gotV != wantV) {
					t.Fatalf("seed %d [%s/%s]: outcome (%d,%v), want (%d,%v)\n%s",
						seed, pl.model.Name, cfg.Name, gotV, gotE, wantV, wantE, fn)
				}
			}
		}
	}
}

// legalAIXConfigs drops the deliberately spec-violating configuration: a
// missed NPE is its documented behaviour, not a bug.
func legalAIXConfigs() []jit.Config {
	var out []jit.Config
	for _, c := range jit.AIXConfigs() {
		if !c.SkipGuardCheck {
			out = append(out, c)
		}
	}
	return out
}

// TestDynamicChecksNeverIncrease: the PRE no-regression property — on any
// concrete execution, the optimized program runs at most as many explicit
// null checks as the unoptimized one.
func TestDynamicChecksNeverIncrease(t *testing.T) {
	model := arch.IA32Win()
	for seed := int64(0); seed < seeds; seed++ {
		base, fnBase := Generate(DefaultConfig(seed))
		mb := machine.New(model, base)
		if _, err := mb.Call(fnBase, 5); err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}

		for _, cfg := range jit.WindowsConfigs() {
			p, fn := Generate(DefaultConfig(seed))
			if _, err := jit.CompileProgram(p, cfg, model); err != nil {
				t.Fatalf("seed %d [%s]: compile: %v", seed, cfg.Name, err)
			}
			mo := machine.New(model, p)
			if _, err := mo.Call(fn, 5); err != nil {
				t.Fatalf("seed %d [%s]: run: %v\n%s", seed, cfg.Name, err, fn)
			}
			if mo.Stats.ExplicitChecks > mb.Stats.ExplicitChecks {
				t.Fatalf("seed %d [%s]: executed %d explicit checks, baseline %d\n%s",
					seed, cfg.Name, mo.Stats.ExplicitChecks, mb.Stats.ExplicitChecks, fn)
			}
		}
	}
}

// TestCyclesNeverIncrease: the stronger economic property for the full
// algorithm specifically — optimization must not make a program slower on
// the non-faulting path. Runs that raise any exception (even a caught one)
// are excluded: a fired hardware trap costs more than a failed software
// check by design — that trade-off is measured deliberately in Ablation C,
// not asserted away here.
func TestCyclesNeverIncrease(t *testing.T) {
	model := arch.IA32Win()
	for seed := int64(0); seed < seeds; seed++ {
		base, fnBase := Generate(DefaultConfig(seed))
		mb := machine.New(model, base)
		outB, err := mb.Call(fnBase, 5)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		if outB.Exc != rt.ExcNone || mb.Stats.ThrownSoftware > 0 || mb.Stats.TrapsTaken > 0 {
			continue
		}

		p, fn := Generate(DefaultConfig(seed))
		if _, err := jit.CompileProgram(p, jit.ConfigPhase1Phase2(), model); err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		mo := machine.New(model, p)
		if _, err := mo.Call(fn, 5); err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, fn)
		}
		if mo.Cycles > mb.Cycles {
			t.Fatalf("seed %d: optimized runs slower: %d > %d cycles\n%s",
				seed, mo.Cycles, mb.Cycles, fn)
		}
	}
}

// TestDeterministicGeneration: same seed, same program.
func TestDeterministicGeneration(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		_, f1 := Generate(DefaultConfig(seed))
		_, f2 := Generate(DefaultConfig(seed))
		if f1.String() != f2.String() {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
}

// TestGenerateInMatchesGenerate: arena-backed generation emits structurally
// identical programs — including across Arena.Reset — so fuzz loops can
// recycle slabs without perturbing any seed's program.
func TestGenerateInMatchesGenerate(t *testing.T) {
	render := func(p *ir.Program) string {
		var sb strings.Builder
		for _, m := range p.Methods {
			if m.Fn != nil {
				sb.WriteString(m.QualifiedName())
				sb.WriteString("\n")
				sb.WriteString(m.Fn.String())
			}
		}
		return sb.String()
	}
	arena := ir.NewArena()
	for seed := int64(0); seed < 20; seed++ {
		plain, _ := Generate(DefaultConfig(seed))
		want := render(plain)
		arena.Reset()
		arenaProg, _ := GenerateIn(DefaultConfig(seed), arena)
		if got := render(arenaProg); got != want {
			t.Fatalf("seed %d: arena-backed generation differs:\n--- plain ---\n%s\n--- arena ---\n%s", seed, want, got)
		}
	}
}

// TestVariedInputs: differential equivalence must hold across input sizes,
// not just one.
func TestVariedInputs(t *testing.T) {
	model := arch.IA32Win()
	cfg := jit.ConfigPhase1Phase2()
	for seed := int64(0); seed < 40; seed++ {
		for _, n := range []int64{0, 1, 7, -3} {
			base, fnBase := Generate(DefaultConfig(seed))
			wantV, wantE := outcomeOf(t, seed, "baseline", base, fnBase, model, n)

			p, fn := Generate(DefaultConfig(seed))
			if _, err := jit.CompileProgram(p, cfg, model); err != nil {
				t.Fatalf("seed %d n=%d: compile: %v", seed, n, err)
			}
			gotV, gotE := outcomeOf(t, seed, "full", p, fn, model, n)
			if gotE != wantE || (wantE == rt.ExcNone && gotV != wantV) {
				t.Fatalf("seed %d n=%d: outcome (%d,%v), want (%d,%v)", seed, n, gotV, gotE, wantV, wantE)
			}
		}
	}
}
