package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// traceShape mirrors the Chrome trace-event file format for decoding.
type traceShape struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int64          `json:"pid"`
		TID  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceJSONShape pins the serialized form to what Perfetto/chrome://tracing
// accept: an object with a traceEvents array of "X" complete events carrying
// microsecond ts/dur, all on the same pid.
func TestTraceJSONShape(t *testing.T) {
	tr := NewTrace()
	tid := tr.NextTID()
	base := time.Now()
	tr.Span(tid, "function", "compile Foo.bar", base, 10*time.Millisecond,
		map[string]any{"instrs": 42})
	tr.Span(tid, "pass", "nullcheck-phase1", base.Add(time.Millisecond), 2*time.Millisecond, nil)

	data, err := tr.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !json.Valid(data) {
		t.Fatalf("emitted trace is not valid JSON:\n%s", data)
	}
	var got traceShape
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", got.DisplayTimeUnit)
	}
	if len(got.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(got.TraceEvents))
	}
	for i, ev := range got.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d: ph = %q, want \"X\" (complete event)", i, ev.Ph)
		}
		if ev.Name == "" || ev.Cat == "" {
			t.Errorf("event %d: empty name (%q) or cat (%q)", i, ev.Name, ev.Cat)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %d: negative ts/dur (%v/%v)", i, ev.TS, ev.Dur)
		}
		if ev.TID != tid {
			t.Errorf("event %d: tid = %d, want %d", i, ev.TID, tid)
		}
	}
	// Perfetto nests spans by time containment within a (pid, tid) lane: the
	// pass span must lie inside the function span.
	fn, pass := got.TraceEvents[0], got.TraceEvents[1]
	if pass.TS < fn.TS || pass.TS+pass.Dur > fn.TS+fn.Dur {
		t.Errorf("pass span [%v,%v] not contained in function span [%v,%v]",
			pass.TS, pass.TS+pass.Dur, fn.TS, fn.TS+fn.Dur)
	}
}

// TestTraceEmpty pins that a trace with no spans still serializes to a valid
// file with an empty (not null) traceEvents array.
func TestTraceEmpty(t *testing.T) {
	data, err := NewTrace().JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if string(got["traceEvents"]) != "[]" {
		t.Errorf("empty trace serializes traceEvents as %s, want []", got["traceEvents"])
	}
}

// TestTraceNextTID pins that lanes are distinct and concurrent-safe IDs.
func TestTraceNextTID(t *testing.T) {
	tr := NewTrace()
	a, b := tr.NextTID(), tr.NextTID()
	if a == b {
		t.Errorf("NextTID returned %d twice", a)
	}
}

// TestTraceWriteFile round-trips a trace through the file API.
func TestTraceWriteFile(t *testing.T) {
	tr := NewTrace()
	tr.Span(tr.NextTID(), "pass", "dce", time.Now(), time.Millisecond, nil)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !json.Valid(data) {
		t.Fatalf("file is not valid JSON")
	}
}
