package obs

import (
	"strings"
	"testing"

	"trapnull/internal/ir"
)

// checkFunc builds: f(p, q) { nullcheck p; nullcheck q; return 0 } and
// returns the function plus its two check instructions.
func checkFunc(t *testing.T) (*ir.Func, *ir.Instr, *ir.Instr) {
	t.Helper()
	b := ir.NewFunc("f", false)
	p := b.Param("p", ir.KindRef)
	q := b.Param("q", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	c1 := b.NullCheck(p, ir.ReasonField)
	c2 := b.NullCheck(q, ir.ReasonField)
	b.Return(ir.ConstInt(0))
	return b.Finish(), c1, c2
}

func removeInstr(f *ir.Func, in *ir.Instr) {
	for _, blk := range f.Blocks {
		for i, x := range blk.Instrs {
			if x == in {
				blk.Instrs = append(blk.Instrs[:i], blk.Instrs[i+1:]...)
				return
			}
		}
	}
}

// TestLedgerSourceDiscovery pins that NewLedger records every source check
// with sequential IDs and OriginSource.
func TestLedgerSourceDiscovery(t *testing.T) {
	f, _, _ := checkFunc(t)
	l := NewLedger(f, "T.f")
	if len(l.Checks) != 2 {
		t.Fatalf("discovered %d checks, want 2", len(l.Checks))
	}
	for i, c := range l.Checks {
		if c.ID != i {
			t.Errorf("check %d has ID %d", i, c.ID)
		}
		if c.Origin != OriginSource {
			t.Errorf("check %d origin %v, want source", i, c.Origin)
		}
		if c.Fate != FateNone {
			t.Errorf("check %d already fated: %v", i, c.Fate)
		}
	}
	fc := l.Counts()
	if fc.Source != 2 || fc.Fated() != 0 {
		t.Errorf("counts = %+v, want 2 source, 0 fated", fc)
	}
}

// TestLedgerFatesAndConservation walks a full lifecycle: one check
// eliminated by a pass, the other surviving, and asserts the histogram
// conserves.
func TestLedgerFatesAndConservation(t *testing.T) {
	f, c1, _ := checkFunc(t)
	l := NewLedger(f, "T.f")
	l.BeginPass("phase1#0")
	l.Eliminated(c1, f.Blocks[0])
	removeInstr(f, c1)
	l.Sync()
	l.Finish()

	fc := l.Counts()
	if fc.Eliminated != 1 || fc.Retained != 1 || fc.Lost != 0 {
		t.Errorf("counts = %+v, want 1 eliminated, 1 retained, 0 lost", fc)
	}
	if !fc.Conserved() {
		t.Errorf("histogram does not conserve: tracked=%d fated=%d", fc.Tracked(), fc.Fated())
	}
	if l.Checks[0].FatePass != "phase1#0" {
		t.Errorf("fate pass = %q, want phase1#0", l.Checks[0].FatePass)
	}
}

// TestLedgerLostDetection pins the safety net: a check that disappears
// without any tracker hook is classified FateLost, which conservation
// rejects.
func TestLedgerLostDetection(t *testing.T) {
	f, c1, _ := checkFunc(t)
	l := NewLedger(f, "T.f")
	l.BeginPass("rogue")
	removeInstr(f, c1) // no hook fired: an uninstrumented deletion
	l.Sync()
	l.Finish()

	fc := l.Counts()
	if fc.Lost != 1 {
		t.Fatalf("counts = %+v, want exactly 1 lost", fc)
	}
	if fc.Conserved() {
		t.Error("histogram with a lost check must not conserve")
	}
}

// TestLedgerDoubleFateConflict pins that reporting two fates for the same
// check increments Conflicts instead of silently overwriting.
func TestLedgerDoubleFateConflict(t *testing.T) {
	f, c1, _ := checkFunc(t)
	l := NewLedger(f, "T.f")
	l.BeginPass("p")
	l.Eliminated(c1, f.Blocks[0])
	l.Substituted(c1, f.Blocks[0])
	if l.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", l.Conflicts)
	}
	if l.Checks[0].Fate != FateEliminated {
		t.Errorf("first fate overwritten: %v", l.Checks[0].Fate)
	}
}

// TestLedgerBornInFlight pins the same-pass birth+death path: fating an
// instruction the ledger has never seen auto-creates an OriginMoved record
// (phase 2 emits checks its own peephole may immediately consume).
func TestLedgerBornInFlight(t *testing.T) {
	f, _, _ := checkFunc(t)
	l := NewLedger(f, "T.f")
	l.BeginPass("nullcheck-phase2")
	fresh := &ir.Instr{Op: ir.OpNullCheck, Args: []ir.Operand{ir.Var(ir.VarID(0))}}
	l.Converted(fresh, f.Blocks[0].Instrs[0], f.Blocks[0])

	if len(l.Checks) != 3 {
		t.Fatalf("ledger has %d checks, want 3 (2 source + 1 in-flight)", len(l.Checks))
	}
	c := l.Checks[2]
	if c.Origin != OriginMoved || c.Fate != FateConverted || c.BornPass != "nullcheck-phase2" {
		t.Errorf("in-flight record = origin %v fate %v born %q", c.Origin, c.Fate, c.BornPass)
	}
}

// TestRemarksRender smoke-tests the human-readable ledger output.
func TestRemarksRender(t *testing.T) {
	f, c1, _ := checkFunc(t)
	r := NewRemarks()
	l := r.NewLedger(f, "T.f")
	l.BeginPass("phase1#0")
	l.Eliminated(c1, f.Blocks[0])
	removeInstr(f, c1)
	l.Sync()
	l.Finish()

	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T.f", "eliminated-redundant", "retained-explicit"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered ledger missing %q:\n%s", want, out)
		}
	}
	if !r.Totals().Conserved() {
		t.Error("totals do not conserve")
	}
}
