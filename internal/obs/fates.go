package obs

import (
	"fmt"
	"strings"
	"sync"

	"trapnull/internal/ir"
)

// Fate is the terminal classification of one null check instruction after
// the pipeline finishes. Every tracked check ends with exactly one fate; the
// conservation test in internal/obs asserts that the taxonomy is exhaustive
// for every workload × configuration.
type Fate uint8

const (
	// FateNone is the in-flight state: the check still exists and no pass
	// has decided anything about it yet.
	FateNone Fate = iota
	// FateEliminated: deleted as redundant — the target was provably
	// non-null at the check without help from any insertion point.
	FateEliminated
	// FateHoisted: deleted by phase 1, but the redundancy proof needed the
	// backward-motion insertion points; the check effectively moved up.
	FateHoisted
	// FateSunk: dissolved by phase 2's forward motion and re-materialized
	// at a later point as a fresh explicit check.
	FateSunk
	// FateConverted: absorbed into a guaranteed-trapping dereference — the
	// check became implicit (zero instructions, hardware trap as backstop).
	FateConverted
	// FateSubstituted: deleted by the §4.2.2 substitutable elimination — a
	// later check or guaranteed trap covers it on every path.
	FateSubstituted
	// FateDead: vanished together with an unreachable block.
	FateDead
	// FateRetained: survived the whole pipeline as an explicit check.
	FateRetained
	// FateLost: the check disappeared through an uninstrumented path — a
	// tracking bug, never a legitimate outcome. Conservation tests assert
	// zero of these.
	FateLost
)

func (f Fate) String() string {
	switch f {
	case FateNone:
		return "in-flight"
	case FateEliminated:
		return "eliminated-redundant"
	case FateHoisted:
		return "hoisted"
	case FateSunk:
		return "sunk"
	case FateConverted:
		return "converted-to-implicit"
	case FateSubstituted:
		return "removed-substitutable"
	case FateDead:
		return "removed-dead"
	case FateRetained:
		return "retained-explicit"
	case FateLost:
		return "lost"
	}
	return fmt.Sprintf("fate(%d)", uint8(f))
}

// Origin records where a tracked check came from.
type Origin uint8

const (
	// OriginSource: present in the source IR before any pass ran.
	OriginSource Origin = iota
	// OriginInlined: cloned into the caller by inlining (or synthesized as
	// an inline guard).
	OriginInlined
	// OriginMoved: materialized by a motion pass (phase 1 or phase 2
	// insertion points).
	OriginMoved
)

func (o Origin) String() string {
	switch o {
	case OriginSource:
		return "source"
	case OriginInlined:
		return "inlined"
	case OriginMoved:
		return "moved"
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// Anchor names a position in the function: a block plus the rendering of the
// instruction the event happened at (for FateConverted that is the trapping
// dereference now carrying the check).
type Anchor struct {
	Block string `json:"block"`
	Instr string `json:"instr,omitempty"`
}

func (a Anchor) String() string {
	if a.Instr == "" {
		return a.Block
	}
	return a.Block + " @ " + a.Instr
}

// Check is the ledger entry of one null check instruction: a stable ID, its
// origin, and its terminal fate with anchors. IDs are assigned in discovery
// order (source checks first, in block order), so they are deterministic for
// a deterministic pipeline.
type Check struct {
	ID     int    `json:"id"`
	Var    string `json:"var"`
	Origin Origin `json:"-"`
	// BornPass is the pass that materialized the check ("" for source IR).
	BornPass string `json:"born_pass,omitempty"`
	Born     Anchor `json:"born"`
	Fate     Fate   `json:"-"`
	// FatePass is the pass that decided the fate ("final" for survivors).
	FatePass string `json:"fate_pass,omitempty"`
	At       Anchor `json:"at"`

	in *ir.Instr // identity key; nil-ed when the instruction is gone
}

// Ledger tracks every null check of one function through the pipeline. It
// implements ir.CheckTracker; jit attaches it via Func.Track for the
// duration of one observed compilation. A Ledger is used from a single
// goroutine (one compilation).
type Ledger struct {
	Fn     *ir.Func
	Method string
	Checks []*Check
	// Conflicts counts double-fate reports — like FateLost, a tracking bug.
	Conflicts int

	byInstr map[*ir.Instr]*Check
	pass    string
	seen    map[*ir.Instr]bool
}

// NewLedger builds a ledger for fn and records every null check already
// present (the source IR checks).
func NewLedger(fn *ir.Func, method string) *Ledger {
	l := &Ledger{
		Fn:      fn,
		Method:  method,
		byInstr: make(map[*ir.Instr]*Check),
		seen:    make(map[*ir.Instr]bool),
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpNullCheck {
				l.newCheck(in, OriginSource, "", b)
			}
		}
	}
	return l
}

// BeginPass labels subsequent events with the pass name.
func (l *Ledger) BeginPass(name string) { l.pass = name }

func (l *Ledger) varName(in *ir.Instr) string {
	v := int(in.NullCheckVar())
	if v >= 0 && v < len(l.Fn.Locals) && l.Fn.Locals[v].Name != "" {
		return l.Fn.Locals[v].Name
	}
	return fmt.Sprintf("v%d", v)
}

func (l *Ledger) newCheck(in *ir.Instr, o Origin, pass string, b *ir.Block) *Check {
	c := &Check{
		ID:       len(l.Checks),
		Var:      l.varName(in),
		Origin:   o,
		BornPass: pass,
		Born:     Anchor{Block: b.Name},
		in:       in,
	}
	l.Checks = append(l.Checks, c)
	l.byInstr[in] = c
	return c
}

// fate records the terminal event of in. A check materialized and consumed
// within a single pass (phase 2 emits explicit checks that its own peephole
// or substitutable stage may immediately delete) has no record yet; it gets
// one on the fly with OriginMoved so conservation still holds.
func (l *Ledger) fate(in *ir.Instr, ft Fate, at *ir.Instr, b *ir.Block) {
	c := l.byInstr[in]
	if c == nil {
		c = l.newCheck(in, OriginMoved, l.pass, b)
	}
	if c.Fate != FateNone {
		l.Conflicts++
		return
	}
	c.Fate = ft
	c.FatePass = l.pass
	c.At = Anchor{Block: b.Name}
	if at != nil {
		c.At.Instr = at.String()
	}
	// The byInstr mapping stays until the next Sync so that a second fate
	// report for the same instruction is caught as a conflict rather than
	// minting a phantom record.
}

// ir.CheckTracker implementation.

func (l *Ledger) Eliminated(in *ir.Instr, b *ir.Block) { l.fate(in, FateEliminated, nil, b) }
func (l *Ledger) Hoisted(in *ir.Instr, b *ir.Block)    { l.fate(in, FateHoisted, nil, b) }
func (l *Ledger) Sunk(in *ir.Instr, b *ir.Block)       { l.fate(in, FateSunk, nil, b) }
func (l *Ledger) Converted(in *ir.Instr, at *ir.Instr, b *ir.Block) {
	l.fate(in, FateConverted, at, b)
}
func (l *Ledger) Substituted(in *ir.Instr, b *ir.Block) { l.fate(in, FateSubstituted, nil, b) }
func (l *Ledger) Dead(in *ir.Instr, b *ir.Block)        { l.fate(in, FateDead, nil, b) }

// Sync walks the function after a pass: checks that appeared without a birth
// event get records (inline clones callee bodies, motion passes materialize
// insertion points), and tracked checks that disappeared without a fate
// event are marked FateLost — the safety net that turns a missed hook into a
// test failure instead of a silently wrong histogram.
func (l *Ledger) Sync() {
	for k := range l.seen {
		delete(l.seen, k)
	}
	for _, b := range l.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpNullCheck {
				continue
			}
			l.seen[in] = true
			if l.byInstr[in] == nil {
				o := OriginMoved
				if strings.HasPrefix(l.pass, "inline") {
					o = OriginInlined
				}
				l.newCheck(in, o, l.pass, b)
			}
		}
	}
	for in, c := range l.byInstr {
		if !l.seen[in] {
			if c.Fate == FateNone {
				c.Fate = FateLost
				c.FatePass = l.pass
			}
			c.in = nil
			delete(l.byInstr, in)
		}
	}
}

// Finish marks every surviving check FateRetained with its final position.
func (l *Ledger) Finish() {
	for _, b := range l.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpNullCheck {
				continue
			}
			if c := l.byInstr[in]; c != nil && c.Fate == FateNone {
				c.Fate = FateRetained
				c.FatePass = "final"
				c.At = Anchor{Block: b.Name}
				c.in = nil
				delete(l.byInstr, in)
			}
		}
	}
	// Anything still unfated is gone from the IR without a Sync having seen
	// it leave (can only happen if Finish runs without a final Sync).
	for in, c := range l.byInstr {
		if c.Fate == FateNone {
			c.Fate = FateLost
			c.FatePass = "final"
		}
		delete(l.byInstr, in)
		c.in = nil
	}
}

// FateCounts is the histogram of one or more ledgers. Origins and fates are
// counted separately; conservation means their totals agree. Fixed struct
// fields (never a map) keep the JSON rendering deterministic.
type FateCounts struct {
	Source  int `json:"source"`
	Inlined int `json:"inlined"`
	Moved   int `json:"moved"`

	Eliminated  int `json:"eliminated_redundant"`
	Hoisted     int `json:"hoisted"`
	Sunk        int `json:"sunk"`
	Converted   int `json:"converted_to_implicit"`
	Substituted int `json:"removed_substitutable"`
	Dead        int `json:"removed_dead"`
	Retained    int `json:"retained_explicit"`
	Lost        int `json:"lost,omitempty"`
}

// Add accumulates o into c.
func (c *FateCounts) Add(o FateCounts) {
	c.Source += o.Source
	c.Inlined += o.Inlined
	c.Moved += o.Moved
	c.Eliminated += o.Eliminated
	c.Hoisted += o.Hoisted
	c.Sunk += o.Sunk
	c.Converted += o.Converted
	c.Substituted += o.Substituted
	c.Dead += o.Dead
	c.Retained += o.Retained
	c.Lost += o.Lost
}

// Tracked is the number of checks that entered the ledger.
func (c FateCounts) Tracked() int { return c.Source + c.Inlined + c.Moved }

// Fated is the number of checks holding a terminal fate.
func (c FateCounts) Fated() int {
	return c.Eliminated + c.Hoisted + c.Sunk + c.Converted +
		c.Substituted + c.Dead + c.Retained + c.Lost
}

// Conserved reports the ledger invariant: every tracked check has exactly
// one fate and none of them is FateLost.
func (c FateCounts) Conserved() bool { return c.Tracked() == c.Fated() && c.Lost == 0 }

// Counts returns the ledger's histogram.
func (l *Ledger) Counts() FateCounts {
	var fc FateCounts
	for _, c := range l.Checks {
		switch c.Origin {
		case OriginSource:
			fc.Source++
		case OriginInlined:
			fc.Inlined++
		case OriginMoved:
			fc.Moved++
		}
		switch c.Fate {
		case FateEliminated:
			fc.Eliminated++
		case FateHoisted:
			fc.Hoisted++
		case FateSunk:
			fc.Sunk++
		case FateConverted:
			fc.Converted++
		case FateSubstituted:
			fc.Substituted++
		case FateDead:
			fc.Dead++
		case FateRetained:
			fc.Retained++
		case FateLost:
			fc.Lost++
		}
	}
	return fc
}

// Remarks collects the per-method ledgers of one program compilation.
type Remarks struct {
	mu      sync.Mutex
	ledgers []*Ledger
}

// NewRemarks returns an empty collection.
func NewRemarks() *Remarks { return &Remarks{} }

// NewLedger creates, registers and returns the ledger for fn.
func (r *Remarks) NewLedger(fn *ir.Func, method string) *Ledger {
	l := NewLedger(fn, method)
	r.mu.Lock()
	r.ledgers = append(r.ledgers, l)
	r.mu.Unlock()
	return l
}

// Ledgers returns the registered ledgers in compilation order.
func (r *Remarks) Ledgers() []*Ledger {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Ledger(nil), r.ledgers...)
}

// LedgerFor returns the ledger tracking fn, or nil.
func (r *Remarks) LedgerFor(fn *ir.Func) *Ledger {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.ledgers {
		if l.Fn == fn {
			return l
		}
	}
	return nil
}

// Totals aggregates every ledger's histogram.
func (r *Remarks) Totals() FateCounts {
	var fc FateCounts
	for _, l := range r.Ledgers() {
		fc.Add(l.Counts())
	}
	return fc
}

// Conflicts sums double-fate reports across ledgers (zero on a healthy
// pipeline).
func (r *Remarks) Conflicts() int {
	n := 0
	for _, l := range r.Ledgers() {
		n += l.Conflicts
	}
	return n
}

// ChecksAt returns terminal-fate labels of checks anchored in the named
// block of fn, in ID order — the hot-block report overlays these onto the
// execution profile. Matching is by block name: when a pass clones blocks
// without renaming (e.g. unrolling), every same-named block shares the
// annotation, which is the right reading for a "what happened to the checks
// here" overlay.
func (r *Remarks) ChecksAt(fn *ir.Func, block string) []string {
	l := r.LedgerFor(fn)
	if l == nil {
		return nil
	}
	var out []string
	for _, c := range l.Checks {
		if c.At.Block == block && c.Fate != FateNone {
			out = append(out, fmt.Sprintf("#%d %s: %s", c.ID, c.Var, c.Fate))
		}
	}
	return out
}

// Render writes the human-readable per-method fate ledger (nulljit -remarks).
func (r *Remarks) Render(sb *strings.Builder) {
	for _, l := range r.Ledgers() {
		if len(l.Checks) == 0 {
			continue
		}
		fmt.Fprintf(sb, "%s: %d checks tracked\n", l.Method, len(l.Checks))
		for _, c := range l.Checks {
			born := c.Born.Block
			if c.BornPass != "" {
				born += " (" + c.BornPass + ", " + c.Origin.String() + ")"
			}
			fmt.Fprintf(sb, "  #%-3d nullcheck %-8s %-28s -> %-22s", c.ID, c.Var, born, c.Fate.String())
			if c.FatePass != "" {
				fmt.Fprintf(sb, " [%s]", c.FatePass)
			}
			if c.At.Block != "" {
				fmt.Fprintf(sb, " at %s", c.At)
			}
			sb.WriteByte('\n')
		}
		fc := l.Counts()
		fmt.Fprintf(sb, "  = %s\n", fc.Summary())
	}
	t := r.Totals()
	fmt.Fprintf(sb, "total: %s\n", t.Summary())
	if !t.Conserved() || r.Conflicts() > 0 {
		fmt.Fprintf(sb, "CONSERVATION VIOLATED: tracked=%d fated=%d lost=%d conflicts=%d\n",
			t.Tracked(), t.Fated(), t.Lost, r.Conflicts())
	}
}

// Summary renders the histogram as one line, omitting zero buckets but
// keeping a fixed bucket order.
func (c FateCounts) Summary() string {
	var parts []string
	add := func(label string, n int) {
		if n != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", label, n))
		}
	}
	add("source", c.Source)
	add("inlined", c.Inlined)
	add("moved", c.Moved)
	add("eliminated", c.Eliminated)
	add("hoisted", c.Hoisted)
	add("sunk", c.Sunk)
	add("converted", c.Converted)
	add("substituted", c.Substituted)
	add("dead", c.Dead)
	add("retained", c.Retained)
	add("lost", c.Lost)
	if len(parts) == 0 {
		return "no checks"
	}
	return strings.Join(parts, " ")
}
