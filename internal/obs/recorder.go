package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Flight recorder: a bounded, deterministic timeline of every adaptive
// decision one machine makes — tier transitions, spec-guard blacklists,
// deopt transfers, governor demotions/backoffs/pins, chaos arms/fires.
// Events are stamped with LOGICAL clocks only (invocation index + dynamic
// step), never wall time, so the recorded timeline is a semantic fact:
// byte-identical across engines, parallelism, and hosts.

// RecEvent is one recorded adaptive decision.
type RecEvent struct {
	Invocation int    `json:"invocation"` // 1-based Machine.Call index
	Step       int64  `json:"step"`       // dynamic instruction step within the run
	Cat        string `json:"cat"`        // subsystem: tier, governor, cache, chaos
	Kind       string `json:"kind"`       // decision: promote-t1, deopt, demote, ...
	Subject    string `json:"subject"`    // method or cache key the decision is about
	Detail     string `json:"detail,omitempty"`
}

// Recorder accumulates one machine's events. Bounded: past cap (default
// 4096) events are dropped and counted, so a pathological storm cannot
// balloon memory — the drop count itself is deterministic. Owned by one
// Machine; not safe for concurrent use, matching the Machine itself.
// Nil-safe: all methods no-op on a nil receiver.
type Recorder struct {
	cap        int
	invocation int
	events     []RecEvent
	dropped    int64
}

// DefaultRecorderCap bounds a recorder's retained events.
const DefaultRecorderCap = 4096

// NewRecorder returns an empty recorder holding at most cap events
// (cap <= 0 selects DefaultRecorderCap).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &Recorder{cap: cap}
}

// BeginInvocation advances the logical invocation clock. The machine calls
// it at the top of every Call, so events sort by (invocation, step).
func (r *Recorder) BeginInvocation() {
	if r != nil {
		r.invocation++
	}
}

// Record appends one event at the current invocation and the given step.
func (r *Recorder) Record(step int64, cat, kind, subject, detail string) {
	if r == nil {
		return
	}
	if len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, RecEvent{
		Invocation: r.invocation, Step: step,
		Cat: cat, Kind: kind, Subject: subject, Detail: detail,
	})
}

// Events returns the recorded events in recording order.
func (r *Recorder) Events() []RecEvent {
	if r == nil {
		return nil
	}
	return append([]RecEvent(nil), r.events...)
}

// Dropped reports how many events the bound discarded.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// TimelineCell is one named strand (a bench cell, a nulljit run) of the
// merged timeline: its recorded events, drop count, and — when attribution
// was enabled — its trap-cost ledger.
type TimelineCell struct {
	Name    string       `json:"name"`
	Events  []RecEvent   `json:"events"`
	Dropped int64        `json:"dropped,omitempty"`
	Attr    *Attribution `json:"attr,omitempty"`
}

// Timeline merges the flight recorders of many cells into one deterministic
// report (benchtab -timeline / nulljit -timeline). Cells render sorted by
// name, notes in the order they were added; safe for concurrent Add.
type Timeline struct {
	mu    sync.Mutex
	cells []TimelineCell
	notes []string
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add records one cell's recorder output (and optional attribution ledger)
// under the given name. Nil-safe.
func (t *Timeline) Add(name string, rec *Recorder, attr *Attribution) {
	if t == nil {
		return
	}
	c := TimelineCell{Name: name, Events: rec.Events(), Dropped: rec.Dropped(), Attr: attr}
	t.mu.Lock()
	t.cells = append(t.cells, c)
	t.mu.Unlock()
}

// Note appends one free-form deterministic line (e.g. the cache event log)
// rendered after the cells. Nil-safe.
func (t *Timeline) Note(line string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.notes = append(t.notes, line)
	t.mu.Unlock()
}

// Cells returns the added cells sorted by name (recording order within each
// cell is preserved; names are unique per report by construction).
func (t *Timeline) Cells() []TimelineCell {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	cells := append([]TimelineCell(nil), t.cells...)
	t.mu.Unlock()
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
	return cells
}

// Render writes the deterministic text form: one section per cell (sorted by
// name), one line per event ordered by logical clock, then the notes.
func (t *Timeline) Render() string {
	var b strings.Builder
	b.WriteString("# adaptive-decision timeline (logical clocks: invocation/step)\n")
	for _, c := range t.Cells() {
		fmt.Fprintf(&b, "== %s ==\n", c.Name)
		if len(c.Events) == 0 && c.Attr == nil {
			b.WriteString("  (no adaptive events)\n")
		}
		for _, e := range c.Events {
			fmt.Fprintf(&b, "  inv %3d step %10d  %-8s %-22s %s", e.Invocation, e.Step, e.Cat, e.Kind, e.Subject)
			if e.Detail != "" {
				fmt.Fprintf(&b, "  (%s)", e.Detail)
			}
			b.WriteByte('\n')
		}
		if c.Dropped > 0 {
			fmt.Fprintf(&b, "  ... %d events dropped at cap\n", c.Dropped)
		}
		if c.Attr != nil {
			c.Attr.Render(&b, "  ")
		}
	}
	t.mu.Lock()
	notes := append([]string(nil), t.notes...)
	t.mu.Unlock()
	for _, n := range notes {
		b.WriteString(n)
		if !strings.HasSuffix(n, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
