package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Trap-cost attribution: the per-trap-site cycle ledger that makes the
// paper's cost model directly observable. Each run's total simulated cycles
// split into four buckets that sum EXACTLY to the reported total:
//
//	implicit  — cycles spent executing trap-eligible memory accesses
//	            (the "free" null checks folded into loads/stores)
//	explicit  — cycles spent executing compare-and-branch null checks,
//	            plus the software-throw dispatch for the nulls they caught
//	trap      — hardware trap dispatch: TrapsTaken × TrapDispatchCycles
//	guard_free— everything else (the program's real work)
//
// The machine package builds the ledger analytically from its per-site
// CheckCounts cells and its cycle model (obs sits below arch, so costs are
// passed in); conservation is by construction and pinned by tests.

// AttrSite is one trap site's row in the ledger.
type AttrSite struct {
	Method string `json:"method"`
	Kind   string `json:"kind"` // "implicit" or "explicit"
	Site   int    `json:"site"` // TrapSite ordinal within the method (1-based; 0 = unnumbered)
	Op     string `json:"op"`   // instruction mnemonic at the site
	Execs  int64  `json:"execs"`
	Nulls  int64  `json:"nulls"`
	Cycles int64  `json:"cycles"` // check cost attributed to the site (incl. software throws)
}

// Attribution is one run's complete trap-cost ledger.
type Attribution struct {
	TotalCycles    int64      `json:"total_cycles"`
	ImplicitCycles int64      `json:"implicit_cycles"`
	ExplicitCycles int64      `json:"explicit_cycles"`
	TrapCycles     int64      `json:"trap_cycles"`
	GuardFree      int64      `json:"guard_free_cycles"`
	TrapsTaken     int64      `json:"traps_taken"`
	Sites          []AttrSite `json:"sites,omitempty"`
}

// SortSites orders the ledger deterministically: method, then kind
// (explicit before implicit, alphabetical), then site ordinal, then op.
func SortSites(sites []AttrSite) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Op < b.Op
	})
}

// Sum returns the bucket total; conservation means Sum() == TotalCycles.
func (a *Attribution) Sum() int64 {
	return a.ImplicitCycles + a.ExplicitCycles + a.TrapCycles + a.GuardFree
}

// Conserves reports whether the ledger's buckets sum exactly to the run's
// reported cycles with a non-negative remainder.
func (a *Attribution) Conserves() bool {
	return a != nil && a.Sum() == a.TotalCycles && a.GuardFree >= 0
}

// Render writes the ledger's text form under indent, one line per bucket and
// one per site.
func (a *Attribution) Render(b *strings.Builder, indent string) {
	if a == nil {
		return
	}
	fmt.Fprintf(b, "%strap-cost attribution: total %d = implicit %d + explicit %d + trap %d + guard-free %d (traps %d)\n",
		indent, a.TotalCycles, a.ImplicitCycles, a.ExplicitCycles, a.TrapCycles, a.GuardFree, a.TrapsTaken)
	for _, s := range a.Sites {
		fmt.Fprintf(b, "%s  %-28s %-8s site %2d %-12s execs %10d nulls %6d cycles %10d\n",
			indent, s.Method, s.Kind, s.Site, s.Op, s.Execs, s.Nulls, s.Cycles)
	}
}
