package obs

import (
	"fmt"
	"sort"
	"strings"

	"trapnull/internal/ir"
)

// ExecProfile counts basic-block entries during simulated execution. The
// machines fetch one dense counter slice per function call and pay a single
// slice increment per block entry, so the enabled overhead stays inside the
// obs budget and the disabled cost is one nil test per call. Block-entry
// counts are semantic facts (identical across engines); a differential test
// in internal/machine pins that.
//
// An ExecProfile is owned by one Machine and is not safe for concurrent use,
// matching the Machine itself.
type ExecProfile struct {
	funcs  map[*ir.Func]*blockCounters
	order  []*ir.Func // registration order: deterministic iteration
	checks map[*ir.Instr]*CheckCounts
}

// blockCounters is one shared box of per-block entry counts. Block-aligned
// artifacts of the same method (conservative vs speculative vs demoted
// recompiles, interpreter fn vs compiled fn across tier promotions and deopt
// transfers) alias onto ONE box via BindCounters, so the profile survives
// artifact swaps instead of fragmenting across generations.
type blockCounters struct {
	counts []int64
}

// NewExecProfile returns an empty profile.
func NewExecProfile() *ExecProfile {
	return &ExecProfile{
		funcs:  make(map[*ir.Func]*blockCounters),
		checks: make(map[*ir.Instr]*CheckCounts),
	}
}

// CheckCounts is the per-null-check dynamic profile: how many times the check
// executed and how many of those executions saw a null reference. The tier
// controller speculates checks whose Execs is high and Nulls is zero. The
// machine binds one counter pointer per compiled check at prepare /
// closure-compile time, so the hot path pays two field increments and no map
// lookups.
type CheckCounts struct {
	Execs int64
	Nulls int64
}

// CheckCounter returns the counter cell for check instruction in, creating it
// on first use. Distinct *ir.Instr keys from block-aligned artifacts of the
// same method can be aliased onto one cell with BindCheck so conservative and
// speculative runs accumulate into the same profile.
func (p *ExecProfile) CheckCounter(in *ir.Instr) *CheckCounts {
	if c, ok := p.checks[in]; ok {
		return c
	}
	c := &CheckCounts{}
	p.checks[in] = c
	return c
}

// BindCheck aliases check instruction in onto an existing counter cell. The
// tier controller uses it to point a speculative recompile's checks at the
// conservative artifact's counters (same method, same check ordinals).
func (p *ExecProfile) BindCheck(in *ir.Instr, c *CheckCounts) { p.checks[in] = c }

// PeekCheck returns the counter cell for in, or nil if it never executed and
// was never bound. Read-only: it does not allocate a cell.
func (p *ExecProfile) PeekCheck(in *ir.Instr) *CheckCounts { return p.checks[in] }

// Counters returns fn's per-block entry counters, indexed by block ID.
func (p *ExecProfile) Counters(fn *ir.Func) []int64 {
	return p.box(fn).counts
}

func (p *ExecProfile) box(fn *ir.Func) *blockCounters {
	if b, ok := p.funcs[fn]; ok {
		return b
	}
	b := &blockCounters{counts: make([]int64, fn.MaxBlockID()+1)}
	p.funcs[fn] = b
	p.order = append(p.order, fn)
	return b
}

// BindCounters aliases fn2's block counters onto fn's box, so a block-aligned
// recompile of the same method keeps accumulating into one profile across
// tier promotions, OSR entries, and deopt transfers. If fn2 already counted
// into a box of its own, those entries merge into fn's box first (block IDs
// line up by the block-aligned contract). A size mismatch means the artifacts
// are NOT block-aligned; the bind is refused and fn2 keeps separate counters.
func (p *ExecProfile) BindCounters(fn2, fn *ir.Func) {
	if fn2 == fn {
		return
	}
	dst := p.box(fn)
	if prev, ok := p.funcs[fn2]; ok {
		if prev == dst {
			return
		}
		if len(prev.counts) != len(dst.counts) {
			return
		}
		for i, v := range prev.counts {
			dst.counts[i] += v
		}
		prev.counts = nil // emptied: the box stays in order but counts nothing
	} else if fn2.MaxBlockID()+1 != len(dst.counts) {
		return
	} else {
		p.order = append(p.order, fn2)
	}
	p.funcs[fn2] = dst
}

// TotalBlocks sums every block-entry count. Aliased functions share one box,
// which is summed once.
func (p *ExecProfile) TotalBlocks() int64 {
	var n int64
	seen := make(map[*blockCounters]bool, len(p.funcs))
	for _, b := range p.funcs {
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, v := range b.counts {
			n += v
		}
	}
	return n
}

// HotBlock is one profiled block with its source anchors.
type HotBlock struct {
	Fn     *ir.Func
	Method string
	Block  string
	Count  int64
}

// Hot returns the top-n blocks by entry count. Ordering is deterministic:
// count descending, then method name, then block name.
func (p *ExecProfile) Hot(n int) []HotBlock {
	var all []HotBlock
	seen := make(map[*blockCounters]bool, len(p.funcs))
	for _, fn := range p.order {
		box := p.funcs[fn]
		if box == nil || seen[box] {
			continue // a later generation aliased onto an earlier box
		}
		seen[box] = true
		counters := box.counts
		name := funcLabel(fn)
		for _, b := range fn.Blocks {
			if b.ID < len(counters) && counters[b.ID] > 0 {
				all = append(all, HotBlock{Fn: fn, Method: name, Block: b.Name, Count: counters[b.ID]})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Method != all[j].Method {
			return all[i].Method < all[j].Method
		}
		return all[i].Block < all[j].Block
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

func funcLabel(fn *ir.Func) string {
	if fn.Method != nil {
		return fn.Method.QualifiedName()
	}
	return fn.Name
}

// BlockProfile is the serializable form of one hot block, with the fates of
// the checks anchored there overlaid when remarks were collected.
type BlockProfile struct {
	Method string   `json:"method"`
	Block  string   `json:"block"`
	Count  int64    `json:"count"`
	Checks []string `json:"checks,omitempty"`
}

// ProfileSummary is the deterministic, JSON-friendly digest of one profiled
// run: total block entries, the trap/check dynamics, and the top-N blocks.
// Fields are fixed-order structs and sorted slices — never maps — so two
// marshals of the same run are byte-identical.
type ProfileSummary struct {
	BlocksEntered  int64          `json:"blocks_entered"`
	TrapsTaken     int64          `json:"traps_taken"`
	ExplicitChecks int64          `json:"dyn_explicit_checks"`
	ImplicitSites  int64          `json:"dyn_implicit_sites"`
	Hot            []BlockProfile `json:"hot_blocks"`
}

// Summary digests the profile. rem may be nil; when present, each hot block
// is annotated with the terminal fates of the checks anchored in it. The
// trap/check counters come from the machine's ExecStats (passed in by the
// caller — obs sits below the machine package).
func (p *ExecProfile) Summary(topN int, rem *Remarks, traps, explicit, implicit int64) *ProfileSummary {
	s := &ProfileSummary{
		BlocksEntered:  p.TotalBlocks(),
		TrapsTaken:     traps,
		ExplicitChecks: explicit,
		ImplicitSites:  implicit,
	}
	for _, hb := range p.Hot(topN) {
		bp := BlockProfile{Method: hb.Method, Block: hb.Block, Count: hb.Count}
		if rem != nil {
			bp.Checks = rem.ChecksAt(hb.Fn, hb.Block)
		}
		s.Hot = append(s.Hot, bp)
	}
	return s
}

// Render writes the hot-block report (benchtab -profile, nulljit -profile).
func (s *ProfileSummary) Render(sb *strings.Builder) {
	fmt.Fprintf(sb, "blocks entered %d, traps taken %d, explicit checks %d, implicit sites %d\n",
		s.BlocksEntered, s.TrapsTaken, s.ExplicitChecks, s.ImplicitSites)
	for i, h := range s.Hot {
		fmt.Fprintf(sb, "  %2d. %-28s %-14s %12d", i+1, h.Method, h.Block, h.Count)
		if len(h.Checks) > 0 {
			fmt.Fprintf(sb, "  [%s]", strings.Join(h.Checks, "; "))
		}
		sb.WriteByte('\n')
	}
}
