package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics registry: the unified counter plane every subsystem reports
// through (benchtab -metrics, nulljit -metrics). Three properties carry over
// from the rest of the obs layer:
//
//   - Deterministic serialization. Snapshots render in REGISTRATION order —
//     never map order — and the bench harness registers the full standard
//     metric set up front (single-threaded, before any worker starts), so
//     the same sweep produces byte-identical snapshots at any parallelism
//     and on either engine.
//   - Zero cost when disabled. Every method is nil-safe on both *Registry
//     and *Metric, so callers hold a possibly-nil registry and pay one nil
//     test per publish point; the hot execution paths never touch metrics at
//     all (subsystems publish their existing private tallies after the fact).
//   - Volatile metrics are quarantined. Host timings and interleaving-
//     dependent counts (compile µs, single-flight waits) register as
//     volatile; Snapshot(false) excludes them, which is what the determinism
//     contract — and the CI telemetry smoke — compares.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Metric is one typed cell. Counters and gauges hold a single int64; a
// histogram additionally holds cumulative-style bucket counts over fixed
// upper bounds. Updates are atomic (commutative), so concurrent publishers
// still sum deterministically.
type Metric struct {
	name     string
	help     string
	kind     MetricKind
	volatile bool

	v       atomic.Int64
	bounds  []int64 // histogram upper bounds, strictly increasing
	buckets []atomic.Int64
}

// Name returns the metric's registered name.
func (m *Metric) Name() string { return m.name }

// Add increments a counter (or shifts a gauge) by n. Nil-safe.
func (m *Metric) Add(n int64) {
	if m != nil {
		m.v.Add(n)
	}
}

// Set stores a gauge value. Nil-safe.
func (m *Metric) Set(v int64) {
	if m != nil {
		m.v.Store(v)
	}
}

// Observe records one histogram sample: the first bucket whose upper bound
// admits v counts it (the last bucket is the overflow). Nil-safe.
func (m *Metric) Observe(v int64) {
	if m == nil {
		return
	}
	m.v.Add(v)
	for i, ub := range m.bounds {
		if v <= ub {
			m.buckets[i].Add(1)
			return
		}
	}
	m.buckets[len(m.buckets)-1].Add(1)
}

// Registry holds metrics in registration order.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*Metric
	order  []*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Metric)}
}

// get returns the named metric, creating it on first registration. A name
// registered twice returns the original cell (kind and flags win on first
// registration), so create-or-get publish points are safe.
func (r *Registry) get(name, help string, kind MetricKind, volatile bool, bounds []int64) *Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := &Metric{name: name, help: help, kind: kind, volatile: volatile}
	if kind == KindHistogram {
		m.bounds = append([]int64(nil), bounds...)
		m.buckets = make([]atomic.Int64, len(bounds)+1)
	}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns) a deterministic counter. Nil-safe.
func (r *Registry) Counter(name, help string) *Metric {
	return r.get(name, help, KindCounter, false, nil)
}

// VolatileCounter registers a counter whose value depends on host timing or
// goroutine interleaving (compile µs, single-flight waits). Volatile metrics
// are excluded from deterministic snapshots.
func (r *Registry) VolatileCounter(name, help string) *Metric {
	return r.get(name, help, KindCounter, true, nil)
}

// Gauge registers (or returns) a deterministic gauge. Nil-safe.
func (r *Registry) Gauge(name, help string) *Metric {
	return r.get(name, help, KindGauge, false, nil)
}

// Histogram registers (or returns) a deterministic histogram over the given
// strictly-increasing upper bounds; one overflow bucket is added. Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []int64) *Metric {
	return r.get(name, help, KindHistogram, false, bounds)
}

// HistBucket is one serialized histogram bucket: samples ≤ Le. Le of the
// overflow bucket is -1 (rendered "+inf").
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// MetricSnapshot is the fixed-order serialized form of one metric.
type MetricSnapshot struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Value   int64        `json:"value"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures every metric in registration order. includeVolatile
// selects whether timing/interleaving-dependent metrics appear; the
// determinism contract compares Snapshot(false) only. Nil-safe (returns nil).
func (r *Registry) Snapshot(includeVolatile bool) []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	order := append([]*Metric(nil), r.order...)
	r.mu.Unlock()
	var out []MetricSnapshot
	for _, m := range order {
		if m.volatile && !includeVolatile {
			continue
		}
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String(), Value: m.v.Load()}
		if m.kind == KindHistogram {
			for i := range m.buckets {
				le := int64(-1)
				if i < len(m.bounds) {
					le = m.bounds[i]
				}
				s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: m.buckets[i].Load()})
			}
		}
		out = append(out, s)
	}
	return out
}

// RenderText writes the snapshot as the benchtab/nulljit -metrics text form:
// one "name kind value" line per metric in registration order, histogram
// buckets indented beneath. Deterministic for includeVolatile=false.
func (r *Registry) RenderText(includeVolatile bool) string {
	var b strings.Builder
	b.WriteString("# telemetry metrics snapshot\n")
	for _, s := range r.Snapshot(includeVolatile) {
		fmt.Fprintf(&b, "%-32s %-10s %d\n", s.Name, s.Kind, s.Value)
		for _, hb := range s.Buckets {
			if hb.Le < 0 {
				fmt.Fprintf(&b, "  le=+inf %d\n", hb.Count)
			} else {
				fmt.Fprintf(&b, "  le=%d %d\n", hb.Le, hb.Count)
			}
		}
	}
	return b.String()
}

// JSON renders the snapshot as a deterministic JSON array (fixed-order
// structs, registration-ordered).
func (r *Registry) JSON(includeVolatile bool) ([]byte, error) {
	snap := r.Snapshot(includeVolatile)
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	return json.MarshalIndent(snap, "", "  ")
}
