package obs

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// Event is one Chrome trace-event (the "Trace Event Format" consumed by
// Perfetto and chrome://tracing). Two phases are emitted: complete events
// (ph "X") carry their own duration and nest by containment within the same
// pid/tid lane; instant events (ph "i", scope "t") mark adaptive decisions
// as zero-width ticks on the cell's lane.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// Trace collects spans from concurrent compilations and executions. Each
// logical strand (one bench cell, one nulljit run) takes its own tid via
// NextTID so its spans nest in their own lane. Safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	ev    []Event
	tid   int64
}

// NewTrace starts an empty trace; timestamps are relative to this call.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// NextTID allocates a fresh lane for one strand of spans.
func (t *Trace) NextTID() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tid++
	return t.tid
}

// Span records one complete event on the given lane.
func (t *Trace) Span(tid int64, cat, name string, start time.Time, dur time.Duration, args map[string]any) {
	e := Event{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		TS:   float64(start.Sub(t.start)) / float64(time.Microsecond),
		Dur:  float64(dur) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: args,
	}
	t.mu.Lock()
	t.ev = append(t.ev, e)
	t.mu.Unlock()
}

// Instant records one zero-width thread-scoped instant event (ph "i") on the
// given lane — the Perfetto form of an adaptive decision from the flight
// recorder. at is the wall position on the lane; the decision's logical
// clocks travel in args.
func (t *Trace) Instant(tid int64, cat, name string, at time.Time, args map[string]any) {
	e := Event{
		Name: name,
		Cat:  cat,
		Ph:   "i",
		TS:   float64(at.Sub(t.start)) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		S:    "t",
		Args: args,
	}
	t.mu.Lock()
	t.ev = append(t.ev, e)
	t.mu.Unlock()
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.ev...)
}

// traceFile is the JSON object form of the trace-event format; Perfetto also
// accepts a bare array, but the object form carries the display unit.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// JSON renders the trace as Perfetto-loadable trace-event JSON.
func (t *Trace) JSON() ([]byte, error) {
	f := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []Event{}
	}
	return json.MarshalIndent(f, "", " ")
}

// WriteFile validates and writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	data, err := t.JSON()
	if err != nil {
		return err
	}
	if !json.Valid(data) {
		// Unreachable for a correct encoder; kept as the explicit "the file
		// we ship parses" guarantee the CI smoke pass relies on.
		return os.ErrInvalid
	}
	return os.WriteFile(path, data, 0o644)
}
