// Package obs is the unified observability layer for the compiler and the
// simulated machines: pass tracing (Chrome trace-event spans, viewable in
// Perfetto), null-check fate remarks (a per-check ledger from source IR to
// terminal fate, in the spirit of LLVM's -Rpass optimization remarks), and
// execution profiling (per-block entry counters plus trap/check dynamics).
//
// Everything here is zero-cost when disabled: the compiler and machines hold
// nil pointers and guard every hook with a nil test, and an equivalence test
// in internal/bench pins the quick-sweep artifacts bit-identical with the
// layer off. See DESIGN.md §9.
package obs
