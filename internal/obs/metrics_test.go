package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryRegistrationOrder pins the determinism mechanism: snapshots
// render in registration order, never map order, and re-registering a name
// returns the original cell.
func TestRegistryRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last", "")
	r.Counter("a.first", "")
	r.Gauge("m.middle", "")
	snap := r.Snapshot(false)
	got := []string{snap[0].Name, snap[1].Name, snap[2].Name}
	want := []string{"z.last", "a.first", "m.middle"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", got, want)
		}
	}
	c1 := r.Counter("z.last", "")
	c1.Add(5)
	if r.Snapshot(false)[0].Value != 5 {
		t.Error("re-registration returned a fresh cell instead of the original")
	}
	if len(r.Snapshot(false)) != 3 {
		t.Error("re-registration grew the registry")
	}
}

// TestRegistryVolatileQuarantine pins the volatile split: Snapshot(false)
// excludes volatile metrics, Snapshot(true) includes them in order.
func TestRegistryVolatileQuarantine(t *testing.T) {
	r := NewRegistry()
	r.Counter("det", "").Add(1)
	r.VolatileCounter("host_us", "").Add(12345)
	det := r.Snapshot(false)
	if len(det) != 1 || det[0].Name != "det" {
		t.Fatalf("deterministic snapshot leaked volatile metrics: %+v", det)
	}
	all := r.Snapshot(true)
	if len(all) != 2 || all[1].Name != "host_us" {
		t.Fatalf("volatile snapshot wrong: %+v", all)
	}
	if strings.Contains(r.RenderText(false), "host_us") {
		t.Error("RenderText(false) leaked a volatile metric")
	}
}

// TestHistogramBuckets pins the bucket semantics: first admitting bound
// counts the sample, the overflow bucket takes the rest, and the value field
// accumulates the raw sum.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cycles", "", []int64{10, 100})
	for _, v := range []int64{5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot(false)[0]
	if s.Value != 1065 {
		t.Errorf("histogram sum %d, want 1065", s.Value)
	}
	counts := []int64{s.Buckets[0].Count, s.Buckets[1].Count, s.Buckets[2].Count}
	want := []int64{2, 1, 1} // ≤10: {5,10}; ≤100: {50}; +inf: {1000}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", counts, want)
		}
	}
	if s.Buckets[2].Le != -1 {
		t.Errorf("overflow bucket Le = %d, want -1", s.Buckets[2].Le)
	}
}

// TestRegistryNilSafe pins the zero-cost-off contract: every method no-ops on
// a nil registry and a nil metric.
func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	m := r.Counter("x", "")
	m.Add(1)
	m.Set(2)
	m.Observe(3)
	if r.Snapshot(true) != nil {
		t.Error("nil registry produced a snapshot")
	}
}

// TestRegistryConcurrentPublish pins that concurrent Add calls sum correctly
// (atomic, commutative) so parallel sweep workers cannot corrupt a counter.
func TestRegistryConcurrentPublish(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot(false)[0].Value; got != 8000 {
		t.Errorf("concurrent adds summed to %d, want 8000", got)
	}
}

// TestRecorderBound pins the flight recorder's cap: events past the bound
// are dropped and counted, deterministically.
func TestRecorderBound(t *testing.T) {
	rec := NewRecorder(3)
	rec.BeginInvocation()
	for i := 0; i < 5; i++ {
		rec.Record(int64(i), "tier", "promote-t1", "m", "")
	}
	if n := len(rec.Events()); n != 3 {
		t.Errorf("recorder kept %d events past a cap of 3", n)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
}

// TestRecorderNilSafe pins that a machine without a recorder pays only nil
// tests: all methods no-op on nil.
func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.BeginInvocation()
	rec.Record(1, "a", "b", "c", "d")
	if rec.Events() != nil || rec.Dropped() != 0 {
		t.Error("nil recorder recorded something")
	}
	var tl *Timeline
	tl.Add("x", rec, nil)
	tl.Note("y")
	if tl.Cells() != nil {
		t.Error("nil timeline holds cells")
	}
}

// TestTimelineRenderSorted pins the merge determinism: cells render sorted
// by name regardless of Add order, so concurrent workers cannot reorder the
// report.
func TestTimelineRenderSorted(t *testing.T) {
	tl := NewTimeline()
	rec := NewRecorder(0)
	rec.BeginInvocation()
	rec.Record(7, "governor", "demote", "List.walk", "site 2")
	tl.Add("zeta", rec, nil)
	tl.Add("alpha", nil, &Attribution{TotalCycles: 10, GuardFree: 10})
	out := tl.Render()
	if strings.Index(out, "== alpha ==") > strings.Index(out, "== zeta ==") {
		t.Errorf("cells not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, "inv   1 step          7") {
		t.Errorf("event line missing logical clocks:\n%s", out)
	}
	if !strings.Contains(out, "total 10 = implicit 0 + explicit 0 + trap 0 + guard-free 10") {
		t.Errorf("attribution line missing:\n%s", out)
	}
}
