package ir

import "fmt"

// Local is a local variable slot. Parameters occupy the first slots.
type Local struct {
	Name string
	Kind Kind
}

// TryRegion describes a try/catch scope. Blocks carry the region index; the
// handler receives the thrown exception object in ExcVar. NoTry marks blocks
// outside any region. Motion of null checks across a region boundary is
// forbidden (the Edge_try sets of the paper).
type TryRegion struct {
	ID      int
	Handler *Block
	// ExcVar receives the caught exception reference in the handler.
	ExcVar VarID
}

// NoTry is the region index of blocks outside any try region.
const NoTry = -1

// Block is a basic block. Instrs always ends with a terminator once the
// function is sealed. Preds/Succs are derived and refreshed by
// RecomputeEdges after any CFG surgery.
type Block struct {
	ID     int
	Name   string
	Instrs []*Instr
	Try    int // try region index or NoTry

	Preds []*Block
	Succs []*Block
}

// Terminator returns the final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// InsertBefore inserts instruction in before index i.
func (b *Block) InsertBefore(i int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// InsertBeforeTerminator inserts in just before the block terminator.
func (b *Block) InsertBeforeTerminator(in *Instr) {
	if t := b.Terminator(); t == nil {
		b.Instrs = append(b.Instrs, in)
	} else {
		b.InsertBefore(len(b.Instrs)-1, in)
	}
}

func (b *Block) String() string {
	if b.Name != "" {
		return fmt.Sprintf("B%d(%s)", b.ID, b.Name)
	}
	return fmt.Sprintf("B%d", b.ID)
}

// Func is a single compiled function.
type Func struct {
	Name      string
	Method    *Method // back-pointer if this is a method body
	NumParams int
	// IsInstance marks methods whose first parameter is the receiver; the
	// receiver is known non-null on entry (Edge rule in §4.1.2).
	IsInstance bool
	Locals     []Local
	Blocks     []*Block
	Entry      *Block
	Regions    []*TryRegion
	ResultKind Kind
	HasResult  bool

	// Track, when non-nil, observes the fate of every null check the
	// optimization passes remove from this function. It is attached only for
	// the duration of an observed compilation (jit.CompileProgramObserved)
	// and is deliberately not copied by Clone: snapshots replayed by the
	// triage machinery must not double-report events.
	Track CheckTracker

	// arena backs Instr/Block/operand allocation for this function. Lazily
	// created by Alloc; may be shared with the other Funcs of one Program
	// generation (randprog). Never copied by Clone — clones have independent
	// lifetimes and must survive a Reset of the original's arena.
	arena *Arena

	nextBlockID int
}

// Alloc returns the function's arena, creating one on first use. Every
// optimization pass allocates replacement instructions through it.
func (f *Func) Alloc() *Arena {
	if f.arena == nil {
		f.arena = NewArena()
	}
	return f.arena
}

// SetArena attaches a (possibly shared) arena. Used by randprog's GenerateIn
// so one recycled arena backs a whole generated program.
func (f *Func) SetArena(a *Arena) { f.arena = a }

// NewLocal appends a local variable and returns its ID.
func (f *Func) NewLocal(name string, k Kind) VarID {
	f.Locals = append(f.Locals, Local{Name: name, Kind: k})
	return VarID(len(f.Locals) - 1)
}

// NumLocals returns the local variable count; analyses size their bit
// vectors with it.
func (f *Func) NumLocals() int { return len(f.Locals) }

// NewBlock appends an empty block.
func (f *Func) NewBlock(name string) *Block {
	b := f.arena.NewBlock(Block{ID: f.nextBlockID, Name: name, Try: NoTry})
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

// MaxBlockID returns the largest block ID in the function, or -1 when it has
// no blocks. Block IDs are assigned sequentially and never reused, so dense
// per-block tables are indexed by ID and sized MaxBlockID()+1.
func (f *Func) MaxBlockID() int {
	max := -1
	for _, b := range f.Blocks {
		if b.ID > max {
			max = b.ID
		}
	}
	return max
}

// NewRegion declares a try region with the given handler block.
func (f *Func) NewRegion(handler *Block, excVar VarID) *TryRegion {
	r := &TryRegion{ID: len(f.Regions), Handler: handler, ExcVar: excVar}
	f.Regions = append(f.Regions, r)
	return r
}

// RecomputeEdges rebuilds Preds/Succs from the block terminators. Handler
// edges are intentionally not part of the normal CFG; the analyses treat try
// boundaries via the Try indices instead, as the paper does.
func (f *Func) RecomputeEdges() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for _, s := range t.Targets {
			b.Succs = append(b.Succs, s)
			s.Preds = append(s.Preds, b)
		}
	}
}

// SplitCriticalEdges inserts an empty block on every edge whose source has
// multiple successors and whose destination has multiple predecessors. The
// phase 2 placement (and optimal PRE placement generally) needs critical
// edges gone so that "insert at block exit / entry" can express every edge
// placement. New blocks inherit the try region of the edge destination when
// both endpoints share a region, else the source's region.
func (f *Func) SplitCriticalEdges() int {
	f.RecomputeEdges()
	split := 0
	// Collect first: we mutate f.Blocks while iterating otherwise.
	type edge struct {
		from *Block
		idx  int // index into from.Terminator().Targets
	}
	var critical []edge
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || len(t.Targets) < 2 {
			continue
		}
		for i, s := range t.Targets {
			if len(s.Preds) >= 2 {
				critical = append(critical, edge{b, i})
			}
		}
	}
	for _, e := range critical {
		t := e.from.Terminator()
		dst := t.Targets[e.idx]
		mid := f.NewBlock(fmt.Sprintf("crit%d_%d", e.from.ID, dst.ID))
		if e.from.Try == dst.Try {
			mid.Try = dst.Try
		} else {
			mid.Try = e.from.Try
		}
		mid.Instrs = []*Instr{f.arena.NewInstr(Instr{Op: OpJump, Dst: NoVar, Targets: []*Block{dst}})}
		t.Targets[e.idx] = mid
		split++
	}
	if split > 0 {
		f.RecomputeEdges()
	}
	return split
}

// RemoveInstr deletes the instruction at index i of block b.
func (b *Block) RemoveInstr(i int) {
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
}

// Clone deep-copies the function. Instructions and blocks are fresh; Field,
// Class and Method pointers are shared (they are program-level metadata).
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:        f.Name,
		Method:      f.Method,
		NumParams:   f.NumParams,
		IsInstance:  f.IsInstance,
		Locals:      append([]Local(nil), f.Locals...),
		ResultKind:  f.ResultKind,
		HasResult:   f.HasResult,
		nextBlockID: f.nextBlockID,
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name, Try: b.Try}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	nf.Entry = bmap[f.Entry]
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ci := in.Clone()
			for i, tgt := range ci.Targets {
				ci.Targets[i] = bmap[tgt]
			}
			nb.Instrs = append(nb.Instrs, ci)
		}
	}
	for _, r := range f.Regions {
		nf.Regions = append(nf.Regions, &TryRegion{ID: r.ID, Handler: bmap[r.Handler], ExcVar: r.ExcVar})
	}
	nf.RecomputeEdges()
	return nf
}

// CountOp returns how many instructions with opcode op the function has;
// tests and the statistics reporting use it.
func (f *Func) CountOp(op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// NullChecks returns every OpNullCheck instruction in block order. The slice
// index is the check's canonical ordinal: the tier controller numbers its
// speculation mask with it and the jit speculation pass applies the mask by
// it, so the two sides can never drift as long as both walk the same
// deterministic compiled body.
func (f *Func) NullChecks() []*Instr {
	var checks []*Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpNullCheck {
				checks = append(checks, in)
			}
		}
	}
	return checks
}

// NumInstrs returns the total instruction count.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}
