// Package ir defines the intermediate representation of the trapnull JIT.
//
// The IR mirrors the one described in the paper: a control-flow graph of
// basic blocks over named local variables, in which every potentially
// null-dereferencing operation has been split into an explicit `nullcheck v`
// instruction followed by the operation itself (Figure 6 of the paper). The
// null check optimizations move, eliminate and re-materialize the NullCheck
// instructions; the dereferencing instructions themselves never move unless a
// memory-motion pass (scalar replacement / LICM) relocates them.
//
// Values are untyped 64-bit words at runtime; the static Kind on locals is
// used for validation and printing. References are simulated heap addresses
// and the null reference is address zero, exactly as on the paper's target
// machines.
package ir

import "fmt"

// Kind is the static type of a local variable or field.
type Kind uint8

const (
	KindInt Kind = iota // 64-bit integer
	KindFloat
	KindRef // object or array reference
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindRef:
		return "ref"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// VarID names a local variable within a function. Parameters occupy the
// lowest IDs. NoVar marks an absent destination.
type VarID int32

// NoVar is the destination of instructions that produce no value.
const NoVar VarID = -1

// ObjectHeaderBytes is the size of the object header. Slot 0 of every object
// holds its class ID (the dispatch table pointer in a real VM), so a virtual
// call dereferences offset 0 and is therefore a hardware-trap point; fields
// start immediately after the header.
const ObjectHeaderBytes = 8

// ArrayHeaderBytes is the size of the array header. The array length lives at
// offset 0 — the layout the paper calls out as making `arraylength` (and thus
// every bounds check) a reliable trap point.
const ArrayHeaderBytes = 8

// WordBytes is the size of every slot.
const WordBytes = 8

// Field describes an instance field.
type Field struct {
	Name   string
	Kind   Kind
	Offset int32 // byte offset from the object base, ≥ ObjectHeaderBytes
	Class  *Class
}

func (f *Field) String() string {
	if f.Class != nil {
		return f.Class.Name + "." + f.Name
	}
	return f.Name
}

// Class describes an object layout and its virtual method table.
type Class struct {
	Name    string
	ID      int32
	Fields  []*Field
	Methods []*Method // virtual slots, in declaration order
	// SizeBytes is header plus all fields.
	SizeBytes int32
}

// FieldByName returns the named field or nil.
func (c *Class) FieldByName(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MethodByName returns the named virtual method or nil.
func (c *Class) MethodByName(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Method binds a function to a class (or to the program for statics).
type Method struct {
	Name    string
	Class   *Class // nil for static methods
	Fn      *Func
	Virtual bool
	// Intrinsic marks methods like Math.exp that some architectures lower to
	// a single instruction instead of a call (paper §5.4, Neural Net).
	Intrinsic MathFn
}

// QualifiedName returns Class.Name or just the method name for statics.
func (m *Method) QualifiedName() string {
	if m.Class != nil {
		return m.Class.Name + "." + m.Name
	}
	return m.Name
}

// Program is a compilation unit: classes plus free-standing functions.
type Program struct {
	Name    string
	Classes []*Class
	Methods []*Method // all methods, including statics
	nextID  int32
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name}
}

// NewClass declares a class with the given fields; offsets are assigned
// sequentially after the header unless a field already carries a non-zero
// offset (used to model the paper's "BigOffset" fields beyond the trap area).
func (p *Program) NewClass(name string, fields ...*Field) *Class {
	c := &Class{Name: name, ID: p.nextID + 1}
	p.nextID++
	off := int32(ObjectHeaderBytes)
	max := int32(ObjectHeaderBytes)
	for _, f := range fields {
		if f.Offset == 0 {
			f.Offset = off
			off += WordBytes
		}
		f.Class = c
		if f.Offset+WordBytes > max {
			max = f.Offset + WordBytes
		}
		c.Fields = append(c.Fields, f)
	}
	c.SizeBytes = max
	p.Classes = append(p.Classes, c)
	return c
}

// AddMethod registers a method on a class (virtual) or the program (static).
func (p *Program) AddMethod(c *Class, name string, fn *Func, virtual bool) *Method {
	m := &Method{Name: name, Class: c, Fn: fn, Virtual: virtual}
	if c != nil {
		c.Methods = append(c.Methods, m)
	}
	p.Methods = append(p.Methods, m)
	if fn != nil {
		fn.Method = m
	}
	return m
}

// MethodByName finds a method by qualified name ("Class.m" or "m").
func (p *Program) MethodByName(qname string) *Method {
	for _, m := range p.Methods {
		if m.QualifiedName() == qname {
			return m
		}
	}
	return nil
}

// ClassByName returns the named class or nil.
func (p *Program) ClassByName(name string) *Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ClassByID returns the class with the given ID or nil.
func (p *Program) ClassByID(id int32) *Class {
	for _, c := range p.Classes {
		if c.ID == id {
			return c
		}
	}
	return nil
}
