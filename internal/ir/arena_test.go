package ir

import "testing"

// TestArenaPointerStability: pointers handed out stay valid and distinct as
// the arena grows through multiple chunks. Instruction identity is load-
// bearing everywhere (tracker keys, prepared caches), so slab growth must
// never move an already-issued Instr.
func TestArenaPointerStability(t *testing.T) {
	a := NewArena()
	const n = arenaMaxChunk*2 + 17 // forces several chunk transitions
	ptrs := make([]*Instr, n)
	for i := 0; i < n; i++ {
		ptrs[i] = a.NewInstr(Instr{Op: OpMove, Dst: VarID(i)})
	}
	seen := make(map[*Instr]bool, n)
	for i, p := range ptrs {
		if seen[p] {
			t.Fatalf("instr %d aliases an earlier allocation", i)
		}
		seen[p] = true
		if p.Dst != VarID(i) {
			t.Fatalf("instr %d: Dst = %d, want %d (later allocations overwrote it)", i, p.Dst, i)
		}
	}
	if got := a.InstrsAllocated(); got != n {
		t.Fatalf("InstrsAllocated = %d, want %d", got, n)
	}
}

// TestArenaOperandAppendDoesNotClobber: operand slices are full-capacity
// sliced, so appending to one reallocates instead of overwriting the next
// instruction's operands in the same chunk.
func TestArenaOperandAppendDoesNotClobber(t *testing.T) {
	a := NewArena()
	first := a.Operands(Var(1), Var(2))
	second := a.Operands(Var(3), Var(4))
	_ = append(first, ConstInt(99))
	if second[0] != Var(3) || second[1] != Var(4) {
		t.Fatalf("append to a neighbouring operand slice clobbered later operands: %v", second)
	}
	if cap(first) != len(first) {
		t.Fatalf("arena operand slice has spare capacity %d > len %d; appends would alias the slab", cap(first), len(first))
	}
}

// TestArenaReset: after Reset the recycled memory is zeroed, the arena
// reuses its largest chunk, and new allocations start fresh.
func TestArenaReset(t *testing.T) {
	a := NewArena()
	blk := a.NewBlock(Block{ID: 7, Name: "x"})
	in := a.NewInstr(Instr{Op: OpJump, Targets: []*Block{blk}})
	ops := a.Operands(Var(5))
	a.Reset()
	if in.Op != OpInvalid || in.Targets != nil {
		t.Fatalf("Reset left stale instruction contents: %+v", *in)
	}
	if blk.ID != 0 || blk.Name != "" {
		t.Fatalf("Reset left stale block contents: %+v", *blk)
	}
	if ops[0] != (Operand{}) {
		t.Fatalf("Reset left stale operand contents: %+v", ops[0])
	}
	// A new generation reuses the same slab memory (chunk 0 is recycled).
	in2 := a.NewInstr(Instr{Op: OpMove})
	if in2 != in {
		t.Fatalf("first post-Reset allocation did not reuse the recycled chunk")
	}
	if got := a.InstrsAllocated(); got != 1 {
		t.Fatalf("InstrsAllocated after Reset = %d, want 1", got)
	}
}

// TestArenaResetKeepsLargestChunk: memory is bounded at the high-water chunk
// rather than the sum of all chunks ever allocated.
func TestArenaResetKeepsLargestChunk(t *testing.T) {
	a := NewArena()
	for i := 0; i < arenaFirstChunk*10; i++ {
		a.NewInstr(Instr{Op: OpMove})
	}
	before := len(a.instrs)
	if before < 2 {
		t.Fatalf("test needs multiple chunks, got %d", before)
	}
	last := a.instrs[before-1]
	a.Reset()
	if len(a.instrs) != 1 {
		t.Fatalf("Reset kept %d chunks, want 1", len(a.instrs))
	}
	if &a.instrs[0][0] != &last[0] {
		t.Fatalf("Reset kept a chunk other than the largest")
	}
}

// TestArenaNilFallback: all methods degrade to plain heap allocation on a
// nil receiver, so arena-free code paths keep their old behaviour.
func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	in := a.NewInstr(Instr{Op: OpMove, Dst: 3})
	if in == nil || in.Dst != 3 {
		t.Fatalf("nil-arena NewInstr returned %+v", in)
	}
	if b := a.NewBlock(Block{ID: 9}); b == nil || b.ID != 9 {
		t.Fatalf("nil-arena NewBlock returned %+v", b)
	}
	if ops := a.Operands(Var(1)); len(ops) != 1 || ops[0] != Var(1) {
		t.Fatalf("nil-arena Operands returned %v", ops)
	}
	a.Reset() // must not panic
	if got := a.InstrsAllocated(); got != 0 {
		t.Fatalf("nil-arena InstrsAllocated = %d", got)
	}
}

// TestCloneIntoIndependence: CloneInto copies operands into the target arena
// and mutating the clone leaves the original untouched.
func TestCloneIntoIndependence(t *testing.T) {
	orig := &Instr{Op: OpAdd, Dst: 1, Args: []Operand{Var(2), Var(3)}}
	a := NewArena()
	cp := orig.CloneInto(a)
	cp.Args[0] = ConstInt(42)
	cp.Dst = 9
	if orig.Args[0] != Var(2) || orig.Dst != 1 {
		t.Fatalf("mutating a CloneInto copy changed the original: %+v", *orig)
	}
	if got := a.InstrsAllocated(); got != 1 {
		t.Fatalf("CloneInto allocated %d arena instrs, want 1", got)
	}
}
