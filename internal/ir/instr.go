package ir

import "fmt"

// Op enumerates the IR opcodes.
type Op uint8

const (
	OpInvalid Op = iota

	// Data movement and arithmetic. Div and Rem can throw
	// ArithmeticException and are therefore side-effecting barriers.
	OpMove
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpIntToFloat
	OpFloatToInt
	OpCmp  // dst = compare(a, b) per Cond, producing 0/1
	OpMath // dst = MathFn(a[, b]); the arch-lowered intrinsic form
	// OpInstanceOf sets dst to 1 when a is a non-null instance of Class.
	// `instanceof` on null is false, so a branch on the result proves
	// non-nullness on the true edge — the paper's instanceof-if Edge rule.
	// Reading the header makes it a dereference ONLY for non-null values;
	// the instruction itself never faults.
	OpInstanceOf

	// Null checking. OpNullCheck is the splittable check the paper's
	// algorithms operate on. After phase 2, surviving checks are flagged
	// Explicit (they cost real instructions) and consumed checks vanish,
	// leaving an ExcSite mark on the guarded dereference.
	OpNullCheck

	// Object and array operations.
	OpNew         // dst = new Class
	OpNewArray    // dst = new [a]word
	OpGetField    // dst = a.Field
	OpPutField    // a.Field = b
	OpArrayLength // dst = a.length       (slot at offset 0)
	OpBoundCheck  // check 0 <= a < b, throw AIOOBE
	OpArrayLoad   // dst = a[b]
	OpArrayStore  // a[b] = c

	// Calls.
	OpCallStatic
	OpCallVirtual // receiver is Args[0]; dispatch reads the header slot

	// Control flow (block terminators).
	OpJump
	OpIf     // if Cond(a, b) goto Targets[0] else Targets[1]
	OpReturn // optional value
	OpThrow  // throw exception object a
)

var opNames = [...]string{
	OpInvalid:     "invalid",
	OpMove:        "move",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpDiv:         "div",
	OpRem:         "rem",
	OpAnd:         "and",
	OpOr:          "or",
	OpXor:         "xor",
	OpShl:         "shl",
	OpShr:         "shr",
	OpNeg:         "neg",
	OpNot:         "not",
	OpFAdd:        "fadd",
	OpFSub:        "fsub",
	OpFMul:        "fmul",
	OpFDiv:        "fdiv",
	OpFNeg:        "fneg",
	OpIntToFloat:  "i2f",
	OpFloatToInt:  "f2i",
	OpCmp:         "cmp",
	OpMath:        "math",
	OpInstanceOf:  "instanceof",
	OpNullCheck:   "nullcheck",
	OpNew:         "new",
	OpNewArray:    "newarray",
	OpGetField:    "getfield",
	OpPutField:    "putfield",
	OpArrayLength: "arraylength",
	OpBoundCheck:  "boundcheck",
	OpArrayLoad:   "aload",
	OpArrayStore:  "astore",
	OpCallStatic:  "call",
	OpCallVirtual: "callvirt",
	OpJump:        "jump",
	OpIf:          "if",
	OpReturn:      "return",
	OpThrow:       "throw",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a comparison condition for OpIf and OpCmp.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "=="
	case CondNE:
		return "!="
	case CondLT:
		return "<"
	case CondLE:
		return "<="
	case CondGT:
		return ">"
	case CondGE:
		return ">="
	}
	return "?"
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	}
	return c
}

// MathFn enumerates math intrinsics. On architectures without the matching
// instruction these remain runtime calls, which is the platform difference
// the paper observes for Math.exp on PowerPC (§5.4).
type MathFn uint8

const (
	MathNone MathFn = iota
	MathExp
	MathLog
	MathSin
	MathCos
	MathSqrt
	MathAbs
	MathPow
)

func (m MathFn) String() string {
	switch m {
	case MathExp:
		return "exp"
	case MathLog:
		return "log"
	case MathSin:
		return "sin"
	case MathCos:
		return "cos"
	case MathSqrt:
		return "sqrt"
	case MathAbs:
		return "abs"
	case MathPow:
		return "pow"
	}
	return "none"
}

// OperandKind distinguishes variables from immediates. The zero value is
// deliberately invalid: a forgotten Operand must fail validation loudly
// rather than masquerade as "variable v0".
type OperandKind uint8

const (
	OperInvalid OperandKind = iota
	OperVar
	OperConstInt
	OperConstFloat
	OperConstNull
)

// Operand is an instruction input: a local variable or a constant.
type Operand struct {
	Kind  OperandKind
	Var   VarID
	Int   int64
	Float float64
}

// Var returns a variable operand.
func Var(v VarID) Operand { return Operand{Kind: OperVar, Var: v} }

// ConstInt returns an integer immediate operand.
func ConstInt(v int64) Operand { return Operand{Kind: OperConstInt, Int: v} }

// ConstFloat returns a float immediate operand.
func ConstFloat(v float64) Operand { return Operand{Kind: OperConstFloat, Float: v} }

// Null returns the null-reference immediate.
func Null() Operand { return Operand{Kind: OperConstNull} }

// IsVar reports whether the operand reads a variable.
func (o Operand) IsVar() bool { return o.Kind == OperVar }

func (o Operand) String() string {
	switch o.Kind {
	case OperVar:
		return fmt.Sprintf("v%d", o.Var)
	case OperConstInt:
		return fmt.Sprintf("%d", o.Int)
	case OperConstFloat:
		return fmt.Sprintf("%g", o.Float)
	case OperConstNull:
		return "null"
	}
	return "?"
}

// CheckReason records why a null check exists; inlined devirtualized calls
// produce the checks phase 2 exists to optimize (paper Figures 1 and 7).
type CheckReason uint8

const (
	ReasonField CheckReason = iota
	ReasonArray
	ReasonCall
	ReasonInlined // materialized by devirtualization/inlining
	ReasonMoved   // re-inserted by the null check optimizer itself
)

func (r CheckReason) String() string {
	switch r {
	case ReasonField:
		return "field"
	case ReasonArray:
		return "array"
	case ReasonCall:
		return "call"
	case ReasonInlined:
		return "inlined"
	case ReasonMoved:
		return "moved"
	}
	return "?"
}

// Instr is a single IR instruction. Instructions are heap-allocated and
// identified by pointer; the optimizer rewrites block slices in place.
type Instr struct {
	Op   Op
	Dst  VarID
	Args []Operand

	Field  *Field  // OpGetField, OpPutField
	Class  *Class  // OpNew
	Callee *Method // OpCallStatic, OpCallVirtual
	Cond   Cond    // OpIf, OpCmp
	Fn     MathFn  // OpMath

	// Targets are the successor blocks of a terminator: Jump has one,
	// If has two (then, else).
	Targets []*Block

	// Reason records the origin of an OpNullCheck.
	Reason CheckReason

	// Explicit marks an OpNullCheck that survived phase 2 and must be
	// emitted as real instructions (compare+branch or conditional trap).
	// Before phase 2 runs, all checks are notionally explicit; the flag is
	// only meaningful to code generation.
	Explicit bool

	// ExcSite marks a dereferencing instruction as the exception site of an
	// implicit null check: the hardware trap taken here must be translated
	// into a NullPointerException, and later phases must not move the
	// instruction across the site.
	ExcSite bool
	// ExcVar is the variable whose null check this exception site covers.
	ExcVar VarID

	// Speculated marks a memory read hoisted above its null check on
	// architectures that cannot trap on reads (paper §3.3.1, AIX).
	Speculated bool

	// SpecGuard, when non-zero on an OpNullCheck, marks the check as a
	// tier-2 speculation guard: the profile showed zero observed nulls, so
	// the compiled fast path carries no check instruction at all (the check
	// costs zero cycles and is not counted as an explicit check). If the
	// reference IS null the guard fires as a hardware trap and the runtime
	// deoptimizes. The value is the check's ordinal in Func.NullChecks
	// order plus one, so a fired guard maps back to its speculation
	// decision without any side table.
	SpecGuard int32

	// TrapSite, when non-zero, is the stable per-method ordinal (plus one)
	// of an implicit null check site, assigned deterministically after the
	// pipeline runs. The trap-storm governor keys its per-site null-rate
	// profile and its DemoteSet on this ordinal, so the same source-level
	// dereference keeps one identity across recompiles. A demoted site
	// carries the ordinal on the inserted explicit OpNullCheck instead (the
	// dereference itself is no longer a site).
	TrapSite int32
}

// NullCheckVar returns the variable an OpNullCheck guards.
func (in *Instr) NullCheckVar() VarID {
	if in.Op != OpNullCheck {
		panic("ir: NullCheckVar on non-nullcheck")
	}
	return in.Args[0].Var
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpJump, OpIf, OpReturn, OpThrow:
		return true
	}
	return false
}

// HasDst reports whether the instruction writes a local variable.
func (in *Instr) HasDst() bool { return in.Dst != NoVar }

// CanThrowOther reports whether the instruction can throw an exception other
// than a null pointer exception. Such instructions are the side-effect
// barriers of every analysis in the paper (Kill sets in §4.1.1, §4.2.1).
func (in *Instr) CanThrowOther() bool {
	switch in.Op {
	case OpDiv, OpRem, OpBoundCheck, OpNew, OpNewArray, OpThrow:
		return true
	case OpCallStatic, OpCallVirtual:
		return true
	}
	return false
}

// WritesMemory reports whether the instruction can write to heap memory.
func (in *Instr) WritesMemory() bool {
	switch in.Op {
	case OpPutField, OpArrayStore:
		return true
	case OpCallStatic, OpCallVirtual:
		return true
	}
	return false
}

// ReadsMemory reports whether the instruction reads heap memory.
func (in *Instr) ReadsMemory() bool {
	switch in.Op {
	case OpGetField, OpArrayLength, OpArrayLoad:
		return true
	case OpCallStatic, OpCallVirtual:
		return true
	}
	return false
}

// SlotAccess describes a dereference of an object or array base.
type SlotAccess struct {
	Base    VarID
	Offset  int32 // byte offset; negative means dynamic (array element)
	IsWrite bool
	// Dynamic marks array element accesses whose concrete offset depends on
	// the index and may exceed the protected trap area.
	Dynamic bool
}

// SlotAccessInfo returns the dereference this instruction performs on a
// variable base, if any. The null check analyses use it both for Kill sets
// (a dereference consumes a moving check) and for implicit-check eligibility.
func (in *Instr) SlotAccessInfo() (SlotAccess, bool) {
	switch in.Op {
	case OpGetField:
		if in.Args[0].IsVar() {
			return SlotAccess{Base: in.Args[0].Var, Offset: in.Field.Offset}, true
		}
	case OpPutField:
		if in.Args[0].IsVar() {
			return SlotAccess{Base: in.Args[0].Var, Offset: in.Field.Offset, IsWrite: true}, true
		}
	case OpArrayLength:
		if in.Args[0].IsVar() {
			return SlotAccess{Base: in.Args[0].Var, Offset: 0}, true
		}
	case OpArrayLoad:
		if in.Args[0].IsVar() {
			return SlotAccess{Base: in.Args[0].Var, Offset: -1, Dynamic: true}, true
		}
	case OpArrayStore:
		if in.Args[0].IsVar() {
			return SlotAccess{Base: in.Args[0].Var, Offset: -1, IsWrite: true, Dynamic: true}, true
		}
	case OpCallVirtual:
		// Virtual dispatch loads the method table from the header slot.
		if in.Args[0].IsVar() {
			return SlotAccess{Base: in.Args[0].Var, Offset: 0}, true
		}
	}
	return SlotAccess{}, false
}

// UsesVar reports whether the instruction reads variable v.
func (in *Instr) UsesVar(v VarID) bool {
	for _, a := range in.Args {
		if a.IsVar() && a.Var == v {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the instruction with the same targets.
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Args = append([]Operand(nil), in.Args...)
	cp.Targets = append([]*Block(nil), in.Targets...)
	return &cp
}

// CloneInto is Clone with the copy (and its operand slice) allocated from
// the given arena. A nil arena degrades to Clone.
func (in *Instr) CloneInto(a *Arena) *Instr {
	cp := a.NewInstr(*in)
	cp.Args = a.CopyOperands(in.Args)
	cp.Targets = append([]*Block(nil), in.Targets...)
	return cp
}
