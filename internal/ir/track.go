package ir

// CheckTracker observes the fate of null check instructions as optimization
// passes rewrite a function. The interface lives here — rather than in the
// observability package that implements it — so that the passes in
// internal/nullcheck and internal/opt can report events without importing
// anything above the IR layer.
//
// A tracker is attached via Func.Track for the duration of one compilation
// and is nil otherwise; every call site guards with `if f.Track != nil`, so
// the disabled case costs one pointer test at each removal site and nothing
// on the per-instruction paths.
//
// Each method reports the terminal event of one check instruction `in`
// inside block `b`. A given instruction receives at most one fate; the
// implementation is responsible for detecting violations.
type CheckTracker interface {
	// Eliminated reports a check deleted because its target is provably
	// non-null at the check (forward-analysis redundancy, §4.1.2), or
	// because an identical in-flight or adjacent check already covers it.
	Eliminated(in *Instr, b *Block)
	// Hoisted reports a check deleted by phase 1 whose redundancy proof
	// depends on the backward-motion insertion points — the check did not
	// vanish, it moved up to a hoisted insertion (§4.1.1).
	Hoisted(in *Instr, b *Block)
	// Sunk reports a check dissolved by phase 2's forward motion and
	// re-materialized at a later point (possibly in a successor block) as an
	// explicit check instruction (§4.2.1).
	Sunk(in *Instr, b *Block)
	// Converted reports a check absorbed into the trapping dereference `at`:
	// the access became the implicit exception site and the explicit check
	// disappeared (§3.3.2 / §4.2.1).
	Converted(in *Instr, at *Instr, b *Block)
	// Substituted reports a check deleted by the §4.2.2 substitutable
	// elimination: a later explicit check or guaranteed trap covers it on
	// every path.
	Substituted(in *Instr, b *Block)
	// Dead reports a check that disappeared together with an unreachable
	// block.
	Dead(in *Instr, b *Block)
}
