package ir

// Arena is a chunked slab allocator for the three allocation-heavy IR
// shapes: Instr structs, Block structs, and operand slices. The optimization
// passes churn through short-lived replacement instructions (split checks,
// hoisted copies, rewritten guards); allocating them from per-function slabs
// turns thousands of individual `new(Instr)` garbage objects into a handful
// of chunk allocations that die together with the function.
//
// Ownership and lifetime invariants (see DESIGN.md §10):
//
//   - An Arena is owned by exactly one Func (lazily, via Func.Alloc) or is
//     shared by the Funcs of one Program generation (randprog's GenerateIn).
//     Everything allocated from it must not outlive the owner.
//   - Arenas are NOT safe for concurrent use. The parallel compiler keeps
//     this trivially true: each method's passes run on one goroutine and only
//     ever allocate from that method's own arena.
//   - Reset recycles the chunks for a new generation. It zeroes the recycled
//     memory so stale *Block/*Field/*Class pointers neither leak objects nor
//     masquerade as live IR. Callers must guarantee every Func built from the
//     arena is unreachable before Reset — the randprog fuzz loops satisfy
//     this by discarding the program (and any Machine caching its Funcs by
//     pointer) before generating the next seed.
//   - Func.Clone never copies into an arena: snapshots taken by triage must
//     survive arbitrary later Resets of the original's allocator.
//
// All methods are nil-receiver safe and fall back to ordinary heap
// allocation, so code paths that never attach an arena behave exactly as
// before.
type Arena struct {
	instrs [][]Instr
	blocks [][]Block
	opers  [][]Operand
	// used counts within the LAST chunk of each slab list.
	instrUsed int
	blockUsed int
	operUsed  int
}

// Chunk sizing: geometric growth keeps tiny functions cheap (a method with
// four instructions costs one 32-entry chunk, not a 512-entry slab) while
// large randprog CFGs settle into big chunks quickly.
const (
	arenaFirstChunk = 32
	arenaMaxChunk   = 1024
)

// arenaNextLen returns the length of the next chunk given the previous one.
func arenaNextLen(prev int) int {
	if prev == 0 {
		return arenaFirstChunk
	}
	if n := prev * 2; n < arenaMaxChunk {
		return n
	}
	return arenaMaxChunk
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewInstr copies tmpl into the slab and returns a pointer to the copy.
// Instructions are identified by pointer throughout the compiler (tracker
// keys, prepared-operand caches), and slab placement preserves that: the
// returned pointer is stable until Reset.
func (a *Arena) NewInstr(tmpl Instr) *Instr {
	if a == nil {
		in := tmpl
		return &in
	}
	if n := len(a.instrs); n == 0 || a.instrUsed == len(a.instrs[n-1]) {
		prev := 0
		if n > 0 {
			prev = len(a.instrs[n-1])
		}
		a.instrs = append(a.instrs, make([]Instr, arenaNextLen(prev)))
		a.instrUsed = 0
	}
	chunk := a.instrs[len(a.instrs)-1]
	in := &chunk[a.instrUsed]
	a.instrUsed++
	*in = tmpl
	return in
}

// NewBlock allocates a Block from the slab. Only the struct itself is
// arena-backed; its Instrs/Preds/Succs slices grow on the ordinary heap.
func (a *Arena) NewBlock(tmpl Block) *Block {
	if a == nil {
		b := tmpl
		return &b
	}
	if n := len(a.blocks); n == 0 || a.blockUsed == len(a.blocks[n-1]) {
		prev := 0
		if n > 0 {
			prev = len(a.blocks[n-1])
		}
		a.blocks = append(a.blocks, make([]Block, arenaNextLen(prev)))
		a.blockUsed = 0
	}
	chunk := a.blocks[len(a.blocks)-1]
	b := &chunk[a.blockUsed]
	a.blockUsed++
	*b = tmpl
	return b
}

// Operands copies the given operands into the slab and returns the copy.
// The result is full-capacity sliced, so an `append` by a later pass
// reallocates onto the heap instead of clobbering a neighbouring
// instruction's operands.
func (a *Arena) Operands(ops ...Operand) []Operand {
	if a == nil {
		return ops
	}
	return a.CopyOperands(ops)
}

// CopyOperands is Operands for an existing slice (used by CloneInto).
func (a *Arena) CopyOperands(ops []Operand) []Operand {
	if len(ops) == 0 {
		return nil
	}
	if a == nil {
		return append([]Operand(nil), ops...)
	}
	n := len(ops)
	if last := len(a.opers) - 1; last < 0 || a.operUsed+n > len(a.opers[last]) {
		prev := 0
		if last >= 0 {
			prev = len(a.opers[last])
		}
		size := arenaNextLen(prev) * 2 // operands are small; double the instr granularity
		if size < n {
			size = n
		}
		a.opers = append(a.opers, make([]Operand, size))
		a.operUsed = 0
	}
	chunk := a.opers[len(a.opers)-1]
	dst := chunk[a.operUsed : a.operUsed+n : a.operUsed+n]
	a.operUsed += n
	copy(dst, ops)
	return dst
}

// Reset recycles the arena for a new generation. Only the largest chunk of
// each slab is kept (bounding steady-state memory at roughly the high-water
// chunk) and its used prefix is zeroed: Instr and Block hold pointers
// (Targets, Field, Class, Callee, instruction slices), and leaving stale
// values in place would both pin dead object graphs and risk a
// use-after-reset reading plausible-looking IR. Callers own the proof that
// nothing allocated from the arena is still reachable.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	// The last chunk of each slab is always the largest (growth is
	// monotone), so keep it, drop the rest, and zero what was used of it.
	if n := len(a.instrs); n > 0 {
		last := a.instrs[n-1]
		used := a.instrUsed
		if n > 1 {
			// Earlier chunks were fully used but are dropped whole; the kept
			// chunk was filled up to instrUsed. A fresh header slice lets the
			// garbage collector reclaim the dropped chunks.
			a.instrs = [][]Instr{last}
		}
		for j := 0; j < used; j++ {
			last[j] = Instr{}
		}
	}
	if n := len(a.blocks); n > 0 {
		last := a.blocks[n-1]
		used := a.blockUsed
		if n > 1 {
			a.blocks = [][]Block{last}
		}
		for j := 0; j < used; j++ {
			last[j] = Block{}
		}
	}
	if n := len(a.opers); n > 0 {
		last := a.opers[n-1]
		used := a.operUsed
		if n > 1 {
			a.opers = [][]Operand{last}
		}
		for j := 0; j < used; j++ {
			last[j] = Operand{}
		}
	}
	a.instrUsed = 0
	a.blockUsed = 0
	a.operUsed = 0
}

// InstrsAllocated reports how many instructions the arena has handed out in
// the current generation (tests and stats).
func (a *Arena) InstrsAllocated() int {
	if a == nil {
		return 0
	}
	n := 0
	for i, chunk := range a.instrs {
		if i == len(a.instrs)-1 {
			n += a.instrUsed
		} else {
			n += len(chunk)
		}
	}
	return n
}
