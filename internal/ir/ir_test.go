package ir

import (
	"strings"
	"testing"
)

// point returns a small test program with a Point class.
func point(t *testing.T) (*Program, *Class) {
	t.Helper()
	p := NewProgram("test")
	c := p.NewClass("Point",
		&Field{Name: "x", Kind: KindInt},
		&Field{Name: "y", Kind: KindInt},
	)
	return p, c
}

func TestClassLayout(t *testing.T) {
	_, c := point(t)
	if got := c.FieldByName("x").Offset; got != ObjectHeaderBytes {
		t.Fatalf("x offset = %d, want %d", got, ObjectHeaderBytes)
	}
	if got := c.FieldByName("y").Offset; got != ObjectHeaderBytes+WordBytes {
		t.Fatalf("y offset = %d, want %d", got, ObjectHeaderBytes+WordBytes)
	}
	if got := c.SizeBytes; got != ObjectHeaderBytes+2*WordBytes {
		t.Fatalf("SizeBytes = %d, want %d", got, ObjectHeaderBytes+2*WordBytes)
	}
}

func TestBigOffsetFieldKeepsExplicitOffset(t *testing.T) {
	p := NewProgram("test")
	c := p.NewClass("Big",
		&Field{Name: "near", Kind: KindInt},
		&Field{Name: "far", Kind: KindInt, Offset: 1 << 19},
	)
	if got := c.FieldByName("far").Offset; got != 1<<19 {
		t.Fatalf("far offset = %d, want %d", got, 1<<19)
	}
	if c.SizeBytes != 1<<19+WordBytes {
		t.Fatalf("SizeBytes = %d", c.SizeBytes)
	}
}

func TestBuilderEmitsSplitForm(t *testing.T) {
	_, c := point(t)
	b := NewFunc("get", true)
	this := b.Param("this", KindRef)
	b.Result(KindInt)
	b.Block("entry")
	x := b.Temp(KindInt)
	b.GetField(x, this, c.FieldByName("x"))
	b.Return(Var(x))
	f := b.Finish()

	blk := f.Entry
	if blk.Instrs[0].Op != OpNullCheck {
		t.Fatalf("first instr = %s, want nullcheck", blk.Instrs[0].Op)
	}
	if blk.Instrs[0].NullCheckVar() != this {
		t.Fatalf("nullcheck guards v%d, want v%d", blk.Instrs[0].NullCheckVar(), this)
	}
	if blk.Instrs[1].Op != OpGetField {
		t.Fatalf("second instr = %s, want getfield", blk.Instrs[1].Op)
	}
}

func TestBuilderArrayLoadSequence(t *testing.T) {
	b := NewFunc("sum0", false)
	arr := b.Param("a", KindRef)
	b.Result(KindInt)
	b.Block("entry")
	v := b.Temp(KindInt)
	b.ArrayLoad(v, arr, ConstInt(0))
	b.Return(Var(v))
	f := b.Finish()

	ops := []Op{OpNullCheck, OpArrayLength, OpBoundCheck, OpArrayLoad, OpReturn}
	for i, want := range ops {
		if got := f.Entry.Instrs[i].Op; got != want {
			t.Fatalf("instr %d = %s, want %s", i, got, want)
		}
	}
}

func TestRecomputeEdges(t *testing.T) {
	b := NewFunc("branches", false)
	n := b.Param("n", KindInt)
	b.Result(KindInt)
	entry := b.Block("entry")
	then := b.DeclareBlock("then")
	els := b.DeclareBlock("else")
	b.SetBlock(entry)
	b.If(CondLT, Var(n), ConstInt(0), then, els)
	b.SetBlock(then)
	b.Return(ConstInt(-1))
	b.SetBlock(els)
	b.Return(ConstInt(1))
	b.Finish()

	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(entry.Succs))
	}
	if len(then.Preds) != 1 || then.Preds[0] != entry {
		t.Fatalf("then preds wrong: %v", then.Preds)
	}
	if len(els.Preds) != 1 || els.Preds[0] != entry {
		t.Fatalf("else preds wrong: %v", els.Preds)
	}
}

// diamondWithSharedExit builds a CFG with a critical edge:
// entry -> (A | merge), A -> merge; the entry->merge edge is critical.
func diamondWithSharedExit() *Func {
	b := NewFunc("crit", false)
	n := b.Param("n", KindInt)
	b.Result(KindInt)
	entry := b.Block("entry")
	a := b.DeclareBlock("a")
	merge := b.DeclareBlock("merge")
	b.SetBlock(entry)
	b.If(CondLT, Var(n), ConstInt(0), a, merge)
	b.SetBlock(a)
	b.Jump(merge)
	b.SetBlock(merge)
	b.Return(Var(n))
	return b.Finish()
}

func TestSplitCriticalEdges(t *testing.T) {
	f := diamondWithSharedExit()
	nBlocks := len(f.Blocks)
	split := f.SplitCriticalEdges()
	if split != 1 {
		t.Fatalf("split = %d, want 1", split)
	}
	if len(f.Blocks) != nBlocks+1 {
		t.Fatalf("blocks = %d, want %d", len(f.Blocks), nBlocks+1)
	}
	// After splitting, no edge may be critical.
	f.RecomputeEdges()
	for _, blk := range f.Blocks {
		if len(blk.Succs) < 2 {
			continue
		}
		for _, s := range blk.Succs {
			if len(s.Preds) >= 2 {
				t.Fatalf("critical edge %s -> %s survived", blk, s)
			}
		}
	}
	if err := Validate(f); err != nil {
		t.Fatalf("invalid after split: %v", err)
	}
}

func TestSplitCriticalEdgesIdempotent(t *testing.T) {
	f := diamondWithSharedExit()
	f.SplitCriticalEdges()
	if again := f.SplitCriticalEdges(); again != 0 {
		t.Fatalf("second split = %d, want 0", again)
	}
}

func TestValidateCatchesMissingTerminator(t *testing.T) {
	f := &Func{Name: "bad"}
	blk := f.NewBlock("entry")
	blk.Instrs = []*Instr{{Op: OpMove, Dst: f.NewLocal("x", KindInt), Args: []Operand{ConstInt(1)}}}
	if err := Validate(f); err == nil {
		t.Fatal("expected error for missing terminator")
	}
}

func TestValidateCatchesUndefinedVar(t *testing.T) {
	f := &Func{Name: "bad"}
	blk := f.NewBlock("entry")
	blk.Instrs = []*Instr{
		{Op: OpMove, Dst: 7, Args: []Operand{ConstInt(1)}},
		{Op: OpReturn, Dst: NoVar},
	}
	if err := Validate(f); err == nil {
		t.Fatal("expected error for undefined variable")
	}
}

func TestValidateCatchesMidBlockTerminator(t *testing.T) {
	f := &Func{Name: "bad"}
	blk := f.NewBlock("entry")
	blk.Instrs = []*Instr{
		{Op: OpReturn, Dst: NoVar},
		{Op: OpReturn, Dst: NoVar},
	}
	if err := Validate(f); err == nil {
		t.Fatal("expected error for mid-block terminator")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := diamondWithSharedExit()
	g := f.Clone()
	if err := Validate(g); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone must not affect the original.
	g.Entry.Instrs[0].Cond = CondGE
	if f.Entry.Instrs[0].Cond == CondGE {
		t.Fatal("clone shares instructions with original")
	}
	// Clone targets must point at clone blocks.
	for _, blk := range g.Blocks {
		for _, in := range blk.Instrs {
			for _, tgt := range in.Targets {
				found := false
				for _, gb := range g.Blocks {
					if tgt == gb {
						found = true
					}
				}
				if !found {
					t.Fatal("clone branch targets original block")
				}
			}
		}
	}
}

func TestInstrAttributes(t *testing.T) {
	div := &Instr{Op: OpDiv, Dst: 0, Args: []Operand{Var(1), Var(2)}}
	if !div.CanThrowOther() {
		t.Fatal("div must be able to throw")
	}
	if div.WritesMemory() {
		t.Fatal("div must not write memory")
	}
	put := &Instr{Op: OpPutField, Dst: NoVar, Field: &Field{Offset: 8}, Args: []Operand{Var(0), ConstInt(1)}}
	if !put.WritesMemory() {
		t.Fatal("putfield must write memory")
	}
	sa, ok := put.SlotAccessInfo()
	if !ok || sa.Base != 0 || !sa.IsWrite || sa.Offset != 8 {
		t.Fatalf("putfield slot access = %+v ok=%v", sa, ok)
	}
	get := &Instr{Op: OpGetField, Dst: 3, Field: &Field{Offset: 16}, Args: []Operand{Var(2)}}
	sa, ok = get.SlotAccessInfo()
	if !ok || sa.Base != 2 || sa.IsWrite || sa.Offset != 16 {
		t.Fatalf("getfield slot access = %+v ok=%v", sa, ok)
	}
	cv := &Instr{Op: OpCallVirtual, Dst: NoVar, Callee: &Method{Name: "m"}, Args: []Operand{Var(4)}}
	sa, ok = cv.SlotAccessInfo()
	if !ok || sa.Base != 4 || sa.Offset != 0 {
		t.Fatalf("callvirt slot access = %+v ok=%v", sa, ok)
	}
	al := &Instr{Op: OpArrayLoad, Dst: 0, Args: []Operand{Var(5), Var(6)}}
	sa, ok = al.SlotAccessInfo()
	if !ok || !sa.Dynamic {
		t.Fatalf("arrayload slot access = %+v ok=%v", sa, ok)
	}
}

func TestCondNegate(t *testing.T) {
	pairs := map[Cond]Cond{
		CondEQ: CondNE, CondLT: CondGE, CondLE: CondGT,
	}
	for c, n := range pairs {
		if c.Negate() != n {
			t.Fatalf("%s negate = %s, want %s", c, c.Negate(), n)
		}
		if n.Negate() != c {
			t.Fatalf("%s negate = %s, want %s", n, n.Negate(), c)
		}
	}
}

func TestPrinterOutput(t *testing.T) {
	_, c := point(t)
	b := NewFunc("get", true)
	this := b.Param("this", KindRef)
	b.Result(KindInt)
	b.Block("entry")
	x := b.Temp(KindInt)
	b.GetField(x, this, c.FieldByName("x"))
	b.Return(Var(x))
	f := b.Finish()

	s := f.String()
	for _, want := range []string{"method get(v0 ref) int", "nullcheck v0", "getfield v0.x", "return v1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printer output missing %q:\n%s", want, s)
		}
	}
	if this != 0 {
		t.Fatalf("this = v%d, want v0", this)
	}
}

func TestProgramLookups(t *testing.T) {
	p, c := point(t)
	fn := &Func{Name: "getX"}
	m := p.AddMethod(c, "getX", fn, true)
	if p.MethodByName("Point.getX") != m {
		t.Fatal("MethodByName failed")
	}
	if p.ClassByName("Point") != c {
		t.Fatal("ClassByName failed")
	}
	if p.ClassByID(c.ID) != c {
		t.Fatal("ClassByID failed")
	}
	if c.MethodByName("getX") != m {
		t.Fatal("Class.MethodByName failed")
	}
	if fn.Method != m {
		t.Fatal("AddMethod did not link Func.Method")
	}
}

func TestCountOpAndNumInstrs(t *testing.T) {
	f := diamondWithSharedExit()
	if got := f.CountOp(OpIf); got != 1 {
		t.Fatalf("CountOp(If) = %d, want 1", got)
	}
	if got := f.NumInstrs(); got != 3 {
		t.Fatalf("NumInstrs = %d, want 3", got)
	}
}
