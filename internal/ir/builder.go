package ir

import "fmt"

// Builder constructs a Func block by block. Its dereferencing helpers emit
// the paper's split form automatically: every field access, array access and
// virtual call is preceded by an OpNullCheck of its base, and every array
// element access carries an arraylength + boundcheck sequence (Figure 6).
type Builder struct {
	F   *Func
	cur *Block
	tmp int
}

// NewFunc starts a function. Parameters are declared first, in order; if
// instance is true the first parameter is the receiver ("this").
func NewFunc(name string, instance bool) *Builder {
	f := &Func{Name: name, IsInstance: instance}
	f.Alloc() // builder-made functions are arena-backed from the start
	return &Builder{F: f}
}

// NewFuncIn is NewFunc with an explicit (possibly shared, possibly recycled)
// arena. randprog's GenerateIn uses it to back a whole program generation
// with one resettable allocator.
func NewFuncIn(name string, instance bool, a *Arena) *Builder {
	f := &Func{Name: name, IsInstance: instance}
	f.SetArena(a)
	return &Builder{F: f}
}

// emit allocates tmpl from the function's arena and appends it.
func (b *Builder) emit(tmpl Instr) *Instr { return b.Emit(b.F.arena.NewInstr(tmpl)) }

// ops copies the operands into the function's arena.
func (b *Builder) ops(operands ...Operand) []Operand { return b.F.arena.Operands(operands...) }

// Param declares the next parameter.
func (b *Builder) Param(name string, k Kind) VarID {
	if len(b.F.Blocks) > 0 {
		panic("ir: Param after first block")
	}
	v := b.F.NewLocal(name, k)
	b.F.NumParams++
	return v
}

// Result declares the function result kind.
func (b *Builder) Result(k Kind) *Builder {
	b.F.HasResult = true
	b.F.ResultKind = k
	return b
}

// Local declares a named local variable.
func (b *Builder) Local(name string, k Kind) VarID { return b.F.NewLocal(name, k) }

// Temp declares an anonymous temporary.
func (b *Builder) Temp(k Kind) VarID {
	b.tmp++
	return b.F.NewLocal(fmt.Sprintf("t%d", b.tmp), k)
}

// Block creates a new block and makes it current.
func (b *Builder) Block(name string) *Block {
	blk := b.F.NewBlock(name)
	b.cur = blk
	return blk
}

// DeclareBlock creates a block without switching to it (for forward refs).
func (b *Builder) DeclareBlock(name string) *Block {
	blk := b.F.NewBlock(name)
	if b.cur == nil {
		b.cur = blk
	}
	return blk
}

// SetBlock switches emission to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Cur returns the current block.
func (b *Builder) Cur() *Block { return b.cur }

// Emit appends a raw instruction to the current block.
func (b *Builder) Emit(in *Instr) *Instr {
	if b.cur == nil {
		panic("ir: Emit with no current block")
	}
	if t := b.cur.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emit after terminator in %s", b.cur))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

// Move emits dst = src.
func (b *Builder) Move(dst VarID, src Operand) *Instr {
	return b.emit(Instr{Op: OpMove, Dst: dst, Args: b.ops(src)})
}

// Binop emits dst = op(x, y).
func (b *Builder) Binop(op Op, dst VarID, x, y Operand) *Instr {
	return b.emit(Instr{Op: op, Dst: dst, Args: b.ops(x, y)})
}

// Unop emits dst = op(x).
func (b *Builder) Unop(op Op, dst VarID, x Operand) *Instr {
	return b.emit(Instr{Op: op, Dst: dst, Args: b.ops(x)})
}

// Cmp emits dst = (x cond y) as 0/1.
func (b *Builder) Cmp(dst VarID, cond Cond, x, y Operand) *Instr {
	return b.emit(Instr{Op: OpCmp, Dst: dst, Cond: cond, Args: b.ops(x, y)})
}

// Math emits dst = fn(x).
func (b *Builder) Math(fn MathFn, dst VarID, x Operand) *Instr {
	return b.emit(Instr{Op: OpMath, Dst: dst, Fn: fn, Args: b.ops(x)})
}

// InstanceOf emits dst = (v instanceof c).
func (b *Builder) InstanceOf(dst, v VarID, c *Class) *Instr {
	return b.emit(Instr{Op: OpInstanceOf, Dst: dst, Class: c, Args: b.ops(Var(v))})
}

// NullCheck emits an explicit nullcheck of v.
func (b *Builder) NullCheck(v VarID, reason CheckReason) *Instr {
	return b.emit(Instr{Op: OpNullCheck, Dst: NoVar, Args: b.ops(Var(v)), Reason: reason, Explicit: true})
}

// New emits dst = new c.
func (b *Builder) New(dst VarID, c *Class) *Instr {
	return b.emit(Instr{Op: OpNew, Dst: dst, Class: c})
}

// NewArray emits dst = new [n]word.
func (b *Builder) NewArray(dst VarID, n Operand) *Instr {
	return b.emit(Instr{Op: OpNewArray, Dst: dst, Args: b.ops(n)})
}

// GetField emits nullcheck obj; dst = obj.f.
func (b *Builder) GetField(dst, obj VarID, f *Field) *Instr {
	b.NullCheck(obj, ReasonField)
	return b.emit(Instr{Op: OpGetField, Dst: dst, Field: f, Args: b.ops(Var(obj))})
}

// PutField emits nullcheck obj; obj.f = src.
func (b *Builder) PutField(obj VarID, f *Field, src Operand) *Instr {
	b.NullCheck(obj, ReasonField)
	return b.emit(Instr{Op: OpPutField, Dst: NoVar, Field: f, Args: b.ops(Var(obj), src)})
}

// ArrayLength emits nullcheck arr; dst = arr.length.
func (b *Builder) ArrayLength(dst, arr VarID) *Instr {
	b.NullCheck(arr, ReasonArray)
	return b.emit(Instr{Op: OpArrayLength, Dst: dst, Args: b.ops(Var(arr))})
}

// ArrayLoad emits the full checked sequence:
//
//	nullcheck arr; len = arraylength arr; boundcheck idx, len; dst = arr[idx]
func (b *Builder) ArrayLoad(dst, arr VarID, idx Operand) *Instr {
	ln := b.Temp(KindInt)
	b.ArrayLength(ln, arr)
	b.emit(Instr{Op: OpBoundCheck, Dst: NoVar, Args: b.ops(idx, Var(ln))})
	return b.emit(Instr{Op: OpArrayLoad, Dst: dst, Args: b.ops(Var(arr), idx)})
}

// ArrayStore emits the full checked sequence for arr[idx] = src.
func (b *Builder) ArrayStore(arr VarID, idx, src Operand) *Instr {
	ln := b.Temp(KindInt)
	b.ArrayLength(ln, arr)
	b.emit(Instr{Op: OpBoundCheck, Dst: NoVar, Args: b.ops(idx, Var(ln))})
	return b.emit(Instr{Op: OpArrayStore, Dst: NoVar, Args: b.ops(Var(arr), idx, src)})
}

// CallVirtual emits nullcheck recv; dst = recv.m(args...).
func (b *Builder) CallVirtual(dst VarID, m *Method, recv VarID, args ...Operand) *Instr {
	b.NullCheck(recv, ReasonCall)
	all := append([]Operand{Var(recv)}, args...)
	return b.emit(Instr{Op: OpCallVirtual, Dst: dst, Callee: m, Args: all})
}

// CallStatic emits dst = m(args...).
func (b *Builder) CallStatic(dst VarID, m *Method, args ...Operand) *Instr {
	return b.emit(Instr{Op: OpCallStatic, Dst: dst, Callee: m, Args: args})
}

// Jump terminates the current block with an unconditional jump.
func (b *Builder) Jump(t *Block) *Instr {
	return b.emit(Instr{Op: OpJump, Dst: NoVar, Targets: []*Block{t}})
}

// If terminates the current block with a conditional branch.
func (b *Builder) If(cond Cond, x, y Operand, then, els *Block) *Instr {
	return b.emit(Instr{Op: OpIf, Dst: NoVar, Cond: cond, Args: b.ops(x, y), Targets: []*Block{then, els}})
}

// Return terminates with a value return.
func (b *Builder) Return(v Operand) *Instr {
	return b.emit(Instr{Op: OpReturn, Dst: NoVar, Args: b.ops(v)})
}

// ReturnVoid terminates with no value.
func (b *Builder) ReturnVoid() *Instr {
	return b.emit(Instr{Op: OpReturn, Dst: NoVar})
}

// Throw terminates by throwing the exception object in v.
func (b *Builder) Throw(v VarID) *Instr {
	return b.emit(Instr{Op: OpThrow, Dst: NoVar, Args: b.ops(Var(v))})
}

// Finish recomputes edges, validates, and returns the function.
func (b *Builder) Finish() *Func {
	b.F.RecomputeEdges()
	if err := Validate(b.F); err != nil {
		panic(fmt.Sprintf("ir: invalid function %s: %v", b.F.Name, err))
	}
	return b.F
}
