package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestPrintEveryInstructionForm builds one function touching every opcode
// and checks the printer yields something for each line.
func TestPrintEveryInstructionForm(t *testing.T) {
	p := NewProgram("print")
	cls := p.NewClass("P", &Field{Name: "f", Kind: KindInt})
	cb := NewFunc("callee", true)
	cb.Param("this", KindRef)
	cb.Block("entry")
	cb.ReturnVoid()
	meth := p.AddMethod(cls, "m", cb.Finish(), true)

	b := NewFunc("omni", false)
	a := b.Param("a", KindRef)
	n := b.Param("n", KindInt)
	x := b.Param("x", KindFloat)
	b.Result(KindInt)
	entry := b.Block("entry")
	tgt := b.DeclareBlock("tgt")
	done := b.DeclareBlock("done")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", KindRef)

	i := b.Temp(KindInt)
	fv := b.Temp(KindFloat)
	r := b.Temp(KindRef)
	arr := b.Temp(KindRef)
	b.Move(i, ConstInt(3))
	b.Binop(OpMul, i, Var(i), Var(n))
	b.Binop(OpShr, i, Var(i), ConstInt(1))
	b.Unop(OpNot, i, Var(i))
	b.Binop(OpFDiv, fv, Var(x), ConstFloat(2.5))
	b.Unop(OpFloatToInt, i, Var(fv))
	b.Cmp(i, CondGE, Var(i), ConstInt(0))
	b.Math(MathCos, fv, Var(x))
	b.New(r, cls)
	b.NewArray(arr, Var(n))
	b.GetField(i, a, cls.FieldByName("f"))
	b.PutField(a, cls.FieldByName("f"), Var(i))
	b.ArrayLength(i, arr)
	b.ArrayLoad(i, arr, ConstInt(0))
	b.ArrayStore(arr, ConstInt(0), Var(i))
	b.CallVirtual(NoVar, meth, a)
	b.If(CondNE, Var(i), Null(), tgt, done)
	b.SetBlock(tgt)
	b.Jump(done)
	b.SetBlock(done)
	b.Return(Var(i))
	b.SetBlock(handler)
	b.Throw(exc)
	f := b.F
	region := f.NewRegion(handler, exc)
	entry.Try = region.ID
	f.RecomputeEdges()
	if err := Validate(f); err != nil {
		t.Fatal(err)
	}

	// Mark one instruction to exercise the annotation path.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == OpGetField {
				in.ExcSite = true
				in.ExcVar = a
			}
			if in.Op == OpArrayLength {
				in.Speculated = true
			}
		}
	}

	s := f.String()
	for _, want := range []string{
		"move", "mul", "shr", "not", "fdiv", "f2i", "cmp", "math.cos",
		"new P", "newarray", "getfield", "putfield", "arraylength",
		"aload", "astore", "callvirt", "if", "jump", "return", "throw",
		"excsite", "speculated", "[try 0]", "nullcheck",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("printed function missing %q:\n%s", want, s)
		}
	}
	// Every instruction String() is non-empty.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.String() == "" {
				t.Fatalf("empty render for %s", in.Op)
			}
		}
	}
}

func TestOperandStrings(t *testing.T) {
	cases := map[string]Operand{
		"v3":   Var(3),
		"-7":   ConstInt(-7),
		"2.5":  ConstFloat(2.5),
		"null": Null(),
	}
	for want, o := range cases {
		if got := o.String(); got != want {
			t.Fatalf("operand %v prints %q, want %q", o, got, want)
		}
	}
}

func TestKindAndEnumStrings(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "float" || KindRef.String() != "ref" {
		t.Fatal("kind strings wrong")
	}
	for c := CondEQ; c <= CondGE; c++ {
		if c.String() == "?" {
			t.Fatalf("cond %d has no string", c)
		}
	}
	for m := MathExp; m <= MathPow; m++ {
		if m.String() == "none" {
			t.Fatalf("mathfn %d has no string", m)
		}
	}
	for r := ReasonField; r <= ReasonMoved; r++ {
		if r.String() == "?" {
			t.Fatalf("reason %d has no string", r)
		}
	}
}

// TestQuickCondNegateInvolution: Negate is an involution and flips outcomes.
func TestQuickCondNegateInvolution(t *testing.T) {
	eval := func(c Cond, a, b int64) bool {
		switch c {
		case CondEQ:
			return a == b
		case CondNE:
			return a != b
		case CondLT:
			return a < b
		case CondLE:
			return a <= b
		case CondGT:
			return a > b
		default:
			return a >= b
		}
	}
	f := func(ci uint8, a, b int64) bool {
		c := Cond(ci % 6)
		if c.Negate().Negate() != c {
			return false
		}
		return eval(c, a, b) == !eval(c.Negate(), a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneIndependence: mutating a clone never affects the original.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(dst uint8, k uint8) bool {
		in := &Instr{Op: OpAdd, Dst: VarID(dst % 8), Args: []Operand{Var(0), ConstInt(int64(k))}}
		cp := in.Clone()
		cp.Args[1] = ConstInt(int64(k) + 1)
		cp.Dst = VarID(dst%8) + 1
		return in.Args[1].Int == int64(k) && in.Dst == VarID(dst%8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
