package ir

import (
	"fmt"
	"strings"
)

// String renders the function as readable assembly-like text; the examples
// and the nulljit CLI print it before and after optimization.
func (f *Func) String() string {
	var sb strings.Builder
	kind := "func"
	if f.IsInstance {
		kind = "method"
	}
	fmt.Fprintf(&sb, "%s %s(", kind, f.Name)
	for i := 0; i < f.NumParams; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "v%d %s", i, f.Locals[i].Kind)
	}
	sb.WriteString(")")
	if f.HasResult {
		fmt.Fprintf(&sb, " %s", f.ResultKind)
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if b.Try != NoTry {
			fmt.Fprintf(&sb, "  [try %d]", b.Try)
		}
		sb.WriteString("\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.HasDst() {
		fmt.Fprintf(&sb, "v%d = ", in.Dst)
	}
	switch in.Op {
	case OpNullCheck:
		if in.Explicit {
			sb.WriteString("explicit_")
		}
		fmt.Fprintf(&sb, "nullcheck %s", in.Args[0])
		fmt.Fprintf(&sb, " <%s>", in.Reason)
	case OpGetField:
		fmt.Fprintf(&sb, "getfield %s.%s", in.Args[0], in.Field.Name)
	case OpPutField:
		fmt.Fprintf(&sb, "putfield %s.%s = %s", in.Args[0], in.Field.Name, in.Args[1])
	case OpNew:
		fmt.Fprintf(&sb, "new %s", in.Class.Name)
	case OpNewArray:
		fmt.Fprintf(&sb, "newarray [%s]", in.Args[0])
	case OpArrayLoad:
		fmt.Fprintf(&sb, "aload %s[%s]", in.Args[0], in.Args[1])
	case OpArrayStore:
		fmt.Fprintf(&sb, "astore %s[%s] = %s", in.Args[0], in.Args[1], in.Args[2])
	case OpCallStatic, OpCallVirtual:
		fmt.Fprintf(&sb, "%s %s(", in.Op, in.Callee.QualifiedName())
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString(")")
	case OpIf:
		fmt.Fprintf(&sb, "if %s %s %s goto %s else %s",
			in.Args[0], in.Cond, in.Args[1], in.Targets[0], in.Targets[1])
	case OpJump:
		fmt.Fprintf(&sb, "jump %s", in.Targets[0])
	case OpCmp:
		fmt.Fprintf(&sb, "cmp %s %s %s", in.Args[0], in.Cond, in.Args[1])
	case OpMath:
		fmt.Fprintf(&sb, "math.%s(%s)", in.Fn, in.Args[0])
	case OpInstanceOf:
		fmt.Fprintf(&sb, "instanceof %s, %s", in.Args[0], in.Class.Name)
	default:
		sb.WriteString(in.Op.String())
		for i, a := range in.Args {
			if i == 0 {
				sb.WriteString(" ")
			} else {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	var marks []string
	if in.ExcSite {
		marks = append(marks, fmt.Sprintf("excsite(v%d)", in.ExcVar))
	}
	if in.Speculated {
		marks = append(marks, "speculated")
	}
	if len(marks) > 0 {
		fmt.Fprintf(&sb, "  // %s", strings.Join(marks, ", "))
	}
	return sb.String()
}
