package ir

import "fmt"

// Validate checks structural invariants of a function: every block ends in
// exactly one terminator, all operands reference declared locals, branch
// targets belong to the function, arg counts match opcodes, and try-region
// indices are in range. The optimizer validates after every pass in tests.
func Validate(f *Func) error {
	if f.Entry == nil {
		return fmt.Errorf("no entry block")
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	if !inFunc[f.Entry] {
		return fmt.Errorf("entry block not in function")
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s: empty block", b)
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if last {
					return fmt.Errorf("%s: does not end in a terminator (%s)", b, in.Op)
				}
				return fmt.Errorf("%s: terminator %s at position %d is not last", b, in.Op, i)
			}
			if err := validateInstr(f, b, in); err != nil {
				return err
			}
			for _, t := range in.Targets {
				if !inFunc[t] {
					return fmt.Errorf("%s: branch target %s not in function", b, t)
				}
			}
		}
		if b.Try != NoTry && (b.Try < 0 || b.Try >= len(f.Regions)) {
			return fmt.Errorf("%s: try region %d out of range", b, b.Try)
		}
	}
	for _, r := range f.Regions {
		if !inFunc[r.Handler] {
			return fmt.Errorf("region %d: handler not in function", r.ID)
		}
	}
	return nil
}

func validateInstr(f *Func, b *Block, in *Instr) error {
	checkVar := func(v VarID) error {
		if v < 0 || int(v) >= len(f.Locals) {
			return fmt.Errorf("%s: %s references undefined v%d", b, in.Op, v)
		}
		return nil
	}
	if in.HasDst() {
		if err := checkVar(in.Dst); err != nil {
			return err
		}
	}
	for _, a := range in.Args {
		if a.Kind == OperInvalid {
			return fmt.Errorf("%s: %s has an uninitialized operand", b, in.Op)
		}
		if a.IsVar() {
			if err := checkVar(a.Var); err != nil {
				return err
			}
		}
	}
	want, ok := arity[in.Op]
	if ok && want >= 0 && len(in.Args) != want {
		return fmt.Errorf("%s: %s has %d args, want %d", b, in.Op, len(in.Args), want)
	}
	switch in.Op {
	case OpNullCheck:
		if len(in.Args) != 1 || !in.Args[0].IsVar() {
			return fmt.Errorf("%s: nullcheck needs a variable operand", b)
		}
	case OpGetField, OpPutField:
		if in.Field == nil {
			return fmt.Errorf("%s: %s without field", b, in.Op)
		}
	case OpNew, OpInstanceOf:
		if in.Class == nil {
			return fmt.Errorf("%s: %s without class", b, in.Op)
		}
	case OpCallStatic, OpCallVirtual:
		if in.Callee == nil {
			return fmt.Errorf("%s: call without callee", b)
		}
		if in.Op == OpCallVirtual && (len(in.Args) == 0 || !in.Args[0].IsVar()) {
			return fmt.Errorf("%s: callvirt needs a variable receiver", b)
		}
	case OpJump:
		if len(in.Targets) != 1 {
			return fmt.Errorf("%s: jump with %d targets", b, len(in.Targets))
		}
	case OpIf:
		if len(in.Targets) != 2 {
			return fmt.Errorf("%s: if with %d targets", b, len(in.Targets))
		}
	case OpReturn:
		if f.HasResult && len(in.Args) != 1 {
			return fmt.Errorf("%s: return without value in value-returning function", b)
		}
		if !f.HasResult && len(in.Args) != 0 {
			return fmt.Errorf("%s: return with value in void function", b)
		}
	}
	return nil
}

// arity maps opcodes to their required operand count; -1 means variable.
var arity = map[Op]int{
	OpMove: 1, OpAdd: 2, OpSub: 2, OpMul: 2, OpDiv: 2, OpRem: 2,
	OpAnd: 2, OpOr: 2, OpXor: 2, OpShl: 2, OpShr: 2,
	OpNeg: 1, OpNot: 1,
	OpFAdd: 2, OpFSub: 2, OpFMul: 2, OpFDiv: 2, OpFNeg: 1,
	OpIntToFloat: 1, OpFloatToInt: 1, OpCmp: 2, OpMath: -1, OpInstanceOf: 1,
	OpNullCheck: 1, OpNew: 0, OpNewArray: 1,
	OpGetField: 1, OpPutField: 2, OpArrayLength: 1,
	OpBoundCheck: 2, OpArrayLoad: 2, OpArrayStore: 3,
	OpCallStatic: -1, OpCallVirtual: -1,
	OpJump: 0, OpIf: 2, OpReturn: -1, OpThrow: 1,
}
