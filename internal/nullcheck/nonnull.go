package nullcheck

import (
	"trapnull/internal/bitset"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
)

// nonNullAnalysis is the forward "known non-null" data-flow problem of
// §4.1.2, shared by the phase 1 elimination stage, the Whaley baseline, and
// the guard checker. extraEdge optionally injects facts at block exits — the
// phase 1 caller passes the Earliest sets so that planned insertions count as
// checks before they physically exist.
func nonNullAnalysis(f *ir.Func, extraEdge map[*ir.Block]*bitset.Set) *dataflow.Result {
	size := f.NumLocals()
	genN, killN := dataflow.GenKill(func(b *ir.Block) (*bitset.Set, *bitset.Set) {
		gen, kill := bitset.NewPair(size)
		scanNonNull(b, gen, kill)
		return gen, kill
	})
	// The solver never retains the returned set, so one scratch serves
	// every edge evaluation without allocating.
	edgeScratch := bitset.New(size)
	p := &dataflow.Problem{
		Dir:  dataflow.Forward,
		Meet: dataflow.Intersect,
		Size: size,
		Gen:  genN,
		Kill: killN,
		EdgeAdd: func(from, to *ir.Block) *bitset.Set {
			add := edgeScratch
			add.Clear()
			if v := condEdgeNonNull(from, to); v != ir.NoVar {
				add.Add(int(v))
			}
			if extraEdge != nil {
				if s := extraEdge[from]; s != nil {
					add.Union(s)
				}
			}
			return add
		},
	}
	// The receiver of an instance method is non-null on entry (the paper's
	// Edge rule for the `this` object).
	boundary := bitset.New(size)
	if f.IsInstance && f.NumParams > 0 {
		boundary.Add(0)
	}
	p.Boundary = boundary
	return dataflow.Solve(f, p)
}

// scanNonNull computes the block-level gen/kill of non-nullness facts by a
// forward walk: a write to a variable kills its fact; a null check, a
// successful dereference, or an allocation (re)establishes it.
func scanNonNull(b *ir.Block, gen, kill *bitset.Set) {
	for _, in := range b.Instrs {
		// The dereference happens before the destination write, so order
		// matters for instructions like v = v.next.
		if sa, ok := in.SlotAccessInfo(); ok && !in.Speculated {
			gen.Add(int(sa.Base))
		}
		if in.Op == ir.OpNullCheck {
			gen.Add(int(in.NullCheckVar()))
		}
		if v := overwrites(in); v != ir.NoVar {
			gen.Remove(int(v))
			kill.Add(int(v))
		}
		if in.Op == ir.OpNew || in.Op == ir.OpNewArray {
			gen.Add(int(in.Dst))
		}
	}
}

// stepNonNull advances the running non-null set across one instruction,
// mirroring scanNonNull's per-instruction logic.
func stepNonNull(cur *bitset.Set, in *ir.Instr) {
	if sa, ok := in.SlotAccessInfo(); ok && !in.Speculated {
		cur.Add(int(sa.Base))
	}
	if in.Op == ir.OpNullCheck {
		cur.Add(int(in.NullCheckVar()))
	}
	if v := overwrites(in); v != ir.NoVar {
		cur.Remove(int(v))
	}
	if in.Op == ir.OpNew || in.Op == ir.OpNewArray {
		cur.Add(int(in.Dst))
	}
}

// eliminateKnownNonNull removes every null check whose target is proven
// non-null at the check, using a precomputed non-null analysis. Returns the
// number of checks removed.
//
// plain is only consulted when a fate tracker is attached (f.Track != nil):
// it is the insertion-free non-null analysis over the same function, used to
// classify each removal. A check the plain analysis already proves redundant
// is genuinely eliminated; one whose proof needs the phase-1 insertion facts
// only moved up — its fate is "hoisted". The plain running set steps over
// removed checks too, mirroring the original function where they still
// exist. nil plain classifies every removal as eliminated (the Whaley path,
// whose analysis is the plain one by definition).
func eliminateKnownNonNull(f *ir.Func, res, plain *dataflow.Result) int {
	removed := 0
	cur := bitset.New(f.NumLocals())
	var curPlain *bitset.Set
	if f.Track != nil && plain != nil {
		curPlain = bitset.New(f.NumLocals())
	}
	for _, b := range f.Blocks {
		cur.CopyFrom(res.In(b))
		if curPlain != nil {
			curPlain.CopyFrom(plain.In(b))
		}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpNullCheck && cur.Has(int(in.NullCheckVar())) {
				removed++
				if t := f.Track; t != nil {
					if curPlain != nil && !curPlain.Has(int(in.NullCheckVar())) {
						t.Hoisted(in, b)
					} else {
						t.Eliminated(in, b)
					}
				}
				if curPlain != nil {
					stepNonNull(curPlain, in)
				}
				continue
			}
			stepNonNull(cur, in)
			if curPlain != nil {
				stepNonNull(curPlain, in)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}

// Whaley implements the previous best algorithm the paper compares against
// ("Old Null Check"): a single forward data-flow elimination of redundant
// checks, with no motion. It returns the elimination count.
func Whaley(f *ir.Func) Stats {
	res := nonNullAnalysis(f, nil)
	n := eliminateKnownNonNull(f, res, nil)
	return Stats{Eliminated: n, ExplicitRemaining: f.CountOp(ir.OpNullCheck)}
}
