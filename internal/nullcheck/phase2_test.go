package nullcheck

import (
	"testing"

	"trapnull/internal/arch"
	"trapnull/internal/ir"
)

func countImplicit(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ExcSite {
				n++
			}
		}
	}
	return n
}

// TestPhase2AdjacentBecomesImplicit: the basic conversion — a check followed
// by its dereference vanishes into the hardware trap.
func TestPhase2AdjacentBecomesImplicit(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("adj", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))
	f := b.Finish()

	m := arch.IA32Win()
	st := Phase2(f, m)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if countChecks(f) != 0 {
		t.Fatalf("explicit checks remain:\n%s", f)
	}
	if countImplicit(f) != 1 || st.Implicit != 1 {
		t.Fatalf("implicit = %d (stats %+v), want 1:\n%s", countImplicit(f), st, f)
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
}

// TestPhase2Figure7 reproduces Figure 7: an inlining-produced check whose
// dereference happens on only one path. The dereferencing path becomes
// implicit (free); the other path keeps one explicit check at its latest
// point.
func TestPhase2Figure7(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("fig7", false)
	a := b.Param("a", ir.KindRef)
	i := b.Param("i", ir.KindInt)
	b.Result(ir.KindInt)

	entry := b.Block("entry")
	neg := b.DeclareBlock("neg")
	pos := b.DeclareBlock("pos")

	b.SetBlock(entry)
	b.NullCheck(a, ir.ReasonInlined) // the devirtualization guard
	b.If(ir.CondLT, ir.Var(i), ir.ConstInt(0), neg, pos)

	b.SetBlock(neg)
	b.Return(ir.Var(i)) // no dereference of a on this path

	b.SetBlock(pos)
	t1 := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: t1, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(t1))

	f := b.Finish()
	m := arch.IA32Win()
	st := Phase2(f, m)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if st.Implicit != 1 {
		t.Fatalf("implicit = %d, want 1:\n%s", st.Implicit, f)
	}
	if got := checksInBlock(pos); got != 0 {
		t.Fatalf("dereferencing path still has %d explicit checks:\n%s", got, f)
	}
	if got := checksInBlock(neg); got != 1 {
		t.Fatalf("non-dereferencing path has %d checks, want 1:\n%s", got, f)
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
}

// TestPhase2BigOffsetStaysExplicit: Figure 5(1) — an access beyond the trap
// area cannot rely on the trap.
func TestPhase2BigOffsetStaysExplicit(t *testing.T) {
	p := ir.NewProgram("t")
	m := arch.IA32Win()
	c := p.NewClass("Big",
		&ir.Field{Name: "near", Kind: ir.KindInt},
		&ir.Field{Name: "far", Kind: ir.KindInt, Offset: int32(m.TrapAreaBytes) + 8},
	)
	b := ir.NewFunc("big", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("far"))
	b.Return(ir.Var(t1))
	f := b.Finish()

	st := Phase2(f, m)
	if st.Implicit != 0 {
		t.Fatalf("big-offset access became implicit:\n%s", f)
	}
	if countChecks(f) != 1 {
		t.Fatalf("explicit check missing:\n%s", f)
	}
	// The check must precede the access.
	for _, in := range f.Entry.Instrs {
		if in.Op == ir.OpGetField {
			t.Fatalf("getfield before check:\n%s", f)
		}
		if in.Op == ir.OpNullCheck {
			break
		}
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
}

// TestPhase2AIXReadStaysExplicitWriteImplicit: Figure 5(2) — on a
// write-only-trap OS, reads need explicit checks but writes convert.
func TestPhase2AIXReadStaysExplicitWriteImplicit(t *testing.T) {
	_, c := testClass()
	m := arch.PPCAIX()

	// Read case.
	b := ir.NewFunc("aixread", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))
	fr := b.Finish()
	st := Phase2(fr, m)
	if st.Implicit != 0 || countChecks(fr) != 1 {
		t.Fatalf("read: implicit=%d checks=%d, want 0/1:\n%s", st.Implicit, countChecks(fr), fr)
	}
	if err := CheckGuards(fr, m); err != nil {
		t.Fatalf("read guard check: %v", err)
	}

	// Write case.
	b2 := ir.NewFunc("aixwrite", false)
	a2 := b2.Param("b", ir.KindRef)
	b2.Block("entry")
	b2.PutField(a2, c.FieldByName("f"), ir.ConstInt(7))
	b2.ReturnVoid()
	fw := b2.Finish()
	st = Phase2(fw, m)
	if st.Implicit != 1 || countChecks(fw) != 0 {
		t.Fatalf("write: implicit=%d checks=%d, want 1/0:\n%s", st.Implicit, countChecks(fw), fw)
	}
	if err := CheckGuards(fw, m); err != nil {
		t.Fatalf("write guard check: %v", err)
	}
}

// TestPhase2BarrierFlush: a check that cannot cross a memory write is
// emitted explicitly before it, even when a trapping dereference follows.
func TestPhase2BarrierFlush(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("flush", false)
	a := b.Param("a", ir.KindRef)
	g := b.Param("g", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	// Original order: check a, then store through g, then load a.f.
	b.NullCheck(a, ir.ReasonField)
	b.PutField(g, c.FieldByName("f"), ir.ConstInt(1))
	t1 := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: t1, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(t1))
	f := b.Finish()

	m := arch.IA32Win()
	Phase2(f, m)
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
	// a's check must still precede the putfield: precise exceptions demand
	// the NPE fire before the store becomes visible.
	idxCheckA, idxStore := -1, -1
	for i, in := range f.Entry.Instrs {
		if in.Op == ir.OpNullCheck && in.NullCheckVar() == a {
			idxCheckA = i
		}
		if in.Op == ir.OpPutField {
			idxStore = i
		}
	}
	if idxCheckA == -1 {
		t.Fatalf("a's check disappeared:\n%s", f)
	}
	if idxCheckA > idxStore {
		t.Fatalf("a's check moved past the memory write:\n%s", f)
	}
}

// TestPhase2SubstitutableAcrossMerge: a check forced out at a path exit is
// removed when every successor path re-checks (or traps on) the variable.
func TestPhase2SubstitutableAcrossMerge(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("subst", false)
	a := b.Param("a", ir.KindRef)
	i := b.Param("i", ir.KindInt)
	b.Result(ir.KindInt)

	entry := b.Block("entry")
	left := b.DeclareBlock("left")
	right := b.DeclareBlock("right")
	merge := b.DeclareBlock("merge")

	b.SetBlock(entry)
	b.NullCheck(a, ir.ReasonInlined)
	b.If(ir.CondLT, ir.Var(i), ir.ConstInt(0), left, right)

	b.SetBlock(left)
	t1 := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: t1, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Jump(merge)

	b.SetBlock(right)
	b.Jump(merge)

	b.SetBlock(merge)
	t2 := b.Temp(ir.KindInt)
	// The merge dereferences a again (own check from the builder).
	b.GetField(t2, a, c.FieldByName("g"))
	b.Return(ir.Var(t2))

	f := b.Finish()
	m := arch.IA32Win()
	Phase2(f, m)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
	// Every path dereferences a at the merge, so no explicit check should
	// survive anywhere: left traps at a.f, right's pending check is
	// substitutable by the merge's trap at a.g.
	if got := countChecks(f); got != 0 {
		t.Fatalf("%d explicit checks remain, want 0:\n%s", got, f)
	}
	if got := countImplicit(f); got != 2 {
		t.Fatalf("%d implicit sites, want 2:\n%s", got, f)
	}
}

// TestPhase2OverwriteForcesCheck: a check must materialize before its
// variable is overwritten.
func TestPhase2OverwriteForcesCheck(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("ow", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.NullCheck(a, ir.ReasonInlined)
	b.New(a, c) // overwrites a; the check must fire before this
	t1 := b.Temp(ir.KindInt)
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: t1, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(t1))
	f := b.Finish()

	m := arch.IA32Win()
	Phase2(f, m)
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
	// One explicit check before the new.
	sawNew := false
	sawCheck := false
	for _, in := range f.Entry.Instrs {
		if in.Op == ir.OpNew {
			sawNew = true
		}
		if in.Op == ir.OpNullCheck {
			if sawNew {
				t.Fatalf("check after overwrite:\n%s", f)
			}
			sawCheck = true
		}
	}
	if !sawCheck {
		t.Fatalf("check eliminated around overwrite:\n%s", f)
	}
}

// TestPhase2VirtualCallDispatchTrap: on a read-trapping machine the receiver
// check folds into the dispatch load; on AIX it stays explicit.
func TestPhase2VirtualCallDispatchTrap(t *testing.T) {
	p, c := testClass()
	cb := ir.NewFunc("callee", true)
	cb.Param("this", ir.KindRef)
	cb.Result(ir.KindInt)
	cb.Block("entry")
	cb.Return(ir.ConstInt(1))
	m := p.AddMethod(c, "m", cb.Finish(), true)

	build := func() *ir.Func {
		b := ir.NewFunc("caller", false)
		a := b.Param("a", ir.KindRef)
		b.Result(ir.KindInt)
		b.Block("entry")
		t1 := b.Temp(ir.KindInt)
		b.CallVirtual(t1, m, a)
		b.Return(ir.Var(t1))
		return b.Finish()
	}

	fIA := build()
	st := Phase2(fIA, arch.IA32Win())
	if st.Implicit != 1 || countChecks(fIA) != 0 {
		t.Fatalf("ia32: implicit=%d explicit=%d, want 1/0:\n%s", st.Implicit, countChecks(fIA), fIA)
	}

	fAIX := build()
	st = Phase2(fAIX, arch.PPCAIX())
	if st.Implicit != 0 || countChecks(fAIX) != 1 {
		t.Fatalf("aix: implicit=%d explicit=%d, want 0/1:\n%s", st.Implicit, countChecks(fAIX), fAIX)
	}
}

// TestFoldAdjacentTraps: the baseline lowering folds only immediately
// adjacent check/dereference pairs.
func TestFoldAdjacentTraps(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("fold", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f")) // adjacent: folds
	b.NullCheck(a, ir.ReasonInlined)      // not followed by a's deref: stays
	t2 := b.Temp(ir.KindInt)
	b.Binop(ir.OpAdd, t2, ir.Var(t1), ir.ConstInt(1))
	b.Return(ir.Var(t2))
	f := b.Finish()

	m := arch.IA32Win()
	folded := FoldAdjacentTraps(f, m)
	if folded != 1 {
		t.Fatalf("folded = %d, want 1:\n%s", folded, f)
	}
	if countChecks(f) != 1 {
		t.Fatalf("checks = %d, want 1:\n%s", countChecks(f), f)
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
}

// TestCheckerCatchesUnguardedDeref: the safety net actually trips.
func TestCheckerCatchesUnguardedDeref(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("bad", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	// Raw emission: no check at all.
	b.Emit(&ir.Instr{Op: ir.OpGetField, Dst: t1, Field: c.FieldByName("f"), Args: []ir.Operand{ir.Var(a)}})
	b.Return(ir.Var(t1))
	f := b.Finish()

	if err := CheckGuards(f, arch.IA32Win()); err == nil {
		t.Fatal("checker accepted an unguarded dereference")
	}
}

// TestCheckerRejectsIllegalImplicitOnAIX: an exception-site mark on a read
// is not a guarantee on a write-only-trap machine.
func TestCheckerRejectsIllegalImplicitOnAIX(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("illegal", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))
	f := b.Finish()

	// Run the Intel-assumption phase 2, then check against the AIX model:
	// this is exactly the paper's "Illegal Implicit" configuration.
	Phase2(f, arch.IA32Win())
	if err := CheckGuards(f, arch.IA32Win()); err != nil {
		t.Fatalf("legal on ia32: %v", err)
	}
	if err := CheckGuards(f, arch.PPCAIX()); err == nil {
		t.Fatal("checker accepted illegal implicit read check on AIX")
	}
}

// TestPhase2AfterPhase1LoopBecomesFree: the full pipeline on the Figure 4
// loop — after phase 1 hoists the check, phase 2 should make the remaining
// dereference sequence free inside the loop.
func TestPhase2AfterPhase1LoopBecomesFree(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("full", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(t1))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(s))
	f := b.Finish()

	m := arch.IA32Win()
	Phase1(f)
	Phase2(f, m)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if err := CheckGuards(f, m); err != nil {
		t.Fatalf("guard check failed: %v", err)
	}
	if got := checksInBlock(body); got != 0 {
		t.Fatalf("loop body still pays for %d explicit checks:\n%s", got, f)
	}
}
