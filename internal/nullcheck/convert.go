package nullcheck

import (
	"trapnull/internal/arch"
	"trapnull/internal/bitset"
	"trapnull/internal/dataflow"
	"trapnull/internal/ir"
)

// ConvertToTraps lowers explicit null checks onto the hardware trap without
// moving them: a check is deleted when, on every path from it, an explicit
// check or a guaranteed-trapping dereference of the same variable occurs
// before any barrier, overwrite, or unguarded access — the substitutable
// elimination of §4.2.2 run with trapping accesses as substitution points
// but with no forward motion. Trap-capable dereferences that may now carry
// the check are marked as exception sites.
//
// The Phase1Only configuration uses this as its final lowering: the paper's
// phase-1-only measurement still "utilizes hardware traps" (Table 1 legend)
// even though the architecture-dependent motion is disabled.
func ConvertToTraps(f *ir.Func, m *arch.Model) int {
	return convertToTraps(f, m, dataflow.Intersect)
}

// ConvertToTrapsAnyPath is ConvertToTraps with its all-paths safety meet
// deliberately weakened to any-path (union): a check is deleted when SOME
// later path covers it, so executions taking an uncovered path silently miss
// their NullPointerException. This is a planted miscompile — the fault the
// triage tooling's tests and cmd/triage -inject-bug seed to prove the
// bisect/shrink machinery finds real optimizer bugs. It is never reached by
// a real configuration.
func ConvertToTrapsAnyPath(f *ir.Func, m *arch.Model) int {
	return convertToTraps(f, m, dataflow.Union)
}

func convertToTraps(f *ir.Func, m *arch.Model, meet dataflow.Meet) int {
	size := f.NumLocals()
	scratch := bitset.New(size)
	genC, killC := dataflow.GenKill(func(b *ir.Block) (*bitset.Set, *bitset.Set) {
		scratch.Clear()
		return scanConvert(b, size, m, scratch)
	})
	res := dataflow.Solve(f, &dataflow.Problem{
		Dir:          dataflow.Backward,
		Meet:         meet,
		Size:         size,
		Gen:          genC,
		Kill:         killC,
		EdgeSubtract: tryEdgeSubtract(size),
	})

	removed := 0
	cur := bitset.New(size)
	for _, b := range f.Blocks {
		inTry := b.Try != ir.NoTry
		cur.CopyFrom(res.Out(b))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Op == ir.OpNullCheck && cur.Has(int(in.NullCheckVar())) {
				b.RemoveInstr(i)
				removed++
				if t := f.Track; t != nil {
					t.Substituted(in, b)
				}
				continue
			}
			if isBarrier(in, inTry) {
				cur.Clear()
			}
			if v := overwrites(in); v != ir.NoVar {
				cur.Remove(int(v))
			}
			if sa, ok := in.SlotAccessInfo(); ok {
				if m.TrapsForAccess(sa) && !in.Speculated {
					// This dereference can carry a deleted check above it;
					// mark it so the machine translates the trap precisely.
					if !in.ExcSite {
						in.ExcSite = true
						in.ExcVar = sa.Base
					}
					if in.ExcVar == sa.Base {
						cur.Add(int(sa.Base))
					} else {
						cur.Remove(int(sa.Base))
					}
				} else {
					cur.Remove(int(sa.Base))
				}
			}
			if in.Op == ir.OpNullCheck {
				cur.Add(int(in.NullCheckVar()))
			}
		}
	}
	return removed
}

// scanConvert computes block summaries for ConvertToTraps: Gen holds
// variables whose first in-block event, with no earlier barrier, is an
// explicit check or a guaranteed-trapping dereference; Kill matches the
// motion Kill of §4.2.1.
func scanConvert(b *ir.Block, size int, m *arch.Model, decided *bitset.Set) (gen, kill *bitset.Set) {
	gen, kill = bitset.NewPair(size)
	inTry := b.Try != ir.NoTry
	barrierAbove := false
	for _, in := range b.Instrs {
		if in.Op == ir.OpNullCheck {
			v := int(in.NullCheckVar())
			if !barrierAbove && !decided.Has(v) {
				gen.Add(v)
			}
			decided.Add(v)
			kill.Add(v)
			continue
		}
		if sa, ok := in.SlotAccessInfo(); ok {
			v := int(sa.Base)
			if m.TrapsForAccess(sa) && !in.Speculated && (!in.ExcSite || in.ExcVar == sa.Base) {
				if !barrierAbove && !decided.Has(v) {
					gen.Add(v)
				}
			}
			decided.Add(v)
			kill.Add(v)
		}
		if isBarrier(in, inTry) {
			barrierAbove = true
			kill.Fill()
		}
		if v := overwrites(in); v != ir.NoVar {
			decided.Add(int(v))
			kill.Add(int(v))
		}
	}
	return gen, kill
}
