package nullcheck

import (
	"testing"

	"trapnull/internal/ir"
)

// testClass builds a program with one class with two int fields.
func testClass() (*ir.Program, *ir.Class) {
	p := ir.NewProgram("t")
	c := p.NewClass("C",
		&ir.Field{Name: "f", Kind: ir.KindInt},
		&ir.Field{Name: "g", Kind: ir.KindInt},
	)
	return p, c
}

func countChecks(f *ir.Func) int { return f.CountOp(ir.OpNullCheck) }

func checksInBlock(b *ir.Block) int {
	n := 0
	for _, in := range b.Instrs {
		if in.Op == ir.OpNullCheck {
			n++
		}
	}
	return n
}

// TestPhase1Figure3 reproduces Figure 3: a partially redundant check at a
// merge point. The left path dereferences (and checks) before the merge; the
// right does not. After phase 1, exactly one check executes on each path.
func TestPhase1Figure3(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("fig3", false)
	a := b.Param("a", ir.KindRef)
	cond := b.Param("cond", ir.KindInt)
	b.Result(ir.KindInt)

	entry := b.Block("entry")
	left := b.DeclareBlock("left")
	right := b.DeclareBlock("right")
	merge := b.DeclareBlock("merge")

	b.SetBlock(entry)
	b.If(ir.CondNE, ir.Var(cond), ir.ConstInt(0), left, right)

	b.SetBlock(left)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f")) // nullcheck a; t1 = a.f
	b.Jump(merge)

	b.SetBlock(right)
	b.Jump(merge)

	b.SetBlock(merge)
	t2 := b.Temp(ir.KindInt)
	b.GetField(t2, a, c.FieldByName("g")) // nullcheck a; t2 = a.g
	b.Return(ir.Var(t2))

	f := b.Finish()
	if got := countChecks(f); got != 2 {
		t.Fatalf("before: %d checks, want 2", got)
	}

	st := Phase1(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid after phase1: %v", err)
	}
	if got := countChecks(f); got != 1 {
		t.Fatalf("after: %d checks, want 1:\n%s", got, f)
	}
	if checksInBlock(entry) != 1 {
		t.Fatalf("check not hoisted to entry:\n%s", f)
	}
	if st.Eliminated != 2 || st.Inserted != 1 {
		t.Fatalf("stats = %+v, want 2 eliminated / 1 inserted", st)
	}
}

// TestPhase1LoopInvariant reproduces the Figure 4 effect: a check inside a
// do-while loop body moves out of the loop.
func TestPhase1LoopInvariant(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("loopinv", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)
	s := b.Local("s", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Move(s, ir.ConstInt(0))
	b.Jump(body)

	b.SetBlock(body)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Binop(ir.OpAdd, s, ir.Var(s), ir.Var(t1))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)

	b.SetBlock(exit)
	b.Return(ir.Var(s))

	f := b.Finish()
	Phase1(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid after phase1: %v", err)
	}
	if got := checksInBlock(body); got != 0 {
		t.Fatalf("loop body still has %d checks:\n%s", got, f)
	}
	if got := checksInBlock(entry); got != 1 {
		t.Fatalf("entry has %d checks, want the hoisted one:\n%s", got, f)
	}
}

// TestPhase1WhaleyCannotHoistLoop is the contrast the paper draws in §2.2:
// the forward-only algorithm must leave the loop-invariant check in place.
func TestPhase1WhaleyCannotHoistLoop(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("loopinv2", false)
	a := b.Param("a", ir.KindRef)
	n := b.Param("n", ir.KindInt)
	b.Result(ir.KindInt)
	i := b.Local("i", ir.KindInt)

	entry := b.Block("entry")
	body := b.DeclareBlock("body")
	exit := b.DeclareBlock("exit")

	b.SetBlock(entry)
	b.Move(i, ir.ConstInt(0))
	b.Jump(body)
	b.SetBlock(body)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Binop(ir.OpAdd, i, ir.Var(i), ir.ConstInt(1))
	b.If(ir.CondLT, ir.Var(i), ir.Var(n), body, exit)
	b.SetBlock(exit)
	b.Return(ir.Var(i))
	f := b.Finish()

	st := Whaley(f)
	// The back edge makes the check redundant with itself only after the
	// first iteration, which forward analysis with an entry meet cannot use.
	if got := checksInBlock(body); got != 1 {
		t.Fatalf("whaley: body has %d checks, want 1 (no hoisting):\n%s", got, f)
	}
	if st.Eliminated != 0 {
		t.Fatalf("whaley eliminated %d, want 0", st.Eliminated)
	}
}

// TestWhaleyEliminatesSequentialRedundancy: the second check of the same
// variable in straight-line code is redundant.
func TestWhaleyEliminatesSequentialRedundancy(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("seq", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	t2 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.GetField(t2, a, c.FieldByName("g"))
	b.Binop(ir.OpAdd, t1, ir.Var(t1), ir.Var(t2))
	b.Return(ir.Var(t1))
	f := b.Finish()

	st := Whaley(f)
	if st.Eliminated != 1 {
		t.Fatalf("eliminated %d, want 1:\n%s", st.Eliminated, f)
	}
	if got := countChecks(f); got != 1 {
		t.Fatalf("%d checks remain, want 1", got)
	}
}

// TestPhase1OverwriteBlocksMotion: a check cannot move above an assignment
// to its variable, and the new-dominated path needs no check at all.
func TestPhase1OverwriteBlocksMotion(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("overwrite", false)
	a := b.Param("a", ir.KindRef)
	cond := b.Param("cond", ir.KindInt)
	b.Result(ir.KindInt)

	entry := b.Block("entry")
	alloc := b.DeclareBlock("alloc")
	keep := b.DeclareBlock("keep")
	merge := b.DeclareBlock("merge")

	b.SetBlock(entry)
	b.If(ir.CondNE, ir.Var(cond), ir.ConstInt(0), alloc, keep)

	b.SetBlock(alloc)
	b.New(a, c) // overwrites a with a fresh object
	b.Jump(merge)

	b.SetBlock(keep)
	b.Jump(merge)

	b.SetBlock(merge)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))

	f := b.Finish()
	Phase1(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := countChecks(f); got != 1 {
		t.Fatalf("%d checks, want 1:\n%s", got, f)
	}
	if checksInBlock(alloc) != 0 {
		t.Fatalf("allocation path must not check:\n%s", f)
	}
	if checksInBlock(keep) != 1 {
		t.Fatalf("check should sit on the keep path:\n%s", f)
	}
}

// TestPhase1BarrierBlocksMotion: a memory write stops backward motion.
func TestPhase1BarrierBlocksMotion(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("barrier", false)
	a := b.Param("a", ir.KindRef)
	g := b.Param("g", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	b.PutField(g, c.FieldByName("f"), ir.ConstInt(1)) // nullcheck g; g.f = 1
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f")) // nullcheck a; t1 = a.f
	b.Return(ir.Var(t1))
	f := b.Finish()

	Phase1(f)
	// a's check must not move above the store to g.f: verify it is still
	// after the putfield.
	sawStore := false
	sawCheckA := false
	for _, in := range f.Entry.Instrs {
		if in.Op == ir.OpPutField {
			sawStore = true
		}
		if in.Op == ir.OpNullCheck && in.NullCheckVar() == a {
			if !sawStore {
				t.Fatalf("check of a moved above the memory write:\n%s", f)
			}
			sawCheckA = true
		}
	}
	if !sawCheckA {
		t.Fatalf("check of a disappeared:\n%s", f)
	}
}

// TestPhase1ThisIsNonNull: the receiver needs no check in an instance
// method (§4.1.2 Edge rule).
func TestPhase1ThisIsNonNull(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("getF", true)
	this := b.Param("this", ir.KindRef)
	b.Result(ir.KindInt)
	b.Block("entry")
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, this, c.FieldByName("f"))
	b.Return(ir.Var(t1))
	f := b.Finish()

	st := Phase1(f)
	if st.Eliminated != 1 || countChecks(f) != 0 {
		t.Fatalf("this-check not eliminated: stats=%+v\n%s", st, f)
	}
}

// TestPhase1IfNonNullEdge: `if a == null` proves non-nullness on the else
// edge.
func TestPhase1IfNonNullEdge(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("ifnull", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)

	entry := b.Block("entry")
	isNull := b.DeclareBlock("isnull")
	notNull := b.DeclareBlock("notnull")

	b.SetBlock(entry)
	b.If(ir.CondEQ, ir.Var(a), ir.Null(), isNull, notNull)
	b.SetBlock(isNull)
	b.Return(ir.ConstInt(-1))
	b.SetBlock(notNull)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))
	f := b.Finish()

	Phase1(f)
	if got := countChecks(f); got != 0 {
		t.Fatalf("%d checks remain, want 0 (edge fact):\n%s", got, f)
	}
}

// TestPhase1TryBoundaryBlocksMotion: checks may not move across a
// try-region boundary.
func TestPhase1TryBoundaryBlocksMotion(t *testing.T) {
	_, c := testClass()
	b := ir.NewFunc("try", false)
	a := b.Param("a", ir.KindRef)
	b.Result(ir.KindInt)

	entry := b.Block("entry")
	tryBlk := b.DeclareBlock("try")
	handler := b.DeclareBlock("handler")
	exc := b.Local("exc", ir.KindRef)

	b.SetBlock(entry)
	b.Jump(tryBlk)

	b.SetBlock(tryBlk)
	t1 := b.Temp(ir.KindInt)
	b.GetField(t1, a, c.FieldByName("f"))
	b.Return(ir.Var(t1))

	b.SetBlock(handler)
	b.Return(ir.ConstInt(-1))

	f := b.F
	r := f.NewRegion(handler, exc)
	tryBlk.Try = r.ID
	f.RecomputeEdges()
	if err := ir.Validate(f); err != nil {
		t.Fatalf("setup: %v", err)
	}

	Phase1(f)
	if got := checksInBlock(entry); got != 0 {
		t.Fatalf("check crossed into the pre-try block:\n%s", f)
	}
	if got := checksInBlock(tryBlk); got != 1 {
		t.Fatalf("check left the try region (%d in try block):\n%s", got, f)
	}
}

// TestPhase1Idempotent: running phase 1 twice must not change the result of
// the first run (the pipeline iterates it with other optimizations).
func TestPhase1Idempotent(t *testing.T) {
	_, c := testClass()
	build := func() *ir.Func {
		b := ir.NewFunc("idem", false)
		a := b.Param("a", ir.KindRef)
		cond := b.Param("cond", ir.KindInt)
		b.Result(ir.KindInt)
		entry := b.Block("entry")
		left := b.DeclareBlock("left")
		right := b.DeclareBlock("right")
		merge := b.DeclareBlock("merge")
		b.SetBlock(entry)
		b.If(ir.CondNE, ir.Var(cond), ir.ConstInt(0), left, right)
		b.SetBlock(left)
		t1 := b.Temp(ir.KindInt)
		b.GetField(t1, a, c.FieldByName("f"))
		b.Jump(merge)
		b.SetBlock(right)
		b.Jump(merge)
		b.SetBlock(merge)
		t2 := b.Temp(ir.KindInt)
		b.GetField(t2, a, c.FieldByName("g"))
		b.Return(ir.Var(t2))
		return b.Finish()
	}
	f := build()
	Phase1(f)
	first := countChecks(f)
	st2 := Phase1(f)
	if got := countChecks(f); got != first {
		t.Fatalf("second run changed check count %d -> %d:\n%s", first, got, f)
	}
	// The second run may churn (re-move the same check) but must not grow.
	if st2.Inserted > st2.Eliminated {
		t.Fatalf("second run grew the program: %+v", st2)
	}
}
